// Tests for the time algebra (src/meos/period).

#include <gtest/gtest.h>

#include "meos/period.hpp"

namespace nebulameos::meos {
namespace {

Period P(Timestamp lo, Timestamp hi, bool li = true, bool ui = true) {
  auto p = Period::Make(lo, hi, li, ui);
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(Period, MakeValidation) {
  EXPECT_FALSE(Period::Make(10, 5).ok());
  EXPECT_FALSE(Period::Make(5, 5, true, false).ok());
  EXPECT_FALSE(Period::Make(5, 5, false, true).ok());
  EXPECT_TRUE(Period::Make(5, 5, true, true).ok());
  EXPECT_TRUE(Period::Make(0, 10, false, false).ok());
}

TEST(Period, ContainsRespectsBounds) {
  const Period closed = P(10, 20);
  EXPECT_TRUE(closed.Contains(10));
  EXPECT_TRUE(closed.Contains(20));
  EXPECT_TRUE(closed.Contains(15));
  EXPECT_FALSE(closed.Contains(9));
  EXPECT_FALSE(closed.Contains(21));

  const Period open = P(10, 20, false, false);
  EXPECT_FALSE(open.Contains(10));
  EXPECT_FALSE(open.Contains(20));
  EXPECT_TRUE(open.Contains(11));
}

TEST(Period, ContainsPeriod) {
  const Period outer = P(0, 100);
  EXPECT_TRUE(outer.ContainsPeriod(P(10, 90)));
  EXPECT_TRUE(outer.ContainsPeriod(outer));
  EXPECT_FALSE(outer.ContainsPeriod(P(10, 101)));
  // Open outer cannot contain closed touching bound.
  const Period open_outer = P(0, 100, false, true);
  EXPECT_FALSE(open_outer.ContainsPeriod(P(0, 50)));
  EXPECT_TRUE(open_outer.ContainsPeriod(P(0, 50, false, true)));
}

TEST(Period, OverlapsBoundCases) {
  EXPECT_TRUE(P(0, 10).Overlaps(P(10, 20)));            // closed touch
  EXPECT_FALSE(P(0, 10, true, false).Overlaps(P(10, 20)));  // open touch
  EXPECT_FALSE(P(0, 10).Overlaps(P(10, 20, false, true)));
  EXPECT_TRUE(P(0, 10).Overlaps(P(5, 20)));
  EXPECT_FALSE(P(0, 10).Overlaps(P(11, 20)));
}

TEST(Period, Adjacency) {
  EXPECT_TRUE(P(0, 10, true, false).IsAdjacent(P(10, 20)));
  EXPECT_TRUE(P(10, 20).IsAdjacent(P(0, 10, true, false)));
  EXPECT_FALSE(P(0, 10).IsAdjacent(P(10, 20)));  // both closed: overlap
  EXPECT_FALSE(P(0, 10, true, false).IsAdjacent(P(10, 20, false, true)));
}

TEST(Period, Intersection) {
  auto inter = P(0, 10).Intersection(P(5, 20));
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->lower(), 5);
  EXPECT_EQ(inter->upper(), 10);
  EXPECT_FALSE(P(0, 4).Intersection(P(5, 20)).has_value());
  // Touch with open bound: empty.
  EXPECT_FALSE(P(0, 5, true, false).Intersection(P(5, 9)).has_value());
  // Touch closed-closed: instantaneous period.
  auto touch = P(0, 5).Intersection(P(5, 9));
  ASSERT_TRUE(touch.has_value());
  EXPECT_EQ(touch->lower(), 5);
  EXPECT_EQ(touch->upper(), 5);
}

TEST(Period, IntersectionBoundFlags) {
  auto inter = P(0, 10, false, true).Intersection(P(0, 10, true, false));
  ASSERT_TRUE(inter.has_value());
  EXPECT_FALSE(inter->lower_inc());
  EXPECT_FALSE(inter->upper_inc());
}

TEST(Period, UnionExtent) {
  const Period u = P(0, 5).Union(P(10, 20, true, false));
  EXPECT_EQ(u.lower(), 0);
  EXPECT_EQ(u.upper(), 20);
  EXPECT_TRUE(u.lower_inc());
  EXPECT_FALSE(u.upper_inc());
}

TEST(Period, Shifted) {
  const Period p = P(10, 20).Shifted(5);
  EXPECT_EQ(p.lower(), 15);
  EXPECT_EQ(p.upper(), 25);
}

TEST(Period, ToStringShape) {
  const std::string s = P(0, kMicrosPerHour, true, false).ToString();
  EXPECT_EQ(s.front(), '[');
  EXPECT_EQ(s.back(), ')');
}

TEST(TimestampSet, SortsAndDedupes) {
  TimestampSet set({30, 10, 20, 10});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.times()[0], 10);
  EXPECT_EQ(set.times()[2], 30);
  EXPECT_TRUE(set.Contains(20));
  EXPECT_FALSE(set.Contains(15));
  EXPECT_EQ(set.Extent().lower(), 10);
  EXPECT_EQ(set.Extent().upper(), 30);
}

TEST(PeriodSet, NormalizesOverlapping) {
  PeriodSet set({P(0, 10), P(5, 15), P(20, 30)});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.periods()[0].lower(), 0);
  EXPECT_EQ(set.periods()[0].upper(), 15);
  EXPECT_EQ(set.periods()[1].lower(), 20);
}

TEST(PeriodSet, MergesAdjacent) {
  PeriodSet set({P(0, 10, true, false), P(10, 20)});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.periods()[0].lower(), 0);
  EXPECT_EQ(set.periods()[0].upper(), 20);
}

TEST(PeriodSet, KeepsDisjointOpenTouch) {
  // (0,10) and (10,20): both open at 10 → not adjacent (gap of one point).
  PeriodSet set({P(0, 10, true, false), P(10, 20, false, true)});
  EXPECT_EQ(set.size(), 2u);
}

TEST(PeriodSet, ContainsBinarySearch) {
  PeriodSet set({P(0, 10), P(20, 30), P(40, 50)});
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(20));
  EXPECT_TRUE(set.Contains(50));
  EXPECT_FALSE(set.Contains(15));
  EXPECT_FALSE(set.Contains(35));
  EXPECT_FALSE(set.Contains(51));
}

TEST(PeriodSet, TotalDuration) {
  PeriodSet set({P(0, 10), P(20, 25)});
  EXPECT_EQ(set.TotalDuration(), 15);
}

TEST(PeriodSet, UnionWith) {
  PeriodSet a({P(0, 10)});
  PeriodSet b({P(5, 20), P(30, 40)});
  PeriodSet u = a.UnionWith(b);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.periods()[0].upper(), 20);
  EXPECT_EQ(u.TotalDuration(), 30);
}

TEST(PeriodSet, IntersectionWith) {
  PeriodSet a({P(0, 10), P(20, 30)});
  PeriodSet b({P(5, 25)});
  PeriodSet inter = a.IntersectionWith(b);
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_EQ(inter.periods()[0].lower(), 5);
  EXPECT_EQ(inter.periods()[0].upper(), 10);
  EXPECT_EQ(inter.periods()[1].lower(), 20);
  EXPECT_EQ(inter.periods()[1].upper(), 25);
}

TEST(PeriodSet, DifferenceCarvesMiddle) {
  PeriodSet base({P(0, 100)});
  PeriodSet cut({P(40, 60)});
  PeriodSet diff = base.Difference(cut);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff.periods()[0].lower(), 0);
  EXPECT_EQ(diff.periods()[0].upper(), 40);
  EXPECT_FALSE(diff.periods()[0].upper_inc());  // flipped inclusivity
  EXPECT_EQ(diff.periods()[1].lower(), 60);
  EXPECT_FALSE(diff.periods()[1].lower_inc());
}

TEST(PeriodSet, DifferenceRemovesAll) {
  PeriodSet base({P(10, 20)});
  PeriodSet cut({P(0, 100)});
  EXPECT_TRUE(base.Difference(cut).empty());
}

TEST(PeriodSet, DifferenceDisjointKeepsAll) {
  PeriodSet base({P(10, 20)});
  PeriodSet cut({P(30, 40)});
  PeriodSet diff = base.Difference(cut);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff.periods()[0] == P(10, 20));
}

// Property: for random period arrangements, Difference + Intersection
// partition the base duration.
class PeriodSetPartition : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSetPartition, DifferencePlusIntersectionCoversBase) {
  const int seed = GetParam();
  // Deterministic pseudo-random periods from the seed.
  auto next = [state = static_cast<uint64_t>(seed * 2654435761u + 1)]() mutable {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<Timestamp>((state >> 33) % 1000);
  };
  std::vector<Period> base_periods, cut_periods;
  for (int i = 0; i < 5; ++i) {
    Timestamp a = next(), b = next();
    if (a > b) std::swap(a, b);
    if (a == b) b = a + 1;
    base_periods.push_back(P(a, b));
    a = next();
    b = next();
    if (a > b) std::swap(a, b);
    if (a == b) b = a + 1;
    cut_periods.push_back(P(a, b));
  }
  PeriodSet base(base_periods);
  PeriodSet cut(cut_periods);
  const Duration total = base.TotalDuration();
  const Duration kept = base.Difference(cut).TotalDuration();
  const Duration removed = base.IntersectionWith(cut).TotalDuration();
  EXPECT_EQ(kept + removed, total) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodSetPartition, ::testing::Range(0, 25));

}  // namespace
}  // namespace nebulameos::meos

// Tests for the temporal-type core (src/meos/temporal.hpp).

#include <gtest/gtest.h>

#include "meos/temporal.hpp"

namespace nebulameos::meos {
namespace {

TFloatSeq FSeq(std::initializer_list<std::pair<double, Timestamp>> vals,
               bool li = true, bool ui = true,
               Interp interp = Interp::kLinear) {
  std::vector<TInstant<double>> instants;
  for (const auto& [v, t] : vals) instants.push_back({v, t});
  auto seq = TFloatSeq::Make(std::move(instants), li, ui, interp);
  EXPECT_TRUE(seq.ok()) << seq.status().ToString();
  return *seq;
}

TEST(TSequence, MakeValidation) {
  EXPECT_FALSE(TFloatSeq::Make({}).ok());
  EXPECT_FALSE(TFloatSeq::Make({{1.0, 10}, {2.0, 10}}).ok());
  EXPECT_FALSE(TFloatSeq::Make({{1.0, 10}, {2.0, 5}}).ok());
  EXPECT_FALSE(TFloatSeq::Make({{1.0, 10}}, false, true).ok());
  EXPECT_TRUE(TFloatSeq::Make({{1.0, 10}}).ok());
}

TEST(TSequence, LinearForcedOffForBool) {
  auto seq = TBoolSeq::Make({{true, 0}, {false, 10}}, true, true,
                            Interp::kLinear);
  EXPECT_FALSE(seq.ok());
  EXPECT_TRUE(
      TBoolSeq::Make({{true, 0}, {false, 10}}, true, true, Interp::kStep)
          .ok());
}

TEST(TSequence, Accessors) {
  const TFloatSeq seq = FSeq({{1.0, 0}, {3.0, 10}, {2.0, 20}});
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_DOUBLE_EQ(seq.StartValue(), 1.0);
  EXPECT_DOUBLE_EQ(seq.EndValue(), 2.0);
  EXPECT_EQ(seq.StartTime(), 0);
  EXPECT_EQ(seq.EndTime(), 20);
  EXPECT_EQ(seq.DurationMicros(), 20);
  EXPECT_TRUE(seq.period().Contains(10));
}

TEST(TSequence, ValueAtLinearInterpolates) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  EXPECT_DOUBLE_EQ(*seq.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(50), 5.0);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(100), 10.0);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(25), 2.5);
}

TEST(TSequence, ValueAtStepHoldsLeft) {
  const TFloatSeq seq =
      FSeq({{1.0, 0}, {5.0, 100}}, true, true, Interp::kStep);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(99), 1.0);
  EXPECT_DOUBLE_EQ(*seq.ValueAt(100), 5.0);
}

TEST(TSequence, ValueAtRespectsBounds) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}}, false, false);
  EXPECT_FALSE(seq.ValueAt(0).has_value());
  EXPECT_FALSE(seq.ValueAt(100).has_value());
  EXPECT_TRUE(seq.ValueAt(1).has_value());
  EXPECT_FALSE(seq.ValueAt(-5).has_value());
  EXPECT_FALSE(seq.ValueAt(105).has_value());
}

TEST(TSequence, AtPeriodInterpolatesBoundaries) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  auto sub = seq.AtPeriod(Period(25, 75));
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->size(), 2u);
  EXPECT_DOUBLE_EQ(sub->StartValue(), 2.5);
  EXPECT_DOUBLE_EQ(sub->EndValue(), 7.5);
  EXPECT_EQ(sub->StartTime(), 25);
  EXPECT_EQ(sub->EndTime(), 75);
}

TEST(TSequence, AtPeriodKeepsInteriorInstants) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 50}, {0.0, 100}});
  auto sub = seq.AtPeriod(Period(25, 75));
  ASSERT_TRUE(sub.has_value());
  ASSERT_EQ(sub->size(), 3u);
  EXPECT_DOUBLE_EQ(sub->instant(1).value, 10.0);
  EXPECT_EQ(sub->instant(1).t, 50);
}

TEST(TSequence, AtPeriodDisjointIsEmpty) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  EXPECT_FALSE(seq.AtPeriod(Period(200, 300)).has_value());
}

TEST(TSequence, AtPeriodInstantaneous) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  auto sub = seq.AtPeriod(Period::Instant(50));
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->size(), 1u);
  EXPECT_DOUBLE_EQ(sub->StartValue(), 5.0);
}

TEST(TSequence, AtPeriodSetSplits) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  PeriodSet ps({Period(0, 20), Period(80, 100)});
  auto parts = seq.AtPeriodSet(ps);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_DOUBLE_EQ(parts[0].EndValue(), 2.0);
  EXPECT_DOUBLE_EQ(parts[1].StartValue(), 8.0);
}

TEST(TSequence, MinusPeriodSet) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  PeriodSet cut({Period(40, 60)});
  auto parts = seq.MinusPeriodSet(cut);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].StartTime(), 0);
  EXPECT_EQ(parts[0].EndTime(), 40);
  EXPECT_FALSE(parts[0].upper_inc());
  EXPECT_EQ(parts[1].StartTime(), 60);
  EXPECT_FALSE(parts[1].lower_inc());
  // Durations partition.
  EXPECT_EQ(parts[0].DurationMicros() + parts[1].DurationMicros() + 20, 100);
}

TEST(TSequence, EverAlwaysValueEq) {
  const TFloatSeq seq = FSeq({{1.0, 0}, {2.0, 10}, {1.0, 20}});
  EXPECT_TRUE(seq.EverValueEq(2.0));
  EXPECT_FALSE(seq.EverValueEq(3.0));
  EXPECT_FALSE(seq.AlwaysValueEq(1.0));
  const TFloatSeq constant = FSeq({{5.0, 0}, {5.0, 10}});
  EXPECT_TRUE(constant.AlwaysValueEq(5.0));
}

TEST(TSequence, Shifted) {
  const TFloatSeq seq = FSeq({{1.0, 0}, {2.0, 10}}).Shifted(100);
  EXPECT_EQ(seq.StartTime(), 100);
  EXPECT_EQ(seq.EndTime(), 110);
}

TEST(TSequence, AppendMaintainsInvariant) {
  TFloatSeq seq = FSeq({{1.0, 0}});
  EXPECT_TRUE(seq.Append({2.0, 10}).ok());
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_FALSE(seq.Append({3.0, 10}).ok());
  EXPECT_FALSE(seq.Append({3.0, 5}).ok());
  EXPECT_TRUE(seq.Append({3.0, 11}).ok());
}

TEST(TSequence, FromValues) {
  auto seq = TFloatSeq::FromValues({1.0, 2.0}, {0, 10});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->size(), 2u);
  EXPECT_FALSE(TFloatSeq::FromValues({1.0}, {0, 10}).ok());
}

TEST(TSequence, PointSequenceInterpolation) {
  auto seq = TSequence<Point>::Make(
      {{Point{0, 0}, 0}, {Point{10, 20}, 100}});
  ASSERT_TRUE(seq.ok());
  const Point mid = *seq->ValueAt(50);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(TSequence, SeqSetDuration) {
  TSeqSet<double> set = {FSeq({{0.0, 0}, {1.0, 10}}),
                         FSeq({{0.0, 20}, {1.0, 50}})};
  EXPECT_EQ(SeqSetDuration(set), 40);
}

// Property: AtPeriod never yields values outside the original range and
// always stays within the requested period.
class AtPeriodProperty : public ::testing::TestWithParam<int> {};

TEST_P(AtPeriodProperty, RestrictionStaysInBounds) {
  const int k = GetParam();
  const TFloatSeq seq =
      FSeq({{0.0, 0}, {8.0, 40}, {-4.0, 80}, {2.0, 120}});
  const Timestamp lo = k * 7 % 130;
  const Timestamp hi = lo + 1 + (k * 13) % 40;
  auto sub = seq.AtPeriod(Period(lo, hi));
  if (!sub.has_value()) {
    // Disjoint request.
    EXPECT_TRUE(hi < seq.StartTime() || lo > seq.EndTime());
    return;
  }
  EXPECT_GE(sub->StartTime(), lo);
  EXPECT_LE(sub->EndTime(), hi);
  EXPECT_GE(sub->StartTime(), seq.StartTime());
  EXPECT_LE(sub->EndTime(), seq.EndTime());
  for (const auto& ins : sub->instants()) {
    EXPECT_GE(ins.value, -4.0);
    EXPECT_LE(ins.value, 8.0);
    // Restriction agrees with direct evaluation.
    EXPECT_DOUBLE_EQ(ins.value, seq.ValueAtUnchecked(ins.t));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtPeriodProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace nebulameos::meos

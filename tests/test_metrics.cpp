// Tests for the metrics subsystem (src/nebula/metrics): instrument
// semantics, power-of-two histogram bucketing and percentile math,
// registry snapshot value-copy isolation, exports, the sampler thread
// lifecycle, and a multi-threaded record/snapshot torture test that the
// CI `sanitize-thread` job runs under TSan as the subsystem's race gate.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "nebula/metrics/metrics.hpp"
#include "nebula/metrics/sampler.hpp"

namespace nebulameos::nebula::metrics {
namespace {

TEST(MetricsCounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsGaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsHistogramTest, BucketBoundaries) {
  // Bucket 0 holds everything <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(HistogramBucketOf(-5), 0u);
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(1023), 10u);
  EXPECT_EQ(HistogramBucketOf(1024), 11u);
  for (size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    EXPECT_EQ(HistogramBucketOf(HistogramBucketLow(b)), b) << b;
    EXPECT_EQ(HistogramBucketOf(HistogramBucketHigh(b)), b) << b;
    EXPECT_LT(HistogramBucketHigh(b), HistogramBucketLow(b + 1)) << b;
  }
  // The top bucket is the int64 catch-all.
  EXPECT_EQ(HistogramBucketOf(std::numeric_limits<int64_t>::max()),
            kHistogramBuckets - 1);
}

TEST(MetricsHistogramTest, RecordsIntoBucketsWithMinMaxSum) {
  Histogram h;
  h.Record(1);
  h.Record(3);
  h.Record(3);
  h.Record(100);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 107);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  EXPECT_DOUBLE_EQ(snap.Mean(), 107.0 / 4.0);
  EXPECT_EQ(snap.buckets[HistogramBucketOf(1)], 1u);
  EXPECT_EQ(snap.buckets[HistogramBucketOf(3)], 2u);
  EXPECT_EQ(snap.buckets[HistogramBucketOf(100)], 1u);
}

TEST(MetricsHistogramTest, EmptySnapshotIsInert) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.P50(), 0.0);
  EXPECT_DOUBLE_EQ(snap.P99(), 0.0);
}

TEST(MetricsHistogramTest, SingleValuePercentilesCollapseToIt) {
  Histogram h;
  h.Record(37);
  const HistogramSnapshot snap = h.Snapshot();
  // min == max == 37 clamps every interpolated percentile exactly.
  EXPECT_DOUBLE_EQ(snap.P50(), 37.0);
  EXPECT_DOUBLE_EQ(snap.P95(), 37.0);
  EXPECT_DOUBLE_EQ(snap.P99(), 37.0);
}

TEST(MetricsHistogramTest, PercentilesAreOrderedAndBucketAccurate) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  const double p50 = snap.P50();
  const double p95 = snap.P95();
  const double p99 = snap.P99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Rank 500 lands in bucket [256, 511]; rank 950 and 990 in [512, 1000].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 511.0);
  EXPECT_GE(p95, 512.0);
  EXPECT_GE(p99, p95);
  // Degenerate inputs clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 1000.0);
}

TEST(MetricsHistogramTest, NonPositiveValuesLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(-17);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.min, -17);
  EXPECT_EQ(snap.max, 0);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("engine.events");
  Gauge* g = registry.GetGauge("worker.depth");
  Histogram* h = registry.GetHistogram("op.Filter.process_micros");
  // Same name, same instrument: bind-once semantics.
  EXPECT_EQ(registry.GetCounter("engine.events"), c);
  EXPECT_EQ(registry.GetGauge("worker.depth"), g);
  EXPECT_EQ(registry.GetHistogram("op.Filter.process_micros"), h);
  c->Add(3);
  g->Set(2.0);
  h->Record(10);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_FALSE(snap.Empty());
  EXPECT_EQ(snap.counters.at("engine.events"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("worker.depth"), 2.0);
  EXPECT_EQ(snap.histograms.at("op.Filter.process_micros").count, 1u);
}

TEST(MetricsRegistryTest, SnapshotIsAValueCopy) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  h->Record(8);
  const MetricsSnapshot before = registry.Snapshot();
  // Later recording must not alter the copy already taken.
  c->Add(100);
  h->Record(1'000'000);
  EXPECT_EQ(before.counters.at("c"), 5u);
  EXPECT_EQ(before.histograms.at("h").count, 1u);
  EXPECT_EQ(before.histograms.at("h").max, 8);
  const MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("c"), 105u);
  EXPECT_EQ(after.histograms.at("h").count, 2u);
}

TEST(MetricsExportTest, JsonCarriesPercentilesAndEscapes) {
  MetricsRegistry registry;
  registry.GetCounter("engine.events_ingested")->Add(7);
  registry.GetGauge("engine.ingest_events_per_sec")->Set(1.5);
  Histogram* h = registry.GetHistogram("op.\"Filter\".process_micros");
  h->Record(10);
  h->Record(20);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"engine.events_ingested\": 7"), std::string::npos);
  EXPECT_NE(json.find("engine.ingest_events_per_sec"), std::string::npos);
  EXPECT_NE(json.find("\\\"Filter\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextSanitizesNames) {
  MetricsRegistry registry;
  registry.GetCounter("channel.root.0.2->1.wire_bytes")->Add(9);
  registry.GetHistogram("op.Filter.process_micros")->Record(5);
  const std::string text = registry.Snapshot().ToPrometheusText();
  // Arrows and dots sanitize to underscores; no raw '>' survives in names.
  EXPECT_NE(text.find("channel_root_0_2__1_wire_bytes 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE channel_root_0_2__1_wire_bytes counter"),
            std::string::npos);
  EXPECT_NE(text.find("op_Filter_process_micros_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
}

TEST(MetricsSamplerTest, TicksAndStopsIdempotently) {
  std::atomic<int> fired{0};
  std::atomic<int64_t> last_elapsed{0};
  Sampler sampler(Millis(5), [&](int64_t elapsed_micros) {
    last_elapsed.store(elapsed_micros);
    fired.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  sampler.Stop();  // second stop is a no-op
  // Stop always fires one final tick, so at least one fired even on a
  // heavily loaded machine, and the counter matches the callback count.
  EXPECT_GE(fired.load(), 1);
  EXPECT_EQ(static_cast<int>(sampler.ticks()), fired.load());
  EXPECT_GE(last_elapsed.load(), 0);
}

TEST(MetricsSamplerTest, StopWithoutTickWindowStillFiresFinalTick) {
  std::atomic<int> fired{0};
  {
    Sampler sampler(Seconds(3600), [&](int64_t) { fired.fetch_add(1); });
    sampler.Stop();
  }
  EXPECT_EQ(fired.load(), 1);
}

// The race gate: four writers hammer one histogram/counter pair through
// the same instrument pointers the engine binds, while the main thread
// snapshots concurrently. TSan (CI `sanitize-thread`) must stay silent,
// and the final snapshot must account for every record exactly.
TEST(MetricsConcurrencyTest, ParallelRecordAndSnapshotTorture) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("torture.events");
  Histogram* histogram = registry.GetHistogram("torture.latency");
  Gauge* gauge = registry.GetGauge("torture.depth");
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record((t * kPerThread + i) % 4096);
        counter->Increment();
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  // Concurrent readers: value-copy snapshots while writers are live.
  uint64_t last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Snapshot();
    const uint64_t seen = snap.counters.at("torture.events");
    EXPECT_GE(seen, last_seen);  // counters are monotone
    last_seen = seen;
  }
  for (std::thread& w : writers) w.join();
  const MetricsSnapshot final_snap = registry.Snapshot();
  const uint64_t total =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread);
  EXPECT_EQ(final_snap.counters.at("torture.events"), total);
  const HistogramSnapshot& h = final_snap.histograms.at("torture.latency");
  EXPECT_EQ(h.count, total);
  uint64_t bucket_sum = 0;
  for (const uint64_t b : h.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
  EXPECT_EQ(h.min, 0);
  EXPECT_EQ(h.max, 4095);
}

}  // namespace
}  // namespace nebulameos::nebula::metrics

// Tests for src/common: Status/Result, timestamps, strings, RNG.

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace nebulameos {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(Status, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Doubled(Result<int> in) {
  NM_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(Time, MakeTimestampEpoch) {
  EXPECT_EQ(MakeTimestamp(1970, 1, 1), 0);
  EXPECT_EQ(MakeTimestamp(1970, 1, 2), kMicrosPerDay);
}

TEST(Time, FormatKnownDate) {
  const Timestamp ts = MakeTimestamp(2023, 6, 1, 8, 30, 15);
  EXPECT_EQ(FormatTimestamp(ts), "2023-06-01 08:30:15");
}

TEST(Time, FormatWithMicros) {
  const Timestamp ts = MakeTimestamp(2023, 6, 1, 8, 30, 15, 250000);
  EXPECT_EQ(FormatTimestamp(ts), "2023-06-01 08:30:15.250000");
}

TEST(Time, ParseRoundTrip) {
  for (const Timestamp ts :
       {MakeTimestamp(1999, 12, 31, 23, 59, 59),
        MakeTimestamp(2023, 6, 1, 8, 0, 0, 123456),
        MakeTimestamp(2000, 2, 29, 0, 0, 0),  // leap day
        MakeTimestamp(2024, 2, 29, 12, 0, 0)}) {
    auto parsed = ParseTimestamp(FormatTimestamp(ts));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, ts);
  }
}

TEST(Time, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a date").ok());
  EXPECT_FALSE(ParseTimestamp("2023-13-01 00:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2023-01-32 00:00:00").ok());
}

TEST(Time, DateOnlyParses) {
  auto parsed = ParseTimestamp("2023-06-01");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, MakeTimestamp(2023, 6, 1));
}

TEST(Time, DurationHelpers) {
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_EQ(Millis(3), 3'000);
  EXPECT_EQ(Minutes(1), 60'000'000);
  EXPECT_EQ(Hours(1), 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingle) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e3 "), -1000.0);
  EXPECT_FALSE(ParseDouble("3.25x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(Strings, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("42.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
}

TEST(Strings, FormatDoubleNoTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(-0.25), "-0.25");
}

TEST(Random, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Random, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Random, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace nebulameos

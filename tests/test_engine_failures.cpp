// Failure-injection and robustness tests: source errors mid-stream,
// logging levels, execution-context pooling, CSV parse errors, the
// all-errors root-cause model, and shared-host branch-failure isolation.

#include <gtest/gtest.h>

#include <atomic>

#include "common/logging.hpp"
#include "nebula/engine.hpp"
#include "nebula/serving/shared_query_manager.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

// A source that produces `good` records and then fails.
class FailingSource : public Source {
 public:
  FailingSource(Schema schema, size_t good)
      : schema_(std::move(schema)), good_(good) {}

  const Schema& schema() const override { return schema_; }

  Result<bool> Fill(TupleBuffer* buffer) override {
    while (!buffer->full()) {
      if (produced_ >= good_) {
        return Status::Internal("sensor bus failure");
      }
      RecordWriter w = buffer->Append();
      w.SetInt64(0, 0);
      w.SetInt64(1, static_cast<Timestamp>(produced_) * Seconds(1));
      w.SetDouble(2, 0.0);
      ++produced_;
    }
    return true;
  }

 private:
  Schema schema_;
  size_t good_;
  size_t produced_ = 0;
};

TEST(EngineFailures, SourceErrorPropagatesFromWait) {
  SetLogLevel(LogLevel::kOff);  // keep the expected error quiet
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(
      Query::From(std::make_unique<FailingSource>(EventSchema(), 100))
          .To(sink));
  ASSERT_TRUE(id.ok());
  const Status status = engine.RunToCompletion(*id);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  SetLogLevel(LogLevel::kWarn);
}

TEST(EngineFailures, SourceErrorPropagatesInPipelinedMode) {
  SetLogLevel(LogLevel::kOff);
  EngineOptions options;
  options.pipelined = true;
  NodeEngine engine(options);
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(
      Query::From(std::make_unique<FailingSource>(EventSchema(), 100))
          .To(sink));
  ASSERT_TRUE(id.ok());
  // The pipelined source thread hits the error; the pipeline drains what
  // arrived and the error surfaces from Wait.
  const Status status = engine.RunToCompletion(*id);
  EXPECT_FALSE(status.ok());
  SetLogLevel(LogLevel::kWarn);
}

TEST(EngineFailures, CsvSourceRejectsMalformedRows) {
  const std::string path = "/tmp/nm_bad_csv_test.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("key,ts,value\n1,1000,2.5\nnot,enough\n", f);
  std::fclose(f);
  auto source = CsvSource::Open(EventSchema(), path, true, "ts");
  ASSERT_TRUE(source.ok());
  TupleBuffer buffer(EventSchema(), 16);
  auto more = (*source)->Fill(&buffer);
  EXPECT_FALSE(more.ok());
  std::remove(path.c_str());
}

TEST(EngineFailures, CsvSourceRejectsBadNumbers) {
  const std::string path = "/tmp/nm_bad_csv_numbers.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("key,ts,value\nabc,1000,2.5\n", f);
  std::fclose(f);
  auto source = CsvSource::Open(EventSchema(), path, true, "ts");
  ASSERT_TRUE(source.ok());
  TupleBuffer buffer(EventSchema(), 16);
  EXPECT_FALSE((*source)->Fill(&buffer).ok());
  std::remove(path.c_str());
}

TEST(EngineFailures, CsvSourceMissingFile) {
  EXPECT_FALSE(
      CsvSource::Open(EventSchema(), "/tmp/does-not-exist-nm.csv").ok());
}

TEST(EngineFailures, CsvSinkBadPath) {
  EXPECT_FALSE(
      CsvSink::Open(EventSchema(), "/no/such/dir/nm-out.csv").ok());
}

TEST(ExecutionContextTest, PoolsPerSchemaAndReuses) {
  ExecutionContext ctx(/*tuples_per_buffer=*/8, /*pool_size=*/4);
  const Schema a = EventSchema();
  const Schema b = Schema::Build().AddInt64("x").Finish();
  TupleBufferPtr buf_a = ctx.Allocate(a);
  TupleBufferPtr buf_b = ctx.Allocate(b);
  EXPECT_EQ(buf_a->capacity(), 8u);
  EXPECT_TRUE(buf_a->schema() == a);
  EXPECT_TRUE(buf_b->schema() == b);
  // Returned buffers come back reset.
  buf_a->Append();
  buf_a->set_watermark(5);
  buf_a.reset();
  TupleBufferPtr again = ctx.Allocate(a);
  EXPECT_TRUE(again->empty());
  EXPECT_EQ(again->watermark(), 0);
}

TEST(Logging, LevelsGateEmission) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must be cheap when below the level.
  NM_LOG_DEBUG() << "dropped " << 42;
  NM_LOG_INFO() << "dropped too";
  SetLogLevel(LogLevel::kOff);
  NM_LOG_ERROR() << "also dropped at kOff";
  SetLogLevel(original);
}

TEST(EngineFailures, EmptySourceCompletesCleanly) {
  NodeEngine engine;
  auto source = std::make_unique<MemorySource>(
      EventSchema(), std::vector<std::vector<Value>>{}, 1, "ts");
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(std::move(source))
                              .Filter(Gt(Attribute("value"), Lit(0.0)))
                              .To(sink));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 0u);
}

// A sink that accepts `good` events and then fails every Consume.
class FailingSink : public SinkOperator {
 public:
  FailingSink(Schema schema, uint64_t good)
      : SinkOperator(std::move(schema)), good_(good) {}
  std::string name() const override { return "FailingSink"; }

 protected:
  Status Consume(const exec::Batch& batch) override {
    if (consumed_.fetch_add(batch.NumRows()) >= good_) {
      return Status::Internal("downstream store rejected the write");
    }
    return Status::OK();
  }

 private:
  uint64_t good_;
  std::atomic<uint64_t> consumed_{0};
};

std::vector<std::vector<Value>> FailureRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr SharedNamedSource(int n) {
  auto src = std::make_unique<MemorySource>(EventSchema(), FailureRows(n), 1,
                                            "ts");
  src->SetLogicalName("trains");
  return src;
}

TEST(EngineFailures, RootCauseCarriesTaskPath) {
  SetLogLevel(LogLevel::kOff);
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(
      Query::From(std::make_unique<FailingSource>(EventSchema(), 100))
          .To(sink));
  ASSERT_TRUE(id.ok());
  const Status status = engine.RunToCompletion(*id);
  ASSERT_FALSE(status.ok());
  // The all-errors model tags every recorded failure with its task path
  // and reports the first *root* cause (non-Cancelled) with that path.
  EXPECT_NE(status.message().find("[root]"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("sensor bus failure"), std::string::npos);
  SetLogLevel(LogLevel::kWarn);
}

// One member of a shared host fails mid-stream (its sink rejects writes):
// the failed branch detaches with a descriptive Status while the sibling
// member and the shared ingest keep running to completion.
void RunSharedHostBranchIsolation(size_t workers) {
  SetLogLevel(LogLevel::kOff);
  EngineOptions options;
  options.worker_threads = workers;
  options.tuples_per_buffer = 8;
  NodeEngine engine(options);
  serving::SharedQueryManager manager(&engine);

  auto healthy_sink = std::make_shared<CollectSink>(EventSchema());
  auto healthy = manager.Submit(Query::From(SharedNamedSource(200))
                                    .Filter(Ge(Attribute("value"), Lit(0.0)))
                                    .To(healthy_sink));
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  auto failing_sink = std::make_shared<FailingSink>(EventSchema(), 32);
  auto failing = manager.Submit(Query::From(SharedNamedSource(200))
                                    .Filter(Ge(Attribute("value"), Lit(0.0)))
                                    .To(failing_sink));
  ASSERT_TRUE(failing.ok()) << failing.status().ToString();
  ASSERT_EQ(manager.NumHostedPlans(), 1u);  // one shared host for both

  ASSERT_TRUE(manager.Start(*healthy).ok());
  // The host completes despite the failed branch...
  EXPECT_TRUE(manager.Wait(*healthy).ok());
  // ...the healthy member saw the whole stream...
  EXPECT_EQ(healthy_sink->RowCount(), 200u);
  // ...and the failed member's owner sees its branch's own failure,
  // carrying the detachment context.
  const Status failed = manager.Wait(*failing);
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("detached"), std::string::npos)
      << failed.ToString();
  EXPECT_NE(failed.message().find("downstream store rejected"),
            std::string::npos)
      << failed.ToString();
  // Cancelling the already-failed member is clean (idempotent detach).
  EXPECT_TRUE(manager.Cancel(*failing).ok());
  EXPECT_TRUE(manager.Cancel(*healthy).ok());
  SetLogLevel(LogLevel::kWarn);
}

TEST(EngineFailures, SharedHostIsolatesFailedBranchSingleWorker) {
  RunSharedHostBranchIsolation(1);
}

TEST(EngineFailures, SharedHostIsolatesFailedBranchFourWorkers) {
  RunSharedHostBranchIsolation(4);
}

TEST(EngineFailures, DoubleStartRejected) {
  NodeEngine engine;
  auto source = std::make_unique<MemorySource>(
      EventSchema(), std::vector<std::vector<Value>>{{Value(int64_t{1}),
                                                      Value(int64_t{1}),
                                                      Value(1.0)}},
      1, "ts");
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(std::move(source)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start(*id).ok());
  EXPECT_FALSE(engine.Start(*id).ok());
  EXPECT_TRUE(engine.Wait(*id).ok());
}

}  // namespace
}  // namespace nebulameos::nebula

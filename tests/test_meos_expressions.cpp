// Tests for the MEOS expression plugin (src/nebulameos/meos_expressions,
// plugin) — edwithin, tpoint_at_stbox (MeosAtStbox), zone functions.

#include <gtest/gtest.h>

#include "nebulameos/plugin.hpp"

namespace nebulameos::integration {
namespace {

using nebula::Attribute;
using nebula::ExprPtr;
using nebula::Fn;
using nebula::Lit;
using nebula::RecordWriter;
using nebula::Schema;
using nebula::TupleBuffer;
using nebula::Value;
using nebula::ValueAsBool;
using nebula::ValueAsDouble;
using nebula::ValueAsInt64;

Schema PosSchema() {
  return Schema::Build()
      .AddDouble("lon")
      .AddDouble("lat")
      .AddTimestamp("ts")
      .Finish();
}

class MeosExprTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto registry = std::make_shared<GeofenceRegistry>();
    registry->AddPolygonZone(
        "zone-a", ZoneKind::kMaintenance,
        *Polygon::Make({{4.0, 50.0}, {4.1, 50.0}, {4.1, 50.1}, {4.0, 50.1}}),
        40.0);
    registry->AddCircleZone("zone-b", ZoneKind::kHighRisk,
                            Circle{{4.35, 50.85}, 1000.0}, 60.0);
    registry->AddPoi("poi-ws", "workshop", {4.37, 50.88});
    Status st = RegisterMeosPlugin(registry);
    ASSERT_TRUE(st.ok()) << st.ToString();
    SetActiveGeofences(registry);
  }

  // Evaluates `expr` on a single (lon, lat, ts) record.
  Value Eval(const ExprPtr& expr, double lon, double lat, Timestamp ts = 0) {
    TupleBuffer buf(PosSchema(), 1);
    RecordWriter w = buf.Append();
    w.SetDouble(0, lon);
    w.SetDouble(1, lat);
    w.SetInt64(2, ts);
    Status st = expr->Bind(buf.schema());
    EXPECT_TRUE(st.ok()) << st.ToString();
    return expr->Eval(buf.At(0));
  }

  ExprPtr LonLat(const std::string& fn, std::vector<ExprPtr> extra) {
    std::vector<ExprPtr> args = {Attribute("lon"), Attribute("lat")};
    for (auto& e : extra) args.push_back(std::move(e));
    return Fn(fn, std::move(args));
  }
};

TEST_F(MeosExprTest, PluginRegistered) {
  EXPECT_TRUE(MeosPluginRegistered());
  auto& reg = nebula::ExpressionRegistry::Global();
  for (const char* name :
       {"edwithin", "tpoint_at_stbox", "in_zone", "in_zone_kind", "zone_id",
        "zone_speed_limit", "nearest_poi_distance", "nearest_poi_id",
        "haversine_m"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
  // Re-registration is idempotent.
  EXPECT_TRUE(RegisterMeosPlugin().ok());
}

TEST_F(MeosExprTest, EdwithinAgainstPoi) {
  auto near = LonLat("edwithin", {Lit(std::string("poi-ws")), Lit(2000.0)});
  EXPECT_TRUE(ValueAsBool(Eval(near, 4.37, 50.89)));   // ~1.1 km away
  EXPECT_FALSE(ValueAsBool(Eval(near, 4.37, 50.95)));  // ~7.8 km away
}

TEST_F(MeosExprTest, EdwithinAgainstZone) {
  // zone-b is a 1 km circle: edwithin 500 m extends the reach to 1.5 km.
  auto near = LonLat("edwithin", {Lit(std::string("zone-b")), Lit(500.0)});
  EXPECT_TRUE(ValueAsBool(Eval(near, 4.35, 50.85)));    // center
  EXPECT_TRUE(ValueAsBool(Eval(near, 4.35, 50.862)));   // ~1.33 km: within
  EXPECT_FALSE(ValueAsBool(Eval(near, 4.35, 50.875)));  // ~2.8 km: outside
}

TEST_F(MeosExprTest, EdwithinErrors) {
  auto& reg = nebula::ExpressionRegistry::Global();
  // Wrong arity.
  EXPECT_FALSE(reg.Create("edwithin", {Lit(1.0)}).ok());
  // Non-literal target.
  auto bad = LonLat("edwithin", {Attribute("lon"), Lit(10.0)});
  TupleBuffer buf(PosSchema(), 1);
  EXPECT_FALSE(bad->Bind(buf.schema()).ok());
  // Unknown target.
  auto unknown =
      LonLat("edwithin", {Lit(std::string("no-such")), Lit(10.0)});
  EXPECT_FALSE(unknown->Bind(buf.schema()).ok());
}

TEST_F(MeosExprTest, MeosAtStboxFiltersSpaceAndTime) {
  auto box = meos::STBox::Make(4.0, 50.0, 4.5, 51.0,
                               meos::Period(Seconds(100), Seconds(200)));
  ASSERT_TRUE(box.ok());
  auto expr = MeosAtStboxExpression::FromBox(
      Attribute("lon"), Attribute("lat"), Attribute("ts"), *box);
  EXPECT_TRUE(ValueAsBool(Eval(expr, 4.2, 50.5, Seconds(150))));
  EXPECT_FALSE(ValueAsBool(Eval(expr, 4.2, 50.5, Seconds(250))));  // time out
  EXPECT_FALSE(ValueAsBool(Eval(expr, 5.0, 50.5, Seconds(150))));  // space out
  // Boundary is inclusive.
  EXPECT_TRUE(ValueAsBool(Eval(expr, 4.0, 50.0, Seconds(100))));
}

TEST_F(MeosExprTest, MeosAtStboxByName) {
  auto expr = Fn("tpoint_at_stbox",
                 {Attribute("lon"), Attribute("lat"), Attribute("ts"),
                  Lit(4.0), Lit(50.0), Lit(4.5), Lit(51.0),
                  Lit(int64_t{0}), Lit(Seconds(100))});
  EXPECT_TRUE(ValueAsBool(Eval(expr, 4.1, 50.1, Seconds(50))));
  EXPECT_FALSE(ValueAsBool(Eval(expr, 4.1, 50.1, Seconds(150))));
}

TEST_F(MeosExprTest, InZoneByName) {
  auto in_a = LonLat("in_zone", {Lit(std::string("zone-a"))});
  EXPECT_TRUE(ValueAsBool(Eval(in_a, 4.05, 50.05)));
  EXPECT_FALSE(ValueAsBool(Eval(in_a, 4.2, 50.05)));
  TupleBuffer buf(PosSchema(), 1);
  auto unknown = LonLat("in_zone", {Lit(std::string("zone-zzz"))});
  EXPECT_FALSE(unknown->Bind(buf.schema()).ok());
}

TEST_F(MeosExprTest, InZoneKindAndZoneId) {
  auto in_maint = LonLat("in_zone_kind", {Lit(std::string("maintenance"))});
  EXPECT_TRUE(ValueAsBool(Eval(in_maint, 4.05, 50.05)));
  EXPECT_FALSE(ValueAsBool(Eval(in_maint, 4.35, 50.85)));
  auto any = LonLat("in_zone_kind", {Lit(std::string(""))});
  EXPECT_TRUE(ValueAsBool(Eval(any, 4.35, 50.85)));
  auto id = LonLat("zone_id", {Lit(std::string("maintenance"))});
  EXPECT_EQ(ValueAsInt64(Eval(id, 4.05, 50.05)), 0);
  EXPECT_EQ(ValueAsInt64(Eval(id, 5.9, 49.0)), -1);
  // Unknown kind fails at bind.
  TupleBuffer buf(PosSchema(), 1);
  auto bad = LonLat("in_zone_kind", {Lit(std::string("volcano"))});
  EXPECT_FALSE(bad->Bind(buf.schema()).ok());
}

TEST_F(MeosExprTest, ZoneSpeedLimit) {
  auto limit = LonLat("zone_speed_limit", {Lit(120.0)});
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(limit, 4.05, 50.05)), 40.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(limit, 4.35, 50.85)), 60.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(limit, 5.9, 49.0)), 120.0);
}

TEST_F(MeosExprTest, NearestPoi) {
  auto dist = LonLat("nearest_poi_distance", {Lit(std::string("workshop"))});
  const double d = ValueAsDouble(Eval(dist, 4.37, 50.89));
  EXPECT_NEAR(d, 1112.0, 30.0);  // ~0.01 deg latitude
  auto id = LonLat("nearest_poi_id", {Lit(std::string("workshop"))});
  EXPECT_EQ(ValueAsInt64(Eval(id, 4.37, 50.89)), 0);
  auto none = LonLat("nearest_poi_id", {Lit(std::string("garage"))});
  EXPECT_EQ(ValueAsInt64(Eval(none, 4.37, 50.89)), -1);
}

TEST_F(MeosExprTest, HaversineFunction) {
  auto d = Fn("haversine_m", {Attribute("lon"), Attribute("lat"), Lit(4.37),
                              Lit(50.88)});
  EXPECT_NEAR(ValueAsDouble(Eval(d, 4.37, 50.89)), 1112.0, 30.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(d, 4.37, 50.88)), 0.0);
}

TEST_F(MeosExprTest, ComposesWithNativeExpressions) {
  // NOT in_zone('zone-a') AND edwithin(poi, 100 km): composition across
  // plugin and native nodes.
  auto expr = nebula::And(
      nebula::Not(LonLat("in_zone", {Lit(std::string("zone-a"))})),
      LonLat("edwithin", {Lit(std::string("poi-ws")), Lit(100'000.0)}));
  EXPECT_TRUE(ValueAsBool(Eval(expr, 4.35, 50.85)));
  EXPECT_FALSE(ValueAsBool(Eval(expr, 4.05, 50.05)));  // inside zone-a
}

TEST_F(MeosExprTest, ParseZoneKindNames) {
  auto any = ParseZoneKind("");
  ASSERT_TRUE(any.ok());
  EXPECT_FALSE(any->has_value());
  auto maint = ParseZoneKind("maintenance");
  ASSERT_TRUE(maint.ok());
  EXPECT_EQ(**maint, ZoneKind::kMaintenance);
  EXPECT_FALSE(ParseZoneKind("volcano").ok());
}

}  // namespace
}  // namespace nebulameos::integration

// Tests for the geofence registry (src/nebulameos/geofence).

#include <gtest/gtest.h>

#include "nebulameos/geofence.hpp"
#include "sncb/network.hpp"

namespace nebulameos::integration {
namespace {

Polygon Rect(double x0, double y0, double x1, double y1) {
  auto poly = Polygon::Make({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
  EXPECT_TRUE(poly.ok());
  return *poly;
}

TEST(Zone, PolygonContainsAndDistance) {
  Zone zone;
  zone.shape = Rect(4.0, 50.0, 4.1, 50.1);
  EXPECT_TRUE(zone.Contains({4.05, 50.05}));
  EXPECT_FALSE(zone.Contains({4.2, 50.05}));
  EXPECT_DOUBLE_EQ(zone.DistanceTo({4.05, 50.05}), 0.0);
  EXPECT_GT(zone.DistanceTo({4.2, 50.05}), 1000.0);  // ~7 km east
}

TEST(Zone, CircleContainsMetricRadius) {
  Zone zone;
  zone.shape = Circle{{4.35, 50.85}, 500.0};
  EXPECT_TRUE(zone.Contains({4.35, 50.85}));
  // ~400 m north (0.0036 deg lat).
  EXPECT_TRUE(zone.Contains({4.35, 50.8536}));
  // 0.01 deg ≈ 1112 m north: outside the 500 m radius by ~612 m.
  EXPECT_FALSE(zone.Contains({4.35, 50.86}));
  EXPECT_NEAR(zone.DistanceTo({4.35, 50.86}), 1112.0 - 500.0, 30.0);
}

TEST(Zone, BoundingBoxCoversCircle) {
  Zone zone;
  zone.shape = Circle{{4.35, 50.85}, 500.0};
  const meos::GeoBox box = zone.BoundingBox();
  EXPECT_TRUE(box.Contains({4.35, 50.8545}));
  EXPECT_LT(box.xmin, 4.35);
  EXPECT_GT(box.xmax, 4.35);
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() {
    maintenance_id_ = registry_.AddPolygonZone(
        "maint-1", ZoneKind::kMaintenance, Rect(4.0, 50.0, 4.1, 50.1), 40.0);
    station_id_ = registry_.AddCircleZone(
        "station-1", ZoneKind::kStation, Circle{{4.35, 50.85}, 400.0}, 30.0);
    risk_id_ = registry_.AddCircleZone(
        "curve-1", ZoneKind::kHighRisk, Circle{{4.05, 50.05}, 8000.0}, 80.0);
    workshop_poi_ = registry_.AddPoi("ws-1", "workshop", {4.37, 50.88});
    registry_.AddPoi("depot-1", "depot", {4.50, 50.90});
  }

  GeofenceRegistry registry_;
  int64_t maintenance_id_ = 0;
  int64_t station_id_ = 0;
  int64_t risk_id_ = 0;
  int64_t workshop_poi_ = 0;
};

TEST_F(RegistryTest, FindByNameAndId) {
  ASSERT_NE(registry_.FindZone("maint-1"), nullptr);
  EXPECT_EQ(registry_.FindZone("maint-1")->id, maintenance_id_);
  EXPECT_EQ(registry_.FindZone(station_id_)->name, "station-1");
  EXPECT_EQ(registry_.FindZone("nope"), nullptr);
  EXPECT_EQ(registry_.FindZone(999), nullptr);
  ASSERT_NE(registry_.FindPoi("ws-1"), nullptr);
  EXPECT_EQ(registry_.FindPoi("nope"), nullptr);
}

TEST_F(RegistryTest, ZonesContainingWithKindFilter) {
  // (4.05, 50.05) is inside both the maintenance rect and the risk circle.
  auto all = registry_.ZonesContaining({4.05, 50.05});
  EXPECT_EQ(all.size(), 2u);
  auto maint =
      registry_.ZonesContaining({4.05, 50.05}, ZoneKind::kMaintenance);
  ASSERT_EQ(maint.size(), 1u);
  EXPECT_EQ(maint[0]->id, maintenance_id_);
  EXPECT_TRUE(
      registry_.ZonesContaining({4.05, 50.05}, ZoneKind::kStation).empty());
}

TEST_F(RegistryTest, InAnyZoneAndZoneIdAt) {
  EXPECT_TRUE(registry_.InAnyZone({4.05, 50.05}));
  EXPECT_TRUE(registry_.InAnyZone({4.05, 50.05}, ZoneKind::kHighRisk));
  EXPECT_FALSE(registry_.InAnyZone({5.5, 49.0}));
  EXPECT_EQ(registry_.ZoneIdAt({4.05, 50.05}, ZoneKind::kMaintenance),
            maintenance_id_);
  EXPECT_EQ(registry_.ZoneIdAt({5.5, 49.0}), -1);
}

TEST_F(RegistryTest, SpeedLimitTakesMinimum) {
  // Inside both maintenance (40) and high-risk (80): min wins.
  EXPECT_DOUBLE_EQ(registry_.SpeedLimitAt({4.05, 50.05}, 120.0), 40.0);
  // Outside all zones: default.
  EXPECT_DOUBLE_EQ(registry_.SpeedLimitAt({5.5, 49.0}, 120.0), 120.0);
}

TEST_F(RegistryTest, NearestPoiByKind) {
  double dist = 0.0;
  const Poi* poi = registry_.NearestPoi({4.36, 50.87}, "workshop", &dist);
  ASSERT_NE(poi, nullptr);
  EXPECT_EQ(poi->id, workshop_poi_);
  EXPECT_LT(dist, 2000.0);
  // Kind filter: no "garage" POIs.
  EXPECT_EQ(registry_.NearestPoi({4.36, 50.87}, "garage", &dist), nullptr);
  EXPECT_TRUE(std::isinf(dist));
  // Empty kind matches everything.
  EXPECT_NE(registry_.NearestPoi({4.49, 50.90}, "", &dist), nullptr);
}

TEST_F(RegistryTest, IndexAndLinearScanAgree) {
  // Property: containment answers must not depend on the grid index.
  for (int i = 0; i < 200; ++i) {
    const Point p{3.9 + 0.002 * i, 49.95 + 0.0015 * i};
    registry_.SetIndexEnabled(true);
    const bool indexed = registry_.InAnyZone(p);
    const int64_t id_indexed = registry_.ZoneIdAt(p);
    registry_.SetIndexEnabled(false);
    EXPECT_EQ(registry_.InAnyZone(p), indexed) << "i=" << i;
    EXPECT_EQ(registry_.ZoneIdAt(p), id_indexed) << "i=" << i;
  }
  registry_.SetIndexEnabled(true);
}

TEST(SncbGeofences, PopulatesAllKinds) {
  const sncb::RailNetwork network = sncb::BuildBelgianNetwork();
  GeofenceRegistry registry;
  sncb::PopulateSncbGeofences(network, &registry);
  EXPECT_GE(registry.NumZones(), 20u);
  EXPECT_GE(registry.NumPois(), 3u);
  int counts[6] = {0};
  for (const Zone& z : registry.zones()) {
    counts[static_cast<int>(z.kind)]++;
  }
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kStation)], 12);
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kWorkshop)], 3);
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kMaintenance)], 2);
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kNoiseSensitive)], 3);
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kHighRisk)], 3);
  EXPECT_EQ(counts[static_cast<int>(ZoneKind::kWeather)], 6);
  // Brussels-Midi station zone contains its own center.
  const Zone* bm = registry.FindZone("station:Brussels-Midi");
  ASSERT_NE(bm, nullptr);
  EXPECT_TRUE(bm->Contains({4.3355, 50.8357}));
}

TEST(ZoneKindName, AllNamed) {
  EXPECT_STREQ(ZoneKindName(ZoneKind::kMaintenance), "maintenance");
  EXPECT_STREQ(ZoneKindName(ZoneKind::kStation), "station");
  EXPECT_STREQ(ZoneKindName(ZoneKind::kWorkshop), "workshop");
  EXPECT_STREQ(ZoneKindName(ZoneKind::kNoiseSensitive), "noise_sensitive");
  EXPECT_STREQ(ZoneKindName(ZoneKind::kHighRisk), "high_risk");
  EXPECT_STREQ(ZoneKindName(ZoneKind::kWeather), "weather");
}

}  // namespace
}  // namespace nebulameos::integration

// Tests for the top-k nearest moving-objects operator
// (src/nebulameos/topk_nearest) and the MovingMinDistance primitive.

#include <gtest/gtest.h>

#include "nebulameos/topk_nearest.hpp"
#include "sncb/records.hpp"

namespace nebulameos::integration {
namespace {

using nebula::RecordWriter;
using nebula::Schema;
using nebula::TupleBuffer;
using nebula::TupleBufferPtr;
using nebula::Value;
using nebula::ValueAsDouble;
using nebula::ValueAsInt64;

Schema PosSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .Finish();
}

TEST(MovingMinDistance, CrossingPaths) {
  auto a = meos::TGeomPointSeq::Make(
      {{meos::Point{0, 0}, 0}, {meos::Point{10, 0}, 100}});
  auto b = meos::TGeomPointSeq::Make(
      {{meos::Point{10, 1}, 0}, {meos::Point{0, 1}, 100}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // They cross at t=50 with lateral offset 1.
  EXPECT_NEAR(MovingMinDistance(*a, *b, meos::Metric::kCartesian), 1.0,
              1e-9);
}

TEST(MovingMinDistance, DisjointPeriodsAreInfinite) {
  auto a = meos::TGeomPointSeq::Make(
      {{meos::Point{0, 0}, 0}, {meos::Point{1, 0}, 10}});
  auto b = meos::TGeomPointSeq::Make(
      {{meos::Point{0, 0}, 20}, {meos::Point{1, 0}, 30}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(std::isinf(MovingMinDistance(*a, *b, meos::Metric::kCartesian)));
}

TEST(MovingMinDistance, ParallelConstantGap) {
  auto a = meos::TGeomPointSeq::Make(
      {{meos::Point{0, 0}, 0}, {meos::Point{10, 0}, 100}});
  auto b = meos::TGeomPointSeq::Make(
      {{meos::Point{0, 4}, 0}, {meos::Point{10, 4}, 100}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(MovingMinDistance(*a, *b, meos::Metric::kCartesian), 4.0,
              1e-9);
}

class TopKHarness {
 public:
  explicit TopKHarness(TopKNearestOptions options) {
    auto op = TopKNearestOperator::Make(PosSchema(), std::move(options));
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    op_ = std::move(*op);
    EXPECT_TRUE(op_->Open(&ctx_).ok());
  }

  void Feed(
      std::initializer_list<std::tuple<int64_t, Timestamp, double, double>>
          rows) {
    auto buf = std::make_shared<TupleBuffer>(PosSchema(), rows.size());
    for (const auto& [key, ts, lon, lat] : rows) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, key);
      w.SetInt64(1, ts);
      w.SetDouble(2, lon);
      w.SetDouble(3, lat);
    }
    EXPECT_TRUE(op_->Process(buf, collector_).ok());
  }

  void Finish() { EXPECT_TRUE(op_->Finish(collector_).ok()); }

  // Stored callable: Operator::EmitFn is a non-owning FunctionRef, so the
  // referenced callable must outlive the Process/Finish call.
  std::function<void(const TupleBufferPtr&)> MakeCollector() {
    return [this](const TupleBufferPtr& out) {
      for (size_t i = 0; i < out->size(); ++i) {
        const auto rec = out->At(i);
        rows_.push_back({Value(rec.GetInt64(0)), Value(rec.GetInt64(1)),
                         Value(rec.GetInt64(2)), Value(rec.GetInt64(3)),
                         Value(rec.GetInt64(4)), Value(rec.GetDouble(5))});
      }
    };
  }

  const std::vector<std::vector<Value>>& rows() const { return rows_; }

 private:
  nebula::ExecutionContext ctx_;
  nebula::OperatorPtr op_;
  std::vector<std::vector<Value>> rows_;
  std::function<void(const TupleBufferPtr&)> collector_ = MakeCollector();
};

TopKNearestOptions Options(size_t k) {
  TopKNearestOptions options;
  options.k = k;
  options.window = Minutes(1);
  options.key_field = "train_id";
  options.time_field = "ts";
  options.metric = meos::Metric::kCartesian;
  return options;
}

TEST(TopKNearest, Validation) {
  TopKNearestOptions options = Options(3);
  options.k = 0;
  EXPECT_FALSE(TopKNearestOperator::Make(PosSchema(), options).ok());
  options = Options(3);
  options.window = 0;
  EXPECT_FALSE(TopKNearestOperator::Make(PosSchema(), options).ok());
  options = Options(3);
  options.key_field = "missing";
  EXPECT_FALSE(TopKNearestOperator::Make(PosSchema(), options).ok());
}

TEST(TopKNearest, RanksNeighborsByNearestApproach) {
  TopKHarness h(Options(2));
  // Three stationary objects on a line: 0 at x=0, 1 at x=1, 2 at x=10.
  h.Feed({{0, Seconds(1), 0.0, 0.0},
          {1, Seconds(1), 1.0, 0.0},
          {2, Seconds(1), 10.0, 0.0},
          {0, Seconds(30), 0.0, 0.0},
          {1, Seconds(30), 1.0, 0.0},
          {2, Seconds(30), 10.0, 0.0}});
  h.Finish();
  // Each of the 3 objects gets k=2 neighbour rows.
  ASSERT_EQ(h.rows().size(), 6u);
  // Object 0: nearest is 1 (d=1), then 2 (d=10).
  EXPECT_EQ(ValueAsInt64(h.rows()[0][0]), 0);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][3]), 1);  // rank 1
  EXPECT_EQ(ValueAsInt64(h.rows()[0][4]), 1);  // neighbor id
  EXPECT_NEAR(ValueAsDouble(h.rows()[0][5]), 1.0, 1e-9);
  EXPECT_EQ(ValueAsInt64(h.rows()[1][4]), 2);
  EXPECT_NEAR(ValueAsDouble(h.rows()[1][5]), 10.0, 1e-9);
  // Object 2: nearest is 1 (d=9).
  EXPECT_EQ(ValueAsInt64(h.rows()[4][0]), 2);
  EXPECT_EQ(ValueAsInt64(h.rows()[4][4]), 1);
  EXPECT_NEAR(ValueAsDouble(h.rows()[4][5]), 9.0, 1e-9);
}

TEST(TopKNearest, UsesNearestApproachNotSnapshot) {
  TopKHarness h(Options(1));
  // Objects 0 and 1 cross mid-window; 2 stays 3 units from 0 throughout.
  // Snapshot distances at the two instants: |0-1| = 8 both times, but the
  // crossing brings them within 0 of each other.
  h.Feed({{0, Seconds(0), 0.0, 0.0},
          {1, Seconds(0), 8.0, 0.0},
          {2, Seconds(0), 0.0, 3.0},
          {0, Seconds(30), 8.0, 0.0},
          {1, Seconds(30), 0.0, 0.0},
          {2, Seconds(30), 8.0, 3.0}});
  h.Finish();
  // Object 0's nearest must be 1 (crossing → distance 0), not 2 (3.0).
  ASSERT_GE(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][0]), 0);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][4]), 1);
  EXPECT_NEAR(ValueAsDouble(h.rows()[0][5]), 0.0, 1e-9);
}

TEST(TopKNearest, KLargerThanFleetIsClamped) {
  TopKHarness h(Options(10));
  h.Feed({{0, Seconds(1), 0.0, 0.0},
          {1, Seconds(1), 1.0, 0.0},
          {0, Seconds(2), 0.0, 0.0},
          {1, Seconds(2), 1.0, 0.0}});
  h.Finish();
  // Two objects: each gets exactly one neighbour row.
  EXPECT_EQ(h.rows().size(), 2u);
}

TEST(TopKNearest, WindowsFireOnWatermark) {
  TopKHarness h(Options(1));
  h.Feed({{0, Seconds(1), 0.0, 0.0},
          {1, Seconds(2), 5.0, 0.0},
          {0, Seconds(20), 0.0, 0.0},
          {1, Seconds(21), 5.0, 0.0}});
  EXPECT_TRUE(h.rows().empty());  // window [0, 60) still open
  // An event in the next window advances the watermark past the first.
  h.Feed({{0, Minutes(1) + Seconds(1), 0.0, 0.0}});
  EXPECT_EQ(h.rows().size(), 2u);
  h.Finish();  // the second window has a single object: nothing to rank
  EXPECT_EQ(h.rows().size(), 2u);
}

TEST(TopKNearest, SingleObjectEmitsNothing) {
  TopKHarness h(Options(2));
  h.Feed({{0, Seconds(1), 0.0, 0.0}, {0, Seconds(2), 1.0, 0.0}});
  h.Finish();
  EXPECT_TRUE(h.rows().empty());
}

TEST(TopKNearest, SncbFleetEndToEnd) {
  // Real fleet stream: every train must report k=2 neighbours per fired
  // window, with positive metric distances.
  const sncb::RailNetwork network = sncb::BuildBelgianNetwork();
  sncb::SncbSources sources(&network);
  TopKNearestOptions options;
  options.k = 2;
  options.window = Minutes(2);
  options.key_field = "train_id";
  options.time_field = "ts";
  options.metric = meos::Metric::kWgs84;
  auto op = TopKNearestOperator::Make(sncb::PositionSchema(), options);
  ASSERT_TRUE(op.ok());
  nebula::ExecutionContext ctx;
  ASSERT_TRUE((*op)->Open(&ctx).ok());
  auto source = sources.Position(60'000);
  std::vector<std::vector<Value>> rows;
  auto collect = [&](const TupleBufferPtr& out) {
    for (size_t i = 0; i < out->size(); ++i) {
      const auto rec = out->At(i);
      rows.push_back({Value(rec.GetInt64(0)), Value(rec.GetInt64(3)),
                      Value(rec.GetInt64(4)), Value(rec.GetDouble(5))});
    }
  };
  while (true) {
    auto buf = std::make_shared<TupleBuffer>(sncb::PositionSchema(), 4096);
    auto more = source->Fill(buf.get());
    ASSERT_TRUE(more.ok());
    if (!buf->empty()) {
      ASSERT_TRUE((*op)->Process(buf, collect).ok());
    }
    if (!*more) break;
  }
  ASSERT_TRUE((*op)->Finish(collect).ok());
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_GE(ValueAsInt64(row[0]), 0);
    EXPECT_LT(ValueAsInt64(row[0]), 6);
    EXPECT_GE(ValueAsInt64(row[1]), 1);  // rank
    EXPECT_LE(ValueAsInt64(row[1]), 2);
    EXPECT_NE(ValueAsInt64(row[0]), ValueAsInt64(row[2]));  // not itself
    EXPECT_GT(ValueAsDouble(row[3]), 0.0);                  // meters apart
  }
}

}  // namespace
}  // namespace nebulameos::integration

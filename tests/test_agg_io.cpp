// Tests for temporal aggregates (src/meos/agg) and text IO (src/meos/io).

#include <gtest/gtest.h>

#include "meos/agg.hpp"
#include "meos/io.hpp"

namespace nebulameos::meos {
namespace {

TGeomPointSeq PSeq(std::initializer_list<std::pair<Point, Timestamp>> vals) {
  std::vector<TInstant<Point>> instants;
  for (const auto& [p, t] : vals) instants.push_back({p, t});
  auto seq = TGeomPointSeq::Make(std::move(instants));
  EXPECT_TRUE(seq.ok());
  return *seq;
}

TFloatSeq FSeq(std::initializer_list<std::pair<double, Timestamp>> vals,
               Interp interp = Interp::kLinear) {
  std::vector<TInstant<double>> instants;
  for (const auto& [v, t] : vals) instants.push_back({v, t});
  auto seq = TFloatSeq::Make(std::move(instants), true, true, interp);
  EXPECT_TRUE(seq.ok());
  return *seq;
}

TEST(ExtentAggregator, UnionsBoxes) {
  ExtentAggregator agg;
  EXPECT_FALSE(agg.extent().has_value());
  agg.Add(PSeq({{{0, 0}, 0}, {{5, 5}, 100}}));
  agg.Add(PSeq({{{-2, 3}, 50}, {{1, 9}, 200}}));
  ASSERT_TRUE(agg.extent().has_value());
  EXPECT_DOUBLE_EQ(agg.extent()->xmin(), -2.0);
  EXPECT_DOUBLE_EQ(agg.extent()->ymax(), 9.0);
  EXPECT_EQ(agg.extent()->tmin(), 0);
  EXPECT_EQ(agg.extent()->tmax(), 200);
}

TEST(ExtentAggregator, AddPointAndMerge) {
  ExtentAggregator a;
  a.AddPoint({1, 1}, 10);
  ExtentAggregator b;
  b.AddPoint({5, -1}, 20);
  a.Merge(b);
  ASSERT_TRUE(a.extent().has_value());
  EXPECT_DOUBLE_EQ(a.extent()->xmax(), 5.0);
  EXPECT_DOUBLE_EQ(a.extent()->ymin(), -1.0);
  EXPECT_EQ(a.extent()->tmax(), 20);
}

TEST(TwAvgAggregator, TimeWeightedAcrossSequences) {
  TwAvgAggregator agg;
  EXPECT_FALSE(agg.Value().has_value());
  // 10 seconds at avg 2, then 10 seconds at avg 6.
  agg.Add(FSeq({{2.0, 0}, {2.0, Seconds(10)}}));
  agg.Add(FSeq({{6.0, Seconds(10)}, {6.0, Seconds(20)}}));
  ASSERT_TRUE(agg.Value().has_value());
  EXPECT_NEAR(*agg.Value(), 4.0, 1e-9);
}

TEST(TwAvgAggregator, InstantFallback) {
  TwAvgAggregator agg;
  agg.Add(FSeq({{4.0, 0}}));
  agg.Add(FSeq({{8.0, 10}}));
  ASSERT_TRUE(agg.Value().has_value());
  EXPECT_DOUBLE_EQ(*agg.Value(), 6.0);
}

TEST(TwAvgAggregator, MergeCombinesIntegrals) {
  TwAvgAggregator a, b;
  a.Add(FSeq({{2.0, 0}, {2.0, Seconds(10)}}));
  b.Add(FSeq({{6.0, 0}, {6.0, Seconds(30)}}));
  a.Merge(b);
  EXPECT_NEAR(*a.Value(), (2.0 * 10 + 6.0 * 30) / 40.0, 1e-9);
}

TEST(TCountAggregator, ProfileAndMax) {
  TCountAggregator agg;
  EXPECT_EQ(agg.MaxCount(), 0);
  agg.Add(Period(0, 100));
  agg.Add(Period(50, 150));
  agg.Add(Period(60, 80));
  EXPECT_EQ(agg.MaxCount(), 3);
  auto profile = agg.Profile();
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(*profile->ValueAt(10), 1);
  EXPECT_EQ(*profile->ValueAt(70), 3);
  EXPECT_EQ(*profile->ValueAt(120), 1);
}

TEST(MinMaxAggregator, TracksExtremes) {
  MinMaxAggregator agg;
  EXPECT_FALSE(agg.Min().has_value());
  agg.Add(FSeq({{3.0, 0}, {7.0, 10}}));
  agg.Add(FSeq({{-1.0, 20}, {2.0, 30}}));
  EXPECT_DOUBLE_EQ(*agg.Min(), -1.0);
  EXPECT_DOUBLE_EQ(*agg.Max(), 7.0);
  MinMaxAggregator other;
  other.Add(FSeq({{100.0, 0}}));
  agg.Merge(other);
  EXPECT_DOUBLE_EQ(*agg.Max(), 100.0);
}

TEST(Io, TFloatRoundTrip) {
  const TFloatSeq seq = FSeq({{1.5, MakeTimestamp(2023, 6, 1, 8, 0, 0)},
                              {2.25, MakeTimestamp(2023, 6, 1, 8, 1, 0)}});
  const std::string text = TFloatToString(seq);
  auto parsed = TFloatFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " text=" << text;
  EXPECT_TRUE(*parsed == seq);
}

TEST(Io, TFloatStepRoundTrip) {
  auto seq = TFloatSeq::Make({{1.0, 0}, {2.0, kMicrosPerSecond}},
                             /*lower_inc=*/false, /*upper_inc=*/true,
                             Interp::kStep);
  ASSERT_TRUE(seq.ok());
  const std::string text = TFloatToString(*seq);
  EXPECT_NE(text.find("Interp=Step;"), std::string::npos);
  EXPECT_EQ(text.find('['), std::string::npos);  // open lower bound -> '('
  auto parsed = TFloatFromString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == *seq);
}

TEST(Io, TPointRoundTrip) {
  const TGeomPointSeq seq =
      PSeq({{{4.35, 50.84}, MakeTimestamp(2023, 6, 1, 8, 0, 0)},
            {{4.40, 50.88}, MakeTimestamp(2023, 6, 1, 8, 5, 0)}});
  auto parsed = TPointFromString(TPointToString(seq));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == seq);
}

TEST(Io, TPointStringShape) {
  const TGeomPointSeq seq = PSeq({{{1, 2}, 0}});
  const std::string text = TPointToString(seq);
  EXPECT_NE(text.find("POINT(1 2)@"), std::string::npos);
}

TEST(Io, TBoolToString) {
  auto seq = TBoolSeq::Make({{true, 0}, {false, kMicrosPerSecond}}, true,
                            true, Interp::kStep);
  ASSERT_TRUE(seq.ok());
  const std::string text = TBoolToString(*seq);
  EXPECT_NE(text.find("t@"), std::string::npos);
  EXPECT_NE(text.find("f@"), std::string::npos);
}

TEST(Io, ParseRejectsMalformed) {
  EXPECT_FALSE(TFloatFromString("1.5@2023-06-01 08:00:00").ok());  // no brackets
  EXPECT_FALSE(TFloatFromString("[1.5 2023-06-01]").ok());         // no '@'
  EXPECT_FALSE(TFloatFromString("[x@2023-06-01 08:00:00]").ok());  // bad value
  EXPECT_FALSE(TPointFromString("[POINT(1)@2023-06-01 08:00:00]").ok());
}

TEST(Io, GeoJsonShape) {
  const TGeomPointSeq seq = PSeq({{{4.35, 50.84}, 1000}, {{4.36, 50.85}, 2000}});
  const std::string json = TPointToGeoJson(seq, "train-1");
  EXPECT_NE(json.find("\"type\":\"Feature\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"train-1\""), std::string::npos);
  EXPECT_NE(json.find("\"times\":[1000,2000]"), std::string::npos);
  EXPECT_NE(json.find("[4.35,50.84]"), std::string::npos);
}

TEST(Io, MfJsonShape) {
  const TGeomPointSeq seq = PSeq({{{1, 2}, 0}, {{3, 4}, kMicrosPerSecond}});
  const std::string json = TPointToMfJson(seq);
  EXPECT_NE(json.find("\"type\":\"MovingPoint\""), std::string::npos);
  EXPECT_NE(json.find("\"interpolation\":\"Linear\""), std::string::npos);
  EXPECT_NE(json.find("\"lower_inc\":true"), std::string::npos);
  EXPECT_NE(json.find("\"datetimes\""), std::string::npos);
}

}  // namespace
}  // namespace nebulameos::meos

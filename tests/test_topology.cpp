// Tests for the topology simulation (src/nebula/topology) — Figure 1's
// edge architecture as a measurable model.

#include <gtest/gtest.h>

#include "nebula/topology.hpp"

namespace nebulameos::nebula {
namespace {

TEST(Topology, AddNodeRejectsDuplicates) {
  Topology topo;
  EXPECT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "a", 1.0}).ok());
  EXPECT_FALSE(topo.AddNode({1, NodeKind::kCloudWorker, "b", 1.0}).ok());
}

TEST(Topology, AddLinkValidatesEndpointsAndBandwidth) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "a", 1.0}).ok());
  ASSERT_TRUE(topo.AddNode({2, NodeKind::kCloudWorker, "b", 1.0}).ok());
  EXPECT_FALSE(topo.AddLink({1, 3, 1e6, 0}).ok());
  EXPECT_FALSE(topo.AddLink({1, 2, 0.0, 0}).ok());
  EXPECT_TRUE(topo.AddLink({1, 2, 1e6, Millis(10)}).ok());
  EXPECT_TRUE(topo.GetLink(1, 2).ok());
  EXPECT_FALSE(topo.GetLink(2, 1).ok());
}

TEST(Topology, SncbReferenceShape) {
  const Topology topo = Topology::SncbReference(6, 1e6, Millis(50));
  // Coordinator + cloud worker + 6 trains.
  EXPECT_EQ(topo.nodes().size(), 8u);
  int edges = 0, clouds = 0, coords = 0;
  for (const auto& node : topo.nodes()) {
    switch (node.kind) {
      case NodeKind::kEdgeWorker:
        ++edges;
        break;
      case NodeKind::kCloudWorker:
        ++clouds;
        break;
      case NodeKind::kCoordinator:
        ++coords;
        break;
    }
  }
  EXPECT_EQ(edges, 6);
  EXPECT_EQ(clouds, 1);
  EXPECT_EQ(coords, 1);
  // Every train has an uplink to the cloud worker.
  for (const auto& node : topo.nodes()) {
    if (node.kind == NodeKind::kEdgeWorker) {
      EXPECT_TRUE(topo.GetLink(node.id, 1).ok());
      EXPECT_TRUE(topo.GetLink(1, node.id).ok());
    }
  }
}

// A measured chain: filter keeping 1% (selectivity), then the sink.
std::vector<std::pair<std::string, OperatorStats>> MeasuredChain(
    uint64_t source_bytes) {
  OperatorStats filter;
  filter.events_in = 100'000;
  filter.bytes_in = source_bytes;
  filter.events_out = 1'000;
  filter.bytes_out = source_bytes / 100;
  OperatorStats sink;
  sink.events_in = filter.events_out;
  sink.bytes_in = filter.bytes_out;
  return {{"Filter", filter}, {"CollectSink", sink}};
}

TEST(Deployment, EdgePushdownShipsOnlyResults) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  const uint64_t source_bytes = 10'000'000;
  const auto chain = MeasuredChain(source_bytes);
  const Placement placement = EdgePushdownPlacement(chain.size(), 2, 1);
  auto report = SimulateDeployment(topo, chain, source_bytes, placement);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Only the filter's output crosses the uplink.
  EXPECT_EQ(report->uplink_bytes, source_bytes / 100);
}

TEST(Deployment, CloudPlacementShipsRawStream) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  const uint64_t source_bytes = 10'000'000;
  const auto chain = MeasuredChain(source_bytes);
  const Placement placement = CloudPlacement(chain.size(), 2, 1);
  auto report = SimulateDeployment(topo, chain, source_bytes, placement);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->uplink_bytes, source_bytes);
  // Edge pushdown wins by the filter's selectivity.
  const auto pushdown = SimulateDeployment(
      topo, chain, source_bytes, EdgePushdownPlacement(chain.size(), 2, 1));
  ASSERT_TRUE(pushdown.ok());
  EXPECT_GT(report->uplink_bytes, pushdown->uplink_bytes * 50);
  EXPECT_GT(report->total_transfer_seconds,
            pushdown->total_transfer_seconds);
}

TEST(Deployment, TransferTimeUsesBandwidthAndLatency) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "edge", 1.0}).ok());
  ASSERT_TRUE(topo.AddNode({2, NodeKind::kCloudWorker, "cloud", 1.0}).ok());
  ASSERT_TRUE(topo.AddLink({1, 2, 1000.0, Millis(500)}).ok());
  OperatorStats sink;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"CountingSink", sink}};
  Placement placement;
  placement.node_of[-1] = 1;
  placement.node_of[0] = 2;
  auto report = SimulateDeployment(topo, chain, 2000, placement);
  ASSERT_TRUE(report.ok());
  // 2000 bytes at 1000 B/s + 0.5 s latency = 2.5 s.
  EXPECT_NEAR(report->total_transfer_seconds, 2.5, 1e-9);
  EXPECT_EQ(report->uplink_bytes, 2000u);
}

TEST(Deployment, MissingLinkOrPlacementErrors) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "edge", 1.0}).ok());
  ASSERT_TRUE(topo.AddNode({2, NodeKind::kCloudWorker, "cloud", 1.0}).ok());
  OperatorStats sink;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"CountingSink", sink}};
  Placement placement;
  placement.node_of[-1] = 1;
  placement.node_of[0] = 2;
  // No link between 1 and 2.
  EXPECT_FALSE(SimulateDeployment(topo, chain, 100, placement).ok());
  // Missing operator in placement.
  Placement incomplete;
  incomplete.node_of[-1] = 1;
  EXPECT_FALSE(SimulateDeployment(topo, chain, 100, incomplete).ok());
}

// Regression: AddLink used to accept duplicate (from, to) pairs, leaving
// GetLink to silently return whichever was registered first.
TEST(Topology, AddLinkRejectsDuplicates) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "a", 1.0}).ok());
  ASSERT_TRUE(topo.AddNode({2, NodeKind::kCloudWorker, "b", 1.0}).ok());
  ASSERT_TRUE(topo.AddLink({1, 2, 1e6, Millis(10)}).ok());
  const Status dup = topo.AddLink({1, 2, 5e6, Millis(1)});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  // The reverse direction is a different link and stays addable.
  EXPECT_TRUE(topo.AddLink({2, 1, 1e6, Millis(10)}).ok());
  ASSERT_EQ(topo.links().size(), 2u);
  EXPECT_DOUBLE_EQ(topo.GetLink(1, 2)->bandwidth_bytes_per_sec, 1e6);
}

TEST(Topology, ShortestPathFindsMultiHopRoute) {
  const Topology topo = Topology::SncbReference(2, 1e6, Millis(60));
  // Train (2) reaches the coordinator (0) only via the cloud worker (1).
  auto route = topo.ShortestPath(2, 0);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  ASSERT_EQ(route->size(), 2u);
  EXPECT_EQ((*route)[0].from, 2);
  EXPECT_EQ((*route)[0].to, 1);
  EXPECT_EQ((*route)[1].from, 1);
  EXPECT_EQ((*route)[1].to, 0);
  // Train-to-train relays through the cloud worker (2 -> 1 -> 3).
  auto relay = topo.ShortestPath(2, 3);
  ASSERT_TRUE(relay.ok()) << relay.status().ToString();
  EXPECT_EQ(relay->size(), 2u);
  // Unknown endpoints fail; self-routes are empty.
  EXPECT_FALSE(topo.ShortestPath(2, 99).ok());
  auto self = topo.ShortestPath(1, 1);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->empty());
}

// Regression: SimulateDeployment returned NotFound whenever two placed
// operators lacked a *direct* link — any placement on the coordinator
// failed because SncbReference only links trains to the cloud worker.
TEST(Deployment, RoutesOverMultiHopPaths) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  const uint64_t source_bytes = 1'000'000;
  OperatorStats sink;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"CountingSink", sink}};
  Placement placement;
  placement.node_of[-1] = 2;  // train
  placement.node_of[0] = 0;   // coordinator: no direct train link
  auto report = SimulateDeployment(topo, chain, source_bytes, placement);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Both hops carried the stream; the cellular hop counts as uplink once.
  EXPECT_EQ(report->link_bytes.at({2, 1}), source_bytes);
  EXPECT_EQ(report->link_bytes.at({1, 0}), source_bytes);
  EXPECT_EQ(report->uplink_bytes, source_bytes);
  // Transfer time: 1 MB at 1 MB/s + 50 ms, then 1 MB at 1 GB/s + 1 ms.
  EXPECT_NEAR(report->total_transfer_seconds, 1.0 + 0.05 + 0.001 + 0.001,
              1e-9);
}

// Regression: byte-count ties used to break toward the earliest cut,
// keeping operators in the cloud when a deeper cut ships the same bytes.
TEST(Topology, OptimizeCutPrefersDeepestTiedCut) {
  // Filter and Map both emit exactly 100 KB: cutting after either ships
  // the same bytes, so the map belongs on the edge too.
  OperatorStats filter;
  filter.bytes_out = 100'000;
  OperatorStats map;
  map.bytes_out = 100'000;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"Filter", filter}, {"Map", map}, {"CountingSink", OperatorStats{}}};
  uint64_t uplink = 0;
  const Placement p = OptimizeCutPlacement(chain, 10'000'000, 2, 1, &uplink);
  EXPECT_EQ(uplink, 100'000u);
  EXPECT_EQ(p.NodeOf(0), 2);  // filter on the edge
  EXPECT_EQ(p.NodeOf(1), 2);  // tied map pushed down too
  EXPECT_EQ(p.NodeOf(2), 1);  // sink in the cloud
}

TEST(Deployment, SameNodeTransfersAreFree) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kEdgeWorker, "edge", 1.0}).ok());
  OperatorStats sink;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"CountingSink", sink}};
  Placement placement;
  placement.node_of[-1] = 1;
  placement.node_of[0] = 1;
  auto report = SimulateDeployment(topo, chain, 1'000'000, placement);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->uplink_bytes, 0u);
  EXPECT_DOUBLE_EQ(report->total_transfer_seconds, 0.0);
}

}  // namespace
}  // namespace nebulameos::nebula

// Tier-2 tests of the fleet-scale serving layer (src/nebula/serving):
// plan-level structural identity, shared-host grouping with prefix
// shrink, runtime branch admission and teardown, branch-scoped
// stats/metrics, the coordinator merge layer's ordering contract, and the
// fleet deployment conventions (per-train sharing, shared uplink).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "nebula/serving/fleet.hpp"
#include "nebula/serving/merge.hpp"
#include "nebula/serving/shared_query_manager.hpp"

namespace nebulameos::nebula::serving {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

// A MemorySource declared as an instance of the named logical source
// "trains" — the identity that makes independently submitted plans
// shareable.
SourcePtr NamedSource(int n, size_t rounds = 1) {
  auto src =
      std::make_unique<MemorySource>(EventSchema(), MakeRows(n), rounds, "ts");
  src->SetLogicalName("trains");
  return src;
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

// --- A gated source for deterministic mid-stream admission -------------
//
// Emits rows only up to the released budget; `Fill` blocks at the gate,
// so the test fully controls which rows were in flight when a branch was
// admitted or detached.

struct GateState {
  std::mutex mutex;
  std::condition_variable cv;
  size_t released = 0;
  bool closed = false;

  void Release(size_t n) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      released += n;
    }
    cv.notify_all();
  }
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    cv.notify_all();
  }
};

class GateSource final : public Source {
 public:
  GateSource(std::vector<std::vector<Value>> rows,
             std::shared_ptr<GateState> gate)
      : schema_(EventSchema()),
        rows_(std::move(rows)),
        gate_(std::move(gate)),
        stamper_(schema_, "ts") {}

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "GateSource"; }

  Result<bool> Fill(TupleBuffer* buffer) override {
    size_t allowed = 0;
    {
      std::unique_lock<std::mutex> lock(gate_->mutex);
      gate_->cv.wait(lock,
                     [&] { return gate_->released > pos_ || gate_->closed; });
      allowed = std::min(gate_->released, rows_.size());
    }
    if (pos_ >= allowed) return false;  // closed with nothing released
    while (!buffer->full() && pos_ < allowed) {
      const std::vector<Value>& row = rows_[pos_++];
      RecordWriter w = buffer->Append();
      w.SetInt64(0, std::get<int64_t>(row[0]));
      w.SetInt64(1, std::get<int64_t>(row[1]));
      w.SetDouble(2, std::get<double>(row[2]));
      stamper_.Observe(w.View());
    }
    stamper_.Stamp(buffer);
    return pos_ < rows_.size();
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  std::shared_ptr<GateState> gate_;
  size_t pos_ = 0;
  StreamStamper stamper_;
};

bool WaitForRows(const CollectSink& sink, size_t n) {
  for (int i = 0; i < 5000; ++i) {
    if (sink.RowCount() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// --- Plan-level structural identity ------------------------------------

TEST(PlanStructuralIdentity, EqualOpsCompareAndHashEqual) {
  FilterNode a(Ge(Attribute("value"), Lit(2.0)));
  FilterNode b(Ge(Attribute("value"), Lit(2.0)));
  EXPECT_TRUE(StructurallyEqual(a, b));
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));
}

TEST(PlanStructuralIdentity, DivergentPayloadsDiffer) {
  FilterNode a(Ge(Attribute("value"), Lit(2.0)));
  FilterNode b(Ge(Attribute("value"), Lit(3.0)));
  EXPECT_FALSE(StructurallyEqual(a, b));
  EXPECT_NE(StructuralHash(a), StructuralHash(b));
}

// Field-name lists must hash with separators: {"ab","c"} and {"a","bc"}
// concatenate identically but are different projections.
TEST(PlanStructuralIdentity, CollisionProneFieldNamesDoNotCollide) {
  ProjectNode a({"ab", "c"});
  ProjectNode b({"a", "bc"});
  EXPECT_FALSE(StructurallyEqual(a, b));
  EXPECT_NE(StructuralHash(a), StructuralHash(b));
}

TEST(PlanStructuralIdentity, PlacementDivergencePreventsEquality) {
  KeyByNode a("key");
  KeyByNode b("key");
  EXPECT_TRUE(StructurallyEqual(a, b));
  a.set_placement(2);
  b.set_placement(3);
  EXPECT_FALSE(StructurallyEqual(a, b));
  EXPECT_NE(StructuralHash(a), StructuralHash(b));
}

TEST(PlanStructuralIdentity, CloneIsStructurallyEqual) {
  MapNode original({{"scaled", Mul(Attribute("value"), Lit(2.0))}});
  original.set_placement(4);
  LogicalOperatorPtr clone = CloneOperator(original);
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(StructurallyEqual(original, *clone));
  EXPECT_EQ(StructuralHash(original), StructuralHash(*clone));
}

// --- Shared-host grouping ----------------------------------------------

// Acceptance (a): two structurally prefix-equal queries execute the
// shared prefix once per buffer — the shared host ingests the source
// stream once where independent submission ingests it twice.
TEST(SharedQueryManager, SharedPrefixIngestsSourceOnce) {
  const int n = 60;
  auto make_archive_query = [&](std::shared_ptr<SinkOperator> sink) {
    return Query::From(NamedSource(n))
        .Filter(Ge(Attribute("value"), Lit(2.0)))
        .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
        .To(std::move(sink));
  };
  auto make_alert_query = [&](std::shared_ptr<SinkOperator> sink) {
    return Query::From(NamedSource(n))
        .Filter(Ge(Attribute("value"), Lit(2.0)))
        .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
        .Filter(Ge(Attribute("scaled"), Lit(10.0)))
        .To(std::move(sink));
  };
  const Schema out_schema = Schema::Build()
                                .AddInt64("key")
                                .AddTimestamp("ts")
                                .AddDouble("value")
                                .AddDouble("scaled")
                                .Finish();

  // Independent baseline: two dedicated queries, each pulling the source.
  uint64_t independent_ingested = 0;
  std::vector<std::vector<Value>> archive_ref, alert_ref;
  {
    EngineOptions options;
    options.worker_threads = 1;
    NodeEngine engine(options);
    auto archive = std::make_shared<CollectSink>(out_schema);
    auto alerts = std::make_shared<CollectSink>(out_schema);
    std::vector<Query> queries;
    queries.push_back(make_archive_query(archive));
    queries.push_back(make_alert_query(alerts));
    for (Query& query : queries) {
      auto id = engine.Submit(std::move(query));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(engine.Start(*id).ok());
      ASSERT_TRUE(engine.Wait(*id).ok());
      independent_ingested += engine.Stats(*id)->events_ingested;
    }
    archive_ref = Sorted(archive->Rows());
    alert_ref = Sorted(alerts->Rows());
  }
  EXPECT_EQ(independent_ingested, static_cast<uint64_t>(2 * n));

  // Shared submission: one host, the source ingested once.
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto archive = std::make_shared<CollectSink>(out_schema);
  auto alerts = std::make_shared<CollectSink>(out_schema);
  auto vid_a = manager.Submit(make_archive_query(archive));
  auto vid_b = manager.Submit(make_alert_query(alerts));
  ASSERT_TRUE(vid_a.ok()) << vid_a.status().ToString();
  ASSERT_TRUE(vid_b.ok()) << vid_b.status().ToString();
  EXPECT_EQ(manager.NumClientQueries(), 2u);
  EXPECT_EQ(manager.NumHostedPlans(), 1u);

  ASSERT_TRUE(manager.Start(*vid_a).ok());
  ASSERT_TRUE(manager.Wait(*vid_a).ok());
  ASSERT_TRUE(manager.Wait(*vid_b).ok());

  // Both clients see identical results to their dedicated runs.
  EXPECT_EQ(Sorted(archive->Rows()), archive_ref);
  EXPECT_EQ(Sorted(alerts->Rows()), alert_ref);
  EXPECT_EQ(static_cast<size_t>(n - 2), archive->RowCount());

  // Half the ingest of independent submission, and the shared Filter ran
  // once over the stream (not once per client).
  auto stats = manager.Stats(*vid_a);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_ingested, static_cast<uint64_t>(n));
  EXPECT_EQ(2 * stats->events_ingested, independent_ingested);
  ASSERT_EQ(manager.Hosts().size(), 1u);
  auto host_stats = engine.Stats(manager.Hosts()[0]);
  ASSERT_TRUE(host_stats.ok());
  uint64_t filter_events_in = 0;
  for (const auto& [op_name, op_stats] : host_stats->operator_stats) {
    if (op_name == "Filter") filter_events_in += op_stats.events_in;
  }
  EXPECT_EQ(filter_events_in, static_cast<uint64_t>(n));
}

// Submitting a shorter plan shrinks an unstarted group's prefix: the cut
// operators move into the existing members' suffixes and every client
// still computes its full plan.
TEST(SharedQueryManager, PrefixShrinksToCommonPart) {
  const int n = 30;
  const Schema out_schema = Schema::Build()
                                .AddInt64("key")
                                .AddTimestamp("ts")
                                .AddDouble("value")
                                .AddDouble("scaled")
                                .Finish();
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto deep = std::make_shared<CollectSink>(out_schema);
  auto shallow = std::make_shared<CollectSink>(out_schema);
  // Longer plan first: prefix starts as [Map, Filter].
  auto vid_deep =
      manager.Submit(Query::From(NamedSource(n))
                         .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                         .Filter(Ge(Attribute("scaled"), Lit(10.0)))
                         .To(deep));
  // Shorter plan second: common prefix is [Map] — the Filter must move
  // into the first member's suffix.
  auto vid_shallow =
      manager.Submit(Query::From(NamedSource(n))
                         .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                         .To(shallow));
  ASSERT_TRUE(vid_deep.ok()) << vid_deep.status().ToString();
  ASSERT_TRUE(vid_shallow.ok()) << vid_shallow.status().ToString();
  EXPECT_EQ(manager.NumHostedPlans(), 1u);
  ASSERT_TRUE(manager.Start(*vid_shallow).ok());
  ASSERT_TRUE(manager.Wait(*vid_deep).ok());
  EXPECT_EQ(shallow->RowCount(), static_cast<size_t>(n));
  EXPECT_EQ(deep->RowCount(), static_cast<size_t>(n - 5));
}

// Plans that fail a sharing gate run dedicated — and never merge.
TEST(SharedQueryManager, UnnamedSourcesNeverShare) {
  const int n = 10;
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto sink_a = std::make_shared<CountingSink>(EventSchema());
  auto sink_b = std::make_shared<CountingSink>(EventSchema());
  auto unnamed = [&] {
    return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
  };
  auto vid_a = manager.Submit(
      Query::From(unnamed()).Filter(Ge(Attribute("value"), Lit(0.0))).To(sink_a));
  auto vid_b = manager.Submit(
      Query::From(unnamed()).Filter(Ge(Attribute("value"), Lit(0.0))).To(sink_b));
  ASSERT_TRUE(vid_a.ok() && vid_b.ok());
  EXPECT_EQ(manager.NumClientQueries(), 2u);
  EXPECT_EQ(manager.NumHostedPlans(), 2u);
  ASSERT_TRUE(manager.Start(*vid_a).ok());
  ASSERT_TRUE(manager.Start(*vid_b).ok());
  ASSERT_TRUE(manager.Wait(*vid_a).ok());
  ASSERT_TRUE(manager.Wait(*vid_b).ok());
  EXPECT_EQ(sink_a->events(), static_cast<uint64_t>(n));
  EXPECT_EQ(sink_b->events(), static_cast<uint64_t>(n));
}

// --- Runtime admission and teardown ------------------------------------

// Acceptance (b): a query admitted to a *running* host joins at the next
// buffer boundary; cancelling one branch leaves the survivors' row sets
// exactly equal to fresh dedicated submissions. Exercised at 1 and 4
// workers (the TSan job re-runs this suite).
TEST(SharedQueryManager, MidStreamAdmissionAndBranchCancel) {
  const int n = 16;
  const size_t half = 8;
  const Schema schema = EventSchema();
  const std::vector<std::vector<Value>> rows = MakeRows(n);

  // Reference: a fresh dedicated run over the full stream.
  std::vector<std::vector<Value>> full_ref;
  {
    EngineOptions options;
    options.worker_threads = 1;
    NodeEngine engine(options);
    auto sink = std::make_shared<CollectSink>(schema);
    auto id = engine.Submit(Query::From(NamedSource(n))
                                .Filter(Ge(Attribute("value"), Lit(0.0)))
                                .To(sink));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.Start(*id).ok());
    ASSERT_TRUE(engine.Wait(*id).ok());
    full_ref = Sorted(sink->Rows());
  }
  ASSERT_EQ(full_ref.size(), static_cast<size_t>(n));

  for (const size_t workers : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto gate = std::make_shared<GateState>();
    auto source = std::make_unique<GateSource>(rows, gate);
    source->SetLogicalName("trains");

    EngineOptions options;
    options.worker_threads = workers;
    NodeEngine engine(options);
    SharedQueryManager manager(&engine);
    auto sink_a = std::make_shared<CollectSink>(schema);
    auto sink_b = std::make_shared<CollectSink>(schema);
    auto sink_c = std::make_shared<CollectSink>(schema);

    auto vid_a = manager.Submit(Query::From(std::move(source))
                                    .Filter(Ge(Attribute("value"), Lit(0.0)))
                                    .To(sink_a));
    auto vid_b = manager.Submit(Query::From(NamedSource(n))
                                    .Filter(Ge(Attribute("value"), Lit(0.0)))
                                    .To(sink_b));
    ASSERT_TRUE(vid_a.ok() && vid_b.ok());
    EXPECT_EQ(manager.NumHostedPlans(), 1u);
    ASSERT_TRUE(manager.Start(*vid_a).ok());

    // First half flows; both branches fully consumed it.
    gate->Release(half);
    ASSERT_TRUE(WaitForRows(*sink_a, half));
    ASSERT_TRUE(WaitForRows(*sink_b, half));

    // Admit C mid-stream (host is running — no restart), drop B.
    auto vid_c = manager.Submit(Query::From(NamedSource(n))
                                    .Filter(Ge(Attribute("value"), Lit(0.0)))
                                    .To(sink_c));
    ASSERT_TRUE(vid_c.ok()) << vid_c.status().ToString();
    EXPECT_EQ(manager.NumHostedPlans(), 1u);
    ASSERT_TRUE(manager.Cancel(*vid_b).ok());

    gate->Release(n - half);
    gate->Close();
    ASSERT_TRUE(manager.Wait(*vid_a).ok());
    ASSERT_TRUE(manager.Wait(*vid_c).ok());

    // Survivor A matches a fresh dedicated submission row for row.
    EXPECT_EQ(Sorted(sink_a->Rows()), full_ref);
    // C joined after the first half: it sees exactly the second half of
    // the stream (rows half..n in arrival order).
    std::vector<std::vector<Value>> second_half(
        rows.begin() + static_cast<long>(half), rows.end());
    EXPECT_EQ(Sorted(sink_c->Rows()), Sorted(second_half));
    // B stopped at its detach point: exactly the first half.
    EXPECT_EQ(sink_b->RowCount(), half);

    // Branch-scoped stats: each surviving client sees its own sink flow.
    auto stats_a = manager.Stats(*vid_a);
    auto stats_c = manager.Stats(*vid_c);
    ASSERT_TRUE(stats_a.ok() && stats_c.ok());
    ASSERT_EQ(stats_a->sink_stats.size(), 1u);
    EXPECT_EQ(stats_a->sink_stats[0].events_emitted,
              static_cast<uint64_t>(n));
    ASSERT_EQ(stats_c->sink_stats.size(), 1u);
    EXPECT_EQ(stats_c->sink_stats[0].events_emitted,
              static_cast<uint64_t>(n - half));
  }
}

// Cancelling the last member tears the host itself down, even while the
// source is still producing.
TEST(SharedQueryManager, LastBranchCancelTearsDownHost) {
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto sink_a = std::make_shared<CountingSink>(EventSchema());
  auto sink_b = std::make_shared<CountingSink>(EventSchema());
  // Effectively unbounded: 1M rounds of 30 rows keeps the host running
  // until it is cancelled.
  auto vid_a = manager.Submit(Query::From(NamedSource(30, 1000000))
                                  .Filter(Ge(Attribute("value"), Lit(0.0)))
                                  .To(sink_a));
  auto vid_b = manager.Submit(Query::From(NamedSource(30, 1000000))
                                  .Filter(Ge(Attribute("value"), Lit(0.0)))
                                  .To(sink_b));
  ASSERT_TRUE(vid_a.ok() && vid_b.ok());
  ASSERT_TRUE(manager.Start(*vid_a).ok());
  while (sink_a->events() == 0 || sink_b->events() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(manager.Hosts().size(), 1u);
  const int host = manager.Hosts()[0];

  // First cancel detaches only — the host keeps serving the survivor.
  ASSERT_TRUE(manager.Cancel(*vid_a).ok());
  const uint64_t at_detach = sink_b->events();
  while (sink_b->events() <= at_detach) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(manager.NumClientQueries(), 1u);

  // Last cancel tears the host down (blocks until the run thread joins).
  ASSERT_TRUE(manager.Cancel(*vid_b).ok());
  EXPECT_EQ(manager.NumClientQueries(), 0u);
  auto host_stats = engine.Stats(host);
  ASSERT_TRUE(host_stats.ok());
  EXPECT_GT(host_stats->events_ingested, 0u);
}

// A running host only admits plans that extend its *entire* prefix; a
// diverging plan founds a new group instead of disturbing the host.
TEST(SharedQueryManager, RunningHostRejectsDivergentPrefixIntoNewGroup) {
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto sink_a = std::make_shared<CountingSink>(EventSchema());
  auto vid_a = manager.Submit(Query::From(NamedSource(20))
                                  .Filter(Ge(Attribute("value"), Lit(5.0)))
                                  .To(sink_a));
  ASSERT_TRUE(vid_a.ok());
  ASSERT_TRUE(manager.Start(*vid_a).ok());
  // Different filter constant: shares the source name but not the prefix.
  auto sink_b = std::make_shared<CountingSink>(EventSchema());
  auto vid_b = manager.Submit(Query::From(NamedSource(20))
                                  .Filter(Ge(Attribute("value"), Lit(9.0)))
                                  .To(sink_b));
  ASSERT_TRUE(vid_b.ok());
  EXPECT_EQ(manager.NumHostedPlans(), 2u);
  ASSERT_TRUE(manager.Start(*vid_b).ok());
  ASSERT_TRUE(manager.Wait(*vid_a).ok());
  ASSERT_TRUE(manager.Wait(*vid_b).ok());
  EXPECT_EQ(sink_a->events(), 15u);
  EXPECT_EQ(sink_b->events(), 11u);
}

// Branch-scoped metrics: a client's snapshot carries its own branch
// instruments and never another branch's.
TEST(SharedQueryManager, MetricsAreScopedToOwnBranch) {
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  SharedQueryManager manager(&engine);
  auto sink_a = std::make_shared<CountingSink>(EventSchema());
  auto sink_b = std::make_shared<CountingSink>(EventSchema());
  auto vid_a = manager.Submit(Query::From(NamedSource(20))
                                  .Filter(Ge(Attribute("value"), Lit(0.0)))
                                  .To(sink_a));
  auto vid_b = manager.Submit(Query::From(NamedSource(20))
                                  .Filter(Ge(Attribute("value"), Lit(0.0)))
                                  .To(sink_b));
  ASSERT_TRUE(vid_a.ok() && vid_b.ok());
  ASSERT_TRUE(manager.Start(*vid_a).ok());
  ASSERT_TRUE(manager.Wait(*vid_a).ok());
  auto snapshot = manager.Metrics(*vid_a);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  bool saw_own_branch = false;
  for (const auto& [name, value] : snapshot->histograms) {
    EXPECT_TRUE(name.rfind("op.b2/", 0) != 0) << name;
    if (name.rfind("op.b1/", 0) == 0) saw_own_branch = true;
  }
  EXPECT_TRUE(saw_own_branch);
  // The other client's snapshot holds the mirror view.
  auto other = manager.Metrics(*vid_b);
  ASSERT_TRUE(other.ok());
  bool saw_other_branch = false;
  for (const auto& [name, value] : other->histograms) {
    EXPECT_TRUE(name.rfind("op.b1/", 0) != 0) << name;
    if (name.rfind("op.b2/", 0) == 0) saw_other_branch = true;
  }
  EXPECT_TRUE(saw_other_branch);
}

// --- Coordinator merge layer -------------------------------------------

// Acceptance (c): the merge unions per-stream outputs into one
// deterministic `(ts, stream_id, seq)` total order, releasing rows only
// once no open stream can still produce an earlier timestamp.
TEST(MergeNode, WatermarkReleaseAndDeterministicOrder) {
  MergeNode merge(EventSchema(), "ts");
  auto input0 = merge.InputFor(0);
  auto input1 = merge.InputFor(1);

  auto run = [&](std::shared_ptr<SinkOperator> sink, int offset) {
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 5; ++i) {
      // Streams 0 and 1 share timestamps 0,10,20,... — ties must resolve
      // by stream id, deterministically.
      rows.push_back({Value(int64_t{offset}), Value(Seconds(10 * i)),
                      Value(static_cast<double>(i))});
    }
    EngineOptions options;
    options.worker_threads = 1;
    NodeEngine engine(options);
    auto src = std::make_unique<MemorySource>(EventSchema(), rows, 1, "ts");
    auto id = engine.Submit(Query::From(std::move(src)).To(std::move(sink)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(engine.Start(*id).ok());
    ASSERT_TRUE(engine.Wait(*id).ok());
  };

  run(input0, 0);
  // Stream 1 is still open and silent: nothing may release yet.
  EXPECT_EQ(merge.RowCount(), 0u);
  EXPECT_EQ(merge.PendingCount(), 5u);

  run(input1, 1);
  // Both watermarks reached Seconds(40): every row is releasable.
  EXPECT_EQ(merge.RowCount(), 10u);
  merge.CloseAllInputs();
  EXPECT_EQ(merge.PendingCount(), 0u);

  const auto rows = merge.Rows();
  ASSERT_EQ(rows.size(), 10u);
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    const bool ordered =
        rows[i].ts < rows[i + 1].ts ||
        (rows[i].ts == rows[i + 1].ts &&
         rows[i].stream_id < rows[i + 1].stream_id);
    EXPECT_TRUE(ordered) << "row " << i;
  }
  // Ties resolve stream 0 before stream 1 at every shared timestamp.
  for (size_t i = 0; i < rows.size(); i += 2) {
    EXPECT_EQ(rows[i].stream_id, 0);
    EXPECT_EQ(rows[i + 1].stream_id, 1);
    EXPECT_EQ(rows[i].ts, rows[i + 1].ts);
  }
}

TEST(MergeNode, CloseReleasesHeldRows) {
  MergeNode merge(EventSchema(), "ts");
  auto input0 = merge.InputFor(0);
  merge.InputFor(1);  // open, never produces
  EngineOptions options;
  options.worker_threads = 1;
  NodeEngine engine(options);
  auto id = engine.Submit(
      Query::From(std::make_unique<MemorySource>(EventSchema(), MakeRows(4), 1,
                                                 "ts"))
          .To(input0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start(*id).ok());
  ASSERT_TRUE(engine.Wait(*id).ok());
  EXPECT_EQ(merge.RowCount(), 0u);
  merge.CloseInput(1);
  // Stream 0 is still open but its own watermark covers its rows.
  EXPECT_EQ(merge.RowCount(), 4u);
}

// --- Fleet deployment ---------------------------------------------------

// Per-train queries share within a train (one host, one uplink) but never
// across trains (placements differ); the coordinator merge unions the
// per-train alert streams.
TEST(FleetDeployment, PerTrainSharingWithSharedUplinkAndMerge) {
  FleetOptions fleet_options;
  fleet_options.num_trains = 2;
  FleetDeployment fleet(fleet_options);
  EngineOptions base;
  base.worker_threads = 1;
  NodeEngine engine(fleet.MakeEngineOptions(base));
  SharedQueryManager manager(&engine);
  MergeNode merge(EventSchema(), "ts");

  const int n = 24;
  const int queries_per_train = 2;
  std::vector<int> vids;
  for (int train = 0; train < fleet.num_trains(); ++train) {
    for (int k = 0; k < queries_per_train; ++k) {
      auto sink = merge.InputFor(train * queries_per_train + k);
      auto vid = fleet.SubmitTrainQuery(
          &manager, train,
          Query::From(NamedSource(n))
              .Filter(Ge(Attribute("value"), Lit(2.0)))
              .To(std::move(sink)));
      ASSERT_TRUE(vid.ok()) << vid.status().ToString();
      vids.push_back(*vid);
    }
  }
  // Two trains x two queries: four clients on two hosts.
  EXPECT_EQ(manager.NumClientQueries(), 4u);
  EXPECT_EQ(manager.NumHostedPlans(), 2u);

  for (const int vid : vids) ASSERT_TRUE(manager.Start(vid).ok());
  for (const int vid : vids) ASSERT_TRUE(manager.Wait(vid).ok());
  merge.CloseAllInputs();

  // Every query's alert stream reached the coordinator merge.
  EXPECT_EQ(merge.RowCount(),
            static_cast<size_t>(4 * (n - 2)));

  // The shared uplink shipped the stream once per train: both clients of
  // one train observe the same measured deployment.
  auto report_a = manager.Deployment(vids[0]);
  auto report_b = manager.Deployment(vids[1]);
  ASSERT_TRUE(report_a.ok() && report_b.ok());
  EXPECT_GT(report_a->wire_bytes, 0u);
  EXPECT_GT(report_a->uplink_bytes, 0u);
  EXPECT_EQ(report_a->wire_bytes, report_b->wire_bytes);
  EXPECT_EQ(report_a->frames, report_b->frames);
}

}  // namespace
}  // namespace nebulameos::nebula::serving

// Tier-2 concurrency equivalence suite for morsel-driven execution:
// every demonstration query (Q1–Q8 plus the Q4 join variant), the
// shared-ingest fan-out and a placed plan over network channels must
// produce the same results with `worker_threads` 2 and 4 as with the
// sequential engine (1) — same ingested/emitted record counts and the
// same sink row *sets* (rows are compared sorted: partitioned keyed
// state and concurrent branches emit in no specified order, which is
// exactly the freedom the morsel scheduler exploits).
//
// Run under ThreadSanitizer (scripts/check.sh tsan mode, or the CI
// `sanitize-thread` job) this suite doubles as the data-race gate for
// the worker pool, the hash partition router, the shared-batch fan-out
// hand-off and the atomic flow counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "queries/queries.hpp"

namespace nebulameos::queries {
namespace {

using nebula::CollectSink;
using nebula::EngineOptions;
using nebula::LogicalPlan;
using nebula::NodeEngine;
using nebula::QueryStats;
using nebula::Value;

// One run's observable outcome: flow totals, every sink's rows as a
// sorted multiset, and the query's final metrics snapshot.
struct RunOutcome {
  uint64_t events_ingested = 0;
  uint64_t events_emitted = 0;
  std::vector<std::vector<std::vector<Value>>> sinks;
  nebula::metrics::MetricsSnapshot metrics;
};

// Every registered metric name, across all three instrument kinds.
std::set<std::string> MetricNames(const nebula::metrics::MetricsSnapshot& m) {
  std::set<std::string> names;
  for (const auto& [name, value] : m.counters) names.insert(name);
  for (const auto& [name, value] : m.gauges) names.insert(name);
  for (const auto& [name, value] : m.histograms) names.insert(name);
  return names;
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EngineConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto env = DemoEnvironment::Create();
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    shared_env_ = *env;
    env_ = env->get();
  }

  static QueryOptions SmallRun(uint64_t events = 60'000) {
    QueryOptions options;
    options.max_events = events;
    options.sink = SinkMode::kCollect;
    return options;
  }

  // Submits `plan` to a fresh engine with `workers` threads, runs it to
  // completion and snapshots the outcome.
  static RunOutcome RunPlan(
      LogicalPlan plan,
      const std::vector<std::shared_ptr<CollectSink>>& sinks, size_t workers,
      const nebula::Topology* topology = nullptr) {
    EngineOptions options;
    options.worker_threads = workers;
    options.topology = topology;
    NodeEngine engine(options);
    auto id = engine.Submit(std::move(plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    const auto st = engine.RunToCompletion(*id);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto stats = engine.Stats(*id);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    RunOutcome outcome;
    outcome.events_ingested = stats->events_ingested;
    outcome.events_emitted = stats->events_emitted;
    auto metrics = engine.Metrics(*id);
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    if (metrics.ok()) outcome.metrics = *std::move(metrics);
    for (const auto& sink : sinks) outcome.sinks.push_back(Sorted(sink->Rows()));
    return outcome;
  }

  static RunOutcome RunQueryWithWorkers(int number, size_t workers) {
    auto built = BuildQuery(number, *env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), {built->collect}, workers);
  }

  // The core assertion: worker counts 2 and 4 reproduce the sequential
  // outcome exactly (as row sets).
  static void ExpectEquivalent(const RunOutcome& sequential,
                               const RunOutcome& concurrent,
                               const std::string& label) {
    EXPECT_EQ(sequential.events_ingested, concurrent.events_ingested)
        << label;
    EXPECT_EQ(sequential.events_emitted, concurrent.events_emitted) << label;
    ASSERT_EQ(sequential.sinks.size(), concurrent.sinks.size()) << label;
    for (size_t s = 0; s < sequential.sinks.size(); ++s) {
      EXPECT_EQ(sequential.sinks[s], concurrent.sinks[s])
          << label << " sink " << s;
    }
    // Metric names are a property of the plan, not of the worker count:
    // strand instruments key by segment path (partition clones share
    // their segment's), fused kernel stages by their original chained
    // names — so dashboards survive scaling the pool.
    EXPECT_EQ(MetricNames(sequential.metrics), MetricNames(concurrent.metrics))
        << label;
  }

  // Instrumentation floor for any completed run: engine flow counters
  // moved, at least one per-operator latency histogram recorded samples,
  // and every dispatch-target path published its queue-depth gauge and
  // task-wait histogram (the backpressure signal).
  static void ExpectInstrumented(const RunOutcome& run,
                                 const std::string& label) {
    EXPECT_GT(run.metrics.counters.at("engine.events_ingested"), 0u) << label;
    // Some queries legitimately emit nothing on the test's event budget
    // (their filters never fire); the counter must still exist.
    EXPECT_EQ(run.metrics.counters.count("engine.events_emitted"), 1u)
        << label;
    bool operator_latency_recorded = false;
    for (const auto& [name, hist] : run.metrics.histograms) {
      if (name.rfind("op.", 0) == 0 &&
          name.find(".process_micros") != std::string::npos && hist.count > 0) {
        operator_latency_recorded = true;
        break;
      }
    }
    EXPECT_TRUE(operator_latency_recorded) << label;
    size_t strand_gauges = 0;
    for (const auto& [name, value] : run.metrics.gauges) {
      if (name.rfind("worker.strand.", 0) == 0 &&
          name.find(".queue_depth") != std::string::npos) {
        ++strand_gauges;
        EXPECT_GE(value, 0.0) << label << " " << name;
        // The matching task-wait histogram rides the same path key.
        const std::string wait_name =
            name.substr(0, name.size() - std::string(".queue_depth").size()) +
            ".task_wait_micros";
        EXPECT_EQ(run.metrics.histograms.count(wait_name), 1u)
            << label << " " << wait_name;
      }
    }
    EXPECT_GE(strand_gauges, 1u) << label;
  }

  static void CheckQueryAcrossWorkerCounts(int number) {
    const RunOutcome sequential = RunQueryWithWorkers(number, 1);
    EXPECT_GT(sequential.events_ingested, 0u) << QueryName(number);
    ExpectInstrumented(sequential,
                       std::string(QueryName(number)) + " @ 1 worker");
    for (const size_t workers : {size_t{2}, size_t{4}}) {
      const RunOutcome concurrent = RunQueryWithWorkers(number, workers);
      const std::string label = std::string(QueryName(number)) + " @ " +
                                std::to_string(workers) + " workers";
      ExpectEquivalent(sequential, concurrent, label);
      ExpectInstrumented(concurrent, label);
    }
  }

  static DemoEnvironment* env_;
  static std::shared_ptr<DemoEnvironment> shared_env_;
};

DemoEnvironment* EngineConcurrencyTest::env_ = nullptr;
std::shared_ptr<DemoEnvironment> EngineConcurrencyTest::shared_env_;

TEST_F(EngineConcurrencyTest, Q1AlertFiltering) {
  CheckQueryAcrossWorkerCounts(1);
}

TEST_F(EngineConcurrencyTest, Q2NoiseMonitoring) {
  CheckQueryAcrossWorkerCounts(2);
}

TEST_F(EngineConcurrencyTest, Q3DynamicSpeedLimit) {
  CheckQueryAcrossWorkerCounts(3);
}

TEST_F(EngineConcurrencyTest, Q4WeatherSpeedZones) {
  CheckQueryAcrossWorkerCounts(4);
}

TEST_F(EngineConcurrencyTest, Q5BatteryMonitoring) {
  CheckQueryAcrossWorkerCounts(5);
}

TEST_F(EngineConcurrencyTest, Q6HeavyLoad) {
  CheckQueryAcrossWorkerCounts(6);
}

TEST_F(EngineConcurrencyTest, Q7UnscheduledStops) {
  CheckQueryAcrossWorkerCounts(7);
}

TEST_F(EngineConcurrencyTest, Q8BrakeMonitoring) {
  CheckQueryAcrossWorkerCounts(8);
}

// The lookup-join variant exercises the partitioning *guard*: a join in
// the suffix keeps the chain sequential, and results must still agree.
TEST_F(EngineConcurrencyTest, Q4WeatherJoinVariant) {
  auto run = [&](size_t workers) {
    auto built = BuildQ4WeatherJoin(*env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), {built->collect}, workers);
  };
  const RunOutcome sequential = run(1);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectEquivalent(sequential, run(2), "Q4 join @ 2 workers");
  ExpectEquivalent(sequential, run(4), "Q4 join @ 4 workers");
}

// The shared-ingest fan-out: both branches must see the full shared
// prefix output concurrently and agree with the sequential run — the
// zero-copy shared-batch hand-off under real parallelism.
TEST_F(EngineConcurrencyTest, SharedIngestFanOut) {
  auto run = [&](size_t workers) {
    auto built = BuildSharedIngestFanOut(*env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), built->collects, workers);
  };
  const RunOutcome sequential = run(1);
  ASSERT_EQ(sequential.sinks.size(), 2u);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectInstrumented(sequential, "fan-out @ 1 worker");
  const RunOutcome four = run(4);
  ExpectEquivalent(sequential, run(2), "fan-out @ 2 workers");
  ExpectEquivalent(sequential, four, "fan-out @ 4 workers");
  ExpectInstrumented(four, "fan-out @ 4 workers");
  // Both branch strands publish their own backpressure instruments.
  EXPECT_EQ(four.metrics.gauges.count("worker.strand.0.queue_depth"), 1u);
  EXPECT_EQ(four.metrics.gauges.count("worker.strand.1.queue_depth"), 1u);
  // With a real pool, branch dispatches recorded actual task waits.
  const auto& wait =
      four.metrics.histograms.at("worker.strand.0.task_wait_micros");
  EXPECT_GT(wait.count, 0u);
}

// A placed fan-out plan executing over simulated network channels: the
// channel sink/source pairs sit inside branch strands, so frames are
// produced and drained on worker threads. Results must match the
// sequential placed run.
TEST_F(EngineConcurrencyTest, PlacedPlanAcrossNetworkChannels) {
  using nebula::AnnotateEdgePushdownPlacement;
  using nebula::Topology;
  constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
  constexpr int kCloud = 1;  // cloud worker
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  auto run = [&](size_t workers) {
    auto built = BuildSharedIngestFanOut(*env_, SmallRun(30'000));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    AnnotateEdgePushdownPlacement(&built->plan, kEdge, kCloud);
    return RunPlan(std::move(built->plan), built->collects, workers, &topo);
  };
  const RunOutcome sequential = run(1);
  ASSERT_EQ(sequential.sinks.size(), 2u);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectInstrumented(sequential, "placed fan-out @ 1 worker");
  const RunOutcome four = run(4);
  ExpectEquivalent(sequential, run(2), "placed fan-out @ 2 workers");
  ExpectEquivalent(sequential, four, "placed fan-out @ 4 workers");
  ExpectInstrumented(four, "placed fan-out @ 4 workers");
  // The lowered network channels published wire counters and carried
  // traffic, at both worker counts under the same names.
  for (const RunOutcome* run_ptr : {&sequential, &four}) {
    uint64_t wire_bytes = 0;
    uint64_t frames = 0;
    bool transfer_hist = false;
    for (const auto& [name, value] : run_ptr->metrics.counters) {
      if (name.rfind("channel.", 0) != 0) continue;
      if (name.find(".wire_bytes") != std::string::npos) wire_bytes += value;
      if (name.find(".frames") != std::string::npos) frames += value;
    }
    for (const auto& [name, hist] : run_ptr->metrics.histograms) {
      if (name.rfind("channel.", 0) == 0 &&
          name.find(".transfer_micros") != std::string::npos &&
          hist.count > 0) {
        transfer_hist = true;
      }
    }
    EXPECT_GT(wire_bytes, 0u);
    EXPECT_GT(frames, 0u);
    EXPECT_TRUE(transfer_hist);
  }
}

// Regression for cancellation during active processing on a DAG plan:
// with 4 workers, strand tasks are in flight when `Cancel` lands. The
// engine must drain those tasks before operator state is torn down (no
// use-after-free — the TSan job re-runs this test) and must *not* flush
// window/CEP state as if the stream had completed. Repeated a few times
// to vary where in the stream the cancel lands.
TEST_F(EngineConcurrencyTest, CancelDuringProcessingDrainsInFlightWork) {
  for (int round = 0; round < 3; ++round) {
    auto built = BuildSharedIngestFanOut(*env_, SmallRun(50'000'000));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EngineOptions options;
    options.worker_threads = 4;
    NodeEngine engine(options);
    auto id = engine.Submit(std::move(built->plan));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(engine.Start(*id).ok());
    // Let real work get in flight before cancelling.
    while (engine.Stats(*id)->events_ingested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(engine.Cancel(*id).ok());
    // The cancelled query stays inspectable and its counters consistent.
    auto stats = engine.Stats(*id);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->events_ingested, 0u);
    EXPECT_LT(stats->events_ingested, 50'000'000u);
  }
}

}  // namespace
}  // namespace nebulameos::queries

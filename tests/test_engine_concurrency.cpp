// Tier-2 concurrency equivalence suite for morsel-driven execution:
// every demonstration query (Q1–Q8 plus the Q4 join variant), the
// shared-ingest fan-out and a placed plan over network channels must
// produce the same results with `worker_threads` 2 and 4 as with the
// sequential engine (1) — same ingested/emitted record counts and the
// same sink row *sets* (rows are compared sorted: partitioned keyed
// state and concurrent branches emit in no specified order, which is
// exactly the freedom the morsel scheduler exploits).
//
// Run under ThreadSanitizer (scripts/check.sh tsan mode, or the CI
// `sanitize-thread` job) this suite doubles as the data-race gate for
// the worker pool, the hash partition router, the shared-batch fan-out
// hand-off and the atomic flow counters.

#include <gtest/gtest.h>

#include <algorithm>

#include "queries/queries.hpp"

namespace nebulameos::queries {
namespace {

using nebula::CollectSink;
using nebula::EngineOptions;
using nebula::LogicalPlan;
using nebula::NodeEngine;
using nebula::QueryStats;
using nebula::Value;

// One run's observable outcome: flow totals plus every sink's rows as a
// sorted multiset.
struct RunOutcome {
  uint64_t events_ingested = 0;
  uint64_t events_emitted = 0;
  std::vector<std::vector<std::vector<Value>>> sinks;
};

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EngineConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto env = DemoEnvironment::Create();
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    shared_env_ = *env;
    env_ = env->get();
  }

  static QueryOptions SmallRun(uint64_t events = 60'000) {
    QueryOptions options;
    options.max_events = events;
    options.sink = SinkMode::kCollect;
    return options;
  }

  // Submits `plan` to a fresh engine with `workers` threads, runs it to
  // completion and snapshots the outcome.
  static RunOutcome RunPlan(
      LogicalPlan plan,
      const std::vector<std::shared_ptr<CollectSink>>& sinks, size_t workers,
      const nebula::Topology* topology = nullptr) {
    EngineOptions options;
    options.worker_threads = workers;
    options.topology = topology;
    NodeEngine engine(options);
    auto id = engine.Submit(std::move(plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    const auto st = engine.RunToCompletion(*id);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto stats = engine.Stats(*id);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    RunOutcome outcome;
    outcome.events_ingested = stats->events_ingested;
    outcome.events_emitted = stats->events_emitted;
    for (const auto& sink : sinks) outcome.sinks.push_back(Sorted(sink->Rows()));
    return outcome;
  }

  static RunOutcome RunQueryWithWorkers(int number, size_t workers) {
    auto built = BuildQuery(number, *env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), {built->collect}, workers);
  }

  // The core assertion: worker counts 2 and 4 reproduce the sequential
  // outcome exactly (as row sets).
  static void ExpectEquivalent(const RunOutcome& sequential,
                               const RunOutcome& concurrent,
                               const std::string& label) {
    EXPECT_EQ(sequential.events_ingested, concurrent.events_ingested)
        << label;
    EXPECT_EQ(sequential.events_emitted, concurrent.events_emitted) << label;
    ASSERT_EQ(sequential.sinks.size(), concurrent.sinks.size()) << label;
    for (size_t s = 0; s < sequential.sinks.size(); ++s) {
      EXPECT_EQ(sequential.sinks[s], concurrent.sinks[s])
          << label << " sink " << s;
    }
  }

  static void CheckQueryAcrossWorkerCounts(int number) {
    const RunOutcome sequential = RunQueryWithWorkers(number, 1);
    EXPECT_GT(sequential.events_ingested, 0u) << QueryName(number);
    for (const size_t workers : {size_t{2}, size_t{4}}) {
      const RunOutcome concurrent = RunQueryWithWorkers(number, workers);
      ExpectEquivalent(sequential, concurrent,
                       std::string(QueryName(number)) + " @ " +
                           std::to_string(workers) + " workers");
    }
  }

  static DemoEnvironment* env_;
  static std::shared_ptr<DemoEnvironment> shared_env_;
};

DemoEnvironment* EngineConcurrencyTest::env_ = nullptr;
std::shared_ptr<DemoEnvironment> EngineConcurrencyTest::shared_env_;

TEST_F(EngineConcurrencyTest, Q1AlertFiltering) {
  CheckQueryAcrossWorkerCounts(1);
}

TEST_F(EngineConcurrencyTest, Q2NoiseMonitoring) {
  CheckQueryAcrossWorkerCounts(2);
}

TEST_F(EngineConcurrencyTest, Q3DynamicSpeedLimit) {
  CheckQueryAcrossWorkerCounts(3);
}

TEST_F(EngineConcurrencyTest, Q4WeatherSpeedZones) {
  CheckQueryAcrossWorkerCounts(4);
}

TEST_F(EngineConcurrencyTest, Q5BatteryMonitoring) {
  CheckQueryAcrossWorkerCounts(5);
}

TEST_F(EngineConcurrencyTest, Q6HeavyLoad) {
  CheckQueryAcrossWorkerCounts(6);
}

TEST_F(EngineConcurrencyTest, Q7UnscheduledStops) {
  CheckQueryAcrossWorkerCounts(7);
}

TEST_F(EngineConcurrencyTest, Q8BrakeMonitoring) {
  CheckQueryAcrossWorkerCounts(8);
}

// The lookup-join variant exercises the partitioning *guard*: a join in
// the suffix keeps the chain sequential, and results must still agree.
TEST_F(EngineConcurrencyTest, Q4WeatherJoinVariant) {
  auto run = [&](size_t workers) {
    auto built = BuildQ4WeatherJoin(*env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), {built->collect}, workers);
  };
  const RunOutcome sequential = run(1);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectEquivalent(sequential, run(2), "Q4 join @ 2 workers");
  ExpectEquivalent(sequential, run(4), "Q4 join @ 4 workers");
}

// The shared-ingest fan-out: both branches must see the full shared
// prefix output concurrently and agree with the sequential run — the
// zero-copy shared-batch hand-off under real parallelism.
TEST_F(EngineConcurrencyTest, SharedIngestFanOut) {
  auto run = [&](size_t workers) {
    auto built = BuildSharedIngestFanOut(*env_, SmallRun());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return RunPlan(std::move(built->plan), built->collects, workers);
  };
  const RunOutcome sequential = run(1);
  ASSERT_EQ(sequential.sinks.size(), 2u);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectEquivalent(sequential, run(2), "fan-out @ 2 workers");
  ExpectEquivalent(sequential, run(4), "fan-out @ 4 workers");
}

// A placed fan-out plan executing over simulated network channels: the
// channel sink/source pairs sit inside branch strands, so frames are
// produced and drained on worker threads. Results must match the
// sequential placed run.
TEST_F(EngineConcurrencyTest, PlacedPlanAcrossNetworkChannels) {
  using nebula::AnnotateEdgePushdownPlacement;
  using nebula::Topology;
  constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
  constexpr int kCloud = 1;  // cloud worker
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  auto run = [&](size_t workers) {
    auto built = BuildSharedIngestFanOut(*env_, SmallRun(30'000));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    AnnotateEdgePushdownPlacement(&built->plan, kEdge, kCloud);
    return RunPlan(std::move(built->plan), built->collects, workers, &topo);
  };
  const RunOutcome sequential = run(1);
  ASSERT_EQ(sequential.sinks.size(), 2u);
  EXPECT_GT(sequential.events_ingested, 0u);
  ExpectEquivalent(sequential, run(2), "placed fan-out @ 2 workers");
  ExpectEquivalent(sequential, run(4), "placed fan-out @ 4 workers");
}

}  // namespace
}  // namespace nebulameos::queries

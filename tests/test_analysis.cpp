// Tier-2 tests of the static-analysis layer (src/nebula/analysis/): each
// plan-verifier rule rejecting a malformed plan with an actionable
// diagnostic, verify-each catching a synthetic invariant-breaking rewrite
// pass at its own boundary, the Submit-time wiring, and the pipeline /
// batch / strand-ownership verifiers over compiled output.

#include <gtest/gtest.h>

#include "nebula/analysis/pipeline_verifier.hpp"
#include "nebula/analysis/plan_verifier.hpp"
#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr MakeSource(int n = 8) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
}

std::shared_ptr<CountingSink> EventSink() {
  return std::make_shared<CountingSink>(EventSchema());
}

// --- Plan verifier rules ----------------------------------------------------

TEST(PlanVerifier, AcceptsWellFormedPlan) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .To(std::make_shared<CountingSink>(
                      Schema::Build()
                          .AddInt64("key")
                          .AddTimestamp("ts")
                          .AddDouble("value")
                          .AddDouble("scaled")
                          .Finish()))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(analysis::VerifyPlan(*plan).ok());
}

// ISSUE case 1: a dangling field reference — the filter reads a field no
// upstream operator produces.
TEST(PlanVerifier, RejectsDanglingFieldReference) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("nope"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Status st = analysis::VerifyPlan(*plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("field-provenance"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("nope"), std::string::npos) << st.message();
  // Actionable: the diagnostic names the culprit operator and its chain
  // position in Explain vocabulary.
  EXPECT_NE(st.message().find("Filter"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("op #"), std::string::npos) << st.message();
}

// The structure rule wraps `Validate` for finished plans, but tolerates a
// sink-less chain when the caller says the plan is mid-rewrite.
TEST(PlanVerifier, StructureRequiresTerminationUnlessMidRewrite) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Status st = analysis::VerifyPlan(*plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("structure"), std::string::npos) << st.message();

  analysis::VerifyContext ctx;
  ctx.allow_unterminated = true;
  EXPECT_TRUE(analysis::VerifyPlan(*plan, ctx).ok());
}

// The window rule checks what `WindowAggOperator::Make` deliberately does
// not: the event-time column must carry time-typed values (TIMESTAMP or
// INT64) — windowing over a DOUBLE column is a unit bug, not a plan.
TEST(PlanVerifier, RejectsNonTimeWindowTimeField) {
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .TumblingWindow(Seconds(10), "value")
                  .Aggregate({AggregateSpec::Count("n")})
                  .To(std::make_shared<CountingSink>(Schema::Build()
                                                         .AddInt64("key")
                                                         .AddTimestamp("window_start")
                                                         .AddTimestamp("window_end")
                                                         .AddInt64("n")
                                                         .Finish()))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Status st = analysis::VerifyPlan(*plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("window-wellformed"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("value"), std::string::npos) << st.message();
}

// ISSUE case 2: non-monotone placement — a cloud-placed operator feeding
// an edge-placed one would ship the stream back down the uplink.
TEST(PlanVerifier, RejectsNonMonotonePlacement) {
  constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
  constexpr int kCloud = 1;  // cloud worker
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .To(std::make_shared<CountingSink>(
                      Schema::Build()
                          .AddInt64("key")
                          .AddTimestamp("ts")
                          .AddDouble("value")
                          .AddDouble("scaled")
                          .Finish()))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  AnnotateEdgePushdownPlacement(&*plan, kEdge, kCloud);
  ASSERT_TRUE(plan->IsPlaced());

  analysis::VerifyContext ctx;
  ctx.topology = &topo;
  ASSERT_TRUE(analysis::VerifyPlan(*plan, ctx).ok());

  // Corrupt: Filter on the cloud, Map back on the edge — a backhop.
  plan->mutable_ops()[0]->set_placement(kCloud);
  const Status st = analysis::VerifyPlan(*plan, ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("placement-soundness"), std::string::npos)
      << st.message();
  // The diagnostic carries the placement annotation in Explain vocabulary.
  EXPECT_NE(st.message().find("@node"), std::string::npos) << st.message();
}

TEST(PlanVerifier, RejectsSinkPlacedOnTheEdge) {
  constexpr int kEdge = 2;
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Everything — including the sink — pinned to the train.
  AnnotateEdgePushdownPlacement(&*plan, kEdge, kEdge);
  analysis::VerifyContext ctx;
  ctx.topology = &topo;
  const Status st = analysis::VerifyPlan(*plan, ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("placement-soundness"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("ink"), std::string::npos) << st.message();
}

// ISSUE case 3: an unsafe expression offered as shared-prefix material —
// ad-hoc lambdas have unknowable cross-query semantics and never merge.
TEST(PlanVerifier, RejectsUnsafeExpressionInSharedPrefix) {
  ExprPtr lambda = MakeLambdaExpr(
      "adhoc", {Attribute("value")}, DataType::kBool,
      [](const std::vector<Value>& args) { return args[0]; });
  auto plan =
      Query::From(MakeSource()).Filter(std::move(lambda)).Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  analysis::VerifyContext ctx;
  ctx.shared_prefix = true;
  ctx.allow_unterminated = true;  // a prefix has no sink by definition
  const Status st = analysis::VerifyPlan(*plan, ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("merge-safety"), std::string::npos)
      << st.message();

  // The same plan is fine as a dedicated (non-shared) query.
  analysis::VerifyContext dedicated;
  dedicated.allow_unterminated = true;
  EXPECT_TRUE(analysis::VerifyPlan(*plan, dedicated).ok());
}

TEST(PlanVerifier, OperatorMergeSafeNamesTheOffendingPayload) {
  ExprPtr lambda = MakeLambdaExpr(
      "adhoc", {Attribute("value")}, DataType::kBool,
      [](const std::vector<Value>& args) { return args[0]; });
  const FilterNode unsafe(std::move(lambda));
  std::string why;
  EXPECT_FALSE(analysis::OperatorMergeSafe(unsafe, &why));
  EXPECT_FALSE(why.empty());

  const FilterNode safe(Gt(Attribute("value"), Lit(1.0)));
  EXPECT_TRUE(analysis::OperatorMergeSafe(safe));

  const SinkNode sink(EventSink());
  why.clear();
  EXPECT_FALSE(analysis::OperatorMergeSafe(sink, &why));
  EXPECT_NE(why.find("merge"), std::string::npos) << why;
}

// ISSUE case 4: a fan-out branch whose sink declares a schema its chain
// does not deliver.
TEST(PlanVerifier, RejectsBrokenFanOutSinkSchema) {
  SplitQuery split = Query::From(MakeSource())
                         .Filter(Gt(Attribute("value"), Lit(1.0)))
                         .Split(2);
  // Branch 0 narrows to {key, value} but its sink claims the full event
  // schema — the coherence bug the verifier exists to catch.
  std::move(split[0]).Project({"key", "value"}).To(EventSink());
  std::move(split[1])
      .Project({"key"})
      .To(std::make_shared<CountingSink>(
          Schema::Build().AddInt64("key").Finish()));
  auto plan = std::move(split).Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Status st = analysis::VerifyPlan(*plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("branch-schema-coherence"), std::string::npos)
      << st.message();
  // The diagnostic is branch-addressed: it names the failing branch path.
  EXPECT_NE(st.message().find("branch"), std::string::npos) << st.message();
}

// --- verify-each ------------------------------------------------------------

// A rewrite pass that violates plan invariants: it appends an operator
// *after* the terminal sink, referencing a field nobody produces.
class EvilPass : public RewritePass {
 public:
  std::string name() const override { return "evil-project"; }
  Status Apply(LogicalPlan* plan, bool* changed) override {
    if (fired_) return Status::OK();
    fired_ = true;
    plan->Append(
        std::make_unique<ProjectNode>(std::vector<std::string>{"ghost"}));
    *changed = true;
    return Status::OK();
  }

 private:
  bool fired_ = false;
};

TEST(VerifyEach, CatchesBadPassAtItsOwnBoundary) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  PlanRewriter rewriter;
  rewriter.AddPass(std::make_unique<EvilPass>()).SetVerifyEach(true);
  const Status st = rewriter.Rewrite(&*plan);
  ASSERT_FALSE(st.ok());
  // LLVM -verify-each style: the failure names the pass that broke it.
  EXPECT_NE(st.message().find("verify-each"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("evil-project"), std::string::npos)
      << st.message();
}

TEST(VerifyEach, SilentWithVerifyEachOff) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PlanRewriter rewriter;
  rewriter.AddPass(std::make_unique<EvilPass>()).SetVerifyEach(false);
  EXPECT_TRUE(rewriter.Rewrite(&*plan).ok());
}

TEST(VerifyEach, DefaultPipelineStaysVerifierGreen) {
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Filter(Gt(Attribute("scaled"), Lit(3.0)))
                  .Project({"key", "scaled"})
                  .To(std::make_shared<CountingSink>(
                      Schema::Build().AddInt64("key").AddDouble("scaled").Finish()))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  OptimizerOptions options;
  options.verify_each = true;
  PlanRewriter rewriter = PlanRewriter::Default(options);
  EXPECT_TRUE(rewriter.Rewrite(&*plan).ok());
  EXPECT_TRUE(analysis::VerifyPlan(*plan).ok());
}

// Submit-time wiring: the engine refuses a malformed plan when
// verify-each is on, quoting the rule.
TEST(VerifyEach, EngineSubmitRejectsMalformedPlan) {
  SplitQuery split = Query::From(MakeSource()).Split(2);
  std::move(split[0]).Project({"key", "value"}).To(EventSink());
  std::move(split[1]).Filter(Gt(Attribute("value"), Lit(1.0))).To(EventSink());
  auto plan = std::move(split).Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EngineOptions options;
  options.optimizer.verify_each = true;
  NodeEngine engine(options);
  auto id = engine.Submit(std::move(*plan));
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("branch-schema-coherence"),
            std::string::npos)
      << id.status().message();
}

// --- Pipeline / batch / strand verifiers ------------------------------------

TEST(PipelineVerifier, AcceptsCompiledPlanAndCatchesCorruption) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto pipeline = CompilePlan(EventSchema(), *plan);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_TRUE(analysis::VerifyPipeline(*pipeline).ok());

  // Corrupt the declared output schema: must no longer match the last
  // operator's.
  CompiledPipeline broken = std::move(*pipeline);
  broken.output_schema = Schema::Build().AddInt64("x").Finish();
  const Status st = analysis::VerifyPipeline(broken);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("schema"), std::string::npos) << st.message();
}

TEST(PipelineVerifier, RejectsDeadEndSegmentUnlessDynamicTail) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .To(EventSink())
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto pipeline = CompilePlan(EventSchema(), *plan);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // A sink-less, branch-less segment is a dead end for a normal query —
  // but exactly the shape of a shared host awaiting AttachBranch.
  pipeline->sink = nullptr;
  const Status st = analysis::VerifyPipeline(*pipeline);
  ASSERT_FALSE(st.ok());

  analysis::PipelineVerifyContext ctx;
  ctx.expect_dynamic_tail = true;
  EXPECT_TRUE(analysis::VerifyPipeline(*pipeline, ctx).ok());
}

TEST(BatchVerifier, EnforcesSealedBufferAndAscendingSelection) {
  auto buf = std::make_shared<TupleBuffer>(EventSchema(), 4);
  for (int i = 0; i < 4; ++i) {
    RecordWriter w = buf->Append();
    w.SetInt64(0, i);
    w.SetInt64(1, Seconds(i));
    w.SetDouble(2, i * 1.0);
  }

  // Unsealed: the dispatch contract requires sealed buffers.
  EXPECT_FALSE(analysis::VerifyBatch(exec::Batch(buf)).ok());
  buf->Seal();
  EXPECT_TRUE(analysis::VerifyBatch(exec::Batch(buf)).ok());

  auto sel = [](std::initializer_list<uint32_t> v) {
    return std::make_shared<const exec::SelectionVector>(v);
  };
  EXPECT_TRUE(analysis::VerifyBatch(exec::Batch(buf, sel({0, 2, 3}))).ok());
  // Not strictly ascending.
  EXPECT_FALSE(analysis::VerifyBatch(exec::Batch(buf, sel({2, 1}))).ok());
  // Out of bounds.
  EXPECT_FALSE(analysis::VerifyBatch(exec::Batch(buf, sel({0, 99}))).ok());
  // Null data.
  EXPECT_FALSE(analysis::VerifyBatch(exec::Batch(nullptr)).ok());
}

TEST(StrandVerifier, RejectsSharedAndNullStrands) {
  int a = 0;
  int b = 0;
  using Owners = std::vector<std::pair<std::string, const void*>>;
  EXPECT_TRUE(analysis::VerifyStrandOwnership(Owners{{"b1", &a}, {"b2", &b}})
                  .ok());
  const Status shared =
      analysis::VerifyStrandOwnership(Owners{{"b1", &a}, {"b2", &a}});
  ASSERT_FALSE(shared.ok());
  EXPECT_NE(shared.message().find("b2"), std::string::npos)
      << shared.message();
  EXPECT_FALSE(
      analysis::VerifyStrandOwnership(Owners{{"b1", nullptr}}).ok());
}

}  // namespace
}  // namespace nebulameos::nebula

// Tests for the stream runtime: schema, tuple buffers, buffer manager.

#include <gtest/gtest.h>

#include <thread>

#include "nebula/buffer_manager.hpp"
#include "nebula/schema.hpp"
#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {
namespace {

Schema TestSchema() {
  return Schema::Build()
      .AddInt64("id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddBool("flag")
      .AddText16("tag")
      .Finish();
}

TEST(DataType, Sizes) {
  EXPECT_EQ(DataTypeSize(DataType::kBool), 1u);
  EXPECT_EQ(DataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kDouble), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kTimestamp), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kText16), 16u);
  EXPECT_EQ(DataTypeSize(DataType::kText32), 32u);
}

TEST(Schema, OffsetsAndRecordSize) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 6u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(4), 32u);
  EXPECT_EQ(s.offset(5), 33u);
  EXPECT_EQ(s.record_size(), 49u);
}

TEST(Schema, MakeRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(Schema::Make({{"a", DataType::kInt64},
                             {"a", DataType::kDouble}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"", DataType::kInt64}}).ok());
}

TEST(Schema, IndexOfAndHasField) {
  const Schema s = TestSchema();
  EXPECT_EQ(*s.IndexOf("lat"), 3u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_TRUE(s.HasField("flag"));
  EXPECT_FALSE(s.HasField("nope"));
}

TEST(Schema, EqualityAndToString) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  Schema other = Schema::Build().AddInt64("id").Finish();
  EXPECT_FALSE(TestSchema() == other);
  EXPECT_NE(TestSchema().ToString().find("lon:DOUBLE"), std::string::npos);
}

TEST(TupleBuffer, AppendAndRead) {
  TupleBuffer buf(TestSchema(), 4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 4u);
  RecordWriter w = buf.Append();
  w.SetInt64(0, 7);
  w.SetInt64(1, 1000);
  w.SetDouble(2, 4.35);
  w.SetDouble(3, 50.85);
  w.SetBool(4, true);
  w.SetText(5, "hello");
  ASSERT_EQ(buf.size(), 1u);
  const RecordView r = buf.At(0);
  EXPECT_EQ(r.GetInt64(0), 7);
  EXPECT_EQ(r.GetInt64(1), 1000);
  EXPECT_DOUBLE_EQ(r.GetDouble(2), 4.35);
  EXPECT_TRUE(r.GetBool(4));
  EXPECT_EQ(r.GetText(5), "hello");
}

TEST(TupleBuffer, TextTruncatesToFieldWidth) {
  TupleBuffer buf(TestSchema(), 1);
  RecordWriter w = buf.Append();
  w.SetText(5, "0123456789abcdefOVERFLOW");
  EXPECT_EQ(buf.At(0).GetText(5), "0123456789abcdef");
}

TEST(TupleBuffer, GetNumericWidens) {
  TupleBuffer buf(TestSchema(), 1);
  RecordWriter w = buf.Append();
  w.SetInt64(0, 42);
  w.SetDouble(2, 1.5);
  EXPECT_DOUBLE_EQ(buf.At(0).GetNumeric(0), 42.0);
  EXPECT_DOUBLE_EQ(buf.At(0).GetNumeric(2), 1.5);
}

TEST(TupleBuffer, CopyFrom) {
  TupleBuffer buf(TestSchema(), 2);
  RecordWriter w = buf.Append();
  w.SetInt64(0, 1);
  w.SetText(5, "abc");
  RecordWriter w2 = buf.Append();
  w2.CopyFrom(buf.At(0));
  EXPECT_EQ(buf.At(1).GetInt64(0), 1);
  EXPECT_EQ(buf.At(1).GetText(5), "abc");
}

TEST(TupleBuffer, FullClearPopBack) {
  TupleBuffer buf(TestSchema(), 2);
  buf.Append();
  buf.Append();
  EXPECT_TRUE(buf.full());
  buf.PopBack();
  EXPECT_EQ(buf.size(), 1u);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
}

TEST(TupleBuffer, MetadataAndSizeBytes) {
  TupleBuffer buf(TestSchema(), 4);
  buf.Append();
  buf.Append();
  EXPECT_EQ(buf.SizeBytes(), 2 * TestSchema().record_size());
  buf.set_sequence_number(9);
  buf.set_watermark(12345);
  EXPECT_EQ(buf.sequence_number(), 9u);
  EXPECT_EQ(buf.watermark(), 12345);
  buf.Reset();
  EXPECT_EQ(buf.sequence_number(), 0u);
  EXPECT_EQ(buf.watermark(), 0);
  EXPECT_TRUE(buf.empty());
}

TEST(BufferManager, AcquireRecycle) {
  auto mgr = BufferManager::Create(TestSchema(), 16, 2);
  EXPECT_EQ(mgr->available(), 2u);
  {
    TupleBufferPtr a = mgr->Acquire();
    TupleBufferPtr b = mgr->Acquire();
    EXPECT_EQ(mgr->available(), 0u);
    EXPECT_EQ(mgr->TryAcquire(), nullptr);
  }
  // Handles went out of scope -> buffers returned.
  EXPECT_EQ(mgr->available(), 2u);
}

TEST(BufferManager, RecycledBuffersAreReset) {
  auto mgr = BufferManager::Create(TestSchema(), 16, 1);
  {
    TupleBufferPtr a = mgr->Acquire();
    a->Append();
    a->set_watermark(99);
  }
  TupleBufferPtr b = mgr->Acquire();
  EXPECT_TRUE(b->empty());
  EXPECT_EQ(b->watermark(), 0);
}

TEST(BufferManager, AcquireBlocksUntilRecycle) {
  auto mgr = BufferManager::Create(TestSchema(), 16, 1);
  TupleBufferPtr held = mgr->Acquire();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    TupleBufferPtr b = mgr->Acquire();  // blocks until `held` released
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  held.reset();
  waiter.join();
  EXPECT_TRUE(got.load());
}

}  // namespace
}  // namespace nebulameos::nebula

// Tests for the spatiotemporal window aggregators
// (src/nebulameos/trajectory): stream → MEOS trajectory → exact operations.

#include <gtest/gtest.h>

#include "nebula/operators.hpp"
#include "nebulameos/plugin.hpp"
#include "nebulameos/trajectory.hpp"

namespace nebulameos::integration {
namespace {

using nebula::AggregateSpec;
using nebula::OperatorPtr;
using nebula::RecordWriter;
using nebula::Schema;
using nebula::TupleBuffer;
using nebula::TupleBufferPtr;
using nebula::Value;
using nebula::ValueAsBool;
using nebula::ValueAsDouble;
using nebula::ValueAsInt64;
using nebula::WindowAggOptions;

Schema PosSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .Finish();
}

class TrajectoryAggTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto registry = std::make_shared<GeofenceRegistry>();
    registry->AddPolygonZone(
        "corridor", ZoneKind::kMaintenance,
        *Polygon::Make(
            {{4.34, 50.80}, {4.36, 50.80}, {4.36, 50.90}, {4.34, 50.90}}));
    registry->AddPoi("ws", "workshop", {4.35, 50.87});
    ASSERT_TRUE(RegisterMeosPlugin(registry).ok());
    SetActiveGeofences(registry);
  }

  TrajectoryFields Fields() {
    TrajectoryFields f;
    f.lon = "lon";
    f.lat = "lat";
    f.time = "ts";
    return f;
  }

  // Runs one tumbling window over a straight northbound track and returns
  // the single result row.
  std::vector<Value> RunWindow(
      std::vector<nebula::CustomAggregatorFactory> customs) {
    WindowAggOptions opts;
    opts.key_field = "train_id";
    opts.time_field = "ts";
    opts.window = nebula::TumblingWindowSpec{Minutes(10)};
    opts.aggregates = {AggregateSpec::Count("n")};
    opts.custom_aggregators = std::move(customs);
    auto op = nebula::WindowAggOperator::Make(PosSchema(), opts);
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    nebula::ExecutionContext ctx;
    EXPECT_TRUE((*op)->Open(&ctx).ok());
    schema_ = (*op)->output_schema();

    // Northbound at constant speed: 0.001 deg lat (≈111 m) per 10 s.
    auto buf = std::make_shared<TupleBuffer>(PosSchema(), 32);
    for (int i = 0; i < 30; ++i) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, 1);
      w.SetInt64(1, Seconds(10 * i));
      w.SetDouble(2, 4.35);
      w.SetDouble(3, 50.80 + 0.001 * i);
    }
    std::vector<std::vector<Value>> rows;
    auto collect = [&](const TupleBufferPtr& out) {
      for (size_t i = 0; i < out->size(); ++i) {
        const nebula::RecordView rec = out->At(i);
        std::vector<Value> row;
        for (size_t f = 0; f < out->schema().num_fields(); ++f) {
          switch (out->schema().field(f).type) {
            case nebula::DataType::kBool:
              row.emplace_back(rec.GetBool(f));
              break;
            case nebula::DataType::kDouble:
              row.emplace_back(rec.GetDouble(f));
              break;
            default:
              row.emplace_back(rec.GetInt64(f));
          }
        }
        rows.push_back(std::move(row));
      }
    };
    EXPECT_TRUE((*op)->Process(buf, collect).ok());
    EXPECT_TRUE((*op)->Finish(collect).ok());
    EXPECT_EQ(rows.size(), 1u);
    return rows.empty() ? std::vector<Value>{} : rows[0];
  }

  size_t FieldIndex(const std::string& name) {
    auto idx = schema_.IndexOf(name);
    EXPECT_TRUE(idx.ok()) << name;
    return *idx;
  }

  Schema schema_;
};

TEST_F(TrajectoryAggTest, MetricsAggregator) {
  auto row = RunWindow({TrajectoryMetricsAggregator::Factory(Fields())});
  ASSERT_FALSE(row.empty());
  EXPECT_EQ(ValueAsInt64(row[FieldIndex("traj_points")]), 30);
  // 29 segments of ~111.2 m.
  const double length = ValueAsDouble(row[FieldIndex("traj_length_m")]);
  EXPECT_NEAR(length, 29 * 111.2, 40.0);
  // 29 segments over 290 s at ~11.1 m/s.
  EXPECT_NEAR(ValueAsDouble(row[FieldIndex("traj_avg_speed_ms")]), 11.1, 0.3);
  EXPECT_NEAR(ValueAsDouble(row[FieldIndex("traj_max_speed_ms")]), 11.1, 0.3);
}

TEST_F(TrajectoryAggTest, EdwithinAggregatorPoi) {
  // Track passes within ~0 m of the workshop at lat 50.87... but the
  // trajectory only reaches 50.829 (30 points x 0.001): ~4.5 km short.
  auto row = RunWindow(
      {EdwithinAggregator::Factory("ws", 5000.0, "ws5k", Fields()),
       EdwithinAggregator::Factory("ws", 1000.0, "ws1k", Fields())});
  ASSERT_FALSE(row.empty());
  EXPECT_TRUE(ValueAsBool(row[FieldIndex("ws5k_edwithin")]));
  EXPECT_FALSE(ValueAsBool(row[FieldIndex("ws1k_edwithin")]));
  const double min_dist = ValueAsDouble(row[FieldIndex("ws5k_min_dist_m")]);
  EXPECT_NEAR(min_dist, 4560.0, 100.0);
  EXPECT_DOUBLE_EQ(min_dist,
                   ValueAsDouble(row[FieldIndex("ws1k_min_dist_m")]));
}

TEST_F(TrajectoryAggTest, ZoneDwellAggregator) {
  // The corridor spans the whole track laterally; the trajectory is inside
  // for its entire 290 s duration.
  auto row = RunWindow({ZoneDwellAggregator::Factory("corridor", "dwell",
                                                     Fields())});
  ASSERT_FALSE(row.empty());
  EXPECT_TRUE(ValueAsBool(row[FieldIndex("dwell_entered")]));
  EXPECT_NEAR(ValueAsDouble(row[FieldIndex("dwell_seconds")]), 290.0, 1.0);
}

TEST_F(TrajectoryAggTest, ExtentAggregator) {
  auto row = RunWindow({ExtentAggregatorAdapter::Factory(Fields())});
  ASSERT_FALSE(row.empty());
  EXPECT_DOUBLE_EQ(ValueAsDouble(row[FieldIndex("extent_xmin")]), 4.35);
  EXPECT_DOUBLE_EQ(ValueAsDouble(row[FieldIndex("extent_xmax")]), 4.35);
  EXPECT_DOUBLE_EQ(ValueAsDouble(row[FieldIndex("extent_ymin")]), 50.80);
  EXPECT_NEAR(ValueAsDouble(row[FieldIndex("extent_ymax")]), 50.829, 1e-9);
}

TEST_F(TrajectoryAggTest, BindFailsOnMissingFields) {
  TrajectoryFields wrong;
  wrong.lon = "nope";
  TrajectoryMetricsAggregator agg(wrong);
  EXPECT_FALSE(agg.Bind(PosSchema()).ok());
}

TEST_F(TrajectoryAggTest, EdwithinUnknownTargetFailsBind) {
  EdwithinAggregator agg("no-such-target", 100.0, "x", Fields());
  EXPECT_FALSE(agg.Bind(PosSchema()).ok());
}

TEST_F(TrajectoryAggTest, OutOfOrderRecordsAreSorted) {
  // Shuffle arrival order; the finalized trajectory sorts by time.
  TrajectoryMetricsAggregator agg(Fields());
  ASSERT_TRUE(agg.Bind(PosSchema()).ok());
  TupleBuffer buf(PosSchema(), 3);
  const Timestamp times[3] = {Seconds(20), Seconds(0), Seconds(10)};
  const double lats[3] = {50.82, 50.80, 50.81};
  for (int i = 0; i < 3; ++i) {
    RecordWriter w = buf.Append();
    w.SetInt64(0, 1);
    w.SetInt64(1, times[i]);
    w.SetDouble(2, 4.35);
    w.SetDouble(3, lats[i]);
    agg.Add(buf.At(i), times[i]);
  }
  // Write into a result row: 1 custom field block of 4.
  Schema out_schema = Schema::Build()
                          .AddInt64("traj_points")
                          .AddDouble("traj_length_m")
                          .AddDouble("traj_avg_speed_ms")
                          .AddDouble("traj_max_speed_ms")
                          .Finish();
  TupleBuffer out(out_schema, 1);
  RecordWriter w = out.Append();
  agg.WriteResult(&w, 0);
  EXPECT_EQ(out.At(0).GetInt64(0), 3);
  // Monotone northbound after sorting: 0.02 deg ≈ 2 × 1112 m (arrival order
  // would have produced 2x that by zig-zagging).
  EXPECT_NEAR(out.At(0).GetDouble(1), 2224.0, 20.0);
}

}  // namespace
}  // namespace nebulameos::integration

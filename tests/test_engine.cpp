// End-to-end engine tests: query API, plan emission and compilation,
// operators through the NodeEngine, pipelined mode, cancellation,
// statistics, plan introspection.

#include <gtest/gtest.h>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr MakeSource(int n, size_t rounds = 1) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), rounds,
                                        "ts");
}

TEST(Engine, SubmitRequiresSourceAndSink) {
  NodeEngine engine;
  Query no_sink = Query::From(MakeSource(3));
  EXPECT_FALSE(engine.Submit(std::move(no_sink)).ok());
}

TEST(Engine, FilterQuery) {
  NodeEngine engine;
  auto sink = std::make_shared<CollectSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(10))
                              .Filter(Ge(Attribute("value"), Lit(5.0)))
                              .To(sink));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->RowCount(), 5u);
  for (const auto& row : sink->Rows()) {
    EXPECT_GE(ValueAsDouble(row[2]), 5.0);
  }
}

TEST(Engine, MapAddsAndReplacesFields) {
  NodeEngine engine;
  auto plan = Query::From(MakeSource(4))
                  .Map("double_value", Mul(Attribute("value"), Lit(2.0)))
                  .Map("value", Add(Attribute("value"), Lit(100.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->HasField("double_value"));
  EXPECT_EQ(out->num_fields(), 4u);  // value replaced in place

  auto sink = std::make_shared<CollectSink>(*out);
  plan->SetSink(sink);
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  const auto rows = sink->Rows();
  ASSERT_EQ(rows.size(), 4u);
  // Row i: double_value = 2i (from the original value), value = i + 100.
  EXPECT_DOUBLE_EQ(ValueAsDouble(rows[3][3]), 6.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(rows[3][2]), 103.0);
}

TEST(Engine, ProjectReordersFields) {
  auto plan = Query::From(MakeSource(2)).Project({"value", "key"}).Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(EventSchema(), *plan);
  ASSERT_TRUE(pipe.ok());
  const Schema& out = pipe->operators.back()->output_schema();
  ASSERT_EQ(out.num_fields(), 2u);
  EXPECT_EQ(out.field(0).name, "value");
  EXPECT_EQ(out.field(1).name, "key");
}

TEST(Engine, CompileRejectsBadPlans) {
  {
    auto plan =
        Query::From(MakeSource(2)).Filter(Gt(Attribute("nope"), Lit(1))).Build();
    ASSERT_TRUE(plan.ok());
    EXPECT_FALSE(CompilePlan(EventSchema(), *plan).ok());
  }
  {
    auto plan = Query::From(MakeSource(2)).Project({"nope"}).Build();
    ASSERT_TRUE(plan.ok());
    EXPECT_FALSE(CompilePlan(EventSchema(), *plan).ok());
  }
}

TEST(Engine, KeyByWithoutWindowIsRejected) {
  // Regression: a dangling KeyBy used to be silently dropped; it is now a
  // hard validation error at submission.
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(4))
                              .KeyBy("key")
                              .Filter(Ge(Attribute("value"), Lit(0.0)))
                              .To(sink));
  ASSERT_FALSE(id.ok());
  EXPECT_NE(id.status().message().find("KeyBy"), std::string::npos)
      << id.status().ToString();
}

TEST(Engine, WindowAggThroughEngine) {
  NodeEngine engine;
  auto plan = Query::From(MakeSource(10))
                  .KeyBy("key")
                  .TumblingWindow(Seconds(5), "ts")
                  .Aggregate({AggregateSpec::Count("n"),
                              AggregateSpec::Sum("value", "total")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok());
  auto sink = std::make_shared<CollectSink>(*out);
  plan->SetSink(sink);
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  // 10 events at 1 e/s over keys {0,1,2}: windows [0,5) and [5,10).
  const auto rows = sink->Rows();
  int64_t total_events = 0;
  double total_value = 0.0;
  for (const auto& row : rows) {
    total_events += ValueAsInt64(row[3]);
    total_value += ValueAsDouble(row[4]);
  }
  EXPECT_EQ(total_events, 10);
  EXPECT_DOUBLE_EQ(total_value, 45.0);  // sum 0..9
}

TEST(Engine, ChainedFilterMapWindow) {
  NodeEngine engine;
  auto plan = Query::From(MakeSource(20))
                  .Filter(Ge(Attribute("value"), Lit(10.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(0.5)))
                  .KeyBy("key")
                  .TumblingWindow(Seconds(100), "ts")
                  .Aggregate({AggregateSpec::Max("scaled", "peak")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok());
  auto sink = std::make_shared<CollectSink>(*out);
  plan->SetSink(sink);
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  double max_peak = 0.0;
  for (const auto& row : sink->Rows()) {
    max_peak = std::max(max_peak, ValueAsDouble(row[3]));
  }
  EXPECT_DOUBLE_EQ(max_peak, 9.5);  // value 19 scaled
}

TEST(Engine, ExplainReportsSubmittedAndOptimizedPlan) {
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(10))
                              .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                              .Filter(Ge(Attribute("value"), Lit(5.0)))
                              .Project({"key", "ts", "value"})
                              .To(sink));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto text = engine.Explain(*id);
  ASSERT_TRUE(text.ok());
  // Pre-optimization: the plan as submitted (Map before Filter).
  EXPECT_NE(text->logical.find("Map(scaled :="), std::string::npos)
      << text->logical;
  EXPECT_LT(text->logical.find("Map(scaled"), text->logical.find("Filter"));
  // Post-optimization: the filter was pushed below the map, and the dead
  // "scaled" field (projected away) was eliminated with its map.
  EXPECT_EQ(text->optimized.find("Map("), std::string::npos)
      << text->optimized;
  EXPECT_NE(text->optimized.find("Filter"), std::string::npos);
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 5u);
}

TEST(Engine, OptimizerDisableSubmitsVerbatim) {
  EngineOptions opts;
  opts.optimizer.enable = false;
  NodeEngine engine(opts);
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(10))
                              .Filter(Ge(Attribute("value"), Lit(5.0)))
                              .Filter(Lt(Attribute("value"), Lit(8.0)))
                              .To(sink));
  ASSERT_TRUE(id.ok());
  auto text = engine.Explain(*id);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->logical, text->optimized);
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 3u);  // values 5, 6, 7
}

TEST(Engine, StatsCountEventsAndBytes) {
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(100)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_ingested, 100u);
  EXPECT_EQ(stats->bytes_ingested, 100 * EventSchema().record_size());
  EXPECT_EQ(stats->events_emitted, 100u);
  EXPECT_GT(stats->elapsed_micros, 0);
  EXPECT_GT(stats->EventsPerSecond(), 0.0);
  EXPECT_GT(stats->MegabytesPerSecond(), 0.0);
  // Sink appears in operator stats.
  ASSERT_FALSE(stats->operator_stats.empty());
  EXPECT_EQ(stats->operator_stats.back().first, "CountingSink");
  EXPECT_EQ(stats->operator_stats.back().second.events_in, 100u);
}

TEST(Engine, MultipleRoundsRepeatData) {
  NodeEngine engine;
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(10, /*rounds=*/3)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 30u);
}

TEST(Engine, PipelinedModeMatchesSynchronous) {
  EngineOptions opts;
  opts.pipelined = true;
  NodeEngine engine(opts);
  auto sink = std::make_shared<CollectSink>(EventSchema());
  auto id = engine.Submit(Query::From(MakeSource(50))
                              .Filter(Lt(Attribute("value"), Lit(25.0)))
                              .To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->RowCount(), 25u);
}

TEST(Engine, GeneratorSourceUnboundedWithMax) {
  NodeEngine engine;
  Schema schema = EventSchema();
  int64_t i = 0;
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [&i](RecordWriter* w) {
        w->SetInt64(0, 0);
        w->SetInt64(1, Seconds(i));
        w->SetDouble(2, static_cast<double>(i));
        ++i;
        return true;
      },
      /*max_events=*/500, "ts");
  auto sink = std::make_shared<CountingSink>(schema);
  auto id = engine.Submit(Query::From(std::move(source)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 500u);
}

TEST(Engine, GeneratorEndsStream) {
  NodeEngine engine;
  Schema schema = EventSchema();
  int64_t i = 0;
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [&i](RecordWriter* w) {
        if (i >= 7) return false;  // generator-driven end
        w->SetInt64(0, 0);
        w->SetInt64(1, Seconds(i));
        w->SetDouble(2, 0.0);
        ++i;
        return true;
      },
      /*max_events=*/0, "ts");
  auto sink = std::make_shared<CountingSink>(schema);
  auto id = engine.Submit(Query::From(std::move(source)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 7u);
}

TEST(Engine, CancelStopsLongRun) {
  NodeEngine engine;
  Schema schema = EventSchema();
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [](RecordWriter* w) {
        w->SetInt64(0, 0);
        w->SetInt64(1, 0);
        w->SetDouble(2, 0.0);
        return true;  // endless
      },
      /*max_events=*/0, "");
  auto sink = std::make_shared<CountingSink>(schema);
  auto id = engine.Submit(Query::From(std::move(source)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start(*id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(engine.Cancel(*id).ok());
  EXPECT_GT(sink->events(), 0u);
}

TEST(Engine, UnknownQueryIdErrors) {
  NodeEngine engine;
  EXPECT_FALSE(engine.Start(42).ok());
  EXPECT_FALSE(engine.Wait(42).ok());
  EXPECT_FALSE(engine.Stats(42).ok());
  EXPECT_FALSE(engine.Explain(42).ok());
}

TEST(Engine, ConcurrentQueries) {
  NodeEngine engine;
  std::vector<std::shared_ptr<CountingSink>> sinks;
  std::vector<int> ids;
  for (int k = 0; k < 4; ++k) {
    auto sink = std::make_shared<CountingSink>(EventSchema());
    auto id = engine.Submit(Query::From(MakeSource(1000)).To(sink));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    sinks.push_back(sink);
  }
  for (int id : ids) ASSERT_TRUE(engine.Start(id).ok());
  for (int id : ids) ASSERT_TRUE(engine.Wait(id).ok());
  for (const auto& sink : sinks) EXPECT_EQ(sink->events(), 1000u);
  EXPECT_EQ(engine.NumQueries(), 4u);
}

TEST(Engine, CsvRoundTrip) {
  const std::string path = "/tmp/nm_engine_csv_test.csv";
  {
    auto sink = CsvSink::Open(EventSchema(), path);
    ASSERT_TRUE(sink.ok());
    NodeEngine engine;
    auto id = engine.Submit(Query::From(MakeSource(5)).To(*sink));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  }
  // Read it back through CsvSource.
  auto source = CsvSource::Open(EventSchema(), path, /*skip_header=*/true, "ts");
  ASSERT_TRUE(source.ok());
  NodeEngine engine;
  auto sink = std::make_shared<CollectSink>(EventSchema());
  auto id = engine.Submit(Query::From(std::move(*source)).To(sink));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  const auto rows = sink->Rows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(rows[4][2]), 4.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nebulameos::nebula

// Tests for the temporal float/bool algebra (src/meos/tfloat_ops).

#include <gtest/gtest.h>

#include "meos/tfloat_ops.hpp"

namespace nebulameos::meos {
namespace {

TFloatSeq FSeq(std::initializer_list<std::pair<double, Timestamp>> vals,
               Interp interp = Interp::kLinear, bool li = true,
               bool ui = true) {
  std::vector<TInstant<double>> instants;
  for (const auto& [v, t] : vals) instants.push_back({v, t});
  auto seq = TFloatSeq::Make(std::move(instants), li, ui, interp);
  EXPECT_TRUE(seq.ok()) << seq.status().ToString();
  return *seq;
}

TEST(Arith, AddMulConst) {
  const TFloatSeq seq = FSeq({{1.0, 0}, {2.0, 10}});
  const TFloatSeq plus = AddConst(seq, 5.0);
  EXPECT_DOUBLE_EQ(plus.StartValue(), 6.0);
  EXPECT_DOUBLE_EQ(plus.EndValue(), 7.0);
  const TFloatSeq times = MulConst(seq, 3.0);
  EXPECT_DOUBLE_EQ(times.StartValue(), 3.0);
  EXPECT_DOUBLE_EQ(times.EndValue(), 6.0);
}

TEST(Arith, SynchronizeAlignsInstants) {
  const TFloatSeq a = FSeq({{0.0, 0}, {10.0, 100}});
  const TFloatSeq b = FSeq({{5.0, 50}, {5.0, 150}});
  auto sync = Synchronize(a, b);
  ASSERT_TRUE(sync.has_value());
  // Common period [50, 100]; union instants {50, 100}.
  EXPECT_EQ(sync->first.StartTime(), 50);
  EXPECT_EQ(sync->first.EndTime(), 100);
  EXPECT_DOUBLE_EQ(sync->first.StartValue(), 5.0);
  EXPECT_DOUBLE_EQ(sync->second.StartValue(), 5.0);
}

TEST(Arith, AddSequences) {
  const TFloatSeq a = FSeq({{0.0, 0}, {10.0, 100}});
  const TFloatSeq b = FSeq({{1.0, 0}, {1.0, 100}});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.has_value());
  EXPECT_DOUBLE_EQ(sum->StartValue(), 1.0);
  EXPECT_DOUBLE_EQ(sum->EndValue(), 11.0);
  EXPECT_DOUBLE_EQ(*sum->ValueAt(50), 6.0);
}

TEST(Arith, SubDisjointIsNull) {
  const TFloatSeq a = FSeq({{0.0, 0}, {1.0, 10}});
  const TFloatSeq b = FSeq({{0.0, 20}, {1.0, 30}});
  EXPECT_FALSE(Sub(a, b).has_value());
}

TEST(CmpConst, StepSequenceSwitchesAtInstants) {
  const TFloatSeq seq =
      FSeq({{1.0, 0}, {5.0, 10}, {2.0, 20}}, Interp::kStep);
  const TBoolSeq tb = CmpConst(seq, CmpOp::kGt, 3.0);
  // true exactly on [10, 20).
  EXPECT_FALSE(*tb.ValueAt(5));
  EXPECT_TRUE(*tb.ValueAt(10));
  EXPECT_TRUE(*tb.ValueAt(19));
  EXPECT_FALSE(*tb.ValueAt(20));
}

TEST(CmpConst, LinearCrossingExact) {
  // 0 at t=0 rising to 10 at t=100; crosses 5 at t=50.
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  const TBoolSeq tb = CmpConst(seq, CmpOp::kGe, 5.0);
  const PeriodSet when = WhenTrue(tb);
  ASSERT_EQ(when.size(), 1u);
  EXPECT_EQ(when.periods()[0].lower(), 50);
  EXPECT_EQ(when.periods()[0].upper(), 100);
}

TEST(CmpConst, DoubleCrossing) {
  // Rise above 5 then fall below: true on the middle segment only.
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}, {0.0, 200}});
  const PeriodSet when = WhenCmp(seq, CmpOp::kGt, 5.0);
  ASSERT_EQ(when.size(), 1u);
  EXPECT_EQ(when.periods()[0].lower(), 50);
  EXPECT_EQ(when.periods()[0].upper(), 150);
  // Total true time = 100 of 200.
  EXPECT_EQ(when.TotalDuration(), 100);
}

TEST(CmpConst, NeverTrue) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {1.0, 100}});
  EXPECT_TRUE(WhenCmp(seq, CmpOp::kGt, 5.0).empty());
  EXPECT_EQ(WhenCmp(seq, CmpOp::kLt, 5.0).TotalDuration(), 100);
}

TEST(EverAlways, BasicComparisons) {
  const TFloatSeq seq = FSeq({{1.0, 0}, {9.0, 100}});
  EXPECT_TRUE(Ever(seq, CmpOp::kGt, 8.0));
  EXPECT_TRUE(Ever(seq, CmpOp::kLt, 2.0));
  EXPECT_TRUE(Ever(seq, CmpOp::kEq, 5.0));  // attained by interpolation
  EXPECT_FALSE(Ever(seq, CmpOp::kGt, 9.0));
  EXPECT_TRUE(Ever(seq, CmpOp::kGe, 9.0));
  EXPECT_TRUE(Always(seq, CmpOp::kGe, 1.0));
  EXPECT_FALSE(Always(seq, CmpOp::kGt, 1.0));
  EXPECT_TRUE(Always(seq, CmpOp::kLe, 9.0));
}

TEST(EverAlways, OpenBoundsExcludeEndpointValues) {
  // Value 9 only at the (excluded) upper bound.
  const TFloatSeq seq = FSeq({{1.0, 0}, {9.0, 100}}, Interp::kLinear, true,
                             /*ui=*/false);
  EXPECT_FALSE(Ever(seq, CmpOp::kGe, 9.0));
  EXPECT_TRUE(Ever(seq, CmpOp::kGt, 8.999));
  // Value 1 at the included lower bound.
  EXPECT_TRUE(Ever(seq, CmpOp::kLe, 1.0));
}

TEST(EverAlways, ConstantSegment) {
  const TFloatSeq seq = FSeq({{5.0, 0}, {5.0, 100}});
  EXPECT_TRUE(Ever(seq, CmpOp::kEq, 5.0));
  EXPECT_TRUE(Always(seq, CmpOp::kEq, 5.0));
  EXPECT_FALSE(Ever(seq, CmpOp::kNe, 5.0));
}

TEST(EverAlways, SingleInstant) {
  const TFloatSeq seq = FSeq({{3.0, 0}});
  EXPECT_TRUE(Ever(seq, CmpOp::kEq, 3.0));
  EXPECT_FALSE(Ever(seq, CmpOp::kGt, 3.0));
  EXPECT_TRUE(Always(seq, CmpOp::kLe, 3.0));
}

TEST(MinMax, OverInstants) {
  const TFloatSeq seq = FSeq({{3.0, 0}, {-2.0, 10}, {7.0, 20}});
  EXPECT_DOUBLE_EQ(MinValue(seq), -2.0);
  EXPECT_DOUBLE_EQ(MaxValue(seq), 7.0);
}

TEST(AtRange, RestrictsByValue) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, 100}});
  const auto parts = AtRange(seq, 2.0, 4.0);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].StartTime(), 20);
  EXPECT_EQ(parts[0].EndTime(), 40);
  EXPECT_DOUBLE_EQ(parts[0].StartValue(), 2.0);
  EXPECT_DOUBLE_EQ(parts[0].EndValue(), 4.0);
}

TEST(AtRange, MultipleSegments) {
  // W-shape dips into [0,1] twice.
  const TFloatSeq seq =
      FSeq({{2.0, 0}, {0.0, 50}, {2.0, 100}, {0.0, 150}, {2.0, 200}});
  const auto parts = AtRange(seq, 0.0, 1.0);
  EXPECT_EQ(parts.size(), 2u);
}

TEST(Integral, LinearTrapezoid) {
  const TFloatSeq seq = FSeq({{0.0, 0}, {10.0, Seconds(10)}});
  EXPECT_NEAR(Integral(seq), 50.0, 1e-9);  // triangle: 10*10/2
}

TEST(Integral, StepRectangles) {
  const TFloatSeq seq =
      FSeq({{2.0, 0}, {4.0, Seconds(5)}, {0.0, Seconds(10)}}, Interp::kStep);
  EXPECT_NEAR(Integral(seq), 2.0 * 5 + 4.0 * 5, 1e-9);
}

TEST(TwAvg, WeightsByTime) {
  // 0 for 9 seconds, then jumps to 10 for 1 second (step).
  const TFloatSeq seq =
      FSeq({{0.0, 0}, {10.0, Seconds(9)}, {10.0, Seconds(10)}}, Interp::kStep);
  EXPECT_NEAR(TwAvg(seq), 1.0, 1e-9);
}

TEST(TwAvg, InstantaneousFallsBackToValue) {
  const TFloatSeq seq = FSeq({{7.0, 0}});
  EXPECT_DOUBLE_EQ(TwAvg(seq), 7.0);
}

TEST(Derivative, SlopesPerSegment) {
  const TFloatSeq seq =
      FSeq({{0.0, 0}, {10.0, Seconds(10)}, {10.0, Seconds(20)}});
  auto deriv = Derivative(seq);
  ASSERT_TRUE(deriv.ok());
  EXPECT_EQ(deriv->interp(), Interp::kStep);
  EXPECT_NEAR(*deriv->ValueAt(Seconds(5)), 1.0, 1e-9);
  EXPECT_NEAR(*deriv->ValueAt(Seconds(15)), 0.0, 1e-9);
}

TEST(Derivative, RequiresLinear) {
  const TFloatSeq step = FSeq({{0.0, 0}, {1.0, 10}}, Interp::kStep);
  EXPECT_FALSE(Derivative(step).ok());
  const TFloatSeq single = FSeq({{0.0, 0}});
  EXPECT_FALSE(Derivative(single).ok());
}

TEST(BoolOps, AndOrNot) {
  auto a = TBoolSeq::Make({{true, 0}, {false, 50}, {true, 100}}, true, true,
                          Interp::kStep);
  auto b = TBoolSeq::Make({{true, 0}, {true, 100}}, true, true, Interp::kStep);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto both = TAnd(*a, *b);
  ASSERT_TRUE(both.has_value());
  EXPECT_TRUE(*both->ValueAt(10));
  EXPECT_FALSE(*both->ValueAt(60));
  auto either = TOr(*a, *b);
  ASSERT_TRUE(either.has_value());
  EXPECT_TRUE(*either->ValueAt(60));
  const TBoolSeq neg = TNot(*a);
  EXPECT_FALSE(*neg.ValueAt(10));
  EXPECT_TRUE(*neg.ValueAt(60));
}

TEST(BoolOps, WhenTrueStepSemantics) {
  auto tb = TBoolSeq::Make({{true, 0}, {false, 50}, {true, 100}}, true, true,
                           Interp::kStep);
  ASSERT_TRUE(tb.ok());
  const PeriodSet when = WhenTrue(*tb);
  // True on [0, 50) plus the final inclusive instant [100, 100].
  ASSERT_EQ(when.size(), 2u);
  EXPECT_EQ(when.periods()[0].lower(), 0);
  EXPECT_EQ(when.periods()[0].upper(), 50);
  EXPECT_FALSE(when.periods()[0].upper_inc());
  EXPECT_EQ(when.periods()[1].lower(), 100);
  EXPECT_EQ(when.periods()[1].upper(), 100);
}

TEST(BoolOps, EverAlwaysTrue) {
  auto all_true =
      TBoolSeq::Make({{true, 0}, {true, 10}}, true, true, Interp::kStep);
  ASSERT_TRUE(all_true.ok());
  EXPECT_TRUE(EverTrue(*all_true));
  EXPECT_TRUE(AlwaysTrue(*all_true));
  auto mixed = TBoolSeq::Make({{false, 0}, {true, 10}}, true, /*ui=*/false,
                              Interp::kStep);
  ASSERT_TRUE(mixed.ok());
  // Final true value is never attained (open upper bound).
  EXPECT_FALSE(EverTrue(*mixed));
}

TEST(Cmp, BetweenSequences) {
  const TFloatSeq a = FSeq({{0.0, 0}, {10.0, 100}});
  const TFloatSeq b = FSeq({{5.0, 0}, {5.0, 100}});
  auto tb = Cmp(a, CmpOp::kGt, b);
  ASSERT_TRUE(tb.has_value());
  const PeriodSet when = WhenTrue(*tb);
  ASSERT_EQ(when.size(), 1u);
  EXPECT_EQ(when.periods()[0].lower(), 50);
}

// Property: WhenCmp(kGe, c) and WhenCmp(kLt, c) partition the period.
class CmpPartition : public ::testing::TestWithParam<double> {};

TEST_P(CmpPartition, GeAndLtPartitionTime) {
  const double c = GetParam();
  const TFloatSeq seq =
      FSeq({{3.0, 0}, {-1.0, 40}, {6.0, 90}, {2.0, 130}});
  const Duration above = WhenCmp(seq, CmpOp::kGe, c).TotalDuration();
  const Duration below = WhenCmp(seq, CmpOp::kLt, c).TotalDuration();
  // Allow 1 microsecond of rounding per crossing (up to 3 crossings).
  EXPECT_NEAR(static_cast<double>(above + below),
              static_cast<double>(seq.DurationMicros()), 3.0)
      << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CmpPartition,
                         ::testing::Values(-2.0, -1.0, 0.0, 0.5, 1.5, 2.0,
                                           3.0, 4.5, 5.999, 6.0, 7.0));

}  // namespace
}  // namespace nebulameos::meos

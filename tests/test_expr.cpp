// Tests for the expression framework (src/nebula/expr) — the engine's
// plugin mechanism.

#include <gtest/gtest.h>

#include "nebula/expr.hpp"

namespace nebulameos::nebula {
namespace {

Schema TestSchema() {
  return Schema::Build()
      .AddInt64("id")
      .AddDouble("speed")
      .AddBool("alert")
      .AddText16("name")
      .AddTimestamp("ts")
      .Finish();
}

// One-record buffer for evaluation.
class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : buffer_(TestSchema(), 1) {
    RecordWriter w = buffer_.Append();
    w.SetInt64(0, 7);
    w.SetDouble(1, 27.5);
    w.SetBool(2, true);
    w.SetText(3, "ic-3");
    w.SetInt64(4, 1'000'000);
  }

  Value Eval(const ExprPtr& e) {
    Status s = e->Bind(buffer_.schema());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return e->Eval(buffer_.At(0));
  }

  TupleBuffer buffer_;
};

TEST_F(ExprTest, AttributeReadsTypedFields) {
  EXPECT_EQ(ValueAsInt64(Eval(Attribute("id"))), 7);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Attribute("speed"))), 27.5);
  EXPECT_TRUE(ValueAsBool(Eval(Attribute("alert"))));
  EXPECT_EQ(ValueToString(Eval(Attribute("name"))), "ic-3");
  EXPECT_EQ(ValueAsInt64(Eval(Attribute("ts"))), 1'000'000);
}

TEST_F(ExprTest, AttributeBindFailsOnUnknownField) {
  ExprPtr e = Attribute("missing");
  EXPECT_FALSE(e->Bind(buffer_.schema()).ok());
}

TEST_F(ExprTest, Literals) {
  EXPECT_EQ(ValueAsInt64(Eval(Lit(5))), 5);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Lit(2.5))), 2.5);
  EXPECT_TRUE(ValueAsBool(Eval(Lit(true))));
  EXPECT_EQ(ValueToString(Eval(Lit(std::string("zone")))), "zone");
  EXPECT_TRUE(Lit(1.5)->ConstantValue().has_value());
  EXPECT_FALSE(Attribute("id")->ConstantValue().has_value());
}

TEST_F(ExprTest, ArithmeticIntAndDouble) {
  EXPECT_EQ(ValueAsInt64(Eval(Add(Lit(2), Lit(3)))), 5);
  EXPECT_EQ(Eval(Add(Lit(2), Lit(3))).index(), 1u);  // stays int64
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Add(Lit(2), Lit(0.5)))), 2.5);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Sub(Attribute("speed"), Lit(7.5)))),
                   20.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Mul(Attribute("speed"), Lit(2.0)))),
                   55.0);
  // Division always yields double.
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Div(Lit(5), Lit(2)))), 2.5);
}

TEST_F(ExprTest, DivisionByZeroYieldsZero) {
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Div(Lit(5.0), Lit(0.0)))), 0.0);
  EXPECT_EQ(ValueAsInt64(Eval(Arith(ArithOp::kMod, Lit(5), Lit(0)))), 0);
}

TEST_F(ExprTest, Modulo) {
  EXPECT_EQ(ValueAsInt64(Eval(Arith(ArithOp::kMod, Lit(7), Lit(3)))), 1);
}

TEST_F(ExprTest, NumericComparisons) {
  EXPECT_TRUE(ValueAsBool(Eval(Gt(Attribute("speed"), Lit(20.0)))));
  EXPECT_FALSE(ValueAsBool(Eval(Lt(Attribute("speed"), Lit(20.0)))));
  EXPECT_TRUE(ValueAsBool(Eval(Ge(Attribute("speed"), Lit(27.5)))));
  EXPECT_TRUE(ValueAsBool(Eval(Le(Attribute("id"), Lit(7)))));
  EXPECT_TRUE(ValueAsBool(Eval(Eq(Attribute("id"), Lit(7)))));
  EXPECT_TRUE(ValueAsBool(Eval(Ne(Attribute("id"), Lit(8)))));
  // Mixed int/double comparison widens.
  EXPECT_TRUE(ValueAsBool(Eval(Eq(Attribute("id"), Lit(7.0)))));
}

TEST_F(ExprTest, TextComparison) {
  EXPECT_TRUE(
      ValueAsBool(Eval(Eq(Attribute("name"), Lit(std::string("ic-3"))))));
  EXPECT_TRUE(
      ValueAsBool(Eval(Ne(Attribute("name"), Lit(std::string("ic-4"))))));
  EXPECT_TRUE(
      ValueAsBool(Eval(Lt(Attribute("name"), Lit(std::string("zz"))))));
}

TEST_F(ExprTest, LogicalOps) {
  EXPECT_TRUE(ValueAsBool(Eval(And(Attribute("alert"), Lit(true)))));
  EXPECT_FALSE(ValueAsBool(Eval(And(Attribute("alert"), Lit(false)))));
  EXPECT_TRUE(ValueAsBool(Eval(Or(Lit(false), Attribute("alert")))));
  EXPECT_FALSE(ValueAsBool(Eval(Not(Attribute("alert")))));
}

TEST_F(ExprTest, ToStringShapes) {
  EXPECT_EQ(Gt(Attribute("speed"), Lit(20.0))->ToString(), "(speed > 20)");
  EXPECT_EQ(Not(Attribute("alert"))->ToString(), "NOT alert");
  EXPECT_EQ(And(Lit(true), Lit(false))->ToString(), "(true AND false)");
}

TEST_F(ExprTest, OutputTypes) {
  EXPECT_EQ(Gt(Attribute("speed"), Lit(1.0))->output_type(), DataType::kBool);
  auto add = Add(Lit(1), Lit(2));
  ASSERT_TRUE(add->Bind(buffer_.schema()).ok());
  EXPECT_EQ(add->output_type(), DataType::kInt64);
  auto div = Div(Lit(1), Lit(2));
  ASSERT_TRUE(div->Bind(buffer_.schema()).ok());
  EXPECT_EQ(div->output_type(), DataType::kDouble);
}

TEST_F(ExprTest, BuiltinFunctions) {
  RegisterBuiltinFunctions();
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Fn("abs", {Lit(-3.5)}))), 3.5);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Fn("sqrt", {Lit(16.0)}))), 4.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Fn("least", {Lit(3.0), Lit(5.0)}))),
                   3.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Eval(Fn("greatest", {Lit(3.0), Lit(5.0)}))),
                   5.0);
  EXPECT_DOUBLE_EQ(
      ValueAsDouble(Eval(Fn("clamp", {Lit(9.0), Lit(0.0), Lit(5.0)}))), 5.0);
}

TEST_F(ExprTest, RegistryLifecycle) {
  RegisterBuiltinFunctions();
  auto& reg = ExpressionRegistry::Global();
  EXPECT_TRUE(reg.Contains("abs"));
  EXPECT_FALSE(reg.Contains("no_such_fn"));
  EXPECT_FALSE(reg.Create("no_such_fn", {}).ok());
  // Duplicate registration is rejected.
  EXPECT_EQ(reg.Register("abs", [](std::vector<ExprPtr>) -> Result<ExprPtr> {
                 return Status::Internal("never");
               })
                .code(),
            StatusCode::kAlreadyExists);
  // Wrong arity surfaces from the factory.
  EXPECT_FALSE(reg.Create("abs", {Lit(1.0), Lit(2.0)}).ok());
  const auto names = reg.RegisteredNames();
  EXPECT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(ExprTest, LambdaFunctions) {
  Status st = RegisterLambdaFunction(
      "double_it_test", 1, DataType::kDouble,
      [](const std::vector<Value>& args) -> Value {
        return ValueAsDouble(args[0]) * 2.0;
      });
  // May already exist when tests re-run in-process; both fine.
  EXPECT_TRUE(st.ok() || st.code() == StatusCode::kAlreadyExists);
  EXPECT_DOUBLE_EQ(
      ValueAsDouble(Eval(Fn("double_it_test", {Attribute("speed")}))), 55.0);
}

TEST_F(ExprTest, FunctionComposesWithNativeNodes) {
  RegisterBuiltinFunctions();
  // abs(speed - 30) < 3  -> |27.5 - 30| = 2.5 < 3.
  ExprPtr e =
      Lt(Fn("abs", {Sub(Attribute("speed"), Lit(30.0))}), Lit(3.0));
  EXPECT_TRUE(ValueAsBool(Eval(e)));
}

// --- Common-subexpression elimination ---------------------------------------

TEST_F(ExprTest, PlanCseLeavesUnsharedTreesAlone) {
  ExprPtr a = Gt(Attribute("speed"), Lit(10.0));
  ExprPtr b = Add(Attribute("id"), Lit(1));
  CsePlan plan = PlanCse({a, b});
  EXPECT_EQ(plan.num_shared, 0u);
  EXPECT_EQ(plan.cache, nullptr);
  ASSERT_EQ(plan.roots.size(), 2u);
  // Nothing shared: the exact input trees come back.
  EXPECT_EQ(plan.roots[0], a);
  EXPECT_EQ(plan.roots[1], b);
}

TEST_F(ExprTest, PlanCseNeverCachesBareFieldsOrLiterals) {
  // `speed` and `1.0` each occur twice, but caching a field read or a
  // literal costs more than re-reading it.
  CsePlan plan = PlanCse({Add(Attribute("speed"), Lit(1.0)),
                          Sub(Attribute("speed"), Lit(1.0))});
  EXPECT_EQ(plan.num_shared, 0u);
  EXPECT_EQ(plan.cache, nullptr);
}

TEST_F(ExprTest, PlanCseSharesRepeatedSubtreeAndStaysEquivalent) {
  // (speed*3.6 > 80) && (speed*3.6 < 120): speed*3.6 computes once.
  auto kmh = [] { return Mul(Attribute("speed"), Lit(3.6)); };
  ExprPtr original = And(Gt(kmh(), Lit(80.0)), Lt(kmh(), Lit(98.0)));
  CsePlan plan = PlanCse({original});
  EXPECT_EQ(plan.num_shared, 1u);
  ASSERT_NE(plan.cache, nullptr);
  ASSERT_EQ(plan.roots.size(), 1u);
  ExprPtr rewritten = plan.roots[0];
  ASSERT_TRUE(rewritten->Bind(buffer_.schema()).ok());
  ASSERT_TRUE(original->Bind(buffer_.schema()).ok());
  // 27.5 * 3.6 = 99 -> first conjunct true, second false.
  plan.cache->BeginRecord();
  EXPECT_EQ(ValueAsBool(rewritten->Eval(buffer_.At(0))),
            ValueAsBool(original->Eval(buffer_.At(0))));
  EXPECT_FALSE(ValueAsBool(rewritten->Eval(buffer_.At(0))));
}

TEST_F(ExprTest, PlanCseEvaluatesSharedFunctionOncePerRecord) {
  auto calls = std::make_shared<int>(0);
  Status st = RegisterLambdaFunction(
      "cse_probe_test", 1, DataType::kDouble,
      [calls](const std::vector<Value>& args) {
        ++*calls;
        return Value(ValueAsDouble(args[0]) * 2.0);
      });
  ASSERT_TRUE(st.ok() || st.code() == StatusCode::kAlreadyExists);
  auto probe = [] { return Fn("cse_probe_test", {Attribute("speed")}); };
  // The function subtree repeats three times across two roots.
  ExprPtr root0 = Add(probe(), probe());
  ExprPtr root1 = Sub(probe(), Lit(5.0));
  CsePlan plan = PlanCse({root0, root1});
  EXPECT_EQ(plan.num_shared, 1u);
  ASSERT_NE(plan.cache, nullptr);
  for (const ExprPtr& root : plan.roots) {
    ASSERT_TRUE(root->Bind(buffer_.schema()).ok());
  }
  *calls = 0;
  for (int record = 0; record < 3; ++record) {
    plan.cache->BeginRecord();
    EXPECT_DOUBLE_EQ(ValueAsDouble(plan.roots[0]->Eval(buffer_.At(0))), 110.0);
    EXPECT_DOUBLE_EQ(ValueAsDouble(plan.roots[1]->Eval(buffer_.At(0))), 50.0);
  }
  // Three records, one evaluation each — not three per record.
  EXPECT_EQ(*calls, 3);
}

TEST_F(ExprTest, PlanCseKeepsShortCircuitLazy) {
  auto calls = std::make_shared<int>(0);
  Status st = RegisterLambdaFunction(
      "cse_lazy_test", 1, DataType::kBool,
      [calls](const std::vector<Value>& args) {
        ++*calls;
        return Value(ValueAsDouble(args[0]) > 0.0);
      });
  ASSERT_TRUE(st.ok() || st.code() == StatusCode::kAlreadyExists);
  auto probe = [] { return Fn("cse_lazy_test", {Attribute("speed")}); };
  // Both occurrences sit in And-arms never reached: speed > 1000 is
  // false, so the cached wrapper must not evaluate at all.
  ExprPtr guard = Gt(Attribute("speed"), Lit(1000.0));
  ExprPtr root = Or(And(guard, probe()), And(guard, probe()));
  CsePlan plan = PlanCse({root});
  EXPECT_GE(plan.num_shared, 1u);
  ASSERT_TRUE(plan.roots[0]->Bind(buffer_.schema()).ok());
  *calls = 0;
  plan.cache->BeginRecord();
  EXPECT_FALSE(ValueAsBool(plan.roots[0]->Eval(buffer_.At(0))));
  EXPECT_EQ(*calls, 0);
}

TEST_F(ExprTest, PlanCseNeverDescendsIntoFunctionArguments) {
  RegisterBuiltinFunctions();
  // `speed + 1.0` repeats, but only *inside* abs() calls — rebuilding the
  // enclosing function node is impossible, so nothing may be cached
  // there. The abs() subtree itself repeats at rebuildable positions and
  // is fair game.
  ExprPtr inner_only = And(Gt(Fn("abs", {Add(Attribute("speed"), Lit(1.0))}),
                              Lit(0.0)),
                           Lt(Fn("abs", {Add(Attribute("speed"), Lit(1.0))}),
                              Lit(100.0)));
  CsePlan plan = PlanCse({inner_only});
  EXPECT_EQ(plan.num_shared, 1u);  // the whole abs(...) subtree, nothing inside
  ASSERT_TRUE(plan.roots[0]->Bind(buffer_.schema()).ok());
  plan.cache->BeginRecord();
  EXPECT_TRUE(ValueAsBool(plan.roots[0]->Eval(buffer_.At(0))));
}

TEST_F(ExprTest, ValueConversions) {
  EXPECT_DOUBLE_EQ(ValueAsDouble(Value(true)), 1.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Value(int64_t{3})), 3.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(Value(std::string("x"))), 0.0);
  EXPECT_TRUE(ValueAsBool(Value(int64_t{1})));
  EXPECT_FALSE(ValueAsBool(Value(0.0)));
  EXPECT_TRUE(ValueAsBool(Value(std::string("x"))));
  EXPECT_FALSE(ValueAsBool(Value(std::string(""))));
  EXPECT_EQ(ValueAsInt64(Value(2.9)), 2);
  EXPECT_EQ(ValueToString(Value(true)), "true");
  EXPECT_EQ(ValueToString(Value(int64_t{5})), "5");
}

}  // namespace
}  // namespace nebulameos::nebula

// Tier-2 tests of the compiled-kernel execution layer: expression kernels
// matching the interpreter bit-for-bit, CompilePlan fusing Filter→Map→
// Project runs into one BatchKernelOperator, zero-copy selection-vector
// flow (fully-selective passthrough, shared-buffer fan-out, pool
// accounting), interpreter fallback for non-compilable expressions, and
// the placed/unplaced × compiled/interpreted equivalence regression on
// the shared-ingest fan-out.

#include <gtest/gtest.h>

#include <atomic>

#include "nebula/engine.hpp"
#include "nebula/exec/kernels.hpp"
#include "queries/queries.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .AddBool("flag")
      .AddText16("label")
      .Finish();
}

std::shared_ptr<TupleBuffer> MakeBuffer(int n) {
  auto buf = std::make_shared<TupleBuffer>(EventSchema(), n);
  for (int i = 0; i < n; ++i) {
    RecordWriter w = buf->Append();
    w.SetInt64(0, i - n / 2);  // negatives included
    w.SetInt64(1, Seconds(i));
    w.SetDouble(2, (i % 7) * 1.5 - 3.0);
    w.SetBool(3, i % 3 == 0);
    w.SetText(4, i % 2 == 0 ? "even" : "odd");
  }
  return buf;
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 5}), Value(Seconds(i)),
                    Value(static_cast<double>(i)), Value(i % 2 == 0),
                    Value(std::string(i % 2 == 0 ? "even" : "odd"))});
  }
  return rows;
}

SourcePtr MakeSource(int n) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
}

// --- Kernel vs interpreter equivalence --------------------------------------

TEST(CompiledExpr, KernelsMatchInterpreterExactly) {
  RegisterBuiltinFunctions();
  const Schema schema = EventSchema();
  auto buf = MakeBuffer(64);
  const std::vector<ExprPtr> exprs = {
      Add(Attribute("key"), Lit(3)),                          // int64 + int64
      Arith(ArithOp::kMod, Attribute("key"), Lit(3)),         // int mod
      Arith(ArithOp::kMod, Attribute("key"), Lit(0)),         // mod by zero
      Div(Attribute("key"), Lit(2)),                          // int div → double
      Div(Attribute("value"), Lit(0.0)),                      // div by zero
      Mul(Sub(Attribute("value"), Lit(1.5)), Attribute("value")),
      Add(Attribute("key"), Attribute("value")),              // int widens
      Lt(Attribute("value"), Lit(2.0)),
      Ge(Attribute("key"), Lit(0)),
      Eq(Attribute("flag"), Lit(true)),                       // bool compare
      And(Gt(Attribute("value"), Lit(-1.0)), Not(Attribute("flag"))),
      Or(Attribute("flag"), Ne(Attribute("key"), Lit(0))),
      Fn("clamp", {Attribute("value"), Lit(-1.0), Lit(2.5)}),
      Fn("abs", {Attribute("key")}),
  };
  for (const ExprPtr& expr : exprs) {
    ASSERT_TRUE(expr->Bind(schema).ok()) << expr->ToString();
    exec::KernelPtr kernel = expr->CompileKernel(schema);
    ASSERT_NE(kernel, nullptr) << expr->ToString();
    const exec::RowSpan span = exec::SpanOf(*buf, nullptr);
    std::vector<double> out(buf->size());
    kernel->EvalAsDouble(span, out.data());
    for (size_t i = 0; i < buf->size(); ++i) {
      const double interpreted = ValueAsDouble(expr->Eval(buf->At(i)));
      EXPECT_EQ(out[i], interpreted)
          << expr->ToString() << " at row " << i;
    }
  }
}

TEST(CompiledExpr, KernelsHonorSelectionVectors) {
  const Schema schema = EventSchema();
  auto buf = MakeBuffer(32);
  ExprPtr expr = Mul(Attribute("value"), Lit(2.0));
  ASSERT_TRUE(expr->Bind(schema).ok());
  exec::KernelPtr kernel = expr->CompileKernel(schema);
  ASSERT_NE(kernel, nullptr);
  const exec::SelectionVector sel = {1, 5, 9, 30};
  const exec::RowSpan span = exec::SpanOf(*buf, &sel);
  std::vector<double> out(sel.size());
  kernel->EvalAsDouble(span, out.data());
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(out[i], ValueAsDouble(expr->Eval(buf->At(sel[i]))));
  }
}

TEST(CompiledExpr, TextExpressionsRefuseToCompile) {
  const Schema schema = EventSchema();
  ExprPtr text_eq = Eq(Attribute("label"), Lit(std::string("even")));
  ASSERT_TRUE(text_eq->Bind(schema).ok());
  EXPECT_EQ(text_eq->CompileKernel(schema), nullptr);
  // A numeric comparison over a text field widens through the interpreter
  // only: the field leaf refuses.
  ExprPtr mixed = Gt(Attribute("label"), Lit(1.0));
  ASSERT_TRUE(mixed->Bind(schema).ok());
  EXPECT_EQ(mixed->CompileKernel(schema), nullptr);
  // And a lambda-registered function without a scalar hook refuses.
  ASSERT_TRUE(RegisterLambdaFunction(
                  "test_boxed_identity", 1, DataType::kDouble,
                  [](const std::vector<Value>& v) { return v[0]; })
                  .ok() ||
              ExpressionRegistry::Global().Contains("test_boxed_identity"));
  ExprPtr boxed = Fn("test_boxed_identity", {Attribute("value")});
  ASSERT_TRUE(boxed->Bind(schema).ok());
  EXPECT_EQ(boxed->CompileKernel(schema), nullptr);
}

// --- Fusion shape -----------------------------------------------------------

Result<LogicalPlan> MakeChainPlan(int n,
                                  std::shared_ptr<CollectSink>* sink) {
  *sink = std::make_shared<CollectSink>(Schema::Build()
                                            .AddInt64("key")
                                            .AddDouble("scaled")
                                            .Finish());
  return Query::From(MakeSource(n))
      .Filter(Ge(Attribute("value"), Lit(2.0)))
      .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
      .Project({"key", "scaled"})
      .To(*sink)
      .Build();
}

TEST(CompilePlanFusion, FilterMapProjectFuseIntoOneBatchPass) {
  std::shared_ptr<CollectSink> sink;
  auto plan = MakeChainPlan(10, &sink);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  CompileOptions compiled;
  auto fused = CompilePlan(plan->source()->schema(), *plan, nullptr, compiled);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(fused->operators.size(), 1u);
  EXPECT_EQ(fused->operators[0]->name(), "BatchKernels(Filter+Map+Project)");
  // Stats expand per fused stage under the original operator names, in
  // chain order — the contract the placement pass depends on.
  std::vector<std::pair<std::string, OperatorStats>> stats;
  fused->operators[0]->AppendStats("0/", &stats);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].first, "0/Filter");
  EXPECT_EQ(stats[1].first, "0/Map");
  EXPECT_EQ(stats[2].first, "0/Project");

  CompileOptions interpreted;
  interpreted.compiled_kernels = false;
  auto unfused =
      CompilePlan(plan->source()->schema(), *plan, nullptr, interpreted);
  ASSERT_TRUE(unfused.ok());
  ASSERT_EQ(unfused->operators.size(), 3u);
  // Both lowerings agree on the leaf schema.
  EXPECT_TRUE(fused->output_schema == unfused->output_schema);
}

TEST(CompilePlanFusion, NonCompilableNodeBreaksTheRunAndFallsBack) {
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto plan = Query::From(MakeSource(10))
                  .Filter(Ge(Attribute("value"), Lit(1.0)))
                  .Filter(Eq(Attribute("label"), Lit(std::string("even"))))
                  .Filter(Ge(Attribute("value"), Lit(2.0)))
                  .To(sink)
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(plan->source()->schema(), *plan);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  // compiled run | interpreted text filter | compiled run.
  ASSERT_EQ(pipe->operators.size(), 3u);
  EXPECT_EQ(pipe->operators[0]->name(), "BatchKernels(Filter)");
  EXPECT_EQ(pipe->operators[1]->name(), "Filter");
  EXPECT_EQ(pipe->operators[2]->name(), "BatchKernels(Filter)");
}

// --- Zero-copy batch flow ---------------------------------------------------

TEST(BatchKernels, FullySelectiveFilterPassesTheInputBufferThrough) {
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto plan = Query::From(MakeSource(16))
                  .Filter(Ge(Attribute("value"), Lit(-100.0)))  // all pass
                  .To(sink)
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(plan->source()->schema(), *plan);
  ASSERT_TRUE(pipe.ok());
  ASSERT_EQ(pipe->operators.size(), 1u);
  ExecutionContext ctx;
  ASSERT_TRUE(pipe->operators[0]->Open(&ctx).ok());
  auto input = MakeBuffer(16);
  input->Seal();
  exec::Batch captured;
  auto capture = [&captured](const exec::Batch& out) { captured = out; };
  ASSERT_TRUE(
      pipe->operators[0]->ProcessBatch(exec::Batch(input), capture).ok());
  // Same buffer object, full selection — zero copies, zero pool draws.
  EXPECT_EQ(captured.data.get(), input.get());
  EXPECT_TRUE(captured.IsFull());
  EXPECT_EQ(ctx.TotalBuffersAcquired(), 0u);
}

TEST(BatchKernels, PartialFilterSharesTheBufferWithASelection) {
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto plan = Query::From(MakeSource(16))
                  .Filter(Ge(Attribute("value"), Lit(1.5)))
                  .To(sink)
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(plan->source()->schema(), *plan);
  ASSERT_TRUE(pipe.ok());
  ExecutionContext ctx;
  ASSERT_TRUE(pipe->operators[0]->Open(&ctx).ok());
  auto input = MakeBuffer(16);
  input->Seal();
  exec::Batch captured;
  auto capture = [&captured](const exec::Batch& out) { captured = out; };
  ASSERT_TRUE(
      pipe->operators[0]->ProcessBatch(exec::Batch(input), capture).ok());
  ASSERT_NE(captured.data, nullptr);
  EXPECT_EQ(captured.data.get(), input.get());  // shared, not copied
  ASSERT_FALSE(captured.IsFull());
  // The selection names exactly the surviving rows.
  for (size_t i = 0; i < captured.NumRows(); ++i) {
    EXPECT_GE(captured.data->At(captured.RowAt(i)).GetDouble(2), 1.5);
  }
  size_t expected = 0;
  for (size_t i = 0; i < input->size(); ++i) {
    if (input->At(i).GetDouble(2) >= 1.5) ++expected;
  }
  EXPECT_EQ(captured.NumRows(), expected);
  EXPECT_EQ(ctx.TotalBuffersAcquired(), 0u);
}

TEST(EngineZeroCopy, FanOutBranchCountDoesNotMultiplyBufferDraws) {
  auto run = [](size_t branches) {
    SplitQuery split = Query::From(MakeSource(5000)).Split(branches);
    std::vector<std::shared_ptr<CountingSink>> sinks;
    for (size_t b = 0; b < branches; ++b) {
      sinks.push_back(std::make_shared<CountingSink>(EventSchema()));
      std::move(split[b])
          .Filter(Ge(Attribute("value"), Lit(10.0)))
          .To(sinks.back());
    }
    auto plan = std::move(split).Build();
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    NodeEngine engine;
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    auto stats = engine.Stats(*id);
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats->events_ingested, 5000u);
    return stats->buffers_acquired;
  };
  const uint64_t two = run(2);
  const uint64_t four = run(4);
  // Branch hand-offs share the sealed batch; only the source draws
  // buffers, so doubling the branches must not change the draw count.
  EXPECT_EQ(two, four);
  EXPECT_GT(two, 0u);
  // And the total is the source's own buffers, not branches × buffers.
  EXPECT_LE(two, 5000u / 1024 + 2);
}

// --- Result equivalence through the engine ----------------------------------

using RowMatrix = std::vector<std::vector<Value>>;

void ExpectRowsEqual(const RowMatrix& a, const RowMatrix& b,
                     const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what << " row " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_TRUE(a[i][j] == b[i][j]) << what << " row " << i << " col " << j;
    }
  }
}

TEST(EngineCompiled, CompiledAndInterpretedRowsAgree) {
  auto run = [](bool compiled) {
    EngineOptions options;
    options.compiled_kernels = compiled;
    NodeEngine engine(options);
    std::shared_ptr<CollectSink> sink;
    auto plan = MakeChainPlan(200, &sink);
    EXPECT_TRUE(plan.ok());
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return sink->Rows();
  };
  ExpectRowsEqual(run(true), run(false), "chain");
}

TEST(EngineCompiled, FallbackExpressionsKeepResultsIdentical) {
  // Text filter (interpreted) sandwiched between compilable stages.
  auto run = [](bool compiled) {
    EngineOptions options;
    options.compiled_kernels = compiled;
    NodeEngine engine(options);
    auto sink = std::make_shared<CollectSink>(EventSchema());
    auto plan = Query::From(MakeSource(100))
                    .Filter(Ge(Attribute("value"), Lit(5.0)))
                    .Filter(Eq(Attribute("label"), Lit(std::string("even"))))
                    .Filter(Arith(ArithOp::kMod, Attribute("key"), Lit(2)))
                    .To(sink)
                    .Build();
    EXPECT_TRUE(plan.ok());
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return sink->Rows();
  };
  const RowMatrix compiled = run(true);
  ExpectRowsEqual(compiled, run(false), "fallback");
  ASSERT_FALSE(compiled.empty());
}

TEST(EngineCompiled, EmptyFilterOutputStillFlushesWindows) {
  // A filter that drops everything feeds a window: no survivors, no
  // watermark-only buffers, and the run still terminates cleanly with
  // zero panes.
  auto run = [](bool compiled) {
    EngineOptions options;
    options.compiled_kernels = compiled;
    NodeEngine engine(options);
    auto sink = std::make_shared<CollectSink>(Schema::Build()
                                                  .AddInt64("key")
                                                  .AddTimestamp("window_start")
                                                  .AddTimestamp("window_end")
                                                  .AddInt64("n")
                                                  .Finish());
    auto plan = Query::From(MakeSource(100))
                    .Filter(Lt(Attribute("value"), Lit(-1.0)))  // drops all
                    .KeyBy("key")
                    .TumblingWindow(Seconds(10), "ts")
                    .Aggregate({AggregateSpec::Count("n")})
                    .To(sink)
                    .Build();
    EXPECT_TRUE(plan.ok());
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return sink->RowCount();
  };
  EXPECT_EQ(run(true), 0u);
  EXPECT_EQ(run(false), 0u);
}

// --- Shared-ingest regression: placed/unplaced × compiled/interpreted -------

struct SinkTotals {
  std::vector<uint64_t> events;
  std::vector<uint64_t> bytes;
};

Result<SinkTotals> RunSharedIngest(const queries::DemoEnvironment& env,
                                   bool compiled, bool placed,
                                   const Topology* topo) {
  queries::QueryOptions qopts;
  qopts.max_events = 4000;
  qopts.sink = queries::SinkMode::kCounting;
  NM_ASSIGN_OR_RETURN(queries::BuiltFanOutQuery built,
                      queries::BuildSharedIngestFanOut(env, qopts));
  if (placed) {
    AnnotateEdgePushdownPlacement(&built.plan, /*edge_node=*/2,
                                  /*cloud_node=*/1);
  }
  EngineOptions options;
  options.optimizer.enable = false;  // identical plan shape in all configs
  options.compiled_kernels = compiled;
  options.topology = placed ? topo : nullptr;
  NodeEngine engine(options);
  NM_ASSIGN_OR_RETURN(const int id, engine.Submit(std::move(built.plan)));
  NM_RETURN_NOT_OK(engine.RunToCompletion(id));
  NM_ASSIGN_OR_RETURN(QueryStats stats, engine.Stats(id));
  SinkTotals totals;
  for (const SinkStats& sink : stats.sink_stats) {
    totals.events.push_back(sink.events_emitted);
    totals.bytes.push_back(sink.bytes_emitted);
  }
  return totals;
}

TEST(SharedIngestRegression, PlacedAndCompiledVariantsEmitIdentically) {
  auto env = queries::DemoEnvironment::Create();
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  auto baseline = RunSharedIngest(**env, /*compiled=*/false,
                                  /*placed=*/false, &topo);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->events.size(), 2u);  // alerts + archive
  for (const bool compiled : {false, true}) {
    for (const bool placed : {false, true}) {
      if (!compiled && !placed) continue;
      auto run = RunSharedIngest(**env, compiled, placed, &topo);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run->events, baseline->events)
          << "compiled=" << compiled << " placed=" << placed;
      EXPECT_EQ(run->bytes, baseline->bytes)
          << "compiled=" << compiled << " placed=" << placed;
    }
  }
}

// --- Kernel-level common-subexpression elimination ---------------------

TEST(KernelCse, PlanKernelCseSharesRepeatedSubtreesWithoutChangingEval) {
  std::vector<ExprPtr> roots;
  roots.push_back(Ge(Mul(Attribute("value"), Lit(2.0)), Lit(4.0)));
  roots.push_back(Mul(Attribute("value"), Lit(2.0)));
  KernelCsePlan cse = PlanKernelCse(std::move(roots));
  EXPECT_EQ(cse.num_shared, 1u);
  ASSERT_NE(cse.cache, nullptr);
  ASSERT_EQ(cse.roots.size(), 2u);
  // Interpreted Eval of the wrapped trees delegates — bit-identical to
  // the original expressions on every record.
  const Schema schema = EventSchema();
  ExprPtr pred = Ge(Mul(Attribute("value"), Lit(2.0)), Lit(4.0));
  ExprPtr scale = Mul(Attribute("value"), Lit(2.0));
  for (const ExprPtr& e : {cse.roots[0], cse.roots[1], pred, scale}) {
    ASSERT_TRUE(e->Bind(schema).ok());
  }
  auto buf = MakeBuffer(16);
  for (size_t i = 0; i < buf->size(); ++i) {
    const RecordView rec = buf->At(i);
    EXPECT_EQ(cse.roots[0]->Eval(rec), pred->Eval(rec));
    EXPECT_EQ(cse.roots[1]->Eval(rec), scale->Eval(rec));
  }
}

TEST(KernelCse, TrivialOrUnsharedSubtreesAreNotCached) {
  // Bare field references repeat but never cache (a wrapper would cost
  // more than the read); distinct subtrees share nothing.
  std::vector<ExprPtr> roots;
  roots.push_back(Ge(Attribute("value"), Lit(1.0)));
  roots.push_back(Mul(Attribute("value"), Lit(3.0)));
  KernelCsePlan cse = PlanKernelCse(std::move(roots));
  EXPECT_EQ(cse.num_shared, 0u);
  EXPECT_EQ(cse.cache, nullptr);
}

TEST(KernelCse, FusedRunCarriesTheSharedCache) {
  const Schema out_schema = Schema::Build()
                                .AddInt64("key")
                                .AddTimestamp("ts")
                                .AddDouble("value")
                                .AddBool("flag")
                                .AddText16("label")
                                .AddDouble("scaled")
                                .Finish();
  auto sink = std::make_shared<CollectSink>(out_schema);
  auto plan = Query::From(MakeSource(10))
                  .Filter(Ge(Mul(Attribute("value"), Lit(2.0)), Lit(4.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .To(sink)
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto pipe = CompilePlan(plan->source()->schema(), *plan);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  ASSERT_EQ(pipe->operators.size(), 1u);
  auto* fused = dynamic_cast<exec::BatchKernelOperator*>(
      pipe->operators[0].get());
  ASSERT_NE(fused, nullptr);
  EXPECT_NE(fused->cse_cache(), nullptr);

  // A run with nothing repeated attaches no cache.
  auto sink2 = std::make_shared<CountingSink>(EventSchema());
  auto plan2 = Query::From(MakeSource(10))
                   .Filter(Ge(Attribute("value"), Lit(1.0)))
                   .To(sink2)
                   .Build();
  ASSERT_TRUE(plan2.ok());
  auto pipe2 = CompilePlan(plan2->source()->schema(), *plan2);
  ASSERT_TRUE(pipe2.ok());
  ASSERT_EQ(pipe2->operators.size(), 1u);
  auto* unshared = dynamic_cast<exec::BatchKernelOperator*>(
      pipe2->operators[0].get());
  ASSERT_NE(unshared, nullptr);
  EXPECT_EQ(unshared->cse_cache(), nullptr);
}

// A registered scalar function that counts its evaluations — the probe
// proving the shared subtree runs once per row, not once per stage.
std::atomic<uint64_t>& ProbeCalls() {
  static std::atomic<uint64_t> calls{0};
  return calls;
}

class CseProbeFn final : public FunctionExpression {
 public:
  explicit CseProbeFn(std::vector<ExprPtr> args)
      : FunctionExpression("test.cse_probe", std::move(args),
                           DataType::kDouble) {}

 protected:
  Value EvalFn(const std::vector<Value>& args) const override {
    ProbeCalls().fetch_add(1);
    return Value(std::get<double>(args[0]) * 3.0);
  }
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override {
    ProbeCalls().fetch_add(1);
    return args[0] * 3.0;
  }
};

TEST(KernelCse, SharedFunctionEvaluatesOncePerRowInCompiledRun) {
  static const bool registered = [] {
    return ExpressionRegistry::Global()
        .Register("test.cse_probe",
                  [](std::vector<ExprPtr> args) -> Result<ExprPtr> {
                    return ExprPtr(
                        std::make_shared<CseProbeFn>(std::move(args)));
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);

  const int n = 64;
  const Schema out_schema = Schema::Build()
                                .AddInt64("key")
                                .AddTimestamp("ts")
                                .AddDouble("value")
                                .AddBool("flag")
                                .AddText16("label")
                                .AddDouble("tripled")
                                .Finish();
  auto run = [&](bool compiled) {
    auto sink = std::make_shared<CollectSink>(out_schema);
    auto plan =
        Query::From(MakeSource(n))
            .Filter(Ge(Fn("test.cse_probe", {Attribute("value")}), Lit(6.0)))
            .Map("tripled", Fn("test.cse_probe", {Attribute("value")}))
            .To(sink)
            .Build();
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    EngineOptions options;
    options.worker_threads = 1;
    options.compiled_kernels = compiled;
    NodeEngine engine(options);
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.Start(*id).ok());
    EXPECT_TRUE(engine.Wait(*id).ok());
    auto rows = sink->Rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  ProbeCalls().store(0);
  const auto compiled_rows = run(/*compiled=*/true);
  // The filter predicate and the map spec share one probe subtree: the
  // compiled run computes it once per ingested row, never once per stage.
  EXPECT_EQ(ProbeCalls().load(), static_cast<uint64_t>(n));

  // And sharing does not change results: the interpreted run agrees.
  const auto interpreted_rows = run(/*compiled=*/false);
  EXPECT_EQ(compiled_rows, interpreted_rows);
  for (const auto& row : compiled_rows) {
    EXPECT_EQ(std::get<double>(row[5]), std::get<double>(row[2]) * 3.0);
    EXPECT_GE(std::get<double>(row[5]), 6.0);
  }
}

}  // namespace
}  // namespace nebulameos::nebula

// Tests for the temporal lookup join (src/nebula/join) and the Q4 join
// variant over the weather-observation stream.

#include <gtest/gtest.h>

#include "nebula/engine.hpp"
#include "nebula/topology.hpp"
#include "sncb/records.hpp"

namespace nebulameos::nebula {
namespace {

Schema LeftSchema() {
  return Schema::Build()
      .AddInt64("cell")
      .AddTimestamp("ts")
      .AddDouble("reading")
      .Finish();
}

Schema RightSchema() {
  return Schema::Build()
      .AddInt64("cell")
      .AddTimestamp("ts")
      .AddInt64("condition")
      .AddDouble("intensity")
      .Finish();
}

std::shared_ptr<Source> MakeRight(
    std::vector<std::tuple<int64_t, Timestamp, int64_t, double>> rows) {
  std::vector<std::vector<Value>> data;
  for (const auto& [cell, ts, cond, intensity] : rows) {
    data.push_back({Value(cell), Value(ts), Value(cond), Value(intensity)});
  }
  return std::make_shared<MemorySource>(RightSchema(), std::move(data), 1,
                                        "ts");
}

TemporalLookupJoinOptions Options(std::shared_ptr<Source> right,
                                  Duration max_age = Minutes(30)) {
  TemporalLookupJoinOptions options;
  options.lookup = std::move(right);
  options.left_key = "cell";
  options.right_key = "cell";
  options.left_time = "ts";
  options.right_time = "ts";
  options.max_age = max_age;
  return options;
}

class JoinHarness {
 public:
  explicit JoinHarness(TemporalLookupJoinOptions options) {
    auto op = TemporalLookupJoinOperator::Make(LeftSchema(),
                                               std::move(options));
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    op_ = std::move(*op);
    EXPECT_TRUE(op_->Open(&ctx_).ok());
  }

  void Feed(std::initializer_list<std::tuple<int64_t, Timestamp, double>> rows) {
    auto buf = std::make_shared<TupleBuffer>(LeftSchema(), rows.size());
    for (const auto& [cell, ts, reading] : rows) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, cell);
      w.SetInt64(1, ts);
      w.SetDouble(2, reading);
    }
    EXPECT_TRUE(op_->Process(buf, [this](const TupleBufferPtr& out) {
                  for (size_t i = 0; i < out->size(); ++i) {
                    const RecordView rec = out->At(i);
                    std::vector<Value> row;
                    for (size_t f = 0; f < out->schema().num_fields(); ++f) {
                      if (out->schema().field(f).type == DataType::kDouble) {
                        row.emplace_back(rec.GetDouble(f));
                      } else {
                        row.emplace_back(rec.GetInt64(f));
                      }
                    }
                    rows_.push_back(std::move(row));
                  }
                }).ok());
  }

  TemporalLookupJoinOperator* op() {
    return static_cast<TemporalLookupJoinOperator*>(op_.get());
  }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

 private:
  ExecutionContext ctx_;
  OperatorPtr op_;
  std::vector<std::vector<Value>> rows_;
};

TEST(TemporalLookupJoin, Validation) {
  auto right = MakeRight({});
  TemporalLookupJoinOptions options = Options(right);
  options.lookup = nullptr;
  EXPECT_FALSE(TemporalLookupJoinOperator::Make(LeftSchema(), options).ok());
  options = Options(right);
  options.max_age = 0;
  EXPECT_FALSE(TemporalLookupJoinOperator::Make(LeftSchema(), options).ok());
  options = Options(right);
  options.left_key = "missing";
  EXPECT_FALSE(TemporalLookupJoinOperator::Make(LeftSchema(), options).ok());
  options = Options(right);
  options.right_key = "intensity";  // not INT64
  EXPECT_FALSE(TemporalLookupJoinOperator::Make(LeftSchema(), options).ok());
}

TEST(TemporalLookupJoin, OutputSchemaExcludesRightKeyAndTime) {
  auto op = TemporalLookupJoinOperator::Make(LeftSchema(),
                                             Options(MakeRight({})));
  ASSERT_TRUE(op.ok());
  const Schema& out = (*op)->output_schema();
  ASSERT_EQ(out.num_fields(), 5u);  // cell, ts, reading + condition, intensity
  EXPECT_TRUE(out.HasField("condition"));
  EXPECT_TRUE(out.HasField("intensity"));
}

TEST(TemporalLookupJoin, CollidingRightNamesArePrefixed) {
  // Right side carries a "reading" column too.
  Schema right_schema = Schema::Build()
                            .AddInt64("cell")
                            .AddTimestamp("ts")
                            .AddDouble("reading")
                            .Finish();
  auto right = std::make_shared<MemorySource>(
      right_schema, std::vector<std::vector<Value>>{}, 1, "ts");
  auto op =
      TemporalLookupJoinOperator::Make(LeftSchema(), Options(right));
  ASSERT_TRUE(op.ok());
  EXPECT_TRUE((*op)->output_schema().HasField("r_reading"));
}

TEST(TemporalLookupJoin, JoinsNearestObservation) {
  JoinHarness h(Options(MakeRight({{7, Minutes(0), 1, 0.2},
                                   {7, Minutes(60), 2, 0.8},
                                   {9, Minutes(0), 3, 0.5}})));
  EXPECT_EQ(h.op()->lookup_size(), 3u);
  h.Feed({{7, Minutes(10), 1.0},    // nearest: t=0 (cond 1)
          {7, Minutes(50), 2.0},    // nearest: t=60 (cond 2)
          {9, Minutes(20), 3.0}});  // nearest: t=0 (cond 3)
  ASSERT_EQ(h.rows().size(), 3u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][3]), 1);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][4]), 0.2);
  EXPECT_EQ(ValueAsInt64(h.rows()[1][3]), 2);
  EXPECT_EQ(ValueAsInt64(h.rows()[2][3]), 3);
  EXPECT_EQ(h.op()->unmatched(), 0u);
}

TEST(TemporalLookupJoin, MaxAgeDropsStaleMatches) {
  JoinHarness h(Options(MakeRight({{7, Minutes(0), 1, 0.2}}),
                        /*max_age=*/Minutes(15)));
  h.Feed({{7, Minutes(10), 1.0},    // within 15 min: joined
          {7, Minutes(30), 2.0},    // 30 min gap: dropped
          {8, Minutes(5), 3.0}});   // unknown key: dropped
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][2]), 1.0);
  EXPECT_EQ(h.op()->unmatched(), 2u);
}

TEST(TemporalLookupJoin, LeftFieldsSurviveVerbatim) {
  JoinHarness h(Options(MakeRight({{7, Minutes(0), 1, 0.25}})));
  h.Feed({{7, Minutes(1), 42.5}});
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][0]), 7);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][1]), Minutes(1));
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][2]), 42.5);
}

TEST(TemporalLookupJoin, ThroughQueryApi) {
  // Left stream via MemorySource, joined and filtered inside a full query.
  std::vector<std::vector<Value>> left_rows;
  for (int i = 0; i < 100; ++i) {
    left_rows.push_back({Value(int64_t{i % 2}), Value(Minutes(i)),
                         Value(static_cast<double>(i))});
  }
  auto left = std::make_unique<MemorySource>(LeftSchema(),
                                             std::move(left_rows), 1, "ts");
  std::vector<std::tuple<int64_t, Timestamp, int64_t, double>> right_rows;
  for (int m = 0; m < 100; m += 10) {
    right_rows.emplace_back(0, Minutes(m), m / 10, 0.5);
    right_rows.emplace_back(1, Minutes(m), m / 10 + 100, 0.5);
  }
  auto plan = Query::From(std::move(left))
                  .JoinLookup(Options(MakeRight(right_rows)))
                  .Filter(Ge(Attribute("condition"), Lit(100)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto sink = std::make_shared<CollectSink>(*out);
  plan->SetSink(sink);
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  // Only cell-1 rows pass the condition filter: 50 of 100.
  EXPECT_EQ(sink->RowCount(), 50u);
}

TEST(TemporalLookupJoin, WeatherStreamJoinsFleet) {
  // The canned weather stream joins every fleet position (full coverage).
  const Timestamp start = MakeTimestamp(2023, 6, 1, 8, 0, 0);
  auto weather = std::shared_ptr<Source>(
      sncb::MakeWeatherObservationStream(42, start, Hours(2)));
  TemporalLookupJoinOptions options;
  options.lookup = weather;
  options.left_key = "cell";
  options.right_key = "cell";
  options.left_time = "ts";
  options.right_time = "ts";
  options.max_age = Hours(1);
  // Left: positions mapped to weather cells.
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({Value(int64_t{i % 6}), Value(start + Minutes(i)),
                    Value(0.0)});
  }
  auto left =
      std::make_unique<MemorySource>(LeftSchema(), std::move(rows), 1, "ts");
  auto plan = Query::From(std::move(left)).JoinLookup(options).Build();
  ASSERT_TRUE(plan.ok());
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok());
  auto sink = std::make_shared<CountingSink>(*out);
  plan->SetSink(sink);
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 60u);  // every position matched an observation
}

TEST(Topology, OptimizeCutPlacementPicksSmallestFlow) {
  // Chain: Filter (10 MB -> 100 KB), Map (100 KB -> 200 KB), Sink.
  OperatorStats filter;
  filter.bytes_out = 100'000;
  OperatorStats map;
  map.bytes_out = 200'000;
  OperatorStats sink;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"Filter", filter}, {"Map", map}, {"CountingSink", sink}};
  uint64_t uplink = 0;
  const Placement p =
      OptimizeCutPlacement(chain, 10'000'000, /*edge=*/2, /*cloud=*/1, &uplink);
  // Best cut: after the filter (100 KB crosses).
  EXPECT_EQ(uplink, 100'000u);
  EXPECT_EQ(p.NodeOf(-1), 2);
  EXPECT_EQ(p.NodeOf(0), 2);   // filter on the edge
  EXPECT_EQ(p.NodeOf(1), 1);   // map in the cloud
  EXPECT_EQ(p.NodeOf(2), 1);   // sink in the cloud
}

TEST(Topology, OptimizeCutKeepsSourceOnlyWhenNothingHelps) {
  // An expansive chain (every operator grows the stream).
  OperatorStats grow;
  grow.bytes_out = 50'000'000;
  std::vector<std::pair<std::string, OperatorStats>> chain = {
      {"Map", grow}, {"CountingSink", OperatorStats{}}};
  uint64_t uplink = 0;
  const Placement p =
      OptimizeCutPlacement(chain, 10'000'000, 2, 1, &uplink);
  EXPECT_EQ(uplink, 10'000'000u);  // ship raw: cheaper than after the map
  EXPECT_EQ(p.NodeOf(0), 1);
}

}  // namespace
}  // namespace nebulameos::nebula

// End-to-end tests of the paper's eight demonstration queries
// (src/queries) over the simulated SNCB fleet.

#include <gtest/gtest.h>

#include "queries/queries.hpp"

namespace nebulameos::queries {
namespace {

using nebula::NodeEngine;
using nebula::Value;
using nebula::ValueAsBool;
using nebula::ValueAsDouble;
using nebula::ValueAsInt64;

class QueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto env = DemoEnvironment::Create();
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    env_ = env->get();
    shared_env_ = *env;
  }

  // Runs a built query to completion and returns the collected rows.
  std::vector<std::vector<Value>> Run(Result<BuiltQuery> built) {
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return built->collect ? built->collect->Rows()
                          : std::vector<std::vector<Value>>{};
  }

  QueryOptions SmallRun(uint64_t events = 120'000) {
    QueryOptions options;
    options.max_events = events;
    options.sink = SinkMode::kCollect;
    return options;
  }

  static DemoEnvironment* env_;
  static std::shared_ptr<DemoEnvironment> shared_env_;
};

DemoEnvironment* QueriesTest::env_ = nullptr;
std::shared_ptr<DemoEnvironment> QueriesTest::shared_env_;

TEST_F(QueriesTest, EnvironmentRegistersEverything) {
  EXPECT_TRUE(integration::MeosPluginRegistered());
  EXPECT_TRUE(
      nebula::ExpressionRegistry::Global().Contains("weather_speed_limit"));
  EXPECT_GE(env_->geofences()->NumZones(), 20u);
}

TEST_F(QueriesTest, Q1SuppressesAlertsInMaintenanceZones) {
  const auto rows = Run(BuildQ1AlertFiltering(*env_, SmallRun()));
  // Alerts exist and none of them lies inside a maintenance zone.
  EXPECT_FALSE(rows.empty());
  for (const auto& row : rows) {
    const integration::Point p{ValueAsDouble(row[2]), ValueAsDouble(row[3])};
    EXPECT_FALSE(env_->geofences()->InAnyZone(
        p, integration::ZoneKind::kMaintenance));
    // Only alert-typed events survive.
    const std::string type = std::get<std::string>(row[5]);
    EXPECT_NE(type, "normal");
  }
}

TEST_F(QueriesTest, Q2AggregatesNoiseInsideNoiseZones) {
  const auto rows = Run(BuildQ2NoiseMonitoring(*env_, SmallRun(200'000)));
  EXPECT_FALSE(rows.empty());
  for (const auto& row : rows) {
    // zone, window_start, window_end, avg, max, count
    const int64_t zone = ValueAsInt64(row[0]);
    const auto* z = env_->geofences()->FindZone(zone);
    ASSERT_NE(z, nullptr);
    EXPECT_EQ(z->kind, integration::ZoneKind::kNoiseSensitive);
    EXPECT_LE(ValueAsDouble(row[3]), ValueAsDouble(row[4]));  // avg <= max
    EXPECT_GT(ValueAsInt64(row[5]), 0);
    EXPECT_EQ(ValueAsInt64(row[2]) - ValueAsInt64(row[1]), Seconds(30));
  }
}

TEST_F(QueriesTest, Q3FlagsOnlyOverLimitEvents) {
  const auto rows = Run(BuildQ3DynamicSpeedLimit(*env_, SmallRun()));
  for (const auto& row : rows) {
    // train_id, ts, lon, lat, speed_kmh, limit_kmh
    EXPECT_GT(ValueAsDouble(row[4]), ValueAsDouble(row[5]));
  }
}

TEST_F(QueriesTest, Q4WeatherLimitNeverExceedsZoneLimit) {
  const auto rows = Run(BuildQ4WeatherSpeedZones(*env_, SmallRun()));
  for (const auto& row : rows) {
    // ..., speed_kmh, limit_kmh, weather_condition, weather_intensity
    EXPECT_GT(ValueAsDouble(row[4]), ValueAsDouble(row[5]));
    const int64_t cond = ValueAsInt64(row[6]);
    EXPECT_GE(cond, 0);
    EXPECT_LE(cond, 4);
  }
}

TEST_F(QueriesTest, Q4JoinVariantMatchesEmbeddedWeatherSemantics) {
  // The join variant computes the same advisory from a separate weather
  // stream. Same zones, same provider, same limit function — every
  // advisory must still satisfy the over-limit + degraded-weather
  // invariants, and the volume must be in the same ballpark as Q4.
  const auto embedded = Run(BuildQ4WeatherSpeedZones(*env_, SmallRun()));
  const auto joined = Run(BuildQ4WeatherJoin(*env_, SmallRun()));
  EXPECT_FALSE(joined.empty());
  for (const auto& row : joined) {
    EXPECT_GT(ValueAsDouble(row[4]), ValueAsDouble(row[5]));
    const int64_t cond = ValueAsInt64(row[6]);
    EXPECT_GE(cond, 1);  // degraded weather only (never clear)
    EXPECT_LE(cond, 4);
  }
  // The joined stream samples weather every 15 min instead of continuously,
  // so counts differ but not wildly.
  EXPECT_GT(joined.size() * 4, embedded.size() / 4);
}

TEST_F(QueriesTest, Q5FlagsOnlyDegradedBatteryTrain) {
  QueryOptions options = SmallRun(600'000);
  const auto rows = Run(BuildQ5BatteryMonitoring(*env_, options));
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    // train_id, window_start, window_end, avg_dev, max_dev, max_temp,
    // lon, lat, samples, workshop_id, workshop_dist_m
    EXPECT_EQ(ValueAsInt64(row[0]), options.fleet.degraded_battery_train);
    EXPECT_GT(ValueAsDouble(row[3]), 0.35);
    EXPECT_GE(ValueAsInt64(row[9]), 0);           // workshop found
    EXPECT_GT(ValueAsDouble(row[10]), 0.0);       // at some distance
    EXPECT_GE(ValueAsInt64(row[2]), ValueAsInt64(row[1]) + Seconds(30));
  }
}

TEST_F(QueriesTest, Q6DetectsRushHourOverload) {
  // 6 trains x 250 ms tick: ~2.6 hours of simulated time for 220k events;
  // starting at 08:00 the morning rush (07-09) boards heavily.
  const auto rows = Run(BuildQ6HeavyLoad(*env_, SmallRun(220'000)));
  EXPECT_FALSE(rows.empty());
  for (const auto& row : rows) {
    // train, window_start, window_end, avg_pax, max_pax, seats, temp, n
    EXPECT_GT(ValueAsDouble(row[3]), ValueAsDouble(row[5]));  // avg > seats
    EXPECT_GE(ValueAsDouble(row[4]), ValueAsDouble(row[3]));  // max >= avg
  }
}

TEST_F(QueriesTest, Q7FindsUnscheduledStopsOutsideZones) {
  // Raise the stop probability so a 400k-event run reliably contains stops.
  QueryOptions options = SmallRun(400'000);
  options.fleet.unscheduled_stop_prob = 4e-4;
  const auto rows = Run(BuildQ7UnscheduledStops(*env_, options));
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    // train, match_start, match_end, stop_events, stop_lon, stop_lat
    EXPECT_GE(ValueAsInt64(row[3]), 120);
    const integration::Point p{ValueAsDouble(row[4]), ValueAsDouble(row[5])};
    EXPECT_FALSE(
        env_->geofences()->InAnyZone(p, integration::ZoneKind::kStation));
    EXPECT_FALSE(
        env_->geofences()->InAnyZone(p, integration::ZoneKind::kWorkshop));
  }
}

TEST_F(QueriesTest, Q8DetectsRepeatedEmergencyBraking) {
  const auto rows = Run(BuildQ8BrakeMonitoring(*env_, SmallRun(600'000)));
  ASSERT_FALSE(rows.empty());
  QueryOptions options;
  int64_t degraded_matches = 0;
  for (const auto& row : rows) {
    // train, match_start, match_end, first_min_bar, second_min_bar, ...
    EXPECT_LE(ValueAsDouble(row[3]), 2.2);
    EXPECT_LE(ValueAsDouble(row[4]), 2.2);
    EXPECT_LE(ValueAsInt64(row[2]) - ValueAsInt64(row[1]), Minutes(15));
    if (ValueAsInt64(row[0]) == options.fleet.degraded_brake_train) {
      ++degraded_matches;
    }
  }
  // The degraded-brake train dominates the matches.
  EXPECT_GT(degraded_matches * 2, static_cast<int64_t>(rows.size()));
}

TEST_F(QueriesTest, BuildQueryDispatchAndNames) {
  EXPECT_FALSE(BuildQuery(0, *env_, SmallRun()).ok());
  EXPECT_FALSE(BuildQuery(9, *env_, SmallRun()).ok());
  for (int q = 1; q <= 8; ++q) {
    auto built = BuildQuery(q, *env_, SmallRun(1000));
    EXPECT_TRUE(built.ok()) << "Q" << q << ": " << built.status().ToString();
    EXPECT_NE(std::string(QueryName(q)), "unknown");
  }
  EXPECT_EQ(std::string(QueryName(42)), "unknown");
}

TEST_F(QueriesTest, PaperThroughputTable) {
  EXPECT_DOUBLE_EQ(PaperReportedThroughput(1).megabytes_per_s, 2.24);
  EXPECT_DOUBLE_EQ(PaperReportedThroughput(5).kilo_events_per_s, 8.0);
  EXPECT_DOUBLE_EQ(PaperReportedThroughput(6).megabytes_per_s, 3.68);
  EXPECT_DOUBLE_EQ(PaperReportedThroughput(7).megabytes_per_s, 0.40);
  EXPECT_DOUBLE_EQ(PaperReportedThroughput(8).kilo_events_per_s, 20.0);
}

TEST_F(QueriesTest, PacedSourceHoldsOfferedLoad) {
  QueryOptions options;
  options.max_events = 5'000;
  options.sink = SinkMode::kCounting;
  options.pace_events_per_second = 20'000.0;  // the paper's Q1 rate
  auto built = BuildQ1AlertFiltering(*env_, options);
  ASSERT_TRUE(built.ok());
  nebula::NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_ingested, 5'000u);
  // 5000 events at 20k e/s take ~0.25 s: the paced rate must be close to
  // the target, never above it by more than scheduling jitter.
  EXPECT_GT(stats->EventsPerSecond(), 20'000.0 * 0.7);
  EXPECT_LT(stats->EventsPerSecond(), 20'000.0 * 1.3);
}

TEST_F(QueriesTest, CountingSinkModeWorks) {
  QueryOptions options;
  options.max_events = 50'000;
  options.sink = SinkMode::kCounting;
  auto built = BuildQ1AlertFiltering(*env_, options);
  ASSERT_TRUE(built.ok());
  ASSERT_NE(built->counting, nullptr);
  EXPECT_EQ(built->collect, nullptr);
  NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_ingested, 50'000u);
  EXPECT_EQ(stats->bytes_ingested, 50'000u * 112u);
}

// The multi-sink acceptance scenario: ONE plan whose shared SNCB ingest
// prefix fans out to a geofence-alert sink and a windowed-aggregate
// archival sink. Per-operator stats prove the prefix executed once, the
// Explain rendering shows the DAG, and the optimizer does not change the
// sink contents.
TEST_F(QueriesTest, SharedIngestFanOutServesAlertsAndArchiveFromOneStream) {
  const uint64_t kEvents = 120'000;
  auto run = [&](bool optimize) {
    QueryOptions options;
    options.max_events = kEvents;
    options.sink = SinkMode::kCollect;
    auto built = BuildSharedIngestFanOut(*env_, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    nebula::EngineOptions engine_options;
    engine_options.optimizer.enable = optimize;
    NodeEngine engine(engine_options);
    auto id = engine.Submit(std::move(built->plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (optimize) {
      // The DAG rendering: annotated shared prefix, one subtree per branch.
      auto text = engine.Explain(*id);
      EXPECT_TRUE(text.ok());
      EXPECT_NE(text->logical.find("[shared]"), std::string::npos)
          << text->logical;
      EXPECT_NE(text->logical.find("FanOut(2 branches)"), std::string::npos);
      EXPECT_NE(text->logical.find("[branch 0]"), std::string::npos);
      EXPECT_NE(text->logical.find("[branch 1]"), std::string::npos);
    }
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    auto stats = engine.Stats(*id);
    EXPECT_TRUE(stats.ok());
    // The shared prefix executed once: ingested events equal ONE stream's
    // worth, and the shared Map saw each event exactly once.
    EXPECT_EQ(stats->events_ingested, kEvents);
    bool found_shared_map = false;
    for (const auto& [name, op] : stats->operator_stats) {
      if (name == "Map") {
        found_shared_map = true;
        EXPECT_EQ(op.events_in, kEvents);
      }
    }
    EXPECT_TRUE(found_shared_map);
    // Both branch sinks fed from that one ingest, keyed by DAG path.
    EXPECT_EQ(stats->sink_stats.size(), 2u);
    EXPECT_EQ(built->collects.size(), 2u);
    return std::make_pair(built->collects[0]->Rows(),
                          built->collects[1]->Rows());
  };
  const auto [opt_alerts, opt_archive] = run(true);
  const auto [raw_alerts, raw_archive] = run(false);
  // The alert branch behaves like Q1 (alerts outside maintenance zones),
  // the archive branch like Q2 (noise stats in noise-sensitive zones).
  EXPECT_FALSE(opt_alerts.empty());
  EXPECT_FALSE(opt_archive.empty());
  for (const auto& row : opt_alerts) {
    EXPECT_NE(std::get<std::string>(row[5]), "normal");
  }
  // Optimizer on/off produce identical sink contents. Variant equality
  // compares text cells (event_type) for real.
  ASSERT_EQ(opt_alerts.size(), raw_alerts.size());
  ASSERT_EQ(opt_archive.size(), raw_archive.size());
  for (size_t i = 0; i < opt_alerts.size(); ++i) {
    ASSERT_EQ(opt_alerts[i].size(), raw_alerts[i].size());
    for (size_t j = 0; j < opt_alerts[i].size(); ++j) {
      EXPECT_TRUE(opt_alerts[i][j] == raw_alerts[i][j])
          << "alert row " << i << " col " << j;
    }
  }
  for (size_t i = 0; i < opt_archive.size(); ++i) {
    ASSERT_EQ(opt_archive[i].size(), raw_archive[i].size());
    for (size_t j = 0; j < opt_archive[i].size(); ++j) {
      EXPECT_TRUE(opt_archive[i][j] == raw_archive[i][j])
          << "archive row " << i << " col " << j;
    }
  }
}

}  // namespace
}  // namespace nebulameos::queries

// Tier-2 tests of the placement pass and its network-channel lowering:
// per-branch cuts on fan-out plans, prefix cuts when every branch would
// ship more than the raw stream, placement on/off result equivalence
// through real channel execution, and measured channel byte counters
// matching the legacy post-hoc SimulateDeployment pricing on a linear
// chain.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
constexpr int kCloud = 1;  // cloud worker

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr MakeSource(int n) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
}

// The canonical two-branch plan: shared selective filter, branch 0 keeps
// high values narrowed to two fields, branch 1 aggregates per key.
Result<LogicalPlan> MakeFanOutPlan(int n,
                                   std::shared_ptr<CollectSink>* high_sink,
                                   std::shared_ptr<CollectSink>* agg_sink) {
  *high_sink = std::make_shared<CollectSink>(
      Schema::Build().AddInt64("key").AddDouble("value").Finish());
  *agg_sink = std::make_shared<CollectSink>(Schema::Build()
                                                .AddInt64("key")
                                                .AddTimestamp("window_start")
                                                .AddTimestamp("window_end")
                                                .AddInt64("n")
                                                .Finish());
  SplitQuery split = Query::From(MakeSource(n))
                         .Filter(Ge(Attribute("value"), Lit(2.0)))
                         .Split(2);
  std::move(split[0])
      .Filter(Ge(Attribute("value"), Lit(6.0)))
      .Project({"key", "value"})
      .To(*high_sink);
  std::move(split[1])
      .KeyBy("key")
      .TumblingWindow(Seconds(100), "ts")
      .Aggregate({AggregateSpec::Count("n")})
      .To(*agg_sink);
  return std::move(split).Build();
}

// Runs `plan` to completion on a fresh engine (optimizer off so the
// compiled shape matches the logical plan 1:1) and returns its stats.
Result<QueryStats> MeasureRun(LogicalPlan plan,
                              const Topology* topology = nullptr) {
  EngineOptions options;
  options.optimizer.enable = false;
  options.topology = topology;
  NodeEngine engine(options);
  NM_ASSIGN_OR_RETURN(const int id, engine.Submit(std::move(plan)));
  NM_RETURN_NOT_OK(engine.RunToCompletion(id));
  return engine.Stats(id);
}

TEST(PlacementPass, PerBranchCutsOnFanOutPlan) {
  // Measure a run of the plan shape first.
  std::shared_ptr<CollectSink> high, agg;
  auto measured_plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(measured_plan.ok()) << measured_plan.status().ToString();
  auto stats = MeasureRun(std::move(*measured_plan));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  PlacementPassOptions options;
  options.topology = &topo;
  options.edge_node = kEdge;
  options.cloud_node = kCloud;
  options.measured = stats->operator_stats;
  options.source_bytes = stats->bytes_ingested;

  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  RewritePassPtr pass = MakePlacementPass(std::move(options));
  bool changed = false;
  ASSERT_TRUE(pass->Apply(&*plan, &changed).ok());
  EXPECT_TRUE(changed);

  // Both branches ship less than the shared prefix's output, so the
  // prefix and every branch operator stay on the edge; only sinks move.
  EXPECT_EQ(plan->source_placement(), kEdge);
  const auto& ops = plan->ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0]->placement(), kEdge);  // shared filter
  EXPECT_EQ(ops[1]->placement(), kEdge);  // fan-out node
  const auto& fan = static_cast<const FanOutNode&>(*ops[1]);
  const auto& alerts = fan.branches()[0];
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(alerts[0]->placement(), kEdge);   // Filter(value >= 6)
  EXPECT_EQ(alerts[1]->placement(), kEdge);   // Project
  EXPECT_EQ(alerts[2]->placement(), kCloud);  // Sink
  const auto& archive = fan.branches()[1];
  ASSERT_EQ(archive.size(), 3u);
  EXPECT_EQ(archive[0]->placement(), kEdge);   // KeyBy marker
  EXPECT_EQ(archive[1]->placement(), kEdge);   // WindowAgg
  EXPECT_EQ(archive[2]->placement(), kCloud);  // Sink
  // Explain renders the annotations.
  EXPECT_NE(plan->Explain().find("@node2"), std::string::npos);
  // A second application is a fixpoint no-op.
  changed = false;
  ASSERT_TRUE(pass->Apply(&*plan, &changed).ok());
  EXPECT_FALSE(changed);
}

TEST(PlacementPass, PrefixCutWhenEveryBranchExpands) {
  // Both branches immediately widen every record, so each branch's best
  // cut is its own entry — shipping the prefix output once (one prefix
  // cut) beats shipping it once per branch.
  auto build = [](std::shared_ptr<CollectSink>* s0,
                  std::shared_ptr<CollectSink>* s1) {
    const Schema wide = Schema::Build()
                            .AddInt64("key")
                            .AddTimestamp("ts")
                            .AddDouble("value")
                            .AddDouble("scaled")
                            .Finish();
    *s0 = std::make_shared<CollectSink>(wide);
    *s1 = std::make_shared<CollectSink>(wide);
    SplitQuery split = Query::From(MakeSource(10))
                           .Filter(Ge(Attribute("value"), Lit(2.0)))
                           .Split(2);
    std::move(split[0])
        .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
        .To(*s0);
    std::move(split[1])
        .Map("scaled", Mul(Attribute("value"), Lit(3.0)))
        .To(*s1);
    return std::move(split).Build();
  };
  std::shared_ptr<CollectSink> s0, s1;
  auto measured_plan = build(&s0, &s1);
  ASSERT_TRUE(measured_plan.ok());
  auto stats = MeasureRun(std::move(*measured_plan));
  ASSERT_TRUE(stats.ok());

  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  PlacementPassOptions options;
  options.topology = &topo;
  options.edge_node = kEdge;
  options.cloud_node = kCloud;
  options.measured = stats->operator_stats;
  options.source_bytes = stats->bytes_ingested;

  auto plan = build(&s0, &s1);
  ASSERT_TRUE(plan.ok());
  RewritePassPtr pass = MakePlacementPass(std::move(options));
  bool changed = false;
  ASSERT_TRUE(pass->Apply(&*plan, &changed).ok());
  EXPECT_TRUE(changed);
  // Cut after the shared filter: fan-out and both branches in the cloud.
  const auto& ops = plan->ops();
  EXPECT_EQ(ops[0]->placement(), kEdge);   // shared filter
  EXPECT_EQ(ops[1]->placement(), kCloud);  // fan-out
  const auto& fan = static_cast<const FanOutNode&>(*ops[1]);
  for (const auto& branch : fan.branches()) {
    for (const auto& op : branch) {
      EXPECT_EQ(op->placement(), kCloud);
    }
  }
  // Idempotence holds on this path too, even though the solver first
  // tries per-branch cuts before the prefix cut overwrites them.
  changed = false;
  ASSERT_TRUE(pass->Apply(&*plan, &changed).ok());
  EXPECT_FALSE(changed);
}

TEST(Placement, SubmitDoesNotRewritePlacedPlans) {
  // Two adjacent filters would normally fuse; on a placed plan the
  // rewriter must not run — placement annotations are tied to the exact
  // plan shape they were computed for.
  auto sink = std::make_shared<CountingSink>(EventSchema());
  auto plan = Query::From(MakeSource(10))
                  .Filter(Ge(Attribute("value"), Lit(2.0)))
                  .Filter(Ge(Attribute("value"), Lit(4.0)))
                  .To(sink)
                  .Build();
  ASSERT_TRUE(plan.ok());
  AnnotateEdgePushdownPlacement(&*plan, kEdge, kCloud);
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  EngineOptions options;  // optimizer ON (the default)
  options.topology = &topo;
  NodeEngine engine(options);
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  auto text = engine.Explain(*id);
  ASSERT_TRUE(text.ok());
  // Both filters survive, still carrying their placement annotations.
  const std::string& optimized = text->optimized;
  size_t first = optimized.find("Filter(");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(optimized.find("Filter(", first + 1), std::string::npos);
  EXPECT_NE(optimized.find("@node2"), std::string::npos);
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(sink->events(), 6u);  // values 4..9
}

TEST(PlacementPass, RejectsMismatchedMeasurements) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  PlacementPassOptions options;
  options.topology = &topo;
  options.edge_node = kEdge;
  options.cloud_node = kCloud;
  options.source_bytes = 240;  // no measured operator entries at all
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  bool changed = false;
  const Status st =
      MakePlacementPass(std::move(options))->Apply(&*plan, &changed);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Placement, PlacedAndUnplacedRunsAgree) {
  // Reference: the fan-out plan without any placement.
  std::shared_ptr<CollectSink> high_ref, agg_ref;
  auto ref_plan = MakeFanOutPlan(40, &high_ref, &agg_ref);
  ASSERT_TRUE(ref_plan.ok());
  ASSERT_TRUE(MeasureRun(std::move(*ref_plan)).ok());

  // Placed: full edge pushdown, executed over real network channels.
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  std::shared_ptr<CollectSink> high, agg;
  auto placed_plan = MakeFanOutPlan(40, &high, &agg);
  ASSERT_TRUE(placed_plan.ok());
  AnnotateEdgePushdownPlacement(&*placed_plan, kEdge, kCloud);
  ASSERT_TRUE(MeasureRun(std::move(*placed_plan), &topo).ok());

  // Every row of every sink must match: the channels serialized,
  // shipped and reconstructed the exact same records (watermarks
  // included — the window aggregate fires identically). Compared as row
  // sets: partitioned execution (worker_threads > 1) interleaves per-key
  // window emissions in no specified order.
  auto sorted = [](std::vector<std::vector<Value>> rows) {
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(sorted(high->Rows()), sorted(high_ref->Rows()));
  EXPECT_EQ(sorted(agg->Rows()), sorted(agg_ref->Rows()));
  EXPECT_FALSE(agg->Rows().empty());
}

TEST(Placement, ChannelCountersMatchLegacyPricingOnLinearChain) {
  auto build = [](std::shared_ptr<CollectSink>* sink) {
    auto plan = Query::From(MakeSource(100))
                    .Filter(Ge(Attribute("value"), Lit(2.0)))
                    .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                    .Build();
    if (!plan.ok()) return plan;
    auto schema = plan->OutputSchema();
    if (!schema.ok()) return Result<LogicalPlan>(schema.status());
    *sink = std::make_shared<CollectSink>(*schema);
    plan->SetSink(*sink);
    return plan;
  };
  std::shared_ptr<CollectSink> sink;
  auto measured_plan = build(&sink);
  ASSERT_TRUE(measured_plan.ok()) << measured_plan.status().ToString();
  auto stats = MeasureRun(std::move(*measured_plan));
  ASSERT_TRUE(stats.ok());

  // Legacy post-hoc pricing of the cut after the filter.
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(50));
  Placement cut_after_filter;
  cut_after_filter.node_of[-1] = kEdge;
  cut_after_filter.node_of[0] = kEdge;   // Filter
  cut_after_filter.node_of[1] = kCloud;  // Map
  cut_after_filter.node_of[2] = kCloud;  // Sink
  auto priced = SimulateDeployment(topo, stats->operator_stats,
                                   stats->bytes_ingested, cut_after_filter);
  ASSERT_TRUE(priced.ok()) << priced.status().ToString();

  // Executed deployment of the same cut, measured from channel traffic.
  auto placed_plan = build(&sink);
  ASSERT_TRUE(placed_plan.ok());
  placed_plan->set_source_placement(kEdge);
  placed_plan->mutable_ops()[0]->set_placement(kEdge);
  placed_plan->mutable_ops()[1]->set_placement(kCloud);
  placed_plan->mutable_ops()[2]->set_placement(kCloud);
  EngineOptions engine_options;
  engine_options.optimizer.enable = false;
  engine_options.topology = &topo;
  NodeEngine engine(engine_options);
  auto id = engine.Submit(std::move(*placed_plan));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  auto measured = engine.Deployment(*id);
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();

  if (std::getenv("NM_FAULT_PROFILE") != nullptr) {
    // Under an injected fault profile (the CHECK_FAULTS=1 gate) the
    // channel re-ships duplicated and retransmitted frames, so measured
    // traffic can only meet or exceed the fault-free pricing.
    EXPECT_GE(measured->uplink_bytes, priced->uplink_bytes);
    for (const auto& [edge, bytes] : priced->link_bytes) {
      auto it = measured->link_bytes.find(edge);
      ASSERT_NE(it, measured->link_bytes.end());
      EXPECT_GE(it->second, bytes);
    }
    ASSERT_GT(measured->frames, 0u);
    EXPECT_GE(measured->wire_bytes,
              measured->uplink_bytes +
                  measured->frames * kWireFrameHeaderBytes);
    return;
  }
  // Channel payload byte counters reproduce the legacy pricing exactly.
  EXPECT_EQ(measured->link_bytes, priced->link_bytes);
  EXPECT_EQ(measured->uplink_bytes, priced->uplink_bytes);
  EXPECT_GT(measured->uplink_bytes, 0u);
  // The wire adds exactly one frame header per shipped frame.
  ASSERT_GT(measured->frames, 0u);
  EXPECT_EQ(measured->wire_bytes,
            measured->uplink_bytes + measured->frames * kWireFrameHeaderBytes);
}

TEST(Placement, UnplacedQueryReportsNoTraffic) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  auto report = engine.Deployment(*id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->uplink_bytes, 0u);
  EXPECT_EQ(report->frames, 0u);
  EXPECT_TRUE(report->link_bytes.empty());
}

}  // namespace
}  // namespace nebulameos::nebula

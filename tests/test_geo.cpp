// Tests for the geometry kernel (src/meos/geo).

#include <gtest/gtest.h>

#include "meos/geo.hpp"

namespace nebulameos::meos {
namespace {

TEST(GeoBox, EmptyAndExtend) {
  GeoBox box = GeoBox::Empty();
  EXPECT_TRUE(box.IsEmpty());
  box.Extend({1.0, 2.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({1.0, 2.0}));
  box.Extend({-1.0, 4.0});
  EXPECT_TRUE(box.Contains({0.0, 3.0}));
  EXPECT_FALSE(box.Contains({2.0, 3.0}));
}

TEST(GeoBox, OverlapsAndExpanded) {
  GeoBox a{0, 0, 2, 2};
  GeoBox b{3, 3, 4, 4};
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_TRUE(a.Expanded(1.0).Overlaps(b));
  GeoBox c{1, 1, 3, 3};
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(a));
}

TEST(GeoBox, TouchingBoxesOverlap) {
  GeoBox a{0, 0, 1, 1};
  GeoBox b{1, 0, 2, 1};
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(Polygon, RejectsDegenerate) {
  EXPECT_FALSE(Polygon::Make({{0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(Polygon::Make({{0, 0}, {0, 0}, {0, 0}, {0, 0}}).ok());
}

TEST(Polygon, AcceptsClosedRing) {
  auto poly = Polygon::Make({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}});
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->size(), 4u);  // closing vertex dropped
}

TEST(Polygon, ContainsInteriorExteriorBoundary) {
  auto poly = Polygon::Make({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  ASSERT_TRUE(poly.ok());
  EXPECT_TRUE(poly->Contains({2, 2}));
  EXPECT_FALSE(poly->Contains({5, 2}));
  EXPECT_FALSE(poly->Contains({-1, -1}));
  // Boundary points count as inside.
  EXPECT_TRUE(poly->Contains({0, 2}));
  EXPECT_TRUE(poly->Contains({2, 0}));
  EXPECT_TRUE(poly->Contains({0, 0}));
}

TEST(Polygon, NonConvexContains) {
  // L-shape.
  auto poly =
      Polygon::Make({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  ASSERT_TRUE(poly.ok());
  EXPECT_TRUE(poly->Contains({1, 3}));
  EXPECT_TRUE(poly->Contains({3, 1}));
  EXPECT_FALSE(poly->Contains({3, 3}));  // the notch
}

TEST(Polygon, SignedAreaOrientation) {
  auto ccw = Polygon::Make({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  auto cw = Polygon::Make({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  ASSERT_TRUE(ccw.ok());
  ASSERT_TRUE(cw.ok());
  EXPECT_DOUBLE_EQ(ccw->SignedArea(), 4.0);
  EXPECT_DOUBLE_EQ(cw->SignedArea(), -4.0);
}

TEST(Distance, Cartesian345) {
  EXPECT_DOUBLE_EQ(CartesianDistance({0, 0}, {3, 4}), 5.0);
}

TEST(Distance, HaversineKnownPairs) {
  // Brussels to Antwerp: ~41.5 km.
  const Point brussels{4.3517, 50.8466};
  const Point antwerp{4.4025, 51.2194};
  const double d = HaversineMeters(brussels, antwerp);
  EXPECT_NEAR(d, 41600.0, 600.0);
  // Zero distance.
  EXPECT_DOUBLE_EQ(HaversineMeters(brussels, brussels), 0.0);
}

TEST(Distance, HaversineSymmetry) {
  const Point a{4.0, 50.0};
  const Point b{5.0, 51.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(Distance, OneDegreeLatitude) {
  // ~111.2 km per degree of latitude.
  const double d = HaversineMeters({4.0, 50.0}, {4.0, 51.0});
  EXPECT_NEAR(d, 111195.0, 150.0);
}

TEST(LocalProjection, RoundTrips) {
  const Point origin{4.35, 50.85};
  const LocalProjection proj(origin, Metric::kWgs84);
  const Point p{4.40, 50.90};
  const Point back = proj.Unproject(proj.Project(p));
  EXPECT_NEAR(back.x, p.x, 1e-12);
  EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(LocalProjection, ApproximatesHaversineLocally) {
  const Point origin{4.35, 50.85};
  const LocalProjection proj(origin, Metric::kWgs84);
  const Point p{4.39, 50.87};
  const Point q = proj.Project(p);
  const double planar = std::sqrt(q.x * q.x + q.y * q.y);
  const double exact = HaversineMeters(origin, p);
  EXPECT_NEAR(planar / exact, 1.0, 0.001);
}

TEST(PointSegment, CartesianCases) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 3}, s, Metric::kCartesian), 3.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({-3, 4}, s, Metric::kCartesian), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({12, 0}, s, Metric::kCartesian), 2.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 0}, s, Metric::kCartesian), 0.0);
}

TEST(PointSegment, ClosestFraction) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(ClosestPointFraction({5, 3}, s, Metric::kCartesian), 0.5);
  EXPECT_DOUBLE_EQ(ClosestPointFraction({-5, 0}, s, Metric::kCartesian), 0.0);
  EXPECT_DOUBLE_EQ(ClosestPointFraction({15, 0}, s, Metric::kCartesian), 1.0);
}

TEST(PointSegment, DegenerateSegment) {
  const Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 6}, s, Metric::kCartesian), 5.0);
}

TEST(SegmentIntersection, CrossingSegments) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  auto hit = SegmentIntersection(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->first, 0.5, 1e-12);
  EXPECT_NEAR(hit->second, 0.5, 1e-12);
}

TEST(SegmentIntersection, NonCrossing) {
  EXPECT_FALSE(
      SegmentIntersection({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
  EXPECT_FALSE(
      SegmentIntersection({{0, 0}, {1, 1}}, {{2, 0}, {3, 1}}).has_value());
}

TEST(SegmentIntersection, EndpointTouch) {
  auto hit = SegmentIntersection({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->first, 1.0, 1e-9);
  EXPECT_NEAR(hit->second, 0.0, 1e-9);
}

TEST(SegmentSegment, DistanceParallel) {
  const Segment a{{0, 0}, {10, 0}};
  const Segment b{{0, 3}, {10, 3}};
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance(a, b, Metric::kCartesian), 3.0);
}

TEST(SegmentSegment, ZeroWhenCrossing) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance(a, b, Metric::kCartesian), 0.0);
}

TEST(PointPolygon, DistanceInsideIsZero) {
  auto poly = Polygon::Make({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  ASSERT_TRUE(poly.ok());
  EXPECT_DOUBLE_EQ(PointPolygonDistance({2, 2}, *poly, Metric::kCartesian),
                   0.0);
  EXPECT_DOUBLE_EQ(PointPolygonDistance({6, 2}, *poly, Metric::kCartesian),
                   2.0);
}

TEST(PointCircle, Distance) {
  const Circle c{{0, 0}, 2.0};
  EXPECT_DOUBLE_EQ(PointCircleDistance({1, 0}, c, Metric::kCartesian), 0.0);
  EXPECT_DOUBLE_EQ(PointCircleDistance({5, 0}, c, Metric::kCartesian), 3.0);
}

TEST(Wkt, PointRoundTrip) {
  const Point p{4.3517, 50.8466};
  auto parsed = PointFromWkt(PointToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->x, p.x);
  EXPECT_DOUBLE_EQ(parsed->y, p.y);
}

TEST(Wkt, PointParsesLooseSpacing) {
  auto p = PointFromWkt("point( 1.5   -2.5 )");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->x, 1.5);
  EXPECT_DOUBLE_EQ(p->y, -2.5);
}

TEST(Wkt, PointRejectsMalformed) {
  EXPECT_FALSE(PointFromWkt("POINT(1.5)").ok());
  EXPECT_FALSE(PointFromWkt("LINESTRING(0 0, 1 1)").ok());
  EXPECT_FALSE(PointFromWkt("POINT 1 2").ok());
}

TEST(Wkt, PolygonRoundTrip) {
  auto poly = Polygon::Make({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  ASSERT_TRUE(poly.ok());
  auto parsed = PolygonFromWkt(PolygonToWkt(*poly));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), poly->size());
  for (size_t i = 0; i < poly->size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->ring()[i].x, poly->ring()[i].x);
    EXPECT_DOUBLE_EQ(parsed->ring()[i].y, poly->ring()[i].y);
  }
}

TEST(Wkt, PolygonRejectsMalformed) {
  EXPECT_FALSE(PolygonFromWkt("POLYGON(0 0, 1 1, 2 2)").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON((0 0, 1 1))").ok());
}

// Property sweep: distance functions agree between metrics after local
// projection at rail-corridor scale.
class MetricAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MetricAgreement, HaversineMatchesProjectedCartesian) {
  const int i = GetParam();
  const Point a{4.0 + 0.01 * i, 50.5 + 0.005 * i};
  const Point b{4.0 + 0.013 * i, 50.5 + 0.004 * i};
  const LocalProjection proj(a, Metric::kWgs84);
  const Point pa = proj.Project(a);
  const Point pb = proj.Project(b);
  const double planar = CartesianDistance(pa, pb);
  const double exact = HaversineMeters(a, b);
  if (exact > 1.0) {
    EXPECT_NEAR(planar / exact, 1.0, 0.002) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MetricAgreement, ::testing::Range(0, 20));

}  // namespace
}  // namespace nebulameos::meos

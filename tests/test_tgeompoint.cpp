// Tests for the temporal-point operations (src/meos/tgeompoint) —
// including the paper's two named operators, edwithin and tpoint_at_stbox.

#include <gtest/gtest.h>

#include "meos/stbox.hpp"
#include "meos/tgeompoint.hpp"

namespace nebulameos::meos {
namespace {

TGeomPointSeq PSeq(std::initializer_list<std::pair<Point, Timestamp>> vals) {
  std::vector<TInstant<Point>> instants;
  for (const auto& [p, t] : vals) instants.push_back({p, t});
  auto seq = TGeomPointSeq::Make(std::move(instants));
  EXPECT_TRUE(seq.ok()) << seq.status().ToString();
  return *seq;
}

TEST(StBox, MakeAndContains) {
  auto box = STBox::Make(0, 0, 10, 10, Period(0, 100));
  ASSERT_TRUE(box.ok());
  EXPECT_TRUE(box->Contains({5, 5}, 50));
  EXPECT_FALSE(box->Contains({5, 5}, 150));
  EXPECT_FALSE(box->Contains({11, 5}, 50));
  EXPECT_FALSE(STBox::Make(10, 0, 0, 10, Period(0, 1)).ok());
}

TEST(StBox, SpatialOnlyIgnoresTime) {
  auto box = STBox::MakeSpatial(0, 0, 10, 10);
  ASSERT_TRUE(box.ok());
  EXPECT_TRUE(box->ContainsTime(999999));
  EXPECT_TRUE(box->Contains({1, 1}, -5));
}

TEST(StBox, OverlapsAndUnion) {
  auto a = STBox::Make(0, 0, 10, 10, Period(0, 100));
  auto b = STBox::Make(5, 5, 20, 20, Period(50, 200));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Overlaps(*b));
  const STBox u = a->Union(*b);
  EXPECT_DOUBLE_EQ(u.xmax(), 20.0);
  EXPECT_EQ(u.tmax(), 200);
  auto far = STBox::Make(50, 50, 60, 60, Period(0, 100));
  ASSERT_TRUE(far.ok());
  EXPECT_FALSE(a->Overlaps(*far));
  // Time-disjoint boxes do not overlap even when spatially nested.
  auto later = STBox::Make(0, 0, 10, 10, Period(200, 300));
  ASSERT_TRUE(later.ok());
  EXPECT_FALSE(a->Overlaps(*later));
}

TEST(StBox, ContainsBoxAndExpand) {
  auto outer = STBox::Make(0, 0, 10, 10, Period(0, 100));
  auto inner = STBox::Make(2, 2, 8, 8, Period(10, 90));
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner.ok());
  EXPECT_TRUE(outer->ContainsBox(*inner));
  EXPECT_FALSE(inner->ContainsBox(*outer));
  const STBox grown = inner->Expanded(2.0, 10);
  EXPECT_TRUE(grown.ContainsBox(*outer));
}

TEST(TPoint, BoundingBox) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 5}, 100}});
  const STBox box = BoundingBox(seq);
  EXPECT_DOUBLE_EQ(box.xmin(), 0.0);
  EXPECT_DOUBLE_EQ(box.xmax(), 10.0);
  EXPECT_DOUBLE_EQ(box.ymax(), 5.0);
  EXPECT_EQ(box.tmin(), 0);
  EXPECT_EQ(box.tmax(), 100);
}

TEST(TPoint, LengthCartesian) {
  const auto seq = PSeq({{{0, 0}, 0}, {{3, 4}, 50}, {{3, 4}, 100}});
  EXPECT_DOUBLE_EQ(Length(seq, Metric::kCartesian), 5.0);
}

TEST(TPoint, CumulativeLengthMonotone) {
  const auto seq = PSeq({{{0, 0}, 0}, {{3, 4}, 50}, {{6, 8}, 100}});
  const TFloatSeq cum = CumulativeLength(seq, Metric::kCartesian);
  EXPECT_DOUBLE_EQ(cum.StartValue(), 0.0);
  EXPECT_DOUBLE_EQ(cum.EndValue(), 10.0);
  EXPECT_DOUBLE_EQ(*cum.ValueAt(25), 2.5);
}

TEST(TPoint, SpeedStepSequence) {
  // 10 units in 10 seconds then stationary.
  const auto seq = PSeq(
      {{{0, 0}, 0}, {{10, 0}, Seconds(10)}, {{10, 0}, Seconds(20)}});
  auto speed = Speed(seq, Metric::kCartesian);
  ASSERT_TRUE(speed.ok());
  EXPECT_NEAR(*speed->ValueAt(Seconds(5)), 1.0, 1e-9);
  EXPECT_NEAR(*speed->ValueAt(Seconds(15)), 0.0, 1e-9);
  const auto single = PSeq({{{0, 0}, 0}});
  EXPECT_FALSE(Speed(single, Metric::kCartesian).ok());
}

TEST(TPoint, TwCentroidWeightsTime) {
  // Dwell at (0,0) for 90, then move to (10,0) during 10.
  const auto seq =
      PSeq({{{0, 0}, 0}, {{0, 0}, 90}, {{10, 0}, 100}});
  const Point c = TwCentroid(seq);
  EXPECT_NEAR(c.x, 0.5, 1e-9);  // 0*0.9 + 5*0.1
  EXPECT_NEAR(c.y, 0.0, 1e-9);
}

TEST(TPoint, WhenInsideBoxExactCrossings) {
  // Straight run through box x in [2, 8] over t in [0, 100].
  const auto seq = PSeq({{{0, 5}, 0}, {{10, 5}, 100}});
  const PeriodSet inside = WhenInsideBox(seq, GeoBox{2, 0, 8, 10});
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside.periods()[0].lower(), 20);
  EXPECT_EQ(inside.periods()[0].upper(), 80);
}

TEST(TPoint, WhenInsideBoxMiss) {
  const auto seq = PSeq({{{0, 20}, 0}, {{10, 20}, 100}});
  EXPECT_TRUE(WhenInsideBox(seq, GeoBox{2, 0, 8, 10}).empty());
}

TEST(TPoint, AtStboxSplitsReentry) {
  // Zig-zag: inside x in [0,10] only while y <= 5; enters twice.
  const auto seq = PSeq({{{5, 0}, 0},
                         {{5, 10}, 100},   // leaves at y=5 (t=50)
                         {{5, 0}, 200}});  // re-enters at y=5 (t=150)
  auto box = STBox::MakeSpatial(0, 0, 10, 5);
  ASSERT_TRUE(box.ok());
  const auto parts = AtStbox(seq, *box);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].StartTime(), 0);
  EXPECT_EQ(parts[0].EndTime(), 50);
  EXPECT_EQ(parts[1].StartTime(), 150);
  EXPECT_EQ(parts[1].EndTime(), 200);
  // Boundary instants interpolate onto the box edge.
  EXPECT_NEAR(parts[0].EndValue().y, 5.0, 1e-9);
  EXPECT_NEAR(parts[1].StartValue().y, 5.0, 1e-9);
}

TEST(TPoint, AtStboxAppliesTimeFirst) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  auto box = STBox::Make(0, -1, 10, 1, Period(25, 75));
  ASSERT_TRUE(box.ok());
  const auto parts = AtStbox(seq, *box);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].StartTime(), 25);
  EXPECT_EQ(parts[0].EndTime(), 75);
  EXPECT_NEAR(parts[0].StartValue().x, 2.5, 1e-9);
}

TEST(TPoint, AtStboxTemporalOnly) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  const STBox box = STBox::MakeTemporal(Period(10, 20));
  const auto parts = AtStbox(seq, box);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].StartTime(), 10);
  EXPECT_EQ(parts[0].EndTime(), 20);
}

TEST(TPoint, MinusStboxComplements) {
  const auto seq = PSeq({{{0, 5}, 0}, {{10, 5}, 100}});
  auto box = STBox::MakeSpatial(2, 0, 8, 10);
  ASSERT_TRUE(box.ok());
  const auto inside = AtStbox(seq, *box);
  const auto outside = MinusStbox(seq, *box);
  Duration total = 0;
  for (const auto& s : inside) total += s.DurationMicros();
  for (const auto& s : outside) total += s.DurationMicros();
  EXPECT_NEAR(static_cast<double>(total), 100.0, 2.0);
}

TEST(TPoint, AtGeometryTriangle) {
  auto poly = Polygon::Make({{2, 0}, {8, 0}, {5, 6}});
  ASSERT_TRUE(poly.ok());
  const auto seq = PSeq({{{0, 2}, 0}, {{10, 2}, 100}});
  const auto parts = AtGeometry(seq, *poly);
  ASSERT_EQ(parts.size(), 1u);
  // Crossing the triangle edges at y=2: x in [3, 7] -> t in [30, 70].
  EXPECT_NEAR(static_cast<double>(parts[0].StartTime()), 30.0, 1.0);
  EXPECT_NEAR(static_cast<double>(parts[0].EndTime()), 70.0, 1.0);
}

TEST(TPoint, WhenInsidePolygonNonConvexSplits) {
  // U-shape: passes through both prongs.
  auto poly = Polygon::Make(
      {{0, 0}, {10, 0}, {10, 10}, {7, 10}, {7, 3}, {3, 3}, {3, 10}, {0, 10}});
  ASSERT_TRUE(poly.ok());
  const auto seq = PSeq({{{-1, 5}, 0}, {{11, 5}, 120}});
  const PeriodSet inside = WhenInsidePolygon(seq, *poly);
  EXPECT_EQ(inside.size(), 2u);
}

TEST(TPoint, EverDWithinPointTarget) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  EXPECT_TRUE(EverDWithin(seq, Point{5, 3}, 3.0, Metric::kCartesian));
  EXPECT_FALSE(EverDWithin(seq, Point{5, 3}, 2.9, Metric::kCartesian));
  // Pruning path: far target.
  EXPECT_FALSE(EverDWithin(seq, Point{100, 100}, 5.0, Metric::kCartesian));
}

TEST(TPoint, EverDWithinInterpolatedApproach) {
  // Closest approach between instants: passes within 1 of (5, 1) at t=50.
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  EXPECT_TRUE(EverDWithin(seq, Point{5, 1}, 1.0, Metric::kCartesian));
  EXPECT_FALSE(EverDWithin(seq, Point{5, 1}, 0.5, Metric::kCartesian));
}

TEST(TPoint, EverDWithinPolygonTarget) {
  auto poly = Polygon::Make({{20, -1}, {22, -1}, {22, 1}, {20, 1}});
  ASSERT_TRUE(poly.ok());
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  EXPECT_TRUE(EverDWithin(seq, *poly, 10.0, Metric::kCartesian));
  EXPECT_FALSE(EverDWithin(seq, *poly, 9.0, Metric::kCartesian));
  // Crossing the polygon: distance 0.
  const auto through = PSeq({{{19, 0}, 0}, {{23, 0}, 100}});
  EXPECT_TRUE(EverDWithin(through, *poly, 0.0, Metric::kCartesian));
}

TEST(TPoint, EverDWithinMovingMoving) {
  // Two objects crossing paths at t=50.
  const auto a = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  const auto b = PSeq({{{10, 0.5}, 0}, {{0, 0.5}, 100}});
  EXPECT_TRUE(EverDWithin(a, b, 0.5, Metric::kCartesian));
  EXPECT_FALSE(EverDWithin(a, b, 0.4, Metric::kCartesian));
  // Parallel objects at constant distance 3.
  const auto c = PSeq({{{0, 3}, 0}, {{10, 3}, 100}});
  EXPECT_TRUE(EverDWithin(a, c, 3.0, Metric::kCartesian));
  EXPECT_FALSE(EverDWithin(a, c, 2.5, Metric::kCartesian));
}

TEST(TPoint, TDwithinCrossingTimes) {
  // Enters the radius-3 disc around (5,0) at x=2 (t=20), leaves at x=8.
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  auto tb = TDwithin(seq, Point{5, 0}, 3.0, Metric::kCartesian);
  ASSERT_TRUE(tb.ok());
  const PeriodSet when = WhenTrue(*tb);
  ASSERT_EQ(when.size(), 1u);
  EXPECT_NEAR(static_cast<double>(when.periods()[0].lower()), 20.0, 1.0);
  EXPECT_NEAR(static_cast<double>(when.periods()[0].upper()), 80.0, 1.0);
}

TEST(TPoint, TDwithinNeverInside) {
  const auto seq = PSeq({{{0, 10}, 0}, {{10, 10}, 100}});
  auto tb = TDwithin(seq, Point{5, 0}, 3.0, Metric::kCartesian);
  ASSERT_TRUE(tb.ok());
  EXPECT_TRUE(WhenTrue(*tb).empty());
}

TEST(TPoint, DistanceToPointIncludesClosestApproach) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  auto dist = DistanceToPoint(seq, Point{5, 2}, Metric::kCartesian);
  ASSERT_TRUE(dist.ok());
  // Minimum value is the exact nearest-approach distance (2 at t=50).
  EXPECT_NEAR(MinValue(*dist), 2.0, 1e-9);
  EXPECT_TRUE(dist->ValueAt(50).has_value());
}

TEST(TPoint, NearestApproach) {
  const auto seq = PSeq({{{0, 0}, 0}, {{10, 0}, 100}});
  EXPECT_NEAR(NearestApproachDistance(seq, Point{7, 4}, Metric::kCartesian),
              4.0, 1e-9);
  EXPECT_EQ(NearestApproachInstant(seq, Point{7, 4}, Metric::kCartesian), 70);
}

TEST(TPoint, EverIntersects) {
  auto poly = Polygon::Make({{4, -1}, {6, -1}, {6, 1}, {4, 1}});
  ASSERT_TRUE(poly.ok());
  EXPECT_TRUE(
      EverIntersects(PSeq({{{0, 0}, 0}, {{10, 0}, 100}}), *poly));
  EXPECT_FALSE(
      EverIntersects(PSeq({{{0, 5}, 0}, {{10, 5}, 100}}), *poly));
}

// Property sweep: every sub-sequence of AtStbox lies inside the box, and
// the restriction is idempotent.
class AtStboxProperty : public ::testing::TestWithParam<int> {};

TEST_P(AtStboxProperty, ResultInsideBoxAndIdempotent) {
  const int k = GetParam();
  // A jagged path whose shape depends on k.
  std::vector<TInstant<Point>> instants;
  for (int i = 0; i < 8; ++i) {
    const double x = (i * (k % 5 + 1)) % 13 - 2.0;
    const double y = (i * (k % 3 + 2)) % 9 - 1.0;
    instants.push_back({Point{x, y}, static_cast<Timestamp>(i * 100)});
  }
  auto seq = TGeomPointSeq::Make(std::move(instants));
  ASSERT_TRUE(seq.ok());
  auto box = STBox::Make(0, 0, 6, 5, Period(50, 650));
  ASSERT_TRUE(box.ok());
  const auto parts = AtStbox(*seq, *box);
  for (const auto& part : parts) {
    for (const auto& ins : part.instants()) {
      EXPECT_GE(ins.value.x, box->xmin() - 1e-6);
      EXPECT_LE(ins.value.x, box->xmax() + 1e-6);
      EXPECT_GE(ins.value.y, box->ymin() - 1e-6);
      EXPECT_LE(ins.value.y, box->ymax() + 1e-6);
      EXPECT_TRUE(box->ContainsTime(ins.t));
    }
    // Idempotence: restricting again changes nothing but rounding.
    const auto again = AtStbox(part, *box);
    Duration d = 0;
    for (const auto& s : again) d += s.DurationMicros();
    EXPECT_NEAR(static_cast<double>(d),
                static_cast<double>(part.DurationMicros()), 4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtStboxProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace nebulameos::meos

// Tests for windowing: assigner, aggregate state, window operators
// (tumbling/sliding/threshold) — the paper's window extensions.

#include <gtest/gtest.h>

#include "nebula/operators.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

// Feeds rows through an operator and collects emitted rows.
class WindowHarness {
 public:
  explicit WindowHarness(OperatorPtr op) : op_(std::move(op)) {
    EXPECT_TRUE(op_->Open(&ctx_).ok());
  }

  void Feed(std::initializer_list<std::tuple<int64_t, Timestamp, double>> rows) {
    auto buf = std::make_shared<TupleBuffer>(EventSchema(), rows.size());
    for (const auto& [key, ts, value] : rows) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, key);
      w.SetInt64(1, ts);
      w.SetDouble(2, value);
    }
    EXPECT_TRUE(op_->Process(buf, collector_).ok());
  }

  void Finish() { EXPECT_TRUE(op_->Finish(collector_).ok()); }

  // Stored callable: Operator::EmitFn is a non-owning FunctionRef, so the
  // referenced callable must outlive the Process/Finish call.
  std::function<void(const TupleBufferPtr&)> MakeCollector() {
    return [this](const TupleBufferPtr& out) {
      for (size_t i = 0; i < out->size(); ++i) {
        const RecordView rec = out->At(i);
        std::vector<Value> row;
        for (size_t f = 0; f < out->schema().num_fields(); ++f) {
          switch (out->schema().field(f).type) {
            case DataType::kBool:
              row.emplace_back(rec.GetBool(f));
              break;
            case DataType::kInt64:
            case DataType::kTimestamp:
              row.emplace_back(rec.GetInt64(f));
              break;
            case DataType::kDouble:
              row.emplace_back(rec.GetDouble(f));
              break;
            default:
              row.emplace_back(rec.GetText(f));
          }
        }
        rows_.push_back(std::move(row));
      }
    };
  }

  const std::vector<std::vector<Value>>& rows() const { return rows_; }
  Operator* op() { return op_.get(); }

 private:
  ExecutionContext ctx_;
  OperatorPtr op_;
  std::vector<std::vector<Value>> rows_;
  std::function<void(const TupleBufferPtr&)> collector_ = MakeCollector();
};

TEST(WindowAssigner, TumblingSingleWindow) {
  auto assigner = WindowAssigner::Make(TumblingWindowSpec{Seconds(10)});
  ASSERT_TRUE(assigner.ok());
  std::vector<Timestamp> starts;
  assigner->AssignWindows(Seconds(25), &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], Seconds(20));
  // Exactly on a boundary belongs to the window starting there.
  assigner->AssignWindows(Seconds(30), &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], Seconds(30));
}

TEST(WindowAssigner, SlidingMultipleWindows) {
  auto assigner =
      WindowAssigner::Make(SlidingWindowSpec{Seconds(10), Seconds(5)});
  ASSERT_TRUE(assigner.ok());
  std::vector<Timestamp> starts;
  assigner->AssignWindows(Seconds(12), &starts);
  // Windows [10,20) and [5,15) contain t=12.
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], Seconds(10));
  EXPECT_EQ(starts[1], Seconds(5));
}

TEST(WindowAssigner, Validation) {
  EXPECT_FALSE(WindowAssigner::Make(TumblingWindowSpec{0}).ok());
  EXPECT_FALSE(
      WindowAssigner::Make(SlidingWindowSpec{Seconds(5), Seconds(10)}).ok());
  EXPECT_FALSE(WindowAssigner::Make(ThresholdWindowSpec{}).ok());
}

TEST(AggState, AllKinds) {
  AggState state;
  state.Add(3.0, 10);
  state.Add(1.0, 20);
  state.Add(5.0, 30);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kCount), 3.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kSum), 9.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kAvg), 3.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kMin), 1.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kMax), 5.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kFirst), 3.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kLast), 5.0);
}

TEST(AggState, FirstLastByEventTime) {
  AggState state;
  state.Add(3.0, 30);  // arrives first but is temporally last
  state.Add(1.0, 10);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kFirst), 1.0);
  EXPECT_DOUBLE_EQ(state.Result(AggKind::kLast), 3.0);
}

WindowAggOptions TumblingOptions(Duration size) {
  WindowAggOptions opts;
  opts.key_field = "key";
  opts.time_field = "ts";
  opts.window = TumblingWindowSpec{size};
  opts.aggregates = {AggregateSpec::Avg("value", "avg_value"),
                     AggregateSpec::Count("n")};
  return opts;
}

TEST(WindowAggOperator, TumblingKeyedAggregation) {
  auto op = WindowAggOperator::Make(EventSchema(), TumblingOptions(Seconds(10)));
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 2.0},
          {1, Seconds(2), 4.0},
          {2, Seconds(3), 10.0},
          {1, Seconds(12), 6.0}});
  h.Finish();
  // Expected panes: (key=1, [0,10)) avg 3 n 2; (key=2, [0,10)) avg 10 n 1;
  // (key=1, [10,20)) avg 6 n 1 — emitted in (window, key) order.
  ASSERT_EQ(h.rows().size(), 3u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][0]), 1);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][1]), 0);            // window_start
  EXPECT_EQ(ValueAsInt64(h.rows()[0][2]), Seconds(10));  // window_end
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][3]), 3.0);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][4]), 2);
  EXPECT_EQ(ValueAsInt64(h.rows()[1][0]), 2);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[1][3]), 10.0);
  EXPECT_EQ(ValueAsInt64(h.rows()[2][0]), 1);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[2][3]), 6.0);
}

TEST(WindowAggOperator, WatermarkFiresClosedPanes) {
  auto op = WindowAggOperator::Make(EventSchema(), TumblingOptions(Seconds(10)));
  ASSERT_TRUE(op.ok());
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 2.0}});
  EXPECT_TRUE(h.rows().empty());  // window still open
  h.Feed({{1, Seconds(11), 4.0}});
  // Watermark = 11s > window end 10s: the first pane fires without Finish.
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][3]), 2.0);
  h.Finish();
  EXPECT_EQ(h.rows().size(), 2u);
}

TEST(WindowAggOperator, SlidingOverlapCountsTwice) {
  WindowAggOptions opts = TumblingOptions(0);
  opts.window = SlidingWindowSpec{Seconds(10), Seconds(5)};
  auto op = WindowAggOperator::Make(EventSchema(), opts);
  ASSERT_TRUE(op.ok());
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(7), 2.0}});
  h.Finish();
  // Event at 7s belongs to windows [0,10) and [5,15).
  ASSERT_EQ(h.rows().size(), 2u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][1]), 0);
  EXPECT_EQ(ValueAsInt64(h.rows()[1][1]), Seconds(5));
}

TEST(WindowAggOperator, GlobalWindowWithoutKey) {
  WindowAggOptions opts;
  opts.time_field = "ts";
  opts.window = TumblingWindowSpec{Seconds(10)};
  opts.aggregates = {AggregateSpec::Sum("value", "total")};
  auto op = WindowAggOperator::Make(EventSchema(), opts);
  ASSERT_TRUE(op.ok());
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 2.0}, {2, Seconds(2), 3.0}});
  h.Finish();
  ASSERT_EQ(h.rows().size(), 1u);
  // Unkeyed output: window_start, window_end, total.
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][2]), 5.0);
}

TEST(WindowAggOperator, Validation) {
  WindowAggOptions opts = TumblingOptions(Seconds(10));
  opts.time_field = "";
  EXPECT_FALSE(WindowAggOperator::Make(EventSchema(), opts).ok());
  opts = TumblingOptions(Seconds(10));
  opts.key_field = "missing";
  EXPECT_FALSE(WindowAggOperator::Make(EventSchema(), opts).ok());
  opts = TumblingOptions(Seconds(10));
  opts.window = ThresholdWindowSpec{Lit(true), 0};
  EXPECT_FALSE(WindowAggOperator::Make(EventSchema(), opts).ok());
  opts = TumblingOptions(Seconds(10));
  opts.aggregates = {AggregateSpec::Avg("missing", "x")};
  EXPECT_FALSE(WindowAggOperator::Make(EventSchema(), opts).ok());
}

ThresholdWindowOptions ThresholdOptions(double threshold,
                                        Duration min_duration) {
  ThresholdWindowOptions opts;
  opts.predicate = Gt(Attribute("value"), Lit(threshold));
  opts.min_duration = min_duration;
  opts.key_field = "key";
  opts.time_field = "ts";
  opts.aggregates = {AggregateSpec::Max("value", "peak"),
                     AggregateSpec::Count("n")};
  return opts;
}

TEST(ThresholdWindowOperator, OpensAndClosesOnPredicate) {
  auto op = ThresholdWindowOperator::Make(EventSchema(),
                                          ThresholdOptions(5.0, 0));
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 3.0},    // below: no window
          {1, Seconds(2), 7.0},    // opens
          {1, Seconds(3), 9.0},    // extends
          {1, Seconds(4), 2.0},    // closes -> emit
          {1, Seconds(5), 8.0}});  // reopens (still open at end)
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][1]), Seconds(2));  // window_start
  EXPECT_EQ(ValueAsInt64(h.rows()[0][2]), Seconds(3));  // window_end
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.rows()[0][3]), 9.0);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][4]), 2);
  h.Finish();  // flushes the reopened window
  ASSERT_EQ(h.rows().size(), 2u);
  EXPECT_EQ(ValueAsInt64(h.rows()[1][1]), Seconds(5));
}

TEST(ThresholdWindowOperator, MinDurationFilters) {
  auto op = ThresholdWindowOperator::Make(EventSchema(),
                                          ThresholdOptions(5.0, Seconds(5)));
  ASSERT_TRUE(op.ok());
  WindowHarness h(std::move(*op));
  // A 1-second burst: too short.
  h.Feed({{1, Seconds(1), 7.0}, {1, Seconds(2), 3.0}});
  EXPECT_TRUE(h.rows().empty());
  // A 6-second run: long enough.
  h.Feed({{1, Seconds(10), 7.0},
          {1, Seconds(13), 8.0},
          {1, Seconds(16), 9.0},
          {1, Seconds(17), 1.0}});
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][1]), Seconds(10));
  EXPECT_EQ(ValueAsInt64(h.rows()[0][2]), Seconds(16));
}

TEST(ThresholdWindowOperator, PerKeyIndependence) {
  auto op = ThresholdWindowOperator::Make(EventSchema(),
                                          ThresholdOptions(5.0, 0));
  ASSERT_TRUE(op.ok());
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 7.0},
          {2, Seconds(2), 9.0},
          {1, Seconds(3), 1.0},    // closes key 1 only
          {2, Seconds(4), 9.5}});  // key 2 still open
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0][0]), 1);
  h.Finish();
  EXPECT_EQ(h.rows().size(), 2u);
}

TEST(ThresholdWindowOperator, Validation) {
  ThresholdWindowOptions opts = ThresholdOptions(5.0, 0);
  opts.predicate = nullptr;
  EXPECT_FALSE(ThresholdWindowOperator::Make(EventSchema(), opts).ok());
  opts = ThresholdOptions(5.0, 0);
  opts.time_field = "missing";
  EXPECT_FALSE(ThresholdWindowOperator::Make(EventSchema(), opts).ok());
}

// A custom aggregator counting records (plugin hook check).
class CountingCustomAgg : public CustomAggregator {
 public:
  void Add(const RecordView&, Timestamp) override { ++count_; }
  std::vector<Field> OutputFields() const override {
    return {{"custom_count", DataType::kInt64}};
  }
  void WriteResult(RecordWriter* out, size_t first_index) override {
    out->SetInt64(first_index, count_);
  }
  Status Bind(const Schema&) override { return Status::OK(); }

 private:
  int64_t count_ = 0;
};

TEST(WindowAggOperator, CustomAggregatorExtendsOutput) {
  WindowAggOptions opts = TumblingOptions(Seconds(10));
  opts.custom_aggregators = {
      []() { return std::make_unique<CountingCustomAgg>(); }};
  auto op = WindowAggOperator::Make(EventSchema(), opts);
  ASSERT_TRUE(op.ok());
  EXPECT_TRUE((*op)->output_schema().HasField("custom_count"));
  WindowHarness h(std::move(*op));
  h.Feed({{1, Seconds(1), 2.0}, {1, Seconds(2), 4.0}});
  h.Finish();
  ASSERT_EQ(h.rows().size(), 1u);
  EXPECT_EQ(ValueAsInt64(h.rows()[0].back()), 2);
}

}  // namespace
}  // namespace nebulameos::nebula

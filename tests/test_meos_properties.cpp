// Cross-module property sweeps over the mobility engine: invariants that
// must hold for arbitrary trajectories and sequences, checked over seeded
// pseudo-random inputs (TEST_P).

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "meos/io.hpp"
#include "meos/tgeompoint.hpp"

namespace nebulameos::meos {
namespace {

// Deterministic pseudo-random trajectory: `n` instants of bounded step
// length around Brussels, 10 s apart.
TGeomPointSeq RandomTrajectory(uint64_t seed, size_t n = 64) {
  Rng rng(seed);
  std::vector<TInstant<Point>> instants;
  double lon = 4.35, lat = 50.85;
  for (size_t i = 0; i < n; ++i) {
    instants.push_back({Point{lon, lat}, static_cast<Timestamp>(i) * Seconds(10)});
    lon += rng.Uniform(-0.002, 0.002);
    lat += rng.Uniform(-0.002, 0.002);
  }
  auto seq = TGeomPointSeq::Make(std::move(instants));
  EXPECT_TRUE(seq.ok());
  return *seq;
}

TFloatSeq RandomFloatSeq(uint64_t seed, size_t n = 32) {
  Rng rng(seed);
  std::vector<TInstant<double>> instants;
  for (size_t i = 0; i < n; ++i) {
    instants.push_back(
        {rng.Uniform(-10.0, 10.0), static_cast<Timestamp>(i) * Seconds(5)});
  }
  auto seq = TFloatSeq::Make(std::move(instants));
  EXPECT_TRUE(seq.ok());
  return *seq;
}

class TrajectoryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrajectoryProperty, SimplifyPreservesEndpointsAndBound) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam());
  const double epsilon = 50.0;  // meters
  const TGeomPointSeq simple = Simplify(traj, epsilon, Metric::kWgs84);
  ASSERT_GE(simple.size(), 2u);
  ASSERT_LE(simple.size(), traj.size());
  EXPECT_TRUE(simple.StartValue() == traj.StartValue());
  EXPECT_TRUE(simple.EndValue() == traj.EndValue());
  EXPECT_EQ(simple.StartTime(), traj.StartTime());
  EXPECT_EQ(simple.EndTime(), traj.EndTime());
  // Every kept instant exists in the original (subset property).
  for (const auto& ins : simple.instants()) {
    const auto original = traj.ValueAt(ins.t);
    ASSERT_TRUE(original.has_value());
    EXPECT_TRUE(*original == ins.value);
  }
  // Every dropped instant lies within epsilon of the simplified path
  // (with slack for the local-projection approximation).
  for (const auto& ins : traj.instants()) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < simple.size(); ++i) {
      best = std::min(best, PointSegmentDistance(
                                ins.value,
                                Segment{simple.instant(i).value,
                                        simple.instant(i + 1).value},
                                Metric::kWgs84));
    }
    EXPECT_LE(best, epsilon * 1.05) << "seed=" << GetParam();
  }
  // Simplification never lengthens the path.
  EXPECT_LE(Length(simple, Metric::kWgs84),
            Length(traj, Metric::kWgs84) + 1e-6);
}

TEST_P(TrajectoryProperty, SpeedIntegratesToLength) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam());
  auto speed = Speed(traj, Metric::kWgs84);
  ASSERT_TRUE(speed.ok());
  // The step-speed integral equals the trajectory length.
  EXPECT_NEAR(Integral(*speed), Length(traj, Metric::kWgs84),
              Length(traj, Metric::kWgs84) * 1e-9 + 1e-6);
}

TEST_P(TrajectoryProperty, CumulativeLengthEndsAtLength) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam());
  const TFloatSeq cum = CumulativeLength(traj, Metric::kWgs84);
  EXPECT_NEAR(cum.EndValue(), Length(traj, Metric::kWgs84), 1e-9);
  // Monotone non-decreasing.
  for (size_t i = 1; i < cum.size(); ++i) {
    EXPECT_GE(cum.instant(i).value, cum.instant(i - 1).value);
  }
}

TEST_P(TrajectoryProperty, InsideAndComplementPartitionPeriod) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam());
  const GeoBox box{4.34, 50.84, 4.37, 50.87};
  const PeriodSet inside = WhenInsideBox(traj, box);
  auto st_box = STBox::MakeSpatial(box.xmin, box.ymin, box.xmax, box.ymax);
  ASSERT_TRUE(st_box.ok());
  const auto outside = MinusStbox(traj, *st_box);
  Duration outside_total = 0;
  for (const auto& part : outside) outside_total += part.DurationMicros();
  // Inside + outside cover the whole period (microsecond rounding slack,
  // one per crossing).
  EXPECT_NEAR(static_cast<double>(inside.TotalDuration() + outside_total),
              static_cast<double>(traj.DurationMicros()),
              static_cast<double>(traj.size()) * 2.0)
      << "seed=" << GetParam();
}

TEST_P(TrajectoryProperty, TPointTextRoundTrip) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam(), 16);
  auto parsed = TPointFromString(TPointToString(traj));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), traj.size());
  for (size_t i = 0; i < traj.size(); ++i) {
    EXPECT_EQ(parsed->instant(i).t, traj.instant(i).t);
    EXPECT_NEAR(parsed->instant(i).value.x, traj.instant(i).value.x, 1e-9);
    EXPECT_NEAR(parsed->instant(i).value.y, traj.instant(i).value.y, 1e-9);
  }
}

TEST_P(TrajectoryProperty, NearestApproachConsistentWithEverDWithin) {
  const TGeomPointSeq traj = RandomTrajectory(GetParam());
  const Point target{4.36, 50.86};
  const double nad = NearestApproachDistance(traj, target, Metric::kWgs84);
  EXPECT_TRUE(EverDWithin(traj, target, nad * 1.0001 + 0.001,
                          Metric::kWgs84));
  if (nad > 1.0) {
    EXPECT_FALSE(EverDWithin(traj, target, nad * 0.99, Metric::kWgs84));
  }
  // The temporal distance attains the nearest approach (to within the
  // microsecond grid and local-projection approximation: ~1 mm).
  auto dist = DistanceToPoint(traj, target, Metric::kWgs84);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(MinValue(*dist), nad, nad * 1e-4 + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrajectoryProperty,
                         ::testing::Range<uint64_t>(1, 21));

class FloatSeqProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FloatSeqProperty, CmpConstAgreesWithDenseSampling) {
  const TFloatSeq seq = RandomFloatSeq(GetParam());
  const double c = 1.5;
  const TBoolSeq tb = CmpConst(seq, CmpOp::kGt, c);
  // Sample densely away from crossing instants and compare.
  for (Timestamp t = seq.StartTime(); t <= seq.EndTime(); t += Seconds(1)) {
    const auto v = seq.ValueAt(t);
    const auto b = tb.ValueAt(t);
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(b.has_value());
    // Within 2 µs of a crossing the rounded boolean may differ; skip.
    if (std::fabs(*v - c) < 1e-4) continue;
    EXPECT_EQ(*b, *v > c) << "t=" << t << " seed=" << GetParam();
  }
}

TEST_P(FloatSeqProperty, AtRangeValuesWithinRange) {
  const TFloatSeq seq = RandomFloatSeq(GetParam());
  for (const auto& part : AtRange(seq, -2.0, 3.0)) {
    for (const auto& ins : part.instants()) {
      EXPECT_GE(ins.value, -2.0 - 1e-6);
      EXPECT_LE(ins.value, 3.0 + 1e-6);
    }
  }
}

TEST_P(FloatSeqProperty, TwAvgBetweenMinAndMax) {
  const TFloatSeq seq = RandomFloatSeq(GetParam());
  const double avg = TwAvg(seq);
  EXPECT_GE(avg, MinValue(seq) - 1e-9);
  EXPECT_LE(avg, MaxValue(seq) + 1e-9);
}

TEST_P(FloatSeqProperty, DerivativeOfCumulativeIsSpeedLike) {
  // d/dt of a linear sequence reconstructs the segment slopes.
  const TFloatSeq seq = RandomFloatSeq(GetParam());
  auto deriv = Derivative(seq);
  ASSERT_TRUE(deriv.ok());
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const double slope = (seq.instant(i + 1).value - seq.instant(i).value) /
                         ToSeconds(seq.instant(i + 1).t - seq.instant(i).t);
    EXPECT_NEAR(deriv->instant(i).value, slope, 1e-9);
  }
}

TEST_P(FloatSeqProperty, TFloatTextRoundTrip) {
  const TFloatSeq seq = RandomFloatSeq(GetParam(), 12);
  auto parsed = TFloatFromString(TFloatToString(seq));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_NEAR(parsed->instant(i).value, seq.instant(i).value, 1e-9);
    EXPECT_EQ(parsed->instant(i).t, seq.instant(i).t);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloatSeqProperty,
                         ::testing::Range<uint64_t>(100, 115));

TEST(Simplify, CollinearPointsCollapse) {
  // Straight east-bound line: everything between the endpoints drops.
  std::vector<TInstant<Point>> instants;
  for (int i = 0; i < 20; ++i) {
    instants.push_back({Point{4.35 + 0.001 * i, 50.85},
                        static_cast<Timestamp>(i) * Seconds(10)});
  }
  auto traj = TGeomPointSeq::Make(std::move(instants));
  ASSERT_TRUE(traj.ok());
  const TGeomPointSeq simple = Simplify(*traj, 5.0, Metric::kWgs84);
  EXPECT_EQ(simple.size(), 2u);
  EXPECT_NEAR(Length(simple, Metric::kWgs84),
              Length(*traj, Metric::kWgs84), 1.0);
}

TEST(Simplify, SharpCornerSurvives) {
  // An L-shaped path: the corner displaces far more than epsilon.
  auto traj = TGeomPointSeq::Make({{Point{4.35, 50.85}, 0},
                                   {Point{4.36, 50.85}, Seconds(10)},
                                   {Point{4.36, 50.86}, Seconds(20)}});
  ASSERT_TRUE(traj.ok());
  const TGeomPointSeq simple = Simplify(*traj, 10.0, Metric::kWgs84);
  EXPECT_EQ(simple.size(), 3u);
}

TEST(Simplify, TinyTrajectoriesUntouched) {
  auto two = TGeomPointSeq::Make(
      {{Point{0, 0}, 0}, {Point{1, 1}, Seconds(1)}});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(Simplify(*two, 100.0, Metric::kCartesian).size(), 2u);
  auto one = TGeomPointSeq::Make({{Point{0, 0}, 0}});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(Simplify(*one, 100.0, Metric::kCartesian).size(), 1u);
}

}  // namespace
}  // namespace nebulameos::meos

// Tier-2 tests of the LogicalPlan IR: builder emission, structural
// validation (missing sink, dangling KeyBy, incomplete windows), Explain
// rendering, schema inference and CompilePlan error paths.

#include <gtest/gtest.h>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

SourcePtr MakeSource(int n = 4) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 2}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return std::make_unique<MemorySource>(EventSchema(), std::move(rows), 1,
                                        "ts");
}

TEST(LogicalPlan, BuilderEmitsNodesInOrder) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Map("doubled", Mul(Attribute("value"), Lit(2.0)))
                  .Project({"key", "doubled"})
                  .To(std::make_shared<CountingSink>(EventSchema()))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto& ops = plan->ops();
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0]->kind(), LogicalOperator::Kind::kFilter);
  EXPECT_EQ(ops[1]->kind(), LogicalOperator::Kind::kMap);
  EXPECT_EQ(ops[2]->kind(), LogicalOperator::Kind::kProject);
  EXPECT_EQ(ops[3]->kind(), LogicalOperator::Kind::kSink);
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(LogicalPlan, ValidateRequiresSource) {
  LogicalPlan plan;
  plan.SetSink(std::make_shared<CountingSink>(EventSchema()));
  const Status st = plan.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("source"), std::string::npos);
}

TEST(LogicalPlan, ValidateRequiresSink) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  const Status st = plan->Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sink"), std::string::npos);
}

TEST(LogicalPlan, DanglingKeyByIsAHardError) {
  // Regression for the silent pending_key_ drop: KeyBy not followed by a
  // window/CEP step must fail validation, not vanish.
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .Project({"value"})
                  .To(std::make_shared<CountingSink>(EventSchema()))
                  .Build();
  ASSERT_TRUE(plan.ok());
  const Status st = plan->Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("KeyBy(key)"), std::string::npos)
      << st.ToString();
  // CompilePlan refuses it too, independently of Validate.
  EXPECT_FALSE(CompilePlan(EventSchema(), *plan).ok());
}

TEST(LogicalPlan, KeyByAtEndOfPlanIsRejected) {
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .To(std::make_shared<CountingSink>(EventSchema()))
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate().ok());
}

TEST(LogicalPlan, AggregateWithoutWindowFailsBuild) {
  auto plan = Query::From(MakeSource())
                  .Aggregate({AggregateSpec::Count("n")})
                  .Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("Aggregate"), std::string::npos)
      << plan.status().ToString();
}

TEST(LogicalPlan, WindowWithoutAggregateFailsBuild) {
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .TumblingWindow(Seconds(5), "ts")
                  .Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("Aggregate"), std::string::npos);
}

TEST(LogicalPlan, StepBetweenWindowAndAggregateFailsBuild) {
  auto plan = Query::From(MakeSource())
                  .TumblingWindow(Seconds(5), "ts")
                  .Filter(Gt(Attribute("value"), Lit(0.0)))
                  .Build();
  ASSERT_FALSE(plan.ok());
}

TEST(LogicalPlan, WindowNodeWithoutAggregatesFailsValidate) {
  // Direct IR construction can skip the builder's checks; Validate still
  // catches the empty aggregate list.
  LogicalPlan plan;
  plan.SetSource(MakeSource());
  WindowAggOptions options;
  options.window = TumblingWindowSpec{Seconds(5)};
  options.time_field = "ts";
  plan.Append(std::make_unique<WindowAggNode>(std::move(options)));
  plan.SetSink(std::make_shared<CountingSink>(EventSchema()));
  const Status st = plan.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("aggregates"), std::string::npos);
}

TEST(LogicalPlan, CompileRejectsUnknownProjectField) {
  auto plan = Query::From(MakeSource()).Project({"no_such_field"}).Build();
  ASSERT_TRUE(plan.ok());
  const auto chain = CompilePlan(EventSchema(), *plan);
  EXPECT_FALSE(chain.ok());
}

TEST(LogicalPlan, CompileRejectsUnknownFilterField) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("no_such_field"), Lit(1)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(CompilePlan(EventSchema(), *plan).ok());
}

TEST(LogicalPlan, CompileFoldsKeyByIntoWindow) {
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .TumblingWindow(Seconds(5), "ts")
                  .Aggregate({AggregateSpec::Count("n")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(EventSchema(), *plan);
  ASSERT_TRUE(pipe.ok()) << pipe.status().ToString();
  // KeyBy is a marker, not a physical operator: one WindowAgg only, and
  // its output schema leads with the key column.
  ASSERT_EQ(pipe->operators.size(), 1u);
  EXPECT_EQ(pipe->operators[0]->name(), "WindowAgg");
  EXPECT_EQ(pipe->operators[0]->output_schema().field(0).name, "key");
}

TEST(LogicalPlan, SinkNodeIsNotLowered) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(0.0)))
                  .To(std::make_shared<CountingSink>(EventSchema()))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pipe = CompilePlan(EventSchema(), *plan);
  ASSERT_TRUE(pipe.ok());
  // Just the filter; the sink rides along for the engine to drive.
  EXPECT_EQ(pipe->operators.size(), 1u);
  EXPECT_NE(pipe->sink, nullptr);
  EXPECT_NE(plan->sink(), nullptr);
}

TEST(LogicalPlan, OutputSchemaInfersThroughTheChain) {
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(0.5)))
                  .Project({"scaled", "ts"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto out = plan->OutputSchema();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_fields(), 2u);
  EXPECT_EQ(out->field(0).name, "scaled");
  EXPECT_EQ(out->field(1).name, "ts");
  // Inference does not consume the source.
  EXPECT_NE(plan->source(), nullptr);
}

TEST(LogicalPlan, ExplainRendersEveryNode) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Map("doubled", Mul(Attribute("value"), Lit(2.0)))
                  .KeyBy("key")
                  .TumblingWindow(Minutes(1), "ts")
                  .Aggregate({AggregateSpec::Avg("doubled", "avg_doubled")})
                  .To(std::make_shared<CountingSink>(EventSchema()))
                  .Build();
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->Explain();
  EXPECT_NE(text.find("Source: MemorySource"), std::string::npos) << text;
  EXPECT_NE(text.find("-> Filter((value > 1))"), std::string::npos) << text;
  EXPECT_NE(text.find("-> Map(doubled := (value * 2))"), std::string::npos)
      << text;
  EXPECT_NE(text.find("-> KeyBy(key)"), std::string::npos) << text;
  EXPECT_NE(text.find("-> WindowAgg(tumbling 1m, time=ts, "
                      "aggs=[avg(doubled) AS avg_doubled])"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("-> Sink(CountingSink)"), std::string::npos) << text;
}

TEST(LogicalPlan, ExplainRendersCepAndJoinNodes) {
  Pattern pattern;
  pattern.steps = {
      PatternStep{"a", Gt(Attribute("value"), Lit(1.0)), false, false},
      PatternStep{"b", Lt(Attribute("value"), Lit(1.0)), false, true},
  };
  pattern.within = Minutes(5);
  pattern.time_field = "ts";
  auto plan = Query::From(MakeSource())
                  .KeyBy("key")
                  .Detect(std::move(pattern),
                          {Measure::Count("b", "n_b")})
                  .Build();
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->Explain();
  EXPECT_NE(text.find("-> CEP(a ; b+ within 5m"), std::string::npos) << text;
  EXPECT_NE(text.find("1 measures"), std::string::npos) << text;
}

}  // namespace
}  // namespace nebulameos::nebula

// Tier-2 tests of BufferManager under exhaustion: Acquire blocking until a
// handle recycles, TryAcquire returning nullptr, handle-drop recycling with
// state reset (including the immutability seal), and the pool-accounting
// counter behind the zero-copy fan-out acceptance. The multi-threaded
// torture tests at the bottom gate the pool's concurrency contract for
// morsel-driven execution (run them under TSan via scripts/check.sh tsan
// mode): no buffer is ever handed to two owners at once, `total_acquired`
// is exact under contention, and Acquire never deadlocks while recyclers
// make progress.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "nebula/buffer_manager.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build().AddInt64("key").AddDouble("value").Finish();
}

TEST(BufferManager, TryAcquireReturnsNullWhenExhausted) {
  auto pool = BufferManager::Create(EventSchema(), 4, 2);
  EXPECT_EQ(pool->available(), 2u);
  TupleBufferPtr a = pool->TryAcquire();
  TupleBufferPtr b = pool->TryAcquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool->available(), 0u);
  EXPECT_EQ(pool->TryAcquire(), nullptr);
  // Releasing one handle makes TryAcquire succeed again.
  b.reset();
  EXPECT_EQ(pool->available(), 1u);
  EXPECT_NE(pool->TryAcquire(), nullptr);
}

TEST(BufferManager, AcquireBlocksUntilRecycle) {
  auto pool = BufferManager::Create(EventSchema(), 4, 1);
  TupleBufferPtr held = pool->Acquire();
  ASSERT_NE(held, nullptr);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    TupleBufferPtr b = pool->Acquire();  // blocks: pool exhausted
    acquired.store(true);
  });
  // The waiter cannot make progress while the only buffer is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  held.reset();  // recycle unblocks the waiter
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BufferManager, HandleDropRecyclesAndResetsState) {
  auto pool = BufferManager::Create(EventSchema(), 4, 1);
  {
    TupleBufferPtr buf = pool->Acquire();
    buf->Append().SetInt64(0, 7);
    buf->set_sequence_number(42);
    buf->set_watermark(1234);
    buf->Seal();
    EXPECT_EQ(pool->available(), 0u);
  }
  EXPECT_EQ(pool->available(), 1u);
  // Reacquired buffer is empty, metadata-free, and writable again (the
  // seal lifted on recycle).
  TupleBufferPtr again = pool->Acquire();
  EXPECT_EQ(again->size(), 0u);
  EXPECT_EQ(again->sequence_number(), 0u);
  EXPECT_EQ(again->watermark(), 0);
  EXPECT_FALSE(again->sealed());
  again->Append().SetInt64(0, 1);  // must not assert
}

TEST(BufferManager, TotalAcquiredCountsEveryHandOut) {
  auto pool = BufferManager::Create(EventSchema(), 4, 2);
  EXPECT_EQ(pool->total_acquired(), 0u);
  { TupleBufferPtr a = pool->Acquire(); }
  { TupleBufferPtr b = pool->TryAcquire(); }
  EXPECT_EQ(pool->total_acquired(), 2u);
  // A failed TryAcquire does not count.
  TupleBufferPtr a = pool->Acquire();
  TupleBufferPtr b = pool->Acquire();
  EXPECT_EQ(pool->TryAcquire(), nullptr);
  EXPECT_EQ(pool->total_acquired(), 4u);
}

// 8 threads hammer a 3-buffer pool with blocking Acquire. Each holder
// stamps the buffer with its thread id, dwells, and checks the stamp is
// still its own — a second concurrent owner of the same buffer would
// overwrite it. Total hand-outs must be exact, and the run completing at
// all proves Acquire never deadlocks while other threads recycle.
TEST(BufferManagerTorture, ConcurrentAcquireNeverDoubleHandsOut) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPoolSize = 3;
  constexpr int kRounds = 400;
  auto pool = BufferManager::Create(EventSchema(), 4, kPoolSize);
  std::atomic<uint64_t> overlaps{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        TupleBufferPtr buf = pool->Acquire();
        ASSERT_NE(buf, nullptr);
        // Recycling resets the buffer, so a fresh hand-out is empty; a
        // row already present means another thread still owns it.
        if (buf->size() != 0) overlaps.fetch_add(1);
        buf->Append().SetInt64(0, static_cast<int64_t>(t));
        std::this_thread::yield();
        if (buf->size() != 1 ||
            buf->At(0).GetInt64(0) != static_cast<int64_t>(t)) {
          overlaps.fetch_add(1);
        }
        // Handle drop recycles (often from a different thread than the
        // one that will reacquire it next).
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(overlaps.load(), 0u);
  EXPECT_EQ(pool->total_acquired(), kThreads * kRounds);
  EXPECT_EQ(pool->available(), kPoolSize);
}

// Mixed Acquire/TryAcquire contention: TryAcquire may fail (exhaustion)
// but every success is a real hand-out — the counter must equal the
// number of successes exactly, with no lost or double increments.
TEST(BufferManagerTorture, TotalAcquiredExactUnderMixedContention) {
  constexpr size_t kThreads = 8;
  constexpr int kRounds = 500;
  auto pool = BufferManager::Create(EventSchema(), 4, 2);
  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        if ((t + r) % 2 == 0) {
          TupleBufferPtr buf = pool->Acquire();  // blocking: always succeeds
          ASSERT_NE(buf, nullptr);
          successes.fetch_add(1);
        } else if (TupleBufferPtr buf = pool->TryAcquire()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(pool->total_acquired(), successes.load());
  EXPECT_GE(successes.load(), kThreads * kRounds / 2);  // Acquire half
  EXPECT_EQ(pool->available(), 2u);
}

// Handles recycled from a dedicated dropper thread while acquirers block:
// exercises the cross-thread recycle → condition-variable wake-up path
// that morsel workers rely on when the ingest thread waits on the pool.
TEST(BufferManagerTorture, CrossThreadDropUnblocksAcquirers) {
  constexpr size_t kAcquirers = 8;
  constexpr int kPerThread = 200;
  auto pool = BufferManager::Create(EventSchema(), 4, 1);  // single buffer
  std::mutex handoff_mutex;
  std::vector<TupleBufferPtr> handoff;
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::thread dropper([&] {
    while (!done.load()) {
      std::vector<TupleBufferPtr> batch;
      {
        std::lock_guard<std::mutex> lock(handoff_mutex);
        batch.swap(handoff);
      }
      dropped.fetch_add(batch.size());
      batch.clear();  // recycles: wakes a blocked Acquire
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> acquirers;
  for (size_t t = 0; t < kAcquirers; ++t) {
    acquirers.emplace_back([&] {
      for (int r = 0; r < kPerThread; ++r) {
        TupleBufferPtr buf = pool->Acquire();
        ASSERT_NE(buf, nullptr);
        std::lock_guard<std::mutex> lock(handoff_mutex);
        handoff.push_back(std::move(buf));
      }
    });
  }
  for (std::thread& th : acquirers) th.join();
  done.store(true);
  dropper.join();
  handoff.clear();  // any stragglers the dropper missed
  EXPECT_EQ(pool->total_acquired(), kAcquirers * kPerThread);
  EXPECT_EQ(pool->available(), 1u);
}

}  // namespace
}  // namespace nebulameos::nebula

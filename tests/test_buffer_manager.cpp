// Tier-2 tests of BufferManager under exhaustion: Acquire blocking until a
// handle recycles, TryAcquire returning nullptr, handle-drop recycling with
// state reset (including the immutability seal), and the pool-accounting
// counter behind the zero-copy fan-out acceptance.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "nebula/buffer_manager.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build().AddInt64("key").AddDouble("value").Finish();
}

TEST(BufferManager, TryAcquireReturnsNullWhenExhausted) {
  auto pool = BufferManager::Create(EventSchema(), 4, 2);
  EXPECT_EQ(pool->available(), 2u);
  TupleBufferPtr a = pool->TryAcquire();
  TupleBufferPtr b = pool->TryAcquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool->available(), 0u);
  EXPECT_EQ(pool->TryAcquire(), nullptr);
  // Releasing one handle makes TryAcquire succeed again.
  b.reset();
  EXPECT_EQ(pool->available(), 1u);
  EXPECT_NE(pool->TryAcquire(), nullptr);
}

TEST(BufferManager, AcquireBlocksUntilRecycle) {
  auto pool = BufferManager::Create(EventSchema(), 4, 1);
  TupleBufferPtr held = pool->Acquire();
  ASSERT_NE(held, nullptr);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    TupleBufferPtr b = pool->Acquire();  // blocks: pool exhausted
    acquired.store(true);
  });
  // The waiter cannot make progress while the only buffer is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  held.reset();  // recycle unblocks the waiter
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BufferManager, HandleDropRecyclesAndResetsState) {
  auto pool = BufferManager::Create(EventSchema(), 4, 1);
  {
    TupleBufferPtr buf = pool->Acquire();
    buf->Append().SetInt64(0, 7);
    buf->set_sequence_number(42);
    buf->set_watermark(1234);
    buf->Seal();
    EXPECT_EQ(pool->available(), 0u);
  }
  EXPECT_EQ(pool->available(), 1u);
  // Reacquired buffer is empty, metadata-free, and writable again (the
  // seal lifted on recycle).
  TupleBufferPtr again = pool->Acquire();
  EXPECT_EQ(again->size(), 0u);
  EXPECT_EQ(again->sequence_number(), 0u);
  EXPECT_EQ(again->watermark(), 0);
  EXPECT_FALSE(again->sealed());
  again->Append().SetInt64(0, 1);  // must not assert
}

TEST(BufferManager, TotalAcquiredCountsEveryHandOut) {
  auto pool = BufferManager::Create(EventSchema(), 4, 2);
  EXPECT_EQ(pool->total_acquired(), 0u);
  { TupleBufferPtr a = pool->Acquire(); }
  { TupleBufferPtr b = pool->TryAcquire(); }
  EXPECT_EQ(pool->total_acquired(), 2u);
  // A failed TryAcquire does not count.
  TupleBufferPtr a = pool->Acquire();
  TupleBufferPtr b = pool->Acquire();
  EXPECT_EQ(pool->TryAcquire(), nullptr);
  EXPECT_EQ(pool->total_acquired(), 4u);
}

}  // namespace
}  // namespace nebulameos::nebula

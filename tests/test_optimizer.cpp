// Tier-2 tests of the plan optimizer: each rewrite pass in isolation
// (asserted on before/after Explain output), dependency soundness with
// unknown read sets, pass toggles, and end-to-end result equivalence of
// optimized vs. verbatim execution.

#include <gtest/gtest.h>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr MakeSource(int n = 8) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
}

// Applies one pass once and reports whether it changed the plan.
bool ApplyOnce(const RewritePassPtr& pass, LogicalPlan* plan) {
  bool changed = false;
  EXPECT_TRUE(pass->Apply(plan, &changed).ok());
  return changed;
}

// An expression that hides its reads (simulates an extension node that
// does not override ReferencedFields): passes must not move it.
class OpaquePredicate : public Expression {
 public:
  Status Bind(const Schema& schema) override {
    return inner_->Bind(schema);
  }
  Value Eval(const RecordView& rec) const override {
    return inner_->Eval(rec);
  }
  DataType output_type() const override { return DataType::kBool; }
  std::string ToString() const override { return "opaque()"; }

 private:
  ExprPtr inner_ = Gt(Attribute("value"), Lit(1.0));
};

TEST(PredicatePushdown, FilterMovesBelowIndependentMap) {
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Filter(Gt(Attribute("value"), Lit(3.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  const std::string before = plan->Explain();
  EXPECT_LT(before.find("Map("), before.find("Filter(")) << before;

  auto pass = MakePredicatePushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("Filter("), after.find("Map(")) << after;
  // Second application is a no-op (fixpoint).
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
}

TEST(PredicatePushdown, FilterStaysAboveMapThatFeedsIt) {
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Filter(Gt(Attribute("scaled"), Lit(3.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakePredicatePushdownPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("Map("), after.find("Filter(")) << after;
}

TEST(PredicatePushdown, FilterMovesBelowProjection) {
  auto plan = Query::From(MakeSource())
                  .Project({"key", "value"})
                  .Filter(Gt(Attribute("value"), Lit(3.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakePredicatePushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("Filter("), after.find("Project(")) << after;
}

TEST(PredicatePushdown, OpaquePredicateIsNeverMoved) {
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Filter(std::make_shared<OpaquePredicate>())
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakePredicatePushdownPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("Map("), after.find("Filter(")) << after;
}

// Right side of a lookup join: key/ts match the left stream, plus one
// payload field. `payload_name` lets tests provoke a collision with a
// left field.
SourcePtr MakeLookupSide(const std::string& payload_name = "weather") {
  Schema schema = Schema::Build()
                      .AddInt64("key")
                      .AddTimestamp("ts")
                      .AddDouble(payload_name)
                      .Finish();
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 3; ++i) {
    rows.push_back({Value(int64_t{i}), Value(Seconds(i)), Value(0.5 * i)});
  }
  return std::make_unique<MemorySource>(schema, std::move(rows), 1, "ts");
}

TemporalLookupJoinOptions LookupOptions(
    const std::string& payload_name = "weather") {
  TemporalLookupJoinOptions options;
  options.lookup = std::shared_ptr<Source>(MakeLookupSide(payload_name));
  options.left_key = "key";
  options.right_key = "key";
  options.left_time = "ts";
  options.right_time = "ts";
  options.max_age = Minutes(30);
  return options;
}

TEST(PredicatePushdown, ProbeOnlyFilterMovesBelowLookupJoin) {
  auto plan = Query::From(MakeSource())
                  .JoinLookup(LookupOptions())
                  .Filter(Gt(Attribute("value"), Lit(3.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string before = plan->Explain();
  EXPECT_LT(before.find("TemporalLookupJoin("), before.find("Filter("))
      << before;

  auto pass = MakePredicatePushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("Filter("), after.find("TemporalLookupJoin(")) << after;
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
}

TEST(PredicatePushdown, FilterOnJoinPayloadStaysAboveLookupJoin) {
  auto plan = Query::From(MakeSource())
                  .JoinLookup(LookupOptions())
                  .Filter(Gt(Attribute("weather"), Lit(0.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto pass = MakePredicatePushdownPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("TemporalLookupJoin("), after.find("Filter(")) << after;
}

TEST(PredicatePushdown, FilterOnCollisionRenamedFieldStaysAboveLookupJoin) {
  // Right payload collides with the left's `value`, so the join emits it
  // as `r_value`; a filter reading it depends on the join.
  auto plan = Query::From(MakeSource())
                  .JoinLookup(LookupOptions("value"))
                  .Filter(Gt(Attribute("r_value"), Lit(0.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto pass = MakePredicatePushdownPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_LT(after.find("TemporalLookupJoin("), after.find("Filter(")) << after;
}

TEST(FilterFusion, AdjacentFiltersAndCombine) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Filter(Lt(Attribute("value"), Lit(6.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ops().size(), 2u);

  auto pass = MakeFilterFusionPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  ASSERT_EQ(plan->ops().size(), 1u);
  const std::string after = plan->Explain();
  EXPECT_NE(after.find("Filter(((value > 1) AND (value < 6)))"),
            std::string::npos)
      << after;
}

TEST(FilterFusion, TripleFilterCollapsesToOne) {
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Filter(Lt(Attribute("value"), Lit(6.0)))
                  .Filter(Gt(Attribute("key"), Lit(0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeFilterFusionPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  EXPECT_EQ(plan->ops().size(), 1u);
}

TEST(MapFusion, IndependentMapsMerge) {
  auto plan = Query::From(MakeSource())
                  .Map("a", Mul(Attribute("value"), Lit(2.0)))
                  .Map("b", Add(Attribute("value"), Lit(1.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeMapFusionPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  ASSERT_EQ(plan->ops().size(), 1u);
  const std::string after = plan->Explain();
  EXPECT_NE(after.find("Map(a := (value * 2), b := (value + 1))"),
            std::string::npos)
      << after;
}

TEST(MapFusion, DependentMapsStaySeparate) {
  // The Q4 shape: the second map reads the first map's output.
  auto plan = Query::From(MakeSource())
                  .Map("a", Mul(Attribute("value"), Lit(2.0)))
                  .Map("b", Add(Attribute("a"), Lit(1.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeMapFusionPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  EXPECT_EQ(plan->ops().size(), 2u);
}

TEST(MapFusion, RewritingMapsStaySeparate) {
  // The second map overwrites a field the first one wrote.
  auto plan = Query::From(MakeSource())
                  .Map("a", Mul(Attribute("value"), Lit(2.0)))
                  .Map("a", Add(Attribute("value"), Lit(1.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeMapFusionPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  EXPECT_EQ(plan->ops().size(), 2u);
}

TEST(ProjectionPushdown, DeadMapFieldsAreEliminated) {
  auto plan = Query::From(MakeSource())
                  .MapAll({{"kept", Mul(Attribute("value"), Lit(2.0))},
                           {"dead", Add(Attribute("value"), Lit(1.0))}})
                  .Project({"key", "kept"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  const std::string before = plan->Explain();
  EXPECT_NE(before.find("dead :="), std::string::npos) << before;

  auto pass = MakeProjectionPushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_EQ(after.find("dead :="), std::string::npos) << after;
  EXPECT_NE(after.find("kept :="), std::string::npos) << after;
}

TEST(ProjectionPushdown, FullyDeadMapIsRemoved) {
  auto plan = Query::From(MakeSource())
                  .Map("dead", Mul(Attribute("value"), Lit(2.0)))
                  .Project({"key", "value"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeProjectionPushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_EQ(after.find("Map("), std::string::npos) << after;
  ASSERT_EQ(plan->ops().size(), 1u);
  EXPECT_EQ(plan->ops()[0]->kind(), LogicalOperator::Kind::kProject);
}

TEST(ProjectionPushdown, StackedDeadMapsVanishInOneApplication) {
  // After removing a fully-dead map the projection must be re-examined
  // against its new neighbour, so a chain of dead maps drains in a single
  // Apply instead of leaning on the rewriter's outer fixpoint loop.
  auto plan = Query::From(MakeSource())
                  .Map("dead1", Mul(Attribute("value"), Lit(2.0)))
                  .Map("dead2", Add(Attribute("value"), Lit(1.0)))
                  .Project({"key", "value"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeProjectionPushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  ASSERT_EQ(plan->ops().size(), 1u);
  EXPECT_EQ(plan->ops()[0]->kind(), LogicalOperator::Kind::kProject);
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
}

TEST(ProjectionPushdown, AdjacentProjectionsCollapse) {
  auto plan = Query::From(MakeSource())
                  .Project({"key", "ts", "value"})
                  .Project({"value"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeProjectionPushdownPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  ASSERT_EQ(plan->ops().size(), 1u);
  EXPECT_NE(plan->Explain().find("Project(value)"), std::string::npos)
      << plan->Explain();
}

TEST(ConstantFolding, PreEvaluatesConstantSubtrees) {
  // The ROADMAP example: Mul(Lit(3.6), Lit(2)) folds to one literal before
  // lowering, so no per-record arithmetic is spent on it.
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"),
                                     Mul(Lit(3.6), Lit(2))))
                  .Filter(Gt(Add(Lit(1.0), Lit(2.0)), Lit(0.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeConstantFoldingPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  // The map's constant factor is a single literal now.
  EXPECT_EQ(after.find("3.6"), std::string::npos) << after;
  EXPECT_NE(after.find("scaled := (value * 7.2)"), std::string::npos) << after;
  // The always-true filter disappeared entirely.
  EXPECT_EQ(after.find("Filter"), std::string::npos) << after;
  // Fixpoint: a second application is a no-op.
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
}

TEST(ConstantFolding, ShortCircuitsConstantConjunctSides) {
  auto plan = Query::From(MakeSource())
                  .Filter(And(Gt(Attribute("value"), Lit(1.0)),
                              Lt(Lit(1.0), Lit(2.0))))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeConstantFoldingPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  // The always-true conjunct dropped out; the data-dependent side stays.
  EXPECT_NE(plan->Explain().find("Filter((value > 1))"), std::string::npos)
      << plan->Explain();
}

TEST(ConstantFolding, IntegerSemanticsArePreserved) {
  // 7 / 2 evaluates as a double at runtime (kDiv never stays integral);
  // folding must produce the same 3.5, not 3.
  auto plan = Query::From(MakeSource())
                  .Map("q", Div(Lit(7), Lit(2)))
                  .Map("m", Mul(Lit(3), Lit(4)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeConstantFoldingPass();
  EXPECT_TRUE(ApplyOnce(pass, &*plan));
  const std::string after = plan->Explain();
  EXPECT_NE(after.find("q := 3.5"), std::string::npos) << after;
  EXPECT_NE(after.find("m := 12"), std::string::npos) << after;
}

TEST(ConstantFolding, LeavesFunctionExpressionsAlone) {
  // Extension/function calls may read global state (geofence catalogs);
  // they never fold, even over constant arguments.
  RegisterBuiltinFunctions();
  auto plan = Query::From(MakeSource())
                  .Map("a", Fn("abs", {Lit(-3.0)}))
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto pass = MakeConstantFoldingPass();
  EXPECT_FALSE(ApplyOnce(pass, &*plan));
  EXPECT_NE(plan->Explain().find("abs("), std::string::npos)
      << plan->Explain();
}

TEST(PlanRewriter, DefaultPipelineReachesFixpoint) {
  // Map feeds nothing downstream that survives the projection; filters
  // split across the maps fuse once pushdown brings them together.
  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(0.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Filter(Lt(Attribute("value"), Lit(6.0)))
                  .Project({"key", "value"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  const std::string after = plan->Explain();
  // Both filters fused into one AND-filter; the dead map is gone.
  EXPECT_NE(after.find("Filter(((value > 0) AND (value < 6)))"),
            std::string::npos)
      << after;
  EXPECT_EQ(after.find("Map("), std::string::npos) << after;
}

TEST(PlanRewriter, TogglesDisableIndividualPasses) {
  OptimizerOptions options;
  options.constant_folding = false;
  options.filter_fusion = false;
  options.predicate_pushdown = false;
  const PlanRewriter rewriter = PlanRewriter::Default(options);
  EXPECT_EQ(rewriter.NumPasses(), 2u);  // map fusion + projection pushdown

  auto plan = Query::From(MakeSource())
                  .Filter(Gt(Attribute("value"), Lit(1.0)))
                  .Filter(Lt(Attribute("value"), Lit(6.0)))
                  .Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  EXPECT_EQ(plan->ops().size(), 2u);  // filters untouched
}

TEST(PlanRewriter, DisabledRewriterIsEmpty) {
  OptimizerOptions options;
  options.enable = false;
  EXPECT_EQ(PlanRewriter::Default(options).NumPasses(), 0u);
}

TEST(PlanRewriter, OptimizedAndVerbatimRunsAgree) {
  // The same query, submitted through an optimizing and a verbatim engine,
  // must produce identical rows.
  auto build = [] {
    return Query::From(MakeSource(30))
        .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
        .Map("shifted", Add(Attribute("value"), Lit(10.0)))
        .Filter(Gt(Attribute("value"), Lit(4.0)))
        .Filter(Lt(Attribute("value"), Lit(20.0)))
        .Project({"key", "scaled"})
        .Build();
  };
  auto run = [&](bool optimize) {
    EngineOptions options;
    options.optimizer.enable = optimize;
    NodeEngine engine(options);
    auto plan = build();
    EXPECT_TRUE(plan.ok());
    auto out = plan->OutputSchema();
    EXPECT_TRUE(out.ok());
    auto sink = std::make_shared<CollectSink>(*out);
    plan->SetSink(sink);
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return sink->Rows();
  };
  const auto optimized = run(true);
  const auto verbatim = run(false);
  ASSERT_EQ(optimized.size(), verbatim.size());
  ASSERT_EQ(optimized.size(), 15u);  // values 5..19
  for (size_t i = 0; i < optimized.size(); ++i) {
    ASSERT_EQ(optimized[i].size(), verbatim[i].size());
    for (size_t j = 0; j < optimized[i].size(); ++j) {
      EXPECT_EQ(ValueAsDouble(optimized[i][j]), ValueAsDouble(verbatim[i][j]));
    }
  }
}

}  // namespace
}  // namespace nebulameos::nebula

// Tier-2 tests of multi-sink DAG plans: the Branch/FanOut/Split builder
// surface, DAG-aware validation, tree-rendered Explain, shared-prefix
// execution through the engine (per-path operator stats, per-sink emitted
// counts), DAG-aware optimizer rules (filter hoisting, union projection),
// and optimized-vs-verbatim result equivalence.

#include <gtest/gtest.h>

#include <algorithm>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

SourcePtr MakeSource(int n = 10) {
  return std::make_unique<MemorySource>(EventSchema(), MakeRows(n), 1, "ts");
}

// Builds the canonical two-branch plan used across these tests: a shared
// filter prefix, branch 0 keeps high values, branch 1 counts per key.
Result<LogicalPlan> MakeFanOutPlan(int n,
                                   std::shared_ptr<CollectSink>* high_sink,
                                   std::shared_ptr<CollectSink>* agg_sink) {
  *high_sink = std::make_shared<CollectSink>(
      Schema::Build().AddInt64("key").AddDouble("value").Finish());
  *agg_sink = std::make_shared<CollectSink>(Schema::Build()
                                                .AddInt64("key")
                                                .AddTimestamp("window_start")
                                                .AddTimestamp("window_end")
                                                .AddInt64("n")
                                                .Finish());
  SplitQuery split = Query::From(MakeSource(n))
                         .Filter(Ge(Attribute("value"), Lit(2.0)))
                         .Split(2);
  std::move(split[0])
      .Filter(Ge(Attribute("value"), Lit(6.0)))
      .Project({"key", "value"})
      .To(*high_sink);
  std::move(split[1])
      .KeyBy("key")
      .TumblingWindow(Seconds(100), "ts")
      .Aggregate({AggregateSpec::Count("n")})
      .To(*agg_sink);
  return std::move(split).Build();
}

TEST(FanOutBuilder, BranchAndFanOutEmitDagPlan) {
  auto alert = std::make_shared<CountingSink>(EventSchema());
  auto archive = std::make_shared<CountingSink>(EventSchema());
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(5.0)))
                         .To(alert));
  branches.push_back(std::move(Query::Branch()).To(archive));
  auto plan = Query::From(MakeSource())
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .FanOut(std::move(branches))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->HasFanOut());
  EXPECT_EQ(plan->NumLeaves(), 2u);
  EXPECT_TRUE(plan->Validate().ok()) << plan->Validate().ToString();
  // The root chain: Map then the terminal FanOut.
  ASSERT_EQ(plan->ops().size(), 2u);
  EXPECT_EQ(plan->ops()[0]->kind(), LogicalOperator::Kind::kMap);
  EXPECT_EQ(plan->ops()[1]->kind(), LogicalOperator::Kind::kFanOut);
  // Sinks are addressable by DAG path.
  const auto sinks = plan->Sinks();
  ASSERT_EQ(sinks.size(), 2u);
  EXPECT_EQ(sinks[0].first, "0");
  EXPECT_EQ(sinks[0].second.get(), alert.get());
  EXPECT_EQ(sinks[1].first, "1");
  EXPECT_EQ(sinks[1].second.get(), archive.get());
  // A fan-out plan has no single sink or single output schema.
  EXPECT_EQ(plan->sink(), nullptr);
  EXPECT_FALSE(plan->OutputSchema().ok());
}

TEST(FanOutBuilder, SplitIsSugarOverBranchFanOut) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->Validate().ok());
  EXPECT_EQ(plan->NumLeaves(), 2u);
}

TEST(FanOutBuilder, BranchWithOwnSourceIsRejected) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::From(MakeSource()))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("Branch()"), std::string::npos)
      << plan.status().ToString();
}

TEST(FanOutBuilder, OpenWindowInBranchIsRejected) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .TumblingWindow(Seconds(5), "ts"));
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("Aggregate"), std::string::npos);
}

TEST(FanOutValidate, EveryPathNeedsASink) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(
      std::move(Query::Branch()).Filter(Ge(Attribute("value"), Lit(0.0))));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const Status st = plan->Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no sink"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("branch 1"), std::string::npos) << st.ToString();
}

TEST(FanOutValidate, FanOutNeedsTwoBranches) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate().ok());
}

TEST(FanOutValidate, FanOutMustBeTerminal) {
  // Direct IR construction can place nodes after a fan-out; Validate
  // rejects it.
  LogicalPlan plan;
  plan.SetSource(MakeSource());
  std::vector<FanOutNode::Branch> branches(2);
  branches[0].push_back(std::make_unique<SinkNode>(
      std::make_shared<CountingSink>(EventSchema())));
  branches[1].push_back(std::make_unique<SinkNode>(
      std::make_shared<CountingSink>(EventSchema())));
  plan.Append(std::make_unique<FanOutNode>(std::move(branches)));
  plan.SetSink(std::make_shared<CountingSink>(EventSchema()));
  const Status st = plan.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("terminal"), std::string::npos) << st.ToString();
}

TEST(FanOutValidate, DanglingKeyByInsideBranchIsCaught) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .KeyBy("key")
                         .Project({"value"})
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const Status st = plan->Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("KeyBy(key)"), std::string::npos)
      << st.ToString();
}

TEST(FanOutExplain, RendersTreeWithSharedPrefixAnnotation) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->Explain();
  EXPECT_NE(text.find("-> Filter((value >= 2))  [shared]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("-> FanOut(2 branches)"), std::string::npos) << text;
  EXPECT_NE(text.find("[branch 0]"), std::string::npos) << text;
  EXPECT_NE(text.find("[branch 1]"), std::string::npos) << text;
  // Branch nodes are indented under their branch label.
  EXPECT_NE(text.find("   -> Filter((value >= 6))"), std::string::npos)
      << text;
  EXPECT_NE(text.find("   -> WindowAgg("), std::string::npos) << text;
}

TEST(FanOutSchemas, OutputSchemasReportEveryLeaf) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  auto schemas = plan->OutputSchemas();
  ASSERT_TRUE(schemas.ok()) << schemas.status().ToString();
  ASSERT_EQ(schemas->size(), 2u);
  EXPECT_EQ((*schemas)[0].first, "0");
  EXPECT_EQ((*schemas)[0].second.field(1).name, "value");
  EXPECT_EQ((*schemas)[1].first, "1");
  EXPECT_EQ((*schemas)[1].second.field(3).name, "n");
}

TEST(FanOutSchemas, SetLeafSinksRejectsCountMismatch) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(
      plan->SetLeafSinks({std::make_shared<CountingSink>(EventSchema())})
          .ok());
}

// The acceptance scenario: one submission, shared prefix executed once,
// per-path stats, per-sink emitted counts.
TEST(FanOutEngine, SharedPrefixExecutesOncePerBuffer) {
  std::shared_ptr<CollectSink> high, agg;
  auto plan = MakeFanOutPlan(10, &high, &agg);
  ASSERT_TRUE(plan.ok());
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());

  // Branch 0: values 6..9. Branch 1: count of values 2..9 per key.
  ASSERT_EQ(high->RowCount(), 4u);
  int64_t total_counted = 0;
  for (const auto& row : agg->Rows()) total_counted += ValueAsInt64(row[3]);
  EXPECT_EQ(total_counted, 8);

  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  // One stream's worth ingested — not one per branch.
  EXPECT_EQ(stats->events_ingested, 10u);
  // The shared prefix filter ran once over all 10 events; each branch
  // operator is keyed by its DAG path and saw the prefix output (8).
  ASSERT_FALSE(stats->operator_stats.empty());
  EXPECT_EQ(stats->operator_stats[0].first, "Filter");
  EXPECT_EQ(stats->operator_stats[0].second.events_in, 10u);
  EXPECT_EQ(stats->operator_stats[0].second.events_out, 8u);
  uint64_t branch_filter_in = 0, branch_window_in = 0;
  for (const auto& [name, op] : stats->operator_stats) {
    if (name == "0/Filter") branch_filter_in = op.events_in;
    if (name == "1/WindowAgg") branch_window_in = op.events_in;
  }
  EXPECT_EQ(branch_filter_in, 8u);
  EXPECT_EQ(branch_window_in, 8u);
  // Per-sink emitted counts, keyed by path; the scalar total sums them.
  ASSERT_EQ(stats->sink_stats.size(), 2u);
  EXPECT_EQ(stats->sink_stats[0].path, "0");
  EXPECT_EQ(stats->sink_stats[0].events_emitted, 4u);
  EXPECT_EQ(stats->sink_stats[1].path, "1");
  EXPECT_EQ(stats->sink_stats[1].events_emitted, agg->RowCount());
  EXPECT_EQ(stats->events_emitted,
            stats->sink_stats[0].events_emitted +
                stats->sink_stats[1].events_emitted);
}

TEST(FanOutEngine, OptimizedAndVerbatimSinkContentsAgree) {
  auto run = [](bool optimize) {
    EngineOptions options;
    options.optimizer.enable = optimize;
    NodeEngine engine(options);
    std::shared_ptr<CollectSink> high, agg;
    auto plan = MakeFanOutPlan(30, &high, &agg);
    EXPECT_TRUE(plan.ok());
    auto id = engine.Submit(std::move(*plan));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.RunToCompletion(*id).ok());
    return std::make_pair(high->Rows(), agg->Rows());
  };
  auto optimized = run(true);
  auto verbatim = run(false);
  // Compared as row sets: partitioned execution (worker_threads > 1)
  // interleaves per-key window emissions in no specified order.
  std::sort(optimized.second.begin(), optimized.second.end());
  std::sort(verbatim.second.begin(), verbatim.second.end());
  ASSERT_EQ(optimized.first.size(), verbatim.first.size());
  ASSERT_EQ(optimized.second.size(), verbatim.second.size());
  // Variant equality compares text cells for real (ValueAsDouble would
  // map every string to 0.0 and pass vacuously).
  for (size_t i = 0; i < optimized.first.size(); ++i) {
    ASSERT_EQ(optimized.first[i].size(), verbatim.first[i].size());
    for (size_t j = 0; j < optimized.first[i].size(); ++j) {
      EXPECT_TRUE(optimized.first[i][j] == verbatim.first[i][j])
          << "alert row " << i << " col " << j;
    }
  }
  for (size_t i = 0; i < optimized.second.size(); ++i) {
    ASSERT_EQ(optimized.second[i].size(), verbatim.second[i].size());
    for (size_t j = 0; j < optimized.second[i].size(); ++j) {
      EXPECT_TRUE(optimized.second[i][j] == verbatim.second[i][j])
          << "agg row " << i << " col " << j;
    }
  }
}

TEST(FanOutEngine, NestedFanOutExecutes) {
  auto a = std::make_shared<CountingSink>(EventSchema());
  auto b = std::make_shared<CountingSink>(EventSchema());
  auto c = std::make_shared<CountingSink>(EventSchema());
  std::vector<Query> inner;
  inner.push_back(std::move(Query::Branch())
                      .Filter(Ge(Attribute("value"), Lit(8.0)))
                      .To(b));
  inner.push_back(std::move(Query::Branch()).To(c));
  std::vector<Query> outer;
  outer.push_back(std::move(Query::Branch()).To(a));
  outer.push_back(std::move(Query::Branch())
                      .Filter(Ge(Attribute("value"), Lit(5.0)))
                      .FanOut(std::move(inner)));
  auto plan = Query::From(MakeSource(10)).FanOut(std::move(outer)).Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->NumLeaves(), 3u);
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  EXPECT_EQ(a->events(), 10u);
  EXPECT_EQ(b->events(), 2u);  // values 8, 9
  EXPECT_EQ(c->events(), 5u);  // values 5..9
  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->sink_stats.size(), 3u);
  EXPECT_EQ(stats->sink_stats[0].path, "0");
  EXPECT_EQ(stats->sink_stats[1].path, "1.0");
  EXPECT_EQ(stats->sink_stats[2].path, "1.1");
}

TEST(FanOutOptimizer, FilterDemandedByEveryBranchHoistsAboveFanOut) {
  std::vector<Query> branches;
  // Sinks declare the schema their branch actually delivers — the plan
  // verifier's branch-schema-coherence rule (run by verify-each during
  // Rewrite) rejects a declared/derived mismatch.
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(3.0)))
                         .Project({"key"})
                         .To(std::make_shared<CountingSink>(
                             Schema::Build().AddInt64("key").Finish())));
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(3.0)))
                         .Project({"value"})
                         .To(std::make_shared<CountingSink>(
                             Schema::Build().AddDouble("value").Finish())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  const std::string after = plan->Explain();
  // The filter now sits in the shared prefix (annotated), and neither
  // branch re-evaluates it.
  EXPECT_NE(after.find("Filter((value >= 3))  [shared]"), std::string::npos)
      << after;
  EXPECT_EQ(after.find("   -> Filter"), std::string::npos) << after;
}

TEST(FanOutOptimizer, HoistingProvesIdentityStructurallyNotByRendering) {
  // A field reference and a string literal with the same spelling render
  // identically ("(value == ts)"), but are semantically different; the
  // hoist must compare structure, not text.
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .Filter(Eq(Attribute("value"), Attribute("ts")))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(std::move(Query::Branch())
                         .Filter(Eq(Attribute("value"),
                                    Lit(std::string("ts"))))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  EXPECT_EQ(plan->Explain().find("[shared]"), std::string::npos)
      << plan->Explain();
}

TEST(FanOutOptimizer, DivergentBranchFiltersStayPut) {
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(3.0)))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(7.0)))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  const std::string after = plan->Explain();
  // Only one branch demands each predicate: nothing hoists.
  EXPECT_EQ(after.find("[shared]"), std::string::npos) << after;
  EXPECT_NE(after.find("   -> Filter((value >= 3))"), std::string::npos)
      << after;
  EXPECT_NE(after.find("   -> Filter((value >= 7))"), std::string::npos)
      << after;
}

TEST(FanOutOptimizer, ProjectionUnionNarrowsTheSharedPrefix) {
  std::vector<Query> branches;
  // Schemas match each branch's projection (branch-schema-coherence).
  branches.push_back(std::move(Query::Branch())
                         .Project({"key", "value"})
                         .To(std::make_shared<CountingSink>(Schema::Build()
                                                                .AddInt64("key")
                                                                .AddDouble("value")
                                                                .Finish())));
  branches.push_back(std::move(Query::Branch())
                         .Project({"value", "ts"})
                         .To(std::make_shared<CountingSink>(
                             Schema::Build()
                                 .AddDouble("value")
                                 .AddTimestamp("ts")
                                 .Finish())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  const std::string after = plan->Explain();
  // The shared prefix narrows to the union of branch demands; each branch
  // keeps its exact projection (order matters per branch).
  EXPECT_NE(after.find("-> Project(key, value, ts)  [shared]"),
            std::string::npos)
      << after;
  EXPECT_NE(after.find("   -> Project(key, value)"), std::string::npos)
      << after;
  EXPECT_NE(after.find("   -> Project(value, ts)"), std::string::npos)
      << after;
}

TEST(FanOutOptimizer, OptimizerRecursesIntoBranches) {
  // Two adjacent filters inside one branch fuse even though they sit
  // below a fan-out.
  std::vector<Query> branches;
  branches.push_back(std::move(Query::Branch())
                         .Filter(Ge(Attribute("value"), Lit(1.0)))
                         .Filter(Lt(Attribute("value"), Lit(9.0)))
                         .To(std::make_shared<CountingSink>(EventSchema())));
  branches.push_back(std::move(Query::Branch())
                         .To(std::make_shared<CountingSink>(EventSchema())));
  auto plan = Query::From(MakeSource()).FanOut(std::move(branches)).Build();
  ASSERT_TRUE(plan.ok());
  const PlanRewriter rewriter = PlanRewriter::Default();
  ASSERT_TRUE(rewriter.Rewrite(&*plan).ok());
  EXPECT_NE(plan->Explain().find(
                "Filter(((value >= 1) AND (value < 9)))"),
            std::string::npos)
      << plan->Explain();
}

}  // namespace
}  // namespace nebulameos::nebula

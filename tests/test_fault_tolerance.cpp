// Fault-tolerance tests: fault-profile parsing and combination, seeded
// injector determinism, the channel retransmit protocol (drop repair,
// disconnect, retain-queue shedding), engine-level row-set equivalence of
// lossy placed runs against fault-free references (reorder, duplicates,
// env-configured profiles), watermark monotonicity through the repair
// path, stateful-operator late-record guards, and worker-pool morsel
// shedding.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include "common/logging.hpp"
#include "nebula/engine.hpp"
#include "nebula/fault.hpp"
#include "nebula/worker_pool.hpp"

namespace nebulameos::nebula {
namespace {

constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
constexpr int kCloud = 1;  // cloud worker

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(int64_t{i % 3}), Value(Seconds(i)),
                    Value(static_cast<double>(i))});
  }
  return rows;
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

// A placed linear plan (edge filter+map, cloud sink) whose node cut
// lowers to exactly one network channel.
Result<LogicalPlan> MakePlacedLinearPlan(int n,
                                         std::shared_ptr<CollectSink>* sink) {
  auto plan = Query::From(std::make_unique<MemorySource>(EventSchema(),
                                                         MakeRows(n), 1, "ts"))
                  .Filter(Ge(Attribute("value"), Lit(2.0)))
                  .Map("scaled", Mul(Attribute("value"), Lit(2.0)))
                  .Build();
  if (!plan.ok()) return plan;
  NM_ASSIGN_OR_RETURN(const Schema schema, plan->OutputSchema());
  *sink = std::make_shared<CollectSink>(schema);
  plan->SetSink(*sink);
  plan->set_source_placement(kEdge);
  plan->mutable_ops()[0]->set_placement(kEdge);
  plan->mutable_ops()[1]->set_placement(kEdge);
  plan->mutable_ops()[2]->set_placement(kCloud);
  return plan;
}

// A placed windowed plan: the channel crosses mid-chain, upstream of the
// cloud-side window aggregation — reordered/lossy frames hit a stateful
// operator.
Result<LogicalPlan> MakePlacedWindowPlan(int n,
                                         std::shared_ptr<CollectSink>* sink) {
  auto plan = Query::From(std::make_unique<MemorySource>(EventSchema(),
                                                         MakeRows(n), 1, "ts"))
                  .Filter(Ge(Attribute("value"), Lit(0.0)))
                  .KeyBy("key")
                  .TumblingWindow(Seconds(10), "ts")
                  .Aggregate({AggregateSpec::Count("n")})
                  .Build();
  if (!plan.ok()) return plan;
  NM_ASSIGN_OR_RETURN(const Schema schema, plan->OutputSchema());
  *sink = std::make_shared<CollectSink>(schema);
  plan->SetSink(*sink);
  plan->set_source_placement(kEdge);
  auto& ops = plan->mutable_ops();
  ops[0]->set_placement(kEdge);  // Filter
  for (size_t i = 1; i < ops.size(); ++i) ops[i]->set_placement(kCloud);
  return plan;
}

// Overrides NM_FAULT_PROFILE for one test when the fault-injection gate
// (CHECK_FAULTS=1) armed it process-wide: the env profile takes
// precedence over `EngineOptions::faults.profile`, so a test scripting
// its own faults must speak through the same channel to stay
// deterministic under the gate. No-op when the gate is off — the test's
// EngineOptions profile then applies, covering that path too.
class ScopedProfileOverride {
 public:
  explicit ScopedProfileOverride(const char* spec) {
    const char* outer = std::getenv("NM_FAULT_PROFILE");
    if (outer == nullptr) return;
    saved_ = outer;
    active_ = true;
    setenv("NM_FAULT_PROFILE", spec, 1);
  }
  ~ScopedProfileOverride() {
    if (active_) setenv("NM_FAULT_PROFILE", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
  bool active_ = false;
};

// Runs a (possibly placed) plan on a fresh engine with the given fault
// options, small buffers so runs ship many frames, optimizer off.
struct RunResult {
  Status status;
  DeploymentReport deployment;
};

RunResult RunPlan(LogicalPlan plan, const Topology* topology,
                  const FaultToleranceOptions& faults) {
  EngineOptions options;
  options.optimizer.enable = false;
  options.topology = topology;
  options.tuples_per_buffer = 8;
  options.faults = faults;
  NodeEngine engine(options);
  auto id = engine.Submit(std::move(plan));
  if (!id.ok()) return {id.status(), {}};
  RunResult result;
  result.status = engine.RunToCompletion(*id);
  auto report = engine.Deployment(*id);
  if (report.ok()) result.deployment = *report;
  return result;
}

// --- Profile parsing and combination -----------------------------------

TEST(FaultProfile, ParsesFullSpec) {
  auto profile = ParseFaultProfile(
      "drop=0.01,dup=0.002,reorder=0.005,delay=0.01,disconnect_after=100,"
      "seed=42");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_DOUBLE_EQ(profile->drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(profile->duplicate_rate, 0.002);
  EXPECT_DOUBLE_EQ(profile->reorder_rate, 0.005);
  EXPECT_DOUBLE_EQ(profile->delay_rate, 0.01);
  EXPECT_EQ(profile->disconnect_after_frames, 100u);
  EXPECT_EQ(profile->seed, 42u);
  EXPECT_TRUE(profile->Any());
}

TEST(FaultProfile, ParsesSubsetAndRejectsGarbage) {
  auto subset = ParseFaultProfile("drop=0.5");
  ASSERT_TRUE(subset.ok());
  EXPECT_DOUBLE_EQ(subset->drop_rate, 0.5);
  EXPECT_DOUBLE_EQ(subset->duplicate_rate, 0.0);
  EXPECT_FALSE(ParseFaultProfile("drop=1.5").ok());       // out of range
  EXPECT_FALSE(ParseFaultProfile("dorp=0.1").ok());       // unknown key
  EXPECT_FALSE(ParseFaultProfile("drop=banana").ok());    // not a number
}

TEST(FaultProfile, CombinesAsIndependentSources) {
  FaultProfile a;
  a.drop_rate = 0.5;
  a.disconnect_after_frames = 100;
  a.seed = 1;
  FaultProfile b;
  b.drop_rate = 0.5;
  b.reorder_rate = 0.25;
  b.disconnect_after_frames = 40;
  b.seed = 2;
  const FaultProfile c = CombineFaultProfiles(a, b);
  EXPECT_DOUBLE_EQ(c.drop_rate, 0.75);  // 1 - 0.5 * 0.5
  EXPECT_DOUBLE_EQ(c.reorder_rate, 0.25);
  EXPECT_EQ(c.disconnect_after_frames, 40u);  // smaller non-zero wins
  EXPECT_NE(c.seed, a.seed);
  EXPECT_NE(c.seed, b.seed);
}

TEST(FaultInjector, SameSeedSameFateStream) {
  FaultProfile profile;
  profile.drop_rate = 0.2;
  profile.duplicate_rate = 0.2;
  profile.reorder_rate = 0.2;
  profile.seed = 7;
  FaultInjector a(profile), b(profile);
  bool any_fault = false;
  for (int i = 0; i < 200; ++i) {
    const auto fate = a.NextFate();
    EXPECT_EQ(fate, b.NextFate()) << "diverged at frame " << i;
    any_fault = any_fault || fate != FaultInjector::Fate::kDeliver;
  }
  EXPECT_TRUE(any_fault);  // rates this high must fire within 200 draws
  // A different seed draws a different stream.
  profile.seed = 8;
  FaultInjector c(profile);
  FaultInjector d(FaultProfile{0.2, 0.2, 0.2, 0.0, 0, 7});
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (c.NextFate() != d.NextFate()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// --- Channel-level retransmit protocol ---------------------------------

std::shared_ptr<NetworkChannel> MakeLossyChannel(const Topology& topo,
                                                 double drop_rate,
                                                 const RetryOptions& retry) {
  auto channel = NetworkChannel::Connect(topo, kEdge, kCloud);
  EXPECT_TRUE(channel.ok());
  FaultProfile profile;
  profile.drop_rate = drop_rate;
  profile.seed = 11;
  (*channel)->ConfigureFaults(profile, retry);
  return *channel;
}

std::vector<uint8_t> Frame(uint8_t tag) { return {tag, tag, tag}; }

TEST(NetworkChannelFaults, DropsAreRepairedByRetransmit) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  auto channel = MakeLossyChannel(topo, /*drop_rate=*/1.0, RetryOptions{});
  for (uint8_t i = 0; i < 5; ++i) {
    channel->Send(i, Frame(i), 3, 1);
  }
  // Everything dropped in transit...
  std::vector<uint8_t> frame;
  EXPECT_FALSE(channel->Receive(&frame));
  EXPECT_EQ(channel->frames_dropped(), 5u);
  EXPECT_EQ(channel->seq_end(), 5u);
  EXPECT_EQ(channel->health(), HealthState::kDegraded);
  // ...but every frame is recoverable from the retain queue, in order.
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel->RequestRetransmit(i).ok());
    ASSERT_TRUE(channel->Receive(&frame));
    EXPECT_EQ(frame, Frame(i));
    channel->Ack(i);
  }
  EXPECT_EQ(channel->retransmits(), 5u);
  // Acked frames are no longer retained.
  EXPECT_EQ(channel->RequestRetransmit(3).code(), StatusCode::kOk);
}

TEST(NetworkChannelFaults, RetransmitAttemptsAreCapped) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  RetryOptions retry;
  retry.max_attempts = 2;
  auto channel = MakeLossyChannel(topo, 1.0, retry);
  channel->Send(0, Frame(0), 3, 1);
  std::vector<uint8_t> frame;
  ASSERT_TRUE(channel->RequestRetransmit(0).ok());
  ASSERT_TRUE(channel->Receive(&frame));
  ASSERT_TRUE(channel->RequestRetransmit(0).ok());
  ASSERT_TRUE(channel->Receive(&frame));
  EXPECT_EQ(channel->RequestRetransmit(0).code(),
            StatusCode::kResourceExhausted);
}

TEST(NetworkChannelFaults, DisconnectKillsRecovery) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  auto channel = NetworkChannel::Connect(topo, kEdge, kCloud);
  ASSERT_TRUE(channel.ok());
  FaultProfile profile;
  profile.disconnect_after_frames = 2;
  (*channel)->ConfigureFaults(profile, RetryOptions{});
  for (uint8_t i = 0; i < 4; ++i) {
    (*channel)->Send(i, Frame(i), 3, 1);
  }
  EXPECT_TRUE((*channel)->disconnected());
  EXPECT_EQ((*channel)->health(), HealthState::kDisconnected);
  // In-flight and retained frames died with the channel; later sends were
  // counted lost.
  std::vector<uint8_t> frame;
  EXPECT_FALSE((*channel)->Receive(&frame));
  EXPECT_EQ((*channel)->RequestRetransmit(0).code(),
            StatusCode::kUnavailable);
  EXPECT_GE((*channel)->frames_lost(), 2u);
}

TEST(NetworkChannelFaults, RetainQueueShedsByPolicy) {
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  RetryOptions retry;
  retry.retain_limit = 2;
  retry.shed_policy = ShedPolicy::kDropOldest;
  auto channel = MakeLossyChannel(topo, 1.0, retry);
  for (uint8_t i = 0; i < 5; ++i) {
    channel->Send(i, Frame(i), 3, 1);
  }
  // Only the 2 newest frames are still retained; the shed ones are
  // DataLoss to a retransmit request.
  EXPECT_EQ(channel->frames_shed(), 3u);
  EXPECT_EQ(channel->RequestRetransmit(0).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(channel->RequestRetransmit(3).ok());
  EXPECT_TRUE(channel->RequestRetransmit(4).ok());
}

TEST(NetworkChannelFaults, LossyLinkArmsChannelOnConnect) {
  Topology topo;
  ASSERT_TRUE(topo.AddNode({0, NodeKind::kEdgeWorker, "edge", 1.0}).ok());
  ASSERT_TRUE(topo.AddNode({1, NodeKind::kCloudWorker, "cloud", 1.0}).ok());
  TopologyLink link{0, 1, 1e6, Millis(1)};
  link.fault.drop_rate = 1.0;
  link.fault.seed = 5;
  ASSERT_TRUE(topo.AddLink(link).ok());
  auto channel = NetworkChannel::Connect(topo, 0, 1);
  ASSERT_TRUE(channel.ok());
  // No ConfigureFaults call: the link profile alone arms the injector.
  EXPECT_TRUE((*channel)->fault_profile().Any());
  (*channel)->Send(0, Frame(0), 3, 1);
  std::vector<uint8_t> frame;
  EXPECT_FALSE((*channel)->Receive(&frame));
  EXPECT_EQ((*channel)->frames_dropped(), 1u);
  // And the retained copy still repairs it.
  EXPECT_TRUE((*channel)->RequestRetransmit(0).ok());
  EXPECT_TRUE((*channel)->Receive(&frame));
}

// --- Engine-level delivery hardening -----------------------------------

// Reference rows of the linear plan, fault-free. "seed=1" parses to a
// profile with no fault behaviour — the reference stays clean even when
// the gate armed a lossy env profile.
std::vector<std::vector<Value>> LinearReference(int n) {
  ScopedProfileOverride clean("seed=1");
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedLinearPlan(n, &sink);
  EXPECT_TRUE(plan.ok());
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  RunResult run = RunPlan(std::move(*plan), &topo, {});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.deployment.health, HealthState::kHealthy);
  return Sorted(sink->Rows());
}

TEST(EngineFaultTolerance, LossyRunMatchesFaultFreeRowSet) {
  const std::vector<std::vector<Value>> reference = LinearReference(200);
  ASSERT_FALSE(reference.empty());

  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedLinearPlan(200, &sink);
  ASSERT_TRUE(plan.ok());
  ScopedProfileOverride lossy(
      "drop=0.2,dup=0.1,reorder=0.1,delay=0.1,seed=1234");
  FaultToleranceOptions faults;
  faults.profile.drop_rate = 0.2;
  faults.profile.duplicate_rate = 0.1;
  faults.profile.reorder_rate = 0.1;
  faults.profile.delay_rate = 0.1;
  faults.profile.seed = 1234;
  RunResult run = RunPlan(std::move(*plan), &topo, faults);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  // Exactly the fault-free rows: dropped frames were retransmitted,
  // duplicates suppressed, reordered/delayed frames released in order.
  EXPECT_EQ(Sorted(sink->Rows()), reference);
  EXPECT_EQ(run.deployment.health, HealthState::kDegraded);
  EXPECT_GT(run.deployment.frames_dropped, 0u);
  EXPECT_GT(run.deployment.retransmits, 0u);
  EXPECT_EQ(run.deployment.frames_lost, 0u);
}

TEST(EngineFaultTolerance, DuplicateFramesAreIdempotent) {
  const std::vector<std::vector<Value>> reference = LinearReference(200);
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedLinearPlan(200, &sink);
  ASSERT_TRUE(plan.ok());
  ScopedProfileOverride dup("dup=0.5,seed=99");
  FaultToleranceOptions faults;
  faults.profile.duplicate_rate = 0.5;
  faults.profile.seed = 99;
  RunResult run = RunPlan(std::move(*plan), &topo, faults);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(Sorted(sink->Rows()), reference);
  EXPECT_GT(run.deployment.frames_duplicated, 0u);
  EXPECT_GT(run.deployment.duplicates_suppressed, 0u);
}

TEST(EngineFaultTolerance, AdversarialReorderKeepsWindowsExact) {
  // Reference: the windowed plan, fault-free.
  std::shared_ptr<CollectSink> ref_sink;
  auto ref_plan = MakePlacedWindowPlan(200, &ref_sink);
  ASSERT_TRUE(ref_plan.ok());
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  {
    ScopedProfileOverride clean("seed=1");
    RunResult ref_run = RunPlan(std::move(*ref_plan), &topo, {});
    ASSERT_TRUE(ref_run.status.ok()) << ref_run.status.ToString();
  }
  const auto reference = Sorted(ref_sink->Rows());
  ASSERT_FALSE(reference.empty());

  // Adversarial: heavy reorder + delay + drop upstream of the stateful
  // window operator. The repair buffer releases frames in sequence order
  // and the per-channel watermark clamp keeps watermarks monotonic, so
  // the window aggregation fires identically (the regression this guards:
  // a repaired frame carrying an older stored watermark must not pull the
  // operator's clock backwards and re-open fired panes).
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedWindowPlan(200, &sink);
  ASSERT_TRUE(plan.ok());
  ScopedProfileOverride reorder("reorder=0.4,delay=0.3,drop=0.1,seed=4321");
  FaultToleranceOptions faults;
  faults.profile.reorder_rate = 0.4;
  faults.profile.delay_rate = 0.3;
  faults.profile.drop_rate = 0.1;
  faults.profile.seed = 4321;
  RunResult run = RunPlan(std::move(*plan), &topo, faults);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(Sorted(sink->Rows()), reference);
  EXPECT_GT(run.deployment.frames_reordered + run.deployment.frames_delayed,
            0u);
  EXPECT_EQ(run.deployment.frames_lost, 0u);
}

TEST(EngineFaultTolerance, EnvProfileOverridesEngineOptions) {
  const std::vector<std::vector<Value>> reference = LinearReference(100);
  const char* outer = std::getenv("NM_FAULT_PROFILE");
  const std::string saved = outer != nullptr ? outer : "";
  ASSERT_EQ(setenv("NM_FAULT_PROFILE", "drop=1.0,seed=3", 1), 0);
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedLinearPlan(100, &sink);
  ASSERT_TRUE(plan.ok());
  // Engine options say "reliable"; the env profile drops every frame.
  RunResult run = RunPlan(std::move(*plan), &topo, {});
  if (outer != nullptr) {
    setenv("NM_FAULT_PROFILE", saved.c_str(), 1);
  } else {
    unsetenv("NM_FAULT_PROFILE");
  }
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(Sorted(sink->Rows()), reference);
  EXPECT_GT(run.deployment.frames_dropped, 0u);
  EXPECT_EQ(run.deployment.frames_dropped, run.deployment.retransmits);
}

TEST(EngineFaultTolerance, MidStreamDisconnectFailsWithChannelStatus) {
  SetLogLevel(LogLevel::kOff);
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedWindowPlan(200, &sink);
  ASSERT_TRUE(plan.ok());
  ScopedProfileOverride disconnect("disconnect_after=3,seed=1");
  FaultToleranceOptions faults;
  faults.profile.disconnect_after_frames = 3;  // dies mid-window
  RunResult run = RunPlan(std::move(*plan), &topo, faults);
  EXPECT_EQ(run.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(run.status.message().find("network channel"), std::string::npos);
  EXPECT_EQ(run.deployment.health, HealthState::kDisconnected);
  SetLogLevel(LogLevel::kWarn);
}

TEST(EngineFaultTolerance, ShedPolicySkipsUnrecoverableGaps) {
  SetLogLevel(LogLevel::kOff);
  const Topology topo = Topology::SncbReference(1, 1e6, Millis(1));
  std::shared_ptr<CollectSink> sink;
  auto plan = MakePlacedLinearPlan(200, &sink);
  ASSERT_TRUE(plan.ok());
  // The env override carries the profile; the shed policy rides on the
  // engine options either way (env never touches RetryOptions).
  ScopedProfileOverride disconnect("disconnect_after=3,seed=1");
  FaultToleranceOptions faults;
  faults.profile.disconnect_after_frames = 3;
  faults.retry.shed_policy = ShedPolicy::kDropOldest;
  RunResult run = RunPlan(std::move(*plan), &topo, faults);
  // Degradation instead of failure: the run completes, the missing tail
  // is counted, and what did arrive is a subset of the reference rows.
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(run.deployment.frames_lost, 0u);
  const auto rows = Sorted(sink->Rows());
  const auto reference = LinearReference(200);
  EXPECT_LT(rows.size(), reference.size());
  EXPECT_TRUE(std::includes(reference.begin(), reference.end(), rows.begin(),
                            rows.end()));
  SetLogLevel(LogLevel::kWarn);
}

// --- Stateful-operator monotonicity guards -----------------------------

TEST(MonotonicityGuards, WindowAggShedsLateRecordsInsteadOfRefiring) {
  // Rows 0..15 advance the watermark past the [0,10s) pane; the final
  // out-of-order row at ts=1s lands in that already-fired pane and must
  // be shed, not re-open it.
  std::vector<std::vector<Value>> rows = MakeRows(16);
  rows.push_back({Value(int64_t{0}), Value(Seconds(1)), Value(99.0)});
  auto schema = Schema::Build()
                    .AddInt64("key")
                    .AddTimestamp("window_start")
                    .AddTimestamp("window_end")
                    .AddInt64("n")
                    .Finish();
  auto sink = std::make_shared<CollectSink>(schema);
  EngineOptions options;
  options.optimizer.enable = false;
  options.tuples_per_buffer = 8;  // the late row arrives in a later buffer
  NodeEngine engine(options);
  auto id = engine.Submit(
      Query::From(std::make_unique<MemorySource>(EventSchema(),
                                                 std::move(rows), 1, "ts"))
          .KeyBy("key")
          .TumblingWindow(Seconds(10), "ts")
          .Aggregate({AggregateSpec::Count("n")})
          .To(sink));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion(*id).ok());
  // No duplicate (key, window_start) pane: the late record was shed.
  auto result = sink->Rows();
  std::vector<std::pair<int64_t, int64_t>> panes;
  for (const auto& row : result) {
    panes.emplace_back(std::get<int64_t>(row[0]), std::get<int64_t>(row[1]));
  }
  std::sort(panes.begin(), panes.end());
  EXPECT_EQ(std::adjacent_find(panes.begin(), panes.end()), panes.end());
  auto stats = engine.Stats(*id);
  ASSERT_TRUE(stats.ok());
  uint64_t shed = 0;
  for (const auto& [name, op_stats] : stats->operator_stats) {
    shed += op_stats.events_shed;
  }
  EXPECT_EQ(shed, 1u);
}

// --- Worker-pool morsel shedding ---------------------------------------

// Blocks the pool's single worker until released, so the test controls
// exactly how many tasks are queued when the next post arrives.
struct WorkerGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mutex);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

TEST(WorkerPoolShedding, DropLateRefusesNewMorsels) {
  WorkerPool pool(1, /*strand_capacity=*/1, ShedPolicy::kDropLate);
  auto strand = pool.MakeStrand();
  WorkerGate gate;
  std::atomic<int> ran{0};
  strand->Post([&] { gate.Enter(); });
  gate.AwaitEntered();  // worker busy, queue empty
  strand->Post([&] { ran += 1; });    // queued (size 1 = capacity)
  strand->Post([&] { ran += 100; });  // refused
  gate.Release();
  pool.Drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.tasks_shed(), 1u);
}

TEST(WorkerPoolShedding, DropOldestEvictsQueuedMorsel) {
  WorkerPool pool(1, /*strand_capacity=*/1, ShedPolicy::kDropOldest);
  auto strand = pool.MakeStrand();
  WorkerGate gate;
  std::atomic<int> ran{0};
  strand->Post([&] { gate.Enter(); });
  gate.AwaitEntered();
  strand->Post([&] { ran += 1; });    // queued, then evicted below
  strand->Post([&] { ran += 100; });  // evicts the previous morsel
  gate.Release();
  pool.Drain();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_shed(), 1u);
}

TEST(WorkerPoolShedding, BlockPolicyShedsNothing) {
  WorkerPool pool(2, /*strand_capacity=*/2);  // default kBlock
  auto strand = pool.MakeStrand();
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    strand->Post([&] { ran += 1; });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.tasks_shed(), 0u);
}

}  // namespace
}  // namespace nebulameos::nebula

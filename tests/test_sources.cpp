// Tier-2 tests of the stream sources: CsvSource error paths (missing
// file, ragged rows, unparsable fields), shared StreamStamper bookkeeping,
// and PacedSource pacing bounds.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nebula/engine.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

// Writes `content` to a fresh temp file and returns its path.
std::string WriteTempCsv(const std::string& name, const std::string& content) {
  const std::string path = "/tmp/nm_source_test_" + name + ".csv";
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(CsvSource, MissingFileFailsAtOpen) {
  auto source = CsvSource::Open(EventSchema(),
                                "/tmp/nm_source_test_does_not_exist.csv");
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().message().find("not found"), std::string::npos)
      << source.status().ToString();
}

TEST(CsvSource, RaggedRowFailsAtFill) {
  const std::string path =
      WriteTempCsv("ragged", "key,ts,value\n1,1000,2.5\n2,2000\n");
  auto source = CsvSource::Open(EventSchema(), path, /*skip_header=*/true);
  ASSERT_TRUE(source.ok());
  TupleBuffer buffer(EventSchema(), 16);
  auto more = (*source)->Fill(&buffer);
  ASSERT_FALSE(more.ok());
  EXPECT_NE(more.status().message().find("too few cells"), std::string::npos)
      << more.status().ToString();
  std::remove(path.c_str());
}

TEST(CsvSource, UnparsableFieldFailsAtFill) {
  const std::string path =
      WriteTempCsv("unparsable", "key,ts,value\n1,not_a_number,2.5\n");
  auto source = CsvSource::Open(EventSchema(), path, /*skip_header=*/true);
  ASSERT_TRUE(source.ok());
  TupleBuffer buffer(EventSchema(), 16);
  EXPECT_FALSE((*source)->Fill(&buffer).ok());
  std::remove(path.c_str());
}

TEST(CsvSource, BlankLinesAreSkippedAndStreamEnds) {
  const std::string path =
      WriteTempCsv("blank", "key,ts,value\n1,1000,2.5\n\n2,2000,3.5\n\n");
  auto source =
      CsvSource::Open(EventSchema(), path, /*skip_header=*/true, "ts");
  ASSERT_TRUE(source.ok());
  TupleBuffer buffer(EventSchema(), 16);
  auto more = (*source)->Fill(&buffer);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // file exhausted within one buffer
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.At(1).GetInt64(0), 2);
  // The shared stamper watermarked the buffer with the max event time.
  EXPECT_EQ(buffer.watermark(), 2000);
  std::remove(path.c_str());
}

TEST(CsvSource, SequenceNumbersIncreasePerBuffer) {
  std::string content = "key,ts,value\n";
  for (int i = 0; i < 10; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 100) + ",1.0\n";
  }
  const std::string path = WriteTempCsv("sequence", content);
  auto source =
      CsvSource::Open(EventSchema(), path, /*skip_header=*/true, "ts");
  ASSERT_TRUE(source.ok());
  TupleBuffer first(EventSchema(), 4), second(EventSchema(), 4);
  ASSERT_TRUE((*source)->Fill(&first).ok());
  ASSERT_TRUE((*source)->Fill(&second).ok());
  EXPECT_EQ(first.sequence_number(), 0u);
  EXPECT_EQ(second.sequence_number(), 1u);
  EXPECT_GT(second.watermark(), first.watermark());
  std::remove(path.c_str());
}

TEST(PacedSource, DeliversEverythingNoFasterThanTheTargetRate) {
  // 300 events at 3000 e/s must take at least ~100 ms of wall clock (and
  // lose nothing). The upper bound is deliberately loose — CI machines
  // stall — the *lower* bound is the pacing contract.
  const int kEvents = 300;
  const double kRate = 3000.0;
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < kEvents; ++i) {
    rows.push_back({Value(int64_t{i}), Value(Seconds(i)), Value(1.0)});
  }
  auto inner = std::make_unique<MemorySource>(EventSchema(), std::move(rows),
                                              1, "ts");
  PacedSource paced(std::move(inner), kRate);
  const int64_t started = MonotonicNowMicros();
  uint64_t delivered = 0;
  while (true) {
    TupleBuffer buffer(EventSchema(), 64);
    auto more = paced.Fill(&buffer);
    ASSERT_TRUE(more.ok());
    delivered += buffer.size();
    if (!*more) break;
  }
  const double elapsed_s =
      static_cast<double>(MonotonicNowMicros() - started) / 1e6;
  EXPECT_EQ(delivered, static_cast<uint64_t>(kEvents));
  // Token bucket: the last event is not released before (kEvents/kRate)
  // seconds, modulo one buffer's worth of slack.
  EXPECT_GE(elapsed_s, 0.8 * kEvents / kRate);
  const double achieved = static_cast<double>(delivered) / elapsed_s;
  EXPECT_LE(achieved, kRate * 1.25) << "paced source overshot its rate";
}

TEST(PacedSource, PropagatesInnerSchemaAndName) {
  auto inner = std::make_unique<MemorySource>(
      EventSchema(), std::vector<std::vector<Value>>{}, 1);
  PacedSource paced(std::move(inner), 100.0);
  EXPECT_EQ(paced.schema().num_fields(), 3u);
  EXPECT_EQ(paced.name(), "PacedSource");
}

}  // namespace
}  // namespace nebulameos::nebula

// Tests for the SNCB substrate: rail network, weather provider, fleet
// simulator determinism and signal invariants, per-query schemas.

#include <gtest/gtest.h>

#include "sncb/network.hpp"
#include "sncb/records.hpp"
#include "sncb/train_sim.hpp"
#include "sncb/weather.hpp"

namespace nebulameos::sncb {
namespace {

TEST(RailNetwork, BelgianNetworkShape) {
  const RailNetwork net = BuildBelgianNetwork();
  EXPECT_EQ(net.stations().size(), 12u);
  EXPECT_EQ(net.lines().size(), 6u);
  for (size_t i = 0; i < net.lines().size(); ++i) {
    EXPECT_GT(net.LineLengthMeters(i), 20'000.0) << net.lines()[i].name;
    EXPECT_LT(net.LineLengthMeters(i), 350'000.0) << net.lines()[i].name;
  }
}

TEST(RailNetwork, PositionAlongClampsAndInterpolates) {
  const RailNetwork net = BuildBelgianNetwork();
  const RailLine& line = net.lines()[0];
  const meos::Point start = net.PositionAlong(0, -100.0);
  EXPECT_DOUBLE_EQ(start.x, line.path.front().x);
  const meos::Point end = net.PositionAlong(0, 1e9);
  EXPECT_DOUBLE_EQ(end.x, line.path.back().x);
  // Midpoint is strictly between the ends.
  const meos::Point mid = net.PositionAlong(0, net.LineLengthMeters(0) / 2);
  EXPECT_NE(mid.x, start.x);
  EXPECT_NE(mid.x, end.x);
}

TEST(RailNetwork, PositionAlongIsArcLengthAccurate) {
  const RailNetwork net = BuildBelgianNetwork();
  // Walk in 1 km steps; consecutive points must be ~1 km apart.
  for (double m = 0.0; m + 1000.0 < net.LineLengthMeters(0); m += 25'000.0) {
    const meos::Point a = net.PositionAlong(0, m);
    const meos::Point b = net.PositionAlong(0, m + 1000.0);
    EXPECT_NEAR(meos::HaversineMeters(a, b), 1000.0, 25.0) << "at " << m;
  }
}

TEST(RailNetwork, StationsAlongFindsEndpoints) {
  const RailNetwork net = BuildBelgianNetwork();
  const auto stops = net.StationsAlong(0);
  // Line IC-1 passes Oostende, Brugge, Gent, Brussels, Leuven, Liège.
  EXPECT_GE(stops.size(), 5u);
  // Sorted by offset.
  for (size_t i = 1; i < stops.size(); ++i) {
    EXPECT_LT(stops[i - 1].first, stops[i].first);
  }
}

TEST(Weather, DeterministicPerZoneHour) {
  const WeatherProvider w(42);
  const Timestamp t = MakeTimestamp(2023, 6, 1, 9, 30, 0);
  const WeatherSample a = w.Sample(3, t);
  const WeatherSample b = w.Sample(3, t);
  EXPECT_EQ(a.condition, b.condition);
  EXPECT_DOUBLE_EQ(a.intensity, b.intensity);
  // Same hour, same condition.
  const WeatherSample c = w.Sample(3, t + Minutes(20));
  EXPECT_EQ(a.condition, c.condition);
}

TEST(Weather, ConditionsCoverSpectrumOverTime) {
  const WeatherProvider w(42);
  bool seen[5] = {false};
  for (int h = 0; h < 300; ++h) {
    const WeatherSample s =
        w.Sample(h % 6, MakeTimestamp(2023, 6, 1) + h * kMicrosPerHour);
    seen[static_cast<int>(s.condition)] = true;
    EXPECT_GE(s.intensity, 0.0);
    EXPECT_LE(s.intensity, 1.0);
  }
  for (int c = 0; c < 5; ++c) EXPECT_TRUE(seen[c]) << "condition " << c;
}

TEST(Weather, SpeedLimitMonotoneInSeverity) {
  const double base = 120.0;
  EXPECT_DOUBLE_EQ(
      WeatherSpeedLimitKmh(WeatherCondition::kClear, 1.0, base), base);
  const double rain = WeatherSpeedLimitKmh(WeatherCondition::kRain, 1.0, base);
  const double heavy =
      WeatherSpeedLimitKmh(WeatherCondition::kHeavyRain, 1.0, base);
  const double snow = WeatherSpeedLimitKmh(WeatherCondition::kSnow, 1.0, base);
  EXPECT_LT(rain, base);
  EXPECT_LT(heavy, rain);
  EXPECT_LT(snow, heavy);
  // Intensity scales toward the floor.
  EXPECT_GT(WeatherSpeedLimitKmh(WeatherCondition::kSnow, 0.2, base), snow);
}

TEST(Weather, CellMappingCoversBelgium) {
  EXPECT_EQ(WeatherCellOf(2.6, 49.5), 0);
  EXPECT_EQ(WeatherCellOf(5.9, 51.2), 5);
  // Clamped outside the grid.
  EXPECT_EQ(WeatherCellOf(-10.0, 45.0), 0);
  EXPECT_EQ(WeatherCellOf(10.0, 55.0), 5);
}

TEST(FleetSimulator, DeterministicStreams) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetConfig config;
  config.seed = 7;
  FleetSimulator a(&net, config);
  FleetSimulator b(&net, config);
  for (int i = 0; i < 2000; ++i) {
    const TrainEvent ea = a.Next();
    const TrainEvent eb = b.Next();
    ASSERT_EQ(ea.train_id, eb.train_id);
    ASSERT_EQ(ea.ts, eb.ts);
    ASSERT_DOUBLE_EQ(ea.lon, eb.lon);
    ASSERT_DOUBLE_EQ(ea.speed_ms, eb.speed_ms);
    ASSERT_DOUBLE_EQ(ea.battery_v, eb.battery_v);
  }
}

TEST(FleetSimulator, DifferentSeedsDiverge) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetConfig c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  FleetSimulator a(&net, c1);
  FleetSimulator b(&net, c2);
  int differences = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.Next().lon != b.Next().lon) ++differences;
  }
  EXPECT_GT(differences, 100);
}

TEST(FleetSimulator, SignalInvariants) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetConfig config;
  FleetSimulator sim(&net, config);
  Timestamp last_ts[6] = {0};
  for (int i = 0; i < 50'000; ++i) {
    const TrainEvent ev = sim.Next();
    ASSERT_GE(ev.train_id, 0);
    ASSERT_LT(ev.train_id, 6);
    // Per-train timestamps strictly increase.
    ASSERT_GT(ev.ts, last_ts[ev.train_id]);
    last_ts[ev.train_id] = ev.ts;
    // Kinematics bounds.
    ASSERT_GE(ev.speed_ms, 0.0);
    ASSERT_LE(ev.speed_ms, config.cruise_speed_ms * 1.15);
    // Positions stay in the Belgian bounding box.
    ASSERT_GT(ev.lon, 2.3);
    ASSERT_LT(ev.lon, 6.3);
    ASSERT_GT(ev.lat, 49.3);
    ASSERT_LT(ev.lat, 51.6);
    // Sensor ranges.
    ASSERT_GT(ev.battery_v, 18.0);
    ASSERT_LT(ev.battery_v, 30.0);
    ASSERT_GE(ev.battery_soc, 0.0);
    ASSERT_LE(ev.battery_soc, 1.0);
    ASSERT_GT(ev.brake_pressure_bar, 0.5);
    ASSERT_LT(ev.brake_pressure_bar, 6.0);
    ASSERT_GE(ev.passengers, 0);
    ASSERT_LE(ev.passengers, config.seats * 5 / 4);
    ASSERT_GT(ev.noise_db, 30.0);
    ASSERT_LT(ev.noise_db, 110.0);
    if (ev.emergency_brake) {
      ASSERT_LE(ev.brake_pressure_bar, 2.2);
    }
  }
}

TEST(FleetSimulator, TrainsActuallyMoveAndStop) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetSimulator sim(&net, {});
  bool seen_moving = false, seen_stopped = false, seen_cruise = false;
  for (int i = 0; i < 100'000; ++i) {
    const TrainEvent ev = sim.Next();
    if (ev.speed_ms > 1.0) seen_moving = true;
    if (ev.speed_ms == 0.0) seen_stopped = true;
    if (ev.speed_ms > 30.0) seen_cruise = true;
  }
  EXPECT_TRUE(seen_moving);
  EXPECT_TRUE(seen_stopped);
  EXPECT_TRUE(seen_cruise);
}

TEST(FleetSimulator, DegradedBatterySagsBelowCurve) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetConfig config;
  FleetSimulator sim(&net, config);
  double max_dev_degraded = 0.0, max_dev_healthy = 0.0;
  for (int i = 0; i < 400'000; ++i) {
    const TrainEvent ev = sim.Next();
    if (!ev.on_battery) continue;
    const double dev = std::abs(
        ev.battery_v - FleetSimulator::NominalBatteryVoltage(ev.battery_soc));
    if (ev.train_id == config.degraded_battery_train) {
      max_dev_degraded = std::max(max_dev_degraded, dev);
    } else {
      max_dev_healthy = std::max(max_dev_healthy, dev);
    }
  }
  // The degraded train exceeds the 0.35 V alert band; healthy trains stay
  // well under it (sensor noise + load sag only).
  EXPECT_GT(max_dev_degraded, 0.8);
  EXPECT_LT(max_dev_healthy, 0.35);
}

TEST(FleetSimulator, DegradedBrakesEmergencyMoreOften) {
  const RailNetwork net = BuildBelgianNetwork();
  FleetConfig config;
  FleetSimulator sim(&net, config);
  int64_t emergencies[6] = {0};
  for (int i = 0; i < 600'000; ++i) {
    const TrainEvent ev = sim.Next();
    if (ev.emergency_brake) ++emergencies[ev.train_id];
  }
  int64_t others = 0;
  for (int t = 0; t < 6; ++t) {
    if (t != config.degraded_brake_train) others += emergencies[t];
  }
  EXPECT_GT(emergencies[config.degraded_brake_train], others);
}

TEST(FleetSimulator, NominalBatteryCurveShape) {
  // Monotone increasing in SOC, plausible 24 V-pack values.
  double prev = 0.0;
  for (double soc = 0.0; soc <= 1.0; soc += 0.1) {
    const double v = FleetSimulator::NominalBatteryVoltage(soc);
    EXPECT_GT(v, 22.0);
    EXPECT_LT(v, 28.0);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Records, SchemaSizesMatchPaperRatios) {
  // Paper: 2.24 MB @ 20K e/s (112 B), 0.61 MB @ 8K (≈76 B),
  // 3.68 MB @ 32K (115 B), 0.40 MB @ 10K (40 B).
  EXPECT_EQ(GeofencingSchema().record_size(), 112u);
  EXPECT_EQ(BatterySchema().record_size(), 76u);
  EXPECT_EQ(PassengerSchema().record_size(), 115u);
  EXPECT_EQ(PositionSchema().record_size(), 40u);
}

TEST(Records, EncodeEventType) {
  TrainEvent ev;
  EXPECT_EQ(EncodeEventType(ev), "normal");
  ev.speeding_alert = true;
  EXPECT_EQ(EncodeEventType(ev), "speeding");
  ev.equipment_alert = true;
  EXPECT_EQ(EncodeEventType(ev), "speeding+equipment");
  ev.speeding_alert = false;
  ev.emergency_brake = true;
  EXPECT_EQ(EncodeEventType(ev), "equipment!");
}

TEST(Records, SourcesProduceSchemaConformantRecords) {
  const RailNetwork net = BuildBelgianNetwork();
  SncbSources sources(&net);
  auto source = sources.Geofencing(100);
  nebula::TupleBuffer buf(GeofencingSchema(), 100);
  auto more = source->Fill(&buf);
  ASSERT_TRUE(more.ok());
  ASSERT_EQ(buf.size(), 100u);
  for (size_t i = 0; i < buf.size(); ++i) {
    const auto rec = buf.At(i);
    EXPECT_GE(rec.GetInt64(0), 0);
    EXPECT_GT(rec.GetInt64(1), 0);
    EXPECT_GT(rec.GetDouble(2), 2.0);  // lon
    EXPECT_GT(rec.GetDouble(3), 49.0);  // lat
    EXPECT_FALSE(rec.GetText(10).empty());
  }
  EXPECT_GT(buf.watermark(), 0);
}

TEST(Records, SourcesShareOneSimulatorStream) {
  const RailNetwork net = BuildBelgianNetwork();
  SncbSources sources(&net);
  auto a = sources.Position(10);
  auto b = sources.Position(10);
  nebula::TupleBuffer buf_a(PositionSchema(), 10);
  nebula::TupleBuffer buf_b(PositionSchema(), 10);
  ASSERT_TRUE(a->Fill(&buf_a).ok());
  ASSERT_TRUE(b->Fill(&buf_b).ok());
  // The two sources continue the same fleet stream: timestamps advance.
  EXPECT_GT(buf_b.At(0).GetInt64(1), buf_a.At(9).GetInt64(1) - Seconds(1));
}

TEST(Records, MaxEventsBoundsSources) {
  const RailNetwork net = BuildBelgianNetwork();
  SncbSources sources(&net);
  auto source = sources.Battery(25);
  nebula::TupleBuffer buf(BatterySchema(), 100);
  auto more = source->Fill(&buf);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ(buf.size(), 25u);
}

}  // namespace
}  // namespace nebulameos::sncb

// Tests for the CEP kernel (src/nebula/cep): sequences, Kleene plus,
// negation, within-bounds, measures, keyed runs.

#include <gtest/gtest.h>

#include "nebula/cep.hpp"

namespace nebulameos::nebula {
namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

class CepHarness {
 public:
  CepHarness(Pattern pattern, std::vector<Measure> measures) {
    auto op = CepOperator::Make(EventSchema(), std::move(pattern),
                                std::move(measures));
    EXPECT_TRUE(op.ok()) << op.status().ToString();
    op_ = std::move(*op);
    EXPECT_TRUE(op_->Open(&ctx_).ok());
  }

  void Feed(std::initializer_list<std::tuple<int64_t, Timestamp, double>> rows) {
    auto buf = std::make_shared<TupleBuffer>(EventSchema(), rows.size());
    for (const auto& [key, ts, value] : rows) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, key);
      w.SetInt64(1, ts);
      w.SetDouble(2, value);
    }
    EXPECT_TRUE(op_->Process(buf, [this](const TupleBufferPtr& out) {
                  for (size_t i = 0; i < out->size(); ++i) {
                    const RecordView rec = out->At(i);
                    std::vector<Value> row;
                    for (size_t f = 0; f < out->schema().num_fields(); ++f) {
                      if (out->schema().field(f).type == DataType::kDouble) {
                        row.emplace_back(rec.GetDouble(f));
                      } else {
                        row.emplace_back(rec.GetInt64(f));
                      }
                    }
                    matches_.push_back(std::move(row));
                  }
                }).ok());
  }

  const std::vector<std::vector<Value>>& matches() const { return matches_; }
  CepOperator* op() { return static_cast<CepOperator*>(op_.get()); }

 private:
  ExecutionContext ctx_;
  OperatorPtr op_;
  std::vector<std::vector<Value>> matches_;
};

Pattern SimpleSeq(Duration within = 0) {
  Pattern p;
  p.steps = {PatternStep{"a", Gt(Attribute("value"), Lit(5.0)), false, false},
             PatternStep{"b", Lt(Attribute("value"), Lit(1.0)), false, false}};
  p.within = within;
  p.key_field = "key";
  p.time_field = "ts";
  return p;
}

TEST(Cep, MakeValidation) {
  Pattern p = SimpleSeq();
  p.steps.clear();
  EXPECT_FALSE(CepOperator::Make(EventSchema(), p, {}).ok());
  p = SimpleSeq();
  p.time_field = "";
  EXPECT_FALSE(CepOperator::Make(EventSchema(), p, {}).ok());
  p = SimpleSeq();
  p.steps.front().negated = true;
  EXPECT_FALSE(CepOperator::Make(EventSchema(), p, {}).ok());
  p = SimpleSeq();
  p.steps.back().negated = true;
  EXPECT_FALSE(CepOperator::Make(EventSchema(), p, {}).ok());
  p = SimpleSeq();
  EXPECT_FALSE(
      CepOperator::Make(EventSchema(), p,
                        {Measure::Count("unknown_step", "n")})
          .ok());
  EXPECT_FALSE(
      CepOperator::Make(EventSchema(), p,
                        {Measure::Max("a", "missing_field", "m")})
          .ok());
}

TEST(Cep, SimpleSequenceMatches) {
  CepHarness h(SimpleSeq(), {Measure::First("a", "value", "a_value"),
                             Measure::First("b", "value", "b_value")});
  h.Feed({{1, Seconds(1), 7.0},    // a
          {1, Seconds(2), 3.0},    // neither (skip-till-next-match)
          {1, Seconds(3), 0.5}});  // b -> match
  ASSERT_EQ(h.matches().size(), 1u);
  const auto& m = h.matches()[0];
  EXPECT_EQ(ValueAsInt64(m[0]), 1);           // key
  EXPECT_EQ(ValueAsInt64(m[1]), Seconds(1));  // match_start
  EXPECT_EQ(ValueAsInt64(m[2]), Seconds(3));  // match_end
  EXPECT_DOUBLE_EQ(ValueAsDouble(m[3]), 7.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(m[4]), 0.5);
}

TEST(Cep, NoMatchWithoutTrigger) {
  CepHarness h(SimpleSeq(), {});
  h.Feed({{1, Seconds(1), 3.0}, {1, Seconds(2), 4.0}});
  EXPECT_TRUE(h.matches().empty());
}

TEST(Cep, KeysAreIndependent) {
  CepHarness h(SimpleSeq(), {});
  h.Feed({{1, Seconds(1), 7.0},    // a for key 1
          {2, Seconds(2), 0.5},    // b for key 2 (no a yet: no match)
          {2, Seconds(3), 7.0},    // a for key 2
          {1, Seconds(4), 0.5},    // b for key 1 -> match key 1
          {2, Seconds(5), 0.5}});  // b for key 2 -> match key 2
  ASSERT_EQ(h.matches().size(), 2u);
  EXPECT_EQ(ValueAsInt64(h.matches()[0][0]), 1);
  EXPECT_EQ(ValueAsInt64(h.matches()[1][0]), 2);
}

TEST(Cep, WithinExpiresRuns) {
  CepHarness h(SimpleSeq(Seconds(5)), {});
  h.Feed({{1, Seconds(1), 7.0},     // a
          {1, Seconds(10), 0.5}});  // b, but 9s later: run expired
  EXPECT_TRUE(h.matches().empty());
  h.Feed({{1, Seconds(11), 7.0},    // a again
          {1, Seconds(13), 0.5}});  // within 5s -> match
  EXPECT_EQ(h.matches().size(), 1u);
}

TEST(Cep, MultipleConcurrentRuns) {
  // Two 'a' events both match with the next 'b'.
  CepHarness h(SimpleSeq(), {Measure::First("a", "value", "a_value")});
  h.Feed({{1, Seconds(1), 6.0},
          {1, Seconds(2), 8.0},
          {1, Seconds(3), 0.5}});
  ASSERT_EQ(h.matches().size(), 2u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.matches()[0][3]), 6.0);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.matches()[1][3]), 8.0);
}

Pattern KleenePattern() {
  Pattern p;
  p.steps = {
      PatternStep{"start", Gt(Attribute("value"), Lit(5.0)), false, false},
      PatternStep{"low", Lt(Attribute("value"), Lit(1.0)), false, true},
      PatternStep{"end", Gt(Attribute("value"), Lit(5.0)), false, false}};
  p.key_field = "key";
  p.time_field = "ts";
  return p;
}

TEST(Cep, KleenePlusAccumulates) {
  CepHarness h(KleenePattern(), {Measure::Count("low", "n_low"),
                                 Measure::Min("low", "value", "min_low"),
                                 Measure::Avg("low", "value", "avg_low")});
  h.Feed({{1, Seconds(1), 7.0},    // start
          {1, Seconds(2), 0.5},    // low x1
          {1, Seconds(3), 0.3},    // low x2
          {1, Seconds(4), 0.1},    // low x3
          {1, Seconds(5), 9.0}});  // end -> match
  ASSERT_EQ(h.matches().size(), 1u);
  const auto& m = h.matches()[0];
  EXPECT_EQ(ValueAsInt64(m[3]), 3);
  EXPECT_DOUBLE_EQ(ValueAsDouble(m[4]), 0.1);
  EXPECT_NEAR(ValueAsDouble(m[5]), 0.3, 1e-9);
}

TEST(Cep, KleeneRequiresAtLeastOne) {
  CepHarness h(KleenePattern(), {});
  h.Feed({{1, Seconds(1), 7.0},    // start
          {1, Seconds(2), 9.0}});  // end-like event, but no 'low' yet:
                                   // it instead starts another run
  EXPECT_TRUE(h.matches().empty());
}

Pattern NegationPattern() {
  // a, !forbidden, c: match a→c unless a forbidden event intervenes.
  Pattern p;
  p.steps = {
      PatternStep{"a", Gt(Attribute("value"), Lit(5.0)), false, false},
      PatternStep{"forbidden", Lt(Attribute("value"), Lit(0.0)), true, false},
      PatternStep{"c", Eq(Attribute("value"), Lit(1.0)), false, false}};
  p.key_field = "key";
  p.time_field = "ts";
  return p;
}

TEST(Cep, NegationKillsRun) {
  CepHarness h(NegationPattern(), {});
  h.Feed({{1, Seconds(1), 7.0},    // a
          {1, Seconds(2), -3.0},   // forbidden -> kill
          {1, Seconds(3), 1.0}});  // c: no run alive
  EXPECT_TRUE(h.matches().empty());
}

TEST(Cep, NegationAllowsCleanSequence) {
  CepHarness h(NegationPattern(), {});
  h.Feed({{1, Seconds(1), 7.0},    // a
          {1, Seconds(2), 3.0},    // irrelevant
          {1, Seconds(3), 1.0}});  // c -> match (no forbidden seen)
  EXPECT_EQ(h.matches().size(), 1u);
}

TEST(Cep, SingleStepPatternEmitsPerEvent) {
  Pattern p;
  p.steps = {PatternStep{"hit", Gt(Attribute("value"), Lit(5.0)), false,
                         false}};
  p.key_field = "key";
  p.time_field = "ts";
  CepHarness h(p, {Measure::First("hit", "value", "v")});
  h.Feed({{1, Seconds(1), 7.0}, {1, Seconds(2), 2.0}, {1, Seconds(3), 8.0}});
  ASSERT_EQ(h.matches().size(), 2u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.matches()[1][3]), 8.0);
}

TEST(Cep, OutputSchemaShape) {
  Pattern p = SimpleSeq();
  auto op = CepOperator::Make(EventSchema(), p,
                              {Measure::Count("a", "n_a"),
                               Measure::Last("b", "value", "last_b")});
  ASSERT_TRUE(op.ok());
  const Schema& out = (*op)->output_schema();
  ASSERT_EQ(out.num_fields(), 5u);
  EXPECT_EQ(out.field(0).name, "key");
  EXPECT_EQ(out.field(1).name, "match_start");
  EXPECT_EQ(out.field(2).name, "match_end");
  EXPECT_EQ(out.field(3).name, "n_a");
  EXPECT_EQ(out.field(3).type, DataType::kInt64);
  EXPECT_EQ(out.field(4).name, "last_b");
  EXPECT_EQ(out.field(4).type, DataType::kDouble);
}

TEST(Cep, SuppressDuplicateStartsKeepsOnePendingRun) {
  Pattern p = SimpleSeq();
  p.suppress_duplicate_starts = true;
  CepHarness h(p, {Measure::First("a", "value", "a_value")});
  h.Feed({{1, Seconds(1), 6.0},    // starts the pending run
          {1, Seconds(2), 8.0},    // suppressed (run already pending)
          {1, Seconds(3), 0.5}});  // completes exactly one match
  ASSERT_EQ(h.matches().size(), 1u);
  EXPECT_DOUBLE_EQ(ValueAsDouble(h.matches()[0][3]), 6.0);  // earliest start
  EXPECT_EQ(h.op()->ActiveRuns(), 0u);
  // After completion a new run may start again.
  h.Feed({{1, Seconds(4), 7.0}, {1, Seconds(5), 0.2}});
  EXPECT_EQ(h.matches().size(), 2u);
}

TEST(Cep, RunsTrackedAndBounded) {
  CepHarness h(SimpleSeq(), {});
  EXPECT_EQ(h.op()->ActiveRuns(), 0u);
  h.Feed({{1, Seconds(1), 7.0}, {1, Seconds(2), 8.0}});
  EXPECT_EQ(h.op()->ActiveRuns(), 2u);
  h.Feed({{1, Seconds(3), 0.5}});  // both complete
  EXPECT_EQ(h.op()->ActiveRuns(), 0u);
}

}  // namespace
}  // namespace nebulameos::nebula

#include "sncb/weather.hpp"

#include <algorithm>
#include <cmath>

namespace nebulameos::sncb {

const char* WeatherConditionName(WeatherCondition c) {
  switch (c) {
    case WeatherCondition::kClear:
      return "clear";
    case WeatherCondition::kRain:
      return "rain";
    case WeatherCondition::kHeavyRain:
      return "heavy_rain";
    case WeatherCondition::kSnow:
      return "snow";
    case WeatherCondition::kFog:
      return "fog";
  }
  return "?";
}

double WeatherSpeedLimitKmh(WeatherCondition c, double intensity,
                            double default_kmh) {
  // Severity-scaled advisory limits; intensity interpolates toward the
  // worst case.
  double floor_kmh = default_kmh;
  switch (c) {
    case WeatherCondition::kClear:
      return default_kmh;
    case WeatherCondition::kRain:
      floor_kmh = 110.0;
      break;
    case WeatherCondition::kHeavyRain:
      floor_kmh = 80.0;
      break;
    case WeatherCondition::kSnow:
      floor_kmh = 60.0;
      break;
    case WeatherCondition::kFog:
      floor_kmh = 70.0;
      break;
  }
  const double limit =
      default_kmh - (default_kmh - floor_kmh) * std::clamp(intensity, 0.0, 1.0);
  return std::min(default_kmh, limit);
}

int64_t WeatherCellOf(double lon, double lat) {
  const int gx = std::clamp(static_cast<int>((lon - 2.5) / 1.2), 0, 2);
  const int gy = std::clamp(static_cast<int>((lat - 49.4) / 1.0), 0, 1);
  return gx + 3 * gy;
}

WeatherSample WeatherProvider::Sample(int64_t zone_id, Timestamp t) const {
  // Hour-stable hash -> condition; sub-hour phase modulates intensity.
  const int64_t hour = t / kMicrosPerHour;
  SplitMix64 mix(seed_ ^ (static_cast<uint64_t>(zone_id) * 0x9e3779b1ULL) ^
                 static_cast<uint64_t>(hour));
  const uint64_t h = mix.Next();
  WeatherSample sample;
  // 55% clear, 18% rain, 9% heavy rain, 9% snow, 9% fog.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < 0.55) {
    sample.condition = WeatherCondition::kClear;
  } else if (u < 0.73) {
    sample.condition = WeatherCondition::kRain;
  } else if (u < 0.82) {
    sample.condition = WeatherCondition::kHeavyRain;
  } else if (u < 0.91) {
    sample.condition = WeatherCondition::kSnow;
  } else {
    sample.condition = WeatherCondition::kFog;
  }
  // Intensity ramps within the hour so consecutive samples vary smoothly.
  const double phase =
      static_cast<double>(t % kMicrosPerHour) / static_cast<double>(kMicrosPerHour);
  const double base = static_cast<double>(mix.Next() >> 11) * 0x1.0p-53;
  sample.intensity =
      sample.condition == WeatherCondition::kClear
          ? 0.0
          : std::clamp(0.3 + 0.6 * base + 0.2 * std::sin(phase * 2.0 * M_PI),
                       0.0, 1.0);
  sample.temperature_c =
      sample.condition == WeatherCondition::kSnow
          ? -2.0 + 4.0 * base
          : 8.0 + 12.0 * base;
  return sample;
}

}  // namespace nebulameos::sncb

/// \file records.hpp
/// \brief Per-query event schemas and the sources that feed them.
///
/// The paper reports one ingestion-rate/throughput pair per query family
/// (§3.1–3.2). The MB-to-events ratios imply distinct record widths, which
/// these schemas reproduce exactly (decimal MB):
///
/// | Queries | paper rate        | bytes/event | schema                  |
/// |---------|-------------------|-------------|-------------------------|
/// | Q1–Q4   | 2.24 MB @ 20K e/s | 112         | `GeofencingSchema()`    |
/// | Q5      | 0.61 MB @  8K e/s | ~76         | `BatterySchema()`       |
/// | Q6      | 3.68 MB @ 32K e/s | 115         | `PassengerSchema()`     |
/// | Q7      | 0.40 MB @ 10K e/s | 40          | `PositionSchema()`      |
/// | Q8      | 2.24 MB @ 20K e/s | 112         | `GeofencingSchema()`    |
///
/// Every source draws from one shared `FleetSimulator`, projecting each
/// `TrainEvent` into the query's schema.

#pragma once

#include <memory>

#include "nebula/source.hpp"
#include "sncb/train_sim.hpp"

namespace nebulameos::sncb {

/// 112-byte record for the geofencing family (Q1–Q4) and Q8:
/// train_id, ts, lon, lat, speed_ms, noise_db, brake_bar, battery_v,
/// weather_condition, weather_intensity (10×8 B) + event_type (TEXT32)
/// = 112 B. Booleans (alerts, emergency) are packed into event_type.
nebula::Schema GeofencingSchema();

/// 76-byte record for Q5 battery monitoring:
/// train_id, ts, lon, lat, battery_v, battery_current_a, battery_temp_c,
/// battery_soc, nearest_workshop_hint (9×8 B) + 4 flag bytes = 76 B.
nebula::Schema BatterySchema();

/// 115-byte record for Q6 passenger load:
/// train_id, ts, lon, lat, passengers, seats, cabin_temp_c, exterior_temp_c,
/// co2_ppm, humidity_pct (10×8 B) + line_name (TEXT32) + 3 flag bytes
/// = 115 B.
nebula::Schema PassengerSchema();

/// 40-byte record for Q7 unscheduled stops:
/// train_id, ts, lon, lat, speed_ms (5×8 B) = 40 B.
nebula::Schema PositionSchema();

/// Weather observation record (the OpenMeteo-substitute feed):
/// cell, ts, condition, intensity, temp_c.
nebula::Schema WeatherObservationSchema();

/// \brief A bounded stream of weather observations: one record per weather
/// cell every \p interval over [\p start, \p start + \p span), drawn from
/// the same seeded provider the simulator uses — so a join against the
/// train stream reproduces the conditions the trains experienced.
nebula::SourcePtr MakeWeatherObservationStream(uint64_t seed, Timestamp start,
                                               Duration span,
                                               Duration interval = Minutes(15));

/// Encodes the event-type/alert flags carried in `event_type`
/// ("normal", "speeding", "equipment", "speeding+equipment", with
/// "!" suffix while the emergency brake is active).
std::string EncodeEventType(const TrainEvent& ev);

/// \brief Source factory bundle around one shared simulator.
class SncbSources {
 public:
  /// Creates the bundle with a fresh simulator (owned).
  SncbSources(const RailNetwork* network, FleetConfig config = {});

  /// Source of `GeofencingSchema()` records (Q1–Q4, Q8).
  nebula::SourcePtr Geofencing(uint64_t max_events);

  /// Source of `BatterySchema()` records (Q5).
  nebula::SourcePtr Battery(uint64_t max_events);

  /// Source of `PassengerSchema()` records (Q6).
  nebula::SourcePtr Passenger(uint64_t max_events);

  /// Source of `PositionSchema()` records (Q7).
  nebula::SourcePtr Position(uint64_t max_events);

  /// The shared simulator (one stream of truth across sources).
  FleetSimulator* simulator() { return sim_.get(); }

 private:
  std::shared_ptr<FleetSimulator> sim_;
};

}  // namespace nebulameos::sncb

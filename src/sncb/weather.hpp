/// \file weather.hpp
/// \brief Synthetic weather provider — the OpenMeteo substitute.
///
/// Q4 joins the train stream with per-zone weather. The live OpenMeteo API
/// is replaced by a seeded generator producing hour-stable conditions per
/// weather zone (docs/ARCHITECTURE.md, "SNCB fleet simulation"): every
/// (zone, hour) hashes to a condition
/// and intensity, so runs are reproducible and the join path is exercised
/// identically.

#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "common/time.hpp"

namespace nebulameos::sncb {

/// Weather conditions in increasing severity.
enum class WeatherCondition : int64_t {
  kClear = 0,
  kRain = 1,
  kHeavyRain = 2,
  kSnow = 3,
  kFog = 4,
};

/// Human-readable condition name.
const char* WeatherConditionName(WeatherCondition c);

/// Advisory speed limit (km/h) for a condition at intensity in [0,1]
/// (paper Q4: "suggest speed limits for zones with conditions such as heavy
/// rain, snow, or fog").
double WeatherSpeedLimitKmh(WeatherCondition c, double intensity,
                            double default_kmh);

/// \brief One weather observation.
struct WeatherSample {
  WeatherCondition condition = WeatherCondition::kClear;
  double intensity = 0.0;  ///< [0, 1]
  double temperature_c = 12.0;
};

/// Index of the weather grid cell containing (lon, lat) — the same 3x2
/// grid `PopulateSncbGeofences` registers as weather zones. Clamped to the
/// grid, so every position maps to a cell.
int64_t WeatherCellOf(double lon, double lat);

/// \brief Deterministic per-zone weather: conditions are stable within an
/// hour and evolve smoothly via seeded hashing.
class WeatherProvider {
 public:
  explicit WeatherProvider(uint64_t seed) : seed_(seed) {}

  /// The weather in \p zone_id at time \p t.
  WeatherSample Sample(int64_t zone_id, Timestamp t) const;

 private:
  uint64_t seed_;
};

}  // namespace nebulameos::sncb

#include "sncb/network.hpp"

#include <algorithm>
#include <cmath>

namespace nebulameos::sncb {

using integration::GeofenceRegistry;
using integration::ZoneKind;
using meos::Circle;
using meos::Metric;
using meos::Polygon;

size_t RailNetwork::AddStation(Station station) {
  stations_.push_back(std::move(station));
  return stations_.size() - 1;
}

size_t RailNetwork::AddLine(RailLine line) {
  std::vector<double> cumulative;
  cumulative.reserve(line.path.size());
  double acc = 0.0;
  cumulative.push_back(0.0);
  for (size_t i = 1; i < line.path.size(); ++i) {
    acc += meos::HaversineMeters(line.path[i - 1], line.path[i]);
    cumulative.push_back(acc);
  }
  lines_.push_back(std::move(line));
  line_length_.push_back(acc);
  cumulative_.push_back(std::move(cumulative));
  return lines_.size() - 1;
}

Point RailNetwork::PositionAlong(size_t i, double meters) const {
  const RailLine& line = lines_[i];
  const std::vector<double>& cum = cumulative_[i];
  if (meters <= 0.0) return line.path.front();
  if (meters >= line_length_[i]) return line.path.back();
  // Binary search the segment containing `meters`.
  auto it = std::upper_bound(cum.begin(), cum.end(), meters);
  const size_t seg = static_cast<size_t>(std::distance(cum.begin(), it)) - 1;
  const double seg_len = cum[seg + 1] - cum[seg];
  const double f = seg_len <= 0.0 ? 0.0 : (meters - cum[seg]) / seg_len;
  return meos::Lerp(line.path[seg], line.path[seg + 1], f);
}

std::vector<std::pair<double, size_t>> RailNetwork::StationsAlong(
    size_t i, double snap_meters) const {
  std::vector<std::pair<double, size_t>> out;
  const RailLine& line = lines_[i];
  for (size_t s = 0; s < stations_.size(); ++s) {
    // Closest approach of the line to the station.
    double best_d = snap_meters + 1.0;
    double best_offset = 0.0;
    for (size_t seg = 0; seg + 1 < line.path.size(); ++seg) {
      const meos::Segment sg{line.path[seg], line.path[seg + 1]};
      const double d =
          meos::PointSegmentDistance(stations_[s].location, sg, Metric::kWgs84);
      if (d < best_d) {
        best_d = d;
        const double f = meos::ClosestPointFraction(stations_[s].location, sg,
                                                    Metric::kWgs84);
        best_offset =
            cumulative_[i][seg] + f * (cumulative_[i][seg + 1] -
                                       cumulative_[i][seg]);
      }
    }
    if (best_d <= snap_meters) out.emplace_back(best_offset, s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

RailNetwork BuildBelgianNetwork() {
  RailNetwork net;
  // Approximate Belgian city coordinates (lon, lat).
  const size_t brussels = net.AddStation({"Brussels-Midi", {4.3355, 50.8357}, 3.0});
  const size_t antwerp = net.AddStation({"Antwerpen-Centraal", {4.4210, 51.2172}, 2.5});
  const size_t ghent = net.AddStation({"Gent-Sint-Pieters", {3.7105, 51.0362}, 2.0});
  const size_t liege = net.AddStation({"Liège-Guillemins", {5.5666, 50.6243}, 2.0});
  const size_t charleroi = net.AddStation({"Charleroi-Sud", {4.4384, 50.4047}, 1.5});
  const size_t namur = net.AddStation({"Namur", {4.8622, 50.4687}, 1.3});
  const size_t leuven = net.AddStation({"Leuven", {4.7158, 50.8812}, 1.5});
  const size_t bruges = net.AddStation({"Brugge", {3.2166, 51.1972}, 1.4});
  const size_t ostend = net.AddStation({"Oostende", {2.9252, 51.2282}, 1.0});
  const size_t hasselt = net.AddStation({"Hasselt", {5.3277, 50.9305}, 1.0});
  const size_t mons = net.AddStation({"Mons", {3.9530, 50.4536}, 1.0});
  const size_t arlon = net.AddStation({"Arlon", {5.8091, 49.6794}, 0.7});

  const auto& st = net.stations();
  auto at = [&](size_t s) { return st[s].location; };
  auto mid = [](const Point& a, const Point& b, double bulge_x,
                double bulge_y) {
    return Point{(a.x + b.x) / 2 + bulge_x, (a.y + b.y) / 2 + bulge_y};
  };

  // Six lines, one per demo train. Intermediate shape points introduce the
  // gentle curvature that high-risk "sharp curve" zones sit on.
  net.AddLine({"IC-1 Oostende–Brussels–Liège",
               {at(ostend), at(bruges), mid(at(bruges), at(ghent), 0.0, 0.02),
                at(ghent), mid(at(ghent), at(brussels), 0.02, -0.01),
                at(brussels), at(leuven),
                mid(at(leuven), at(liege), 0.03, 0.04), at(liege)}});
  net.AddLine({"IC-2 Antwerpen–Brussels–Charleroi",
               {at(antwerp), mid(at(antwerp), at(brussels), -0.03, 0.0),
                at(brussels), mid(at(brussels), at(charleroi), -0.02, -0.02),
                at(charleroi)}});
  net.AddLine({"IC-3 Brussels–Namur–Arlon",
               {at(brussels), mid(at(brussels), at(namur), 0.04, -0.03),
                at(namur), mid(at(namur), at(arlon), 0.08, -0.10),
                at(arlon)}});
  net.AddLine({"IC-4 Gent–Brussels–Hasselt",
               {at(ghent), at(brussels), at(leuven),
                mid(at(leuven), at(hasselt), 0.02, 0.03), at(hasselt)}});
  net.AddLine({"IC-5 Mons–Brussels–Antwerpen",
               {at(mons), mid(at(mons), at(brussels), 0.03, 0.02),
                at(brussels), mid(at(brussels), at(antwerp), 0.02, 0.01),
                at(antwerp)}});
  net.AddLine({"L-6 Charleroi–Namur–Liège",
               {at(charleroi), at(namur),
                mid(at(namur), at(liege), 0.02, -0.04), at(liege)}});
  return net;
}

namespace {

// Axis-aligned rectangle polygon around a center.
Polygon RectAround(const Point& center, double half_w_deg, double half_h_deg) {
  auto poly = Polygon::Make({{center.x - half_w_deg, center.y - half_h_deg},
                             {center.x + half_w_deg, center.y - half_h_deg},
                             {center.x + half_w_deg, center.y + half_h_deg},
                             {center.x - half_w_deg, center.y + half_h_deg}});
  assert(poly.ok());
  return *poly;
}

}  // namespace

void PopulateSncbGeofences(const RailNetwork& network,
                           GeofenceRegistry* registry) {
  // Station zones: 400 m circles.
  for (const Station& s : network.stations()) {
    registry->AddCircleZone("station:" + s.name, ZoneKind::kStation,
                            Circle{s.location, 400.0}, 30.0);
  }
  // Workshops near three hubs (zone + POI at the gate).
  const struct {
    const char* name;
    Point loc;
  } kWorkshops[] = {
      {"workshop:Schaarbeek", {4.3780, 50.8790}},
      {"workshop:Antwerpen-Noord", {4.4330, 51.2450}},
      {"workshop:Kinkempois", {5.5590, 50.5980}},
  };
  for (const auto& w : kWorkshops) {
    registry->AddCircleZone(w.name, ZoneKind::kWorkshop, Circle{w.loc, 600.0},
                            20.0);
    registry->AddPoi(std::string(w.name) + ":gate", "workshop", w.loc);
  }
  // Maintenance polygons on two line segments (between Brussels–Leuven and
  // Gent–Brussels).
  registry->AddPolygonZone("maintenance:leuven-west", ZoneKind::kMaintenance,
                           RectAround({4.58, 50.87}, 0.045, 0.03), 40.0);
  registry->AddPolygonZone("maintenance:gent-east", ZoneKind::kMaintenance,
                           RectAround({3.95, 50.97}, 0.05, 0.035), 40.0);
  // Noise-sensitive neighbourhoods near the three largest cities.
  registry->AddPolygonZone("noise:brussels-south", ZoneKind::kNoiseSensitive,
                           RectAround({4.33, 50.81}, 0.04, 0.025));
  registry->AddPolygonZone("noise:antwerp-center", ZoneKind::kNoiseSensitive,
                           RectAround({4.42, 51.20}, 0.035, 0.025));
  registry->AddPolygonZone("noise:liege-center", ZoneKind::kNoiseSensitive,
                           RectAround({5.57, 50.63}, 0.035, 0.025));
  // High-risk curve/construction zones with advisory limits (km/h).
  registry->AddCircleZone("curve:leuven-liege", ZoneKind::kHighRisk,
                          Circle{{5.05, 50.82}, 3000.0}, 80.0);
  registry->AddCircleZone("curve:namur-arlon", ZoneKind::kHighRisk,
                          Circle{{5.35, 50.05}, 4000.0}, 70.0);
  registry->AddCircleZone("construction:mons-brussels", ZoneKind::kHighRisk,
                          Circle{{4.15, 50.63}, 2500.0}, 60.0);
  // Weather zones: a coarse 2x3 grid over the country.
  int weather_id = 0;
  for (int gy = 0; gy < 2; ++gy) {
    for (int gx = 0; gx < 3; ++gx) {
      const double x0 = 2.5 + gx * 1.2;
      const double y0 = 49.4 + gy * 1.0;
      registry->AddPolygonZone(
          "weather:cell-" + std::to_string(weather_id++), ZoneKind::kWeather,
          RectAround({x0 + 0.6, y0 + 0.5}, 0.6, 0.5));
    }
  }
}

}  // namespace nebulameos::sncb

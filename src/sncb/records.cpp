#include "sncb/records.hpp"

namespace nebulameos::sncb {

using nebula::GeneratorSource;
using nebula::Schema;
using nebula::SourcePtr;

Schema GeofencingSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddDouble("speed_ms")
      .AddDouble("noise_db")
      .AddDouble("brake_bar")
      .AddDouble("battery_v")
      .AddInt64("weather_condition")
      .AddDouble("weather_intensity")
      .AddText32("event_type")
      .Finish();
}

Schema BatterySchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddDouble("battery_v")
      .AddDouble("battery_current_a")
      .AddDouble("battery_temp_c")
      .AddDouble("battery_soc")
      .AddDouble("battery_nominal_v")
      .AddBool("on_battery")
      .AddBool("charging")
      .AddBool("overheat")
      .AddBool("spare_flag")
      .Finish();
}

Schema PassengerSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddInt64("passengers")
      .AddInt64("seats")
      .AddDouble("cabin_temp_c")
      .AddDouble("exterior_temp_c")
      .AddDouble("co2_ppm")
      .AddDouble("humidity_pct")
      .AddText32("line_name")
      .AddBool("doors_open")
      .AddBool("hvac_on")
      .AddBool("lights_on")
      .Finish();
}

Schema PositionSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddDouble("speed_ms")
      .Finish();
}

Schema WeatherObservationSchema() {
  return Schema::Build()
      .AddInt64("cell")
      .AddTimestamp("ts")
      .AddInt64("condition")
      .AddDouble("intensity")
      .AddDouble("temp_c")
      .Finish();
}

SourcePtr MakeWeatherObservationStream(uint64_t seed, Timestamp start,
                                       Duration span, Duration interval) {
  // The simulator's provider is seeded with config.seed ^ 0x57EA7B17; use
  // the same derivation so joins see identical conditions.
  WeatherProvider provider(seed ^ 0x57EA7B17ull);
  std::vector<std::vector<nebula::Value>> rows;
  for (Timestamp t = start; t < start + span; t += interval) {
    for (int64_t cell = 0; cell < 6; ++cell) {
      const WeatherSample sample = provider.Sample(cell, t);
      rows.push_back({nebula::Value(cell), nebula::Value(t),
                      nebula::Value(static_cast<int64_t>(sample.condition)),
                      nebula::Value(sample.intensity),
                      nebula::Value(sample.temperature_c)});
    }
  }
  return std::make_unique<nebula::MemorySource>(WeatherObservationSchema(),
                                                std::move(rows), 1, "ts");
}

std::string EncodeEventType(const TrainEvent& ev) {
  std::string type;
  if (ev.speeding_alert && ev.equipment_alert) {
    type = "speeding+equipment";
  } else if (ev.speeding_alert) {
    type = "speeding";
  } else if (ev.equipment_alert) {
    type = "equipment";
  } else {
    type = "normal";
  }
  if (ev.emergency_brake) type += "!";
  return type;
}

SncbSources::SncbSources(const RailNetwork* network, FleetConfig config)
    : sim_(std::make_shared<FleetSimulator>(network, config)) {}

SourcePtr SncbSources::Geofencing(uint64_t max_events) {
  auto sim = sim_;
  return std::make_unique<GeneratorSource>(
      GeofencingSchema(),
      [sim](nebula::RecordWriter* w) {
        const TrainEvent ev = sim->Next();
        w->SetInt64(0, ev.train_id);
        w->SetInt64(1, ev.ts);
        w->SetDouble(2, ev.lon);
        w->SetDouble(3, ev.lat);
        w->SetDouble(4, ev.speed_ms);
        w->SetDouble(5, ev.noise_db);
        w->SetDouble(6, ev.brake_pressure_bar);
        w->SetDouble(7, ev.battery_v);
        w->SetInt64(8, ev.weather_condition);
        w->SetDouble(9, ev.weather_intensity);
        w->SetText(10, EncodeEventType(ev));
        return true;
      },
      max_events, "ts");
}

SourcePtr SncbSources::Battery(uint64_t max_events) {
  auto sim = sim_;
  return std::make_unique<GeneratorSource>(
      BatterySchema(),
      [sim](nebula::RecordWriter* w) {
        const TrainEvent ev = sim->Next();
        w->SetInt64(0, ev.train_id);
        w->SetInt64(1, ev.ts);
        w->SetDouble(2, ev.lon);
        w->SetDouble(3, ev.lat);
        w->SetDouble(4, ev.battery_v);
        w->SetDouble(5, ev.battery_current_a);
        w->SetDouble(6, ev.battery_temp_c);
        w->SetDouble(7, ev.battery_soc);
        w->SetDouble(8, FleetSimulator::NominalBatteryVoltage(ev.battery_soc));
        w->SetBool(9, ev.on_battery);
        w->SetBool(10, ev.charging);
        w->SetBool(11, ev.battery_temp_c > 55.0);
        w->SetBool(12, false);
        return true;
      },
      max_events, "ts");
}

SourcePtr SncbSources::Passenger(uint64_t max_events) {
  auto sim = sim_;
  const int seats = sim_->config().seats;
  return std::make_unique<GeneratorSource>(
      PassengerSchema(),
      [sim, seats](nebula::RecordWriter* w) {
        const TrainEvent ev = sim->Next();
        const double load =
            static_cast<double>(ev.passengers) / static_cast<double>(seats);
        w->SetInt64(0, ev.train_id);
        w->SetInt64(1, ev.ts);
        w->SetDouble(2, ev.lon);
        w->SetDouble(3, ev.lat);
        w->SetInt64(4, ev.passengers);
        w->SetInt64(5, seats);
        w->SetDouble(6, ev.cabin_temp_c);
        w->SetDouble(7, ev.exterior_temp_c);
        w->SetDouble(8, 420.0 + 900.0 * load);  // occupancy-driven CO2
        w->SetDouble(9, 40.0 + 25.0 * load);
        w->SetText(10, "line-" + std::to_string(ev.train_id));
        w->SetBool(11, ev.speed_ms < 0.1);
        w->SetBool(12, true);
        w->SetBool(13, true);
        return true;
      },
      max_events, "ts");
}

SourcePtr SncbSources::Position(uint64_t max_events) {
  auto sim = sim_;
  return std::make_unique<GeneratorSource>(
      PositionSchema(),
      [sim](nebula::RecordWriter* w) {
        const TrainEvent ev = sim->Next();
        w->SetInt64(0, ev.train_id);
        w->SetInt64(1, ev.ts);
        w->SetDouble(2, ev.lon);
        w->SetDouble(3, ev.lat);
        w->SetDouble(4, ev.speed_ms);
        return true;
      },
      max_events, "ts");
}

}  // namespace nebulameos::sncb

/// \file train_sim.hpp
/// \brief The six-train fleet simulator: kinematics + sensor models.
///
/// Replaces the proprietary SNCB six-month dataset with a deterministic
/// generator whose signals exhibit exactly the behaviours the eight demo
/// queries detect (docs/ARCHITECTURE.md, "SNCB fleet simulation"):
///
/// * **kinematics** — each train shuttles along its line with an
///   accelerate / cruise / brake / dwell profile, stopping at stations;
/// * **GPS** — position with configurable noise and dropout;
/// * **battery** — voltage follows a charge/discharge curve while on
///   battery power; one train has a degrading battery that deviates from
///   the curve (Q5's anomaly);
/// * **brakes** — nominal pressure with braking dips; occasional emergency
///   brakes, more frequent on one train with degrading brakes (Q8);
/// * **noise** — dB level correlated with speed (Q2);
/// * **passengers** — boarding at stations by popularity and time of day,
///   with rush-hour overload events (Q6);
/// * **unscheduled stops** — rare mid-track halts outside any station zone
///   (Q7).
///
/// All randomness flows from one seed; two simulators with equal
/// configuration produce identical streams.

#pragma once

#include "common/random.hpp"
#include "sncb/network.hpp"
#include "sncb/weather.hpp"

namespace nebulameos::sncb {

/// \brief One raw sensor reading from one train (the union of every
/// per-query schema's fields).
struct TrainEvent {
  int64_t train_id = 0;
  Timestamp ts = 0;
  double lon = 0.0;
  double lat = 0.0;
  double speed_ms = 0.0;
  double battery_v = 27.0;
  double battery_current_a = 0.0;
  double battery_temp_c = 25.0;
  double battery_soc = 1.0;  ///< state of charge [0, 1]
  bool on_battery = false;
  bool charging = false;
  double brake_pressure_bar = 5.0;
  bool emergency_brake = false;
  double noise_db = 60.0;
  int64_t passengers = 0;
  double cabin_temp_c = 21.0;
  double exterior_temp_c = 12.0;
  int64_t weather_condition = 0;  ///< WeatherCondition
  double weather_intensity = 0.0;
  bool gps_valid = true;
  bool speeding_alert = false;       ///< raw onboard alert (Q1 input)
  bool equipment_alert = false;      ///< raw onboard alert (Q1 input)
};

/// \brief Simulator configuration.
struct FleetConfig {
  int num_trains = 6;
  uint64_t seed = 42;
  Timestamp start_time = 0;  ///< 0 = 2023-06-01 08:00:00 UTC
  Duration tick = Millis(250);  ///< simulated time between a train's readings
  double cruise_speed_ms = 33.3;      ///< ~120 km/h
  double accel_ms2 = 0.6;
  double decel_ms2 = 0.8;
  Duration dwell_time = Seconds(75);  ///< station stop duration
  double gps_noise_deg = 2e-5;        ///< ~2 m jitter
  double gps_dropout_prob = 0.002;
  double unscheduled_stop_prob = 2e-5;  ///< per tick, per train
  Duration unscheduled_stop_duration = Seconds(120);
  int seats = 600;
  /// Train with a degrading battery (Q5 anomaly); -1 disables.
  int degraded_battery_train = 2;
  /// Train with degrading brakes (Q8 pattern); -1 disables.
  int degraded_brake_train = 4;
};

/// The simulator's effective start time: `config.start_time`, defaulting
/// to 2023-06-01 08:00:00 UTC when left at 0.
Timestamp EffectiveStartTime(const FleetConfig& config);

/// \brief Deterministic fleet simulator emitting interleaved train events.
class FleetSimulator {
 public:
  FleetSimulator(const RailNetwork* network, FleetConfig config = {});

  /// The next event (round-robin over trains; each visit advances that
  /// train's clock by one tick). Never ends.
  TrainEvent Next();

  /// Simulated timestamp of the next emitted event.
  Timestamp CurrentTime() const;

  const FleetConfig& config() const { return config_; }

  /// Expected battery voltage at state-of-charge \p soc for a healthy
  /// battery — the "predefined curve" Q5 checks deviations against.
  static double NominalBatteryVoltage(double soc);

 private:
  enum class Phase { kAccelerating, kCruising, kBraking, kDwelling };

  struct TrainState {
    size_t line = 0;
    double offset_m = 0.0;   ///< arc-length position along the line
    int direction = 1;       ///< +1 forward, -1 backward
    double speed_ms = 0.0;
    Phase phase = Phase::kAccelerating;
    Timestamp now = 0;
    Timestamp dwell_until = 0;
    bool unscheduled_stop = false;
    size_t next_stop = 0;   ///< index into stops (direction-dependent)
    std::vector<double> stops_m;  ///< station offsets on this line
    // Battery.
    double soc = 1.0;
    double battery_temp_c = 25.0;
    bool on_battery = false;
    // Passengers.
    int64_t passengers = 150;
    // Brake events.
    bool emergency_latched = false;
    Timestamp emergency_until = 0;
  };

  void AdvanceTrain(TrainState* train, Rng* rng);
  double TargetStopDistance(const TrainState& train) const;

  const RailNetwork* network_;
  FleetConfig config_;
  WeatherProvider weather_;
  std::vector<TrainState> trains_;
  std::vector<Rng> rngs_;
  size_t next_train_ = 0;
};

}  // namespace nebulameos::sncb

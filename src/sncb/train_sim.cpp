#include "sncb/train_sim.hpp"

#include <algorithm>
#include <cmath>

namespace nebulameos::sncb {

namespace {

// Stop arrival tolerance.
constexpr double kArriveMeters = 15.0;

// Time-of-day passenger demand multiplier (rush hours ~7-9 and 16-18 UTC).
double DemandFactor(Timestamp t) {
  const int hour = static_cast<int>((t / kMicrosPerHour) % 24);
  if (hour >= 7 && hour < 9) return 2.2;
  if (hour >= 16 && hour < 18) return 2.4;
  if (hour >= 22 || hour < 5) return 0.3;
  return 1.0;
}

}  // namespace

Timestamp EffectiveStartTime(const FleetConfig& config) {
  return config.start_time != 0 ? config.start_time
                                : MakeTimestamp(2023, 6, 1, 8, 0, 0);
}

FleetSimulator::FleetSimulator(const RailNetwork* network, FleetConfig config)
    : network_(network),
      config_(config),
      weather_(config.seed ^ 0x57EA7B17ull) {
  config_.start_time = EffectiveStartTime(config_);
  SplitMix64 seeder(config_.seed);
  const size_t num_lines = network_->lines().size();
  for (int i = 0; i < config_.num_trains; ++i) {
    TrainState train;
    train.line = static_cast<size_t>(i) % num_lines;
    train.now = config_.start_time;
    // Scheduled stops: line start, stations along the line, line end.
    train.stops_m.push_back(0.0);
    for (const auto& [offset, station] :
         network_->StationsAlong(train.line)) {
      (void)station;
      if (offset > 500.0 &&
          offset < network_->LineLengthMeters(train.line) - 500.0) {
        train.stops_m.push_back(offset);
      }
    }
    train.stops_m.push_back(network_->LineLengthMeters(train.line));
    // Stagger departures along the line so trains do not move in phase.
    train.offset_m =
        network_->LineLengthMeters(train.line) * (0.13 * i);
    train.offset_m = std::min(train.offset_m,
                              network_->LineLengthMeters(train.line) * 0.9);
    // Next stop: first stop beyond the starting offset.
    train.next_stop = 0;
    while (train.next_stop < train.stops_m.size() &&
           train.stops_m[train.next_stop] <= train.offset_m + kArriveMeters) {
      ++train.next_stop;
    }
    if (train.next_stop >= train.stops_m.size()) {
      train.direction = -1;
      train.next_stop = train.stops_m.size() - 2;
    }
    trains_.push_back(std::move(train));
    rngs_.emplace_back(seeder.Next());
  }
}

double FleetSimulator::NominalBatteryVoltage(double soc) {
  // Lead-acid-like curve for a 24 V auxiliary pack: 23.2 V empty,
  // ~27.6 V full, with a knee below 20% charge.
  const double s = std::clamp(soc, 0.0, 1.0);
  return 23.2 + 3.8 * s + 0.6 * s * s - (s < 0.2 ? (0.2 - s) * 3.0 : 0.0);
}

double FleetSimulator::TargetStopDistance(const TrainState& train) const {
  if (train.next_stop >= train.stops_m.size()) return 1e12;
  return std::fabs(train.stops_m[train.next_stop] - train.offset_m);
}

void FleetSimulator::AdvanceTrain(TrainState* train, Rng* rng) {
  const double dt = ToSeconds(config_.tick);
  const double line_len = network_->LineLengthMeters(train->line);

  switch (train->phase) {
    case Phase::kDwelling: {
      train->speed_ms = 0.0;
      if (train->now >= train->dwell_until) {
        train->unscheduled_stop = false;
        // Choose the next stop in the current direction; reverse at ends.
        if (train->direction > 0) {
          if (train->next_stop + 1 < train->stops_m.size()) {
            ++train->next_stop;
          } else {
            train->direction = -1;
            train->next_stop = train->stops_m.size() >= 2
                                   ? train->stops_m.size() - 2
                                   : 0;
          }
        } else {
          if (train->next_stop > 0) {
            --train->next_stop;
          } else {
            train->direction = 1;
            train->next_stop = train->stops_m.size() >= 2 ? 1 : 0;
          }
        }
        train->phase = Phase::kAccelerating;
      }
      break;
    }
    case Phase::kAccelerating: {
      train->speed_ms =
          std::min(config_.cruise_speed_ms, train->speed_ms +
                                                config_.accel_ms2 * dt);
      if (train->speed_ms >= config_.cruise_speed_ms - 0.01) {
        train->phase = Phase::kCruising;
      }
      break;
    }
    case Phase::kCruising: {
      // Slight overspeed wander (the raw behaviour Q3 flags in zones).
      train->speed_ms =
          config_.cruise_speed_ms * (1.0 + 0.04 * rng->Normal() * dt);
      train->speed_ms = std::clamp(train->speed_ms, 0.0,
                                   config_.cruise_speed_ms * 1.12);
      // Rare unscheduled halt outside stations (Q7).
      if (rng->Bernoulli(config_.unscheduled_stop_prob)) {
        train->unscheduled_stop = true;
        train->phase = Phase::kBraking;
      }
      break;
    }
    case Phase::kBraking: {
      train->speed_ms =
          std::max(0.0, train->speed_ms - config_.decel_ms2 * dt);
      if (train->speed_ms <= 0.01) {
        train->speed_ms = 0.0;
        train->phase = Phase::kDwelling;
        train->dwell_until =
            train->now + (train->unscheduled_stop
                              ? config_.unscheduled_stop_duration
                              : config_.dwell_time);
        if (!train->unscheduled_stop) {
          // Passenger exchange at the platform.
          const double alight = rng->Uniform(0.25, 0.65);
          train->passengers = static_cast<int64_t>(
              static_cast<double>(train->passengers) * (1.0 - alight));
          const double demand = DemandFactor(train->now);
          const int64_t boarding = static_cast<int64_t>(
              rng->Uniform(80.0, 260.0) * demand);
          train->passengers = std::min<int64_t>(
              train->passengers + boarding,
              static_cast<int64_t>(config_.seats * 1.25));
        }
      }
      break;
    }
  }

  // Braking trigger: stop ahead within braking distance (not while dwelling
  // or already braking for an unscheduled stop).
  if (train->phase == Phase::kCruising ||
      train->phase == Phase::kAccelerating) {
    const double brake_dist =
        train->speed_ms * train->speed_ms / (2.0 * config_.decel_ms2) + 30.0;
    if (TargetStopDistance(*train) <= brake_dist) {
      train->phase = Phase::kBraking;
    }
  }

  // Integrate position.
  train->offset_m += train->direction * train->speed_ms * dt;
  train->offset_m = std::clamp(train->offset_m, 0.0, line_len);

  // Battery: the middle section of each line is non-electrified, so
  // auxiliaries run on battery there; otherwise the pack charges.
  const double progress = line_len <= 0.0 ? 0.0 : train->offset_m / line_len;
  train->on_battery = progress >= 0.45 && progress < 0.65;
  const double load = 0.5 + 0.5 * static_cast<double>(train->passengers) /
                                static_cast<double>(config_.seats);
  if (train->on_battery) {
    train->soc = std::max(0.05, train->soc - 0.0008 * load * dt);
    train->battery_temp_c =
        std::min(70.0, train->battery_temp_c + 0.02 * load * dt);
  } else {
    train->soc = std::min(1.0, train->soc + 0.0012 * dt);
    train->battery_temp_c =
        std::max(22.0, train->battery_temp_c - 0.03 * dt);
  }

  train->now += config_.tick;
}

Timestamp FleetSimulator::CurrentTime() const {
  return trains_[next_train_].now;
}

TrainEvent FleetSimulator::Next() {
  const size_t idx = next_train_;
  next_train_ = (next_train_ + 1) % trains_.size();
  TrainState& train = trains_[idx];
  Rng& rng = rngs_[idx];

  AdvanceTrain(&train, &rng);

  TrainEvent ev;
  ev.train_id = static_cast<int64_t>(idx);
  ev.ts = train.now;
  const Point pos = network_->PositionAlong(train.line, train.offset_m);
  ev.gps_valid = !rng.Bernoulli(config_.gps_dropout_prob);
  ev.lon = pos.x + rng.Normal() * config_.gps_noise_deg;
  ev.lat = pos.y + rng.Normal() * config_.gps_noise_deg;
  ev.speed_ms = train.speed_ms;

  // Battery sensors; the degraded train sags below the nominal curve under
  // load and runs hot (Q5's deviation signal).
  const bool degraded_battery =
      static_cast<int>(idx) == config_.degraded_battery_train;
  ev.battery_soc = train.soc;
  ev.on_battery = train.on_battery;
  ev.charging = !train.on_battery && train.soc < 0.999;
  const double load_a = train.on_battery
                            ? 30.0 + 25.0 * static_cast<double>(
                                                train.passengers) /
                                         static_cast<double>(config_.seats)
                            : (ev.charging ? -14.0 * (1.1 - train.soc) : 0.0);
  ev.battery_current_a = load_a + rng.Normal() * 0.8;
  double sag = 0.0;
  if (degraded_battery && train.on_battery) {
    sag = 0.9 + 0.5 * (1.0 - train.soc);  // well past the 0.35 V alert band
  }
  ev.battery_v = NominalBatteryVoltage(train.soc) -
                 0.002 * std::max(0.0, load_a) - sag + rng.Normal() * 0.03;
  ev.battery_temp_c = train.battery_temp_c +
                      (degraded_battery && train.on_battery ? 12.0 : 0.0) +
                      rng.Normal() * 0.4;

  // Brakes (Q8): pressure dips while braking; emergency brakes are rare but
  // clustered on the degraded-brake train.
  const bool degraded_brakes =
      static_cast<int>(idx) == config_.degraded_brake_train;
  const double nominal_bar = degraded_brakes ? 4.45 : 5.0;
  if (train.phase == Phase::kBraking) {
    ev.brake_pressure_bar = nominal_bar - rng.Uniform(0.6, 1.6);
    const double emergency_prob = degraded_brakes ? 0.02 : 0.0015;
    if (!train.emergency_latched && rng.Bernoulli(emergency_prob)) {
      train.emergency_latched = true;
      train.emergency_until = train.now + Seconds(8);
    }
  } else {
    ev.brake_pressure_bar = nominal_bar + rng.Normal() * 0.05;
  }
  if (train.emergency_latched) {
    if (train.now <= train.emergency_until) {
      ev.emergency_brake = true;
      ev.brake_pressure_bar = std::min(ev.brake_pressure_bar, 2.1);
    } else {
      train.emergency_latched = false;
    }
  }

  // Noise (Q2): speed-correlated with occasional peaks.
  const double speed_kmh = train.speed_ms * 3.6;
  ev.noise_db = 52.0 + 0.16 * speed_kmh + rng.Normal() * 2.0 +
                (rng.Bernoulli(0.01) ? 15.0 : 0.0);

  // Passengers / cabin (Q6).
  ev.passengers = train.passengers;
  ev.cabin_temp_c = 20.0 +
                    4.0 * static_cast<double>(train.passengers) /
                        static_cast<double>(config_.seats) +
                    rng.Normal() * 0.3;

  // Weather (Q4) from the shared grid.
  const WeatherSample weather =
      weather_.Sample(WeatherCellOf(ev.lon, ev.lat), train.now);
  ev.weather_condition = static_cast<int64_t>(weather.condition);
  ev.weather_intensity = weather.intensity;
  ev.exterior_temp_c = weather.temperature_c;

  // Raw onboard alerts (Q1 inputs): overspeed beyond the 120 km/h service
  // speed plus margin, and sporadic equipment warnings.
  ev.speeding_alert = speed_kmh > 125.0;
  ev.equipment_alert = rng.Bernoulli(0.0008);
  return ev;
}

}  // namespace nebulameos::sncb

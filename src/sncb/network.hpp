/// \file network.hpp
/// \brief A Belgian-rail-like network: stations, polyline lines, and the
/// geofence inventory built on top of them.
///
/// The paper's dataset comes from six SNCB trains running on the Belgian
/// network for six months — proprietary data we substitute with a
/// deterministic model (docs/ARCHITECTURE.md, "SNCB fleet simulation").
/// Coordinates approximate real Belgian
/// cities so Figure-2-style exports render plausibly; geometry is what the
/// queries exercise (zone crossings, station stops, curve segments), not
/// the exact track alignment.

#pragma once

#include "meos/geo.hpp"
#include "nebulameos/geofence.hpp"

namespace nebulameos::sncb {

using meos::Point;

/// \brief A station: name + location + relative popularity (drives
/// passenger boarding).
struct Station {
  std::string name;
  Point location;
  double popularity = 1.0;
};

/// \brief A line: named polyline through intermediate shape points.
struct RailLine {
  std::string name;
  std::vector<Point> path;  ///< >= 2 points, WGS84 lon/lat
};

/// \brief The network: stations, lines, and arc-length positioning along
/// lines.
class RailNetwork {
 public:
  /// Adds a station; returns its index.
  size_t AddStation(Station station);

  /// Adds a line; returns its index. Precomputes metric segment lengths.
  size_t AddLine(RailLine line);

  const std::vector<Station>& stations() const { return stations_; }
  const std::vector<RailLine>& lines() const { return lines_; }

  /// Metric length of line \p i in meters.
  double LineLengthMeters(size_t i) const { return line_length_[i]; }

  /// Position at \p meters along line \p i (clamped to the ends).
  Point PositionAlong(size_t i, double meters) const;

  /// Arc-length offsets (meters) of every station lying within
  /// \p snap_meters of line \p i, sorted ascending. Used to place scheduled
  /// stops.
  std::vector<std::pair<double, size_t>> StationsAlong(
      size_t i, double snap_meters = 1500.0) const;

 private:
  std::vector<Station> stations_;
  std::vector<RailLine> lines_;
  std::vector<double> line_length_;
  // Per line: cumulative meters at each path vertex.
  std::vector<std::vector<double>> cumulative_;
};

/// \brief Builds the reference network: 12 Belgian cities, 6 lines
/// (one per train in the demo).
RailNetwork BuildBelgianNetwork();

/// \brief Populates \p registry with the demo geofences derived from the
/// network:
/// * a 400 m-radius station zone per station;
/// * workshop zones + POIs near three hubs;
/// * maintenance polygons on two line segments;
/// * noise-sensitive neighbourhoods near the three largest cities;
/// * high-risk (sharp-curve / construction) zones with speed limits;
/// * a coarse grid of weather zones covering the country.
void PopulateSncbGeofences(const RailNetwork& network,
                           integration::GeofenceRegistry* registry);

}  // namespace nebulameos::sncb

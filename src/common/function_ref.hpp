/// \file function_ref.hpp
/// \brief A non-owning, trivially-copyable callable reference.
///
/// `FunctionRef<R(Args...)>` is two words: a pointer to the referenced
/// callable and a thunk that invokes it. Unlike `std::function` it never
/// allocates, never copies the target, and costs one indirect call — which
/// is why the engine's per-emit hand-off between pipeline operators uses it
/// (operator.hpp): the emit callable used to be re-wrapped into a
/// `std::function` on every operator hop of every buffer.
///
/// The referenced callable must outlive the `FunctionRef`. Binding a
/// temporary lambda at a call site is safe (temporaries live to the end of
/// the full expression); *storing* a `FunctionRef` beyond the statement
/// that created it is not.

#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace nebulameos {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace nebulameos

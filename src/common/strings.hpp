/// \file strings.hpp
/// \brief Small string helpers (splitting, trimming, joining, CSV rows,
/// number formatting) used by sources, sinks and IO code.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace nebulameos {

/// Splits \p text on \p sep. Keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True iff \p text starts with \p prefix.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses a signed 64-bit integer, rejecting trailing garbage.
Result<int64_t> ParseInt64(std::string_view text);

/// Formats a double with up to \p precision significant decimals, without a
/// trailing ".0" (WKT-style numeric output).
std::string FormatDouble(double v, int precision = 12);

}  // namespace nebulameos

#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nebulameos {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("bad double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("bad integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace nebulameos

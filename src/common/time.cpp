#include "common/time.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace nebulameos {

namespace {

// Days since the Unix epoch for a proleptic Gregorian civil date.
// Algorithm by Howard Hinnant (public domain).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Timestamp MakeTimestamp(int year, int month, int day, int hour, int minute,
                        int second, int micro) {
  const int64_t days = DaysFromCivil(year, month, day);
  int64_t secs = days * 86400 + hour * 3600 + minute * 60 + second;
  return secs * kMicrosPerSecond + micro;
}

std::string FormatTimestamp(Timestamp ts) {
  int64_t micros = ts % kMicrosPerSecond;
  int64_t secs = ts / kMicrosPerSecond;
  if (micros < 0) {
    micros += kMicrosPerSecond;
    secs -= 1;
  }
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  const int hh = static_cast<int>(sod / 3600);
  const int mm = static_cast<int>((sod % 3600) / 60);
  const int ss = static_cast<int>(sod % 60);
  char buf[48];
  if (micros != 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02d:%02d:%02d.%06lld", y,
                  m, d, hh, mm, ss, static_cast<long long>(micros));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02d:%02d:%02d", y, m, d,
                  hh, mm, ss);
  }
  return buf;
}

Result<Timestamp> ParseTimestamp(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  long micros = 0;
  char frac[8] = {0};
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%6s", &y, &mo, &d, &h,
                      &mi, &s, frac);
  if (n < 3) {
    return Status::ParseError("cannot parse timestamp: '" + text + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 60) {
    return Status::ParseError("timestamp field out of range: '" + text + "'");
  }
  if (n == 7) {
    // Right-pad the fractional part to 6 digits.
    char padded[7] = {'0', '0', '0', '0', '0', '0', 0};
    for (int i = 0; i < 6 && frac[i]; ++i) padded[i] = frac[i];
    micros = std::strtol(padded, nullptr, 10);
  }
  return MakeTimestamp(y, mo, d, h, mi, s, static_cast<int>(micros));
}

Timestamp WallClockNow() {
  using namespace std::chrono;
  return duration_cast<microseconds>(system_clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicNowMicros() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace nebulameos

/// \file random.hpp
/// \brief Deterministic, seedable random generators.
///
/// All stochastic components (sensor noise, dropouts, weather) draw from
/// `SplitMix64`/`Xoroshiro128pp` so that every experiment in the repository
/// is reproducible from a single seed.

#pragma once

#include <cmath>
#include <cstdint>

namespace nebulameos {

/// \brief SplitMix64: tiny, high-quality 64-bit generator; used for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoroshiro128++: fast general-purpose PRNG with uniform/normal
/// helpers. Deterministic for a given seed.
class Rng {
 public:
  /// Constructs a generator; distinct seeds yield independent streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    s0_ = sm.Next();
    s1_ = sm.Next();
  }

  /// Next 64 random bits.
  uint64_t Next() {
    const uint64_t a = s0_;
    uint64_t b = s1_;
    const uint64_t result = Rotl(a + b, 17) + a;
    b ^= a;
    s0_ = Rotl(a, 49) ^ b ^ (b << 21);
    s1_ = Rotl(b, 28);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). \p n must be > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Standard normal deviate (Box–Muller; one value per call).
  double Normal() {
    // Avoid log(0).
    double u1 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal deviate with the given \p mean and \p stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace nebulameos

/// \file time.hpp
/// \brief Timestamp model shared by the stream engine and the mobility
/// library.
///
/// All event time is `Timestamp`: microseconds since the Unix epoch, as in
/// MEOS/MobilityDB (PostgreSQL timestamps). Durations are `Duration`
/// (microseconds). Helpers convert to/from ISO-8601-like strings and
/// human-readable units.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace nebulameos {

/// Event time: microseconds since the Unix epoch.
using Timestamp = int64_t;
/// Time span in microseconds.
using Duration = int64_t;

/// Number of microseconds in one second.
inline constexpr Duration kMicrosPerSecond = 1'000'000;
/// Number of microseconds in one millisecond.
inline constexpr Duration kMicrosPerMilli = 1'000;
/// Number of microseconds in one minute.
inline constexpr Duration kMicrosPerMinute = 60 * kMicrosPerSecond;
/// Number of microseconds in one hour.
inline constexpr Duration kMicrosPerHour = 60 * kMicrosPerMinute;
/// Number of microseconds in one day.
inline constexpr Duration kMicrosPerDay = 24 * kMicrosPerHour;

/// Builds a Duration from whole seconds.
constexpr Duration Seconds(int64_t s) { return s * kMicrosPerSecond; }
/// Builds a Duration from whole milliseconds.
constexpr Duration Millis(int64_t ms) { return ms * kMicrosPerMilli; }
/// Builds a Duration from whole minutes.
constexpr Duration Minutes(int64_t m) { return m * kMicrosPerMinute; }
/// Builds a Duration from whole hours.
constexpr Duration Hours(int64_t h) { return h * kMicrosPerHour; }

/// Converts a duration to fractional seconds.
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosPerSecond);
}

/// \brief Builds a timestamp from a civil date-time (UTC).
/// \param year four-digit year, \p month 1-12, \p day 1-31, etc.
/// Proleptic Gregorian; no leap seconds.
Timestamp MakeTimestamp(int year, int month, int day, int hour = 0,
                        int minute = 0, int second = 0, int micro = 0);

/// \brief Formats \p ts as "YYYY-MM-DD HH:MM:SS[.ffffff]" (UTC).
std::string FormatTimestamp(Timestamp ts);

/// \brief Parses "YYYY-MM-DD HH:MM:SS[.ffffff]" (UTC) into a timestamp.
Result<Timestamp> ParseTimestamp(const std::string& text);

/// \brief Wall-clock now in microseconds since the epoch (for metrics only;
/// all query semantics use event time).
Timestamp WallClockNow();

/// \brief Monotonic clock in microseconds (for measuring elapsed time).
int64_t MonotonicNowMicros();

}  // namespace nebulameos

/// \file mutex.hpp
/// \brief Capability-annotated mutex primitives for `-Wthread-safety`.
///
/// Thin wrappers over `std::mutex` / `std::condition_variable_any` that
/// carry Clang capability annotations (thread_annotations.hpp), so fields
/// can be declared `NM_GUARDED_BY(mutex_)` and internal helpers
/// `NM_REQUIRES(mutex_)` — the CI clang build then rejects any access to
/// guarded state without the lock. Under GCC the annotations vanish and
/// these compile to the underlying standard types with zero overhead
/// beyond `MutexLock`'s one bool.
///
///   - `Mutex`       — annotated `std::mutex` (a Clang "capability").
///   - `MutexLock`   — scoped lock, relockable (`Unlock()`/`Lock()`), the
///                     annotated counterpart of `std::unique_lock`.
///   - `CondVar`     — condition variable waiting on a `Mutex`;
///                     `Wait(mu)` requires the capability, matching the
///                     fact that the predicate re-check touches guarded
///                     state. Prefer explicit `while (!pred) cv.Wait(mu);`
///                     loops over predicate lambdas: Clang analyzes a
///                     lambda as a separate function that does not hold
///                     the capability, so guarded reads inside one would
///                     (rightly) fail the analysis.

#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace nebulameos {

/// \brief A `std::mutex` declared as a thread-safety capability.
class NM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NM_ACQUIRE() { mu_.lock(); }
  void unlock() NM_RELEASE() { mu_.unlock(); }
  bool try_lock() NM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief Scoped lock over `Mutex`, relockable like `std::unique_lock`:
/// `Unlock()` drops the lock around a long operation (task execution,
/// blocking engine calls) and `Lock()` reacquires it. The destructor
/// releases only when currently held.
class NM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NM_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }

  ~MutexLock() NM_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Reacquires after `Unlock()`.
  void Lock() NM_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  /// Temporarily releases the mutex (e.g. to run a task or call into the
  /// engine without the lock).
  void Unlock() NM_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` atomically releases the mutex, blocks, and reacquires before
/// returning — annotated `NM_REQUIRES(mu)` because the caller's
/// surrounding predicate loop reads guarded state. Built on
/// `std::condition_variable_any` so it accepts the annotated `Mutex`
/// directly as a BasicLockable.
class CondVar {
 public:
  void Wait(Mutex& mu) NM_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns `std::cv_status::timeout` on expiry.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      NM_REQUIRES(mu) {
    return cv_.wait_for(mu, dur);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nebulameos

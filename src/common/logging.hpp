/// \file logging.hpp
/// \brief Minimal leveled logger.
///
/// The engine logs sparingly (query lifecycle, errors). Logging is
/// process-global, thread-safe, and off below the configured level.

#pragma once

#include <sstream>
#include <string>

namespace nebulameos {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (default: kWarn, so tests
/// and benchmarks stay quiet).
void SetLogLevel(LogLevel level);

/// Current global log level.
LogLevel GetLogLevel();

/// Emits \p message at \p level if enabled. Thread-safe.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log line that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace nebulameos

#define NM_LOG_DEBUG() ::nebulameos::internal::LogLine(::nebulameos::LogLevel::kDebug)
#define NM_LOG_INFO() ::nebulameos::internal::LogLine(::nebulameos::LogLevel::kInfo)
#define NM_LOG_WARN() ::nebulameos::internal::LogLine(::nebulameos::LogLevel::kWarn)
#define NM_LOG_ERROR() ::nebulameos::internal::LogLine(::nebulameos::LogLevel::kError)

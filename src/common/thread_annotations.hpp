/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis attribute macros.
///
/// These macros attach Clang's `-Wthread-safety` capability attributes to
/// types, members and functions so the compiler statically checks the
/// locking discipline: which mutex guards which field, which functions
/// must (or must not) be entered with a lock held, and which functions
/// acquire/release one. Under GCC (the dev container's only compiler) all
/// macros expand to nothing — the annotations are verified by the CI
/// `static-analysis` job, which builds with clang and
/// `-Wthread-safety -Werror`.
///
/// The macro set and naming follow the Clang documentation and abseil's
/// `thread_annotations.h` (capability-based spellings only). Annotate with
/// the `Mutex` wrapper from common/mutex.hpp, not raw `std::mutex` —
/// the analysis needs a capability-annotated type to track.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define NM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NM_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

/// Declares a type a capability ("mutex") the analysis can track.
#define NM_CAPABILITY(x) NM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define NM_SCOPED_CAPABILITY NM_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while holding \p x.
#define NM_GUARDED_BY(x) NM_THREAD_ANNOTATION(guarded_by(x))

/// The data pointed to by the annotated pointer is guarded by \p x.
#define NM_PT_GUARDED_BY(x) NM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities.
#define NM_REQUIRES(...) NM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the capabilities.
#define NM_EXCLUDES(...) NM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capabilities and holds them on return.
#define NM_ACQUIRE(...) NM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the capabilities (which must be held on entry).
#define NM_RELEASE(...) NM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define NM_TRY_ACQUIRE(...) \
  NM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the capability guarding the annotated object.
#define NM_RETURN_CAPABILITY(x) NM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is excluded from the analysis. Used
/// only where the locking pattern is correct but inexpressible (e.g.
/// conditional unlock driven by runtime state).
#define NM_NO_THREAD_SAFETY_ANALYSIS \
  NM_THREAD_ANNOTATION(no_thread_safety_analysis)

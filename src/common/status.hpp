/// \file status.hpp
/// \brief Error-handling primitives used across NebulaMEOS.
///
/// Hot paths do not throw; fallible functions return `Status` or
/// `Result<T>` (a value-or-status sum type), mirroring the convention of
/// production database codebases (Arrow, RocksDB).

#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace nebulameos {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,
  kParseError,
  kUnavailable,
  kDataLoss,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error result of an operation that yields no value.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given \p code and \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an OutOfRange status with \p msg.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotFound status with \p msg.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists status with \p msg.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a FailedPrecondition status with \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns a ResourceExhausted status with \p msg.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Returns an Unimplemented status with \p msg.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// Returns an Internal status with \p msg.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a Cancelled status with \p msg.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Returns an Unavailable status with \p msg.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Returns a DataLoss status with \p msg.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// Returns a ParseError status with \p msg.
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-status sum type for fallible computations.
///
/// A `Result<T>` holds either a `T` (success) or a non-OK `Status`.
/// Accessing the value of an errored result is a programming error
/// (checked by assertion in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result from a non-OK \p status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  /// True iff the result holds a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// The held value (mutable); must only be called when `ok()`.
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Moves the held value out; must only be called when `ok()`.
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or \p fallback when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status from the current function.
#define NM_RETURN_NOT_OK(expr)            \
  do {                                    \
    ::nebulameos::Status _s = (expr);     \
    if (!_s.ok()) return _s;              \
  } while (0)

#define NM_INTERNAL_CONCAT2(a, b) a##b
#define NM_INTERNAL_CONCAT(a, b) NM_INTERNAL_CONCAT2(a, b)

/// Assigns the value of a `Result` expression or propagates its error.
#define NM_ASSIGN_OR_RETURN(lhs, expr)                   \
  auto NM_INTERNAL_CONCAT(_nm_res_, __LINE__) = (expr);  \
  if (!NM_INTERNAL_CONCAT(_nm_res_, __LINE__).ok())      \
    return NM_INTERNAL_CONCAT(_nm_res_, __LINE__).status(); \
  lhs = std::move(NM_INTERNAL_CONCAT(_nm_res_, __LINE__)).value();

}  // namespace nebulameos

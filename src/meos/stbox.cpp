#include "meos/stbox.hpp"

#include "common/strings.hpp"

namespace nebulameos::meos {

Result<STBox> STBox::Make(double xmin, double ymin, double xmax, double ymax,
                          const Period& period) {
  if (xmin > xmax || ymin > ymax) {
    return Status::InvalidArgument("stbox: min exceeds max");
  }
  STBox b;
  b.box_ = GeoBox{xmin, ymin, xmax, ymax};
  b.period_ = period;
  b.has_space_ = true;
  b.has_time_ = true;
  return b;
}

Result<STBox> STBox::MakeSpatial(double xmin, double ymin, double xmax,
                                 double ymax) {
  if (xmin > xmax || ymin > ymax) {
    return Status::InvalidArgument("stbox: min exceeds max");
  }
  STBox b;
  b.box_ = GeoBox{xmin, ymin, xmax, ymax};
  b.has_space_ = true;
  return b;
}

STBox STBox::MakeTemporal(const Period& period) {
  STBox b;
  b.period_ = period;
  b.has_time_ = true;
  return b;
}

STBox STBox::FromGeoBox(const GeoBox& box, const std::optional<Period>& period) {
  STBox b;
  b.box_ = box;
  b.has_space_ = true;
  if (period) {
    b.period_ = *period;
    b.has_time_ = true;
  }
  return b;
}

bool STBox::Contains(const Point& p, Timestamp t) const {
  return ContainsPoint(p) && ContainsTime(t);
}

bool STBox::ContainsPoint(const Point& p) const {
  return !has_space_ || box_.Contains(p);
}

bool STBox::ContainsTime(Timestamp t) const {
  return !has_time_ || period_.Contains(t);
}

bool STBox::Overlaps(const STBox& other) const {
  if (has_space_ && other.has_space_ && !box_.Overlaps(other.box_)) {
    return false;
  }
  if (has_time_ && other.has_time_ && !period_.Overlaps(other.period_)) {
    return false;
  }
  return true;
}

bool STBox::ContainsBox(const STBox& other) const {
  if (has_space_ && other.has_space_) {
    if (other.box_.xmin < box_.xmin || other.box_.xmax > box_.xmax ||
        other.box_.ymin < box_.ymin || other.box_.ymax > box_.ymax) {
      return false;
    }
  }
  if (has_time_ && other.has_time_ &&
      !period_.ContainsPeriod(other.period_)) {
    return false;
  }
  return true;
}

STBox STBox::Expanded(double dspace, Duration dtime) const {
  STBox b = *this;
  if (has_space_) b.box_ = box_.Expanded(dspace);
  if (has_time_ && dtime != 0) {
    auto p = Period::Make(period_.lower() - dtime, period_.upper() + dtime,
                          period_.lower_inc(), period_.upper_inc());
    if (p.ok()) b.period_ = *p;
  }
  return b;
}

STBox STBox::Union(const STBox& other) const {
  STBox b = *this;
  if (other.has_space_) {
    if (b.has_space_) {
      b.box_.ExtendBox(other.box_);
    } else {
      b.box_ = other.box_;
      b.has_space_ = true;
    }
  }
  if (other.has_time_) {
    if (b.has_time_) {
      b.period_ = b.period_.Union(other.period_);
    } else {
      b.period_ = other.period_;
      b.has_time_ = true;
    }
  }
  return b;
}

std::string STBox::ToString() const {
  std::string out = "STBOX ";
  if (has_space_ && has_time_) {
    out += "XT(((" + FormatDouble(box_.xmin) + "," + FormatDouble(box_.ymin) +
           "),(" + FormatDouble(box_.xmax) + "," + FormatDouble(box_.ymax) +
           "))," + period_.ToString() + ")";
  } else if (has_space_) {
    out += "X(((" + FormatDouble(box_.xmin) + "," + FormatDouble(box_.ymin) +
           "),(" + FormatDouble(box_.xmax) + "," + FormatDouble(box_.ymax) +
           ")))";
  } else if (has_time_) {
    out += "T(" + period_.ToString() + ")";
  } else {
    out += "()";
  }
  return out;
}

bool STBox::operator==(const STBox& o) const {
  if (has_space_ != o.has_space_ || has_time_ != o.has_time_) return false;
  if (has_space_ &&
      (box_.xmin != o.box_.xmin || box_.ymin != o.box_.ymin ||
       box_.xmax != o.box_.xmax || box_.ymax != o.box_.ymax)) {
    return false;
  }
  if (has_time_ && !(period_ == o.period_)) return false;
  return true;
}

}  // namespace nebulameos::meos

#include "meos/period.hpp"

#include <algorithm>
#include <cassert>

namespace nebulameos::meos {

// ---------------------------------------------------------------------------
// Period
// ---------------------------------------------------------------------------

Result<Period> Period::Make(Timestamp lower, Timestamp upper, bool lower_inc,
                            bool upper_inc) {
  if (lower > upper) {
    return Status::InvalidArgument("period lower bound after upper bound");
  }
  if (lower == upper && !(lower_inc && upper_inc)) {
    return Status::InvalidArgument(
        "instantaneous period must be inclusive on both bounds");
  }
  Period p;
  p.lower_ = lower;
  p.upper_ = upper;
  p.lower_inc_ = lower_inc;
  p.upper_inc_ = upper_inc;
  return p;
}

bool Period::Contains(Timestamp t) const {
  if (t < lower_ || t > upper_) return false;
  if (t == lower_ && !lower_inc_) return false;
  if (t == upper_ && !upper_inc_) return false;
  return true;
}

bool Period::ContainsPeriod(const Period& other) const {
  // Lower bound must not start before ours (respecting inclusivity).
  if (other.lower_ < lower_) return false;
  if (other.lower_ == lower_ && other.lower_inc_ && !lower_inc_) return false;
  if (other.upper_ > upper_) return false;
  if (other.upper_ == upper_ && other.upper_inc_ && !upper_inc_) return false;
  return true;
}

bool Period::Overlaps(const Period& other) const {
  if (upper_ < other.lower_ || other.upper_ < lower_) return false;
  if (upper_ == other.lower_ && !(upper_inc_ && other.lower_inc_)) {
    return false;
  }
  if (other.upper_ == lower_ && !(other.upper_inc_ && lower_inc_)) {
    return false;
  }
  return true;
}

bool Period::IsAdjacent(const Period& other) const {
  if (upper_ == other.lower_) return upper_inc_ != other.lower_inc_;
  if (other.upper_ == lower_) return other.upper_inc_ != lower_inc_;
  return false;
}

std::optional<Period> Period::Intersection(const Period& other) const {
  if (!Overlaps(other)) return std::nullopt;
  Timestamp lo;
  bool lo_inc;
  if (lower_ > other.lower_) {
    lo = lower_;
    lo_inc = lower_inc_;
  } else if (lower_ < other.lower_) {
    lo = other.lower_;
    lo_inc = other.lower_inc_;
  } else {
    lo = lower_;
    lo_inc = lower_inc_ && other.lower_inc_;
  }
  Timestamp hi;
  bool hi_inc;
  if (upper_ < other.upper_) {
    hi = upper_;
    hi_inc = upper_inc_;
  } else if (upper_ > other.upper_) {
    hi = other.upper_;
    hi_inc = other.upper_inc_;
  } else {
    hi = upper_;
    hi_inc = upper_inc_ && other.upper_inc_;
  }
  auto res = Make(lo, hi, lo_inc, hi_inc);
  if (!res.ok()) return std::nullopt;  // degenerate touch with open bounds
  return *res;
}

Period Period::Union(const Period& other) const {
  Timestamp lo;
  bool lo_inc;
  if (lower_ < other.lower_) {
    lo = lower_;
    lo_inc = lower_inc_;
  } else if (lower_ > other.lower_) {
    lo = other.lower_;
    lo_inc = other.lower_inc_;
  } else {
    lo = lower_;
    lo_inc = lower_inc_ || other.lower_inc_;
  }
  Timestamp hi;
  bool hi_inc;
  if (upper_ > other.upper_) {
    hi = upper_;
    hi_inc = upper_inc_;
  } else if (upper_ < other.upper_) {
    hi = other.upper_;
    hi_inc = other.upper_inc_;
  } else {
    hi = upper_;
    hi_inc = upper_inc_ || other.upper_inc_;
  }
  auto res = Make(lo, hi, lo_inc, hi_inc);
  assert(res.ok());
  return *res;
}

Period Period::Shifted(Duration delta) const {
  Period p = *this;
  p.lower_ += delta;
  p.upper_ += delta;
  return p;
}

std::string Period::ToString() const {
  std::string out;
  out += lower_inc_ ? '[' : '(';
  out += FormatTimestamp(lower_);
  out += ", ";
  out += FormatTimestamp(upper_);
  out += upper_inc_ ? ']' : ')';
  return out;
}

// ---------------------------------------------------------------------------
// TimestampSet
// ---------------------------------------------------------------------------

TimestampSet::TimestampSet(std::vector<Timestamp> times)
    : times_(std::move(times)) {
  std::sort(times_.begin(), times_.end());
  times_.erase(std::unique(times_.begin(), times_.end()), times_.end());
}

bool TimestampSet::Contains(Timestamp t) const {
  return std::binary_search(times_.begin(), times_.end(), t);
}

Period TimestampSet::Extent() const {
  assert(!times_.empty());
  return Period(times_.front(), times_.back());
}

// ---------------------------------------------------------------------------
// PeriodSet
// ---------------------------------------------------------------------------

PeriodSet::PeriodSet(std::vector<Period> periods) {
  if (periods.empty()) return;
  std::sort(periods.begin(), periods.end(),
            [](const Period& a, const Period& b) {
              if (a.lower() != b.lower()) return a.lower() < b.lower();
              // Inclusive lower bound sorts first at equal timestamps.
              return a.lower_inc() && !b.lower_inc();
            });
  periods_.push_back(periods[0]);
  for (size_t i = 1; i < periods.size(); ++i) {
    Period& last = periods_.back();
    const Period& cur = periods[i];
    if (last.Overlaps(cur) || last.IsAdjacent(cur)) {
      last = last.Union(cur);
    } else {
      periods_.push_back(cur);
    }
  }
}

Duration PeriodSet::TotalDuration() const {
  Duration total = 0;
  for (const Period& p : periods_) total += p.DurationMicros();
  return total;
}

bool PeriodSet::Contains(Timestamp t) const {
  // Binary search over disjoint sorted periods.
  auto it = std::upper_bound(
      periods_.begin(), periods_.end(), t,
      [](Timestamp v, const Period& p) { return v < p.lower(); });
  if (it == periods_.begin()) return false;
  return std::prev(it)->Contains(t);
}

Period PeriodSet::Extent() const {
  assert(!periods_.empty());
  auto res = Period::Make(periods_.front().lower(), periods_.back().upper(),
                          periods_.front().lower_inc(),
                          periods_.back().upper_inc());
  assert(res.ok());
  return *res;
}

PeriodSet PeriodSet::UnionWith(const PeriodSet& other) const {
  std::vector<Period> all = periods_;
  all.insert(all.end(), other.periods_.begin(), other.periods_.end());
  return PeriodSet(std::move(all));
}

PeriodSet PeriodSet::IntersectionWith(const PeriodSet& other) const {
  std::vector<Period> out;
  size_t i = 0, j = 0;
  while (i < periods_.size() && j < other.periods_.size()) {
    if (auto inter = periods_[i].Intersection(other.periods_[j])) {
      out.push_back(*inter);
    }
    if (periods_[i].upper() < other.periods_[j].upper()) {
      ++i;
    } else {
      ++j;
    }
  }
  return PeriodSet(std::move(out));
}

PeriodSet PeriodSet::Difference(const PeriodSet& other) const {
  std::vector<Period> out;
  for (const Period& base : periods_) {
    // Carve every overlapping period of `other` out of `base`.
    std::vector<Period> pieces = {base};
    for (const Period& cut : other.periods_) {
      std::vector<Period> next;
      for (const Period& piece : pieces) {
        auto inter = piece.Intersection(cut);
        if (!inter) {
          next.push_back(piece);
          continue;
        }
        // Left remainder: [piece.lower, inter.lower) (flip inclusivity).
        if (piece.lower() < inter->lower() ||
            (piece.lower() == inter->lower() && piece.lower_inc() &&
             !inter->lower_inc())) {
          auto left = Period::Make(piece.lower(), inter->lower(),
                                   piece.lower_inc(), !inter->lower_inc());
          if (left.ok()) next.push_back(*left);
        }
        // Right remainder: (inter.upper, piece.upper].
        if (inter->upper() < piece.upper() ||
            (inter->upper() == piece.upper() && piece.upper_inc() &&
             !inter->upper_inc())) {
          auto right = Period::Make(inter->upper(), piece.upper(),
                                    !inter->upper_inc(), piece.upper_inc());
          if (right.ok()) next.push_back(*right);
        }
      }
      pieces = std::move(next);
    }
    out.insert(out.end(), pieces.begin(), pieces.end());
  }
  return PeriodSet(std::move(out));
}

}  // namespace nebulameos::meos

/// \file tfloat_ops.hpp
/// \brief Numeric algebra over temporal floats and booleans.
///
/// Implements the lifted operations MEOS provides on `tfloat`/`tbool`:
/// arithmetic with constants and between synchronized sequences, temporal
/// comparisons that compute exact crossing instants for linear sequences
/// (`tfloat < c` yields a `tbool` that switches exactly where the value
/// crosses `c`), ever/always predicates, value restriction, integrals and
/// time-weighted averages, and the boolean combinators used to turn
/// predicates into alert periods (`WhenTrue`).

#pragma once

#include <functional>

#include "meos/temporal.hpp"

namespace nebulameos::meos {

/// Comparison operators for temporal comparisons.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Applies \p op to (\p a, \p b).
bool EvalCmp(CmpOp op, double a, double b);

// --- Arithmetic ------------------------------------------------------------

/// seq + c.
TFloatSeq AddConst(const TFloatSeq& seq, double c);
/// seq * c.
TFloatSeq MulConst(const TFloatSeq& seq, double c);

/// \brief Synchronizes two sequences onto their common period and the union
/// of their instants (plus interpolated values), so binary operations can be
/// applied instant-wise. Returns nullopt when the periods do not overlap.
std::optional<std::pair<TFloatSeq, TFloatSeq>> Synchronize(
    const TFloatSeq& a, const TFloatSeq& b);

/// a + b on the synchronized domain; nullopt when disjoint in time.
std::optional<TFloatSeq> Add(const TFloatSeq& a, const TFloatSeq& b);
/// a - b on the synchronized domain; nullopt when disjoint in time.
std::optional<TFloatSeq> Sub(const TFloatSeq& a, const TFloatSeq& b);

// --- Temporal comparison (exact crossings) ---------------------------------

/// \brief Temporal comparison `seq op c` as a step `tbool`.
///
/// For linear sequences the result switches exactly at the crossing
/// timestamps (rounded to the microsecond grid); for step sequences it
/// switches at the instants.
TBoolSeq CmpConst(const TFloatSeq& seq, CmpOp op, double c);

/// Temporal comparison between two synchronized sequences.
std::optional<TBoolSeq> Cmp(const TFloatSeq& a, CmpOp op, const TFloatSeq& b);

// --- Ever / always ---------------------------------------------------------

/// True iff `seq op c` holds at some instant (interpolation-aware).
bool Ever(const TFloatSeq& seq, CmpOp op, double c);
/// True iff `seq op c` holds at every instant of the sequence's period.
bool Always(const TFloatSeq& seq, CmpOp op, double c);

/// Minimum value attained by the sequence.
double MinValue(const TFloatSeq& seq);
/// Maximum value attained by the sequence.
double MaxValue(const TFloatSeq& seq);

// --- Restriction by value --------------------------------------------------

/// Portions of the sequence where the value lies in [lo, hi]; may split the
/// sequence. Exact boundaries for linear interpolation.
TSeqSet<double> AtRange(const TFloatSeq& seq, double lo, double hi);

/// The time during which `seq op c` holds.
PeriodSet WhenCmp(const TFloatSeq& seq, CmpOp op, double c);

// --- Aggregation -----------------------------------------------------------

/// Time integral of the sequence (value · seconds).
double Integral(const TFloatSeq& seq);

/// Time-weighted average over the sequence's period (value at an instant for
/// instantaneous sequences).
double TwAvg(const TFloatSeq& seq);

// --- Derivative ------------------------------------------------------------

/// \brief Per-segment derivative (units per second) as a step sequence.
///
/// Defined for linear sequences with >= 2 instants; the last instant repeats
/// the final slope so the result spans the same period.
Result<TFloatSeq> Derivative(const TFloatSeq& seq);

// --- Boolean combinators ---------------------------------------------------

/// Logical AND of two synchronized boolean sequences.
std::optional<TBoolSeq> TAnd(const TBoolSeq& a, const TBoolSeq& b);
/// Logical OR of two synchronized boolean sequences.
std::optional<TBoolSeq> TOr(const TBoolSeq& a, const TBoolSeq& b);
/// Logical NOT.
TBoolSeq TNot(const TBoolSeq& seq);

/// The set of periods during which the boolean sequence is true.
PeriodSet WhenTrue(const TBoolSeq& seq);

/// True iff the sequence is ever true.
bool EverTrue(const TBoolSeq& seq);
/// True iff the sequence is always true.
bool AlwaysTrue(const TBoolSeq& seq);

}  // namespace nebulameos::meos

#include "meos/io.hpp"

#include "common/strings.hpp"

namespace nebulameos::meos {

namespace {

// Shared sequence formatter: `prefix[v@t, ...]` with bound brackets.
template <typename Seq, typename ValueFormatter>
std::string FormatSequence(const Seq& seq, const ValueFormatter& fmt,
                           bool step_is_default) {
  std::string out;
  if ((seq.interp() == Interp::kStep) != step_is_default) {
    out += seq.interp() == Interp::kStep ? "Interp=Step;" : "Interp=Linear;";
  }
  out += seq.lower_inc() ? '[' : '(';
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ", ";
    out += fmt(seq.instant(i).value);
    out += '@';
    out += FormatTimestamp(seq.instant(i).t);
  }
  out += seq.upper_inc() ? ']' : ')';
  return out;
}

struct ParsedEnvelope {
  std::string body;
  bool lower_inc = true;
  bool upper_inc = true;
  std::optional<Interp> interp;
};

Result<ParsedEnvelope> ParseEnvelope(const std::string& text) {
  ParsedEnvelope env;
  std::string_view sv = Trim(text);
  if (StartsWith(sv, "Interp=Step;")) {
    env.interp = Interp::kStep;
    sv = sv.substr(12);
  } else if (StartsWith(sv, "Interp=Linear;")) {
    env.interp = Interp::kLinear;
    sv = sv.substr(14);
  }
  sv = Trim(sv);
  if (sv.size() < 2) return Status::ParseError("sequence literal too short");
  if (sv.front() == '[') {
    env.lower_inc = true;
  } else if (sv.front() == '(') {
    env.lower_inc = false;
  } else {
    return Status::ParseError("sequence literal must start with [ or (");
  }
  if (sv.back() == ']') {
    env.upper_inc = true;
  } else if (sv.back() == ')') {
    env.upper_inc = false;
  } else {
    return Status::ParseError("sequence literal must end with ] or )");
  }
  env.body = std::string(sv.substr(1, sv.size() - 2));
  return env;
}

// Splits "v@t, v@t, ..." at top-level commas (commas inside parentheses —
// POINT(x y) — are skipped).
std::vector<std::string> SplitTopLevel(const std::string& body) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : body) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!Trim(cur).empty() || parts.empty()) parts.push_back(cur);
  return parts;
}

// Splits "value@timestamp" at the last '@'.
Result<std::pair<std::string, Timestamp>> SplitInstant(const std::string& part) {
  const size_t at = part.rfind('@');
  if (at == std::string::npos) {
    return Status::ParseError("instant missing '@': '" + part + "'");
  }
  auto ts = ParseTimestamp(std::string(Trim(part.substr(at + 1))));
  if (!ts.ok()) return ts.status();
  return std::make_pair(std::string(Trim(part.substr(0, at))), *ts);
}

}  // namespace

std::string TFloatToString(const TFloatSeq& seq) {
  return FormatSequence(
      seq, [](double v) { return FormatDouble(v); },
      /*step_is_default=*/false);
}

std::string TBoolToString(const TBoolSeq& seq) {
  return FormatSequence(
      seq, [](bool v) { return std::string(v ? "t" : "f"); },
      /*step_is_default=*/true);
}

std::string TPointToString(const TGeomPointSeq& seq) {
  return FormatSequence(
      seq, [](const Point& p) { return PointToWkt(p); },
      /*step_is_default=*/false);
}

Result<TFloatSeq> TFloatFromString(const std::string& text) {
  auto env = ParseEnvelope(text);
  if (!env.ok()) return env.status();
  std::vector<TInstant<double>> instants;
  for (const std::string& part : SplitTopLevel(env->body)) {
    auto split = SplitInstant(part);
    if (!split.ok()) return split.status();
    auto v = ParseDouble(split->first);
    if (!v.ok()) return v.status();
    instants.push_back({*v, split->second});
  }
  return TFloatSeq::Make(std::move(instants), env->lower_inc, env->upper_inc,
                         env->interp.value_or(Interp::kLinear));
}

Result<TGeomPointSeq> TPointFromString(const std::string& text) {
  auto env = ParseEnvelope(text);
  if (!env.ok()) return env.status();
  std::vector<TInstant<Point>> instants;
  for (const std::string& part : SplitTopLevel(env->body)) {
    auto split = SplitInstant(part);
    if (!split.ok()) return split.status();
    auto p = PointFromWkt(split->first);
    if (!p.ok()) return p.status();
    instants.push_back({*p, split->second});
  }
  return TGeomPointSeq::Make(std::move(instants), env->lower_inc,
                             env->upper_inc,
                             env->interp.value_or(Interp::kLinear));
}

std::string TPointToGeoJson(const TGeomPointSeq& seq, const std::string& id) {
  std::string out = "{\"type\":\"Feature\",";
  if (!id.empty()) out += "\"id\":\"" + id + "\",";
  out += "\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ',';
    out += '[' + FormatDouble(seq.instant(i).value.x) + ',' +
           FormatDouble(seq.instant(i).value.y) + ']';
  }
  out += "]},\"properties\":{\"times\":[";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(seq.instant(i).t);
  }
  out += "]}}";
  return out;
}

std::string TPointToMfJson(const TGeomPointSeq& seq) {
  std::string out =
      "{\"type\":\"MovingPoint\",\"interpolation\":\"";
  out += seq.interp() == Interp::kLinear ? "Linear" : "Step";
  out += "\",\"coordinates\":[";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ',';
    out += '[' + FormatDouble(seq.instant(i).value.x) + ',' +
           FormatDouble(seq.instant(i).value.y) + ']';
  }
  out += "],\"datetimes\":[";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + FormatTimestamp(seq.instant(i).t) + '"';
  }
  out += "],\"lower_inc\":";
  out += seq.lower_inc() ? "true" : "false";
  out += ",\"upper_inc\":";
  out += seq.upper_inc() ? "true" : "false";
  out += '}';
  return out;
}

}  // namespace nebulameos::meos

#include "meos/tgeompoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nebulameos::meos {

namespace {

// Rounds a fractional position within [a, b] to the microsecond grid.
Timestamp FracToTime(Timestamp a, Timestamp b, double f) {
  const Timestamp t =
      a + static_cast<Timestamp>(std::llround(f * static_cast<double>(b - a)));
  return std::clamp(t, a, b);
}

// Liang–Barsky: the parameter interval [f0, f1] ⊆ [0, 1] for which the
// moving point a + f·(b−a) lies inside the closed box. Returns false when
// the segment misses the box.
bool ClipSegmentToBox(const Point& a, const Point& b, const GeoBox& box,
                      double* f0, double* f1) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - box.xmin, box.xmax - a.x, a.y - box.ymin,
                       box.ymax - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // parallel and outside
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return false;
      t0 = std::max(t0, r);
    } else {
      if (r < t0) return false;
      t1 = std::min(t1, r);
    }
  }
  if (t0 > t1) return false;
  *f0 = t0;
  *f1 = t1;
  return true;
}

// Collects the "inside" time intervals of `seq` for a containment test
// given per-segment parameter intervals from `clip(a, b, &f0, &f1)`.
template <typename ClipFn>
std::vector<Period> InsideIntervalsLinear(const TGeomPointSeq& seq,
                                          const ClipFn& clip) {
  std::vector<Period> out;
  if (seq.size() == 1) {
    double f0, f1;
    if (clip(seq.StartValue(), seq.StartValue(), &f0, &f1)) {
      out.push_back(Period::Instant(seq.StartTime()));
    }
    return out;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    double f0, f1;
    if (!clip(a.value, b.value, &f0, &f1)) continue;
    const Timestamp s = FracToTime(a.t, b.t, f0);
    const Timestamp e = FracToTime(a.t, b.t, f1);
    auto p = Period::Make(s, e, true, true);
    if (p.ok()) out.push_back(*p);
  }
  return out;
}

// Step-interpolated variant: the value at instant i holds on [t_i, t_{i+1}).
std::vector<Period> InsideIntervalsStep(
    const TGeomPointSeq& seq, const std::function<bool(const Point&)>& inside) {
  std::vector<Period> out;
  const size_t n = seq.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!inside(seq.instant(i).value)) continue;
    auto p = Period::Make(seq.instant(i).t, seq.instant(i + 1).t,
                          (i > 0) || seq.lower_inc(), false);
    if (p.ok()) out.push_back(*p);
  }
  if (inside(seq.instant(n - 1).value) && (n == 1 || seq.upper_inc())) {
    out.push_back(Period::Instant(seq.EndTime()));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bounding boxes
// ---------------------------------------------------------------------------

STBox BoundingBox(const TGeomPointSeq& seq) {
  GeoBox box = GeoBox::Empty();
  for (const auto& ins : seq.instants()) box.Extend(ins.value);
  return STBox::FromGeoBox(box, seq.period());
}

double MetersToDegreeMargin(double meters, double ref_lat) {
  const double cos_lat =
      std::max(0.1, std::cos(ref_lat * M_PI / 180.0));
  return meters / (kMetersPerDegreeLat * cos_lat);
}

// ---------------------------------------------------------------------------
// Measures
// ---------------------------------------------------------------------------

double Length(const TGeomPointSeq& seq, Metric metric) {
  double acc = 0.0;
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    acc += PointDistance(seq.instant(i).value, seq.instant(i + 1).value,
                         metric);
  }
  return acc;
}

TFloatSeq CumulativeLength(const TGeomPointSeq& seq, Metric metric) {
  std::vector<TInstant<double>> out;
  out.reserve(seq.size());
  double acc = 0.0;
  out.push_back({0.0, seq.StartTime()});
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    acc += PointDistance(seq.instant(i).value, seq.instant(i + 1).value,
                         metric);
    out.push_back({acc, seq.instant(i + 1).t});
  }
  auto res = TFloatSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                             Interp::kLinear);
  assert(res.ok());
  return *res;
}

Result<TFloatSeq> Speed(const TGeomPointSeq& seq, Metric metric) {
  if (seq.size() < 2) {
    return Status::InvalidArgument("speed requires >= 2 instants");
  }
  std::vector<TInstant<double>> out;
  out.reserve(seq.size());
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const double d = PointDistance(a.value, b.value, metric);
    out.push_back({d / ToSeconds(b.t - a.t), a.t});
  }
  out.push_back({out.back().value, seq.EndTime()});
  return TFloatSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                         Interp::kStep);
}

Point TwCentroid(const TGeomPointSeq& seq) {
  if (seq.size() == 1 || seq.DurationMicros() == 0) return seq.StartValue();
  double wx = 0.0, wy = 0.0, wt = 0.0;
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const double dt = ToSeconds(b.t - a.t);
    if (seq.interp() == Interp::kLinear) {
      wx += 0.5 * (a.value.x + b.value.x) * dt;
      wy += 0.5 * (a.value.y + b.value.y) * dt;
    } else {
      wx += a.value.x * dt;
      wy += a.value.y * dt;
    }
    wt += dt;
  }
  return Point{wx / wt, wy / wt};
}

// ---------------------------------------------------------------------------
// Restriction
// ---------------------------------------------------------------------------

PeriodSet WhenInsideBox(const TGeomPointSeq& seq, const GeoBox& box) {
  if (seq.interp() == Interp::kLinear) {
    return PeriodSet(InsideIntervalsLinear(
        seq, [&box](const Point& a, const Point& b, double* f0, double* f1) {
          return ClipSegmentToBox(a, b, box, f0, f1);
        }));
  }
  return PeriodSet(InsideIntervalsStep(
      seq, [&box](const Point& p) { return box.Contains(p); }));
}

namespace {

// Parameter sub-intervals of segment (a→b) inside `poly`: crossing
// parameters against every edge, then midpoint containment per cell.
std::vector<std::pair<double, double>> SegmentInsidePolygon(
    const Point& a, const Point& b, const Polygon& poly) {
  std::vector<std::pair<double, double>> out;
  GeoBox seg_box = GeoBox::Empty();
  seg_box.Extend(a);
  seg_box.Extend(b);
  if (!seg_box.Overlaps(poly.bbox())) {
    return out;  // box pruning
  }
  std::vector<double> cuts = {0.0, 1.0};
  const Segment seg{a, b};
  for (size_t e = 0; e < poly.size(); ++e) {
    if (auto hit = SegmentIntersection(seg, poly.Edge(e))) {
      cuts.push_back(hit->first);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double x, double y) { return std::fabs(x - y) < 1e-12; }),
             cuts.end());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double mid = 0.5 * (cuts[i] + cuts[i + 1]);
    if (poly.Contains(Lerp(a, b, mid))) {
      if (!out.empty() && std::fabs(out.back().second - cuts[i]) < 1e-12) {
        out.back().second = cuts[i + 1];  // merge touching cells
      } else {
        out.emplace_back(cuts[i], cuts[i + 1]);
      }
    }
  }
  return out;
}

}  // namespace

PeriodSet WhenInsidePolygon(const TGeomPointSeq& seq, const Polygon& poly) {
  if (seq.interp() != Interp::kLinear) {
    return PeriodSet(InsideIntervalsStep(
        seq, [&poly](const Point& p) { return poly.Contains(p); }));
  }
  std::vector<Period> periods;
  if (seq.size() == 1) {
    if (poly.Contains(seq.StartValue())) {
      periods.push_back(Period::Instant(seq.StartTime()));
    }
    return PeriodSet(std::move(periods));
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    for (const auto& [f0, f1] : SegmentInsidePolygon(a.value, b.value, poly)) {
      const Timestamp s = FracToTime(a.t, b.t, f0);
      const Timestamp e = FracToTime(a.t, b.t, f1);
      auto p = Period::Make(s, e, true, true);
      if (p.ok()) periods.push_back(*p);
    }
  }
  return PeriodSet(std::move(periods));
}

PeriodSet WhenInsideCircle(const TGeomPointSeq& seq, const Circle& circle,
                           Metric metric) {
  auto tb = TDwithin(seq, circle.center, circle.radius, metric);
  if (!tb.ok()) {
    // Single-instant sequence: containment test on the lone point.
    std::vector<Period> periods;
    if (PointCircleDistance(seq.StartValue(), circle, metric) == 0.0) {
      periods.push_back(Period::Instant(seq.StartTime()));
    }
    return PeriodSet(std::move(periods));
  }
  return WhenTrue(*tb);
}

TSeqSet<Point> AtStbox(const TGeomPointSeq& seq, const STBox& box) {
  // Temporal restriction first.
  const TGeomPointSeq* base = &seq;
  std::optional<TGeomPointSeq> restricted;
  if (box.has_time()) {
    restricted = seq.AtPeriod(box.period());
    if (!restricted) return {};
    base = &*restricted;
  }
  if (!box.has_space()) {
    return {*base};
  }
  TSeqSet<Point> parts = base->AtPeriodSet(WhenInsideBox(*base, box.box()));
  // Crossing instants are rounded to the microsecond grid, so interpolated
  // boundary positions can overshoot the box by the distance travelled in
  // less than a microsecond. Snap boundary instants onto the (closed) box —
  // the exact clipped geometry.
  for (TGeomPointSeq& part : parts) {
    if (part.empty()) continue;
    std::vector<TInstant<Point>> instants(part.instants());
    for (size_t idx : {size_t{0}, instants.size() - 1}) {
      Point& p = instants[idx].value;
      p.x = std::clamp(p.x, box.xmin(), box.xmax());
      p.y = std::clamp(p.y, box.ymin(), box.ymax());
    }
    auto snapped = TGeomPointSeq::Make(std::move(instants), part.lower_inc(),
                                       part.upper_inc(), part.interp());
    assert(snapped.ok());
    part = *snapped;
  }
  return parts;
}

TSeqSet<Point> AtGeometry(const TGeomPointSeq& seq, const Polygon& poly) {
  return seq.AtPeriodSet(WhenInsidePolygon(seq, poly));
}

TSeqSet<Point> MinusStbox(const TGeomPointSeq& seq, const STBox& box) {
  PeriodSet inside;
  if (box.has_space()) {
    inside = WhenInsideBox(seq, box.box());
    if (box.has_time()) {
      inside = inside.IntersectionWith(
          PeriodSet(std::vector<Period>{box.period()}));
    }
  } else if (box.has_time()) {
    inside = PeriodSet(std::vector<Period>{box.period()});
  }
  return seq.MinusPeriodSet(inside);
}

// ---------------------------------------------------------------------------
// Distance predicates
// ---------------------------------------------------------------------------

bool EverDWithin(const TGeomPointSeq& seq, const Point& target, double dist,
                 Metric metric) {
  // STBox pruning: expand the trajectory box by the distance and test the
  // target against it.
  const STBox bb = BoundingBox(seq);
  const double margin = metric == Metric::kWgs84
                            ? MetersToDegreeMargin(dist, target.y)
                            : dist;
  if (!bb.Expanded(margin).ContainsPoint(target)) return false;
  if (seq.size() == 1) {
    return PointDistance(seq.StartValue(), target, metric) <= dist;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const Segment s{seq.instant(i).value, seq.instant(i + 1).value};
    if (PointSegmentDistance(target, s, metric) <= dist) return true;
  }
  return false;
}

bool EverDWithin(const TGeomPointSeq& seq, const Polygon& target, double dist,
                 Metric metric) {
  const STBox bb = BoundingBox(seq);
  const double margin =
      metric == Metric::kWgs84
          ? MetersToDegreeMargin(dist, target.bbox().ymin)
          : dist;
  if (!bb.box().Expanded(margin).Overlaps(target.bbox())) return false;
  if (seq.size() == 1) {
    return PointPolygonDistance(seq.StartValue(), target, metric) <= dist;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const Segment s{seq.instant(i).value, seq.instant(i + 1).value};
    if (target.Contains(s.a) || target.Contains(s.b)) return true;
    for (size_t e = 0; e < target.size(); ++e) {
      if (SegmentSegmentDistance(s, target.Edge(e), metric) <= dist) {
        return true;
      }
    }
  }
  return false;
}

namespace {

// Resamples two temporal points onto their common period and the union of
// their instants so positions can be compared index-wise.
std::optional<std::pair<TGeomPointSeq, TGeomPointSeq>> SynchronizePoints(
    const TGeomPointSeq& a, const TGeomPointSeq& b) {
  auto inter = a.period().Intersection(b.period());
  if (!inter) return std::nullopt;
  auto ra = a.AtPeriod(*inter);
  auto rb = b.AtPeriod(*inter);
  if (!ra || !rb) return std::nullopt;
  std::vector<Timestamp> times;
  for (const auto& ins : ra->instants()) times.push_back(ins.t);
  for (const auto& ins : rb->instants()) times.push_back(ins.t);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  std::vector<TInstant<Point>> ia, ib;
  for (Timestamp t : times) {
    ia.push_back({ra->ValueAtUnchecked(t), t});
    ib.push_back({rb->ValueAtUnchecked(t), t});
  }
  auto sa = TGeomPointSeq::Make(std::move(ia));
  auto sb = TGeomPointSeq::Make(std::move(ib));
  if (!sa.ok() || !sb.ok()) return std::nullopt;
  return std::make_pair(*sa, *sb);
}

}  // namespace

double MovingMinDistance(const TGeomPointSeq& a, const TGeomPointSeq& b,
                         Metric metric) {
  // Between common instants both points move linearly, so their distance is
  // minimized either at an instant or at the interior minimum of the
  // relative-motion quadratic |R0 + f·dR|².
  auto sync = SynchronizePoints(a, b);
  if (!sync) return std::numeric_limits<double>::infinity();
  const auto& sa = sync->first;
  const auto& sb = sync->second;
  const LocalProjection proj(sa.StartValue(), metric);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < sa.size(); ++i) {
    best = std::min(
        best, PointDistance(sa.instant(i).value, sb.instant(i).value, metric));
  }
  for (size_t i = 0; i + 1 < sa.size(); ++i) {
    const Point a0 = proj.Project(sa.instant(i).value);
    const Point a1 = proj.Project(sa.instant(i + 1).value);
    const Point b0 = proj.Project(sb.instant(i).value);
    const Point b1 = proj.Project(sb.instant(i + 1).value);
    const double rx = b0.x - a0.x, ry = b0.y - a0.y;
    const double dx = (b1.x - a1.x) - rx, dy = (b1.y - a1.y) - ry;
    const double denom = dx * dx + dy * dy;
    if (denom <= 0.0) continue;
    const double f = std::clamp(-(rx * dx + ry * dy) / denom, 0.0, 1.0);
    const double mx = rx + f * dx, my = ry + f * dy;
    best = std::min(best, std::sqrt(mx * mx + my * my));
  }
  return best;
}

bool EverDWithin(const TGeomPointSeq& a, const TGeomPointSeq& b, double dist,
                 Metric metric) {
  return MovingMinDistance(a, b, metric) <= dist;
}

Result<TBoolSeq> TDwithin(const TGeomPointSeq& seq, const Point& target,
                          double dist, Metric metric) {
  if (seq.size() < 2) {
    return Status::InvalidArgument("tdwithin requires >= 2 instants");
  }
  // Work in a local planar frame centered at the target so the quadratic
  // |P(f) - T|^2 = dist^2 is exact in both metrics.
  const LocalProjection proj(target, metric);
  const Point t_loc = proj.Project(target);
  std::vector<Timestamp> breaks;
  for (const auto& ins : seq.instants()) breaks.push_back(ins.t);
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const Point pa = proj.Project(a.value);
    const Point pb = proj.Project(b.value);
    const double ex = pa.x - t_loc.x, ey = pa.y - t_loc.y;
    const double dx = pb.x - pa.x, dy = pb.y - pa.y;
    // |e + f d|^2 = dist^2  =>  (d·d) f^2 + 2 (e·d) f + (e·e − dist²) = 0.
    const double qa = dx * dx + dy * dy;
    const double qb = 2.0 * (ex * dx + ey * dy);
    const double qc = ex * ex + ey * ey - dist * dist;
    if (qa <= 0.0) continue;  // stationary segment
    const double disc = qb * qb - 4.0 * qa * qc;
    if (disc <= 0.0) continue;  // no crossing (tangent counts as none)
    const double sq = std::sqrt(disc);
    for (const double f : {(-qb - sq) / (2.0 * qa), (-qb + sq) / (2.0 * qa)}) {
      if (f > 0.0 && f < 1.0) {
        const Timestamp t = FracToTime(a.t, b.t, f);
        if (t > a.t && t < b.t) breaks.push_back(t);
      }
    }
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());
  std::vector<TInstant<bool>> raw;
  auto within = [&](Timestamp t) {
    return PointDistance(seq.ValueAtUnchecked(t), target, metric) <= dist;
  };
  for (size_t k = 0; k + 1 < breaks.size(); ++k) {
    const Timestamp mid = breaks[k] + (breaks[k + 1] - breaks[k]) / 2;
    raw.push_back({within(mid), breaks[k]});
  }
  raw.push_back({within(seq.EndTime()), seq.EndTime()});
  // Merge consecutive equal truth values.
  std::vector<TInstant<bool>> merged;
  for (auto& ins : raw) {
    if (!merged.empty() && merged.back().value == ins.value &&
        ins.t != seq.EndTime()) {
      continue;
    }
    if (!merged.empty() && merged.back().t == ins.t) {
      merged.back().value = ins.value;
      continue;
    }
    merged.push_back(ins);
  }
  return TBoolSeq::Make(std::move(merged), seq.lower_inc(), seq.upper_inc(),
                        Interp::kStep);
}

Result<TFloatSeq> DistanceToPoint(const TGeomPointSeq& seq,
                                  const Point& target, Metric metric) {
  if (seq.empty()) {
    return Status::InvalidArgument("distance of empty sequence");
  }
  // Sample at instants plus per-segment closest-approach instants.
  std::vector<Timestamp> times;
  for (const auto& ins : seq.instants()) times.push_back(ins.t);
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const double f =
        ClosestPointFraction(target, Segment{a.value, b.value}, metric);
    if (f > 0.0 && f < 1.0) {
      const Timestamp t = FracToTime(a.t, b.t, f);
      if (t > a.t && t < b.t) times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  std::vector<TInstant<double>> out;
  out.reserve(times.size());
  for (Timestamp t : times) {
    out.push_back({PointDistance(seq.ValueAtUnchecked(t), target, metric), t});
  }
  return TFloatSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                         Interp::kLinear);
}

double NearestApproachDistance(const TGeomPointSeq& seq, const Point& target,
                               Metric metric) {
  if (seq.size() == 1) {
    return PointDistance(seq.StartValue(), target, metric);
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const Segment s{seq.instant(i).value, seq.instant(i + 1).value};
    best = std::min(best, PointSegmentDistance(target, s, metric));
  }
  return best;
}

Timestamp NearestApproachInstant(const TGeomPointSeq& seq, const Point& target,
                                 Metric metric) {
  if (seq.size() == 1) return seq.StartTime();
  double best = std::numeric_limits<double>::infinity();
  Timestamp best_t = seq.StartTime();
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const Segment s{a.value, b.value};
    const double f = ClosestPointFraction(target, s, metric);
    const Timestamp t = FracToTime(a.t, b.t, f);
    const double d = PointDistance(seq.ValueAtUnchecked(t), target, metric);
    if (d < best) {
      best = d;
      best_t = t;
    }
  }
  return best_t;
}

namespace {

// Recursive Douglas–Peucker over instants [lo, hi]; marks kept indices.
void SimplifyRange(const std::vector<TInstant<Point>>& instants, size_t lo,
                   size_t hi, double epsilon, Metric metric,
                   std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  const Segment chord{instants[lo].value, instants[hi].value};
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = PointSegmentDistance(instants[i].value, chord, metric);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > epsilon) {
    (*keep)[worst_idx] = true;
    SimplifyRange(instants, lo, worst_idx, epsilon, metric, keep);
    SimplifyRange(instants, worst_idx, hi, epsilon, metric, keep);
  }
}

}  // namespace

TGeomPointSeq Simplify(const TGeomPointSeq& seq, double epsilon,
                       Metric metric) {
  if (seq.size() <= 2) return seq;
  const auto& instants = seq.instants();
  std::vector<bool> keep(instants.size(), false);
  keep.front() = keep.back() = true;
  SimplifyRange(instants, 0, instants.size() - 1, epsilon, metric, &keep);
  std::vector<TInstant<Point>> kept;
  for (size_t i = 0; i < instants.size(); ++i) {
    if (keep[i]) kept.push_back(instants[i]);
  }
  auto out = TGeomPointSeq::Make(std::move(kept), seq.lower_inc(),
                                 seq.upper_inc(), seq.interp());
  assert(out.ok());
  return *out;
}

bool EverIntersects(const TGeomPointSeq& seq, const Polygon& poly) {
  GeoBox bb = GeoBox::Empty();
  for (const auto& ins : seq.instants()) bb.Extend(ins.value);
  if (!bb.Overlaps(poly.bbox())) return false;
  for (const auto& ins : seq.instants()) {
    if (poly.Contains(ins.value)) return true;
  }
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const Segment s{seq.instant(i).value, seq.instant(i + 1).value};
    for (size_t e = 0; e < poly.size(); ++e) {
      if (SegmentIntersection(s, poly.Edge(e))) return true;
    }
  }
  return false;
}

}  // namespace nebulameos::meos

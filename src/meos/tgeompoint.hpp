/// \file tgeompoint.hpp
/// \brief Temporal points (`tgeompoint`) and their spatiotemporal operations.
///
/// A temporal point is `TSequence<Point>` with linear interpolation: the
/// object moves in a straight line at constant speed between consecutive
/// instants. This module provides the operations the paper integrates into
/// NebulaStream —
///
/// * `EverDWithin` — the `edwithin` predicate: does the moving point *ever*
///   come within a distance of a geometry?
/// * `AtStbox` — the `tpoint_at_stbox` restriction: the portions of the
///   movement inside a spatiotemporal box (exact entry/exit instants);
///
/// plus the supporting algebra: trajectory length, speed, time-weighted
/// centroid, restriction to polygons, temporal distance, temporal
/// within-distance (`tdwithin`) and nearest-approach queries. All geometry
/// predicates prune with bounding boxes before exact tests, as MEOS does.

#pragma once

#include "meos/geo.hpp"
#include "meos/stbox.hpp"
#include "meos/temporal.hpp"
#include "meos/tfloat_ops.hpp"

namespace nebulameos::meos {

/// Temporal point sequence (linear interpolation by default).
using TGeomPointSeq = TSequence<Point>;

// --- Bounding boxes ---------------------------------------------------------

/// Spatiotemporal bounding box of a temporal point.
STBox BoundingBox(const TGeomPointSeq& seq);

/// Conservative degree margin equivalent to \p meters at latitude \p ref_lat
/// (used to expand boxes for metric predicates in WGS84).
double MetersToDegreeMargin(double meters, double ref_lat);

// --- Measures ---------------------------------------------------------------

/// Length of the trajectory under \p metric (meters in kWgs84).
double Length(const TGeomPointSeq& seq, Metric metric);

/// Cumulative trajectory length as a temporal float (linear per segment).
TFloatSeq CumulativeLength(const TGeomPointSeq& seq, Metric metric);

/// \brief Speed of the moving point as a step temporal float (units/second;
/// m/s in kWgs84). Requires >= 2 instants.
Result<TFloatSeq> Speed(const TGeomPointSeq& seq, Metric metric);

/// Time-weighted centroid of the movement.
Point TwCentroid(const TGeomPointSeq& seq);

// --- Restriction ------------------------------------------------------------

/// Time during which the moving point lies inside the (closed) 2D box.
PeriodSet WhenInsideBox(const TGeomPointSeq& seq, const GeoBox& box);

/// Time during which the moving point lies inside the polygon.
PeriodSet WhenInsidePolygon(const TGeomPointSeq& seq, const Polygon& poly);

/// Time during which the moving point lies within the circle (metric radius).
PeriodSet WhenInsideCircle(const TGeomPointSeq& seq, const Circle& circle,
                           Metric metric);

/// \brief `tpoint_at_stbox`: restriction of the temporal point to an STBox.
///
/// Applies the temporal extent first, then clips each linear segment against
/// the spatial extent (Liang–Barsky), producing exact entry/exit instants on
/// the microsecond grid. The result is a sequence set (the movement may
/// leave and re-enter the box).
TSeqSet<Point> AtStbox(const TGeomPointSeq& seq, const STBox& box);

/// Restriction of the temporal point to a polygon (sequence set).
TSeqSet<Point> AtGeometry(const TGeomPointSeq& seq, const Polygon& poly);

/// Complement restriction: the movement outside the box.
TSeqSet<Point> MinusStbox(const TGeomPointSeq& seq, const STBox& box);

// --- Distance predicates ----------------------------------------------------

/// \brief `edwithin`(tpoint, point): true iff the moving point ever comes
/// within \p dist of \p target. Exact (per-segment closest approach).
bool EverDWithin(const TGeomPointSeq& seq, const Point& target, double dist,
                 Metric metric);

/// `edwithin`(tpoint, polygon): ever within \p dist of the polygon
/// (0 inside). Box-pruned, then exact segment/edge distances.
bool EverDWithin(const TGeomPointSeq& seq, const Polygon& target, double dist,
                 Metric metric);

/// `edwithin`(tpoint, tpoint): ever within \p dist of another moving point
/// (synchronized comparison; exact for the common-instant grid).
bool EverDWithin(const TGeomPointSeq& a, const TGeomPointSeq& b, double dist,
                 Metric metric);

/// \brief Smallest distance ever between two moving points (their nearest
/// approach over the common period): per-segment minimum of the relative
/// motion in a local planar frame. Returns +inf when the periods are
/// disjoint in time.
double MovingMinDistance(const TGeomPointSeq& a, const TGeomPointSeq& b,
                         Metric metric);

/// \brief `tdwithin`(tpoint, point): temporal boolean that is true exactly
/// while the moving point is within \p dist of \p target. Crossing instants
/// are computed from the per-segment quadratic (microsecond grid).
Result<TBoolSeq> TDwithin(const TGeomPointSeq& seq, const Point& target,
                          double dist, Metric metric);

/// Temporal distance to a fixed point, sampled at the sequence instants plus
/// each segment's closest-approach instant (so min/ever queries on the
/// result are exact).
Result<TFloatSeq> DistanceToPoint(const TGeomPointSeq& seq,
                                  const Point& target, Metric metric);

/// Smallest distance ever between the moving point and \p target.
double NearestApproachDistance(const TGeomPointSeq& seq, const Point& target,
                               Metric metric);

/// Timestamp at which the moving point is nearest to \p target (first of
/// ties).
Timestamp NearestApproachInstant(const TGeomPointSeq& seq, const Point& target,
                                 Metric metric);

/// True iff the movement ever enters the polygon.
bool EverIntersects(const TGeomPointSeq& seq, const Polygon& poly);

// --- Simplification -----------------------------------------------------------

/// \brief Douglas–Peucker trajectory simplification (MEOS's
/// `temporal_simplify`): keeps the subset of instants whose removal would
/// displace the spatial path by more than \p epsilon (meters in kWgs84).
/// Endpoints are always kept; timestamps are preserved. Edge deployments
/// use this to cut uplink bytes before shipping trajectories.
TGeomPointSeq Simplify(const TGeomPointSeq& seq, double epsilon,
                       Metric metric);

}  // namespace nebulameos::meos

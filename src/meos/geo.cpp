#include "meos/geo.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/strings.hpp"

namespace nebulameos::meos {

// ---------------------------------------------------------------------------
// GeoBox
// ---------------------------------------------------------------------------

GeoBox GeoBox::Empty() {
  GeoBox b;
  b.xmin = b.ymin = std::numeric_limits<double>::infinity();
  b.xmax = b.ymax = -std::numeric_limits<double>::infinity();
  return b;
}

bool GeoBox::IsEmpty() const { return xmin > xmax || ymin > ymax; }

void GeoBox::Extend(const Point& p) {
  xmin = std::min(xmin, p.x);
  ymin = std::min(ymin, p.y);
  xmax = std::max(xmax, p.x);
  ymax = std::max(ymax, p.y);
}

void GeoBox::ExtendBox(const GeoBox& other) {
  if (other.IsEmpty()) return;
  xmin = std::min(xmin, other.xmin);
  ymin = std::min(ymin, other.ymin);
  xmax = std::max(xmax, other.xmax);
  ymax = std::max(ymax, other.ymax);
}

bool GeoBox::Contains(const Point& p) const {
  return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
}

bool GeoBox::Overlaps(const GeoBox& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return xmin <= other.xmax && other.xmin <= xmax && ymin <= other.ymax &&
         other.ymin <= ymax;
}

GeoBox GeoBox::Expanded(double margin) const {
  GeoBox b = *this;
  b.xmin -= margin;
  b.ymin -= margin;
  b.xmax += margin;
  b.ymax += margin;
  return b;
}

// ---------------------------------------------------------------------------
// Polygon
// ---------------------------------------------------------------------------

Result<Polygon> Polygon::Make(std::vector<Point> ring) {
  if (ring.size() >= 2 && ApproxEquals(ring.front(), ring.back())) {
    ring.pop_back();  // accept closed WKT rings
  }
  // Drop consecutive duplicates.
  std::vector<Point> clean;
  clean.reserve(ring.size());
  for (const Point& p : ring) {
    if (clean.empty() || !ApproxEquals(clean.back(), p)) clean.push_back(p);
  }
  if (clean.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 distinct vertices");
  }
  Polygon poly;
  poly.ring_ = std::move(clean);
  poly.bbox_ = GeoBox::Empty();
  for (const Point& p : poly.ring_) poly.bbox_.Extend(p);
  return poly;
}

bool Polygon::Contains(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  // Even-odd ray casting with an explicit on-edge check so boundary points
  // count as inside regardless of ray orientation.
  const size_t n = ring_.size();
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& pi = ring_[i];
    const Point& pj = ring_[j];
    // On-edge check (collinear and within bounding range).
    const double cross =
        (pj.x - pi.x) * (p.y - pi.y) - (pj.y - pi.y) * (p.x - pi.x);
    if (std::fabs(cross) < 1e-15 &&
        p.x >= std::min(pi.x, pj.x) - 1e-15 &&
        p.x <= std::max(pi.x, pj.x) + 1e-15 &&
        p.y >= std::min(pi.y, pj.y) - 1e-15 &&
        p.y <= std::max(pi.y, pj.y) + 1e-15) {
      return true;
    }
    const bool intersects = ((pi.y > p.y) != (pj.y > p.y)) &&
                            (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) +
                                       pi.x);
    if (intersects) inside = !inside;
  }
  return inside;
}

double Polygon::SignedArea() const {
  double acc = 0.0;
  const size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += (ring_[j].x * ring_[i].y) - (ring_[i].x * ring_[j].y);
  }
  return acc / 2.0;
}

// ---------------------------------------------------------------------------
// Metric operations
// ---------------------------------------------------------------------------

double CartesianDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double HaversineMeters(const Point& a, const Point& b) {
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.y * kDegToRad;
  const double lat2 = b.y * kDegToRad;
  const double dlat = (b.y - a.y) * kDegToRad;
  const double dlon = (b.x - a.x) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double PointDistance(const Point& a, const Point& b, Metric metric) {
  return metric == Metric::kCartesian ? CartesianDistance(a, b)
                                      : HaversineMeters(a, b);
}

LocalProjection::LocalProjection(const Point& origin, Metric metric)
    : origin_(origin) {
  if (metric == Metric::kWgs84) {
    my_ = kMetersPerDegreeLat;
    mx_ = kMetersPerDegreeLat * std::cos(origin.y * M_PI / 180.0);
  }
}

Point LocalProjection::Project(const Point& p) const {
  return Point{(p.x - origin_.x) * mx_, (p.y - origin_.y) * my_};
}

Point LocalProjection::Unproject(const Point& p) const {
  return Point{origin_.x + p.x / mx_, origin_.y + p.y / my_};
}

namespace {

// Planar closest-point fraction along segment ab for point p.
double PlanarClosestFraction(const Point& p, const Point& a, const Point& b) {
  const double vx = b.x - a.x;
  const double vy = b.y - a.y;
  const double len2 = vx * vx + vy * vy;
  if (len2 <= 0.0) return 0.0;
  const double t = ((p.x - a.x) * vx + (p.y - a.y) * vy) / len2;
  return std::clamp(t, 0.0, 1.0);
}

double PlanarPointSegmentDistance(const Point& p, const Segment& s) {
  const double t = PlanarClosestFraction(p, s.a, s.b);
  return CartesianDistance(p, Lerp(s.a, s.b, t));
}

}  // namespace

double ClosestPointFraction(const Point& p, const Segment& s, Metric metric) {
  if (metric == Metric::kCartesian) return PlanarClosestFraction(p, s.a, s.b);
  const LocalProjection proj(p, metric);
  return PlanarClosestFraction(proj.Project(p), proj.Project(s.a),
                               proj.Project(s.b));
}

double PointSegmentDistance(const Point& p, const Segment& s, Metric metric) {
  if (metric == Metric::kCartesian) return PlanarPointSegmentDistance(p, s);
  const LocalProjection proj(p, metric);
  return PlanarPointSegmentDistance(
      proj.Project(p), Segment{proj.Project(s.a), proj.Project(s.b)});
}

double SegmentSegmentDistance(const Segment& s1, const Segment& s2,
                              Metric metric) {
  Segment a = s1;
  Segment b = s2;
  if (metric == Metric::kWgs84) {
    const LocalProjection proj(s1.a, metric);
    a = Segment{proj.Project(s1.a), proj.Project(s1.b)};
    b = Segment{proj.Project(s2.a), proj.Project(s2.b)};
  }
  if (SegmentIntersection(a, b).has_value()) return 0.0;
  double d = PlanarPointSegmentDistance(a.a, b);
  d = std::min(d, PlanarPointSegmentDistance(a.b, b));
  d = std::min(d, PlanarPointSegmentDistance(b.a, a));
  d = std::min(d, PlanarPointSegmentDistance(b.b, a));
  return d;
}

std::optional<std::pair<double, double>> SegmentIntersection(
    const Segment& s1, const Segment& s2) {
  const double rx = s1.b.x - s1.a.x;
  const double ry = s1.b.y - s1.a.y;
  const double sx = s2.b.x - s2.a.x;
  const double sy = s2.b.y - s2.a.y;
  const double denom = rx * sy - ry * sx;
  if (std::fabs(denom) < 1e-18) return std::nullopt;  // parallel/collinear
  const double qpx = s2.a.x - s1.a.x;
  const double qpy = s2.a.y - s1.a.y;
  const double t = (qpx * sy - qpy * sx) / denom;
  const double u = (qpx * ry - qpy * rx) / denom;
  if (t < -1e-12 || t > 1.0 + 1e-12 || u < -1e-12 || u > 1.0 + 1e-12) {
    return std::nullopt;
  }
  return std::make_pair(std::clamp(t, 0.0, 1.0), std::clamp(u, 0.0, 1.0));
}

double PointPolygonDistance(const Point& p, const Polygon& poly,
                            Metric metric) {
  if (poly.Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < poly.size(); ++i) {
    best = std::min(best, PointSegmentDistance(p, poly.Edge(i), metric));
  }
  return best;
}

double PointCircleDistance(const Point& p, const Circle& c, Metric metric) {
  const double d = PointDistance(p, c.center, metric);
  return d <= c.radius ? 0.0 : d - c.radius;
}

// ---------------------------------------------------------------------------
// WKT
// ---------------------------------------------------------------------------

std::string PointToWkt(const Point& p) {
  return "POINT(" + FormatDouble(p.x) + " " + FormatDouble(p.y) + ")";
}

std::string PolygonToWkt(const Polygon& poly) {
  std::string out = "POLYGON((";
  const auto& ring = poly.ring();
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(ring[i].x) + " " + FormatDouble(ring[i].y);
  }
  // Close the ring per the WKT convention.
  out += ", " + FormatDouble(ring[0].x) + " " + FormatDouble(ring[0].y);
  out += "))";
  return out;
}

namespace {

// Case-insensitive scan for `tag` at the start of trimmed `text`; returns the
// remainder after the tag, or nullopt.
std::optional<std::string_view> ConsumeTag(std::string_view text,
                                           std::string_view tag) {
  text = Trim(text);
  if (text.size() < tag.size()) return std::nullopt;
  for (size_t i = 0; i < tag.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != tag[i]) {
      return std::nullopt;
    }
  }
  return text.substr(tag.size());
}

Result<Point> ParseCoordPair(std::string_view text) {
  // "x y" with arbitrary internal whitespace.
  std::string buf(Trim(text));
  size_t sep = buf.find_first_of(" \t");
  if (sep == std::string::npos) {
    return Status::ParseError("bad coordinate pair: '" + buf + "'");
  }
  auto x = ParseDouble(buf.substr(0, sep));
  auto y = ParseDouble(buf.substr(sep + 1));
  if (!x.ok()) return x.status();
  if (!y.ok()) return y.status();
  return Point{*x, *y};
}

}  // namespace

Result<Point> PointFromWkt(const std::string& wkt) {
  auto rest = ConsumeTag(wkt, "POINT");
  if (!rest) return Status::ParseError("expected POINT: '" + wkt + "'");
  std::string_view body = Trim(*rest);
  if (body.empty() || body.front() != '(' || body.back() != ')') {
    return Status::ParseError("expected POINT(x y): '" + wkt + "'");
  }
  return ParseCoordPair(body.substr(1, body.size() - 2));
}

Result<Polygon> PolygonFromWkt(const std::string& wkt) {
  auto rest = ConsumeTag(wkt, "POLYGON");
  if (!rest) return Status::ParseError("expected POLYGON: '" + wkt + "'");
  std::string_view body = Trim(*rest);
  if (body.size() < 4 || body.front() != '(' || body.back() != ')') {
    return Status::ParseError("expected POLYGON((...)): '" + wkt + "'");
  }
  body = Trim(body.substr(1, body.size() - 2));
  if (body.empty() || body.front() != '(' || body.back() != ')') {
    return Status::ParseError("expected POLYGON((...)): '" + wkt + "'");
  }
  body = body.substr(1, body.size() - 2);
  std::vector<Point> ring;
  for (const std::string& part : Split(body, ',')) {
    auto p = ParseCoordPair(part);
    if (!p.ok()) return p.status();
    ring.push_back(*p);
  }
  return Polygon::Make(std::move(ring));
}

}  // namespace nebulameos::meos

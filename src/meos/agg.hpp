/// \file agg.hpp
/// \brief Temporal aggregates over sequences.
///
/// The incremental aggregate states used by window operators when grouping
/// spatiotemporal data: spatiotemporal extent, event counting over time, and
/// time-weighted numeric aggregation across many sequences. Each aggregator
/// is a small value type with `Add` / `Merge` / result accessors, so the
/// stream engine can keep one per window pane.

#pragma once

#include <optional>

#include "meos/stbox.hpp"
#include "meos/tfloat_ops.hpp"
#include "meos/tgeompoint.hpp"

namespace nebulameos::meos {

/// \brief Spatiotemporal extent: the STBox union of everything added.
class ExtentAggregator {
 public:
  /// Adds one temporal point.
  void Add(const TGeomPointSeq& seq);
  /// Adds one positioned instant.
  void AddPoint(const Point& p, Timestamp t);
  /// Merges another aggregator's state.
  void Merge(const ExtentAggregator& other);
  /// The accumulated box; nullopt when nothing was added.
  const std::optional<STBox>& extent() const { return extent_; }

 private:
  std::optional<STBox> extent_;
};

/// \brief Time-weighted average over many float sequences.
///
/// Accumulates `∫value dt` and `∫dt`; `Result()` is the overall
/// time-weighted mean (instantaneous sequences fall back to plain
/// averaging so they are not silently dropped).
class TwAvgAggregator {
 public:
  /// Adds one float sequence.
  void Add(const TFloatSeq& seq);
  /// Merges another aggregator's state.
  void Merge(const TwAvgAggregator& other);
  /// The aggregated time-weighted average; nullopt when empty.
  std::optional<double> Value() const;

 private:
  double integral_ = 0.0;
  double seconds_ = 0.0;
  double instant_sum_ = 0.0;
  int64_t instant_count_ = 0;
};

/// \brief Count of sequences active over time (MEOS `tcount`): a step
/// temporal int over the merged timeline.
class TCountAggregator {
 public:
  /// Adds one sequence's period.
  void Add(const Period& period);
  /// The count profile as a step sequence; nullopt when empty.
  std::optional<TIntSeq> Profile() const;
  /// The maximum simultaneous count.
  int64_t MaxCount() const;

 private:
  std::vector<Period> periods_;
};

/// \brief Min/max over float sequences (interpolation-aware per sequence).
class MinMaxAggregator {
 public:
  void Add(const TFloatSeq& seq);
  void Merge(const MinMaxAggregator& other);
  std::optional<double> Min() const { return min_; }
  std::optional<double> Max() const { return max_; }

 private:
  std::optional<double> min_;
  std::optional<double> max_;
};

}  // namespace nebulameos::meos

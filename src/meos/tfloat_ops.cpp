#include "meos/tfloat_ops.hpp"

#include <algorithm>
#include <cmath>

namespace nebulameos::meos {

bool EvalCmp(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

namespace {

CmpOp Negate(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
  }
  return CmpOp::kNe;
}

// Applies `fn` value-wise to a sequence.
TFloatSeq MapValues(const TFloatSeq& seq,
                    const std::function<double(double)>& fn) {
  std::vector<TInstant<double>> out;
  out.reserve(seq.size());
  for (const auto& ins : seq.instants()) {
    out.push_back({fn(ins.value), ins.t});
  }
  auto res = TFloatSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                             seq.interp());
  assert(res.ok());
  return *res;
}

// Generic synchronization: restrict both sequences to the common period and
// resample each at the union of instants.
template <typename T>
std::optional<std::pair<TSequence<T>, TSequence<T>>> SynchronizeSeq(
    const TSequence<T>& a, const TSequence<T>& b) {
  auto inter = a.period().Intersection(b.period());
  if (!inter) return std::nullopt;
  auto ra = a.AtPeriod(*inter);
  auto rb = b.AtPeriod(*inter);
  if (!ra || !rb) return std::nullopt;
  std::vector<Timestamp> times;
  times.reserve(ra->size() + rb->size());
  for (const auto& ins : ra->instants()) times.push_back(ins.t);
  for (const auto& ins : rb->instants()) times.push_back(ins.t);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  std::vector<TInstant<T>> ia, ib;
  ia.reserve(times.size());
  ib.reserve(times.size());
  for (Timestamp t : times) {
    ia.push_back({ra->ValueAtUnchecked(t), t});
    ib.push_back({rb->ValueAtUnchecked(t), t});
  }
  auto sa = TSequence<T>::Make(std::move(ia), inter->lower_inc(),
                               inter->upper_inc(), a.interp());
  auto sb = TSequence<T>::Make(std::move(ib), inter->lower_inc(),
                               inter->upper_inc(), b.interp());
  assert(sa.ok() && sb.ok());
  return std::make_pair(*sa, *sb);
}

// Instant-wise binary combination of two synchronized sequences.
TFloatSeq CombineSynced(const TFloatSeq& a, const TFloatSeq& b,
                        const std::function<double(double, double)>& fn) {
  assert(a.size() == b.size());
  std::vector<TInstant<double>> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out.push_back({fn(a.instant(i).value, b.instant(i).value),
                   a.instant(i).t});
  }
  const Interp interp = (a.interp() == Interp::kLinear &&
                         b.interp() == Interp::kLinear)
                            ? Interp::kLinear
                            : Interp::kStep;
  auto res = TFloatSeq::Make(std::move(out), a.lower_inc(), a.upper_inc(),
                             interp);
  assert(res.ok());
  return *res;
}

// Builds a step TBoolSeq from truth breakpoints spanning `seq`'s period,
// merging consecutive equal values.
TBoolSeq MakeBoolSeq(const TFloatSeq& seq,
                     std::vector<TInstant<bool>> raw) {
  std::vector<TInstant<bool>> merged;
  for (auto& ins : raw) {
    if (merged.size() >= 1 && merged.back().value == ins.value &&
        ins.t != seq.EndTime()) {
      continue;  // same truth continues
    }
    if (!merged.empty() && merged.back().t == ins.t) {
      merged.back().value = ins.value;
      continue;
    }
    merged.push_back(ins);
  }
  auto res = TBoolSeq::Make(std::move(merged), seq.lower_inc(),
                            seq.upper_inc(), Interp::kStep);
  assert(res.ok());
  return *res;
}

}  // namespace

TFloatSeq AddConst(const TFloatSeq& seq, double c) {
  return MapValues(seq, [c](double v) { return v + c; });
}

TFloatSeq MulConst(const TFloatSeq& seq, double c) {
  return MapValues(seq, [c](double v) { return v * c; });
}

std::optional<std::pair<TFloatSeq, TFloatSeq>> Synchronize(const TFloatSeq& a,
                                                           const TFloatSeq& b) {
  return SynchronizeSeq(a, b);
}

std::optional<TFloatSeq> Add(const TFloatSeq& a, const TFloatSeq& b) {
  auto sync = Synchronize(a, b);
  if (!sync) return std::nullopt;
  return CombineSynced(sync->first, sync->second,
                       [](double x, double y) { return x + y; });
}

std::optional<TFloatSeq> Sub(const TFloatSeq& a, const TFloatSeq& b) {
  auto sync = Synchronize(a, b);
  if (!sync) return std::nullopt;
  return CombineSynced(sync->first, sync->second,
                       [](double x, double y) { return x - y; });
}

TBoolSeq CmpConst(const TFloatSeq& seq, CmpOp op, double c) {
  // Breakpoints: all instants plus (for linear interpolation) the exact
  // crossing timestamps of value c inside each segment, rounded to the
  // microsecond grid.
  std::vector<Timestamp> breaks;
  breaks.reserve(seq.size() + 4);
  for (const auto& ins : seq.instants()) breaks.push_back(ins.t);
  if (seq.interp() == Interp::kLinear) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      const auto& a = seq.instant(i);
      const auto& b = seq.instant(i + 1);
      const double va = a.value, vb = b.value;
      if ((va < c && vb > c) || (va > c && vb < c)) {
        const double f = (c - va) / (vb - va);
        const Timestamp t = a.t + static_cast<Timestamp>(std::llround(
                                      f * static_cast<double>(b.t - a.t)));
        if (t > a.t && t < b.t) breaks.push_back(t);
      }
    }
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());
  }
  // Truth on [breaks[k], breaks[k+1]) sampled at the interval midpoint; the
  // final instant is evaluated exactly at the end time.
  std::vector<TInstant<bool>> raw;
  raw.reserve(breaks.size());
  for (size_t k = 0; k + 1 < breaks.size(); ++k) {
    const Timestamp mid = breaks[k] + (breaks[k + 1] - breaks[k]) / 2;
    raw.push_back({EvalCmp(op, seq.ValueAtUnchecked(mid), c), breaks[k]});
  }
  raw.push_back(
      {EvalCmp(op, seq.ValueAtUnchecked(seq.EndTime()), c), seq.EndTime()});
  return MakeBoolSeq(seq, std::move(raw));
}

std::optional<TBoolSeq> Cmp(const TFloatSeq& a, CmpOp op, const TFloatSeq& b) {
  auto diff = Sub(a, b);
  if (!diff) return std::nullopt;
  return CmpConst(*diff, op, 0.0);
}

namespace {

// Per-segment "ever" evaluation; `start_attained`/`end_attained` indicate
// whether the endpoint values are actually attained (bound inclusivity).
bool SegmentEver(CmpOp op, double va, double vb, bool start_attained,
                 bool end_attained, Interp interp, double c) {
  if (interp == Interp::kStep) {
    // va holds on a positive-width interval, hence always attained.
    if (EvalCmp(op, va, c)) return true;
    if (end_attained && EvalCmp(op, vb, c)) return true;
    return false;
  }
  const double lo = std::min(va, vb);
  const double hi = std::max(va, vb);
  const bool lo_attained = (va == lo && start_attained) ||
                           (vb == lo && end_attained) || (va == vb);
  const bool hi_attained = (va == hi && start_attained) ||
                           (vb == hi && end_attained) || (va == vb);
  switch (op) {
    case CmpOp::kLt:
      return lo < c || (lo_attained && lo < c);  // open interval above lo
    case CmpOp::kLe:
      return lo < c || (lo == c && lo_attained);
    case CmpOp::kGt:
      return hi > c;
    case CmpOp::kGe:
      return hi > c || (hi == c && hi_attained);
    case CmpOp::kEq:
      if (va == vb) return va == c;
      return (c > lo && c < hi) || (c == lo && lo_attained) ||
             (c == hi && hi_attained);
    case CmpOp::kNe:
      if (va == vb) return va != c;
      return true;  // a non-constant segment attains values != c
  }
  return false;
}

}  // namespace

bool Ever(const TFloatSeq& seq, CmpOp op, double c) {
  const size_t n = seq.size();
  if (n == 1) return EvalCmp(op, seq.StartValue(), c);
  for (size_t i = 0; i + 1 < n; ++i) {
    const bool start_attained = (i > 0) || seq.lower_inc();
    const bool end_attained = (i + 2 < n) || seq.upper_inc();
    if (SegmentEver(op, seq.instant(i).value, seq.instant(i + 1).value,
                    start_attained, end_attained, seq.interp(), c)) {
      return true;
    }
  }
  return false;
}

bool Always(const TFloatSeq& seq, CmpOp op, double c) {
  return !Ever(seq, Negate(op), c);
}

double MinValue(const TFloatSeq& seq) {
  double m = seq.StartValue();
  for (const auto& ins : seq.instants()) m = std::min(m, ins.value);
  return m;
}

double MaxValue(const TFloatSeq& seq) {
  double m = seq.StartValue();
  for (const auto& ins : seq.instants()) m = std::max(m, ins.value);
  return m;
}

TSeqSet<double> AtRange(const TFloatSeq& seq, double lo, double hi) {
  const PeriodSet above = WhenCmp(seq, CmpOp::kGe, lo);
  const PeriodSet below = WhenCmp(seq, CmpOp::kLe, hi);
  TSeqSet<double> parts = seq.AtPeriodSet(above.IntersectionWith(below));
  // Crossing instants round to the microsecond grid, so interpolated
  // boundary values can overshoot [lo, hi] by the value change within less
  // than a microsecond. Snap boundary instants onto the range — the exact
  // crossing value.
  for (TFloatSeq& part : parts) {
    std::vector<TInstant<double>> instants(part.instants());
    for (size_t idx : {size_t{0}, instants.size() - 1}) {
      instants[idx].value = std::clamp(instants[idx].value, lo, hi);
    }
    auto snapped = TFloatSeq::Make(std::move(instants), part.lower_inc(),
                                   part.upper_inc(), part.interp());
    assert(snapped.ok());
    part = *snapped;
  }
  return parts;
}

PeriodSet WhenCmp(const TFloatSeq& seq, CmpOp op, double c) {
  return WhenTrue(CmpConst(seq, op, c));
}

double Integral(const TFloatSeq& seq) {
  double acc = 0.0;
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const double dt = ToSeconds(b.t - a.t);
    if (seq.interp() == Interp::kLinear) {
      acc += 0.5 * (a.value + b.value) * dt;
    } else {
      acc += a.value * dt;
    }
  }
  return acc;
}

double TwAvg(const TFloatSeq& seq) {
  const Duration d = seq.DurationMicros();
  if (d == 0) return seq.StartValue();
  return Integral(seq) / ToSeconds(d);
}

Result<TFloatSeq> Derivative(const TFloatSeq& seq) {
  if (seq.interp() != Interp::kLinear) {
    return Status::InvalidArgument("derivative requires linear interpolation");
  }
  if (seq.size() < 2) {
    return Status::InvalidArgument("derivative requires >= 2 instants");
  }
  std::vector<TInstant<double>> out;
  out.reserve(seq.size());
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const auto& a = seq.instant(i);
    const auto& b = seq.instant(i + 1);
    const double slope =
        (b.value - a.value) / ToSeconds(b.t - a.t);
    out.push_back({slope, a.t});
  }
  out.push_back({out.back().value, seq.EndTime()});
  return TFloatSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                         Interp::kStep);
}

std::optional<TBoolSeq> TAnd(const TBoolSeq& a, const TBoolSeq& b) {
  auto sync = SynchronizeSeq(a, b);
  if (!sync) return std::nullopt;
  std::vector<TInstant<bool>> out;
  out.reserve(sync->first.size());
  for (size_t i = 0; i < sync->first.size(); ++i) {
    out.push_back({sync->first.instant(i).value && sync->second.instant(i).value,
                   sync->first.instant(i).t});
  }
  auto res = TBoolSeq::Make(std::move(out), sync->first.lower_inc(),
                            sync->first.upper_inc(), Interp::kStep);
  assert(res.ok());
  return *res;
}

std::optional<TBoolSeq> TOr(const TBoolSeq& a, const TBoolSeq& b) {
  auto sync = SynchronizeSeq(a, b);
  if (!sync) return std::nullopt;
  std::vector<TInstant<bool>> out;
  out.reserve(sync->first.size());
  for (size_t i = 0; i < sync->first.size(); ++i) {
    out.push_back({sync->first.instant(i).value || sync->second.instant(i).value,
                   sync->first.instant(i).t});
  }
  auto res = TBoolSeq::Make(std::move(out), sync->first.lower_inc(),
                            sync->first.upper_inc(), Interp::kStep);
  assert(res.ok());
  return *res;
}

TBoolSeq TNot(const TBoolSeq& seq) {
  std::vector<TInstant<bool>> out;
  out.reserve(seq.size());
  for (const auto& ins : seq.instants()) out.push_back({!ins.value, ins.t});
  auto res = TBoolSeq::Make(std::move(out), seq.lower_inc(), seq.upper_inc(),
                            Interp::kStep);
  assert(res.ok());
  return *res;
}

PeriodSet WhenTrue(const TBoolSeq& seq) {
  std::vector<Period> periods;
  const size_t n = seq.size();
  if (n == 1) {
    if (seq.StartValue()) periods.push_back(Period::Instant(seq.StartTime()));
    return PeriodSet(std::move(periods));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!seq.instant(i).value) continue;
    // Step semantics: the value holds on [t_i, t_{i+1}).
    const bool lower_inc = (i > 0) || seq.lower_inc();
    auto p = Period::Make(seq.instant(i).t, seq.instant(i + 1).t, lower_inc,
                          /*upper_inc=*/false);
    if (p.ok()) periods.push_back(*p);
  }
  if (seq.instant(n - 1).value && seq.upper_inc()) {
    periods.push_back(Period::Instant(seq.EndTime()));
  }
  return PeriodSet(std::move(periods));
}

bool EverTrue(const TBoolSeq& seq) {
  // The final instant's value only holds if the upper bound is inclusive.
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq.instant(i).value) return true;
  }
  if (seq.size() == 1) return seq.StartValue();
  return seq.upper_inc() && seq.EndValue();
}

bool AlwaysTrue(const TBoolSeq& seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (!seq.instant(i).value) return false;
  }
  if (seq.size() == 1) return seq.StartValue();
  return !seq.upper_inc() || seq.EndValue();
}

}  // namespace nebulameos::meos

/// \file stbox.hpp
/// \brief Spatiotemporal bounding boxes (`STBox`).
///
/// An `STBox` combines an optional spatial extent (x/y ranges) with an
/// optional temporal extent (a `Period`). It is MEOS's central pruning
/// structure: every temporal point keeps its `STBox`, and predicates first
/// test boxes before touching exact geometry. `tpoint_at_stbox` — one of the
/// two operators the paper integrates — restricts a temporal point to such a
/// box.

#pragma once

#include <optional>
#include <string>

#include "meos/geo.hpp"
#include "meos/period.hpp"

namespace nebulameos::meos {

/// \brief A spatiotemporal box: spatial extent and/or temporal extent.
///
/// At least one dimension must be present. Boxes with only a spatial part
/// act as 2D boxes; boxes with only a temporal part act as periods.
class STBox {
 public:
  STBox() = default;

  /// Box with both spatial and temporal extents.
  static Result<STBox> Make(double xmin, double ymin, double xmax, double ymax,
                            const Period& period);

  /// Spatial-only box.
  static Result<STBox> MakeSpatial(double xmin, double ymin, double xmax,
                                   double ymax);

  /// Temporal-only box.
  static STBox MakeTemporal(const Period& period);

  /// Smallest box containing a geometry's bbox and, optionally, a period.
  static STBox FromGeoBox(const GeoBox& box,
                          const std::optional<Period>& period = std::nullopt);

  bool has_space() const { return has_space_; }
  bool has_time() const { return has_time_; }

  /// Spatial extent; only meaningful when `has_space()`.
  const GeoBox& box() const { return box_; }
  /// Temporal extent; only meaningful when `has_time()`.
  const Period& period() const { return period_; }

  double xmin() const { return box_.xmin; }
  double ymin() const { return box_.ymin; }
  double xmax() const { return box_.xmax; }
  double ymax() const { return box_.ymax; }
  Timestamp tmin() const { return period_.lower(); }
  Timestamp tmax() const { return period_.upper(); }

  /// True iff (p, t) lies inside the box (all present dimensions).
  bool Contains(const Point& p, Timestamp t) const;

  /// True iff \p p lies inside the spatial extent (true when no space).
  bool ContainsPoint(const Point& p) const;

  /// True iff \p t lies inside the temporal extent (true when no time).
  bool ContainsTime(Timestamp t) const;

  /// True iff the boxes overlap in every dimension both possess.
  bool Overlaps(const STBox& other) const;

  /// True iff \p other is fully inside this box in shared dimensions.
  bool ContainsBox(const STBox& other) const;

  /// Box expanded by \p dspace on each spatial side and \p dtime on each
  /// temporal side.
  STBox Expanded(double dspace, Duration dtime = 0) const;

  /// Smallest box containing both.
  STBox Union(const STBox& other) const;

  /// "STBOX XT(((xmin,ymin),(xmax,ymax)),[t1, t2])"-style text.
  std::string ToString() const;

  bool operator==(const STBox& o) const;

 private:
  GeoBox box_;
  Period period_;
  bool has_space_ = false;
  bool has_time_ = false;
};

}  // namespace nebulameos::meos

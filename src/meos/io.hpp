/// \file io.hpp
/// \brief Text serialization for temporal types.
///
/// MobilityDB-style literals — `[v1@t1, v2@t2)` for sequences, with
/// `Interp=Step;` prefix for non-default interpolation — plus GeoJSON/MF-JSON
/// emitters used by the visualization exporters (Figures 2 and 3).

#pragma once

#include <string>

#include "meos/tgeompoint.hpp"

namespace nebulameos::meos {

/// Formats a temporal float, e.g. "[1.5@2023-06-01 08:00:00, 2@...)".
std::string TFloatToString(const TFloatSeq& seq);

/// Formats a temporal bool, e.g. "[t@..., f@...]".
std::string TBoolToString(const TBoolSeq& seq);

/// Formats a temporal point, e.g. "[POINT(4.35 50.84)@..., ...]".
std::string TPointToString(const TGeomPointSeq& seq);

/// Parses a temporal float literal produced by `TFloatToString`.
Result<TFloatSeq> TFloatFromString(const std::string& text);

/// Parses a temporal point literal produced by `TPointToString`.
Result<TGeomPointSeq> TPointFromString(const std::string& text);

/// \brief GeoJSON `LineString` feature for a trajectory, with per-vertex
/// epoch-microsecond timestamps in `properties.times` (Deck.gl TripsLayer
/// convention).
std::string TPointToGeoJson(const TGeomPointSeq& seq,
                            const std::string& id = "");

/// MF-JSON-style `MovingPoint` document for a trajectory.
std::string TPointToMfJson(const TGeomPointSeq& seq);

}  // namespace nebulameos::meos

/// \file temporal.hpp
/// \brief Temporal types: `TInstant<T>` and `TSequence<T>`.
///
/// A temporal value models the evolution of a value of type `T` over time,
/// following the MEOS/MobilityDB data model:
///
/// * a **temporal instant** is a (value, timestamp) pair;
/// * a **temporal sequence** is an ordered list of instants with strictly
///   increasing timestamps, per-bound inclusivity flags, and an
///   interpolation mode (`kStep` or `kLinear`);
/// * a **sequence set** (gaps allowed) is represented as
///   `std::vector<TSequence<T>>`, the result type of restriction
///   operations that can split a sequence.
///
/// Instantiations used in NebulaMEOS: `TFloatSeq` (`double`), `TBoolSeq`
/// (`bool`, step-only), `TIntSeq` (`int64_t`, step-only) and `TGeomPointSeq`
/// (`geo::Point`, declared in tgeompoint.hpp).

#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "meos/geo.hpp"
#include "meos/period.hpp"

namespace nebulameos::meos {

/// Interpolation mode of a temporal sequence.
enum class Interp {
  kStep,    ///< value holds from an instant until (exclusive) the next
  kLinear,  ///< value varies linearly between consecutive instants
};

/// \brief Interpolation behaviour per base type.
///
/// Types without a meaningful linear interpolation (bool, integers, text)
/// specialize with `kSupportsLinear = false`; sequences over them are forced
/// to step interpolation.
template <typename T>
struct InterpTraits {
  static constexpr bool kSupportsLinear = false;
  static T Interpolate(const T& a, const T& /*b*/, double /*f*/) { return a; }
};

template <>
struct InterpTraits<double> {
  static constexpr bool kSupportsLinear = true;
  static double Interpolate(double a, double b, double f) {
    return a + (b - a) * f;
  }
};

template <>
struct InterpTraits<Point> {
  static constexpr bool kSupportsLinear = true;
  static Point Interpolate(const Point& a, const Point& b, double f) {
    return Lerp(a, b, f);
  }
};

/// \brief A value observed at one timestamp.
template <typename T>
struct TInstant {
  T value{};
  Timestamp t = 0;

  bool operator==(const TInstant& o) const {
    return value == o.value && t == o.t;
  }
};

/// \brief A temporal sequence: instants + bounds + interpolation.
template <typename T>
class TSequence {
 public:
  using Instant = TInstant<T>;

  TSequence() = default;

  /// Builds a sequence. Fails unless timestamps strictly increase, the
  /// sequence is non-empty, single-instant sequences have inclusive bounds,
  /// and linear interpolation is only requested for types that support it.
  static Result<TSequence> Make(std::vector<Instant> instants,
                                bool lower_inc = true, bool upper_inc = true,
                                Interp interp = DefaultInterp()) {
    if (instants.empty()) {
      return Status::InvalidArgument("temporal sequence needs >= 1 instant");
    }
    for (size_t i = 1; i < instants.size(); ++i) {
      if (instants[i - 1].t >= instants[i].t) {
        return Status::InvalidArgument(
            "temporal sequence timestamps must strictly increase");
      }
    }
    if (instants.size() == 1 && !(lower_inc && upper_inc)) {
      return Status::InvalidArgument(
          "single-instant sequence must have inclusive bounds");
    }
    if (interp == Interp::kLinear && !InterpTraits<T>::kSupportsLinear) {
      return Status::InvalidArgument(
          "linear interpolation unsupported for this base type");
    }
    TSequence seq;
    seq.instants_ = std::move(instants);
    seq.lower_inc_ = lower_inc;
    seq.upper_inc_ = upper_inc;
    seq.interp_ = interp;
    return seq;
  }

  /// Builds a sequence from parallel value/time vectors.
  static Result<TSequence> FromValues(const std::vector<T>& values,
                                      const std::vector<Timestamp>& times,
                                      Interp interp = DefaultInterp()) {
    if (values.size() != times.size()) {
      return Status::InvalidArgument("values/times size mismatch");
    }
    std::vector<Instant> ins;
    ins.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ins.push_back(Instant{values[i], times[i]});
    }
    return Make(std::move(ins), true, true, interp);
  }

  /// The natural interpolation for `T` (linear when supported).
  static constexpr Interp DefaultInterp() {
    return InterpTraits<T>::kSupportsLinear ? Interp::kLinear : Interp::kStep;
  }

  // --- Accessors -----------------------------------------------------------

  const std::vector<Instant>& instants() const { return instants_; }
  size_t size() const { return instants_.size(); }
  bool empty() const { return instants_.empty(); }
  const Instant& instant(size_t i) const { return instants_[i]; }
  Interp interp() const { return interp_; }
  bool lower_inc() const { return lower_inc_; }
  bool upper_inc() const { return upper_inc_; }

  const T& StartValue() const { return instants_.front().value; }
  const T& EndValue() const { return instants_.back().value; }
  Timestamp StartTime() const { return instants_.front().t; }
  Timestamp EndTime() const { return instants_.back().t; }

  /// The sequence's time extent with its bound flags.
  Period period() const {
    auto p = Period::Make(StartTime(), EndTime(), lower_inc_, upper_inc_);
    assert(p.ok());
    return *p;
  }

  /// `EndTime() - StartTime()`.
  Duration DurationMicros() const { return EndTime() - StartTime(); }

  // --- Value access --------------------------------------------------------

  /// Value at \p t, or nullopt when \p t is outside the (bound-respecting)
  /// period. Step sequences return the left instant's value.
  std::optional<T> ValueAt(Timestamp t) const {
    if (!period().Contains(t)) return std::nullopt;
    return ValueAtUnchecked(t);
  }

  /// Value at \p t assuming `StartTime() <= t <= EndTime()`; ignores bound
  /// exclusivity (used internally for boundary interpolation).
  T ValueAtUnchecked(Timestamp t) const {
    // Index of the last instant with timestamp <= t.
    const size_t i = IndexAtOrBefore(t);
    if (instants_[i].t == t || i + 1 == instants_.size()) {
      if (interp_ == Interp::kStep || instants_[i].t == t) {
        return instants_[i].value;
      }
    }
    if (interp_ == Interp::kStep) return instants_[i].value;
    const Instant& a = instants_[i];
    const Instant& b = instants_[i + 1];
    const double f =
        static_cast<double>(t - a.t) / static_cast<double>(b.t - a.t);
    return InterpTraits<T>::Interpolate(a.value, b.value, f);
  }

  /// Index of the last instant at or before \p t (requires t >= StartTime()).
  size_t IndexAtOrBefore(Timestamp t) const {
    assert(t >= StartTime());
    auto it = std::upper_bound(
        instants_.begin(), instants_.end(), t,
        [](Timestamp v, const Instant& ins) { return v < ins.t; });
    return static_cast<size_t>(std::distance(instants_.begin(), it)) - 1;
  }

  // --- Restriction ---------------------------------------------------------

  /// Restriction to a period; interpolates boundary instants for linear
  /// sequences, takes the left value for step sequences. Returns nullopt
  /// when the intersection is empty.
  std::optional<TSequence> AtPeriod(const Period& p) const {
    auto inter = period().Intersection(p);
    if (!inter) return std::nullopt;
    if (inter->lower() == inter->upper()) {
      // Instantaneous restriction.
      if (!period().Contains(inter->lower())) return std::nullopt;
      std::vector<Instant> one = {
          Instant{ValueAtUnchecked(inter->lower()), inter->lower()}};
      auto seq = Make(std::move(one), true, true, interp_);
      assert(seq.ok());
      return *seq;
    }
    std::vector<Instant> out;
    // Boundary instant at inter.lower.
    out.push_back(Instant{ValueAtUnchecked(inter->lower()), inter->lower()});
    // Interior instants.
    for (const Instant& ins : instants_) {
      if (ins.t > inter->lower() && ins.t < inter->upper()) {
        out.push_back(ins);
      }
    }
    // Boundary instant at inter.upper.
    out.push_back(Instant{ValueAtUnchecked(inter->upper()), inter->upper()});
    auto seq = Make(std::move(out), inter->lower_inc(), inter->upper_inc(),
                    interp_);
    assert(seq.ok());
    return *seq;
  }

  /// Restriction to a period set; may split the sequence.
  std::vector<TSequence> AtPeriodSet(const PeriodSet& ps) const {
    std::vector<TSequence> out;
    for (const Period& p : ps.periods()) {
      if (auto seq = AtPeriod(p)) out.push_back(std::move(*seq));
    }
    return out;
  }

  /// The sequence minus a period set (the complement restriction).
  std::vector<TSequence> MinusPeriodSet(const PeriodSet& ps) const {
    PeriodSet mine(std::vector<Period>{period()});
    return AtPeriodSet(mine.Difference(ps));
  }

  // --- Predicates ----------------------------------------------------------

  /// True iff the value \p v is attained at some instant of the sequence
  /// (exact equality; numeric "ever" comparisons with interpolation live in
  /// tfloat_ops.hpp).
  bool EverValueEq(const T& v) const {
    for (const Instant& ins : instants_) {
      if (ins.value == v) return true;
    }
    return false;
  }

  /// True iff every instant's value equals \p v.
  bool AlwaysValueEq(const T& v) const {
    for (const Instant& ins : instants_) {
      if (!(ins.value == v)) return false;
    }
    return true;
  }

  // --- Transformation ------------------------------------------------------

  /// Sequence with all timestamps shifted by \p delta.
  TSequence Shifted(Duration delta) const {
    TSequence s = *this;
    for (Instant& ins : s.instants_) ins.t += delta;
    return s;
  }

  /// Appends an instant at the end (streaming construction). Fails unless
  /// its timestamp is after the current end.
  Status Append(Instant ins) {
    if (!instants_.empty() && ins.t <= EndTime()) {
      return Status::InvalidArgument("append timestamp must increase");
    }
    instants_.push_back(std::move(ins));
    return Status::OK();
  }

  bool operator==(const TSequence& o) const {
    return instants_ == o.instants_ && lower_inc_ == o.lower_inc_ &&
           upper_inc_ == o.upper_inc_ && interp_ == o.interp_;
  }

 private:
  std::vector<Instant> instants_;
  bool lower_inc_ = true;
  bool upper_inc_ = true;
  Interp interp_ = DefaultInterp();
};

/// Temporal float sequence (linear by default).
using TFloatSeq = TSequence<double>;
/// Temporal boolean sequence (step interpolation).
using TBoolSeq = TSequence<bool>;
/// Temporal integer sequence (step interpolation).
using TIntSeq = TSequence<int64_t>;

/// A sequence set: result of restrictions that may split a sequence.
template <typename T>
using TSeqSet = std::vector<TSequence<T>>;

/// Total duration covered by a sequence set.
template <typename T>
Duration SeqSetDuration(const TSeqSet<T>& set) {
  Duration d = 0;
  for (const auto& s : set) d += s.DurationMicros();
  return d;
}

}  // namespace nebulameos::meos

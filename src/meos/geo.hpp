/// \file geo.hpp
/// \brief Geometry kernel of the mobility engine.
///
/// 2D points, segments, axis-aligned boxes, simple polygons and circles,
/// with the metric operations the temporal-point algebra builds on:
/// point/segment/polygon distances, containment tests, and segment
/// intersection parameters. Two metrics are supported:
///
/// * `Metric::kCartesian` — planar coordinates, Euclidean distance;
/// * `Metric::kWgs84`     — x = longitude / y = latitude in degrees.
///   Point–point distance is haversine; segment-level operations use a
///   local equirectangular projection (exact enough at rail-corridor
///   scale, the regime the paper operates in).
///
/// This mirrors the geometry layer MEOS borrows from PostGIS, scoped to the
/// operations NebulaMEOS needs.

#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace nebulameos::meos {

/// Coordinate interpretation for distance computations.
enum class Metric {
  kCartesian,  ///< planar x/y, Euclidean distance
  kWgs84,      ///< x = lon°, y = lat°; metric distances in meters
};

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Meters per degree of latitude (spherical approximation).
inline constexpr double kMetersPerDegreeLat =
    kEarthRadiusMeters * M_PI / 180.0;

/// \brief A 2D point. In WGS84 mode `x` is longitude and `y` latitude.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

/// True iff points are within \p eps in both coordinates.
inline bool ApproxEquals(const Point& a, const Point& b, double eps = 1e-9) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

/// Linear interpolation between \p a and \p b at fraction \p f in [0,1].
inline Point Lerp(const Point& a, const Point& b, double f) {
  return Point{a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
}

/// \brief A directed straight segment between two points.
struct Segment {
  Point a;
  Point b;
};

/// \brief An axis-aligned 2D box (the spatial part of an `STBox`).
struct GeoBox {
  double xmin = 0.0;
  double ymin = 0.0;
  double xmax = 0.0;
  double ymax = 0.0;

  /// A box that contains nothing; `Extend` grows it.
  static GeoBox Empty();
  /// True for the `Empty()` box.
  bool IsEmpty() const;
  /// Grows the box to contain \p p.
  void Extend(const Point& p);
  /// Grows the box to contain \p other.
  void ExtendBox(const GeoBox& other);
  /// True iff \p p lies inside or on the boundary.
  bool Contains(const Point& p) const;
  /// True iff the boxes share at least one point.
  bool Overlaps(const GeoBox& other) const;
  /// Box grown by \p margin on every side.
  GeoBox Expanded(double margin) const;
  /// Width (x extent) of the box.
  double Width() const { return xmax - xmin; }
  /// Height (y extent) of the box.
  double Height() const { return ymax - ymin; }
};

/// \brief A simple polygon (single outer ring, no holes).
///
/// The ring is stored open (first vertex not repeated); edges close the ring
/// implicitly. Vertex order may be CW or CCW.
class Polygon {
 public:
  Polygon() = default;

  /// Builds a polygon from ring vertices. Fails if fewer than 3 distinct
  /// vertices are given. A repeated final vertex (closed WKT ring) is
  /// dropped.
  static Result<Polygon> Make(std::vector<Point> ring);

  /// Ring vertices (open).
  const std::vector<Point>& ring() const { return ring_; }
  /// Number of vertices.
  size_t size() const { return ring_.size(); }
  /// Bounding box of the ring.
  const GeoBox& bbox() const { return bbox_; }

  /// Even-odd containment test; boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Edge \p i as a segment (wraps around).
  Segment Edge(size_t i) const {
    return Segment{ring_[i], ring_[(i + 1) % ring_.size()]};
  }

  /// Signed area (positive for CCW rings); planar coordinates.
  double SignedArea() const;

 private:
  std::vector<Point> ring_;
  GeoBox bbox_;
};

/// \brief A circular zone (center + metric radius), used for radius
/// geofences.
struct Circle {
  Point center;
  double radius = 0.0;  ///< meters in kWgs84, coordinate units in kCartesian
};

// ---------------------------------------------------------------------------
// Metric operations
// ---------------------------------------------------------------------------

/// Euclidean distance in the plane.
double CartesianDistance(const Point& a, const Point& b);

/// Great-circle distance in meters between lon/lat-degree points.
double HaversineMeters(const Point& a, const Point& b);

/// Distance between points under \p metric (meters for kWgs84).
double PointDistance(const Point& a, const Point& b, Metric metric);

/// \brief Local equirectangular projection centered at \p origin.
///
/// Maps lon/lat degrees to meters east/north of the origin, so planar
/// algorithms apply locally. In kCartesian mode it is the identity.
class LocalProjection {
 public:
  LocalProjection(const Point& origin, Metric metric);

  /// Projects a point to local planar coordinates.
  Point Project(const Point& p) const;
  /// Inverse projection back to the input coordinate space.
  Point Unproject(const Point& p) const;

 private:
  Point origin_;
  double mx_ = 1.0;  // meters per degree of longitude at origin (or 1)
  double my_ = 1.0;  // meters per degree of latitude (or 1)
};

/// Shortest distance from \p p to segment \p s under \p metric.
double PointSegmentDistance(const Point& p, const Segment& s, Metric metric);

/// Fraction in [0,1] along \p s of the point closest to \p p (planar for
/// kCartesian, in local projection for kWgs84).
double ClosestPointFraction(const Point& p, const Segment& s, Metric metric);

/// Shortest distance between two segments under \p metric.
double SegmentSegmentDistance(const Segment& s1, const Segment& s2,
                              Metric metric);

/// \brief Proper intersection of two segments in the plane.
///
/// Returns the parameters (t, u) in [0,1]² with
/// `s1.a + t*(s1.b-s1.a) == s2.a + u*(s2.b-s2.a)` when the (non-collinear)
/// segments intersect; `nullopt` otherwise. Collinear overlap returns
/// `nullopt` (callers handle it by endpoint containment).
std::optional<std::pair<double, double>> SegmentIntersection(
    const Segment& s1, const Segment& s2);

/// Distance from \p p to the polygon: 0 when inside, else distance to the
/// nearest edge.
double PointPolygonDistance(const Point& p, const Polygon& poly,
                            Metric metric);

/// Distance from \p p to the circle boundary-or-interior: 0 when inside.
double PointCircleDistance(const Point& p, const Circle& c, Metric metric);

// ---------------------------------------------------------------------------
// WKT
// ---------------------------------------------------------------------------

/// Formats "POINT(x y)".
std::string PointToWkt(const Point& p);

/// Formats "POLYGON((x1 y1, x2 y2, ...))" (ring closed in the output).
std::string PolygonToWkt(const Polygon& poly);

/// Parses "POINT(x y)" (case-insensitive tag, flexible whitespace).
Result<Point> PointFromWkt(const std::string& wkt);

/// Parses "POLYGON((x1 y1, ...))" — outer ring only.
Result<Polygon> PolygonFromWkt(const std::string& wkt);

}  // namespace nebulameos::meos

/// \file period.hpp
/// \brief Time types of the mobility engine: `Period`, `TimestampSet`,
/// `PeriodSet`.
///
/// A `Period` is a time interval with independently inclusive/exclusive
/// bounds, exactly as in MEOS/MobilityDB. `PeriodSet` is a normalized
/// (sorted, disjoint, non-adjacent) list of periods and supports the set
/// algebra used by restriction operations on temporal types.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"

namespace nebulameos::meos {

/// \brief A bounded time interval `[lower, upper]` with per-bound
/// inclusivity.
///
/// Invariants: `lower <= upper`; when `lower == upper` both bounds are
/// inclusive (an instantaneous period).
class Period {
 public:
  /// Builds a period; normalizes nothing, validates the invariants.
  static Result<Period> Make(Timestamp lower, Timestamp upper,
                             bool lower_inc = true, bool upper_inc = true);

  /// Convenience: inclusive-inclusive period. `lower <= upper` required
  /// (asserted in debug builds).
  Period(Timestamp lower, Timestamp upper)
      : lower_(lower), upper_(upper), lower_inc_(true), upper_inc_(true) {}

  /// An instantaneous period `[t, t]`.
  static Period Instant(Timestamp t) { return Period(t, t); }

  Period() = default;

  Timestamp lower() const { return lower_; }
  Timestamp upper() const { return upper_; }
  bool lower_inc() const { return lower_inc_; }
  bool upper_inc() const { return upper_inc_; }

  /// `upper - lower` in microseconds.
  Duration DurationMicros() const { return upper_ - lower_; }

  /// True iff the period contains the timestamp.
  bool Contains(Timestamp t) const;

  /// True iff `other` is fully contained in this period.
  bool ContainsPeriod(const Period& other) const;

  /// True iff the periods share at least one instant.
  bool Overlaps(const Period& other) const;

  /// True iff this period ends exactly where `other` starts (or vice versa)
  /// with complementary bound flags, i.e. their union is a single period but
  /// they share no instant.
  bool IsAdjacent(const Period& other) const;

  /// Intersection; nullopt when disjoint.
  std::optional<Period> Intersection(const Period& other) const;

  /// Smallest period containing both.
  Period Union(const Period& other) const;

  /// Shifts both bounds by \p delta.
  Period Shifted(Duration delta) const;

  /// "[2023-01-01 00:00:00, 2023-01-01 01:00:00)"-style text.
  std::string ToString() const;

  bool operator==(const Period& o) const {
    return lower_ == o.lower_ && upper_ == o.upper_ &&
           lower_inc_ == o.lower_inc_ && upper_inc_ == o.upper_inc_;
  }

 private:
  Timestamp lower_ = 0;
  Timestamp upper_ = 0;
  bool lower_inc_ = true;
  bool upper_inc_ = true;
};

/// \brief A finite, sorted set of distinct timestamps.
class TimestampSet {
 public:
  TimestampSet() = default;
  /// Builds a set; sorts and deduplicates the input.
  explicit TimestampSet(std::vector<Timestamp> times);

  const std::vector<Timestamp>& times() const { return times_; }
  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  bool Contains(Timestamp t) const;

  /// Span from first to last timestamp (inclusive). Requires non-empty.
  Period Extent() const;

 private:
  std::vector<Timestamp> times_;
};

/// \brief A normalized union of periods: sorted, pairwise disjoint and
/// non-adjacent.
class PeriodSet {
 public:
  PeriodSet() = default;
  /// Builds a set from arbitrary periods; merges overlapping/adjacent ones.
  explicit PeriodSet(std::vector<Period> periods);

  const std::vector<Period>& periods() const { return periods_; }
  size_t size() const { return periods_.size(); }
  bool empty() const { return periods_.empty(); }

  /// Sum of the member durations.
  Duration TotalDuration() const;

  /// True iff any member period contains \p t.
  bool Contains(Timestamp t) const;

  /// Smallest single period covering the set. Requires non-empty.
  Period Extent() const;

  /// Set union (normalized).
  PeriodSet UnionWith(const PeriodSet& other) const;

  /// Set intersection (normalized).
  PeriodSet IntersectionWith(const PeriodSet& other) const;

  /// This set minus \p other (normalized).
  PeriodSet Difference(const PeriodSet& other) const;

  bool operator==(const PeriodSet& o) const { return periods_ == o.periods_; }

 private:
  std::vector<Period> periods_;
};

}  // namespace nebulameos::meos

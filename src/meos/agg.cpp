#include "meos/agg.hpp"

#include <algorithm>

namespace nebulameos::meos {

void ExtentAggregator::Add(const TGeomPointSeq& seq) {
  const STBox box = BoundingBox(seq);
  extent_ = extent_ ? extent_->Union(box) : box;
}

void ExtentAggregator::AddPoint(const Point& p, Timestamp t) {
  GeoBox gb = GeoBox::Empty();
  gb.Extend(p);
  const STBox box = STBox::FromGeoBox(gb, Period::Instant(t));
  extent_ = extent_ ? extent_->Union(box) : box;
}

void ExtentAggregator::Merge(const ExtentAggregator& other) {
  if (!other.extent_) return;
  extent_ = extent_ ? extent_->Union(*other.extent_) : other.extent_;
}

void TwAvgAggregator::Add(const TFloatSeq& seq) {
  if (seq.DurationMicros() == 0) {
    instant_sum_ += seq.StartValue();
    instant_count_ += 1;
    return;
  }
  integral_ += Integral(seq);
  seconds_ += ToSeconds(seq.DurationMicros());
}

void TwAvgAggregator::Merge(const TwAvgAggregator& other) {
  integral_ += other.integral_;
  seconds_ += other.seconds_;
  instant_sum_ += other.instant_sum_;
  instant_count_ += other.instant_count_;
}

std::optional<double> TwAvgAggregator::Value() const {
  if (seconds_ > 0.0) return integral_ / seconds_;
  if (instant_count_ > 0) {
    return instant_sum_ / static_cast<double>(instant_count_);
  }
  return std::nullopt;
}

void TCountAggregator::Add(const Period& period) { periods_.push_back(period); }

std::optional<TIntSeq> TCountAggregator::Profile() const {
  if (periods_.empty()) return std::nullopt;
  // Sweep over period boundaries.
  std::vector<Timestamp> cuts;
  cuts.reserve(periods_.size() * 2);
  for (const Period& p : periods_) {
    cuts.push_back(p.lower());
    cuts.push_back(p.upper());
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<TInstant<int64_t>> out;
  out.reserve(cuts.size());
  for (size_t i = 0; i < cuts.size(); ++i) {
    // Step semantics: the value at cut i holds on [cuts[i], cuts[i+1]), so
    // count the periods covering that cell's midpoint; the final cut counts
    // the instant itself.
    const Timestamp probe = i + 1 < cuts.size()
                                ? cuts[i] + (cuts[i + 1] - cuts[i]) / 2
                                : cuts[i];
    int64_t n = 0;
    for (const Period& p : periods_) {
      if (p.Contains(probe)) ++n;
    }
    out.push_back({n, cuts[i]});
  }
  auto res = TIntSeq::Make(std::move(out), true, true, Interp::kStep);
  if (!res.ok()) return std::nullopt;
  return *res;
}

int64_t TCountAggregator::MaxCount() const {
  auto profile = Profile();
  if (!profile) return 0;
  int64_t best = 0;
  for (const auto& ins : profile->instants()) {
    best = std::max(best, ins.value);
  }
  return best;
}

void MinMaxAggregator::Add(const TFloatSeq& seq) {
  const double lo = MinValue(seq);
  const double hi = MaxValue(seq);
  min_ = min_ ? std::min(*min_, lo) : lo;
  max_ = max_ ? std::max(*max_, hi) : hi;
}

void MinMaxAggregator::Merge(const MinMaxAggregator& other) {
  if (other.min_) min_ = min_ ? std::min(*min_, *other.min_) : *other.min_;
  if (other.max_) max_ = max_ ? std::max(*max_, *other.max_) : *other.max_;
}

}  // namespace nebulameos::meos

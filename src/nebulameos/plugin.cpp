#include "nebulameos/plugin.hpp"

namespace nebulameos::integration {

Status RegisterMeosPlugin(
    std::shared_ptr<const GeofenceRegistry> geofences) {
  if (geofences) SetActiveGeofences(std::move(geofences));
  nebula::RegisterBuiltinFunctions();
  auto& registry = nebula::ExpressionRegistry::Global();
  if (registry.Contains("edwithin")) return Status::OK();  // idempotent
  NM_RETURN_NOT_OK(registry.Register("edwithin", EdwithinExpression::Make));
  NM_RETURN_NOT_OK(
      registry.Register("tpoint_at_stbox", MeosAtStboxExpression::Make));
  NM_RETURN_NOT_OK(registry.Register("in_zone", InZoneExpression::Make));
  NM_RETURN_NOT_OK(
      registry.Register("in_zone_kind", InZoneKindExpression::Make));
  NM_RETURN_NOT_OK(registry.Register("zone_id", ZoneIdExpression::Make));
  NM_RETURN_NOT_OK(
      registry.Register("zone_speed_limit", ZoneSpeedLimitExpression::Make));
  NM_RETURN_NOT_OK(registry.Register("nearest_poi_distance",
                                     NearestPoiDistanceExpression::Make));
  NM_RETURN_NOT_OK(
      registry.Register("nearest_poi_id", NearestPoiIdExpression::Make));
  NM_RETURN_NOT_OK(registry.Register("haversine_m", HaversineExpression::Make));
  return Status::OK();
}

bool MeosPluginRegistered() {
  return nebula::ExpressionRegistry::Global().Contains("edwithin");
}

}  // namespace nebulameos::integration

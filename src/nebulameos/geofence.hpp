/// \file geofence.hpp
/// \brief Geofence registry: named zones and points of interest with a
/// spatial grid index.
///
/// "A geofence is a boundary that limits a location. It can be created
/// dynamically in a radius from the center of the area or by setting the
/// boundaries to perimeters" (paper §3.1). The registry holds both forms —
/// circles and polygons — tagged by kind (maintenance zone, station,
/// workshop, noise-sensitive neighbourhood, high-risk segment, weather
/// zone), plus point POIs. Queries resolve zones by name or by containment;
/// containment lookups go through a uniform grid index over zone bounding
/// boxes (MEOS-style box pruning before exact geometry tests), which the
/// A1 ablation benchmark can disable.

#pragma once

#include <map>
#include <optional>
#include <variant>

#include "meos/tgeompoint.hpp"

namespace nebulameos::integration {

using meos::Circle;
using meos::Metric;
using meos::Point;
using meos::Polygon;

/// Category of a geofence zone.
enum class ZoneKind {
  kMaintenance,
  kStation,
  kWorkshop,
  kNoiseSensitive,
  kHighRisk,
  kWeather,
};

/// Human-readable zone-kind name.
const char* ZoneKindName(ZoneKind kind);

/// \brief One registered geofence.
struct Zone {
  int64_t id = 0;
  std::string name;
  ZoneKind kind = ZoneKind::kMaintenance;
  std::variant<Polygon, Circle> shape;
  /// Advisory speed limit inside the zone (km/h); 0 = none.
  double speed_limit_kmh = 0.0;

  /// Bounding box of the shape (circles use a conservative WGS84 box).
  meos::GeoBox BoundingBox() const;

  /// True iff \p p lies inside the zone.
  bool Contains(const Point& p) const;

  /// Metric distance from \p p to the zone (0 inside).
  double DistanceTo(const Point& p) const;
};

/// \brief A named point of interest (e.g. a workshop's gate).
struct Poi {
  int64_t id = 0;
  std::string name;
  std::string kind;  ///< free-form tag, e.g. "workshop"
  Point location;
};

/// \brief Registry of zones and POIs with containment lookups.
///
/// Thread-compatible: build single-threaded, then share read-only across
/// query threads.
class GeofenceRegistry {
 public:
  /// \p metric selects WGS84 (default) or planar coordinates;
  /// \p cell_deg is the grid-index cell size in coordinate units.
  explicit GeofenceRegistry(Metric metric = Metric::kWgs84,
                            double cell_deg = 0.05);

  /// Registers a polygon zone; returns its id.
  int64_t AddPolygonZone(std::string name, ZoneKind kind, Polygon polygon,
                         double speed_limit_kmh = 0.0);

  /// Registers a circular zone; returns its id.
  int64_t AddCircleZone(std::string name, ZoneKind kind, Circle circle,
                        double speed_limit_kmh = 0.0);

  /// Registers a POI; returns its id.
  int64_t AddPoi(std::string name, std::string kind, Point location);

  /// Zone by name.
  const Zone* FindZone(const std::string& name) const;
  /// Zone by id.
  const Zone* FindZone(int64_t id) const;
  /// POI by name.
  const Poi* FindPoi(const std::string& name) const;

  /// All zones containing \p p, optionally restricted to \p kind.
  std::vector<const Zone*> ZonesContaining(
      const Point& p, std::optional<ZoneKind> kind = std::nullopt) const;

  /// True iff some zone (of \p kind, when given) contains \p p.
  bool InAnyZone(const Point& p,
                 std::optional<ZoneKind> kind = std::nullopt) const;

  /// Id of the first zone containing \p p (kind-filtered), or -1.
  int64_t ZoneIdAt(const Point& p,
                   std::optional<ZoneKind> kind = std::nullopt) const;

  /// The lowest advisory speed limit among zones containing \p p, or
  /// \p default_kmh when none applies.
  double SpeedLimitAt(const Point& p, double default_kmh) const;

  /// Nearest POI of \p kind; distance (meters in WGS84) returned through
  /// \p out_distance when non-null.
  const Poi* NearestPoi(const Point& p, const std::string& kind,
                        double* out_distance = nullptr) const;

  /// Enables/disables the grid index (A1 ablation: linear scan vs pruned
  /// lookup).
  void SetIndexEnabled(bool enabled) { index_enabled_ = enabled; }
  bool index_enabled() const { return index_enabled_; }

  size_t NumZones() const { return zones_.size(); }
  size_t NumPois() const { return pois_.size(); }
  Metric metric() const { return metric_; }
  const std::vector<Zone>& zones() const { return zones_; }
  const std::vector<Poi>& pois() const { return pois_; }

 private:
  struct CellKey {
    int32_t cx;
    int32_t cy;
    bool operator<(const CellKey& o) const {
      return cx != o.cx ? cx < o.cx : cy < o.cy;
    }
  };

  void IndexZone(size_t zone_index);
  CellKey CellOf(double x, double y) const;

  Metric metric_;
  double cell_deg_;
  bool index_enabled_ = true;
  std::vector<Zone> zones_;
  std::vector<Poi> pois_;
  std::map<CellKey, std::vector<size_t>> grid_;
};

}  // namespace nebulameos::integration

#include "nebulameos/trajectory.hpp"

#include <algorithm>
#include <limits>

#include "meos/tfloat_ops.hpp"
#include "nebulameos/meos_expressions.hpp"

namespace nebulameos::integration {

using nebula::DataType;
using nebula::Field;

// --- TrajectoryAggregatorBase ----------------------------------------------

Status TrajectoryAggregatorBase::Bind(const nebula::Schema& schema) {
  NM_ASSIGN_OR_RETURN(lon_index_, schema.IndexOf(fields_.lon));
  NM_ASSIGN_OR_RETURN(lat_index_, schema.IndexOf(fields_.lat));
  NM_ASSIGN_OR_RETURN(time_index_, schema.IndexOf(fields_.time));
  return Status::OK();
}

void TrajectoryAggregatorBase::Add(const nebula::RecordView& rec,
                                   Timestamp /*event_time*/) {
  instants_.push_back({meos::Point{rec.GetDouble(lon_index_),
                                   rec.GetDouble(lat_index_)},
                       rec.GetInt64(time_index_)});
}

std::optional<meos::TGeomPointSeq> TrajectoryAggregatorBase::BuildTrajectory()
    const {
  if (instants_.empty()) return std::nullopt;
  std::sort(instants_.begin(), instants_.end(),
            [](const meos::TInstant<meos::Point>& a,
               const meos::TInstant<meos::Point>& b) { return a.t < b.t; });
  // Deduplicate equal timestamps (keep the first observation).
  std::vector<meos::TInstant<meos::Point>> unique;
  unique.reserve(instants_.size());
  for (const auto& ins : instants_) {
    if (unique.empty() || ins.t > unique.back().t) unique.push_back(ins);
  }
  auto seq = meos::TGeomPointSeq::Make(std::move(unique));
  if (!seq.ok()) return std::nullopt;
  return *seq;
}

// --- TrajectoryMetricsAggregator ---------------------------------------------

std::vector<Field> TrajectoryMetricsAggregator::OutputFields() const {
  return {{"traj_points", DataType::kInt64},
          {"traj_length_m", DataType::kDouble},
          {"traj_avg_speed_ms", DataType::kDouble},
          {"traj_max_speed_ms", DataType::kDouble}};
}

void TrajectoryMetricsAggregator::WriteResult(nebula::RecordWriter* out,
                                              size_t f) {
  auto traj = BuildTrajectory();
  if (!traj) {
    out->SetInt64(f, 0);
    out->SetDouble(f + 1, 0.0);
    out->SetDouble(f + 2, 0.0);
    out->SetDouble(f + 3, 0.0);
    return;
  }
  const double length = meos::Length(*traj, Metric::kWgs84);
  double avg_speed = 0.0;
  double max_speed = 0.0;
  if (traj->size() >= 2) {
    const double seconds = ToSeconds(traj->DurationMicros());
    if (seconds > 0.0) avg_speed = length / seconds;
    auto speed = meos::Speed(*traj, Metric::kWgs84);
    if (speed.ok()) max_speed = meos::MaxValue(*speed);
  }
  out->SetInt64(f, static_cast<int64_t>(traj->size()));
  out->SetDouble(f + 1, length);
  out->SetDouble(f + 2, avg_speed);
  out->SetDouble(f + 3, max_speed);
}

nebula::CustomAggregatorFactory TrajectoryMetricsAggregator::Factory(
    TrajectoryFields fields) {
  return [fields]() {
    return std::make_unique<TrajectoryMetricsAggregator>(fields);
  };
}

// --- EdwithinAggregator ---------------------------------------------------------

EdwithinAggregator::EdwithinAggregator(std::string target, double dist_m,
                                       std::string prefix,
                                       TrajectoryFields fields)
    : TrajectoryAggregatorBase(std::move(fields)),
      target_(std::move(target)),
      dist_m_(dist_m),
      prefix_(std::move(prefix)) {}

Status EdwithinAggregator::Bind(const nebula::Schema& schema) {
  NM_RETURN_NOT_OK(TrajectoryAggregatorBase::Bind(schema));
  auto registry = ActiveGeofences();
  if (!registry) {
    return Status::FailedPrecondition(
        "EdwithinAggregator: no active geofence registry");
  }
  zone_ = registry->FindZone(target_);
  poi_ = zone_ ? nullptr : registry->FindPoi(target_);
  if (zone_ == nullptr && poi_ == nullptr) {
    return Status::NotFound("EdwithinAggregator: unknown target '" + target_ +
                            "'");
  }
  return Status::OK();
}

std::vector<Field> EdwithinAggregator::OutputFields() const {
  return {{prefix_ + "_edwithin", DataType::kBool},
          {prefix_ + "_min_dist_m", DataType::kDouble}};
}

void EdwithinAggregator::WriteResult(nebula::RecordWriter* out, size_t f) {
  auto traj = BuildTrajectory();
  if (!traj) {
    out->SetBool(f, false);
    out->SetDouble(f + 1, std::numeric_limits<double>::infinity());
    return;
  }
  bool within = false;
  double min_dist = std::numeric_limits<double>::infinity();
  if (poi_ != nullptr) {
    within = meos::EverDWithin(*traj, poi_->location, dist_m_,
                               Metric::kWgs84);
    min_dist =
        meos::NearestApproachDistance(*traj, poi_->location, Metric::kWgs84);
  } else if (const auto* poly = std::get_if<Polygon>(&zone_->shape)) {
    within = meos::EverDWithin(*traj, *poly, dist_m_, Metric::kWgs84);
    // Min distance over instants (exact segment distance used for within).
    for (const auto& ins : traj->instants()) {
      min_dist = std::min(
          min_dist, meos::PointPolygonDistance(ins.value, *poly,
                                               Metric::kWgs84));
    }
  } else {
    const Circle& c = std::get<Circle>(zone_->shape);
    within = meos::EverDWithin(*traj, c.center, dist_m_ + c.radius,
                               Metric::kWgs84);
    min_dist = std::max(0.0, meos::NearestApproachDistance(
                                 *traj, c.center, Metric::kWgs84) -
                                 c.radius);
  }
  out->SetBool(f, within);
  out->SetDouble(f + 1, min_dist);
}

nebula::CustomAggregatorFactory EdwithinAggregator::Factory(
    std::string target, double dist_m, std::string prefix,
    TrajectoryFields fields) {
  return [target, dist_m, prefix, fields]() {
    return std::make_unique<EdwithinAggregator>(target, dist_m, prefix,
                                                fields);
  };
}

// --- ZoneDwellAggregator ---------------------------------------------------------

ZoneDwellAggregator::ZoneDwellAggregator(std::string zone, std::string prefix,
                                         TrajectoryFields fields)
    : TrajectoryAggregatorBase(std::move(fields)),
      zone_name_(std::move(zone)),
      prefix_(std::move(prefix)) {}

Status ZoneDwellAggregator::Bind(const nebula::Schema& schema) {
  NM_RETURN_NOT_OK(TrajectoryAggregatorBase::Bind(schema));
  auto registry = ActiveGeofences();
  if (!registry) {
    return Status::FailedPrecondition(
        "ZoneDwellAggregator: no active geofence registry");
  }
  zone_ = registry->FindZone(zone_name_);
  if (zone_ == nullptr) {
    return Status::NotFound("ZoneDwellAggregator: unknown zone '" +
                            zone_name_ + "'");
  }
  return Status::OK();
}

std::vector<Field> ZoneDwellAggregator::OutputFields() const {
  return {{prefix_ + "_seconds", DataType::kDouble},
          {prefix_ + "_entered", DataType::kBool}};
}

void ZoneDwellAggregator::WriteResult(nebula::RecordWriter* out, size_t f) {
  auto traj = BuildTrajectory();
  if (!traj) {
    out->SetDouble(f, 0.0);
    out->SetBool(f + 1, false);
    return;
  }
  meos::PeriodSet inside;
  if (const auto* poly = std::get_if<Polygon>(&zone_->shape)) {
    inside = meos::WhenInsidePolygon(*traj, *poly);
  } else {
    inside = meos::WhenInsideCircle(*traj, std::get<Circle>(zone_->shape),
                                    Metric::kWgs84);
  }
  out->SetDouble(f, ToSeconds(inside.TotalDuration()));
  out->SetBool(f + 1, !inside.empty());
}

nebula::CustomAggregatorFactory ZoneDwellAggregator::Factory(
    std::string zone, std::string prefix, TrajectoryFields fields) {
  return [zone, prefix, fields]() {
    return std::make_unique<ZoneDwellAggregator>(zone, prefix, fields);
  };
}

// --- ExtentAggregatorAdapter --------------------------------------------------------

std::vector<Field> ExtentAggregatorAdapter::OutputFields() const {
  return {{"extent_xmin", DataType::kDouble},
          {"extent_ymin", DataType::kDouble},
          {"extent_xmax", DataType::kDouble},
          {"extent_ymax", DataType::kDouble}};
}

void ExtentAggregatorAdapter::WriteResult(nebula::RecordWriter* out,
                                          size_t f) {
  auto traj = BuildTrajectory();
  if (!traj) {
    for (size_t i = 0; i < 4; ++i) out->SetDouble(f + i, 0.0);
    return;
  }
  const meos::STBox box = meos::BoundingBox(*traj);
  out->SetDouble(f, box.xmin());
  out->SetDouble(f + 1, box.ymin());
  out->SetDouble(f + 2, box.xmax());
  out->SetDouble(f + 3, box.ymax());
}

nebula::CustomAggregatorFactory ExtentAggregatorAdapter::Factory(
    TrajectoryFields fields) {
  return [fields]() {
    return std::make_unique<ExtentAggregatorAdapter>(fields);
  };
}

}  // namespace nebulameos::integration

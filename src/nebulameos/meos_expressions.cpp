#include "nebulameos/meos_expressions.hpp"

#include <atomic>
#include <limits>
#include <mutex>

namespace nebulameos::integration {

using nebula::DataType;
using nebula::ExprPtr;
using nebula::Value;
using nebula::ValueAsDouble;
using nebula::ValueAsInt64;
using nebula::ValueToString;

namespace {

std::mutex g_geofence_mutex;
std::shared_ptr<const GeofenceRegistry> g_geofences;

// Extracts the constant string value of argument `idx`, or errors.
Result<std::string> ConstText(const std::vector<ExprPtr>& args, size_t idx,
                              const std::string& fn) {
  auto v = args[idx]->ConstantValue();
  if (!v) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(idx) +
                                   " must be a literal");
  }
  return ValueToString(*v);
}

// Extracts the constant numeric value of argument `idx`, or errors.
Result<double> ConstNumber(const std::vector<ExprPtr>& args, size_t idx,
                           const std::string& fn) {
  auto v = args[idx]->ConstantValue();
  if (!v) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(idx) +
                                   " must be a literal");
  }
  return ValueAsDouble(*v);
}

Status CheckArity(const std::vector<ExprPtr>& args, size_t arity,
                  const std::string& fn) {
  if (args.size() != arity) {
    return Status::InvalidArgument(fn + " expects " + std::to_string(arity) +
                                   " arguments, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Result<std::shared_ptr<const GeofenceRegistry>> RequireGeofences(
    const std::string& fn) {
  auto reg = ActiveGeofences();
  if (!reg) {
    return Status::FailedPrecondition(
        fn + ": no active geofence registry (call SetActiveGeofences)");
  }
  return reg;
}

}  // namespace

void SetActiveGeofences(std::shared_ptr<const GeofenceRegistry> registry) {
  std::lock_guard<std::mutex> lock(g_geofence_mutex);
  g_geofences = std::move(registry);
}

std::shared_ptr<const GeofenceRegistry> ActiveGeofences() {
  std::lock_guard<std::mutex> lock(g_geofence_mutex);
  return g_geofences;
}

Result<std::optional<ZoneKind>> ParseZoneKind(const std::string& name) {
  if (name.empty()) return std::optional<ZoneKind>{};
  for (ZoneKind kind :
       {ZoneKind::kMaintenance, ZoneKind::kStation, ZoneKind::kWorkshop,
        ZoneKind::kNoiseSensitive, ZoneKind::kHighRisk, ZoneKind::kWeather}) {
    if (name == ZoneKindName(kind)) return std::optional<ZoneKind>{kind};
  }
  return Status::InvalidArgument("unknown zone kind: '" + name + "'");
}

// --- EdwithinExpression ----------------------------------------------------

EdwithinExpression::EdwithinExpression(std::vector<ExprPtr> args)
    : FunctionExpression("edwithin", std::move(args), DataType::kBool) {}

Result<ExprPtr> EdwithinExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 4, "edwithin"));
  return ExprPtr(std::make_shared<EdwithinExpression>(std::move(args)));
}

Status EdwithinExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(auto registry, RequireGeofences("edwithin"));
  NM_ASSIGN_OR_RETURN(std::string target, ConstText(args(), 2, "edwithin"));
  NM_ASSIGN_OR_RETURN(dist_m_, ConstNumber(args(), 3, "edwithin"));
  zone_ = registry->FindZone(target);
  poi_ = zone_ ? nullptr : registry->FindPoi(target);
  if (zone_ == nullptr && poi_ == nullptr) {
    return Status::NotFound("edwithin: no zone or POI named '" + target + "'");
  }
  return Status::OK();
}

Value EdwithinExpression::EvalFn(const std::vector<Value>& args) const {
  const Point p{ValueAsDouble(args[0]), ValueAsDouble(args[1])};
  if (zone_ != nullptr) return zone_->DistanceTo(p) <= dist_m_;
  return meos::PointDistance(p, poi_->location, Metric::kWgs84) <= dist_m_;
}

double EdwithinExpression::EvalScalar(const double* args) const {
  const Point p{args[0], args[1]};
  if (zone_ != nullptr) return zone_->DistanceTo(p) <= dist_m_ ? 1.0 : 0.0;
  return meos::PointDistance(p, poi_->location, Metric::kWgs84) <= dist_m_
             ? 1.0
             : 0.0;
}

// --- MeosAtStboxExpression -------------------------------------------------

MeosAtStboxExpression::MeosAtStboxExpression(std::vector<ExprPtr> args)
    : FunctionExpression("tpoint_at_stbox", std::move(args), DataType::kBool) {}

Result<ExprPtr> MeosAtStboxExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 9, "tpoint_at_stbox"));
  return ExprPtr(std::make_shared<MeosAtStboxExpression>(std::move(args)));
}

nebula::ExprPtr MeosAtStboxExpression::FromBox(ExprPtr lon, ExprPtr lat,
                                               ExprPtr ts,
                                               const meos::STBox& box) {
  std::vector<ExprPtr> args = {
      std::move(lon),
      std::move(lat),
      std::move(ts),
      nebula::Lit(box.xmin()),
      nebula::Lit(box.ymin()),
      nebula::Lit(box.xmax()),
      nebula::Lit(box.ymax()),
      nebula::Lit(box.has_time() ? box.tmin()
                                 : std::numeric_limits<int64_t>::min()),
      nebula::Lit(box.has_time() ? box.tmax()
                                 : std::numeric_limits<int64_t>::max()),
  };
  return std::make_shared<MeosAtStboxExpression>(std::move(args));
}

Status MeosAtStboxExpression::OnBind(const nebula::Schema&) {
  double bounds[4];
  for (size_t i = 0; i < 4; ++i) {
    NM_ASSIGN_OR_RETURN(bounds[i],
                        ConstNumber(args(), 3 + i, "tpoint_at_stbox"));
  }
  Timestamp tmin, tmax;
  {
    NM_ASSIGN_OR_RETURN(double v, ConstNumber(args(), 7, "tpoint_at_stbox"));
    tmin = static_cast<Timestamp>(v);
  }
  {
    NM_ASSIGN_OR_RETURN(double v, ConstNumber(args(), 8, "tpoint_at_stbox"));
    tmax = static_cast<Timestamp>(v);
  }
  NM_ASSIGN_OR_RETURN(meos::Period period, meos::Period::Make(tmin, tmax));
  NM_ASSIGN_OR_RETURN(
      box_, meos::STBox::Make(bounds[0], bounds[1], bounds[2], bounds[3],
                              period));
  return Status::OK();
}

Value MeosAtStboxExpression::EvalFn(const std::vector<Value>& args) const {
  const Point p{ValueAsDouble(args[0]), ValueAsDouble(args[1])};
  const Timestamp t = ValueAsInt64(args[2]);
  return box_.Contains(p, t);
}

double MeosAtStboxExpression::EvalScalar(const double* args) const {
  const Point p{args[0], args[1]};
  return box_.Contains(p, static_cast<Timestamp>(args[2])) ? 1.0 : 0.0;
}

// --- InZoneExpression --------------------------------------------------------

InZoneExpression::InZoneExpression(std::vector<ExprPtr> args)
    : FunctionExpression("in_zone", std::move(args), DataType::kBool) {}

Result<ExprPtr> InZoneExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "in_zone"));
  return ExprPtr(std::make_shared<InZoneExpression>(std::move(args)));
}

Status InZoneExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(auto registry, RequireGeofences("in_zone"));
  NM_ASSIGN_OR_RETURN(std::string name, ConstText(args(), 2, "in_zone"));
  zone_ = registry->FindZone(name);
  if (zone_ == nullptr) {
    return Status::NotFound("in_zone: no zone named '" + name + "'");
  }
  return Status::OK();
}

Value InZoneExpression::EvalFn(const std::vector<Value>& args) const {
  return zone_->Contains(Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])});
}

double InZoneExpression::EvalScalar(const double* args) const {
  return zone_->Contains(Point{args[0], args[1]}) ? 1.0 : 0.0;
}

// --- InZoneKindExpression ------------------------------------------------------

InZoneKindExpression::InZoneKindExpression(std::vector<ExprPtr> args)
    : FunctionExpression("in_zone_kind", std::move(args), DataType::kBool) {}

Result<ExprPtr> InZoneKindExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "in_zone_kind"));
  return ExprPtr(std::make_shared<InZoneKindExpression>(std::move(args)));
}

Status InZoneKindExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(registry_, RequireGeofences("in_zone_kind"));
  NM_ASSIGN_OR_RETURN(std::string kind, ConstText(args(), 2, "in_zone_kind"));
  NM_ASSIGN_OR_RETURN(kind_, ParseZoneKind(kind));
  return Status::OK();
}

Value InZoneKindExpression::EvalFn(const std::vector<Value>& args) const {
  return registry_->InAnyZone(
      Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])}, kind_);
}

double InZoneKindExpression::EvalScalar(const double* args) const {
  return registry_->InAnyZone(Point{args[0], args[1]}, kind_) ? 1.0 : 0.0;
}

// --- ZoneIdExpression ----------------------------------------------------------

ZoneIdExpression::ZoneIdExpression(std::vector<ExprPtr> args)
    : FunctionExpression("zone_id", std::move(args), DataType::kInt64) {}

Result<ExprPtr> ZoneIdExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "zone_id"));
  return ExprPtr(std::make_shared<ZoneIdExpression>(std::move(args)));
}

Status ZoneIdExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(registry_, RequireGeofences("zone_id"));
  NM_ASSIGN_OR_RETURN(std::string kind, ConstText(args(), 2, "zone_id"));
  NM_ASSIGN_OR_RETURN(kind_, ParseZoneKind(kind));
  return Status::OK();
}

Value ZoneIdExpression::EvalFn(const std::vector<Value>& args) const {
  return registry_->ZoneIdAt(
      Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])}, kind_);
}

double ZoneIdExpression::EvalScalar(const double* args) const {
  return static_cast<double>(
      registry_->ZoneIdAt(Point{args[0], args[1]}, kind_));
}

// --- ZoneSpeedLimitExpression -----------------------------------------------------

ZoneSpeedLimitExpression::ZoneSpeedLimitExpression(std::vector<ExprPtr> args)
    : FunctionExpression("zone_speed_limit", std::move(args),
                         DataType::kDouble) {}

Result<ExprPtr> ZoneSpeedLimitExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "zone_speed_limit"));
  return ExprPtr(std::make_shared<ZoneSpeedLimitExpression>(std::move(args)));
}

Status ZoneSpeedLimitExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(registry_, RequireGeofences("zone_speed_limit"));
  NM_ASSIGN_OR_RETURN(default_kmh_,
                      ConstNumber(args(), 2, "zone_speed_limit"));
  return Status::OK();
}

Value ZoneSpeedLimitExpression::EvalFn(const std::vector<Value>& args) const {
  return registry_->SpeedLimitAt(
      Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])}, default_kmh_);
}

double ZoneSpeedLimitExpression::EvalScalar(const double* args) const {
  return registry_->SpeedLimitAt(Point{args[0], args[1]}, default_kmh_);
}

// --- NearestPoiDistanceExpression ----------------------------------------------------

NearestPoiDistanceExpression::NearestPoiDistanceExpression(
    std::vector<ExprPtr> args)
    : FunctionExpression("nearest_poi_distance", std::move(args),
                         DataType::kDouble) {}

Result<ExprPtr> NearestPoiDistanceExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "nearest_poi_distance"));
  return ExprPtr(
      std::make_shared<NearestPoiDistanceExpression>(std::move(args)));
}

Status NearestPoiDistanceExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(registry_, RequireGeofences("nearest_poi_distance"));
  NM_ASSIGN_OR_RETURN(kind_, ConstText(args(), 2, "nearest_poi_distance"));
  return Status::OK();
}

Value NearestPoiDistanceExpression::EvalFn(
    const std::vector<Value>& args) const {
  double dist = 0.0;
  registry_->NearestPoi(Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])},
                        kind_, &dist);
  return dist;
}

double NearestPoiDistanceExpression::EvalScalar(const double* args) const {
  double dist = 0.0;
  registry_->NearestPoi(Point{args[0], args[1]}, kind_, &dist);
  return dist;
}

// --- NearestPoiIdExpression ---------------------------------------------------------

NearestPoiIdExpression::NearestPoiIdExpression(std::vector<ExprPtr> args)
    : FunctionExpression("nearest_poi_id", std::move(args), DataType::kInt64) {}

Result<ExprPtr> NearestPoiIdExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 3, "nearest_poi_id"));
  return ExprPtr(std::make_shared<NearestPoiIdExpression>(std::move(args)));
}

Status NearestPoiIdExpression::OnBind(const nebula::Schema&) {
  NM_ASSIGN_OR_RETURN(registry_, RequireGeofences("nearest_poi_id"));
  NM_ASSIGN_OR_RETURN(kind_, ConstText(args(), 2, "nearest_poi_id"));
  return Status::OK();
}

Value NearestPoiIdExpression::EvalFn(const std::vector<Value>& args) const {
  const Poi* poi = registry_->NearestPoi(
      Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])}, kind_);
  return poi == nullptr ? int64_t{-1} : poi->id;
}

double NearestPoiIdExpression::EvalScalar(const double* args) const {
  const Poi* poi = registry_->NearestPoi(Point{args[0], args[1]}, kind_);
  return poi == nullptr ? -1.0 : static_cast<double>(poi->id);
}

// --- HaversineExpression -----------------------------------------------------------

HaversineExpression::HaversineExpression(std::vector<ExprPtr> args)
    : FunctionExpression("haversine_m", std::move(args), DataType::kDouble) {}

Result<ExprPtr> HaversineExpression::Make(std::vector<ExprPtr> args) {
  NM_RETURN_NOT_OK(CheckArity(args, 4, "haversine_m"));
  return ExprPtr(std::make_shared<HaversineExpression>(std::move(args)));
}

Value HaversineExpression::EvalFn(const std::vector<Value>& args) const {
  return meos::HaversineMeters(
      Point{ValueAsDouble(args[0]), ValueAsDouble(args[1])},
      Point{ValueAsDouble(args[2]), ValueAsDouble(args[3])});
}

double HaversineExpression::EvalScalar(const double* args) const {
  return meos::HaversineMeters(Point{args[0], args[1]},
                               Point{args[2], args[3]});
}

}  // namespace nebulameos::integration

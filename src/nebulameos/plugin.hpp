/// \file plugin.hpp
/// \brief NebulaMEOS plugin registration.
///
/// "NebulaStream implements a plugin-based architecture that facilitates
/// the integration of external components" (§2.3). This is that plugin:
/// one call registers every MEOS function expression into the engine's
/// global `ExpressionRegistry`, making them addressable by name from any
/// query (`Fn("edwithin", {...})`). Registration is idempotent.

#pragma once

#include "nebulameos/geofence.hpp"
#include "nebulameos/meos_expressions.hpp"

namespace nebulameos::integration {

/// \brief Registers the MEOS expression suite (and the engine's built-in
/// math functions) in the global registry, and installs \p geofences as the
/// active catalog when non-null.
///
/// Registered names: `edwithin`, `tpoint_at_stbox`, `in_zone`,
/// `in_zone_kind`, `zone_id`, `zone_speed_limit`, `nearest_poi_distance`,
/// `nearest_poi_id`, `haversine_m`.
Status RegisterMeosPlugin(
    std::shared_ptr<const GeofenceRegistry> geofences = nullptr);

/// True iff the plugin's functions are present in the global registry.
bool MeosPluginRegistered();

}  // namespace nebulameos::integration

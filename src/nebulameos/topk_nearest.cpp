#include "nebulameos/topk_nearest.hpp"

#include <algorithm>

namespace nebulameos::integration {

using nebula::DataType;
using nebula::Field;
using nebula::OperatorPtr;
using nebula::RecordView;
using nebula::RecordWriter;
using nebula::Schema;
using nebula::TupleBufferPtr;

Result<OperatorPtr> TopKNearestOperator::Make(const Schema& input,
                                              TopKNearestOptions options) {
  if (options.k == 0) {
    return Status::InvalidArgument("top-k nearest: k must be > 0");
  }
  if (options.window <= 0) {
    return Status::InvalidArgument("top-k nearest: window must be > 0");
  }
  auto op = std::unique_ptr<TopKNearestOperator>(new TopKNearestOperator());
  op->input_schema_ = input;
  NM_ASSIGN_OR_RETURN(op->key_index_, input.IndexOf(options.key_field));
  if (input.field(op->key_index_).type != DataType::kInt64) {
    return Status::InvalidArgument("top-k nearest: key must be INT64");
  }
  NM_ASSIGN_OR_RETURN(op->time_index_, input.IndexOf(options.time_field));
  NM_ASSIGN_OR_RETURN(op->lon_index_, input.IndexOf(options.lon_field));
  NM_ASSIGN_OR_RETURN(op->lat_index_, input.IndexOf(options.lat_field));
  NM_ASSIGN_OR_RETURN(
      op->output_schema_,
      Schema::Make({Field{"object", DataType::kInt64},
                    Field{"window_start", DataType::kTimestamp},
                    Field{"window_end", DataType::kTimestamp},
                    Field{"rank", DataType::kInt64},
                    Field{"neighbor", DataType::kInt64},
                    Field{"min_distance_m", DataType::kDouble}}));
  op->options_ = std::move(options);
  return OperatorPtr(std::move(op));
}

Status TopKNearestOperator::Process(const TupleBufferPtr& input,
                                    const EmitFn& emit) {
  CountIn(*input);
  for (size_t i = 0; i < input->size(); ++i) {
    const RecordView rec = input->At(i);
    const Timestamp t = rec.GetInt64(time_index_);
    max_event_time_ = std::max(max_event_time_, t);
    const Timestamp start = (t / options_.window) * options_.window;
    panes_[start][rec.GetInt64(key_index_)].push_back(
        {meos::Point{rec.GetDouble(lon_index_), rec.GetDouble(lat_index_)},
         t});
  }
  if (max_event_time_ != std::numeric_limits<Timestamp>::min()) {
    return FireUpTo(max_event_time_, emit);
  }
  return Status::OK();
}

Status TopKNearestOperator::Finish(const EmitFn& emit) {
  return FireUpTo(std::numeric_limits<Timestamp>::max(), emit);
}

Status TopKNearestOperator::FireUpTo(Timestamp watermark,
                                     const EmitFn& emit) {
  auto it = panes_.begin();
  while (it != panes_.end()) {
    if (it->first + options_.window > watermark) break;  // ordered by start
    EmitPane(it->first, it->second, emit);
    it = panes_.erase(it);
  }
  return Status::OK();
}

void TopKNearestOperator::EmitPane(Timestamp window_start, Pane& pane,
                                   const EmitFn& emit) {
  // Build one trajectory per object (records may arrive out of order).
  std::vector<std::pair<int64_t, meos::TGeomPointSeq>> trajectories;
  trajectories.reserve(pane.size());
  for (auto& [key, track] : pane) {
    std::sort(track.begin(), track.end(),
              [](const meos::TInstant<meos::Point>& a,
                 const meos::TInstant<meos::Point>& b) { return a.t < b.t; });
    Track unique;
    unique.reserve(track.size());
    for (const auto& ins : track) {
      if (unique.empty() || ins.t > unique.back().t) unique.push_back(ins);
    }
    auto seq = meos::TGeomPointSeq::Make(std::move(unique));
    if (seq.ok()) trajectories.emplace_back(key, std::move(*seq));
  }
  if (trajectories.size() < 2) return;

  // Pairwise nearest-approach distances (symmetric: computed once).
  const size_t n = trajectories.size();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = meos::MovingMinDistance(
          trajectories[i].second, trajectories[j].second, options_.metric);
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }

  TupleBufferPtr out = ctx_->Allocate(output_schema_);
  for (size_t i = 0; i < n; ++i) {
    // Rank the other objects by nearest approach.
    std::vector<size_t> order;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return dist[i][x] < dist[i][y]; });
    const size_t limit = std::min(options_.k, order.size());
    for (size_t r = 0; r < limit; ++r) {
      if (out->full()) {
        CountOut(*out);
        emit(out);
        out = ctx_->Allocate(output_schema_);
      }
      RecordWriter w = out->Append();
      w.SetInt64(0, trajectories[i].first);
      w.SetInt64(1, window_start);
      w.SetInt64(2, window_start + options_.window);
      w.SetInt64(3, static_cast<int64_t>(r + 1));
      w.SetInt64(4, trajectories[order[r]].first);
      w.SetDouble(5, dist[i][order[r]]);
    }
  }
  if (!out->empty()) {
    CountOut(*out);
    emit(out);
  }
}

}  // namespace nebulameos::integration

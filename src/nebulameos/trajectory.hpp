/// \file trajectory.hpp
/// \brief Spatiotemporal window aggregators: streams → MEOS trajectories.
///
/// These `CustomAggregator`s plug into the engine's window operators
/// (tumbling/sliding/threshold) and assemble the position records of each
/// window pane into a `meos::TGeomPointSeq`. The *exact* MEOS operations
/// then run on the assembled trajectory — this is where the windowed
/// ("ever") semantics of `edwithin`, zone dwell time via restriction, and
/// the trajectory measures (length, speed, extent) live, complementing the
/// per-record expression lifts in meos_expressions.hpp.
///
/// Records may arrive out of order within a pane; instants are sorted (and
/// deduplicated by timestamp) when the trajectory is finalized.

#pragma once

#include "meos/agg.hpp"
#include "nebula/window.hpp"
#include "nebulameos/geofence.hpp"

namespace nebulameos::integration {

/// Field names of the position attributes in the input schema.
struct TrajectoryFields {
  std::string lon = "lon";
  std::string lat = "lat";
  std::string time = "ts";
};

/// \brief Shared base: collects (lon, lat, t) instants and finalizes them
/// into a temporal point.
class TrajectoryAggregatorBase : public nebula::CustomAggregator {
 public:
  explicit TrajectoryAggregatorBase(TrajectoryFields fields)
      : fields_(std::move(fields)) {}

  Status Bind(const nebula::Schema& schema) override;
  void Add(const nebula::RecordView& rec, Timestamp event_time) override;

 protected:
  /// Sorted, deduplicated trajectory of the pane; nullopt when empty.
  std::optional<meos::TGeomPointSeq> BuildTrajectory() const;

  TrajectoryFields fields_;

 private:
  size_t lon_index_ = 0;
  size_t lat_index_ = 0;
  size_t time_index_ = 0;
  mutable std::vector<meos::TInstant<meos::Point>> instants_;
};

/// \brief Outputs the pane trajectory's measures:
/// `traj_points` (INT64), `traj_length_m`, `traj_avg_speed_ms`,
/// `traj_max_speed_ms` (DOUBLE).
class TrajectoryMetricsAggregator : public TrajectoryAggregatorBase {
 public:
  explicit TrajectoryMetricsAggregator(TrajectoryFields fields = {})
      : TrajectoryAggregatorBase(std::move(fields)) {}

  std::vector<nebula::Field> OutputFields() const override;
  void WriteResult(nebula::RecordWriter* out, size_t first_index) override;

  /// Factory for window options.
  static nebula::CustomAggregatorFactory Factory(TrajectoryFields fields = {});
};

/// \brief Windowed `edwithin`: did the pane trajectory ever come within
/// `dist_m` of the named zone/POI? Outputs `<prefix>_edwithin` (BOOL) and
/// `<prefix>_min_dist_m` (DOUBLE; distance to a POI target, 0-aware for
/// zones).
class EdwithinAggregator : public TrajectoryAggregatorBase {
 public:
  EdwithinAggregator(std::string target, double dist_m, std::string prefix,
                     TrajectoryFields fields = {});

  Status Bind(const nebula::Schema& schema) override;
  std::vector<nebula::Field> OutputFields() const override;
  void WriteResult(nebula::RecordWriter* out, size_t first_index) override;

  static nebula::CustomAggregatorFactory Factory(std::string target,
                                                 double dist_m,
                                                 std::string prefix,
                                                 TrajectoryFields fields = {});

 private:
  std::string target_;
  double dist_m_;
  std::string prefix_;
  const Zone* zone_ = nullptr;
  const Poi* poi_ = nullptr;
};

/// \brief Zone dwell via exact MEOS restriction: seconds the pane
/// trajectory spent inside the named zone (`<prefix>_seconds` DOUBLE) and
/// whether it entered at all (`<prefix>_entered` BOOL).
///
/// Polygon zones use `WhenInsidePolygon` (segment/edge crossing instants);
/// circle zones use `tdwithin` against the center.
class ZoneDwellAggregator : public TrajectoryAggregatorBase {
 public:
  ZoneDwellAggregator(std::string zone, std::string prefix,
                      TrajectoryFields fields = {});

  Status Bind(const nebula::Schema& schema) override;
  std::vector<nebula::Field> OutputFields() const override;
  void WriteResult(nebula::RecordWriter* out, size_t first_index) override;

  static nebula::CustomAggregatorFactory Factory(std::string zone,
                                                 std::string prefix,
                                                 TrajectoryFields fields = {});

 private:
  std::string zone_name_;
  std::string prefix_;
  const Zone* zone_ = nullptr;
};

/// \brief Spatiotemporal extent of the pane trajectory: `extent_xmin`,
/// `extent_ymin`, `extent_xmax`, `extent_ymax` (DOUBLE).
class ExtentAggregatorAdapter : public TrajectoryAggregatorBase {
 public:
  explicit ExtentAggregatorAdapter(TrajectoryFields fields = {})
      : TrajectoryAggregatorBase(std::move(fields)) {}

  std::vector<nebula::Field> OutputFields() const override;
  void WriteResult(nebula::RecordWriter* out, size_t first_index) override;

  static nebula::CustomAggregatorFactory Factory(TrajectoryFields fields = {});
};

}  // namespace nebulameos::integration

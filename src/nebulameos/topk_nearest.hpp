/// \file topk_nearest.hpp
/// \brief Top-k nearest moving objects — the paper's stated future-work
/// aggregation ("identifying the top-k nearest trains").
///
/// A windowed cross-key operator: per tumbling window it assembles one
/// trajectory per object (key), computes the pairwise *nearest-approach*
/// distance between the moving objects (exact per-segment minimum of the
/// relative motion, not a snapshot distance), and emits, for every object,
/// its k nearest neighbours in that window:
///
///   (object, window_start, window_end, rank, neighbor, min_distance_m)
///
/// Windows fire on the event-time watermark like the engine's window
/// aggregation; `Finish` flushes the tail.

#pragma once

#include "meos/tgeompoint.hpp"
#include "nebula/operator.hpp"

namespace nebulameos::integration {

/// \brief Configuration of the top-k nearest operator.
struct TopKNearestOptions {
  size_t k = 3;              ///< neighbours per object
  Duration window = 0;       ///< tumbling window size (> 0)
  std::string key_field;     ///< object id (kInt64)
  std::string time_field;    ///< event-time field
  std::string lon_field = "lon";
  std::string lat_field = "lat";
  meos::Metric metric = meos::Metric::kWgs84;
};

/// \brief The operator. Input: keyed position stream. Output schema:
/// `object:INT64, window_start, window_end, rank:INT64, neighbor:INT64,
/// min_distance_m:DOUBLE`.
class TopKNearestOperator : public nebula::Operator {
 public:
  static Result<nebula::OperatorPtr> Make(const nebula::Schema& input,
                                          TopKNearestOptions options);

  std::string name() const override { return "TopKNearest"; }
  const nebula::Schema& output_schema() const override {
    return output_schema_;
  }
  Status Process(const nebula::TupleBufferPtr& input,
                 const EmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

 private:
  TopKNearestOperator() = default;

  using Track = std::vector<meos::TInstant<meos::Point>>;
  using Pane = std::map<int64_t, Track>;  // key -> positions

  Status FireUpTo(Timestamp watermark, const EmitFn& emit);
  void EmitPane(Timestamp window_start, Pane& pane, const EmitFn& emit);

  nebula::Schema input_schema_;
  nebula::Schema output_schema_;
  TopKNearestOptions options_;
  size_t key_index_ = 0;
  size_t time_index_ = 0;
  size_t lon_index_ = 0;
  size_t lat_index_ = 0;
  std::map<Timestamp, Pane> panes_;  // window_start -> pane
  Timestamp max_event_time_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace nebulameos::integration

/// \file meos_expressions.hpp
/// \brief The MEOS operators exposed inside NebulaStream expressions —
/// the paper's core contribution.
///
/// "NebulaMEOS adds custom operators, including `MeosAtStbox_Expression`,
/// which incorporate spatial predicates such as `edwithin` and
/// `tpoint_at_stbox`" (§2.3). Each class here subclasses
/// `nebula::FunctionExpression` and is registered in the global
/// `ExpressionRegistry` by `RegisterMeosPlugin()` (plugin.hpp), so queries
/// can call them by name through `Fn("edwithin", {...})` and compose them
/// freely with the engine's native expression nodes.
///
/// In a streaming pipeline each record carries one position instant
/// (lon, lat, ts); the *instantaneous* lift of each MEOS predicate is
/// evaluated per record, while the trajectory-level ("ever") semantics over
/// windows are provided by the custom aggregators in trajectory.hpp, which
/// assemble `TGeomPointSeq`s and call the exact MEOS operations.
///
/// Configuration arguments (zone names, box bounds, distances) must be
/// literals: they are const-folded and resolved once at bind time, so the
/// per-record path touches no registry.
///
/// Because every class here is a `FunctionExpression`, its field read set
/// is visible to the plan optimizer (`Expression::ReferencedFields`), so
/// filters over MEOS predicates participate in predicate pushdown and
/// filter fusion like any built-in expression (see nebula/optimizer.hpp).
///
/// Every class also implements the batch-compiler scalar hook
/// (`FunctionExpression::EvalScalar`): positions arrive as unboxed
/// doubles and configuration is already bind-resolved, so MEOS predicates
/// compile into the engine's fused batch kernels (nebula/exec/) instead
/// of paying per-record `Value` boxing.

#pragma once

#include <memory>

#include "meos/stbox.hpp"
#include "nebula/expr.hpp"
#include "nebulameos/geofence.hpp"

namespace nebulameos::integration {

/// \brief Installs \p registry as the geofence catalog that subsequently
/// bound MEOS expressions resolve names against.
void SetActiveGeofences(std::shared_ptr<const GeofenceRegistry> registry);

/// The currently installed geofence catalog (may be null).
std::shared_ptr<const GeofenceRegistry> ActiveGeofences();

/// \brief `edwithin(lon, lat, 'target', dist_m)` → BOOL.
///
/// True when the event position is within \c dist_m meters of the named
/// zone or POI ("checks if a geometry and a temporal point ever fall within
/// a specified distance of each other" — per-instant lift; the windowed
/// `edwithin` lives in trajectory.hpp).
class EdwithinExpression : public nebula::FunctionExpression {
 public:
  explicit EdwithinExpression(std::vector<nebula::ExprPtr> args);

  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  const Zone* zone_ = nullptr;
  const Poi* poi_ = nullptr;
  double dist_m_ = 0.0;
};

/// \brief `tpoint_at_stbox(lon, lat, ts, xmin, ymin, xmax, ymax, tmin,
/// tmax)` → BOOL — the `MeosAtStbox_Expression`.
///
/// True when the instant (lon, lat)@ts lies inside the spatiotemporal box;
/// used as a filter it restricts the stream's temporal point to the box,
/// the streaming realization of MEOS's `tpoint_at_stbox`.
class MeosAtStboxExpression : public nebula::FunctionExpression {
 public:
  explicit MeosAtStboxExpression(std::vector<nebula::ExprPtr> args);

  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

  /// Convenience: builds the expression from an `STBox` value.
  static nebula::ExprPtr FromBox(nebula::ExprPtr lon, nebula::ExprPtr lat,
                                 nebula::ExprPtr ts, const meos::STBox& box);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  meos::STBox box_;
};

/// \brief `in_zone(lon, lat, 'zone')` → BOOL: containment in one named
/// zone.
class InZoneExpression : public nebula::FunctionExpression {
 public:
  explicit InZoneExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  const Zone* zone_ = nullptr;
};

/// \brief `in_zone_kind(lon, lat, 'kind')` → BOOL: containment in any zone
/// of a kind ("maintenance", "station", "workshop", "noise_sensitive",
/// "high_risk", "weather").
class InZoneKindExpression : public nebula::FunctionExpression {
 public:
  explicit InZoneKindExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  std::shared_ptr<const GeofenceRegistry> registry_;
  std::optional<ZoneKind> kind_;
};

/// \brief `zone_id(lon, lat, 'kind')` → INT64: id of the containing zone of
/// a kind, or −1 ("" = any kind).
class ZoneIdExpression : public nebula::FunctionExpression {
 public:
  explicit ZoneIdExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  std::shared_ptr<const GeofenceRegistry> registry_;
  std::optional<ZoneKind> kind_;
};

/// \brief `zone_speed_limit(lon, lat, default_kmh)` → DOUBLE: the advisory
/// limit at a position (Q3's dynamic speed limit).
class ZoneSpeedLimitExpression : public nebula::FunctionExpression {
 public:
  explicit ZoneSpeedLimitExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  std::shared_ptr<const GeofenceRegistry> registry_;
  double default_kmh_ = 0.0;
};

/// \brief `nearest_poi_distance(lon, lat, 'kind')` → DOUBLE meters
/// (Q5 queries nearby workshops).
class NearestPoiDistanceExpression : public nebula::FunctionExpression {
 public:
  explicit NearestPoiDistanceExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  std::shared_ptr<const GeofenceRegistry> registry_;
  std::string kind_;
};

/// \brief `nearest_poi_id(lon, lat, 'kind')` → INT64 (−1 when none).
class NearestPoiIdExpression : public nebula::FunctionExpression {
 public:
  explicit NearestPoiIdExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  Status OnBind(const nebula::Schema& schema) override;
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;

 private:
  std::shared_ptr<const GeofenceRegistry> registry_;
  std::string kind_;
};

/// \brief `haversine_m(lon1, lat1, lon2, lat2)` → DOUBLE meters.
class HaversineExpression : public nebula::FunctionExpression {
 public:
  explicit HaversineExpression(std::vector<nebula::ExprPtr> args);
  static Result<nebula::ExprPtr> Make(std::vector<nebula::ExprPtr> args);

 protected:
  nebula::Value EvalFn(const std::vector<nebula::Value>& args) const override;
  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override;
};

/// Extracts a ZoneKind from its name; nullopt for "" (any).
Result<std::optional<ZoneKind>> ParseZoneKind(const std::string& name);

}  // namespace nebulameos::integration

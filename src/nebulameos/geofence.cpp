#include "nebulameos/geofence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace nebulameos::integration {

const char* ZoneKindName(ZoneKind kind) {
  switch (kind) {
    case ZoneKind::kMaintenance:
      return "maintenance";
    case ZoneKind::kStation:
      return "station";
    case ZoneKind::kWorkshop:
      return "workshop";
    case ZoneKind::kNoiseSensitive:
      return "noise_sensitive";
    case ZoneKind::kHighRisk:
      return "high_risk";
    case ZoneKind::kWeather:
      return "weather";
  }
  return "?";
}

meos::GeoBox Zone::BoundingBox() const {
  if (const auto* poly = std::get_if<Polygon>(&shape)) {
    return poly->bbox();
  }
  const Circle& c = std::get<Circle>(shape);
  // Conservative degree margin for the metric radius.
  const double margin = meos::MetersToDegreeMargin(c.radius, c.center.y);
  meos::GeoBox box = meos::GeoBox::Empty();
  box.Extend(c.center);
  return box.Expanded(margin);
}

bool Zone::Contains(const Point& p) const {
  if (const auto* poly = std::get_if<Polygon>(&shape)) {
    return poly->Contains(p);
  }
  const Circle& c = std::get<Circle>(shape);
  return meos::PointCircleDistance(p, c, Metric::kWgs84) == 0.0;
}

double Zone::DistanceTo(const Point& p) const {
  if (const auto* poly = std::get_if<Polygon>(&shape)) {
    return meos::PointPolygonDistance(p, *poly, Metric::kWgs84);
  }
  return meos::PointCircleDistance(p, std::get<Circle>(shape),
                                   Metric::kWgs84);
}

GeofenceRegistry::GeofenceRegistry(Metric metric, double cell_deg)
    : metric_(metric), cell_deg_(cell_deg) {}

int64_t GeofenceRegistry::AddPolygonZone(std::string name, ZoneKind kind,
                                         Polygon polygon,
                                         double speed_limit_kmh) {
  Zone zone;
  zone.id = static_cast<int64_t>(zones_.size());
  zone.name = std::move(name);
  zone.kind = kind;
  zone.shape = std::move(polygon);
  zone.speed_limit_kmh = speed_limit_kmh;
  zones_.push_back(std::move(zone));
  IndexZone(zones_.size() - 1);
  return zones_.back().id;
}

int64_t GeofenceRegistry::AddCircleZone(std::string name, ZoneKind kind,
                                        Circle circle,
                                        double speed_limit_kmh) {
  Zone zone;
  zone.id = static_cast<int64_t>(zones_.size());
  zone.name = std::move(name);
  zone.kind = kind;
  zone.shape = circle;
  zone.speed_limit_kmh = speed_limit_kmh;
  zones_.push_back(std::move(zone));
  IndexZone(zones_.size() - 1);
  return zones_.back().id;
}

int64_t GeofenceRegistry::AddPoi(std::string name, std::string kind,
                                 Point location) {
  Poi poi;
  poi.id = static_cast<int64_t>(pois_.size());
  poi.name = std::move(name);
  poi.kind = std::move(kind);
  poi.location = location;
  pois_.push_back(std::move(poi));
  return pois_.back().id;
}

const Zone* GeofenceRegistry::FindZone(const std::string& name) const {
  for (const Zone& z : zones_) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

const Zone* GeofenceRegistry::FindZone(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= zones_.size()) return nullptr;
  return &zones_[static_cast<size_t>(id)];
}

const Poi* GeofenceRegistry::FindPoi(const std::string& name) const {
  for (const Poi& p : pois_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

GeofenceRegistry::CellKey GeofenceRegistry::CellOf(double x, double y) const {
  return CellKey{static_cast<int32_t>(std::floor(x / cell_deg_)),
                 static_cast<int32_t>(std::floor(y / cell_deg_))};
}

void GeofenceRegistry::IndexZone(size_t zone_index) {
  const meos::GeoBox box = zones_[zone_index].BoundingBox();
  const CellKey lo = CellOf(box.xmin, box.ymin);
  const CellKey hi = CellOf(box.xmax, box.ymax);
  for (int32_t cx = lo.cx; cx <= hi.cx; ++cx) {
    for (int32_t cy = lo.cy; cy <= hi.cy; ++cy) {
      grid_[CellKey{cx, cy}].push_back(zone_index);
    }
  }
}

std::vector<const Zone*> GeofenceRegistry::ZonesContaining(
    const Point& p, std::optional<ZoneKind> kind) const {
  std::vector<const Zone*> out;
  auto consider = [&](const Zone& z) {
    if (kind && z.kind != *kind) return;
    if (z.Contains(p)) out.push_back(&z);
  };
  if (index_enabled_) {
    auto it = grid_.find(CellOf(p.x, p.y));
    if (it == grid_.end()) return out;
    for (size_t idx : it->second) consider(zones_[idx]);
  } else {
    for (const Zone& z : zones_) consider(z);
  }
  return out;
}

bool GeofenceRegistry::InAnyZone(const Point& p,
                                 std::optional<ZoneKind> kind) const {
  auto matches = [&](const Zone& z) {
    return (!kind || z.kind == *kind) && z.Contains(p);
  };
  if (index_enabled_) {
    auto it = grid_.find(CellOf(p.x, p.y));
    if (it == grid_.end()) return false;
    for (size_t idx : it->second) {
      if (matches(zones_[idx])) return true;
    }
    return false;
  }
  for (const Zone& z : zones_) {
    if (matches(z)) return true;
  }
  return false;
}

int64_t GeofenceRegistry::ZoneIdAt(const Point& p,
                                   std::optional<ZoneKind> kind) const {
  const auto zones = ZonesContaining(p, kind);
  return zones.empty() ? -1 : zones.front()->id;
}

double GeofenceRegistry::SpeedLimitAt(const Point& p,
                                      double default_kmh) const {
  double limit = default_kmh;
  for (const Zone* z : ZonesContaining(p)) {
    if (z->speed_limit_kmh > 0.0) limit = std::min(limit, z->speed_limit_kmh);
  }
  return limit;
}

const Poi* GeofenceRegistry::NearestPoi(const Point& p,
                                        const std::string& kind,
                                        double* out_distance) const {
  const Poi* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Poi& poi : pois_) {
    if (!kind.empty() && poi.kind != kind) continue;
    const double d = meos::PointDistance(p, poi.location, metric_);
    if (d < best_d) {
      best_d = d;
      best = &poi;
    }
  }
  if (out_distance != nullptr) {
    *out_distance = best ? best_d : std::numeric_limits<double>::infinity();
  }
  return best;
}

}  // namespace nebulameos::integration

/// \file queries.hpp
/// \brief The paper's eight demonstration queries (§3.1 geofencing,
/// §3.2 geospatial complex event processing), built on the public API.
///
/// Each builder returns a ready-to-submit `nebula::LogicalPlan` plus a
/// handle to its sink. Queries Q1–Q4 run on the 112-byte geofencing stream, Q5 on the
/// 76-byte battery stream, Q6 on the 115-byte passenger stream, Q7 on the
/// 40-byte position stream and Q8 on the geofencing stream again — matching
/// the paper's per-query throughput ratios (records.hpp).

#pragma once

#include "nebula/engine.hpp"
#include "nebulameos/plugin.hpp"
#include "sncb/records.hpp"

namespace nebulameos::queries {

/// \brief Shared demo environment: network + geofences + plugin
/// registration.
///
/// Construction builds the Belgian network, populates the geofence
/// registry, installs it as the active catalog and registers the MEOS
/// plugin (plus the Q4 `weather_speed_limit` lambda function).
class DemoEnvironment {
 public:
  static Result<std::shared_ptr<DemoEnvironment>> Create();

  const sncb::RailNetwork& network() const { return network_; }
  const std::shared_ptr<integration::GeofenceRegistry>& geofences() const {
    return geofences_;
  }

 private:
  DemoEnvironment() = default;
  sncb::RailNetwork network_;
  std::shared_ptr<integration::GeofenceRegistry> geofences_;
};

/// How the built query terminates.
enum class SinkMode {
  kCollect,   ///< rows retrievable for inspection (tests, Figure 3 series)
  kCounting,  ///< counters only (throughput benchmarks)
};

/// \brief Options shared by all builders.
struct QueryOptions {
  uint64_t max_events = 200'000;  ///< events the source produces
  SinkMode sink = SinkMode::kCollect;
  sncb::FleetConfig fleet;        ///< simulator configuration
  /// When > 0, the source is wall-clock paced to this many events/second
  /// (offered-load reproduction of the paper's reported rates).
  double pace_events_per_second = 0.0;
};

/// \brief A built query — as a ready-to-submit logical plan — plus its
/// sink handles (exactly one is non-null, matching `QueryOptions::sink`).
/// The plan can be inspected (`plan.Explain()`) before submission.
struct BuiltQuery {
  nebula::LogicalPlan plan;
  std::shared_ptr<nebula::CollectSink> collect;
  std::shared_ptr<nebula::CountingSink> counting;

  BuiltQuery(nebula::LogicalPlan p, std::shared_ptr<nebula::CollectSink> c,
             std::shared_ptr<nebula::CountingSink> n)
      : plan(std::move(p)), collect(std::move(c)), counting(std::move(n)) {}
};

/// Q1 — location-based alert filtering: onboard alerts survive unless the
/// train is inside a maintenance zone.
Result<BuiltQuery> BuildQ1AlertFiltering(const DemoEnvironment& env,
                                         const QueryOptions& options);

/// Q2 — location-based noise monitoring: per-zone tumbling-window noise
/// statistics inside noise-sensitive neighbourhoods.
Result<BuiltQuery> BuildQ2NoiseMonitoring(const DemoEnvironment& env,
                                          const QueryOptions& options);

/// Q3 — dynamic speed limit: events exceeding the advisory zone limit.
Result<BuiltQuery> BuildQ3DynamicSpeedLimit(const DemoEnvironment& env,
                                            const QueryOptions& options);

/// Q4 — weather-based speed zones: events exceeding the weather-conditioned
/// limit (synthetic OpenMeteo feed carried on the event).
Result<BuiltQuery> BuildQ4WeatherSpeedZones(const DemoEnvironment& env,
                                            const QueryOptions& options);

/// Q4 (join variant) — the same advisory computed by *joining* the train
/// stream with a separate weather-observation stream (temporal lookup join
/// on the weather cell, nearest observation within one hour). Demonstrates
/// the OpenMeteo integration as a true two-stream query.
Result<BuiltQuery> BuildQ4WeatherJoin(const DemoEnvironment& env,
                                      const QueryOptions& options);

/// Q5 — battery monitoring: threshold windows over charge-curve deviations
/// while on battery power, annotated with the nearest workshop.
Result<BuiltQuery> BuildQ5BatteryMonitoring(const DemoEnvironment& env,
                                            const QueryOptions& options);

/// Q6 — heavy passenger load: sliding-window average load above seat
/// capacity suggests an extra train.
Result<BuiltQuery> BuildQ6HeavyLoad(const DemoEnvironment& env,
                                    const QueryOptions& options);

/// Q7 — unscheduled stops: CEP pattern (moving → sustained halt outside
/// stations/workshops → moving).
Result<BuiltQuery> BuildQ7UnscheduledStops(const DemoEnvironment& env,
                                           const QueryOptions& options);

/// Q8 — brake monitoring: CEP pattern of repeated emergency braking within
/// a time bound per train.
Result<BuiltQuery> BuildQ8BrakeMonitoring(const DemoEnvironment& env,
                                          const QueryOptions& options);

/// \brief A built fan-out query: one shared-ingest DAG plan with several
/// sinks, in DAG-path order. Per `QueryOptions::sink` exactly one of the
/// two vectors is populated (one handle per branch).
struct BuiltFanOutQuery {
  nebula::LogicalPlan plan;
  std::vector<std::shared_ptr<nebula::CollectSink>> collects;
  std::vector<std::shared_ptr<nebula::CountingSink>> countings;
};

/// Shared-ingest fan-out — the paper's multi-workload edge deployment as
/// ONE plan: a single SNCB geofencing stream (plus a shared speed
/// enrichment) fans out to (branch 0) the Q1-style geofence-alert filter
/// and (branch 1) the Q2-style per-zone windowed noise aggregate for
/// archival. The shared prefix executes once per buffer, so the combined
/// plan ingests one stream's worth of events where two independent
/// submissions of Q1 and Q2 would ingest it twice. This plan is also the
/// substrate of `bench_fig1_edge_vs_cloud`: the optimizer's placement
/// pass keeps the shared prefix on the train and cuts each branch
/// independently, executing the split over network channels.
Result<BuiltFanOutQuery> BuildSharedIngestFanOut(const DemoEnvironment& env,
                                                 const QueryOptions& options);

/// One branch of the shared-ingest fan-out (0 = alerts, 1 = archive) as a
/// standalone *linear* plan over its own ingest — identical operators to
/// the corresponding DAG branch, so benchmarks can compare the fan-out
/// plan against the exact same workloads submitted independently.
Result<BuiltQuery> BuildSharedIngestBranch(const DemoEnvironment& env,
                                           const QueryOptions& options,
                                           int branch);

/// Builds query \p number (1–8).
Result<BuiltQuery> BuildQuery(int number, const DemoEnvironment& env,
                              const QueryOptions& options);

/// Short name of query \p number ("Q1 Alert Filtering", ...).
const char* QueryName(int number);

/// The paper's reported throughput for query \p number.
struct PaperThroughput {
  double megabytes_per_s = 0.0;
  double kilo_events_per_s = 0.0;
};
PaperThroughput PaperReportedThroughput(int number);

}  // namespace nebulameos::queries

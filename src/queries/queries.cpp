#include "queries/queries.hpp"

#include "sncb/weather.hpp"

namespace nebulameos::queries {

using integration::RegisterMeosPlugin;
using integration::SetActiveGeofences;
using nebula::AggregateSpec;
using nebula::And;
using nebula::Attribute;
using nebula::CollectSink;
using nebula::CountingSink;
using nebula::DataType;
using nebula::Fn;
using nebula::Ge;
using nebula::Gt;
using nebula::Le;
using nebula::Lit;
using nebula::Lt;
using nebula::Measure;
using nebula::Mul;
using nebula::Ne;
using nebula::Not;
using nebula::Pattern;
using nebula::PatternStep;
using nebula::Query;
using nebula::Schema;
using nebula::Sub;
using nebula::Value;
using nebula::ValueAsDouble;

namespace {

// Emits the builder's plan and terminates it with a sink of the requested
// mode, shaped by the plan's inferred output schema.
Result<BuiltQuery> Finish(Query query, SinkMode mode) {
  NM_ASSIGN_OR_RETURN(nebula::LogicalPlan plan, std::move(query).Build());
  NM_ASSIGN_OR_RETURN(Schema sink_schema, plan.OutputSchema());
  if (mode == SinkMode::kCollect) {
    auto sink = std::make_shared<CollectSink>(sink_schema);
    plan.SetSink(sink);
    return BuiltQuery(std::move(plan), sink, nullptr);
  }
  auto sink = std::make_shared<CountingSink>(sink_schema);
  plan.SetSink(sink);
  return BuiltQuery(std::move(plan), nullptr, sink);
}

// Applies offered-load pacing when requested.
nebula::SourcePtr MaybePace(nebula::SourcePtr source,
                            const QueryOptions& options) {
  if (options.pace_events_per_second <= 0.0) return source;
  return std::make_unique<nebula::PacedSource>(
      std::move(source), options.pace_events_per_second);
}

}  // namespace

Result<std::shared_ptr<DemoEnvironment>> DemoEnvironment::Create() {
  auto env = std::shared_ptr<DemoEnvironment>(new DemoEnvironment());
  env->network_ = sncb::BuildBelgianNetwork();
  env->geofences_ = std::make_shared<integration::GeofenceRegistry>();
  sncb::PopulateSncbGeofences(env->network_, env->geofences_.get());
  NM_RETURN_NOT_OK(RegisterMeosPlugin(env->geofences_));
  SetActiveGeofences(env->geofences_);
  // Q4's weather-conditioned advisory limit as a runtime-registered
  // function: weather_speed_limit(condition, intensity, default_kmh).
  if (!nebula::ExpressionRegistry::Global().Contains("weather_speed_limit")) {
    NM_RETURN_NOT_OK(nebula::RegisterLambdaFunction(
        "weather_speed_limit", 3, DataType::kDouble,
        [](const std::vector<Value>& args) -> Value {
          return sncb::WeatherSpeedLimitKmh(
              static_cast<sncb::WeatherCondition>(
                  nebula::ValueAsInt64(args[0])),
              ValueAsDouble(args[1]), ValueAsDouble(args[2]));
        }));
  }
  // weather_cell(lon, lat): the weather-grid cell of a position (join key
  // for the Q4 join variant).
  if (!nebula::ExpressionRegistry::Global().Contains("weather_cell")) {
    NM_RETURN_NOT_OK(nebula::RegisterLambdaFunction(
        "weather_cell", 2, DataType::kInt64,
        [](const std::vector<Value>& args) -> Value {
          return sncb::WeatherCellOf(ValueAsDouble(args[0]),
                                     ValueAsDouble(args[1]));
        }));
  }
  return env;
}

// --- Q1 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ1AlertFiltering(const DemoEnvironment& env,
                                         const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Geofencing(options.max_events), options))
          .Filter(And(Ne(Attribute("event_type"), Lit(std::string("normal"))),
                      Not(Fn("in_zone_kind",
                             {Attribute("lon"), Attribute("lat"),
                              Lit(std::string("maintenance"))}))))
          .Project({"train_id", "ts", "lon", "lat", "speed_ms", "event_type"});
  return Finish(std::move(q), options.sink);
}

// --- Q2 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ2NoiseMonitoring(const DemoEnvironment& env,
                                          const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Geofencing(options.max_events), options))
          .Filter(Fn("in_zone_kind", {Attribute("lon"), Attribute("lat"),
                                      Lit(std::string("noise_sensitive"))}))
          .Map("zone", Fn("zone_id", {Attribute("lon"), Attribute("lat"),
                                      Lit(std::string("noise_sensitive"))}))
          .KeyBy("zone")
          .TumblingWindow(Seconds(30), "ts")
          .Aggregate({AggregateSpec::Avg("noise_db", "avg_noise_db"),
                      AggregateSpec::Max("noise_db", "max_noise_db"),
                      AggregateSpec::Count("events")});
  return Finish(std::move(q), options.sink);
}

// --- Q3 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ3DynamicSpeedLimit(const DemoEnvironment& env,
                                            const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Geofencing(options.max_events), options))
          .Map("speed_kmh", Mul(Attribute("speed_ms"), Lit(3.6)))
          .Map("limit_kmh", Fn("zone_speed_limit", {Attribute("lon"),
                                                    Attribute("lat"),
                                                    Lit(120.0)}))
          // 5 km/h enforcement tolerance suppresses marginal readings.
          .Filter(Gt(Attribute("speed_kmh"),
                     Add(Attribute("limit_kmh"), Lit(5.0))))
          .Project({"train_id", "ts", "lon", "lat", "speed_kmh", "limit_kmh"});
  return Finish(std::move(q), options.sink);
}

// --- Q4 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ4WeatherSpeedZones(const DemoEnvironment& env,
                                            const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Geofencing(options.max_events), options))
          .Map("zone_limit_kmh", Fn("zone_speed_limit", {Attribute("lon"),
                                                         Attribute("lat"),
                                                         Lit(120.0)}))
          .Map("limit_kmh",
               Fn("weather_speed_limit", {Attribute("weather_condition"),
                                          Attribute("weather_intensity"),
                                          Attribute("zone_limit_kmh")}))
          .Map("speed_kmh", Mul(Attribute("speed_ms"), Lit(3.6)))
          // Advise only where the weather actually lowers the limit (plain
          // overspeed against the zone limit is Q3's job).
          .Filter(And(Gt(Attribute("speed_kmh"), Attribute("limit_kmh")),
                      Lt(Attribute("limit_kmh"),
                         Attribute("zone_limit_kmh"))))
          .Project({"train_id", "ts", "lon", "lat", "speed_kmh", "limit_kmh",
                    "weather_condition", "weather_intensity"});
  return Finish(std::move(q), options.sink);
}

Result<BuiltQuery> BuildQ4WeatherJoin(const DemoEnvironment& env,
                                      const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  // The weather side: 24 h of observations for every grid cell, from the
  // same seeded provider the fleet experiences.
  nebula::TemporalLookupJoinOptions join;
  join.lookup = std::shared_ptr<nebula::Source>(sncb::MakeWeatherObservationStream(
      options.fleet.seed, sncb::EffectiveStartTime(options.fleet), Hours(24)));
  join.left_key = "cell";
  join.right_key = "cell";
  join.left_time = "ts";
  join.right_time = "ts";
  join.max_age = Hours(1);
  Query q =
      Query::From(MaybePace(sources.Geofencing(options.max_events), options))
          .Map("cell", Fn("weather_cell", {Attribute("lon"),
                                           Attribute("lat")}))
          .JoinLookup(std::move(join))
          .Map("zone_limit_kmh", Fn("zone_speed_limit", {Attribute("lon"),
                                                         Attribute("lat"),
                                                         Lit(120.0)}))
          .Map("limit_kmh",
               Fn("weather_speed_limit", {Attribute("condition"),
                                          Attribute("intensity"),
                                          Attribute("zone_limit_kmh")}))
          .Map("speed_kmh", Mul(Attribute("speed_ms"), Lit(3.6)))
          .Filter(And(Gt(Attribute("speed_kmh"), Attribute("limit_kmh")),
                      Lt(Attribute("limit_kmh"),
                         Attribute("zone_limit_kmh"))))
          .Project({"train_id", "ts", "lon", "lat", "speed_kmh", "limit_kmh",
                    "condition", "intensity"});
  return Finish(std::move(q), options.sink);
}

// --- Q5 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ5BatteryMonitoring(const DemoEnvironment& env,
                                            const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Battery(options.max_events), options))
          .Map("deviation_v",
               Fn("abs", {Sub(Attribute("battery_v"),
                              Attribute("battery_nominal_v"))}))
          .KeyBy("train_id")
          .ThresholdWindow(And(Attribute("on_battery"),
                               Gt(Attribute("deviation_v"), Lit(0.35))),
                           Seconds(30), "ts")
          .Aggregate({AggregateSpec::Avg("deviation_v", "avg_deviation_v"),
                      AggregateSpec::Max("deviation_v", "max_deviation_v"),
                      AggregateSpec::Max("battery_temp_c", "max_temp_c"),
                      AggregateSpec::Avg("lon", "lon"),
                      AggregateSpec::Avg("lat", "lat"),
                      AggregateSpec::Count("samples")})
          .Map("workshop_id", Fn("nearest_poi_id",
                                 {Attribute("lon"), Attribute("lat"),
                                  Lit(std::string("workshop"))}))
          .Map("workshop_dist_m",
               Fn("nearest_poi_distance", {Attribute("lon"), Attribute("lat"),
                                           Lit(std::string("workshop"))}));
  return Finish(std::move(q), options.sink);
}

// --- Q6 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ6HeavyLoad(const DemoEnvironment& env,
                                    const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q =
      Query::From(MaybePace(sources.Passenger(options.max_events), options))
          .KeyBy("train_id")
          .SlidingWindow(Minutes(5), Minutes(1), "ts")
          .Aggregate({AggregateSpec::Avg("passengers", "avg_passengers"),
                      AggregateSpec::Max("passengers", "max_passengers"),
                      AggregateSpec::Avg("seats", "seats"),
                      AggregateSpec::Avg("cabin_temp_c", "avg_cabin_temp_c"),
                      AggregateSpec::Count("samples")})
          .Filter(Gt(Attribute("avg_passengers"), Attribute("seats")));
  return Finish(std::move(q), options.sink);
}

// --- Q7 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ7UnscheduledStops(const DemoEnvironment& env,
                                           const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  // Halted outside any station or workshop zone.
  auto stopped_outside =
      And(Lt(Attribute("speed_ms"), Lit(0.5)),
          And(Not(Fn("in_zone_kind", {Attribute("lon"), Attribute("lat"),
                                      Lit(std::string("station"))})),
              Not(Fn("in_zone_kind", {Attribute("lon"), Attribute("lat"),
                                      Lit(std::string("workshop"))}))));
  Pattern pattern;
  pattern.steps = {
      PatternStep{"moving", Gt(Attribute("speed_ms"), Lit(5.0)), false, false},
      PatternStep{"halted", stopped_outside, false, true},
      PatternStep{"resumed", Gt(Attribute("speed_ms"), Lit(5.0)), false,
                  false},
  };
  pattern.within = Minutes(30);
  pattern.key_field = "train_id";
  pattern.time_field = "ts";
  // One pending run per train: every moving tick would otherwise spawn a
  // run, multiplying state and duplicating each stop alert.
  pattern.suppress_duplicate_starts = true;
  std::vector<Measure> measures = {
      Measure::Count("halted", "stop_events"),
      Measure::First("halted", "lon", "stop_lon"),
      Measure::First("halted", "lat", "stop_lat"),
  };
  // A genuine unscheduled stop lasts >= 30 s; at one reading per 250 ms
  // that is >= 120 halted events.
  Query q = Query::From(MaybePace(sources.Position(options.max_events), options))
                .Detect(std::move(pattern), std::move(measures))
                .Filter(Ge(Attribute("stop_events"), Lit(120)));
  return Finish(std::move(q), options.sink);
}

// --- Q8 ------------------------------------------------------------------

Result<BuiltQuery> BuildQ8BrakeMonitoring(const DemoEnvironment& env,
                                          const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  // Emergency braking shows as pressure collapsing below 2.2 bar; a
  // recovery above 3 bar separates distinct events (hysteresis: ordinary
  // service braking sits between ~2.9 and ~4.4 bar).
  auto emergency = Le(Attribute("brake_bar"), Lit(2.2));
  auto recovered = Gt(Attribute("brake_bar"), Lit(3.0));
  Pattern pattern;
  pattern.steps = {
      PatternStep{"e1", emergency, false, false},
      PatternStep{"rec", recovered, false, false},
      PatternStep{"e2", emergency, false, false},
  };
  pattern.within = Minutes(15);
  pattern.key_field = "train_id";
  pattern.time_field = "ts";
  // One alert per emergency pair, not one per low-pressure tick.
  pattern.suppress_duplicate_starts = true;
  std::vector<Measure> measures = {
      Measure::Min("e1", "brake_bar", "first_min_bar"),
      Measure::Min("e2", "brake_bar", "second_min_bar"),
      Measure::First("e1", "lon", "first_lon"),
      Measure::First("e1", "lat", "first_lat"),
  };
  Query q = Query::From(MaybePace(sources.Geofencing(options.max_events), options))
                .Detect(std::move(pattern), std::move(measures));
  return Finish(std::move(q), options.sink);
}

// --- Shared-ingest fan-out ----------------------------------------------------

namespace {

// The shared prefix of the fan-out plan: one geofencing ingest plus the
// speed enrichment both workloads read. (The fluent steps mutate the
// builder in place and return a reference to it.)
Query&& AddSharedIngestPrefix(Query&& q) {
  return std::move(q).Map("speed_kmh", Mul(Attribute("speed_ms"), Lit(3.6)));
}

// Branch 0 — Q1-style geofence alerting: onboard alerts outside
// maintenance zones, narrowed for the alert channel.
Query&& AddAlertBranchSteps(Query&& q) {
  return std::move(q)
      .Filter(And(Ne(Attribute("event_type"), Lit(std::string("normal"))),
                  Not(Fn("in_zone_kind",
                         {Attribute("lon"), Attribute("lat"),
                          Lit(std::string("maintenance"))}))))
      .Project({"train_id", "ts", "lon", "lat", "speed_kmh", "event_type"});
}

// Branch 1 — Q2-style archival: per-zone tumbling-window noise stats in
// noise-sensitive neighbourhoods.
Query&& AddArchiveBranchSteps(Query&& q) {
  return std::move(q)
      .Filter(Fn("in_zone_kind", {Attribute("lon"), Attribute("lat"),
                                  Lit(std::string("noise_sensitive"))}))
      .Map("zone", Fn("zone_id", {Attribute("lon"), Attribute("lat"),
                                  Lit(std::string("noise_sensitive"))}))
      .KeyBy("zone")
      .TumblingWindow(Seconds(30), "ts")
      .Aggregate({AggregateSpec::Avg("noise_db", "avg_noise_db"),
                  AggregateSpec::Max("noise_db", "max_noise_db"),
                  AggregateSpec::Count("events")});
}

}  // namespace

Result<BuiltQuery> BuildSharedIngestBranch(const DemoEnvironment& env,
                                           const QueryOptions& options,
                                           int branch) {
  if (branch != 0 && branch != 1) {
    return Status::InvalidArgument("shared-ingest branch must be 0 or 1");
  }
  sncb::SncbSources sources(&env.network(), options.fleet);
  Query q = AddSharedIngestPrefix(
      Query::From(MaybePace(sources.Geofencing(options.max_events), options)));
  if (branch == 0) {
    AddAlertBranchSteps(std::move(q));
  } else {
    AddArchiveBranchSteps(std::move(q));
  }
  return Finish(std::move(q), options.sink);
}

Result<BuiltFanOutQuery> BuildSharedIngestFanOut(const DemoEnvironment& env,
                                                 const QueryOptions& options) {
  sncb::SncbSources sources(&env.network(), options.fleet);
  nebula::SplitQuery split =
      AddSharedIngestPrefix(Query::From(
          MaybePace(sources.Geofencing(options.max_events), options)))
          .Split(2);
  AddAlertBranchSteps(std::move(split[0]));
  AddArchiveBranchSteps(std::move(split[1]));
  NM_ASSIGN_OR_RETURN(nebula::LogicalPlan plan, std::move(split).Build());
  NM_ASSIGN_OR_RETURN(auto leaf_schemas, plan.OutputSchemas());
  BuiltFanOutQuery built{std::move(plan), {}, {}};
  std::vector<std::shared_ptr<nebula::SinkOperator>> sinks;
  for (const auto& [path, schema] : leaf_schemas) {
    (void)path;
    if (options.sink == SinkMode::kCollect) {
      auto sink = std::make_shared<CollectSink>(schema);
      built.collects.push_back(sink);
      sinks.push_back(std::move(sink));
    } else {
      auto sink = std::make_shared<CountingSink>(schema);
      built.countings.push_back(sink);
      sinks.push_back(std::move(sink));
    }
  }
  NM_RETURN_NOT_OK(built.plan.SetLeafSinks(std::move(sinks)));
  return built;
}

// --- Dispatch ----------------------------------------------------------------

Result<BuiltQuery> BuildQuery(int number, const DemoEnvironment& env,
                              const QueryOptions& options) {
  switch (number) {
    case 1:
      return BuildQ1AlertFiltering(env, options);
    case 2:
      return BuildQ2NoiseMonitoring(env, options);
    case 3:
      return BuildQ3DynamicSpeedLimit(env, options);
    case 4:
      return BuildQ4WeatherSpeedZones(env, options);
    case 5:
      return BuildQ5BatteryMonitoring(env, options);
    case 6:
      return BuildQ6HeavyLoad(env, options);
    case 7:
      return BuildQ7UnscheduledStops(env, options);
    case 8:
      return BuildQ8BrakeMonitoring(env, options);
    default:
      return Status::InvalidArgument("query number must be 1..8");
  }
}

const char* QueryName(int number) {
  switch (number) {
    case 1:
      return "Q1 Alert Filtering";
    case 2:
      return "Q2 Noise Monitoring";
    case 3:
      return "Q3 Dynamic Speed Limit";
    case 4:
      return "Q4 Weather-Based Speed Zones";
    case 5:
      return "Q5 Battery Monitoring";
    case 6:
      return "Q6 Heavy Passenger Load";
    case 7:
      return "Q7 Unscheduled Stops";
    case 8:
      return "Q8 Brake Monitoring";
    default:
      return "unknown";
  }
}

PaperThroughput PaperReportedThroughput(int number) {
  switch (number) {
    case 1:
    case 2:
    case 3:
    case 4:
      return {2.24, 20.0};
    case 5:
      return {0.61, 8.0};
    case 6:
      return {3.68, 32.0};
    case 7:
      return {0.40, 10.0};
    case 8:
      return {2.24, 20.0};
    default:
      return {};
  }
}

}  // namespace nebulameos::queries

#include "nebula/expr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "common/strings.hpp"
#include "nebula/exec/compiled_expr.hpp"

namespace nebulameos::nebula {

double ValueAsDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? 1.0 : 0.0;
    case 1:
      return static_cast<double>(std::get<int64_t>(v));
    case 2:
      return std::get<double>(v);
    default:
      return 0.0;
  }
}

bool ValueAsBool(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v);
    case 1:
      return std::get<int64_t>(v) != 0;
    case 2:
      return std::get<double>(v) != 0.0;
    default:
      return !std::get<std::string>(v).empty();
  }
}

int64_t ValueAsInt64(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? 1 : 0;
    case 1:
      return std::get<int64_t>(v);
    case 2:
      return static_cast<int64_t>(std::get<double>(v));
    default:
      return 0;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? "true" : "false";
    case 1:
      return std::to_string(std::get<int64_t>(v));
    case 2:
      return FormatDouble(std::get<double>(v));
    default:
      return std::get<std::string>(v);
  }
}

exec::KernelPtr Expression::CompileKernel(const Schema&) const {
  return nullptr;  // conservative default: interpret
}

namespace {

// --- Field reference --------------------------------------------------------

class FieldExpr : public Expression {
 public:
  explicit FieldExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema& schema) override {
    NM_ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
    type_ = schema.field(index_).type;
    bound_ = true;
    return Status::OK();
  }

  Value Eval(const RecordView& rec) const override {
    assert(bound_);
    switch (type_) {
      case DataType::kBool:
        return rec.GetBool(index_);
      case DataType::kInt64:
      case DataType::kTimestamp:
        return rec.GetInt64(index_);
      case DataType::kDouble:
        return rec.GetDouble(index_);
      case DataType::kText16:
      case DataType::kText32:
        return rec.GetText(index_);
    }
    return int64_t{0};
  }

  DataType output_type() const override { return type_; }
  std::string ToString() const override { return name_; }

  const std::string& field_name() const { return name_; }

  bool ReferencedFields(std::vector<std::string>* out) const override {
    out->push_back(name_);
    return true;
  }

  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    auto idx = schema.IndexOf(name_);
    if (!idx.ok()) return nullptr;
    return exec::MakeLoadKernel(schema.field(*idx).type, schema.offset(*idx));
  }

 private:
  std::string name_;
  size_t index_ = 0;
  DataType type_ = DataType::kInt64;
  bool bound_ = false;
};

// --- Literal ----------------------------------------------------------------

class LiteralExpr : public Expression {
 public:
  LiteralExpr(Value v, DataType type) : value_(std::move(v)), type_(type) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  Value Eval(const RecordView&) const override { return value_; }
  DataType output_type() const override { return type_; }
  std::string ToString() const override { return ValueToString(value_); }
  std::optional<Value> ConstantValue() const override { return value_; }
  bool ReferencedFields(std::vector<std::string>*) const override {
    return true;  // reads nothing
  }

  exec::KernelPtr CompileKernel(const Schema&) const override {
    switch (type_) {
      case DataType::kBool:
        return exec::MakeConstKernel(std::get<bool>(value_));
      case DataType::kInt64:
      case DataType::kTimestamp:
        return exec::MakeConstKernel(ValueAsInt64(value_));
      case DataType::kDouble:
        return exec::MakeConstKernel(ValueAsDouble(value_));
      case DataType::kText16:
      case DataType::kText32:
        return nullptr;
    }
    return nullptr;
  }

 private:
  Value value_;
  DataType type_;
};

// --- Arithmetic -------------------------------------------------------------

class ArithExpr : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    NM_RETURN_NOT_OK(lhs_->Bind(schema));
    NM_RETURN_NOT_OK(rhs_->Bind(schema));
    const bool both_int = lhs_->output_type() != DataType::kDouble &&
                          rhs_->output_type() != DataType::kDouble;
    int_result_ = both_int && op_ != ArithOp::kDiv;
    return Status::OK();
  }

  Value Eval(const RecordView& rec) const override {
    const Value lv = lhs_->Eval(rec);
    const Value rv = rhs_->Eval(rec);
    if (int_result_) {
      const int64_t a = ValueAsInt64(lv);
      const int64_t b = ValueAsInt64(rv);
      switch (op_) {
        case ArithOp::kAdd:
          return a + b;
        case ArithOp::kSub:
          return a - b;
        case ArithOp::kMul:
          return a * b;
        case ArithOp::kMod:
          return b == 0 ? int64_t{0} : a % b;
        case ArithOp::kDiv:
          break;  // handled as double below
      }
    }
    const double a = ValueAsDouble(lv);
    const double b = ValueAsDouble(rv);
    switch (op_) {
      case ArithOp::kAdd:
        return a + b;
      case ArithOp::kSub:
        return a - b;
      case ArithOp::kMul:
        return a * b;
      case ArithOp::kDiv:
        return b == 0.0 ? 0.0 : a / b;
      case ArithOp::kMod:
        return b == 0.0 ? 0.0 : std::fmod(a, b);
    }
    return 0.0;
  }

  DataType output_type() const override {
    return int_result_ ? DataType::kInt64 : DataType::kDouble;
  }

  std::string ToString() const override {
    static const char* kOps[] = {"+", "-", "*", "/", "%"};
    return "(" + lhs_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
           rhs_->ToString() + ")";
  }

  bool ReferencedFields(std::vector<std::string>* out) const override {
    return lhs_->ReferencedFields(out) && rhs_->ReferencedFields(out);
  }

  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    return exec::MakeArithKernel(op_, int_result_,
                                 lhs_->CompileKernel(schema),
                                 rhs_->CompileKernel(schema));
  }

  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  bool int_result_ = false;
};

// --- Comparison -------------------------------------------------------------

class CompareExpr : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    NM_RETURN_NOT_OK(lhs_->Bind(schema));
    NM_RETURN_NOT_OK(rhs_->Bind(schema));
    text_compare_ = !IsNumericish(lhs_->output_type()) &&
                    !IsNumericish(rhs_->output_type());
    return Status::OK();
  }

  Value Eval(const RecordView& rec) const override {
    if (text_compare_) {
      const std::string a = ValueToString(lhs_->Eval(rec));
      const std::string b = ValueToString(rhs_->Eval(rec));
      return EvalOrdered(a.compare(b));
    }
    const double a = ValueAsDouble(lhs_->Eval(rec));
    const double b = ValueAsDouble(rhs_->Eval(rec));
    return EvalOrdered(a < b ? -1 : (a > b ? 1 : 0));
  }

  DataType output_type() const override { return DataType::kBool; }

  std::string ToString() const override {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + lhs_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
           rhs_->ToString() + ")";
  }

  bool ReferencedFields(std::vector<std::string>* out) const override {
    return lhs_->ReferencedFields(out) && rhs_->ReferencedFields(out);
  }

  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    if (text_compare_) return nullptr;  // lexicographic stays interpreted
    return exec::MakeCompareKernel(op_, lhs_->CompileKernel(schema),
                                   rhs_->CompileKernel(schema));
  }

 private:
  static bool IsNumericish(DataType t) {
    return IsNumeric(t) || t == DataType::kBool;
  }

  bool EvalOrdered(int cmp) const {
    switch (op_) {
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
    }
    return false;
  }

 public:
  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  bool text_compare_ = false;
};

// --- Logical ----------------------------------------------------------------

class LogicalExpr : public Expression {
 public:
  enum class Kind { kAnd, kOr };

  LogicalExpr(Kind kind, ExprPtr lhs, ExprPtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    NM_RETURN_NOT_OK(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }

  Value Eval(const RecordView& rec) const override {
    const bool a = ValueAsBool(lhs_->Eval(rec));
    if (kind_ == Kind::kAnd) {
      return a && ValueAsBool(rhs_->Eval(rec));
    }
    return a || ValueAsBool(rhs_->Eval(rec));
  }

  DataType output_type() const override { return DataType::kBool; }

  std::string ToString() const override {
    return "(" + lhs_->ToString() +
           (kind_ == Kind::kAnd ? " AND " : " OR ") + rhs_->ToString() + ")";
  }

  bool ReferencedFields(std::vector<std::string>* out) const override {
    return lhs_->ReferencedFields(out) && rhs_->ReferencedFields(out);
  }

  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    exec::KernelPtr lhs = lhs_->CompileKernel(schema);
    exec::KernelPtr rhs = rhs_->CompileKernel(schema);
    return kind_ == Kind::kAnd
               ? exec::MakeAndKernel(std::move(lhs), std::move(rhs))
               : exec::MakeOrKernel(std::move(lhs), std::move(rhs));
  }

  Kind logical_kind() const { return kind_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  Kind kind_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}

  Status Bind(const Schema& schema) override { return inner_->Bind(schema); }

  Value Eval(const RecordView& rec) const override {
    return !ValueAsBool(inner_->Eval(rec));
  }

  DataType output_type() const override { return DataType::kBool; }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

  bool ReferencedFields(std::vector<std::string>* out) const override {
    return inner_->ReferencedFields(out);
  }

  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    return exec::MakeNotKernel(inner_->CompileKernel(schema));
  }

  const ExprPtr& inner() const { return inner_; }

 private:
  ExprPtr inner_;
};

// --- Built-in math functions --------------------------------------------------

class MathFn : public FunctionExpression {
 public:
  /// Scalar implementation over pre-widened doubles — both the boxed
  /// `EvalFn` and the compiled batch kernel dispatch to it, so the
  /// interpreter and the kernel cannot drift.
  using Impl = double (*)(const double*);

  MathFn(std::string name, std::vector<ExprPtr> args, Impl impl)
      : FunctionExpression(std::move(name), std::move(args),
                           DataType::kDouble),
        impl_(impl) {}

 protected:
  Value EvalFn(const std::vector<Value>& args) const override {
    double widened[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < args.size() && i < 3; ++i) {
      widened[i] = ValueAsDouble(args[i]);
    }
    return impl_(widened);
  }

  bool ScalarEvaluable() const override { return true; }
  double EvalScalar(const double* args) const override { return impl_(args); }

 private:
  Impl impl_;
};

Result<ExprPtr> MakeMathFn(const std::string& name, std::vector<ExprPtr> args,
                           size_t arity, MathFn::Impl impl) {
  if (args.size() != arity) {
    return Status::InvalidArgument(name + " expects " + std::to_string(arity) +
                                   " arguments");
  }
  return ExprPtr(std::make_shared<MathFn>(name, std::move(args), impl));
}

}  // namespace

// --- Public constructors ------------------------------------------------------

ExprPtr Attribute(std::string name) {
  return std::make_shared<FieldExpr>(std::move(name));
}

ExprPtr Lit(bool v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kBool);
}
ExprPtr Lit(int64_t v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kInt64);
}
ExprPtr Lit(int v) { return Lit(static_cast<int64_t>(v)); }
ExprPtr Lit(double v) {
  return std::make_shared<LiteralExpr>(Value(v), DataType::kDouble);
}
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value(std::move(v)), DataType::kText32);
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
}

ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kGe, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kNe, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalExpr::Kind::kAnd,
                                       std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalExpr::Kind::kOr, std::move(lhs),
                                       std::move(rhs));
}
ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(std::move(inner)); }

// --- FunctionExpression --------------------------------------------------------

Status FunctionExpression::Bind(const Schema& schema) {
  for (const ExprPtr& arg : args_) {
    NM_RETURN_NOT_OK(arg->Bind(schema));
  }
  return OnBind(schema);
}

Status FunctionExpression::OnBind(const Schema&) { return Status::OK(); }

Value FunctionExpression::Eval(const RecordView& rec) const {
  std::vector<Value> vals;
  vals.reserve(args_.size());
  for (const ExprPtr& arg : args_) vals.push_back(arg->Eval(rec));
  return EvalFn(vals);
}

std::string FunctionExpression::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

bool FunctionExpression::ReferencedFields(std::vector<std::string>* out) const {
  // Function expressions read only through their argument expressions, so
  // every subclass — including the MEOS extension suite and runtime-
  // registered lambdas — participates in optimizer dependency analysis
  // without any extra code.
  for (const ExprPtr& arg : args_) {
    if (!arg->ReferencedFields(out)) return false;
  }
  return true;
}

exec::KernelPtr FunctionExpression::CompileKernel(const Schema& schema) const {
  if (!ScalarEvaluable()) return nullptr;
  exec::KernelType out_type;
  switch (output_type_) {
    case DataType::kBool:
      out_type = exec::KernelType::kBool;
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      out_type = exec::KernelType::kInt64;
      break;
    case DataType::kDouble:
      out_type = exec::KernelType::kDouble;
      break;
    case DataType::kText16:
    case DataType::kText32:
      return nullptr;
  }
  std::vector<exec::KernelPtr> arg_kernels;
  std::vector<double> const_args;
  arg_kernels.reserve(args_.size());
  const_args.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    if (auto cv = arg->ConstantValue()) {
      // Bind-time configuration (zone names, bounds): widened once, never
      // re-evaluated per row.
      arg_kernels.push_back(nullptr);
      const_args.push_back(ValueAsDouble(*cv));
      continue;
    }
    exec::KernelPtr k = arg->CompileKernel(schema);
    if (k == nullptr) return nullptr;
    arg_kernels.push_back(std::move(k));
    const_args.push_back(0.0);
  }
  return exec::MakeScalarFnKernel(
      out_type, [this](const double* a) { return EvalScalar(a); },
      std::move(arg_kernels), std::move(const_args));
}

// --- Registry -------------------------------------------------------------------

ExpressionRegistry& ExpressionRegistry::Global() {
  static ExpressionRegistry* registry = new ExpressionRegistry();
  return *registry;
}

Status ExpressionRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (factories_.count(name) != 0) {
    return Status::AlreadyExists("function already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

bool ExpressionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

Result<ExprPtr> ExpressionRegistry::Create(const std::string& name,
                                           std::vector<ExprPtr> args) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("no registered function: " + name);
    }
    factory = it->second;
  }
  return factory(std::move(args));
}

std::vector<std::string> ExpressionRegistry::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

ExprPtr Fn(const std::string& name, std::vector<ExprPtr> args) {
  auto res = ExpressionRegistry::Global().Create(name, std::move(args));
  assert(res.ok());
  return *res;
}

namespace {

class LambdaFn : public FunctionExpression {
 public:
  using Impl = std::function<Value(const std::vector<Value>&)>;

  LambdaFn(std::string name, std::vector<ExprPtr> args, DataType output_type,
           Impl impl)
      : FunctionExpression(std::move(name), std::move(args), output_type),
        impl_(std::move(impl)) {}

 protected:
  Value EvalFn(const std::vector<Value>& args) const override {
    return impl_(args);
  }

 private:
  Impl impl_;
};

}  // namespace

ExprPtr MakeLambdaExpr(std::string name, std::vector<ExprPtr> args,
                       DataType output_type,
                       std::function<Value(const std::vector<Value>&)> fn) {
  return std::make_shared<LambdaFn>(std::move(name), std::move(args),
                                    output_type, std::move(fn));
}

Status RegisterLambdaFunction(
    const std::string& name, size_t arity, DataType output_type,
    std::function<Value(const std::vector<Value>&)> fn) {
  return ExpressionRegistry::Global().Register(
      name, [name, arity, output_type,
             fn](std::vector<ExprPtr> args) -> Result<ExprPtr> {
        if (args.size() != arity) {
          return Status::InvalidArgument(
              name + " expects " + std::to_string(arity) + " arguments");
        }
        return MakeLambdaExpr(name, std::move(args), output_type, fn);
      });
}

void RegisterBuiltinFunctions() {
  auto& reg = ExpressionRegistry::Global();
  if (reg.Contains("abs")) return;  // already registered
  (void)reg.Register("abs", [](std::vector<ExprPtr> args) {
    return MakeMathFn("abs", std::move(args), 1,
                      [](const double* v) { return std::fabs(v[0]); });
  });
  (void)reg.Register("sqrt", [](std::vector<ExprPtr> args) {
    return MakeMathFn("sqrt", std::move(args), 1, [](const double* v) {
      return std::sqrt(std::max(0.0, v[0]));
    });
  });
  (void)reg.Register("least", [](std::vector<ExprPtr> args) {
    return MakeMathFn("least", std::move(args), 2,
                      [](const double* v) { return std::min(v[0], v[1]); });
  });
  (void)reg.Register("greatest", [](std::vector<ExprPtr> args) {
    return MakeMathFn("greatest", std::move(args), 2,
                      [](const double* v) { return std::max(v[0], v[1]); });
  });
  (void)reg.Register("clamp", [](std::vector<ExprPtr> args) {
    return MakeMathFn("clamp", std::move(args), 3, [](const double* v) {
      return std::clamp(v[0], v[1], v[2]);
    });
  });
}

// --- Structural equality ------------------------------------------------------

bool StructurallyEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (const auto* fa = dynamic_cast<const FieldExpr*>(a.get())) {
    const auto* fb = dynamic_cast<const FieldExpr*>(b.get());
    return fb != nullptr && fa->field_name() == fb->field_name();
  }
  if (dynamic_cast<const LiteralExpr*>(a.get()) != nullptr) {
    // Literal vs literal: same value AND same static type (an int64 1 and
    // a double 1.0 are distinct variant alternatives and compare unequal,
    // which is what we want — they widen differently downstream).
    if (dynamic_cast<const LiteralExpr*>(b.get()) == nullptr) return false;
    return a->output_type() == b->output_type() &&
           *a->ConstantValue() == *b->ConstantValue();
  }
  if (const auto* aa = dynamic_cast<const ArithExpr*>(a.get())) {
    const auto* ab = dynamic_cast<const ArithExpr*>(b.get());
    return ab != nullptr && aa->op() == ab->op() &&
           StructurallyEqual(aa->lhs(), ab->lhs()) &&
           StructurallyEqual(aa->rhs(), ab->rhs());
  }
  if (const auto* ca = dynamic_cast<const CompareExpr*>(a.get())) {
    const auto* cb = dynamic_cast<const CompareExpr*>(b.get());
    return cb != nullptr && ca->op() == cb->op() &&
           StructurallyEqual(ca->lhs(), cb->lhs()) &&
           StructurallyEqual(ca->rhs(), cb->rhs());
  }
  if (const auto* la = dynamic_cast<const LogicalExpr*>(a.get())) {
    const auto* lb = dynamic_cast<const LogicalExpr*>(b.get());
    return lb != nullptr && la->logical_kind() == lb->logical_kind() &&
           StructurallyEqual(la->lhs(), lb->lhs()) &&
           StructurallyEqual(la->rhs(), lb->rhs());
  }
  if (const auto* na = dynamic_cast<const NotExpr*>(a.get())) {
    const auto* nb = dynamic_cast<const NotExpr*>(b.get());
    return nb != nullptr && StructurallyEqual(na->inner(), nb->inner());
  }
  if (const auto* ga = dynamic_cast<const FunctionExpression*>(a.get())) {
    const auto* gb = dynamic_cast<const FunctionExpression*>(b.get());
    if (gb == nullptr || ga->name() != gb->name() ||
        ga->args().size() != gb->args().size()) {
      return false;
    }
    for (size_t i = 0; i < ga->args().size(); ++i) {
      if (!StructurallyEqual(ga->args()[i], gb->args()[i])) return false;
    }
    return true;
  }
  // Unknown extension node: semantics unprovable, never equal.
  return false;
}

bool ExpressionMergeSafe(const ExprPtr& expr) {
  if (!expr) return false;
  if (dynamic_cast<const FieldExpr*>(expr.get()) != nullptr) return true;
  if (dynamic_cast<const LiteralExpr*>(expr.get()) != nullptr) return true;
  if (const auto* a = dynamic_cast<const ArithExpr*>(expr.get())) {
    return ExpressionMergeSafe(a->lhs()) && ExpressionMergeSafe(a->rhs());
  }
  if (const auto* c = dynamic_cast<const CompareExpr*>(expr.get())) {
    return ExpressionMergeSafe(c->lhs()) && ExpressionMergeSafe(c->rhs());
  }
  if (const auto* l = dynamic_cast<const LogicalExpr*>(expr.get())) {
    return ExpressionMergeSafe(l->lhs()) && ExpressionMergeSafe(l->rhs());
  }
  if (const auto* n = dynamic_cast<const NotExpr*>(expr.get())) {
    return ExpressionMergeSafe(n->inner());
  }
  if (const auto* f = dynamic_cast<const FunctionExpression*>(expr.get())) {
    // A registered name pins process-wide semantics; an ad-hoc
    // MakeLambdaExpr name pins nothing — two queries can use the same
    // name for different callables, so it must not be merge material.
    if (!ExpressionRegistry::Global().Contains(f->name())) return false;
    for (const ExprPtr& arg : f->args()) {
      if (!ExpressionMergeSafe(arg)) return false;
    }
    return true;
  }
  return false;
}

// --- Constant folding ---------------------------------------------------------

namespace {

// Literal of the node's own output type, so folding never changes the
// downstream schema (an int-typed arithmetic result stays an int literal).
ExprPtr LiteralOf(const Value& v, DataType type) {
  switch (type) {
    case DataType::kBool:
      return Lit(ValueAsBool(v));
    case DataType::kInt64:
    case DataType::kTimestamp:
      return Lit(ValueAsInt64(v));
    case DataType::kDouble:
      return Lit(ValueAsDouble(v));
    case DataType::kText16:
    case DataType::kText32:
      return Lit(ValueToString(v));
  }
  return Lit(ValueAsDouble(v));
}

bool IsConst(const ExprPtr& e) { return e->ConstantValue().has_value(); }

// Evaluates a pure node whose children are all literals: binding against
// the empty schema succeeds (no field references) and Eval never touches
// the record.
ExprPtr EvalPure(ExprPtr node) {
  static const Schema kEmpty;
  if (!node->Bind(kEmpty).ok()) return node;
  const Value v = node->Eval(RecordView(&kEmpty, nullptr));
  return LiteralOf(v, node->output_type());
}

}  // namespace

namespace {

// Folds a rebuilt pure node with all-literal children into a literal via
// EvalPure; reports `changed` only when a literal actually came out (a
// Bind refusal leaves the rebuilt node alone — any real type error still
// surfaces at CompilePlan).
ExprPtr FoldOrKeep(ExprPtr rebuilt, bool* changed) {
  ExprPtr folded = EvalPure(rebuilt);
  if (IsConst(folded)) {
    *changed = true;
    return folded;
  }
  return rebuilt;
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr, bool* changed) {
  if (!expr || IsConst(expr)) return expr;
  if (const auto* a = dynamic_cast<const ArithExpr*>(expr.get())) {
    const ExprPtr lhs = FoldConstants(a->lhs(), changed);
    const ExprPtr rhs = FoldConstants(a->rhs(), changed);
    if (IsConst(lhs) && IsConst(rhs)) {
      return FoldOrKeep(Arith(a->op(), lhs, rhs), changed);
    }
    if (lhs != a->lhs() || rhs != a->rhs()) return Arith(a->op(), lhs, rhs);
    return expr;
  }
  if (const auto* c = dynamic_cast<const CompareExpr*>(expr.get())) {
    const ExprPtr lhs = FoldConstants(c->lhs(), changed);
    const ExprPtr rhs = FoldConstants(c->rhs(), changed);
    if (IsConst(lhs) && IsConst(rhs)) {
      return FoldOrKeep(Compare(c->op(), lhs, rhs), changed);
    }
    if (lhs != c->lhs() || rhs != c->rhs()) return Compare(c->op(), lhs, rhs);
    return expr;
  }
  if (const auto* l = dynamic_cast<const LogicalExpr*>(expr.get())) {
    const bool is_and = l->logical_kind() == LogicalExpr::Kind::kAnd;
    const ExprPtr lhs = FoldConstants(l->lhs(), changed);
    const ExprPtr rhs = FoldConstants(l->rhs(), changed);
    // Short-circuit simplification: a constant side either decides the
    // result or drops out (expressions are pure reads, so eliding the
    // other side preserves semantics).
    const auto lc = lhs->ConstantValue();
    const auto rc = rhs->ConstantValue();
    if (lc) {
      *changed = true;
      const bool b = ValueAsBool(*lc);
      if (is_and) return b ? rhs : Lit(false);
      return b ? Lit(true) : rhs;
    }
    if (rc) {
      *changed = true;
      const bool b = ValueAsBool(*rc);
      if (is_and) return b ? lhs : Lit(false);
      return b ? Lit(true) : lhs;
    }
    if (lhs != l->lhs() || rhs != l->rhs()) {
      return is_and ? And(lhs, rhs) : Or(lhs, rhs);
    }
    return expr;
  }
  if (const auto* n = dynamic_cast<const NotExpr*>(expr.get())) {
    const ExprPtr inner = FoldConstants(n->inner(), changed);
    if (IsConst(inner)) {
      return FoldOrKeep(Not(inner), changed);
    }
    if (inner != n->inner()) return Not(inner);
    return expr;
  }
  return expr;
}

// --- Common-subexpression elimination ----------------------------------------

namespace {

// The memoizing wrapper `PlanCse` installs at every occurrence of a shared
// subexpression. One instance per distinct subexpression, aliased at all
// its occurrence positions (trees are immutable after Bind, so sharing a
// node is free): whichever occurrence evaluates first under the current
// epoch fills the slot, later ones read it. Lazy by construction — inside
// a short-circuited And/Or arm the wrapper is never asked and computes
// nothing. No CompileKernel override: CSE trees stay on the interpreted
// path (the batch compiler has its own evaluation model).
class CachedExpr final : public Expression {
 public:
  CachedExpr(ExprPtr inner, std::shared_ptr<CseCache> cache, size_t slot)
      : inner_(std::move(inner)), cache_(std::move(cache)), slot_(slot) {}

  Status Bind(const Schema& schema) override { return inner_->Bind(schema); }

  Value Eval(const RecordView& rec) const override {
    CseCache::Slot& slot = cache_->slots[slot_];
    if (slot.epoch != cache_->epoch) {
      slot.value = inner_->Eval(rec);
      slot.epoch = cache_->epoch;
    }
    return slot.value;
  }

  DataType output_type() const override { return inner_->output_type(); }
  std::string ToString() const override { return inner_->ToString(); }
  std::optional<Value> ConstantValue() const override {
    return inner_->ConstantValue();
  }
  bool ReferencedFields(std::vector<std::string>* out) const override {
    return inner_->ReferencedFields(out);
  }

 private:
  ExprPtr inner_;
  std::shared_ptr<CseCache> cache_;
  size_t slot_;
};

// Field reads and literals are cheaper than a cache slot.
bool CseTrivial(const Expression* e) {
  return dynamic_cast<const FieldExpr*>(e) != nullptr ||
         dynamic_cast<const LiteralExpr*>(e) != nullptr;
}

// Occurrence census bucket. Buckets key on the rendered form and verify
// membership with StructurallyEqual, so a rendering collision degrades to
// a missed sharing opportunity, never a wrong merge.
struct CseBucket {
  ExprPtr representative;
  size_t occurrences = 0;
  ExprPtr wrapper;  // the shared caching wrapper, built on first replacement
};

// Builds the caching wrapper for a shared subexpression — parameterizes
// CseRewrite over the two cache models (per-record CachedExpr for the
// interpreter, per-batch column cache for compiled kernels).
using CseWrapperFactory = std::function<ExprPtr(const ExprPtr& rep)>;

// Counts subtree occurrences over the replaceable region: every subtree
// all of whose ancestors (within its root) are rebuildable built-ins.
void CseCount(const ExprPtr& node, std::map<std::string, CseBucket>* buckets) {
  if (!CseTrivial(node.get())) {
    CseBucket& bucket = (*buckets)[node->ToString()];
    if (!bucket.representative) bucket.representative = node;
    if (StructurallyEqual(bucket.representative, node)) ++bucket.occurrences;
  }
  if (const auto* a = dynamic_cast<const ArithExpr*>(node.get())) {
    CseCount(a->lhs(), buckets);
    CseCount(a->rhs(), buckets);
  } else if (const auto* c = dynamic_cast<const CompareExpr*>(node.get())) {
    CseCount(c->lhs(), buckets);
    CseCount(c->rhs(), buckets);
  } else if (const auto* l = dynamic_cast<const LogicalExpr*>(node.get())) {
    CseCount(l->lhs(), buckets);
    CseCount(l->rhs(), buckets);
  } else if (const auto* n = dynamic_cast<const NotExpr*>(node.get())) {
    CseCount(n->inner(), buckets);
  }
}

// Top-down, outermost-wins replacement: a node matching a shared bucket
// becomes (an alias of) the bucket's wrapper and its interior is left
// untouched — the wrapper's single evaluation covers it. Rebuilt ancestor
// nodes come out unbound; PlanCse's caller re-binds.
ExprPtr CseRewrite(const ExprPtr& node,
                   std::map<std::string, CseBucket>* buckets,
                   const CseWrapperFactory& make_wrapper,
                   size_t* num_shared) {
  if (!CseTrivial(node.get())) {
    const auto it = buckets->find(node->ToString());
    if (it != buckets->end() && it->second.occurrences >= 2 &&
        StructurallyEqual(it->second.representative, node)) {
      CseBucket& bucket = it->second;
      if (!bucket.wrapper) {
        bucket.wrapper = make_wrapper(bucket.representative);
        ++*num_shared;
      }
      return bucket.wrapper;
    }
  }
  if (const auto* a = dynamic_cast<const ArithExpr*>(node.get())) {
    ExprPtr lhs = CseRewrite(a->lhs(), buckets, make_wrapper, num_shared);
    ExprPtr rhs = CseRewrite(a->rhs(), buckets, make_wrapper, num_shared);
    if (lhs != a->lhs() || rhs != a->rhs()) {
      return Arith(a->op(), std::move(lhs), std::move(rhs));
    }
    return node;
  }
  if (const auto* c = dynamic_cast<const CompareExpr*>(node.get())) {
    ExprPtr lhs = CseRewrite(c->lhs(), buckets, make_wrapper, num_shared);
    ExprPtr rhs = CseRewrite(c->rhs(), buckets, make_wrapper, num_shared);
    if (lhs != c->lhs() || rhs != c->rhs()) {
      return Compare(c->op(), std::move(lhs), std::move(rhs));
    }
    return node;
  }
  if (const auto* l = dynamic_cast<const LogicalExpr*>(node.get())) {
    ExprPtr lhs = CseRewrite(l->lhs(), buckets, make_wrapper, num_shared);
    ExprPtr rhs = CseRewrite(l->rhs(), buckets, make_wrapper, num_shared);
    if (lhs != l->lhs() || rhs != l->rhs()) {
      return l->logical_kind() == LogicalExpr::Kind::kAnd
                 ? And(std::move(lhs), std::move(rhs))
                 : Or(std::move(lhs), std::move(rhs));
    }
    return node;
  }
  if (const auto* n = dynamic_cast<const NotExpr*>(node.get())) {
    ExprPtr inner = CseRewrite(n->inner(), buckets, make_wrapper, num_shared);
    if (inner != n->inner()) return Not(std::move(inner));
    return node;
  }
  return node;
}

// Census + rewrite shared by both CSE planners; returns the rewritten
// roots (unchanged when nothing repeats) and the shared-wrapper count.
std::vector<ExprPtr> CseRun(std::vector<ExprPtr> roots,
                            const CseWrapperFactory& make_wrapper,
                            size_t* num_shared) {
  std::map<std::string, CseBucket> buckets;
  for (const ExprPtr& root : roots) {
    if (root) CseCount(root, &buckets);
  }
  bool any_shared = false;
  for (const auto& [key, bucket] : buckets) {
    any_shared = any_shared || bucket.occurrences >= 2;
  }
  if (!any_shared) return roots;
  std::vector<ExprPtr> out;
  out.reserve(roots.size());
  for (const ExprPtr& root : roots) {
    out.push_back(root ? CseRewrite(root, &buckets, make_wrapper, num_shared)
                       : root);
  }
  return out;
}

// The wrapper `PlanKernelCse` installs: interpretation passes straight
// through to the inner tree (per-record evaluation has its own CSE in
// PlanCse), while `CompileKernel` wraps the inner kernel so the compiled
// column materializes once per batch and later fused stages gather it.
class KernelCachedExpr final : public Expression {
 public:
  KernelCachedExpr(ExprPtr inner, std::shared_ptr<exec::ColumnCache> cache,
                   size_t slot)
      : inner_(std::move(inner)), cache_(std::move(cache)), slot_(slot) {}

  Status Bind(const Schema& schema) override { return inner_->Bind(schema); }
  Value Eval(const RecordView& rec) const override {
    return inner_->Eval(rec);
  }
  DataType output_type() const override { return inner_->output_type(); }
  std::string ToString() const override { return inner_->ToString(); }
  std::optional<Value> ConstantValue() const override {
    return inner_->ConstantValue();
  }
  bool ReferencedFields(std::vector<std::string>* out) const override {
    return inner_->ReferencedFields(out);
  }
  exec::KernelPtr CompileKernel(const Schema& schema) const override {
    return exec::MakeColumnCacheKernel(cache_, slot_,
                                       inner_->CompileKernel(schema));
  }

 private:
  ExprPtr inner_;
  std::shared_ptr<exec::ColumnCache> cache_;
  size_t slot_;
};

}  // namespace

CsePlan PlanCse(std::vector<ExprPtr> roots) {
  CsePlan plan;
  auto cache = std::make_shared<CseCache>();
  plan.roots = CseRun(std::move(roots),
                      [&cache](const ExprPtr& rep) -> ExprPtr {
                        cache->slots.emplace_back();
                        return std::make_shared<CachedExpr>(
                            rep, cache, cache->slots.size() - 1);
                      },
                      &plan.num_shared);
  if (plan.num_shared > 0) plan.cache = std::move(cache);
  return plan;
}

KernelCsePlan PlanKernelCse(std::vector<ExprPtr> roots) {
  KernelCsePlan plan;
  auto cache = std::make_shared<exec::ColumnCache>();
  plan.roots = CseRun(std::move(roots),
                      [&cache](const ExprPtr& rep) -> ExprPtr {
                        return std::make_shared<KernelCachedExpr>(
                            rep, cache, cache->AddSlot());
                      },
                      &plan.num_shared);
  if (plan.num_shared > 0) plan.cache = std::move(cache);
  return plan;
}

}  // namespace nebulameos::nebula

#include "nebula/buffer_manager.hpp"

namespace nebulameos::nebula {

std::shared_ptr<BufferManager> BufferManager::Create(Schema schema,
                                                     size_t tuples_per_buffer,
                                                     size_t pool_size) {
  return std::shared_ptr<BufferManager>(
      new BufferManager(std::move(schema), tuples_per_buffer, pool_size));
}

BufferManager::BufferManager(Schema schema, size_t tuples_per_buffer,
                             size_t pool_size)
    : schema_(std::move(schema)),
      tuples_per_buffer_(tuples_per_buffer),
      pool_size_(pool_size) {
  free_.reserve(pool_size_);
  for (size_t i = 0; i < pool_size_; ++i) {
    free_.push_back(
        std::make_unique<TupleBuffer>(schema_, tuples_per_buffer_));
  }
}

TupleBufferPtr BufferManager::Acquire() {
  MutexLock lock(mutex_);
  while (free_.empty()) cv_.Wait(mutex_);
  auto buf = std::move(free_.back());
  free_.pop_back();
  total_acquired_.fetch_add(1, std::memory_order_relaxed);
  lock.Unlock();
  return Wrap(std::move(buf));
}

TupleBufferPtr BufferManager::TryAcquire() {
  MutexLock lock(mutex_);
  if (free_.empty()) return nullptr;
  auto buf = std::move(free_.back());
  free_.pop_back();
  total_acquired_.fetch_add(1, std::memory_order_relaxed);
  lock.Unlock();
  return Wrap(std::move(buf));
}

size_t BufferManager::available() const {
  MutexLock lock(mutex_);
  return free_.size();
}

TupleBufferPtr BufferManager::Wrap(std::unique_ptr<TupleBuffer> buf) {
  buf->Reset();
  TupleBuffer* raw = buf.release();
  auto self = shared_from_this();
  return TupleBufferPtr(raw, [self](TupleBuffer* b) {
    self->Recycle(std::unique_ptr<TupleBuffer>(b));
  });
}

void BufferManager::Recycle(std::unique_ptr<TupleBuffer> buf) {
  {
    MutexLock lock(mutex_);
    free_.push_back(std::move(buf));
  }
  cv_.NotifyOne();
}

}  // namespace nebulameos::nebula

/// \file operator.hpp
/// \brief The physical operator interface and execution context.
///
/// Queries compile into chains of `Operator`s executed inside one pipeline
/// (operator fusion: a buffer flows through the whole chain without
/// queueing, as in NebulaStream's compiled pipelines). Operators are
/// constructed with their *input schema* — expression binding happens at
/// build time, so malformed queries fail at submission, not mid-stream.
///
/// `ExecutionContext` provides pooled buffer allocation (one
/// `BufferManager` per distinct output schema) and is shared by all
/// operators of a running query.

#pragma once

#include <map>

#include "common/function_ref.hpp"
#include "nebula/buffer_manager.hpp"
#include "nebula/exec/batch.hpp"
#include "nebula/expr.hpp"

namespace nebulameos::nebula {

/// \brief Per-operator flow counters (events and bytes in/out).
struct OperatorStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;

  /// Fraction of input events that produced output (1.0 when no input).
  double Selectivity() const {
    return events_in == 0
               ? 1.0
               : static_cast<double>(events_out) /
                     static_cast<double>(events_in);
  }
};

/// \brief Shared runtime services for one query execution.
class ExecutionContext {
 public:
  /// \p tuples_per_buffer and \p pool_size shape every pool this context
  /// creates (one pool per distinct schema).
  explicit ExecutionContext(size_t tuples_per_buffer = 1024,
                            size_t pool_size = 128)
      : tuples_per_buffer_(tuples_per_buffer), pool_size_(pool_size) {}

  /// Allocates an empty pooled buffer shaped for \p schema (blocking when
  /// the pool is exhausted — backpressure).
  TupleBufferPtr Allocate(const Schema& schema);

  size_t tuples_per_buffer() const { return tuples_per_buffer_; }

  /// Total buffers handed out across every pool of this context — the
  /// pool-accounting number behind the zero-copy fan-out acceptance: a
  /// branch hand-off shares the batch instead of drawing a copy, so this
  /// must not scale with branch count.
  uint64_t TotalBuffersAcquired() const;

 private:
  size_t tuples_per_buffer_;
  size_t pool_size_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<BufferManager>> pools_;
};

/// \brief Base class of all physical operators.
class Operator {
 public:
  /// Downstream hand-off: the operator calls this for each output buffer.
  /// A non-owning `FunctionRef` (not `std::function`): the emit callable
  /// lives on the caller's stack for the duration of `Process`, and the
  /// compiled pipeline's inner loop crosses this hop once per buffer per
  /// operator — it must not pay a type-erased copy each time.
  using EmitFn = FunctionRef<void(const TupleBufferPtr&)>;

  /// Batch-path hand-off: output batches may share the input buffer with
  /// a selection vector (zero-copy).
  using BatchEmitFn = FunctionRef<void(const exec::Batch&)>;

  virtual ~Operator() = default;

  /// Operator display name ("Filter", "WindowAgg", ...).
  virtual std::string name() const = 0;

  /// Schema of the buffers this operator emits.
  virtual const Schema& output_schema() const = 0;

  /// Called once before processing; stores the execution context.
  virtual Status Open(ExecutionContext* ctx) {
    ctx_ = ctx;
    return Status::OK();
  }

  /// Processes one input buffer, emitting zero or more output buffers.
  virtual Status Process(const TupleBufferPtr& input, const EmitFn& emit) = 0;

  /// Batch-at-a-time path driven by the engine: \p input may carry a
  /// selection vector over a shared, sealed buffer. The default bridges to
  /// `Process` — a partial selection is first materialized into a pooled
  /// buffer (one gather), a full batch passes its buffer straight through.
  /// Selection-aware operators (filters, compiled kernel runs, sinks)
  /// override this to consume or refine the selection without the copy.
  virtual Status ProcessBatch(const exec::Batch& input,
                              const BatchEmitFn& emit);

  /// End-of-stream: flush any remaining state (window panes, open runs).
  virtual Status Finish(const EmitFn& /*emit*/) { return Status::OK(); }

  /// Flow counters.
  const OperatorStats& stats() const { return stats_; }

  /// Appends this operator's flow counters to \p out keyed by
  /// `prefix + name()`. Fused batch-kernel operators expand to one entry
  /// per fused logical stage, in chain order, so plan-shaped consumers
  /// (`QueryStats::operator_stats`, the placement pass) see the same
  /// sequence whether or not the chain was fused.
  virtual void AppendStats(
      const std::string& prefix,
      std::vector<std::pair<std::string, OperatorStats>>* out) const {
    out->emplace_back(prefix + name(), stats_);
  }

 protected:
  /// Records an input buffer in the stats.
  void CountIn(const TupleBuffer& buf) {
    stats_.events_in += buf.size();
    stats_.bytes_in += buf.SizeBytes();
  }

  /// Records an input batch (selected rows only) in the stats.
  void CountIn(const exec::Batch& batch) {
    stats_.events_in += batch.NumRows();
    stats_.bytes_in += batch.SizeBytes();
  }

  /// Records an output buffer in the stats.
  void CountOut(const TupleBuffer& buf) {
    stats_.events_out += buf.size();
    stats_.bytes_out += buf.SizeBytes();
  }

  /// Records an output batch (selected rows only) in the stats.
  void CountOut(const exec::Batch& batch) {
    stats_.events_out += batch.NumRows();
    stats_.bytes_out += batch.SizeBytes();
  }

  ExecutionContext* ctx_ = nullptr;
  OperatorStats stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace nebulameos::nebula

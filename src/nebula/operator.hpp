/// \file operator.hpp
/// \brief The physical operator interface and execution context.
///
/// Queries compile into chains of `Operator`s executed inside one pipeline
/// (operator fusion: a buffer flows through the whole chain without
/// queueing, as in NebulaStream's compiled pipelines). Operators are
/// constructed with their *input schema* — expression binding happens at
/// build time, so malformed queries fail at submission, not mid-stream.
///
/// `ExecutionContext` provides pooled buffer allocation (one
/// `BufferManager` per distinct output schema) and is shared by all
/// operators of a running query.

#pragma once

#include <map>

#include "nebula/buffer_manager.hpp"
#include "nebula/expr.hpp"

namespace nebulameos::nebula {

/// \brief Per-operator flow counters (events and bytes in/out).
struct OperatorStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;

  /// Fraction of input events that produced output (1.0 when no input).
  double Selectivity() const {
    return events_in == 0
               ? 1.0
               : static_cast<double>(events_out) /
                     static_cast<double>(events_in);
  }
};

/// \brief Shared runtime services for one query execution.
class ExecutionContext {
 public:
  /// \p tuples_per_buffer and \p pool_size shape every pool this context
  /// creates (one pool per distinct schema).
  explicit ExecutionContext(size_t tuples_per_buffer = 1024,
                            size_t pool_size = 128)
      : tuples_per_buffer_(tuples_per_buffer), pool_size_(pool_size) {}

  /// Allocates an empty pooled buffer shaped for \p schema (blocking when
  /// the pool is exhausted — backpressure).
  TupleBufferPtr Allocate(const Schema& schema);

  size_t tuples_per_buffer() const { return tuples_per_buffer_; }

 private:
  size_t tuples_per_buffer_;
  size_t pool_size_;
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<BufferManager>> pools_;
};

/// \brief Base class of all physical operators.
class Operator {
 public:
  /// Downstream hand-off: the operator calls this for each output buffer.
  using EmitFn = std::function<void(const TupleBufferPtr&)>;

  virtual ~Operator() = default;

  /// Operator display name ("Filter", "WindowAgg", ...).
  virtual std::string name() const = 0;

  /// Schema of the buffers this operator emits.
  virtual const Schema& output_schema() const = 0;

  /// Called once before processing; stores the execution context.
  virtual Status Open(ExecutionContext* ctx) {
    ctx_ = ctx;
    return Status::OK();
  }

  /// Processes one input buffer, emitting zero or more output buffers.
  virtual Status Process(const TupleBufferPtr& input, const EmitFn& emit) = 0;

  /// End-of-stream: flush any remaining state (window panes, open runs).
  virtual Status Finish(const EmitFn& /*emit*/) { return Status::OK(); }

  /// Flow counters.
  const OperatorStats& stats() const { return stats_; }

 protected:
  /// Records an input buffer in the stats.
  void CountIn(const TupleBuffer& buf) {
    stats_.events_in += buf.size();
    stats_.bytes_in += buf.SizeBytes();
  }

  /// Records an output buffer in the stats.
  void CountOut(const TupleBuffer& buf) {
    stats_.events_out += buf.size();
    stats_.bytes_out += buf.SizeBytes();
  }

  ExecutionContext* ctx_ = nullptr;
  OperatorStats stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace nebulameos::nebula

/// \file operator.hpp
/// \brief The physical operator interface and execution context.
///
/// Queries compile into chains of `Operator`s executed inside one pipeline
/// (operator fusion: a buffer flows through the whole chain without
/// queueing, as in NebulaStream's compiled pipelines). Operators are
/// constructed with their *input schema* — expression binding happens at
/// build time, so malformed queries fail at submission, not mid-stream.
///
/// `ExecutionContext` provides pooled buffer allocation (one
/// `BufferManager` per distinct output schema) and is shared by all
/// operators of a running query.

#pragma once

#include <atomic>
#include <map>

#include "common/function_ref.hpp"
#include "nebula/buffer_manager.hpp"
#include "nebula/exec/batch.hpp"
#include "nebula/expr.hpp"
#include "nebula/metrics/metrics.hpp"

namespace nebulameos::nebula {

/// \brief Per-operator flow counters (events and bytes in/out).
struct OperatorStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Records shed instead of processed: late arrivals a stateful operator
  /// refused (its monotonicity guard) or frames dropped by a degradation
  /// policy. 0 for operators that never shed.
  uint64_t events_shed = 0;

  /// Fraction of input events that produced output (1.0 when no input).
  double Selectivity() const {
    return events_in == 0
               ? 1.0
               : static_cast<double>(events_out) /
                     static_cast<double>(events_in);
  }

  /// Element-wise accumulation — the aggregation step behind summing one
  /// logical operator's counters over its per-partition clones.
  void Add(const OperatorStats& other) {
    events_in += other.events_in;
    events_out += other.events_out;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    events_shed += other.events_shed;
  }
};

/// \brief The live, updatable form of `OperatorStats`: relaxed atomics so
/// an operator owned by one worker strand can count flow while another
/// thread snapshots `Stats()` mid-run without a data race. Each counter is
/// written by at most one thread at a time (the strand guarantee), so
/// relaxed increments are exact; readers see a near-current snapshot.
class FlowCounters {
 public:
  void AddIn(uint64_t events, uint64_t bytes) {
    events_in_.fetch_add(events, std::memory_order_relaxed);
    bytes_in_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void AddOut(uint64_t events, uint64_t bytes) {
    events_out_.fetch_add(events, std::memory_order_relaxed);
    bytes_out_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void AddShed(uint64_t events) {
    events_shed_.fetch_add(events, std::memory_order_relaxed);
  }

  OperatorStats Snapshot() const {
    OperatorStats s;
    s.events_in = events_in_.load(std::memory_order_relaxed);
    s.events_out = events_out_.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    s.events_shed = events_shed_.load(std::memory_order_relaxed);
    return s;
  }

  // Value-copyable (atomics are not), so structs holding counters stay
  // movable. Only safe while no other thread is mutating `other`.
  FlowCounters() = default;
  FlowCounters(const FlowCounters& other) { *this = other; }
  FlowCounters& operator=(const FlowCounters& other) {
    events_in_.store(other.events_in_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    events_out_.store(other.events_out_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    bytes_in_.store(other.bytes_in_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    bytes_out_.store(other.bytes_out_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    events_shed_.store(other.events_shed_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> events_in_{0};
  std::atomic<uint64_t> events_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> events_shed_{0};
};

/// \brief Shared runtime services for one query execution.
class ExecutionContext {
 public:
  /// \p tuples_per_buffer and \p pool_size shape every pool this context
  /// creates (one pool per distinct schema).
  explicit ExecutionContext(size_t tuples_per_buffer = 1024,
                            size_t pool_size = 128)
      : tuples_per_buffer_(tuples_per_buffer), pool_size_(pool_size) {}

  /// Allocates an empty pooled buffer shaped for \p schema (blocking when
  /// the pool is exhausted — backpressure).
  TupleBufferPtr Allocate(const Schema& schema);

  size_t tuples_per_buffer() const { return tuples_per_buffer_; }

  /// Total buffers handed out across every pool of this context — the
  /// pool-accounting number behind the zero-copy fan-out acceptance: a
  /// branch hand-off shares the batch instead of drawing a copy, so this
  /// must not scale with branch count.
  uint64_t TotalBuffersAcquired() const;

 private:
  size_t tuples_per_buffer_;
  size_t pool_size_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<BufferManager>> pools_;
};

/// \brief Base class of all physical operators.
class Operator {
 public:
  /// Downstream hand-off: the operator calls this for each output buffer.
  /// A non-owning `FunctionRef` (not `std::function`): the emit callable
  /// lives on the caller's stack for the duration of `Process`, and the
  /// compiled pipeline's inner loop crosses this hop once per buffer per
  /// operator — it must not pay a type-erased copy each time.
  using EmitFn = FunctionRef<void(const TupleBufferPtr&)>;

  /// Batch-path hand-off: output batches may share the input buffer with
  /// a selection vector (zero-copy).
  using BatchEmitFn = FunctionRef<void(const exec::Batch&)>;

  virtual ~Operator() = default;

  /// Operator display name ("Filter", "WindowAgg", ...).
  virtual std::string name() const = 0;

  /// Schema of the buffers this operator emits.
  virtual const Schema& output_schema() const = 0;

  /// Called once before processing; stores the execution context.
  virtual Status Open(ExecutionContext* ctx) {
    ctx_ = ctx;
    return Status::OK();
  }

  /// Processes one input buffer, emitting zero or more output buffers.
  virtual Status Process(const TupleBufferPtr& input, const EmitFn& emit) = 0;

  /// Batch-at-a-time path driven by the engine: \p input may carry a
  /// selection vector over a shared, sealed buffer. The default bridges to
  /// `Process` — a partial selection is first materialized into a pooled
  /// buffer (one gather), a full batch passes its buffer straight through.
  /// Selection-aware operators (filters, compiled kernel runs, sinks)
  /// override this to consume or refine the selection without the copy.
  virtual Status ProcessBatch(const exec::Batch& input,
                              const BatchEmitFn& emit);

  /// End-of-stream: flush any remaining state (window panes, open runs).
  virtual Status Finish(const EmitFn& /*emit*/) { return Status::OK(); }

  /// Flow counters snapshot (safe to call while the operator runs on a
  /// different thread; see `FlowCounters`).
  OperatorStats stats() const { return stats_.Snapshot(); }

  /// Appends this operator's flow counters to \p out keyed by
  /// `prefix + name()`. Fused batch-kernel operators expand to one entry
  /// per fused logical stage, in chain order, so plan-shaped consumers
  /// (`QueryStats::operator_stats`, the placement pass) see the same
  /// sequence whether or not the chain was fused. Thread-safe: counters
  /// are snapshotted atomically per entry.
  virtual void AppendStats(
      const std::string& prefix,
      std::vector<std::pair<std::string, OperatorStats>>* out) const {
    out->emplace_back(prefix + name(), stats_.Snapshot());
  }

  /// Resolves this operator's instruments from \p registry under the DAG
  /// prefix the engine also uses for `AppendStats` keys: the default binds
  /// the process-latency and batch-size histograms
  /// `op.<prefix><name()>.process_micros` / `.batch_rows` that the engine
  /// records into around each `ProcessBatch` call (self-time: downstream
  /// time is subtracted). Fused batch-kernel operators override this to
  /// bind one histogram pair per fused stage under the original chained
  /// names ("Filter", "Map", ...) and time stages themselves — metric
  /// names then match the unfused chain, the same parity contract
  /// `AppendStats` keeps. Called once before the query starts; instrument
  /// pointers stay valid as long as the registry (the running query).
  virtual void BindMetrics(metrics::MetricsRegistry* registry,
                           const std::string& prefix) {
    process_micros_ =
        registry->GetHistogram("op." + prefix + name() + ".process_micros");
    batch_rows_ =
        registry->GetHistogram("op." + prefix + name() + ".batch_rows");
  }

  /// Records one timed `ProcessBatch` call (engine-side; no-op until
  /// `BindMetrics` ran). Lock-free.
  void RecordProcess(int64_t self_micros, uint64_t rows_in) {
    if (process_micros_ == nullptr) return;
    process_micros_->Record(self_micros);
    batch_rows_->Record(static_cast<int64_t>(rows_in));
  }

 protected:
  /// Records an input buffer in the stats.
  void CountIn(const TupleBuffer& buf) {
    stats_.AddIn(buf.size(), buf.SizeBytes());
  }

  /// Records an input batch (selected rows only) in the stats.
  void CountIn(const exec::Batch& batch) {
    stats_.AddIn(batch.NumRows(), batch.SizeBytes());
  }

  /// Records an output buffer in the stats.
  void CountOut(const TupleBuffer& buf) {
    stats_.AddOut(buf.size(), buf.SizeBytes());
  }

  /// Records an output batch (selected rows only) in the stats.
  void CountOut(const exec::Batch& batch) {
    stats_.AddOut(batch.NumRows(), batch.SizeBytes());
  }

  /// Records \p events records shed by a monotonicity guard or
  /// degradation policy, mirroring into the `late_shed` instrument when
  /// one is bound (`BindLateShed`).
  void CountShed(uint64_t events) {
    stats_.AddShed(events);
    if (late_shed_counter_ != nullptr) late_shed_counter_->Add(events);
  }

  /// Stateful operators with a monotonicity guard call this from their
  /// `BindMetrics` override to surface `op.<prefix><name>.late_shed`.
  void BindLateShed(metrics::MetricsRegistry* registry,
                    const std::string& prefix) {
    late_shed_counter_ =
        registry->GetCounter("op." + prefix + name() + ".late_shed");
  }

  ExecutionContext* ctx_ = nullptr;
  FlowCounters stats_;
  metrics::Histogram* process_micros_ = nullptr;  ///< null until bound
  metrics::Histogram* batch_rows_ = nullptr;      ///< null until bound
  metrics::Counter* late_shed_counter_ = nullptr;  ///< null until bound
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace nebulameos::nebula

/// \file expr.hpp
/// \brief The expression framework: typed expression trees over records,
/// with a dynamic function registry.
///
/// This is NebulaStream's extension mechanism as the paper uses it: custom
/// operators and functions are "developed through inheritance and
/// composition", and "runtime operator definition through dynamic
/// registration" lets third-party libraries contribute domain logic. The
/// MEOS integration registers `edwithin`, `tpoint_at_stbox` and friends as
/// `FunctionExpression`s in the global `ExpressionRegistry`
/// (see src/nebulameos/meos_expressions.hpp).
///
/// Expressions are built unbound (field names), then `Bind(schema)` resolves
/// names to indices/types once per query before execution.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {

namespace exec {
class ScalarKernel;
using KernelPtr = std::unique_ptr<ScalarKernel>;
class ColumnCache;
}  // namespace exec

/// Runtime value produced by expression evaluation.
using Value = std::variant<bool, int64_t, double, std::string>;

/// Numeric widening read of a value (bool → 0/1, text → error-free 0).
double ValueAsDouble(const Value& v);
/// Truthiness of a value.
bool ValueAsBool(const Value& v);
/// Integer read (doubles truncate).
int64_t ValueAsInt64(const Value& v);
/// Display form of a value.
std::string ValueToString(const Value& v);

class Expression;
/// Shared expression handle (trees are immutable after Bind).
using ExprPtr = std::shared_ptr<Expression>;

/// \brief Base class of all expression nodes.
class Expression {
 public:
  virtual ~Expression() = default;

  /// Resolves field references against \p schema. Must be called before
  /// `Eval`. Idempotent.
  virtual Status Bind(const Schema& schema) = 0;

  /// Evaluates the expression on one record. Requires a prior `Bind`.
  virtual Value Eval(const RecordView& rec) const = 0;

  /// The output type after binding.
  virtual DataType output_type() const = 0;

  /// Debug/display form, e.g. "(speed > 22.2)".
  virtual std::string ToString() const = 0;

  /// The compile-time constant value of this node, when it is a literal.
  /// Extension functions use this to resolve configuration arguments (zone
  /// names, box bounds) once at bind time.
  virtual std::optional<Value> ConstantValue() const { return std::nullopt; }

  /// Appends the names of the record fields this expression (transitively)
  /// reads to \p out and returns true. Returns false when the read set
  /// cannot be determined — the conservative default for extension nodes
  /// that do not override it — in which case optimizer passes must treat
  /// the expression as reading *every* field and leave it in place.
  /// Built-in nodes and every `FunctionExpression` subclass report exactly.
  virtual bool ReferencedFields(std::vector<std::string>* out) const {
    (void)out;
    return false;
  }

  /// Lowers this expression to a type-specialized batch kernel whose field
  /// leaves read fixed offsets of \p schema's record layout
  /// (exec/compiled_expr.hpp). Returns nullptr when the node or any
  /// subtree cannot be compiled (text comparisons, extension nodes without
  /// a scalar hook) — callers fall back to interpreted `Eval`. Must be
  /// called after `Bind(schema)` with the same schema, and the returned
  /// kernel may reference this expression: keep the tree alive for the
  /// kernel's lifetime.
  virtual exec::KernelPtr CompileKernel(const Schema& schema) const;
};

// --- Node constructors -------------------------------------------------------

/// Reference to the record field \p name (NebulaStream's `Attribute`).
ExprPtr Attribute(std::string name);

/// Boolean literal.
ExprPtr Lit(bool v);
/// Integer literal.
ExprPtr Lit(int64_t v);
/// Integer literal (convenience for int).
ExprPtr Lit(int v);
/// Double literal.
ExprPtr Lit(double v);
/// Text literal.
ExprPtr Lit(std::string v);

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
/// Binary arithmetic node (int64 when both sides are integers and the
/// operation is closed; double otherwise).
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

/// Comparison operators.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };
/// Binary comparison node (numeric sides compare as doubles; two text sides
/// compare lexicographically).
ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);

/// Logical conjunction (short-circuit).
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
/// Logical disjunction (short-circuit).
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
/// Logical negation.
ExprPtr Not(ExprPtr inner);

// --- Extensible functions ----------------------------------------------------

/// \brief Base class for registered n-ary functions.
///
/// Subclasses implement `EvalFn` over evaluated argument values and declare
/// their output type; `Bind` recursively binds arguments. Domain extensions
/// (the MEOS operators) subclass this — composition with any other
/// expression node comes for free.
class FunctionExpression : public Expression {
 public:
  FunctionExpression(std::string name, std::vector<ExprPtr> args,
                     DataType output_type)
      : name_(std::move(name)),
        args_(std::move(args)),
        output_type_(output_type) {}

  Status Bind(const Schema& schema) override;
  Value Eval(const RecordView& rec) const override;
  DataType output_type() const override { return output_type_; }
  std::string ToString() const override;
  bool ReferencedFields(std::vector<std::string>* out) const override;

  /// Generic batch compilation for registered functions: when the subclass
  /// opts in (`ScalarEvaluable`), every runtime argument compiles to a
  /// kernel column and `EvalScalar` runs once per row over unboxed
  /// doubles — no `Value` boxing, no per-row vector allocation.
  exec::KernelPtr CompileKernel(const Schema& schema) const override;

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 protected:
  /// Implements the function over already-evaluated argument values.
  virtual Value EvalFn(const std::vector<Value>& args) const = 0;

  /// Batch-compiler opt-in: true when `EvalScalar` implements this
  /// function over unboxed numeric arguments (bind-time configuration
  /// already resolved). Default false: the function only interprets.
  virtual bool ScalarEvaluable() const { return false; }

  /// Unboxed per-record evaluation: `args[i]` is the i-th argument widened
  /// to double (`ValueAsDouble` semantics; constant text arguments widen
  /// to 0 — they are bind-time configuration, not runtime inputs).
  /// Booleans return 0/1; integer results must be integral-valued.
  ///
  /// Precision contract: integer/timestamp arguments round-trip through
  /// double, so they are exact only up to 2^53. Microsecond-epoch
  /// timestamps stay exact until the year 2255; a function whose integer
  /// arguments can exceed 2^53 must not opt in (leave `ScalarEvaluable`
  /// false — the interpreter keeps int64 exact).
  virtual double EvalScalar(const double* args) const {
    (void)args;
    return 0.0;
  }

  /// Hook called at the end of `Bind` (argument types are known).
  virtual Status OnBind(const Schema& schema);

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  DataType output_type_;
};

/// \brief Global registry mapping function names to factories — the runtime
/// plugin mechanism.
class ExpressionRegistry {
 public:
  /// Factory: builds a function expression from argument expressions.
  using Factory =
      std::function<Result<ExprPtr>(std::vector<ExprPtr> args)>;

  /// The process-wide registry.
  static ExpressionRegistry& Global();

  /// Registers \p factory under \p name; fails when already registered.
  Status Register(const std::string& name, Factory factory);

  /// True iff \p name is registered.
  bool Contains(const std::string& name) const;

  /// Instantiates the function \p name with \p args.
  Result<ExprPtr> Create(const std::string& name,
                         std::vector<ExprPtr> args) const;

  /// All registered names (sorted).
  std::vector<std::string> RegisteredNames() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Factory> factories_;
};

/// Instantiates a registered function from the global registry (asserts
/// existence; use `ExpressionRegistry::Create` for fallible lookup).
ExprPtr Fn(const std::string& name, std::vector<ExprPtr> args);

/// \brief Builds a function expression from a plain callable — the
/// lightweight path for runtime operator definition (no subclass needed).
/// \p fn receives the evaluated argument values.
ExprPtr MakeLambdaExpr(std::string name, std::vector<ExprPtr> args,
                       DataType output_type,
                       std::function<Value(const std::vector<Value>&)> fn);

/// \brief Registers a lambda-backed function of fixed \p arity under
/// \p name in the global registry.
Status RegisterLambdaFunction(
    const std::string& name, size_t arity, DataType output_type,
    std::function<Value(const std::vector<Value>&)> fn);

/// Registers the built-in math functions ("abs", "sqrt", "least",
/// "greatest", "clamp"). Called once from the engine; safe to call again.
void RegisterBuiltinFunctions();

/// \brief True when \p a and \p b are structurally identical expressions
/// with identical semantics: same node kinds, operators, field names,
/// literal values/types, and (for function expressions) the same function
/// name with structurally equal arguments — registry names identify
/// semantics, so two instantiations of one registered function compare
/// equal. Conservative: any node kind the comparison does not understand
/// (extension expressions subclassing `Expression` directly) compares
/// unequal. Used by the optimizer to prove a filter is demanded by every
/// fan-out branch before hoisting it.
bool StructurallyEqual(const ExprPtr& a, const ExprPtr& b);

/// \brief True when \p expr is safe to treat as *identified by its
/// structure* across independently submitted plans: every node is either a
/// built-in (field/literal/arith/compare/logical/not) or a
/// `FunctionExpression` whose name is registered in the global
/// `ExpressionRegistry` — registered names carry process-wide semantics, so
/// two structurally equal trees compute the same thing. Ad-hoc
/// `MakeLambdaExpr` nodes and unknown extension kinds return false: their
/// names do not pin behaviour, so structural equality would not imply
/// semantic equality. The serving layer requires this before merging
/// operator prefixes across queries.
bool ExpressionMergeSafe(const ExprPtr& expr);

/// \brief Structurally rebuilds \p expr with every constant subtree
/// pre-evaluated into a literal (e.g. `(3.6 * 2)` → `7.2`), setting
/// \p *changed when anything folded. Only pure built-in nodes fold —
/// arithmetic, comparisons, AND/OR/NOT; function expressions and extension
/// nodes are left in place (they may read global state such as the active
/// geofence catalog). Folding reuses the nodes' own `Eval`, so semantics
/// (integer widening, division-by-zero behaviour) match runtime exactly.
ExprPtr FoldConstants(const ExprPtr& expr, bool* changed);

// --- Common-subexpression elimination (interpreter path) ---------------------

/// \brief Per-record memoization state backing `PlanCse`-rewritten trees:
/// one slot per distinct shared subexpression. Invalidation is by epoch —
/// the evaluating operator calls `BeginRecord()` before each record and
/// stale slots simply miss; nothing is cleared. Single-evaluator state:
/// the owning operator instance runs on one strand, so plain fields need
/// no synchronization.
struct CseCache {
  struct Slot {
    /// Initialized to a value no real epoch reaches, so the first Eval of
    /// a slot always computes even if epochs started at 0.
    uint64_t epoch = ~uint64_t{0};
    Value value = false;
  };

  uint64_t epoch = 0;
  std::vector<Slot> slots;

  /// Starts a new record: previously cached values become stale.
  void BeginRecord() { ++epoch; }
};

/// \brief Result of `PlanCse` over one operator's expression trees.
struct CsePlan {
  /// The rewritten trees, position-for-position with the input roots.
  /// Rebuilt nodes are unbound — callers bind (or re-bind) against their
  /// input schema before evaluating. Unchanged when nothing was shared.
  std::vector<ExprPtr> roots;
  /// The shared memoization cache; null when `num_shared == 0` (callers
  /// then skip the per-record `BeginRecord`).
  std::shared_ptr<CseCache> cache;
  /// Distinct subexpressions now computed once per record.
  size_t num_shared = 0;
};

/// \brief Memoizes repeated subexpressions across \p roots — the trees one
/// operator evaluates per record (a filter's predicate, a map's computed
/// fields). Every subexpression occurring more than once (by
/// `StructurallyEqual`) is replaced with a caching wrapper evaluating the
/// subtree once per record; later occurrences reuse the slot. Wrappers are
/// lazy, so And/Or short-circuiting still skips whole subtrees — a skipped
/// occurrence computes nothing, and the slot fills at the first occurrence
/// actually reached.
///
/// Conservative by construction: only subtrees whose ancestors are all
/// built-in arithmetic/comparison/logical/NOT nodes are replaced (anything
/// below a function call would require rebuilding the enclosing function
/// node, whose concrete subclass is unknown), and bare field references
/// and literals are never cached (the wrapper would cost more than the
/// read). The compiled-kernel path never sees these trees — CSE is the
/// interpreter fallback's optimization.
CsePlan PlanCse(std::vector<ExprPtr> roots);

// --- Common-subexpression elimination (compiled path) ------------------------

/// \brief Result of `PlanKernelCse` over the expression roots of one fused
/// kernel run (consecutive filter predicates plus the map specs that share
/// their input buffer).
struct KernelCsePlan {
  /// Rewritten trees, position-for-position with the input roots. Shared
  /// subtrees are wrapped so their *compiled kernels* write/read a cached
  /// column; interpreted `Eval` of a wrapper simply delegates (the
  /// interpreter fallback stays correct without the cache).
  std::vector<ExprPtr> roots;
  /// Cross-stage computed-column cache the wrappers' kernels share; null
  /// when `num_shared == 0`. The owning `BatchKernelOperator` invalidates
  /// it once per input batch.
  std::shared_ptr<exec::ColumnCache> cache;
  /// Distinct subexpressions now computed once per batch.
  size_t num_shared = 0;
};

/// \brief Kernel-level CSE: shares repeated subexpressions across the
/// stages of one fused `BatchKernelOperator` run. `PlanCse` covers only the
/// interpreter path; fused batch kernels previously recomputed shared
/// subtrees per stage. Each repeated subtree (by `StructurallyEqual`, same
/// conservative ancestor/triviality rules as `PlanCse`) compiles into a
/// kernel that materializes the column once per input batch — scattered by
/// physical row index — and later occurrences gather the cached values.
/// Sound because batch kernels evaluate every row of the span they are
/// given (no row-level short-circuit) and stage selections only shrink, so
/// the first evaluation always covers every row later stages revisit.
KernelCsePlan PlanKernelCse(std::vector<ExprPtr> roots);

}  // namespace nebulameos::nebula

/// \file plan_verifier.hpp
/// \brief Static analysis over the `LogicalPlan` IR: a pluggable rule
/// engine that proves — or refutes, with actionable diagnostics — the
/// invariants the optimizer, placement pass and serving layer all lean on.
///
/// Eight layers of rewrites (pushdown across joins and fan-outs, fusion,
/// CSE, placement cuts, prefix merging) mean a subtly malformed plan can
/// otherwise surface only as wrong rows or a TSan hit much later. The
/// verifier checks each invariant right where it can still name the
/// culprit:
///
///   - `structure`              — root-to-leaf termination, fan-out arity,
///                                KeyBy consumption (Validate, rule-wrapped)
///   - `schema-derivation`      — every operator lowers against the schema
///                                reaching it (emitted by the facts walk)
///   - `field-provenance`       — every `ReferencedFields` read set,
///                                projection list, join/key/time field is
///                                resolvable at that point in the DAG
///   - `window-wellformed`      — window/CEP key and time fields exist and
///                                carry time-typed values; sizes positive;
///                                aggregates name real input fields
///   - `placement-soundness`    — fully annotated once placed, monotone
///                                edge→cloud along every path (no node
///                                revisits, no cloud→edge backhops), routes
///                                exist, sinks off the edge
///   - `merge-safety`           — shared-prefix plans carry only
///                                `ExpressionMergeSafe` expressions and
///                                merge-safe operator payloads
///   - `branch-schema-coherence`— every attached sink's declared schema
///                                equals the schema its leaf derives
///
/// Diagnostics carry the rule, the failing operator's DAG path and
/// placement annotation (rendered like `Explain`'s `@nodeN`), and the
/// verifier's error status appends the plan rendering — so a verify-each
/// failure reads like an LLVM `-verify-each` report: which pass, which
/// operator, what broke.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula::analysis {

/// \brief One verifier finding, addressable enough to act on.
struct Diagnostic {
  std::string rule;      ///< rule that fired ("field-provenance", ...)
  std::string path;      ///< DAG path of the chain ("" = root chain)
  size_t index = 0;      ///< operator position within that chain
  std::string op;        ///< `LogicalOperator::ToString()` of the culprit
  int placement = LogicalOperator::kUnplaced;  ///< its `@node` annotation
  std::string message;   ///< what is violated, in plan vocabulary

  /// `[rule] root chain op #1 -> Filter(...) @node2: message` — the same
  /// path/placement vocabulary `LogicalPlan::Explain` renders.
  std::string ToString() const;
};

/// \brief Inputs a verification runs under (beyond the plan itself).
struct VerifyContext {
  /// Placement routes are resolved against this when set; null skips the
  /// route/node-kind checks (structural placement checks still run).
  const Topology* topology = nullptr;
  /// The plan is (or is about to become) a shared-host prefix: every
  /// operator must additionally be merge-safe.
  bool shared_prefix = false;
  /// The plan is mid-construction (rewrite boundaries): leaf chains may
  /// still be waiting for their sinks (`SetLeafSinks`), so termination is
  /// not required — every other structural invariant still is.
  bool allow_unterminated = false;
};

/// \brief Precomputed traversal shared by all rules: every operator in
/// DFS order with its DAG path, chain index, and — where derivable — the
/// schema entering it. Derivation failures become `schema-derivation`
/// diagnostics; downstream nodes of a failed derivation carry a null
/// input schema and schema-dependent rules skip them.
class PlanFacts {
 public:
  struct Node {
    const LogicalOperator* op = nullptr;
    std::string path;
    size_t index = 0;
    const Schema* input = nullptr;  ///< schema entering; null = unknown
  };

  explicit PlanFacts(const LogicalPlan& plan);

  const LogicalPlan& plan() const { return *plan_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Source schema (null when the plan has no source).
  const Schema* source_schema() const { return source_schema_; }
  /// Findings of the derivation walk itself (rule "schema-derivation").
  const std::vector<Diagnostic>& derivation_diagnostics() const {
    return derivation_diags_;
  }

 private:
  void WalkChain(const std::vector<LogicalOperatorPtr>& ops,
                 const std::string& path, const Schema* input);
  const Schema* Intern(Schema schema);

  const LogicalPlan* plan_;
  const Schema* source_schema_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Diagnostic> derivation_diags_;
  /// Owns derived schemas; deque-like stability via unique_ptr.
  std::vector<std::unique_ptr<Schema>> schemas_;
};

/// \brief One pluggable invariant check.
class PlanRule {
 public:
  virtual ~PlanRule() = default;
  virtual std::string name() const = 0;
  virtual void Check(const PlanFacts& facts, const VerifyContext& ctx,
                     std::vector<Diagnostic>* out) const = 0;
};

using PlanRulePtr = std::unique_ptr<PlanRule>;

// Built-in rule factories (each checks what its header comment names).
PlanRulePtr MakeStructureRule();
PlanRulePtr MakeFieldProvenanceRule();
PlanRulePtr MakeWindowWellformedRule();
PlanRulePtr MakePlacementSoundnessRule();
PlanRulePtr MakeMergeSafetyRule();
PlanRulePtr MakeBranchSchemaCoherenceRule();

/// \brief The rule engine: runs every rule over one `PlanFacts` build and
/// either returns the findings (`Run`) or formats them into a
/// `FailedPrecondition` status with the plan rendering appended
/// (`Verify`).
class PlanVerifier {
 public:
  /// All built-in rules.
  static PlanVerifier Default();

  PlanVerifier& AddRule(PlanRulePtr rule);
  size_t NumRules() const { return rules_.size(); }

  std::vector<Diagnostic> Run(const LogicalPlan& plan,
                              const VerifyContext& ctx = {}) const;
  Status Verify(const LogicalPlan& plan, const VerifyContext& ctx = {}) const;

 private:
  std::vector<PlanRulePtr> rules_;
};

/// Convenience: `PlanVerifier::Default().Verify(plan, ctx)`.
Status VerifyPlan(const LogicalPlan& plan, const VerifyContext& ctx = {});

/// \brief True when every expression \p op carries is `ExpressionMergeSafe`
/// and its payload has provable cross-query identity (the sharing gate the
/// serving layer applies before merging prefixes; fan-outs and sinks are
/// never merge material). When false and \p why is non-null, \p why names
/// the offending payload.
bool OperatorMergeSafe(const LogicalOperator& op, std::string* why = nullptr);

}  // namespace nebulameos::nebula::analysis

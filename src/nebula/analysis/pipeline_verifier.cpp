#include "nebula/analysis/pipeline_verifier.hpp"

#include <map>

namespace nebulameos::nebula::analysis {

namespace {

std::string SegmentName(const CompiledPipeline& pipe) {
  return pipe.path.empty() ? std::string("segment <root>")
                           : "segment '" + pipe.path + "'";
}

void CheckSegment(const CompiledPipeline& pipe, const std::string& expected,
                  bool root, const PipelineVerifyContext& ctx,
                  std::vector<std::string>* out) {
  const std::string seg = SegmentName(pipe);
  if (pipe.path != expected) {
    out->push_back(seg + ": path should be '" + expected +
                   "' — per-path stats and Explain join on DAG paths");
  }

  // Exactly one continuation: sink leaf, fan-out, or partitioned suffix.
  const int shapes = (pipe.sink != nullptr ? 1 : 0) +
                     (pipe.branches.empty() ? 0 : 1) +
                     (pipe.partitions.empty() ? 0 : 1);
  if (shapes > 1) {
    out->push_back(seg +
                   ": sink / branches / partitions are mutually exclusive "
                   "continuations, but this segment carries " +
                   std::to_string(shapes));
  }
  if (shapes == 0 && !(root && ctx.expect_dynamic_tail)) {
    out->push_back(seg +
                   ": dead end — no sink, branches or partitions (only a "
                   "shared host awaiting dynamic branches may dangle)");
  }

  if (!pipe.operators.empty()) {
    const Schema& last = pipe.operators.back()->output_schema();
    if (!(pipe.output_schema == last)) {
      out->push_back(seg + ": declared output schema (" +
                     pipe.output_schema.ToString() +
                     ") != last operator's (" + last.ToString() + ")");
    }
  }

  // Network-channel lowering: sink/source adjacent, one channel per pair.
  size_t wire_pairs = 0;
  for (size_t i = 0; i < pipe.operators.size(); ++i) {
    const std::string name = pipe.operators[i]->name();
    if (name == "NetworkChannelSink") {
      ++wire_pairs;
      if (i + 1 >= pipe.operators.size() ||
          pipe.operators[i + 1]->name() != "NetworkChannelSource") {
        out->push_back(seg + ": NetworkChannelSink at op #" +
                       std::to_string(i) +
                       " not immediately followed by its "
                       "NetworkChannelSource — records would leave the "
                       "node and never come back");
      }
    } else if (name == "NetworkChannelSource") {
      if (i == 0 || pipe.operators[i - 1]->name() != "NetworkChannelSink") {
        out->push_back(seg + ": NetworkChannelSource at op #" +
                       std::to_string(i) + " without a paired sink");
      }
    }
  }
  if (wire_pairs != pipe.channels.size()) {
    out->push_back(seg + ": " + std::to_string(wire_pairs) +
                   " lowered transition(s) but " +
                   std::to_string(pipe.channels.size()) +
                   " channel(s) — the deployment report would miscount "
                   "wire traffic");
  }

  // Fault coherence: a channel armed with loss needs recovery machinery —
  // retained frames to retransmit from and a repair buffer to detect the
  // gap in. Without both, every injected drop is silent data loss even
  // under the strict kBlock policy.
  for (size_t c = 0; c < pipe.channels.size(); ++c) {
    const auto& ch = pipe.channels[c];
    if (ch == nullptr) {
      out->push_back(seg + ": channel #" + std::to_string(c) + " is null");
      continue;
    }
    const FaultProfile& profile = ch->fault_profile();
    const RetryOptions& retry = ch->retry_options();
    if (profile.drop_rate > 0.0 &&
        (retry.retain_limit < 1 || retry.reorder_capacity < 1)) {
      out->push_back(seg + ": channel " + ch->EndpointsString() +
                     " injects drops (rate " +
                     std::to_string(profile.drop_rate) +
                     ") but retry options disable recovery (retain_limit=" +
                     std::to_string(retry.retain_limit) +
                     ", reorder_capacity=" +
                     std::to_string(retry.reorder_capacity) +
                     ") — dropped frames could never be repaired");
    }
  }

  if (!pipe.partitions.empty()) {
    if (pipe.partition_key_index >= pipe.output_schema.num_fields()) {
      out->push_back(seg + ": partition key index " +
                     std::to_string(pipe.partition_key_index) +
                     " out of range for (" + pipe.output_schema.ToString() +
                     ")");
    } else {
      const DataType type =
          pipe.output_schema.field(pipe.partition_key_index).type;
      if (type != pipe.partition_key_type) {
        out->push_back(seg + ": partition key type " +
                       DataTypeName(pipe.partition_key_type) +
                       " != schema field type " + DataTypeName(type));
      }
    }
    const CompiledPipeline& first = pipe.partitions.front();
    for (size_t p = 0; p < pipe.partitions.size(); ++p) {
      const CompiledPipeline& clone = pipe.partitions[p];
      const std::string who = seg + " partition #" + std::to_string(p);
      if (clone.path != pipe.path) {
        out->push_back(who + ": path '" + clone.path +
                       "' differs from its segment — per-path stats would "
                       "split across clones");
      }
      if (!clone.branches.empty() || !clone.partitions.empty()) {
        out->push_back(who +
                       ": partition clones must be sequential chains (no "
                       "nested fan-out/partitioning)");
      }
      if (clone.sink == nullptr) {
        out->push_back(who + ": missing the shared terminal sink");
      } else if (clone.sink != first.sink) {
        out->push_back(who +
                       ": does not share the terminal sink with its sibling "
                       "clones — results would split across sinks");
      }
      // Instrument-name parity: metrics bind per operator name under one
      // path, so clones must carry identical operator name sequences.
      if (clone.operators.size() != first.operators.size()) {
        out->push_back(who + ": " + std::to_string(clone.operators.size()) +
                       " operators vs " +
                       std::to_string(first.operators.size()) +
                       " in partition #0 — instrument names would diverge");
        continue;
      }
      for (size_t i = 0; i < clone.operators.size(); ++i) {
        if (clone.operators[i]->name() != first.operators[i]->name()) {
          out->push_back(who + ": op #" + std::to_string(i) + " is " +
                         clone.operators[i]->name() + " but partition #0 has " +
                         first.operators[i]->name() +
                         " — instrument names would diverge");
        }
      }
      if (!(clone.output_schema == first.output_schema)) {
        out->push_back(who + ": output schema (" +
                       clone.output_schema.ToString() +
                       ") differs from partition #0 (" +
                       first.output_schema.ToString() + ")");
      }
    }
  }

  for (size_t b = 0; b < pipe.branches.size(); ++b) {
    CheckSegment(pipe.branches[b], DagBranchPath(pipe.path, b),
                 /*root=*/false, ctx, out);
  }
}

Status Report(const char* what, const std::vector<std::string>& diags) {
  if (diags.empty()) return Status::OK();
  std::string msg = std::string(what) + " verification failed (" +
                    std::to_string(diags.size()) + " diagnostic" +
                    (diags.size() == 1 ? "" : "s") + "):";
  for (const std::string& d : diags) msg += "\n  " + d;
  return Status::FailedPrecondition(std::move(msg));
}

}  // namespace

Status VerifyPipeline(const CompiledPipeline& pipeline,
                      const PipelineVerifyContext& ctx) {
  std::vector<std::string> diags;
  CheckSegment(pipeline, ctx.root_path, /*root=*/true, ctx, &diags);
  return Report("pipeline", diags);
}

Status VerifyBatch(const exec::Batch& batch) {
  if (batch.data == nullptr) {
    return Status::FailedPrecondition("batch dispatched without a buffer");
  }
  if (!batch.data->sealed()) {
    return Status::FailedPrecondition(
        "unsealed buffer dispatched — fan-out sharing relies on the "
        "immutable-after-seal contract");
  }
  if (batch.selection != nullptr) {
    const size_t rows = batch.data->size();
    uint32_t prev = 0;
    for (size_t i = 0; i < batch.selection->size(); ++i) {
      const uint32_t row = (*batch.selection)[i];
      if (row >= rows) {
        return Status::FailedPrecondition(
            "selection index " + std::to_string(row) +
            " out of bounds for a buffer of " + std::to_string(rows) +
            " rows");
      }
      if (i > 0 && row <= prev) {
        return Status::FailedPrecondition(
            "selection not strictly ascending at position " +
            std::to_string(i) + " (" + std::to_string(prev) + " then " +
            std::to_string(row) + ")");
      }
      prev = row;
    }
  }
  return Status::OK();
}

Status VerifyStrandOwnership(
    const std::vector<std::pair<std::string, const void*>>& strands) {
  std::vector<std::string> diags;
  std::map<const void*, std::string> owner_of;
  for (const auto& [path, strand] : strands) {
    if (strand == nullptr) {
      diags.push_back("branch '" + path + "': no strand");
      continue;
    }
    auto [it, inserted] = owner_of.emplace(strand, path);
    if (!inserted) {
      diags.push_back("branch '" + path + "' shares a strand with branch '" +
                      it->second +
                      "' — the actor guarantee needs one strand per branch");
    }
  }
  return Report("strand ownership", diags);
}

}  // namespace nebulameos::nebula::analysis

/// \file pipeline_verifier.hpp
/// \brief Static checks over the *compiled* pipeline tree and the batch
/// contract — the physical counterparts of plan_verifier.hpp.
///
/// `CompilePlan` output carries invariants the engine silently leans on:
/// each segment is exactly one of sink-leaf / fan-out / partitioned;
/// segment paths mirror the logical DAG paths (stats, Explain and the
/// shared-query accountant all join on them); network-channel lowering
/// keeps sink/source pairs adjacent with one channel per transition; and
/// partition clones must stay name-parallel so their per-path instruments
/// sum coherently. `VerifyPipeline` proves those after compilation,
/// `VerifyBatch` proves the sealed-buffer / ascending-selection contract
/// on every dispatched batch (verify-each mode), and
/// `VerifyStrandOwnership` proves each dynamically attached branch owns
/// exactly one strand (the actor guarantee dynamic fan-out relies on).

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nebula/exec/batch.hpp"
#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula::analysis {

/// \brief What the verifier should expect of the pipeline's shape.
struct PipelineVerifyContext {
  /// The root segment may be a sink-less, branch-less chain: it is a
  /// shared host whose client branches attach dynamically (`SubmitShared`
  /// / `AttachBranch`).
  bool expect_dynamic_tail = false;
  /// Expected DAG path of the root segment ("" for a whole plan; a branch
  /// path for a pipeline compiled by `AttachBranch`).
  std::string root_path;
};

/// Verifies the structural invariants of a compiled pipeline tree.
/// Returns `FailedPrecondition` naming every violated segment by path.
Status VerifyPipeline(const CompiledPipeline& pipeline,
                      const PipelineVerifyContext& ctx = {});

/// Verifies the batch dispatch contract: non-null *sealed* buffer, and a
/// selection that is strictly ascending with every index in bounds.
Status VerifyBatch(const exec::Batch& batch);

/// Verifies dynamic-branch strand single-ownership: every (branch path,
/// strand) pair carries a non-null strand and no strand serves two
/// branches. \p strands uses opaque pointers so the check stays
/// independent of the pool's types.
Status VerifyStrandOwnership(
    const std::vector<std::pair<std::string, const void*>>& strands);

}  // namespace nebulameos::nebula::analysis

#include "nebula/analysis/plan_verifier.hpp"

#include <algorithm>
#include <set>
#include <variant>

namespace nebulameos::nebula::analysis {

namespace {

using Kind = LogicalOperator::Kind;
using Chain = std::vector<LogicalOperatorPtr>;

Diagnostic MakeDiag(std::string rule, const PlanFacts::Node& node,
                    std::string message) {
  Diagnostic d;
  d.rule = std::move(rule);
  d.path = node.path;
  d.index = node.index;
  d.op = node.op->ToString();
  d.placement = node.op->placement();
  d.message = std::move(message);
  return d;
}

Diagnostic PlanLevelDiag(std::string rule, std::string message) {
  Diagnostic d;
  d.rule = std::move(rule);
  d.message = std::move(message);
  return d;
}

/// Derives the schema leaving \p op when fed \p input — by constructing
/// the physical operator exactly as `CompilePlan` would, so the verifier
/// accepts precisely the plans that lower. \p pending_key carries a
/// `KeyBy` marker to the stateful node that consumes it (the same folding
/// `CompileChain` performs).
Result<Schema> DeriveOutputSchema(const Schema& input,
                                  const LogicalOperator& op,
                                  std::string* pending_key) {
  switch (op.kind()) {
    case Kind::kFilter: {
      NM_ASSIGN_OR_RETURN(
          OperatorPtr phys,
          FilterOperator::Make(input,
                               static_cast<const FilterNode&>(op).predicate()));
      return phys->output_schema();
    }
    case Kind::kMap: {
      NM_ASSIGN_OR_RETURN(
          OperatorPtr phys,
          MapOperator::Make(input, static_cast<const MapNode&>(op).specs()));
      return phys->output_schema();
    }
    case Kind::kProject: {
      NM_ASSIGN_OR_RETURN(
          OperatorPtr phys,
          ProjectOperator::Make(input,
                                static_cast<const ProjectNode&>(op).fields()));
      return phys->output_schema();
    }
    case Kind::kKeyBy:
      *pending_key = static_cast<const KeyByNode&>(op).field();
      return input;
    case Kind::kWindowAgg: {
      WindowAggOptions opts = static_cast<const WindowAggNode&>(op).options();
      if (!pending_key->empty()) {
        opts.key_field = *pending_key;
        pending_key->clear();
      }
      NM_ASSIGN_OR_RETURN(OperatorPtr phys,
                          WindowAggOperator::Make(input, std::move(opts)));
      return phys->output_schema();
    }
    case Kind::kThresholdWindow: {
      ThresholdWindowOptions opts =
          static_cast<const ThresholdWindowNode&>(op).options();
      if (!pending_key->empty()) {
        opts.key_field = *pending_key;
        pending_key->clear();
      }
      NM_ASSIGN_OR_RETURN(OperatorPtr phys,
                          ThresholdWindowOperator::Make(input, std::move(opts)));
      return phys->output_schema();
    }
    case Kind::kCep: {
      const auto& cep = static_cast<const CepNode&>(op);
      Pattern pattern = cep.pattern();
      if (pattern.key_field.empty() && !pending_key->empty()) {
        pattern.key_field = *pending_key;
      }
      pending_key->clear();
      NM_ASSIGN_OR_RETURN(
          OperatorPtr phys,
          CepOperator::Make(input, std::move(pattern), cep.measures()));
      return phys->output_schema();
    }
    case Kind::kLookupJoin: {
      NM_ASSIGN_OR_RETURN(
          OperatorPtr phys,
          TemporalLookupJoinOperator::Make(
              input, static_cast<const LookupJoinNode&>(op).options()));
      return phys->output_schema();
    }
    case Kind::kFanOut:
    case Kind::kSink:
      // Terminal: handled by the walker, never derived through.
      return input;
  }
  return Status::Internal("unknown logical operator kind");
}

// Checks every field \p expr provably reads against \p input; unknown
// read sets (ad-hoc lambdas) are tolerated — the verifier proves what it
// can and stays conservative elsewhere.
void CheckExprFields(const ExprPtr& expr, const Schema& input,
                     const std::string& what, const PlanFacts::Node& node,
                     std::vector<Diagnostic>* out) {
  if (!expr) {
    out->push_back(
        MakeDiag("field-provenance", node, what + " is missing"));
    return;
  }
  std::vector<std::string> fields;
  if (!expr->ReferencedFields(&fields)) return;  // unprovable read set
  for (const std::string& name : fields) {
    if (!input.HasField(name)) {
      out->push_back(MakeDiag(
          "field-provenance", node,
          what + " references unknown field '" + name +
              "' — fields available here: " + input.ToString()));
    }
  }
}

// --- structure ---------------------------------------------------------------

/// `LogicalPlan::Validate` wrapped as a rule (termination, fan-out arity,
/// KeyBy consumption, window aggregates). Shared-prefix plans are
/// deliberately sink-less, so they instead get the `SubmitShared` shape
/// gate: a pure operator chain with no sinks or fan-outs.
class StructureRule : public PlanRule {
 public:
  std::string name() const override { return "structure"; }

  void Check(const PlanFacts& facts, const VerifyContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (ctx.shared_prefix) {
      for (const PlanFacts::Node& node : facts.nodes()) {
        if (node.op->kind() == Kind::kSink ||
            node.op->kind() == Kind::kFanOut) {
          out->push_back(MakeDiag(
              name(), node,
              "a shared-host prefix must be a pure operator chain — sinks "
              "and fan-outs are per-client and attach as branches"));
        }
      }
      return;
    }
    if (ctx.allow_unterminated) {
      // Mid-rewrite: sinks may not be attached yet, so check every
      // structural invariant except chain termination, per node.
      CheckRelaxed(facts, out);
      return;
    }
    const Status st = facts.plan().Validate();
    if (!st.ok()) out->push_back(PlanLevelDiag(name(), st.message()));
  }

 private:
  void CheckRelaxed(const PlanFacts& facts,
                    std::vector<Diagnostic>* out) const {
    const auto& nodes = facts.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      const PlanFacts::Node& node = nodes[i];
      // The next operator of the same chain, if any. Usually the adjacent
      // DFS entry — but after a (malformed) non-terminal fan-out the
      // chain's continuation lands behind the branch subtrees, so search.
      const LogicalOperator* next = nullptr;
      for (size_t j = i + 1; j < nodes.size() && next == nullptr; ++j) {
        if (nodes[j].path == node.path && nodes[j].index == node.index + 1) {
          next = nodes[j].op;
        }
      }
      switch (node.op->kind()) {
        case Kind::kSink:
          if (next != nullptr) {
            out->push_back(MakeDiag(
                name(), node, "sink must be the terminal node of its chain"));
          }
          if (static_cast<const SinkNode&>(*node.op).sink() == nullptr) {
            out->push_back(MakeDiag(name(), node, "sink node without a sink"));
          }
          break;
        case Kind::kFanOut: {
          if (next != nullptr) {
            out->push_back(MakeDiag(
                name(), node,
                "fan-out must be the terminal node of its chain"));
          }
          const auto& fan = static_cast<const FanOutNode&>(*node.op);
          if (fan.branches().size() < 2) {
            out->push_back(MakeDiag(name(), node,
                                    "fan-out needs at least two branches"));
          }
          for (size_t b = 0; b < fan.branches().size(); ++b) {
            if (fan.branches()[b].empty()) {
              out->push_back(MakeDiag(name(), node,
                                      "fan-out branch " + std::to_string(b) +
                                          " is empty"));
            }
          }
          break;
        }
        case Kind::kKeyBy: {
          const auto& key = static_cast<const KeyByNode&>(*node.op);
          if (key.field().empty()) {
            out->push_back(
                MakeDiag(name(), node, "KeyBy with an empty field"));
          }
          // A trailing KeyBy may still be awaiting its window; an
          // *interior* unconsumed KeyBy is a hard error even mid-rewrite.
          if (next != nullptr && next->kind() != Kind::kWindowAgg &&
              next->kind() != Kind::kThresholdWindow &&
              next->kind() != Kind::kCep) {
            out->push_back(MakeDiag(
                name(), node,
                "KeyBy(" + key.field() +
                    ") is never consumed: it must be immediately followed "
                    "by a window aggregation or CEP step"));
          }
          break;
        }
        case Kind::kWindowAgg: {
          const auto& opts =
              static_cast<const WindowAggNode&>(*node.op).options();
          if (opts.aggregates.empty() && opts.custom_aggregators.empty()) {
            out->push_back(MakeDiag(
                name(), node,
                "window aggregation without aggregates (missing "
                "Aggregate?)"));
          }
          break;
        }
        case Kind::kThresholdWindow: {
          const auto& opts =
              static_cast<const ThresholdWindowNode&>(*node.op).options();
          if (opts.aggregates.empty() && opts.custom_aggregators.empty()) {
            out->push_back(MakeDiag(
                name(), node,
                "threshold window without aggregates (missing Aggregate?)"));
          }
          break;
        }
        default:
          break;
      }
    }
  }
};

// --- field-provenance --------------------------------------------------------

class FieldProvenanceRule : public PlanRule {
 public:
  std::string name() const override { return "field-provenance"; }

  void Check(const PlanFacts& facts, const VerifyContext&,
             std::vector<Diagnostic>* out) const override {
    for (const PlanFacts::Node& node : facts.nodes()) {
      if (node.input == nullptr) continue;  // upstream derivation failed
      const Schema& in = *node.input;
      switch (node.op->kind()) {
        case Kind::kFilter:
          CheckExprFields(static_cast<const FilterNode&>(*node.op).predicate(),
                          in, "filter predicate", node, out);
          break;
        case Kind::kMap:
          for (const MapSpec& spec :
               static_cast<const MapNode&>(*node.op).specs()) {
            CheckExprFields(spec.expr, in, "map expr for '" + spec.name + "'",
                            node, out);
          }
          break;
        case Kind::kProject:
          for (const std::string& field :
               static_cast<const ProjectNode&>(*node.op).fields()) {
            if (!in.HasField(field)) {
              out->push_back(MakeDiag(
                  name(), node,
                  "projects unknown field '" + field +
                      "' — fields available here: " + in.ToString()));
            }
          }
          break;
        case Kind::kKeyBy: {
          const std::string& field =
              static_cast<const KeyByNode&>(*node.op).field();
          if (!in.HasField(field)) {
            out->push_back(MakeDiag(
                name(), node,
                "keys by unknown field '" + field +
                    "' — fields available here: " + in.ToString()));
          }
          break;
        }
        case Kind::kThresholdWindow:
          CheckExprFields(
              static_cast<const ThresholdWindowNode&>(*node.op)
                  .options()
                  .predicate,
              in, "threshold predicate", node, out);
          break;
        case Kind::kCep:
          for (const PatternStep& step :
               static_cast<const CepNode&>(*node.op).pattern().steps) {
            CheckExprFields(step.predicate, in,
                            "CEP step '" + step.name + "' predicate", node,
                            out);
          }
          break;
        case Kind::kLookupJoin: {
          const auto& opts =
              static_cast<const LookupJoinNode&>(*node.op).options();
          if (!opts.left_key.empty() && !in.HasField(opts.left_key)) {
            out->push_back(MakeDiag(name(), node,
                                    "join left key '" + opts.left_key +
                                        "' not in probe schema: " +
                                        in.ToString()));
          }
          if (!opts.left_time.empty() && !in.HasField(opts.left_time)) {
            out->push_back(MakeDiag(name(), node,
                                    "join left time '" + opts.left_time +
                                        "' not in probe schema: " +
                                        in.ToString()));
          }
          if (opts.lookup) {
            const Schema& right = opts.lookup->schema();
            if (!opts.right_key.empty() && !right.HasField(opts.right_key)) {
              out->push_back(MakeDiag(name(), node,
                                      "join right key '" + opts.right_key +
                                          "' not in lookup schema: " +
                                          right.ToString()));
            }
            if (!opts.right_time.empty() &&
                !right.HasField(opts.right_time)) {
              out->push_back(MakeDiag(name(), node,
                                      "join right time '" + opts.right_time +
                                          "' not in lookup schema: " +
                                          right.ToString()));
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }
};

// --- window-wellformed -------------------------------------------------------

bool IsTimeType(DataType type) {
  return type == DataType::kTimestamp || type == DataType::kInt64;
}

class WindowWellformedRule : public PlanRule {
 public:
  std::string name() const override { return "window-wellformed"; }

  void Check(const PlanFacts& facts, const VerifyContext&,
             std::vector<Diagnostic>* out) const override {
    const auto& nodes = facts.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      const PlanFacts::Node& node = nodes[i];
      if (node.input == nullptr) continue;
      // The key a preceding KeyBy marker folds into this node (nodes of
      // one chain are DFS-adjacent, so the marker is the previous entry).
      std::string folded_key;
      if (i > 0 && nodes[i - 1].path == node.path &&
          nodes[i - 1].index + 1 == node.index &&
          nodes[i - 1].op->kind() == Kind::kKeyBy) {
        folded_key = static_cast<const KeyByNode&>(*nodes[i - 1].op).field();
      }
      switch (node.op->kind()) {
        case Kind::kWindowAgg: {
          const auto& opts =
              static_cast<const WindowAggNode&>(*node.op).options();
          const std::string key =
              folded_key.empty() ? opts.key_field : folded_key;
          CheckKeyed(key, node, out);
          CheckTime(opts.time_field, node, out);
          CheckAggregates(opts.aggregates, node, out);
          CheckSpec(opts.window, node, out);
          break;
        }
        case Kind::kThresholdWindow: {
          const auto& opts =
              static_cast<const ThresholdWindowNode&>(*node.op).options();
          const std::string key =
              folded_key.empty() ? opts.key_field : folded_key;
          CheckKeyed(key, node, out);
          CheckTime(opts.time_field, node, out);
          CheckAggregates(opts.aggregates, node, out);
          if (!opts.predicate) {
            out->push_back(
                MakeDiag(name(), node, "threshold window needs a predicate"));
          }
          if (opts.min_duration < 0) {
            out->push_back(MakeDiag(name(), node,
                                    "threshold min_duration must be >= 0"));
          }
          break;
        }
        case Kind::kCep: {
          const auto& cep = static_cast<const CepNode&>(*node.op);
          const Pattern& pattern = cep.pattern();
          const std::string key = pattern.key_field.empty()
                                      ? folded_key
                                      : pattern.key_field;
          CheckKeyed(key, node, out);
          CheckTime(pattern.time_field, node, out);
          if (pattern.steps.empty()) {
            out->push_back(
                MakeDiag(name(), node, "pattern needs at least one step"));
          }
          if (pattern.within < 0) {
            out->push_back(
                MakeDiag(name(), node, "pattern 'within' must be >= 0"));
          }
          for (const Measure& m : cep.measures()) {
            const bool step_known = std::any_of(
                pattern.steps.begin(), pattern.steps.end(),
                [&m](const PatternStep& s) { return s.name == m.step; });
            if (!step_known) {
              out->push_back(MakeDiag(
                  name(), node,
                  "measure '" + m.output_name +
                      "' references unknown step '" + m.step + "'"));
            }
            if (m.kind != MeasureKind::kCount &&
                !node.input->HasField(m.field)) {
              out->push_back(MakeDiag(
                  name(), node,
                  "measure '" + m.output_name + "' over unknown field '" +
                      m.field + "' — fields available here: " +
                      node.input->ToString()));
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

 private:
  void CheckKeyed(const std::string& key, const PlanFacts::Node& node,
                  std::vector<Diagnostic>* out) const {
    if (key.empty() || node.input->HasField(key)) return;
    out->push_back(MakeDiag(name(), node,
                            "keys by unknown field '" + key +
                                "' — fields available here: " +
                                node.input->ToString()));
  }

  void CheckTime(const std::string& time_field, const PlanFacts::Node& node,
                 std::vector<Diagnostic>* out) const {
    if (time_field.empty()) {
      out->push_back(MakeDiag(name(), node, "needs an event-time field"));
      return;
    }
    auto idx = node.input->IndexOf(time_field);
    if (!idx.ok()) {
      out->push_back(MakeDiag(name(), node,
                              "time field '" + time_field +
                                  "' not in input — fields available here: " +
                                  node.input->ToString()));
      return;
    }
    const DataType type = node.input->field(*idx).type;
    if (!IsTimeType(type)) {
      out->push_back(MakeDiag(
          name(), node,
          "time field '" + time_field + "' has type " + DataTypeName(type) +
              " — event time must be TIMESTAMP or INT64 (MEOS faults on "
              "non-monotonic sequences, so ordering is a correctness "
              "invariant)"));
    }
  }

  void CheckAggregates(const std::vector<AggregateSpec>& aggs,
                       const PlanFacts::Node& node,
                       std::vector<Diagnostic>* out) const {
    for (const AggregateSpec& spec : aggs) {
      if (spec.kind == AggKind::kCount && spec.field.empty()) continue;
      auto idx = node.input->IndexOf(spec.field);
      if (!idx.ok()) {
        out->push_back(MakeDiag(
            name(), node,
            "aggregate '" + spec.output_name + "' over unknown field '" +
                spec.field + "' — fields available here: " +
                node.input->ToString()));
        continue;
      }
      const DataType type = node.input->field(*idx).type;
      if (!IsNumeric(type) && type != DataType::kBool) {
        out->push_back(MakeDiag(name(), node,
                                "aggregate '" + spec.output_name +
                                    "' over non-numeric field '" + spec.field +
                                    "' of type " + DataTypeName(type)));
      }
    }
  }

  void CheckSpec(const WindowSpec& spec, const PlanFacts::Node& node,
                 std::vector<Diagnostic>* out) const {
    if (const auto* tumbling = std::get_if<TumblingWindowSpec>(&spec)) {
      if (tumbling->size <= 0) {
        out->push_back(
            MakeDiag(name(), node, "tumbling window size must be > 0"));
      }
    } else if (const auto* sliding = std::get_if<SlidingWindowSpec>(&spec)) {
      if (sliding->size <= 0 || sliding->slide <= 0) {
        out->push_back(
            MakeDiag(name(), node, "sliding window size/slide must be > 0"));
      } else if (sliding->slide > sliding->size) {
        out->push_back(
            MakeDiag(name(), node, "sliding window slide must be <= size"));
      }
    } else {
      out->push_back(MakeDiag(
          name(), node,
          "WindowAgg carries a threshold spec — use a ThresholdWindow node"));
    }
  }
};

// --- placement-soundness -----------------------------------------------------

class PlacementSoundnessRule : public PlanRule {
 public:
  std::string name() const override { return "placement-soundness"; }

  void Check(const PlanFacts& facts, const VerifyContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const LogicalPlan& plan = facts.plan();
    if (!plan.IsPlaced()) return;  // unplaced plans have nothing to prove
    if (plan.source_placement() == LogicalOperator::kUnplaced) {
      out->push_back(PlanLevelDiag(
          name(),
          "plan carries placement annotations but its source is unplaced — "
          "annotate the source node (the placement pass pins it to the "
          "edge worker)"));
    }
    std::set<int> left;
    WalkChain(plan.ops(), "", plan.source_placement(), left, ctx, out);
  }

 private:
  // True when `node_id` resolves to an edge worker (unknown ids resolve
  // to "not edge": the route check reports those).
  static bool IsEdge(const Topology& topology, int node_id) {
    auto node = topology.GetNode(node_id);
    return node.ok() && node->kind == NodeKind::kEdgeWorker;
  }

  void WalkChain(const Chain& ops, const std::string& path, int current,
                 std::set<int> left, const VerifyContext& ctx,
                 std::vector<Diagnostic>* out) const {
    for (size_t i = 0; i < ops.size(); ++i) {
      const LogicalOperator& op = *ops[i];
      PlanFacts::Node node{&op, path, i, nullptr};
      const int target = op.placement();
      if (target == LogicalOperator::kUnplaced) {
        out->push_back(MakeDiag(
            name(), node,
            "operator is unplaced inside a placed plan — `CompilePlan` "
            "would run it wherever the previous operator sits, silently"));
        continue;
      }
      if (target != current && current != LogicalOperator::kUnplaced) {
        if (left.count(target) != 0) {
          out->push_back(MakeDiag(
              name(), node,
              "placement returns to node " + std::to_string(target) +
                  " after the chain already left it — placement must be "
                  "monotone along every path"));
        }
        if (ctx.topology != nullptr) {
          const Status route =
              ctx.topology->ShortestPath(current, target).status();
          if (!route.ok()) {
            out->push_back(MakeDiag(
                name(), node,
                "no topology route from node " + std::to_string(current) +
                    " to node " + std::to_string(target) + ": " +
                    route.message()));
          }
          if (!IsEdge(*ctx.topology, current) &&
              IsEdge(*ctx.topology, target)) {
            out->push_back(MakeDiag(
                name(), node,
                "placement moves from non-edge node " +
                    std::to_string(current) + " back to edge worker " +
                    std::to_string(target) +
                    " — the edge→cloud direction is one-way"));
          }
        }
        left.insert(current);
        current = target;
      } else if (current == LogicalOperator::kUnplaced) {
        current = target;
      }
      if (op.kind() == Kind::kSink && ctx.topology != nullptr &&
          IsEdge(*ctx.topology, target)) {
        out->push_back(MakeDiag(
            name(), node,
            "sink is placed on edge worker " + std::to_string(target) +
                " — results must reach the operations center (cloud side)"));
      }
      if (op.kind() == Kind::kFanOut) {
        const auto& fan = static_cast<const FanOutNode&>(op);
        for (size_t b = 0; b < fan.branches().size(); ++b) {
          WalkChain(fan.branches()[b], DagBranchPath(path, b), current, left,
                    ctx, out);
        }
      }
    }
  }
};

// --- merge-safety ------------------------------------------------------------

class MergeSafetyRule : public PlanRule {
 public:
  std::string name() const override { return "merge-safety"; }

  void Check(const PlanFacts& facts, const VerifyContext& ctx,
             std::vector<Diagnostic>* out) const override {
    if (!ctx.shared_prefix) return;
    for (const PlanFacts::Node& node : facts.nodes()) {
      std::string why;
      if (!OperatorMergeSafe(*node.op, &why)) {
        out->push_back(MakeDiag(name(), node, why));
      }
    }
  }
};

// --- branch-schema-coherence -------------------------------------------------

class BranchSchemaCoherenceRule : public PlanRule {
 public:
  std::string name() const override { return "branch-schema-coherence"; }

  void Check(const PlanFacts& facts, const VerifyContext&,
             std::vector<Diagnostic>* out) const override {
    for (const PlanFacts::Node& node : facts.nodes()) {
      if (node.op->kind() != Kind::kSink || node.input == nullptr) continue;
      const auto& sink = static_cast<const SinkNode&>(*node.op);
      if (!sink.sink()) {
        out->push_back(MakeDiag(name(), node, "sink node without a sink"));
        continue;
      }
      const Schema& declared = sink.sink()->output_schema();
      if (!(declared == *node.input)) {
        out->push_back(MakeDiag(
            name(), node,
            "sink expects (" + declared.ToString() +
                ") but its leaf derives (" + node.input->ToString() + ")"));
      }
    }
  }
};

}  // namespace

// --- Diagnostic --------------------------------------------------------------

std::string Diagnostic::ToString() const {
  std::string out = "[" + rule + "] ";
  if (op.empty()) {
    out += "plan: " + message;
    return out;
  }
  out += path.empty() ? "root chain" : "branch '" + path + "'";
  out += " op #" + std::to_string(index) + " -> " + op;
  if (placement != LogicalOperator::kUnplaced) {
    out += "  @node" + std::to_string(placement);
  }
  out += ": " + message;
  return out;
}

// --- PlanFacts ---------------------------------------------------------------

PlanFacts::PlanFacts(const LogicalPlan& plan) : plan_(&plan) {
  if (plan.source() != nullptr) {
    source_schema_ = Intern(plan.source()->schema());
  }
  WalkChain(plan.ops(), "", source_schema_);
}

const Schema* PlanFacts::Intern(Schema schema) {
  schemas_.push_back(std::make_unique<Schema>(std::move(schema)));
  return schemas_.back().get();
}

void PlanFacts::WalkChain(const Chain& ops, const std::string& path,
                          const Schema* input) {
  const Schema* current = input;
  std::string pending_key;
  for (size_t i = 0; i < ops.size(); ++i) {
    const LogicalOperator& op = *ops[i];
    nodes_.push_back({&op, path, i, current});
    if (op.kind() == Kind::kFanOut) {
      const auto& fan = static_cast<const FanOutNode&>(op);
      for (size_t b = 0; b < fan.branches().size(); ++b) {
        WalkChain(fan.branches()[b], DagBranchPath(path, b), current);
      }
      // A fan-out should be terminal; if the chain (illegally) continues,
      // keep walking with an unknown schema so the structure rule sees —
      // and can name — the trailing operators.
      current = nullptr;
      continue;
    }
    if (op.kind() == Kind::kSink) {
      // Same: a sink should be terminal, but trailing operators must
      // still enter the facts for the structure rule to flag them.
      current = nullptr;
      continue;
    }
    if (current == nullptr) continue;      // upstream derivation failed
    Result<Schema> derived = DeriveOutputSchema(*current, op, &pending_key);
    if (!derived.ok()) {
      derivation_diags_.push_back(MakeDiag("schema-derivation",
                                           nodes_.back(),
                                           derived.status().message()));
      current = nullptr;
      continue;
    }
    current = Intern(std::move(derived).value());
  }
}

// --- OperatorMergeSafe -------------------------------------------------------

bool OperatorMergeSafe(const LogicalOperator& op, std::string* why) {
  const auto fail = [why](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  const auto check_expr = [&fail](const ExprPtr& expr,
                                  const std::string& what) {
    if (ExpressionMergeSafe(expr)) return true;
    return fail(what + " is not merge-safe: " +
                (expr ? expr->ToString() : std::string("<null>")) +
                " — only registered functions and pure operators carry "
                "provable cross-query semantics");
  };
  switch (op.kind()) {
    case Kind::kFilter:
      return check_expr(static_cast<const FilterNode&>(op).predicate(),
                        "filter predicate");
    case Kind::kMap:
      for (const MapSpec& spec : static_cast<const MapNode&>(op).specs()) {
        if (!check_expr(spec.expr, "map expr for '" + spec.name + "'")) {
          return false;
        }
      }
      return true;
    case Kind::kProject:
    case Kind::kKeyBy:
      return true;
    case Kind::kWindowAgg: {
      const WindowAggOptions& opts =
          static_cast<const WindowAggNode&>(op).options();
      if (!opts.custom_aggregators.empty()) {
        return fail(
            "custom aggregators are opaque callables with no provable "
            "cross-query identity");
      }
      if (const auto* threshold =
              std::get_if<ThresholdWindowSpec>(&opts.window)) {
        return check_expr(threshold->predicate, "threshold predicate");
      }
      return true;
    }
    case Kind::kThresholdWindow: {
      const ThresholdWindowOptions& opts =
          static_cast<const ThresholdWindowNode&>(op).options();
      if (!opts.custom_aggregators.empty()) {
        return fail(
            "custom aggregators are opaque callables with no provable "
            "cross-query identity");
      }
      return check_expr(opts.predicate, "threshold predicate");
    }
    case Kind::kCep:
      for (const PatternStep& step :
           static_cast<const CepNode&>(op).pattern().steps) {
        if (!check_expr(step.predicate,
                        "CEP step '" + step.name + "' predicate")) {
          return false;
        }
      }
      return true;
    case Kind::kLookupJoin:
      // Lookup sides compare by instance identity (StructurallyEqual), so
      // a shared lookup join is always a proven-identical join.
      return true;
    case Kind::kFanOut:
      return fail("fan-outs are per-client and never merge material");
    case Kind::kSink:
      return fail("sinks are per-client and never merge material");
  }
  return fail("unknown operator kind");
}

// --- Rule factories ----------------------------------------------------------

PlanRulePtr MakeStructureRule() { return std::make_unique<StructureRule>(); }
PlanRulePtr MakeFieldProvenanceRule() {
  return std::make_unique<FieldProvenanceRule>();
}
PlanRulePtr MakeWindowWellformedRule() {
  return std::make_unique<WindowWellformedRule>();
}
PlanRulePtr MakePlacementSoundnessRule() {
  return std::make_unique<PlacementSoundnessRule>();
}
PlanRulePtr MakeMergeSafetyRule() {
  return std::make_unique<MergeSafetyRule>();
}
PlanRulePtr MakeBranchSchemaCoherenceRule() {
  return std::make_unique<BranchSchemaCoherenceRule>();
}

// --- PlanVerifier ------------------------------------------------------------

PlanVerifier PlanVerifier::Default() {
  PlanVerifier v;
  v.AddRule(MakeStructureRule());
  v.AddRule(MakeFieldProvenanceRule());
  v.AddRule(MakeWindowWellformedRule());
  v.AddRule(MakePlacementSoundnessRule());
  v.AddRule(MakeMergeSafetyRule());
  v.AddRule(MakeBranchSchemaCoherenceRule());
  return v;
}

PlanVerifier& PlanVerifier::AddRule(PlanRulePtr rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

std::vector<Diagnostic> PlanVerifier::Run(const LogicalPlan& plan,
                                          const VerifyContext& ctx) const {
  PlanFacts facts(plan);
  std::vector<Diagnostic> out = facts.derivation_diagnostics();
  for (const PlanRulePtr& rule : rules_) {
    rule->Check(facts, ctx, &out);
  }
  return out;
}

Status PlanVerifier::Verify(const LogicalPlan& plan,
                            const VerifyContext& ctx) const {
  const std::vector<Diagnostic> diags = Run(plan, ctx);
  if (diags.empty()) return Status::OK();
  std::string msg = "plan verification failed (" +
                    std::to_string(diags.size()) + " diagnostic" +
                    (diags.size() == 1 ? "" : "s") + "):";
  for (const Diagnostic& d : diags) {
    msg += "\n  " + d.ToString();
  }
  msg += "\nplan:\n" + plan.Explain();
  return Status::FailedPrecondition(std::move(msg));
}

Status VerifyPlan(const LogicalPlan& plan, const VerifyContext& ctx) {
  return PlanVerifier::Default().Verify(plan, ctx);
}

}  // namespace nebulameos::nebula::analysis

#include "nebula/topology.hpp"

namespace nebulameos::nebula {

Status Topology::AddNode(TopologyNode node) {
  for (const TopologyNode& n : nodes_) {
    if (n.id == node.id) {
      return Status::AlreadyExists("duplicate node id " +
                                   std::to_string(node.id));
    }
  }
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status Topology::AddLink(TopologyLink link) {
  if (link.bandwidth_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("link bandwidth must be > 0");
  }
  if (!GetNode(link.from).ok() || !GetNode(link.to).ok()) {
    return Status::InvalidArgument("link endpoint unknown");
  }
  links_.push_back(link);
  return Status::OK();
}

Result<TopologyNode> Topology::GetNode(int id) const {
  for (const TopologyNode& n : nodes_) {
    if (n.id == id) return n;
  }
  return Status::NotFound("no node " + std::to_string(id));
}

Result<TopologyLink> Topology::GetLink(int from, int to) const {
  for (const TopologyLink& l : links_) {
    if (l.from == from && l.to == to) return l;
  }
  return Status::NotFound("no link " + std::to_string(from) + "->" +
                          std::to_string(to));
}

Topology Topology::SncbReference(int num_trains, double uplink_bytes_per_sec,
                                 Duration uplink_latency) {
  Topology topo;
  (void)topo.AddNode({0, NodeKind::kCoordinator, "coordinator", 4.0});
  (void)topo.AddNode({1, NodeKind::kCloudWorker, "cloud-worker", 4.0});
  // Coordinator <-> cloud worker on a fast datacenter link.
  (void)topo.AddLink({1, 0, 1e9, Millis(1)});
  (void)topo.AddLink({0, 1, 1e9, Millis(1)});
  for (int i = 0; i < num_trains; ++i) {
    const int id = 2 + i;
    (void)topo.AddNode(
        {id, NodeKind::kEdgeWorker, "train-" + std::to_string(i), 1.0});
    // Cellular uplink/downlink between the train and the cloud.
    (void)topo.AddLink({id, 1, uplink_bytes_per_sec, uplink_latency});
    (void)topo.AddLink({1, id, uplink_bytes_per_sec, uplink_latency});
  }
  return topo;
}

Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement) {
  DeploymentReport report;
  const int chain_length = static_cast<int>(op_stats.size());
  // Bytes flowing on chain edge (i -> i+1): output of element i, where
  // i == -1 is the source.
  for (int i = -1; i < chain_length - 1; ++i) {
    auto from_it = placement.node_of.find(i);
    auto to_it = placement.node_of.find(i + 1);
    if (from_it == placement.node_of.end() ||
        to_it == placement.node_of.end()) {
      return Status::InvalidArgument("placement missing operator " +
                                     std::to_string(i));
    }
    if (from_it->second == to_it->second) continue;  // same node: free
    NM_ASSIGN_OR_RETURN(TopologyLink link,
                        topology.GetLink(from_it->second, to_it->second));
    const uint64_t bytes = i < 0
                               ? source_bytes
                               : op_stats[static_cast<size_t>(i)].second.bytes_out;
    const auto key = std::make_pair(link.from, link.to);
    report.link_bytes[key] += bytes;
    const double seconds = static_cast<double>(bytes) /
                               link.bandwidth_bytes_per_sec +
                           ToSeconds(link.latency);
    report.link_seconds[key] += seconds;
    report.total_transfer_seconds += seconds;
    NM_ASSIGN_OR_RETURN(TopologyNode from_node,
                        topology.GetNode(link.from));
    NM_ASSIGN_OR_RETURN(TopologyNode to_node, topology.GetNode(link.to));
    if (from_node.kind == NodeKind::kEdgeWorker &&
        to_node.kind != NodeKind::kEdgeWorker) {
      report.uplink_bytes += bytes;
    }
  }
  return report;
}

Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;
  for (size_t i = 0; i + 1 < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = edge_node;
  }
  // The sink (last chain element) runs in the cloud: results ship up.
  if (chain_length > 0) {
    p.node_of[static_cast<int>(chain_length - 1)] = cloud_node;
  }
  return p;
}

Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;  // sensors are on the train
  for (size_t i = 0; i < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = cloud_node;
  }
  return p;
}

Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes) {
  const int n = static_cast<int>(op_stats.size());
  // Cut after element `cut` (−1 = source only on the edge); the bytes that
  // cross are that element's output. The sink (element n−1) stays cloud-side,
  // so cuts range over [−1, n−2].
  int best_cut = -1;
  uint64_t best_bytes = source_bytes;
  for (int cut = 0; cut <= n - 2; ++cut) {
    const uint64_t bytes = op_stats[static_cast<size_t>(cut)].second.bytes_out;
    if (bytes < best_bytes) {
      best_bytes = bytes;
      best_cut = cut;
    }
  }
  Placement p;
  p.node_of[-1] = edge_node;
  for (int i = 0; i < n; ++i) {
    p.node_of[i] = i <= best_cut ? edge_node : cloud_node;
  }
  if (n > 0) p.node_of[n - 1] = cloud_node;  // sink in the cloud
  if (out_uplink_bytes != nullptr) *out_uplink_bytes = best_bytes;
  return p;
}

}  // namespace nebulameos::nebula

#include "nebula/topology.hpp"

#include <algorithm>
#include <limits>

namespace nebulameos::nebula {

Status Topology::AddNode(TopologyNode node) {
  for (const TopologyNode& n : nodes_) {
    if (n.id == node.id) {
      return Status::AlreadyExists("duplicate node id " +
                                   std::to_string(node.id));
    }
  }
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status Topology::AddLink(TopologyLink link) {
  if (link.bandwidth_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("link bandwidth must be > 0");
  }
  if (!GetNode(link.from).ok() || !GetNode(link.to).ok()) {
    return Status::InvalidArgument("link endpoint unknown");
  }
  if (GetLink(link.from, link.to).ok()) {
    return Status::AlreadyExists("duplicate link " +
                                 std::to_string(link.from) + "->" +
                                 std::to_string(link.to));
  }
  links_.push_back(link);
  return Status::OK();
}

Result<TopologyNode> Topology::GetNode(int id) const {
  for (const TopologyNode& n : nodes_) {
    if (n.id == id) return n;
  }
  return Status::NotFound("no node " + std::to_string(id));
}

Result<TopologyLink> Topology::GetLink(int from, int to) const {
  for (const TopologyLink& l : links_) {
    if (l.from == from && l.to == to) return l;
  }
  return Status::NotFound("no link " + std::to_string(from) + "->" +
                          std::to_string(to));
}

Result<std::vector<TopologyLink>> Topology::ShortestPath(int from,
                                                         int to) const {
  NM_RETURN_NOT_OK(GetNode(from).status());
  NM_RETURN_NOT_OK(GetNode(to).status());
  if (from == to) return std::vector<TopologyLink>{};
  // Dijkstra over the (small) node set. Hop weight: the transfer time of
  // a nominal 1 KB frame, so a 1 GB/s datacenter hop beats a cellular hop
  // even when their latencies match. Ties resolve toward fewer hops, then
  // the lower predecessor id, making routes deterministic.
  struct Best {
    double cost = std::numeric_limits<double>::infinity();
    int hops = std::numeric_limits<int>::max();
    int prev = -1;           // predecessor node id
    int via = -1;            // index into links_ of the arriving link
    bool settled = false;
  };
  constexpr double kNominalFrameBytes = 1024.0;
  std::map<int, Best> best;
  best[from] = Best{0.0, 0, -1, -1, false};
  while (true) {
    // Pick the cheapest unsettled node (lowest cost, then hops, then id).
    int current = -1;
    for (const auto& [id, b] : best) {
      if (b.settled) continue;
      if (current < 0) {
        current = id;
        continue;
      }
      const Best& c = best[current];
      if (b.cost < c.cost || (b.cost == c.cost && b.hops < c.hops)) {
        current = id;
      }
    }
    if (current < 0) break;
    if (current == to) break;
    Best& settled = best[current];
    settled.settled = true;
    for (size_t i = 0; i < links_.size(); ++i) {
      const TopologyLink& link = links_[i];
      if (link.from != current) continue;
      const double hop_cost = kNominalFrameBytes / link.bandwidth_bytes_per_sec +
                              ToSeconds(link.latency);
      const double cost = settled.cost + hop_cost;
      const int hops = settled.hops + 1;
      Best& b = best[link.to];  // default-inserts at infinity
      if (cost < b.cost || (cost == b.cost && hops < b.hops) ||
          (cost == b.cost && hops == b.hops && current < b.prev)) {
        b.cost = cost;
        b.hops = hops;
        b.prev = current;
        b.via = static_cast<int>(i);
      }
    }
  }
  const auto it = best.find(to);
  if (it == best.end() || it->second.via < 0) {
    return Status::NotFound("no route " + std::to_string(from) + "->" +
                            std::to_string(to));
  }
  std::vector<TopologyLink> route;
  for (int node = to; node != from;) {
    const Best& b = best[node];
    route.push_back(links_[static_cast<size_t>(b.via)]);
    node = b.prev;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

Topology Topology::SncbReference(int num_trains, double uplink_bytes_per_sec,
                                 Duration uplink_latency) {
  Topology topo;
  (void)topo.AddNode({0, NodeKind::kCoordinator, "coordinator", 4.0});
  (void)topo.AddNode({1, NodeKind::kCloudWorker, "cloud-worker", 4.0});
  // Coordinator <-> cloud worker on a fast datacenter link.
  (void)topo.AddLink({1, 0, 1e9, Millis(1)});
  (void)topo.AddLink({0, 1, 1e9, Millis(1)});
  for (int i = 0; i < num_trains; ++i) {
    const int id = 2 + i;
    (void)topo.AddNode(
        {id, NodeKind::kEdgeWorker, "train-" + std::to_string(i), 1.0});
    // Cellular uplink/downlink between the train and the cloud.
    (void)topo.AddLink({id, 1, uplink_bytes_per_sec, uplink_latency});
    (void)topo.AddLink({1, id, uplink_bytes_per_sec, uplink_latency});
  }
  return topo;
}

Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement) {
  DeploymentReport report;
  const int chain_length = static_cast<int>(op_stats.size());
  // Bytes flowing on chain edge (i -> i+1): output of element i, where
  // i == -1 is the source.
  for (int i = -1; i < chain_length - 1; ++i) {
    auto from_it = placement.node_of.find(i);
    auto to_it = placement.node_of.find(i + 1);
    if (from_it == placement.node_of.end() ||
        to_it == placement.node_of.end()) {
      return Status::InvalidArgument("placement missing operator " +
                                     std::to_string(i));
    }
    if (from_it->second == to_it->second) continue;  // same node: free
    // Nodes without a direct link still communicate: data relays over the
    // cheapest multi-hop route (e.g. train -> cloud worker -> coordinator
    // in the SNCB reference topology, whose trains only link to the cloud
    // worker).
    NM_ASSIGN_OR_RETURN(std::vector<TopologyLink> route,
                        topology.ShortestPath(from_it->second, to_it->second));
    const uint64_t bytes = i < 0
                               ? source_bytes
                               : op_stats[static_cast<size_t>(i)].second.bytes_out;
    for (const TopologyLink& link : route) {
      const auto key = std::make_pair(link.from, link.to);
      report.link_bytes[key] += bytes;
      const double seconds = static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec +
                             ToSeconds(link.latency);
      report.link_seconds[key] += seconds;
      report.total_transfer_seconds += seconds;
      NM_ASSIGN_OR_RETURN(TopologyNode from_node,
                          topology.GetNode(link.from));
      NM_ASSIGN_OR_RETURN(TopologyNode to_node, topology.GetNode(link.to));
      if (from_node.kind == NodeKind::kEdgeWorker &&
          to_node.kind != NodeKind::kEdgeWorker) {
        report.uplink_bytes += bytes;
      }
    }
  }
  return report;
}

Result<std::shared_ptr<NetworkChannel>> NetworkChannel::Connect(
    const Topology& topology, int from, int to) {
  if (from == to) {
    return Status::InvalidArgument("channel endpoints must differ (node " +
                                   std::to_string(from) + ")");
  }
  NM_ASSIGN_OR_RETURN(std::vector<TopologyLink> route,
                      topology.ShortestPath(from, to));
  std::vector<bool> hop_is_uplink;
  hop_is_uplink.reserve(route.size());
  for (const TopologyLink& link : route) {
    NM_ASSIGN_OR_RETURN(TopologyNode from_node, topology.GetNode(link.from));
    NM_ASSIGN_OR_RETURN(TopologyNode to_node, topology.GetNode(link.to));
    hop_is_uplink.push_back(from_node.kind == NodeKind::kEdgeWorker &&
                            to_node.kind != NodeKind::kEdgeWorker);
  }
  auto channel = std::shared_ptr<NetworkChannel>(new NetworkChannel(
      from, to, std::move(route), std::move(hop_is_uplink)));
  // Lossy links make the channel lossy out of the box; ConfigureFaults
  // later combines the engine-level profile on top.
  FaultProfile link_profile;
  bool any_link_fault = false;
  for (const TopologyLink& link : channel->route_) {
    if (!link.fault.Any()) continue;
    link_profile = any_link_fault
                       ? CombineFaultProfiles(link_profile, link.fault)
                       : link.fault;
    any_link_fault = true;
  }
  if (any_link_fault) {
    channel->link_profile_ = link_profile;
    channel->effective_profile_ = link_profile;
    channel->injector_ = std::make_unique<FaultInjector>(link_profile);
    channel->retain_frames_ = true;
  }
  return channel;
}

void NetworkChannel::ConfigureFaults(const FaultProfile& profile,
                                     const RetryOptions& retry) {
  std::lock_guard<std::mutex> lock(mutex_);
  retry_ = retry;
  effective_profile_ = link_profile_.Any() && profile.Any()
                           ? CombineFaultProfiles(link_profile_, profile)
                           : (profile.Any() ? profile : link_profile_);
  if (effective_profile_.Any()) {
    injector_ = std::make_unique<FaultInjector>(effective_profile_);
    retain_frames_ = true;
  } else {
    injector_.reset();
    retain_frames_ = false;
  }
}

double NetworkChannel::RouteSeconds(size_t wire_bytes) const {
  double seconds = 0.0;
  for (const TopologyLink& link : route_) {
    seconds += static_cast<double>(wire_bytes) / link.bandwidth_bytes_per_sec +
               ToSeconds(link.latency);
  }
  return seconds;
}

void NetworkChannel::Deliver(std::vector<uint8_t> frame) {
  in_flight_.push_back(std::move(frame));
  if (reorder_held_) {
    // The held frame's successor just went out ahead of it: release it
    // behind the overtaker, completing the swap.
    in_flight_.push_back(std::move(reorder_slot_));
    reorder_slot_.clear();
    reorder_held_ = false;
  }
}

void NetworkChannel::KillLocked() {
  disconnected_ = true;
  in_flight_.clear();
  retained_.clear();
  reorder_slot_.clear();
  reorder_held_ = false;
  delayed_frames_.clear();
}

void NetworkChannel::Kill() {
  std::lock_guard<std::mutex> lock(mutex_);
  KillLocked();
}

void NetworkChannel::Send(uint64_t seq, std::vector<uint8_t> frame,
                          uint64_t payload_bytes, uint64_t events) {
  const double frame_seconds = RouteSeconds(frame.size());
  // Metrics record lock-free (bound before the run, immutable after).
  if (m_wire_bytes_ != nullptr) {
    m_wire_bytes_->Add(frame.size());
    m_frames_->Increment();
    m_events_->Add(events);
    m_transfer_micros_->Record(static_cast<int64_t>(frame_seconds * 1e6));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (disconnected_) {
    // Sends into a dead channel vanish; the receiver's accounting against
    // `seq_end_` is what surfaces the loss.
    lost_ += 1;
    if (m_dropped_ != nullptr) m_dropped_->Increment();
    return;
  }
  frames_ += 1;
  events_ += events;
  payload_bytes_ += payload_bytes;
  wire_bytes_ += frame.size();
  transfer_seconds_ += frame_seconds;
  seq_end_ = std::max(seq_end_, seq + 1);
  // Age delayed frames on every send; expired ones re-enter the stream
  // here, before the new frame, preserving "held back N sends" semantics.
  for (auto it = delayed_frames_.begin(); it != delayed_frames_.end();) {
    if (it->release_after > 0) {
      --it->release_after;
      ++it;
      continue;
    }
    Deliver(std::move(it->frame));
    it = delayed_frames_.erase(it);
  }
  if (injector_ == nullptr) {
    Deliver(std::move(frame));
    return;
  }
  // Retain a copy for retransmission until the receiver acknowledges it.
  if (retain_frames_) {
    if (retained_.size() >= retry_.retain_limit &&
        retry_.shed_policy != ShedPolicy::kBlock) {
      shed_ += 1;
      if (m_shed_ != nullptr) m_shed_->Increment();
      if (retry_.shed_policy == ShedPolicy::kDropOldest) {
        retained_.erase(retained_.begin());
        retained_[seq] = Retained{frame, payload_bytes, events, 0};
      }
      // kDropLate: the new frame is delivered but not retained — losing
      // it in transit would be unrepairable.
    } else {
      // kBlock retains past the limit: in this simulation the sender
      // cannot pause mid-Send, so "block" trades bounded memory for
      // guaranteed repairability (health turns Degraded via the shed
      // counter staying 0 but the queue depth showing in metrics).
      retained_[seq] = Retained{frame, payload_bytes, events, 0};
    }
  }
  switch (injector_->NextFate()) {
    case FaultInjector::Fate::kDeliver:
      Deliver(std::move(frame));
      break;
    case FaultInjector::Fate::kDrop:
      dropped_ += 1;
      if (m_dropped_ != nullptr) m_dropped_->Increment();
      break;
    case FaultInjector::Fate::kDuplicate: {
      duplicated_ += 1;
      std::vector<uint8_t> copy = frame;
      Deliver(std::move(frame));
      Deliver(std::move(copy));
      break;
    }
    case FaultInjector::Fate::kReorder:
      if (reorder_held_) {
        // Only one frame holds at a time; a second reorder while the slot
        // is occupied degenerates to a delivery completing the first swap.
        Deliver(std::move(frame));
      } else {
        reordered_ += 1;
        reorder_slot_ = std::move(frame);
        reorder_held_ = true;
      }
      break;
    case FaultInjector::Fate::kDelay:
      delayed_ += 1;
      delayed_frames_.push_back(
          DelayedFrame{std::move(frame), injector_->DelaySends()});
      break;
  }
  if (injector_->ShouldDisconnect(frames_)) KillLocked();
}

bool NetworkChannel::Receive(std::vector<uint8_t>* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_.empty()) return false;
  *frame = std::move(in_flight_.front());
  in_flight_.pop_front();
  return true;
}

void NetworkChannel::Ack(uint64_t up_to_seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  retained_.erase(retained_.begin(), retained_.upper_bound(up_to_seq));
  acked_through_ = std::max(acked_through_, up_to_seq + 1);
}

Status NetworkChannel::RequestRetransmit(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disconnected_) {
    return Status::Unavailable("channel " + EndpointsString() +
                               " disconnected; frame " + std::to_string(seq) +
                               " unrecoverable");
  }
  if (seq < acked_through_) return Status::OK();  // duplicate request
  auto it = retained_.find(seq);
  if (it == retained_.end()) {
    return Status::DataLoss("channel " + EndpointsString() + ": frame " +
                            std::to_string(seq) +
                            " not retained (shed from the retransmit queue)");
  }
  Retained& entry = it->second;
  if (entry.attempts >= retry_.max_attempts) {
    return Status::ResourceExhausted(
        "channel " + EndpointsString() + ": frame " + std::to_string(seq) +
        " exceeded " + std::to_string(retry_.max_attempts) +
        " retransmission attempts");
  }
  entry.attempts += 1;
  // Backoff: base * 2^(attempt-1), capped, with seeded jitter — priced as
  // simulated transfer time so lossy deployments show their recovery cost.
  double backoff = retry_.backoff_base_seconds;
  for (uint32_t a = 1; a < entry.attempts; ++a) backoff *= 2.0;
  backoff = std::min(backoff, retry_.backoff_cap_seconds);
  if (injector_ != nullptr && retry_.jitter > 0.0) {
    backoff *= 1.0 + retry_.jitter * (injector_->JitterDraw() - 0.5);
  }
  retransmits_ += 1;
  if (m_retransmits_ != nullptr) m_retransmits_->Increment();
  frames_ += 1;
  events_ += entry.events;
  payload_bytes_ += entry.payload_bytes;
  wire_bytes_ += entry.frame.size();
  transfer_seconds_ += RouteSeconds(entry.frame.size()) + backoff;
  if (m_wire_bytes_ != nullptr) {
    m_wire_bytes_->Add(entry.frame.size());
    m_frames_->Increment();
    m_events_->Add(entry.events);
  }
  // Retransmissions ride the recovery path directly — re-injecting faults
  // here would make bounded-attempt convergence probabilistic, and the
  // attempt cap already models a link too lossy to repair.
  in_flight_.push_front(entry.frame);
  return Status::OK();
}

void NetworkChannel::FlushFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disconnected_) return;
  if (reorder_held_) {
    in_flight_.push_back(std::move(reorder_slot_));
    reorder_slot_.clear();
    reorder_held_ = false;
  }
  for (DelayedFrame& delayed : delayed_frames_) {
    in_flight_.push_back(std::move(delayed.frame));
  }
  delayed_frames_.clear();
}

HealthState NetworkChannel::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disconnected_) return HealthState::kDisconnected;
  if (dropped_ > 0 || duplicated_ > 0 || reordered_ > 0 || delayed_ > 0 ||
      retransmits_ > 0 || shed_ > 0 || dup_suppressed_ > 0 || lost_ > 0) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

void NetworkChannel::NoteDuplicateSuppressed() {
  std::lock_guard<std::mutex> lock(mutex_);
  dup_suppressed_ += 1;
}

void NetworkChannel::NoteFrameLost(uint64_t frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  lost_ += frames;
  shed_ += frames;
  if (m_shed_ != nullptr) m_shed_->Add(frames);
}

Result<DeploymentReport> MeasureDeployment(
    const std::vector<std::shared_ptr<NetworkChannel>>& channels) {
  DeploymentReport report;
  for (const std::shared_ptr<NetworkChannel>& channel : channels) {
    if (!channel) return Status::InvalidArgument("null channel");
    std::lock_guard<std::mutex> lock(channel->mutex_);
    report.wire_bytes += channel->wire_bytes_;
    report.frames += channel->frames_;
    report.total_transfer_seconds += channel->transfer_seconds_;
    report.frames_dropped += channel->dropped_;
    report.frames_duplicated += channel->duplicated_;
    report.frames_reordered += channel->reordered_;
    report.frames_delayed += channel->delayed_;
    report.retransmits += channel->retransmits_;
    report.frames_shed += channel->shed_;
    report.duplicates_suppressed += channel->dup_suppressed_;
    report.frames_lost += channel->lost_;
    // Worst-of health: one dead channel marks the deployment Disconnected.
    HealthState ch_health = HealthState::kHealthy;
    if (channel->disconnected_) {
      ch_health = HealthState::kDisconnected;
    } else if (channel->dropped_ > 0 || channel->duplicated_ > 0 ||
               channel->reordered_ > 0 || channel->delayed_ > 0 ||
               channel->retransmits_ > 0 || channel->shed_ > 0 ||
               channel->dup_suppressed_ > 0 || channel->lost_ > 0) {
      ch_health = HealthState::kDegraded;
    }
    if (static_cast<int>(ch_health) > static_cast<int>(report.health)) {
      report.health = ch_health;
    }
    for (size_t h = 0; h < channel->route_.size(); ++h) {
      const TopologyLink& link = channel->route_[h];
      const auto key = std::make_pair(link.from, link.to);
      report.link_bytes[key] += channel->payload_bytes_;
      report.link_seconds[key] +=
          static_cast<double>(channel->wire_bytes_) /
              link.bandwidth_bytes_per_sec +
          static_cast<double>(channel->frames_) * ToSeconds(link.latency);
      if (channel->hop_is_uplink_[h]) {
        report.uplink_bytes += channel->payload_bytes_;
      }
    }
  }
  return report;
}

Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;
  for (size_t i = 0; i + 1 < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = edge_node;
  }
  // The sink (last chain element) runs in the cloud: results ship up.
  if (chain_length > 0) {
    p.node_of[static_cast<int>(chain_length - 1)] = cloud_node;
  }
  return p;
}

Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;  // sensors are on the train
  for (size_t i = 0; i < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = cloud_node;
  }
  return p;
}

Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes) {
  const int n = static_cast<int>(op_stats.size());
  // Cut after element `cut` (−1 = source only on the edge); the bytes that
  // cross are that element's output. The sink (element n−1) stays cloud-side,
  // so cuts range over [−1, n−2].
  int best_cut = -1;
  uint64_t best_bytes = source_bytes;
  for (int cut = 0; cut <= n - 2; ++cut) {
    const uint64_t bytes = op_stats[static_cast<size_t>(cut)].second.bytes_out;
    // <= not <: a tie moves the cut deeper, keeping the tied operator on
    // the edge (maximal pushdown) instead of shipping the same bytes and
    // spending cloud compute on work the train could have done.
    if (bytes <= best_bytes) {
      best_bytes = bytes;
      best_cut = cut;
    }
  }
  Placement p;
  p.node_of[-1] = edge_node;
  for (int i = 0; i < n; ++i) {
    p.node_of[i] = i <= best_cut ? edge_node : cloud_node;
  }
  if (n > 0) p.node_of[n - 1] = cloud_node;  // sink in the cloud
  if (out_uplink_bytes != nullptr) *out_uplink_bytes = best_bytes;
  return p;
}

}  // namespace nebulameos::nebula

#include "nebula/topology.hpp"

#include <algorithm>
#include <limits>

namespace nebulameos::nebula {

Status Topology::AddNode(TopologyNode node) {
  for (const TopologyNode& n : nodes_) {
    if (n.id == node.id) {
      return Status::AlreadyExists("duplicate node id " +
                                   std::to_string(node.id));
    }
  }
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status Topology::AddLink(TopologyLink link) {
  if (link.bandwidth_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("link bandwidth must be > 0");
  }
  if (!GetNode(link.from).ok() || !GetNode(link.to).ok()) {
    return Status::InvalidArgument("link endpoint unknown");
  }
  if (GetLink(link.from, link.to).ok()) {
    return Status::AlreadyExists("duplicate link " +
                                 std::to_string(link.from) + "->" +
                                 std::to_string(link.to));
  }
  links_.push_back(link);
  return Status::OK();
}

Result<TopologyNode> Topology::GetNode(int id) const {
  for (const TopologyNode& n : nodes_) {
    if (n.id == id) return n;
  }
  return Status::NotFound("no node " + std::to_string(id));
}

Result<TopologyLink> Topology::GetLink(int from, int to) const {
  for (const TopologyLink& l : links_) {
    if (l.from == from && l.to == to) return l;
  }
  return Status::NotFound("no link " + std::to_string(from) + "->" +
                          std::to_string(to));
}

Result<std::vector<TopologyLink>> Topology::ShortestPath(int from,
                                                         int to) const {
  NM_RETURN_NOT_OK(GetNode(from).status());
  NM_RETURN_NOT_OK(GetNode(to).status());
  if (from == to) return std::vector<TopologyLink>{};
  // Dijkstra over the (small) node set. Hop weight: the transfer time of
  // a nominal 1 KB frame, so a 1 GB/s datacenter hop beats a cellular hop
  // even when their latencies match. Ties resolve toward fewer hops, then
  // the lower predecessor id, making routes deterministic.
  struct Best {
    double cost = std::numeric_limits<double>::infinity();
    int hops = std::numeric_limits<int>::max();
    int prev = -1;           // predecessor node id
    int via = -1;            // index into links_ of the arriving link
    bool settled = false;
  };
  constexpr double kNominalFrameBytes = 1024.0;
  std::map<int, Best> best;
  best[from] = Best{0.0, 0, -1, -1, false};
  while (true) {
    // Pick the cheapest unsettled node (lowest cost, then hops, then id).
    int current = -1;
    for (const auto& [id, b] : best) {
      if (b.settled) continue;
      if (current < 0) {
        current = id;
        continue;
      }
      const Best& c = best[current];
      if (b.cost < c.cost || (b.cost == c.cost && b.hops < c.hops)) {
        current = id;
      }
    }
    if (current < 0) break;
    if (current == to) break;
    Best& settled = best[current];
    settled.settled = true;
    for (size_t i = 0; i < links_.size(); ++i) {
      const TopologyLink& link = links_[i];
      if (link.from != current) continue;
      const double hop_cost = kNominalFrameBytes / link.bandwidth_bytes_per_sec +
                              ToSeconds(link.latency);
      const double cost = settled.cost + hop_cost;
      const int hops = settled.hops + 1;
      Best& b = best[link.to];  // default-inserts at infinity
      if (cost < b.cost || (cost == b.cost && hops < b.hops) ||
          (cost == b.cost && hops == b.hops && current < b.prev)) {
        b.cost = cost;
        b.hops = hops;
        b.prev = current;
        b.via = static_cast<int>(i);
      }
    }
  }
  const auto it = best.find(to);
  if (it == best.end() || it->second.via < 0) {
    return Status::NotFound("no route " + std::to_string(from) + "->" +
                            std::to_string(to));
  }
  std::vector<TopologyLink> route;
  for (int node = to; node != from;) {
    const Best& b = best[node];
    route.push_back(links_[static_cast<size_t>(b.via)]);
    node = b.prev;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

Topology Topology::SncbReference(int num_trains, double uplink_bytes_per_sec,
                                 Duration uplink_latency) {
  Topology topo;
  (void)topo.AddNode({0, NodeKind::kCoordinator, "coordinator", 4.0});
  (void)topo.AddNode({1, NodeKind::kCloudWorker, "cloud-worker", 4.0});
  // Coordinator <-> cloud worker on a fast datacenter link.
  (void)topo.AddLink({1, 0, 1e9, Millis(1)});
  (void)topo.AddLink({0, 1, 1e9, Millis(1)});
  for (int i = 0; i < num_trains; ++i) {
    const int id = 2 + i;
    (void)topo.AddNode(
        {id, NodeKind::kEdgeWorker, "train-" + std::to_string(i), 1.0});
    // Cellular uplink/downlink between the train and the cloud.
    (void)topo.AddLink({id, 1, uplink_bytes_per_sec, uplink_latency});
    (void)topo.AddLink({1, id, uplink_bytes_per_sec, uplink_latency});
  }
  return topo;
}

Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement) {
  DeploymentReport report;
  const int chain_length = static_cast<int>(op_stats.size());
  // Bytes flowing on chain edge (i -> i+1): output of element i, where
  // i == -1 is the source.
  for (int i = -1; i < chain_length - 1; ++i) {
    auto from_it = placement.node_of.find(i);
    auto to_it = placement.node_of.find(i + 1);
    if (from_it == placement.node_of.end() ||
        to_it == placement.node_of.end()) {
      return Status::InvalidArgument("placement missing operator " +
                                     std::to_string(i));
    }
    if (from_it->second == to_it->second) continue;  // same node: free
    // Nodes without a direct link still communicate: data relays over the
    // cheapest multi-hop route (e.g. train -> cloud worker -> coordinator
    // in the SNCB reference topology, whose trains only link to the cloud
    // worker).
    NM_ASSIGN_OR_RETURN(std::vector<TopologyLink> route,
                        topology.ShortestPath(from_it->second, to_it->second));
    const uint64_t bytes = i < 0
                               ? source_bytes
                               : op_stats[static_cast<size_t>(i)].second.bytes_out;
    for (const TopologyLink& link : route) {
      const auto key = std::make_pair(link.from, link.to);
      report.link_bytes[key] += bytes;
      const double seconds = static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec +
                             ToSeconds(link.latency);
      report.link_seconds[key] += seconds;
      report.total_transfer_seconds += seconds;
      NM_ASSIGN_OR_RETURN(TopologyNode from_node,
                          topology.GetNode(link.from));
      NM_ASSIGN_OR_RETURN(TopologyNode to_node, topology.GetNode(link.to));
      if (from_node.kind == NodeKind::kEdgeWorker &&
          to_node.kind != NodeKind::kEdgeWorker) {
        report.uplink_bytes += bytes;
      }
    }
  }
  return report;
}

Result<std::shared_ptr<NetworkChannel>> NetworkChannel::Connect(
    const Topology& topology, int from, int to) {
  if (from == to) {
    return Status::InvalidArgument("channel endpoints must differ (node " +
                                   std::to_string(from) + ")");
  }
  NM_ASSIGN_OR_RETURN(std::vector<TopologyLink> route,
                      topology.ShortestPath(from, to));
  std::vector<bool> hop_is_uplink;
  hop_is_uplink.reserve(route.size());
  for (const TopologyLink& link : route) {
    NM_ASSIGN_OR_RETURN(TopologyNode from_node, topology.GetNode(link.from));
    NM_ASSIGN_OR_RETURN(TopologyNode to_node, topology.GetNode(link.to));
    hop_is_uplink.push_back(from_node.kind == NodeKind::kEdgeWorker &&
                            to_node.kind != NodeKind::kEdgeWorker);
  }
  return std::shared_ptr<NetworkChannel>(new NetworkChannel(
      from, to, std::move(route), std::move(hop_is_uplink)));
}

void NetworkChannel::Send(std::vector<uint8_t> frame, uint64_t payload_bytes,
                          uint64_t events) {
  double frame_seconds = 0.0;
  for (const TopologyLink& link : route_) {
    frame_seconds += static_cast<double>(frame.size()) /
                         link.bandwidth_bytes_per_sec +
                     ToSeconds(link.latency);
  }
  // Metrics record lock-free (bound before the run, immutable after).
  if (m_wire_bytes_ != nullptr) {
    m_wire_bytes_->Add(frame.size());
    m_frames_->Increment();
    m_events_->Add(events);
    m_transfer_micros_->Record(
        static_cast<int64_t>(frame_seconds * 1e6));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  frames_ += 1;
  events_ += events;
  payload_bytes_ += payload_bytes;
  wire_bytes_ += frame.size();
  transfer_seconds_ += frame_seconds;
  in_flight_.push_back(std::move(frame));
}

bool NetworkChannel::Receive(std::vector<uint8_t>* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_.empty()) return false;
  *frame = std::move(in_flight_.front());
  in_flight_.pop_front();
  return true;
}

Result<DeploymentReport> MeasureDeployment(
    const std::vector<std::shared_ptr<NetworkChannel>>& channels) {
  DeploymentReport report;
  for (const std::shared_ptr<NetworkChannel>& channel : channels) {
    if (!channel) return Status::InvalidArgument("null channel");
    std::lock_guard<std::mutex> lock(channel->mutex_);
    report.wire_bytes += channel->wire_bytes_;
    report.frames += channel->frames_;
    report.total_transfer_seconds += channel->transfer_seconds_;
    for (size_t h = 0; h < channel->route_.size(); ++h) {
      const TopologyLink& link = channel->route_[h];
      const auto key = std::make_pair(link.from, link.to);
      report.link_bytes[key] += channel->payload_bytes_;
      report.link_seconds[key] +=
          static_cast<double>(channel->wire_bytes_) /
              link.bandwidth_bytes_per_sec +
          static_cast<double>(channel->frames_) * ToSeconds(link.latency);
      if (channel->hop_is_uplink_[h]) {
        report.uplink_bytes += channel->payload_bytes_;
      }
    }
  }
  return report;
}

Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;
  for (size_t i = 0; i + 1 < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = edge_node;
  }
  // The sink (last chain element) runs in the cloud: results ship up.
  if (chain_length > 0) {
    p.node_of[static_cast<int>(chain_length - 1)] = cloud_node;
  }
  return p;
}

Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node) {
  Placement p;
  p.node_of[-1] = edge_node;  // sensors are on the train
  for (size_t i = 0; i < chain_length; ++i) {
    p.node_of[static_cast<int>(i)] = cloud_node;
  }
  return p;
}

Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes) {
  const int n = static_cast<int>(op_stats.size());
  // Cut after element `cut` (−1 = source only on the edge); the bytes that
  // cross are that element's output. The sink (element n−1) stays cloud-side,
  // so cuts range over [−1, n−2].
  int best_cut = -1;
  uint64_t best_bytes = source_bytes;
  for (int cut = 0; cut <= n - 2; ++cut) {
    const uint64_t bytes = op_stats[static_cast<size_t>(cut)].second.bytes_out;
    // <= not <: a tie moves the cut deeper, keeping the tied operator on
    // the edge (maximal pushdown) instead of shipping the same bytes and
    // spending cloud compute on work the train could have done.
    if (bytes <= best_bytes) {
      best_bytes = bytes;
      best_cut = cut;
    }
  }
  Placement p;
  p.node_of[-1] = edge_node;
  for (int i = 0; i < n; ++i) {
    p.node_of[i] = i <= best_cut ? edge_node : cloud_node;
  }
  if (n > 0) p.node_of[n - 1] = cloud_node;  // sink in the cloud
  if (out_uplink_bytes != nullptr) *out_uplink_bytes = best_bytes;
  return p;
}

}  // namespace nebulameos::nebula

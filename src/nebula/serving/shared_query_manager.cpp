#include "nebula/serving/shared_query_manager.hpp"

#include <cctype>

#include "nebula/analysis/plan_verifier.hpp"
#include "nebula/optimizer.hpp"

namespace nebulameos::nebula::serving {

namespace {

// Longest leading run of `ops` that may be shared: merge-safe (per
// `analysis::OperatorMergeSafe` — the same predicate the plan verifier's
// merge-safety rule enforces on shared prefixes), clonable, and never
// ending on a dangling KeyBy (the key marker must stay with the stateful
// node that consumes it).
size_t MaxShareableLen(const std::vector<LogicalOperatorPtr>& ops) {
  size_t len = 0;
  while (len < ops.size() && analysis::OperatorMergeSafe(*ops[len]) &&
         CloneOperator(*ops[len]) != nullptr) {
    ++len;
  }
  while (len > 0 && ops[len - 1]->kind() == LogicalOperator::Kind::kKeyBy) {
    --len;
  }
  return len;
}

// Longest common structural prefix between an existing group prefix and a
// candidate plan's ops, bounded by the candidate's shareable length.
size_t CommonPrefixLen(const std::vector<LogicalOperatorPtr>& prefix,
                       const std::vector<LogicalOperatorPtr>& ops,
                       size_t bound) {
  size_t len = 0;
  while (len < prefix.size() && len < bound &&
         StructurallyEqual(*prefix[len], *ops[len])) {
    ++len;
  }
  while (len > 0 &&
         prefix[len - 1]->kind() == LogicalOperator::Kind::kKeyBy) {
    --len;
  }
  return len;
}

// The topology node a branch suffix runs on: its first placement
// annotation (suffixes never span nodes — the shared host delivers the
// stream to one node and branches consume it there).
int DeliveryNodeOf(const std::vector<LogicalOperatorPtr>& suffix) {
  for (const LogicalOperatorPtr& op : suffix) {
    if (op->placement() != LogicalOperator::kUnplaced) {
      return op->placement();
    }
  }
  return LogicalOperator::kUnplaced;
}

// True when `name` is an instrument of a dynamic branch other than
// `own_branch` — the entries `Metrics(vid)` filters from the host
// snapshot so one client cannot see another client's flow.
bool IsOtherBranchMetric(const std::string& name, int own_branch) {
  const auto tagged_branch = [&name](const std::string& prefix,
                                     char terminator) -> int {
    if (name.rfind(prefix, 0) != 0) return -1;
    size_t end = prefix.size();
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end]))) {
      ++end;
    }
    if (end == prefix.size() || end >= name.size() ||
        name[end] != terminator) {
      return -1;
    }
    return std::stoi(name.substr(prefix.size(), end - prefix.size()));
  };
  int branch = tagged_branch("op.b", '/');
  if (branch < 0) branch = tagged_branch("worker.strand.b", '.');
  return branch >= 0 && branch != own_branch;
}

}  // namespace

Result<int> SharedQueryManager::Submit(LogicalPlan plan) {
  NM_RETURN_NOT_OK(plan.Validate());
  // Optimize up front with the default pipeline (placed plans are shaped
  // already and submit verbatim, mirroring the engine): structural
  // matching must see the *final* shape, or two equal queries could
  // diverge under rewriting after being merged.
  if (!plan.IsPlaced()) {
    const PlanRewriter rewriter = PlanRewriter::Default();
    NM_RETURN_NOT_OK(rewriter.Rewrite(&plan));
  }
  const std::string signature =
      plan.source() != nullptr ? plan.source()->Signature() : std::string();

  MutexLock lock(mutex_);
  const int vid = next_vid_++;

  // Unshareable plans (unnamed source, fan-out DAG) run dedicated.
  if (signature.empty() || plan.HasFanOut()) {
    lock.Unlock();
    NM_ASSIGN_OR_RETURN(const int engine_id, engine_->Submit(std::move(plan)));
    lock.Lock();
    Member member;
    member.vid = vid;
    member.engine_id = engine_id;
    members_.emplace(vid, std::move(member));
    return vid;
  }

  std::vector<LogicalOperatorPtr>& ops = plan.mutable_ops();
  const size_t shareable = MaxShareableLen(ops);

  // Find a compatible group: same source signature and source placement;
  // a started host additionally requires the plan to extend its *entire*
  // prefix (a running pipeline cannot shrink).
  Group* target = nullptr;
  size_t common = 0;
  for (Group& group : groups_) {
    if (group.signature != signature ||
        group.source_placement != plan.source_placement() ||
        group.member_vids.empty()) {
      continue;
    }
    const size_t len = CommonPrefixLen(group.prefix, ops, shareable);
    if (group.started && len < group.prefix.size()) continue;
    target = &group;
    common = len;
    break;
  }

  if (target == nullptr) {
    // Found a new group around this plan's maximal shareable prefix.
    Group group;
    group.signature = signature;
    group.source_placement = plan.source_placement();
    group.source = plan.TakeSource();
    for (size_t i = 0; i < shareable; ++i) {
      group.prefix.push_back(std::move(ops[i]));
    }
    Member member;
    member.vid = vid;
    member.group = static_cast<int>(groups_.size());
    for (size_t i = shareable; i < ops.size(); ++i) {
      member.pending_suffix.push_back(std::move(ops[i]));
    }
    group.delivery_node = DeliveryNodeOf(member.pending_suffix);
    group.member_vids.push_back(vid);
    groups_.push_back(std::move(group));
    members_.emplace(vid, std::move(member));
    return vid;
  }

  // Unstarted group whose prefix is longer than the common part: shrink
  // it — the cut ops move (as clones) to the front of every existing
  // member's suffix, so each member still computes its full plan.
  if (!target->started && common < target->prefix.size()) {
    for (const int member_vid : target->member_vids) {
      Member& member = members_.at(member_vid);
      std::vector<LogicalOperatorPtr> suffix;
      for (size_t i = common; i < target->prefix.size(); ++i) {
        LogicalOperatorPtr clone = CloneOperator(*target->prefix[i]);
        if (clone == nullptr) {
          return Status::Internal("shared prefix operator failed to clone");
        }
        suffix.push_back(std::move(clone));
      }
      for (LogicalOperatorPtr& op : member.pending_suffix) {
        suffix.push_back(std::move(op));
      }
      member.pending_suffix = std::move(suffix);
    }
    target->prefix.resize(common);
    target->delivery_node = DeliveryNodeOf(
        members_.at(target->member_vids.front()).pending_suffix);
  }

  Member member;
  member.vid = vid;
  member.group = static_cast<int>(target - groups_.data());
  for (size_t i = common; i < ops.size(); ++i) {
    member.pending_suffix.push_back(std::move(ops[i]));
  }
  if (target->started) {
    // Runtime admission: the host is live — attach now; the branch joins
    // the shared stream at the next buffer boundary.
    NM_ASSIGN_OR_RETURN(
        member.branch_id,
        engine_->AttachBranch(target->host_id,
                              std::move(member.pending_suffix)));
    member.pending_suffix.clear();
  }
  target->member_vids.push_back(vid);
  members_.emplace(vid, std::move(member));
  return vid;
}

Result<int> SharedQueryManager::Submit(Query query) {
  NM_ASSIGN_OR_RETURN(LogicalPlan plan, std::move(query).Build());
  return Submit(std::move(plan));
}

Status SharedQueryManager::StartGroupLocked(Group* group) {
  if (group->started) return Status::OK();
  LogicalPlan prefix_plan;
  prefix_plan.SetSource(std::move(group->source));
  prefix_plan.set_source_placement(group->source_placement);
  // The host gets clones; the group keeps the originals for structural
  // matching of later runtime admissions.
  for (const LogicalOperatorPtr& op : group->prefix) {
    LogicalOperatorPtr clone = CloneOperator(*op);
    if (clone == nullptr) {
      return Status::Internal("shared prefix operator failed to clone");
    }
    prefix_plan.Append(std::move(clone));
  }
  NM_ASSIGN_OR_RETURN(
      group->host_id,
      engine_->SubmitShared(std::move(prefix_plan), group->delivery_node));
  for (const int member_vid : group->member_vids) {
    Member& member = members_.at(member_vid);
    if (member.cancelled) continue;
    NM_ASSIGN_OR_RETURN(
        member.branch_id,
        engine_->AttachBranch(group->host_id,
                              std::move(member.pending_suffix)));
    member.pending_suffix.clear();
  }
  NM_RETURN_NOT_OK(engine_->Start(group->host_id));
  group->started = true;
  return Status::OK();
}

Status SharedQueryManager::Start(int vid) {
  MutexLock lock(mutex_);
  auto it = members_.find(vid);
  if (it == members_.end()) return Status::NotFound("unknown virtual query");
  Member& member = it->second;
  if (member.cancelled) {
    return Status::FailedPrecondition("virtual query was cancelled");
  }
  if (member.group < 0) {
    const int engine_id = member.engine_id;
    lock.Unlock();
    return engine_->Start(engine_id);
  }
  // Starting any member starts the host — and with it every member
  // admitted so far (they share one source stream).
  return StartGroupLocked(&groups_[member.group]);
}

Status SharedQueryManager::Wait(int vid) {
  int engine_id = -1;
  int branch_id = -1;
  {
    MutexLock lock(mutex_);
    auto it = members_.find(vid);
    if (it == members_.end()) return Status::NotFound("unknown virtual query");
    const Member& member = it->second;
    if (member.cancelled) return Status::OK();
    if (member.group < 0) {
      engine_id = member.engine_id;
    } else {
      const Group& group = groups_[member.group];
      if (!group.started) {
        return Status::FailedPrecondition("virtual query not started");
      }
      engine_id = group.host_id;
      branch_id = member.branch_id;
    }
  }
  Status host = engine_->Wait(engine_id);
  // A branch that failed mid-run detached without failing the host (fault
  // isolation): the host wait comes back OK, so surface the branch's own
  // failure to the client that owns it.
  if (host.ok() && branch_id >= 0) {
    return engine_->BranchStatus(engine_id, branch_id);
  }
  return host;
}

Status SharedQueryManager::Cancel(int vid) {
  int engine_to_cancel = -1;
  {
    MutexLock lock(mutex_);
    auto it = members_.find(vid);
    if (it == members_.end()) return Status::NotFound("unknown virtual query");
    Member& member = it->second;
    if (member.cancelled) return Status::OK();
    member.cancelled = true;
    if (member.group < 0) {
      engine_to_cancel = member.engine_id;
    } else {
      Group& group = groups_[member.group];
      auto pos = std::find(group.member_vids.begin(), group.member_vids.end(),
                           vid);
      if (pos != group.member_vids.end()) group.member_vids.erase(pos);
      member.pending_suffix.clear();
      if (group.started && member.branch_id >= 0) {
        NM_RETURN_NOT_OK(
            engine_->DetachBranch(group.host_id, member.branch_id));
      }
      // Last member out tears the whole host down.
      if (group.started && group.member_vids.empty()) {
        engine_to_cancel = group.host_id;
      }
    }
  }
  if (engine_to_cancel >= 0) return engine_->Cancel(engine_to_cancel);
  return Status::OK();
}

Result<QueryStats> SharedQueryManager::Stats(int vid) const {
  int host_id = -1;
  int branch_id = -1;
  int engine_id = -1;
  {
    MutexLock lock(mutex_);
    auto it = members_.find(vid);
    if (it == members_.end()) return Status::NotFound("unknown virtual query");
    const Member& member = it->second;
    if (member.cancelled) {
      return Status::FailedPrecondition("virtual query was cancelled");
    }
    if (member.group < 0) {
      engine_id = member.engine_id;
    } else if (member.branch_id < 0) {
      return QueryStats{};  // admitted, host not started yet
    } else {
      host_id = groups_[member.group].host_id;
      branch_id = member.branch_id;
    }
  }
  if (engine_id >= 0) return engine_->Stats(engine_id);
  return engine_->BranchStats(host_id, branch_id);
}

Result<metrics::MetricsSnapshot> SharedQueryManager::Metrics(int vid) const {
  int host_id = -1;
  int branch_id = -1;
  int engine_id = -1;
  {
    MutexLock lock(mutex_);
    auto it = members_.find(vid);
    if (it == members_.end()) return Status::NotFound("unknown virtual query");
    const Member& member = it->second;
    if (member.cancelled) {
      return Status::FailedPrecondition("virtual query was cancelled");
    }
    if (member.group < 0) {
      engine_id = member.engine_id;
    } else if (member.branch_id < 0) {
      return metrics::MetricsSnapshot{};
    } else {
      host_id = groups_[member.group].host_id;
      branch_id = member.branch_id;
    }
  }
  if (engine_id >= 0) return engine_->Metrics(engine_id);
  NM_ASSIGN_OR_RETURN(metrics::MetricsSnapshot snapshot,
                      engine_->Metrics(host_id));
  const auto filter = [branch_id](auto* map) {
    for (auto it = map->begin(); it != map->end();) {
      if (IsOtherBranchMetric(it->first, branch_id)) {
        it = map->erase(it);
      } else {
        ++it;
      }
    }
  };
  filter(&snapshot.counters);
  filter(&snapshot.gauges);
  filter(&snapshot.histograms);
  return snapshot;
}

Result<DeploymentReport> SharedQueryManager::Deployment(int vid) const {
  int engine_id = -1;
  {
    MutexLock lock(mutex_);
    auto it = members_.find(vid);
    if (it == members_.end()) return Status::NotFound("unknown virtual query");
    const Member& member = it->second;
    if (member.cancelled) {
      return Status::FailedPrecondition("virtual query was cancelled");
    }
    if (member.group < 0) {
      engine_id = member.engine_id;
    } else {
      const Group& group = groups_[member.group];
      if (!group.started) return DeploymentReport{};
      engine_id = group.host_id;
    }
  }
  return engine_->Deployment(engine_id);
}

size_t SharedQueryManager::NumClientQueries() const {
  MutexLock lock(mutex_);
  size_t n = 0;
  for (const auto& [vid, member] : members_) {
    if (!member.cancelled) ++n;
  }
  return n;
}

size_t SharedQueryManager::NumHostedPlans() const {
  MutexLock lock(mutex_);
  size_t n = 0;
  for (const Group& group : groups_) {
    if (!group.member_vids.empty()) ++n;
  }
  for (const auto& [vid, member] : members_) {
    if (!member.cancelled && member.group < 0) ++n;
  }
  return n;
}

std::vector<int> SharedQueryManager::Hosts() const {
  MutexLock lock(mutex_);
  std::vector<int> out;
  for (const Group& group : groups_) {
    if (group.started && !group.member_vids.empty()) {
      out.push_back(group.host_id);
    }
  }
  for (const auto& [vid, member] : members_) {
    if (!member.cancelled && member.group < 0) out.push_back(member.engine_id);
  }
  return out;
}

}  // namespace nebulameos::nebula::serving

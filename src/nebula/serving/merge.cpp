#include "nebula/serving/merge.hpp"

#include <algorithm>
#include <limits>

namespace nebulameos::nebula::serving {

namespace {

bool RowLess(const MergeNode::Row& a, const MergeNode::Row& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
  return a.seq < b.seq;
}

}  // namespace

/// The per-stream sink: decodes each consumed batch into merge rows and
/// offers them to the central state. Strand-serialized by the engine like
/// any sink, so per-stream arrival order (the `seq` component of the
/// ordering key) is deterministic.
class MergeNode::Input final : public SinkOperator {
 public:
  Input(Schema schema, MergeNode* merge, int stream_id)
      : SinkOperator(std::move(schema)), merge_(merge), stream_id_(stream_id) {}

  std::string name() const override {
    return "MergeInput(" + std::to_string(stream_id_) + ")";
  }

 protected:
  Status Consume(const exec::Batch& batch) override {
    std::vector<Row> rows;
    rows.reserve(batch.NumRows());
    const size_t num_fields = schema_.num_fields();
    for (size_t i = 0; i < batch.NumRows(); ++i) {
      const RecordView rec = batch.data->At(batch.RowAt(i));
      Row row;
      row.stream_id = stream_id_;
      if (merge_->time_index_ >= 0) {
        row.ts = rec.GetInt64(static_cast<size_t>(merge_->time_index_));
      }
      row.values.reserve(num_fields);
      for (size_t f = 0; f < num_fields; ++f) {
        switch (schema_.field(f).type) {
          case DataType::kBool:
            row.values.emplace_back(rec.GetBool(f));
            break;
          case DataType::kInt64:
          case DataType::kTimestamp:
            row.values.emplace_back(rec.GetInt64(f));
            break;
          case DataType::kDouble:
            row.values.emplace_back(rec.GetDouble(f));
            break;
          default:
            row.values.emplace_back(rec.GetText(f));
            break;
        }
      }
      rows.push_back(std::move(row));
    }
    merge_->Offer(stream_id_, std::move(rows));
    return Status::OK();
  }

 private:
  MergeNode* merge_;
  int stream_id_;
};

MergeNode::MergeNode(Schema schema, std::string time_field)
    : schema_(std::move(schema)) {
  if (!time_field.empty()) {
    auto idx = schema_.IndexOf(time_field);
    if (idx.ok()) time_index_ = static_cast<int>(*idx);
  }
}

std::shared_ptr<SinkOperator> MergeNode::InputFor(int stream_id) {
  MutexLock lock(mutex_);
  auto it = inputs_.find(stream_id);
  if (it == inputs_.end()) {
    it = inputs_
             .emplace(stream_id,
                      std::make_shared<Input>(schema_, this, stream_id))
             .first;
    // Open with the lowest watermark: an input that has produced nothing
    // yet holds back the merged output (a row from any other stream could
    // still be preceded by one of this stream's).
    watermarks_[stream_id] = std::numeric_limits<Timestamp>::min();
    next_seq_[stream_id] = 0;
  }
  return it->second;
}

void MergeNode::CloseInput(int stream_id) {
  MutexLock lock(mutex_);
  watermarks_.erase(stream_id);
  ReleaseLocked();
}

void MergeNode::CloseAllInputs() {
  MutexLock lock(mutex_);
  watermarks_.clear();
  ReleaseLocked();
}

void MergeNode::Offer(int stream_id, std::vector<Row> rows) {
  if (rows.empty()) return;
  MutexLock lock(mutex_);
  uint64_t& seq = next_seq_[stream_id];
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  for (Row& row : rows) {
    row.seq = seq++;
    max_ts = std::max(max_ts, row.ts);
    pending_.push_back(std::move(row));
  }
  auto wm = watermarks_.find(stream_id);
  if (wm != watermarks_.end()) wm->second = std::max(wm->second, max_ts);
  ReleaseLocked();
}

void MergeNode::ReleaseLocked() {
  // The release frontier: no open input can still produce a row at or
  // below the minimum of the open watermarks.
  Timestamp frontier = std::numeric_limits<Timestamp>::max();
  for (const auto& [id, wm] : watermarks_) frontier = std::min(frontier, wm);
  auto held = std::stable_partition(
      pending_.begin(), pending_.end(),
      [frontier](const Row& row) { return row.ts > frontier; });
  for (auto it = held; it != pending_.end(); ++it) {
    released_.push_back(std::move(*it));
  }
  pending_.erase(held, pending_.end());
}

std::vector<MergeNode::Row> MergeNode::Rows() const {
  std::vector<Row> out;
  {
    MutexLock lock(mutex_);
    out = released_;
  }
  std::sort(out.begin(), out.end(), RowLess);
  return out;
}

size_t MergeNode::RowCount() const {
  MutexLock lock(mutex_);
  return released_.size();
}

size_t MergeNode::PendingCount() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

}  // namespace nebulameos::nebula::serving

/// \file merge.hpp
/// \brief Coordinator-side merge layer: unions N per-stream result
/// streams (one per train in the fleet deployment) into one output with a
/// deterministic total order.
///
/// Each per-train plan terminates in a sink obtained from `InputFor(id)`;
/// the merge collects rows from all inputs concurrently and *releases*
/// them under a watermark contract: a row becomes visible once every
/// still-open input's watermark (the maximum event time it has produced)
/// has passed the row's timestamp, so no earlier-timestamped row can
/// still arrive from another stream. Ordering contract
/// (docs/ARCHITECTURE.md "Multi-query serving"): rows order by
/// `(event_ts, stream_id, seq)` where `seq` is the row's arrival index
/// within its stream — deterministic across runs and worker counts,
/// because each input sink is strand-serialized and per-stream arrival
/// order is therefore fixed.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "nebula/operators.hpp"

namespace nebulameos::nebula::serving {

/// \brief Merges per-stream sink outputs into one ordered row set.
class MergeNode {
 public:
  /// One merged row: the decoded record plus its merge-ordering key.
  struct Row {
    Timestamp ts = 0;   ///< event time (from `time_field`; 0 when absent)
    int stream_id = 0;  ///< which input produced it
    uint64_t seq = 0;   ///< arrival index within the stream
    std::vector<Value> values;
  };

  /// All inputs must produce \p schema; \p time_field names the event-time
  /// column driving watermark release (an unknown or empty name stamps
  /// every row ts=0, so rows only release when inputs close).
  MergeNode(Schema schema, std::string time_field);

  /// The sink feeding stream \p stream_id — attach it as the terminal sink
  /// of that stream's plan. Repeated calls return the same instance. The
  /// input starts *open*: its watermark holds back the merged output until
  /// rows arrive or `CloseInput` is called.
  std::shared_ptr<SinkOperator> InputFor(int stream_id);

  /// Declares stream \p stream_id complete: its watermark no longer holds
  /// back release. Closing every input releases every pending row.
  void CloseInput(int stream_id);

  /// Closes every input created so far.
  void CloseAllInputs();

  /// Released rows in `(ts, stream_id, seq)` order (sorted at read; the
  /// order is total and deterministic).
  std::vector<Row> Rows() const;

  /// Number of released rows.
  size_t RowCount() const;

  /// Rows still held back by an open input's watermark.
  size_t PendingCount() const;

  const Schema& schema() const { return schema_; }

 private:
  class Input;

  /// Called by an input sink under no lock; takes `mutex_`.
  void Offer(int stream_id, std::vector<Row> rows) NM_EXCLUDES(mutex_);
  /// Moves pending rows at or below the minimum open watermark into
  /// `released_`. Caller holds `mutex_`.
  void ReleaseLocked() NM_REQUIRES(mutex_);

  Schema schema_;
  int time_index_ = -1;  ///< -1 = no event-time column

  mutable nebulameos::Mutex mutex_;
  std::map<int, std::shared_ptr<Input>> inputs_ NM_GUARDED_BY(mutex_);
  /// Per open input; erased on close.
  std::map<int, Timestamp> watermarks_ NM_GUARDED_BY(mutex_);
  std::map<int, uint64_t> next_seq_ NM_GUARDED_BY(mutex_);
  std::vector<Row> pending_ NM_GUARDED_BY(mutex_);
  std::vector<Row> released_ NM_GUARDED_BY(mutex_);
};

}  // namespace nebulameos::nebula::serving

/// \file fleet.hpp
/// \brief Fleet deployment helper: the paper's SNCB reference topology
/// (coordinator + cloud worker + N train edge nodes) packaged with the
/// per-train placement and submission conventions the serving layer uses.
///
/// One `FleetDeployment` owns the `Topology` every engine in the fleet
/// runs against. Per-train queries are annotated with the paper's full
/// edge pushdown (source and operators on the train's edge node, sinks on
/// the cloud worker) and submitted through a `SharedQueryManager`, so the
/// K queries of one train share that train's ingest prefix and uplink
/// channel; the coordinator unions the per-train result streams with a
/// `MergeNode`.

#pragma once

#include "nebula/optimizer.hpp"
#include "nebula/serving/shared_query_manager.hpp"
#include "nebula/topology.hpp"

namespace nebulameos::nebula::serving {

/// \brief Fleet shape and uplink characteristics.
struct FleetOptions {
  int num_trains = 1;
  /// Constrained cellular uplink from each train to the cloud worker.
  double uplink_bytes_per_sec = 64.0 * 1024.0;
  Duration uplink_latency = Millis(50);
};

/// \brief The fleet's topology plus node-id and submission conventions.
class FleetDeployment {
 public:
  explicit FleetDeployment(FleetOptions options)
      : options_(options),
        topology_(Topology::SncbReference(options.num_trains,
                                          options.uplink_bytes_per_sec,
                                          options.uplink_latency)) {}

  int num_trains() const { return options_.num_trains; }
  /// SncbReference convention: coordinator 0, cloud worker 1, trains 2+i.
  int coordinator_node() const { return 0; }
  int cloud_node() const { return 1; }
  int edge_node(int train) const { return 2 + train; }

  const Topology& topology() const { return topology_; }

  /// Engine options wired to this fleet's topology (the deployment must
  /// outlive every engine built from them).
  EngineOptions MakeEngineOptions(EngineOptions base = {}) const {
    base.topology = &topology_;
    return base;
  }

  /// Annotates \p plan with full edge pushdown for \p train (source and
  /// operators on `edge_node(train)`, sink on the cloud worker) and
  /// submits it through \p manager. Queries of the same train sharing a
  /// source and operator prefix merge onto one shared host — and one
  /// uplink channel; different trains never merge (placements differ).
  Result<int> SubmitTrainQuery(SharedQueryManager* manager, int train,
                               LogicalPlan plan) const {
    if (train < 0 || train >= options_.num_trains) {
      return Status::InvalidArgument("train index out of range");
    }
    AnnotateEdgePushdownPlacement(&plan, edge_node(train), cloud_node());
    return manager->Submit(std::move(plan));
  }

  /// Fluent-query convenience for `SubmitTrainQuery`.
  Result<int> SubmitTrainQuery(SharedQueryManager* manager, int train,
                               Query query) const {
    NM_ASSIGN_OR_RETURN(LogicalPlan plan, std::move(query).Build());
    return SubmitTrainQuery(manager, train, std::move(plan));
  }

 private:
  FleetOptions options_;
  Topology topology_;
};

}  // namespace nebulameos::nebula::serving

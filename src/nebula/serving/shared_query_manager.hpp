/// \file shared_query_manager.hpp
/// \brief Fleet-scale multi-query serving: merges independently submitted
/// queries that share a source and an operator prefix onto one shared
/// ingest pipeline, with runtime admission and per-branch teardown.
///
/// NebulaStream serves many concurrent queries per worker by *sharing*:
/// two queries reading the same named logical source whose leading
/// operators are structurally identical need the shared work executed
/// only once per buffer. This manager sits above `NodeEngine::Submit` and
/// does exactly that — clients submit ordinary `LogicalPlan`s and get
/// back *virtual query ids*; behind the id, the plan either joined an
/// existing *shared host* (engine `SubmitShared` + `AttachBranch`) as a
/// branch, or founded a new one. The lifecycle:
///
///   Submit(plan A)  ──►  group{prefix=A[0..n)}         (host not running)
///   Submit(plan B)  ──►  prefix shrinks to the common
///                        structural prefix; the cut ops
///                        move into each member's suffix
///   Start(vidA)     ──►  SubmitShared(prefix) + AttachBranch per member
///   Submit(plan C)  ──►  host running: C must extend the full prefix —
///                        AttachBranch admits it mid-stream (no restart)
///   Cancel(vidB)    ──►  DetachBranch; the host keeps running
///   Cancel(last)    ──►  the host itself is cancelled and torn down
///
/// Sharing requires proof, not heuristics: sources must carry the same
/// non-empty `Source::Signature()` (named logical source + schema), every
/// shared operator must compare `StructurallyEqual` (placement
/// annotations included — plans placed on different topology nodes never
/// merge), and every shared expression must be `ExpressionMergeSafe`
/// (ad-hoc lambda expressions have unknowable semantics and never merge).
/// Plans that fail any gate are submitted as ordinary dedicated engine
/// queries — the manager never refuses a valid plan, it just cannot share
/// it.

#pragma once

#include <vector>

#include "common/mutex.hpp"
#include "nebula/engine.hpp"

namespace nebulameos::nebula::serving {

/// \brief Serving layer above one `NodeEngine`: shared-plan admission,
/// per-client virtual ids, branch-scoped stats/metrics, teardown.
///
/// Thread-compatible like the engine itself: concurrent calls on
/// *different* managers are fine; calls on one manager serialize through
/// an internal mutex (never held across blocking engine waits).
class SharedQueryManager {
 public:
  /// \p engine is non-owning and must outlive the manager.
  explicit SharedQueryManager(NodeEngine* engine) : engine_(engine) {}

  /// Validates and optimizes \p plan, then either merges it into a group
  /// of structurally prefix-equal plans or submits it dedicated. Returns
  /// the client's virtual query id. Submitting to a *running* group
  /// admits the query mid-stream: it starts consuming at the next buffer
  /// boundary. Placed plans are only merged when their placements match
  /// node for node.
  Result<int> Submit(LogicalPlan plan);

  /// Convenience: builds the fluent query and submits the emitted plan.
  Result<int> Submit(Query query);

  /// Starts the virtual query. For a member of an unstarted group this
  /// submits the shared prefix (`SubmitShared`), attaches every admitted
  /// member as a branch, and starts the host — so the first `Start` of a
  /// group starts all of its current members.
  Status Start(int vid);

  /// Blocks until the query's host completed (shared members wait on the
  /// host; the host finishes when its source is exhausted).
  Status Wait(int vid);

  /// Tears down one virtual query. A shared member detaches its branch —
  /// the host and every other member keep running undisturbed; when the
  /// *last* member of a running host leaves, the host itself is
  /// cancelled. Dedicated queries cancel directly.
  Status Cancel(int vid);

  /// Per-client statistics: shared ingest counters plus the branch's own
  /// operator and sink flow (`NodeEngine::BranchStats`). A member of a
  /// not-yet-started group reports zeros.
  Result<QueryStats> Stats(int vid) const;

  /// The client's view of the host metrics: engine- and prefix-level
  /// instruments plus the client's own branch instruments, with other
  /// branches' (`op.b<k>/...`, `worker.strand.b<k>...`) filtered out.
  Result<metrics::MetricsSnapshot> Metrics(int vid) const;

  /// The host's measured deployment report (shared members see the whole
  /// host's traffic — the shared channel ships once for all of them).
  Result<DeploymentReport> Deployment(int vid) const;

  // --- Introspection (tests, benchmarks, ops) ---

  /// Live client queries (cancelled ones excluded).
  size_t NumClientQueries() const;

  /// Physical plans behind them: shared hosts (started or not) plus
  /// dedicated queries. `NumClientQueries() / NumHostedPlans()` is the
  /// sharing ratio — queries-per-node in the fleet benchmark.
  size_t NumHostedPlans() const;

  /// Engine query ids of every started host/dedicated query.
  std::vector<int> Hosts() const;

 private:
  struct Member {
    int vid = 0;
    int group = -1;      ///< index into groups_; -1 = dedicated
    int engine_id = -1;  ///< dedicated engine query id
    int branch_id = -1;  ///< branch id once attached to the host
    /// Suffix ops (ending in the SinkNode) awaiting host start.
    std::vector<LogicalOperatorPtr> pending_suffix;
    bool cancelled = false;
  };

  struct Group {
    std::string signature;  ///< shared `Source::Signature()`
    int source_placement = LogicalOperator::kUnplaced;
    SourcePtr source;  ///< founder's source; consumed at host start
    /// The shared operator prefix (owned; every member's plan carried a
    /// structurally equal copy). Retained after start for runtime
    /// admission matching.
    std::vector<LogicalOperatorPtr> prefix;
    /// Topology node branch suffixes run on (from the founder's suffix
    /// placement); the host ships the shared stream there once.
    int delivery_node = LogicalOperator::kUnplaced;
    int host_id = -1;  ///< engine query id once submitted
    bool started = false;
    std::vector<int> member_vids;
  };

  Status StartGroupLocked(Group* group) NM_REQUIRES(mutex_);

  NodeEngine* engine_;
  mutable nebulameos::Mutex mutex_;
  std::map<int, Member> members_ NM_GUARDED_BY(mutex_);
  std::vector<Group> groups_ NM_GUARDED_BY(mutex_);
  int next_vid_ NM_GUARDED_BY(mutex_) = 1;
};

}  // namespace nebulameos::nebula::serving

#include "nebula/schema.hpp"

#include <cassert>
#include <unordered_set>

namespace nebulameos::nebula {

size_t DataTypeSize(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kTimestamp:
      return 8;
    case DataType::kText16:
      return 16;
    case DataType::kText32:
      return 32;
  }
  return 0;
}

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kText16:
      return "TEXT16";
    case DataType::kText32:
      return "TEXT32";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kTimestamp;
}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema field with empty name");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate schema field: " + f.name);
    }
  }
  Schema s;
  s.fields_ = std::move(fields);
  s.offsets_.reserve(s.fields_.size());
  size_t off = 0;
  for (const Field& f : s.fields_) {
    s.offsets_.push_back(off);
    off += DataTypeSize(f.type);
  }
  s.record_size_ = off;
  return s;
}

Schema Schema::Builder::Finish() const {
  auto res = Schema::Make(fields_);
  assert(res.ok());
  return *res;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return IndexOf(name).ok();
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ':';
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace nebulameos::nebula

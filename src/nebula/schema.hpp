/// \file schema.hpp
/// \brief Stream schemas and the row memory layout.
///
/// A `Schema` is an ordered list of typed fields. Records are fixed-size
/// rows (text fields are inline, fixed-width), so a `TupleBuffer` holds
/// `capacity = buffer_size / record_size` tuples — the layout NebulaStream
/// uses for its row memory layout on edge devices.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"

namespace nebulameos::nebula {

/// Physical field types. All fixed-width so records have a static layout.
enum class DataType : uint8_t {
  kBool,       ///< 1 byte
  kInt64,      ///< 8 bytes
  kDouble,     ///< 8 bytes
  kTimestamp,  ///< 8 bytes, microseconds since epoch
  kText16,     ///< 16 bytes inline, NUL-padded
  kText32,     ///< 32 bytes inline, NUL-padded
};

/// Byte width of a data type.
size_t DataTypeSize(DataType type);

/// Human-readable type name ("INT64", ...).
const char* DataTypeName(DataType type);

/// True for kInt64 / kDouble / kTimestamp.
bool IsNumeric(DataType type);

/// \brief One schema field: name + physical type.
struct Field {
  std::string name;
  DataType type;
};

/// \brief An ordered, named collection of fields with computed offsets.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails on duplicate or empty field names.
  static Result<Schema> Make(std::vector<Field> fields);

  /// Fluent construction used by query code:
  /// `Schema::Build().AddInt64("id").AddDouble("lon")...Finish()`.
  class Builder {
   public:
    Builder& Add(std::string name, DataType type) {
      fields_.push_back({std::move(name), type});
      return *this;
    }
    Builder& AddBool(std::string name) {
      return Add(std::move(name), DataType::kBool);
    }
    Builder& AddInt64(std::string name) {
      return Add(std::move(name), DataType::kInt64);
    }
    Builder& AddDouble(std::string name) {
      return Add(std::move(name), DataType::kDouble);
    }
    Builder& AddTimestamp(std::string name) {
      return Add(std::move(name), DataType::kTimestamp);
    }
    Builder& AddText16(std::string name) {
      return Add(std::move(name), DataType::kText16);
    }
    Builder& AddText32(std::string name) {
      return Add(std::move(name), DataType::kText32);
    }
    /// Finalizes the schema (asserts validity; use `Schema::Make` for
    /// fallible construction).
    Schema Finish() const;

   private:
    std::vector<Field> fields_;
  };

  /// Starts a fluent builder.
  static Builder Build() { return Builder(); }

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Bytes per record.
  size_t record_size() const { return record_size_; }

  /// Byte offset of field \p i within a record.
  size_t offset(size_t i) const { return offsets_[i]; }

  /// Index of the field named \p name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True iff a field named \p name exists.
  bool HasField(const std::string& name) const;

  /// Field by index.
  const Field& field(size_t i) const { return fields_[i]; }

  /// Schema equality (names and types).
  bool operator==(const Schema& other) const;

  /// "name:TYPE, ..." description.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<size_t> offsets_;
  size_t record_size_ = 0;
};

}  // namespace nebulameos::nebula

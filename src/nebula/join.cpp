#include "nebula/join.hpp"

#include <algorithm>

namespace nebulameos::nebula {

Result<OperatorPtr> TemporalLookupJoinOperator::Make(
    const Schema& input, TemporalLookupJoinOptions options) {
  if (!options.lookup) {
    return Status::InvalidArgument("lookup join needs a right-side source");
  }
  if (options.max_age <= 0) {
    return Status::InvalidArgument("lookup join max_age must be > 0");
  }
  auto op = std::unique_ptr<TemporalLookupJoinOperator>(
      new TemporalLookupJoinOperator());
  op->input_schema_ = input;
  op->right_schema_ = options.lookup->schema();
  NM_ASSIGN_OR_RETURN(op->left_key_index_, input.IndexOf(options.left_key));
  NM_ASSIGN_OR_RETURN(op->left_time_index_, input.IndexOf(options.left_time));
  NM_ASSIGN_OR_RETURN(op->right_key_index_,
                      op->right_schema_.IndexOf(options.right_key));
  NM_ASSIGN_OR_RETURN(op->right_time_index_,
                      op->right_schema_.IndexOf(options.right_time));
  if (input.field(op->left_key_index_).type != DataType::kInt64 ||
      op->right_schema_.field(op->right_key_index_).type != DataType::kInt64) {
    return Status::InvalidArgument("lookup join keys must be INT64");
  }
  // Output schema: left fields + right payload fields (key/time excluded),
  // prefixing names that collide.
  std::vector<Field> fields = input.fields();
  for (size_t i = 0; i < op->right_schema_.num_fields(); ++i) {
    if (i == op->right_key_index_ || i == op->right_time_index_) continue;
    Field f = op->right_schema_.field(i);
    if (input.HasField(f.name)) f.name = options.collision_prefix + f.name;
    fields.push_back(std::move(f));
    op->right_payload_indices_.push_back(i);
  }
  NM_ASSIGN_OR_RETURN(op->output_schema_, Schema::Make(std::move(fields)));
  op->options_ = std::move(options);
  return OperatorPtr(std::move(op));
}

Status TemporalLookupJoinOperator::Open(ExecutionContext* ctx) {
  NM_RETURN_NOT_OK(Operator::Open(ctx));
  if (opened_) return Status::OK();
  opened_ = true;
  // Drain the bounded right side into the per-key index.
  TupleBuffer buffer(right_schema_, 1024);
  while (true) {
    buffer.Clear();
    auto more = options_.lookup->Fill(&buffer);
    if (!more.ok()) return more.status();
    for (size_t i = 0; i < buffer.size(); ++i) {
      const RecordView rec = buffer.At(i);
      RightRow row;
      row.ts = rec.GetInt64(right_time_index_);
      row.bytes.assign(rec.data(), rec.data() + right_schema_.record_size());
      index_[rec.GetInt64(right_key_index_)].push_back(std::move(row));
      ++lookup_rows_;
    }
    if (!*more) break;
  }
  for (auto& [key, rows] : index_) {
    std::sort(rows.begin(), rows.end(),
              [](const RightRow& a, const RightRow& b) { return a.ts < b.ts; });
  }
  return Status::OK();
}

const TemporalLookupJoinOperator::RightRow*
TemporalLookupJoinOperator::FindNearest(int64_t key, Timestamp ts) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  const std::vector<RightRow>& rows = it->second;
  // First row with ts >= left ts; nearest is that one or its predecessor.
  auto pos = std::lower_bound(
      rows.begin(), rows.end(), ts,
      [](const RightRow& row, Timestamp t) { return row.ts < t; });
  const RightRow* best = nullptr;
  Duration best_gap = options_.max_age + 1;
  if (pos != rows.end()) {
    const Duration gap = pos->ts - ts;
    if (gap <= options_.max_age) {
      best = &*pos;
      best_gap = gap;
    }
  }
  if (pos != rows.begin()) {
    const RightRow& prev = *std::prev(pos);
    const Duration gap = ts - prev.ts;
    if (gap <= options_.max_age && gap < best_gap) best = &prev;
  }
  return best;
}

Status TemporalLookupJoinOperator::Process(const TupleBufferPtr& input,
                                           const EmitFn& emit) {
  CountIn(*input);
  TupleBufferPtr out;  // allocated on the first match only
  const size_t left_fields = input_schema_.num_fields();
  for (size_t i = 0; i < input->size(); ++i) {
    const RecordView rec = input->At(i);
    const RightRow* match =
        FindNearest(rec.GetInt64(left_key_index_),
                    rec.GetInt64(left_time_index_));
    if (match == nullptr) {
      ++unmatched_;
      continue;
    }
    if (!out) {
      out = ctx_->Allocate(output_schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    } else if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(output_schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    }
    RecordWriter w = out->Append();
    // Left fields verbatim, then right payload.
    std::memcpy(w.data(), rec.data(), input_schema_.record_size());
    const RecordView right(&right_schema_, match->bytes.data());
    for (size_t p = 0; p < right_payload_indices_.size(); ++p) {
      const size_t src = right_payload_indices_[p];
      const size_t dst = left_fields + p;
      switch (output_schema_.field(dst).type) {
        case DataType::kBool:
          w.SetBool(dst, right.GetBool(src));
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          w.SetInt64(dst, right.GetInt64(src));
          break;
        case DataType::kDouble:
          w.SetDouble(dst, right.GetDouble(src));
          break;
        case DataType::kText16:
        case DataType::kText32:
          w.SetText(dst, right.GetText(src));
          break;
      }
    }
  }
  // No matches → no emit: a watermark-only advance must not draw a pooled
  // buffer (windows fire on event times, not buffer watermarks).
  if (out) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

}  // namespace nebulameos::nebula

/// \file topology.hpp
/// \brief Simulated IoT topology: coordinator, edge and cloud workers,
/// links, multi-hop routes, operator placement, and network channels.
///
/// The paper's architecture (Figure 1) runs NebulaMEOS on an Intel-Atom
/// edge device aboard the train, shipping only processed results to a
/// server. This module reproduces that architecture as a measurable
/// simulation: a topology of nodes and links, shortest-path routing
/// between any two nodes, and `NetworkChannel` — a simulated connection
/// that carries serialized tuple frames between two placed pipeline
/// segments while counting every byte. The optimizer's `PlacementPass`
/// (optimizer.hpp) annotates a plan with target nodes, `CompilePlan`
/// lowers node transitions to `NetworkChannelSink`/`NetworkChannelSource`
/// pairs over these channels, and `NodeEngine::Deployment` reports the
/// traffic each channel actually carried.
///
/// The older post-hoc pricing path (`SimulateDeployment` over a
/// chain-indexed `Placement`) is kept for linear chains and as the
/// reference the measured channel counters are tested against.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "nebula/operator.hpp"

namespace nebulameos::nebula {

/// Role of a topology node.
enum class NodeKind { kCoordinator, kEdgeWorker, kCloudWorker };

/// \brief One physical (simulated) node.
struct TopologyNode {
  int id = 0;
  NodeKind kind = NodeKind::kEdgeWorker;
  std::string name;
  /// Relative compute speed (1.0 = reference edge device).
  double cpu_factor = 1.0;
};

/// \brief A directed link with bandwidth and propagation latency.
struct TopologyLink {
  int from = 0;
  int to = 0;
  double bandwidth_bytes_per_sec = 0.0;
  Duration latency = 0;
};

/// \brief A topology: nodes + links with lookup helpers.
class Topology {
 public:
  /// Adds a node; fails on duplicate id.
  Status AddNode(TopologyNode node);

  /// Adds a link; fails when an endpoint is unknown, bandwidth <= 0, or a
  /// link with the same (from, to) pair already exists (`AlreadyExists` —
  /// a silent duplicate would make `GetLink` ambiguous).
  Status AddLink(TopologyLink link);

  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  const std::vector<TopologyLink>& links() const { return links_; }

  /// Node by id.
  Result<TopologyNode> GetNode(int id) const;

  /// Direct link from \p from to \p to.
  Result<TopologyLink> GetLink(int from, int to) const;

  /// Cheapest multi-hop route from \p from to \p to (Dijkstra; hop weight
  /// is the transfer time of a nominal 1 KB frame, so latency and
  /// bandwidth both count). Empty when \p from == \p to; `NotFound` when
  /// no route exists. Deterministic: ties resolve toward fewer hops, then
  /// lower node ids.
  Result<std::vector<TopologyLink>> ShortestPath(int from, int to) const;

  /// Builds the paper's reference topology: one coordinator (cloud), one
  /// cloud worker, and \p num_trains edge workers, each connected to the
  /// cloud worker by a constrained cellular uplink.
  static Topology SncbReference(int num_trains, double uplink_bytes_per_sec,
                                Duration uplink_latency);

 private:
  std::vector<TopologyNode> nodes_;
  std::vector<TopologyLink> links_;
};

/// \brief Placement of a compiled chain onto nodes: `node_of[i]` is the node
/// executing operator `i`; index `-1` denotes the source, `size` the sink.
struct Placement {
  std::map<int, int> node_of;

  /// Node of operator \p op_index (must be present).
  int NodeOf(int op_index) const { return node_of.at(op_index); }
};

/// \brief Traffic and latency accounting of one deployed query.
///
/// Produced two ways: *priced* after the fact by `SimulateDeployment`
/// (record payload bytes only, one transfer per chain edge), or *measured*
/// from executed `NetworkChannel` traffic by `NodeEngine::Deployment`
/// (payload bytes per hop plus serialized wire bytes and frame counts).
struct DeploymentReport {
  /// Record payload bytes crossing each used link, keyed by (from, to).
  std::map<std::pair<int, int>, uint64_t> link_bytes;
  /// Serialization+propagation seconds per link.
  std::map<std::pair<int, int>, double> link_seconds;
  /// Total record payload bytes entering non-edge nodes from edge nodes.
  uint64_t uplink_bytes = 0;
  /// Sum over links of bytes/bandwidth + latency (sequential path model).
  double total_transfer_seconds = 0.0;
  /// Serialized bytes including frame headers (measured reports only;
  /// stays 0 for priced reports, which know nothing about framing).
  uint64_t wire_bytes = 0;
  /// Frames shipped across all channels (measured reports only).
  uint64_t frames = 0;
};

/// \brief One simulated network connection between two placed pipeline
/// segments, following the (possibly multi-hop) cheapest route between
/// its endpoints.
///
/// A `NetworkChannelSink` serializes each tuple buffer into a wire frame
/// and pushes it here; the paired `NetworkChannelSource` pops and
/// deserializes (operators.hpp). The channel accounts every transfer —
/// frames, record payload bytes, serialized wire bytes, and the transfer
/// seconds implied by each hop's bandwidth and latency — so a deployment
/// report can be *measured* instead of priced.
class NetworkChannel {
 public:
  /// Resolves the cheapest route from \p from to \p to in \p topology and
  /// pre-classifies which hops are cellular uplink (edge → non-edge).
  /// Fails when an endpoint is unknown or no route exists.
  static Result<std::shared_ptr<NetworkChannel>> Connect(
      const Topology& topology, int from, int to);

  int from_node() const { return from_; }
  int to_node() const { return to_; }
  const std::vector<TopologyLink>& route() const { return route_; }

  /// Enqueues one serialized frame of \p payload_bytes record bytes
  /// carrying \p events records, accounting the transfer on every hop.
  void Send(std::vector<uint8_t> frame, uint64_t payload_bytes,
            uint64_t events);

  /// Pops the next in-flight frame; false when the channel is drained.
  bool Receive(std::vector<uint8_t>* frame);

  // --- Traffic counters (readable while the query runs; each accessor
  // takes the channel lock the sender writes under) ---

  uint64_t frames() const { return Locked(frames_); }
  uint64_t events() const { return Locked(events_); }
  /// Record payload bytes shipped (comparable to `SimulateDeployment`
  /// link pricing, which also counts record bytes).
  uint64_t payload_bytes() const { return Locked(payload_bytes_); }
  /// Serialized bytes shipped, frame headers included.
  uint64_t wire_bytes() const { return Locked(wire_bytes_); }
  /// Sum over frames and hops of wire_bytes/bandwidth + latency.
  double transfer_seconds() const { return Locked(transfer_seconds_); }
  /// True when any hop leaves an edge worker for a non-edge node.
  bool crosses_uplink() const { return crosses_uplink_; }

  /// Resolves this channel's live instruments: wire-byte/frame/event
  /// counters plus a per-frame transfer-latency histogram, recorded on
  /// every `Send`. Pointers must outlive the channel (the engine binds
  /// them out of the query's registry before the run starts). All four
  /// must be set together; unbound channels record nothing.
  void BindMetrics(metrics::Counter* wire_bytes, metrics::Counter* frames,
                   metrics::Counter* events,
                   metrics::Histogram* transfer_micros) {
    m_wire_bytes_ = wire_bytes;
    m_frames_ = frames;
    m_events_ = events;
    m_transfer_micros_ = transfer_micros;
  }

 private:
  NetworkChannel(int from, int to, std::vector<TopologyLink> route,
                 std::vector<bool> hop_is_uplink)
      : from_(from),
        to_(to),
        route_(std::move(route)),
        hop_is_uplink_(std::move(hop_is_uplink)) {
    for (const bool uplink : hop_is_uplink_) {
      crosses_uplink_ = crosses_uplink_ || uplink;
    }
  }

  friend Result<DeploymentReport> MeasureDeployment(
      const std::vector<std::shared_ptr<NetworkChannel>>& channels);

  template <typename T>
  T Locked(const T& counter) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counter;
  }

  int from_ = 0;
  int to_ = 0;
  std::vector<TopologyLink> route_;
  std::vector<bool> hop_is_uplink_;
  bool crosses_uplink_ = false;

  mutable std::mutex mutex_;
  std::deque<std::vector<uint8_t>> in_flight_;
  uint64_t frames_ = 0;
  uint64_t events_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t wire_bytes_ = 0;
  double transfer_seconds_ = 0.0;

  // Metrics instruments (null until bound; set before the run starts and
  // immutable afterwards, so the sender reads them without the lock).
  metrics::Counter* m_wire_bytes_ = nullptr;
  metrics::Counter* m_frames_ = nullptr;
  metrics::Counter* m_events_ = nullptr;
  metrics::Histogram* m_transfer_micros_ = nullptr;
};

/// \brief Aggregates the traffic a set of executed channels carried into
/// one `DeploymentReport` (per-hop payload bytes and seconds, uplink
/// bytes, wire bytes, frames). The measured counterpart of
/// `SimulateDeployment`.
Result<DeploymentReport> MeasureDeployment(
    const std::vector<std::shared_ptr<NetworkChannel>>& channels);

/// \brief Prices a placement using measured per-operator flow.
///
/// \p op_stats is the engine's chain-ordered stats (operators then sink);
/// \p source_bytes is what the source produced. Each chain edge whose two
/// endpoints are placed on different nodes ships the upstream operator's
/// output bytes across the cheapest (possibly multi-hop) route between
/// the two nodes.
///
/// \deprecated Linear chains and post-hoc pricing only. New code should
/// annotate the plan (`MakePlacementPass`, optimizer.hpp), execute it on
/// an engine with a topology, and read the *measured* report from
/// `NodeEngine::Deployment`.
Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement);

/// All-on-edge placement: every operator on \p edge_node, sink on
/// \p cloud_node (results ship up).
Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node);

/// Ship-raw placement: source on \p edge_node, everything else on
/// \p cloud_node.
Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node);

/// \brief Incremental placement optimization: chooses the pipeline cut
/// (edge prefix → cloud suffix) that minimizes uplink bytes, using the
/// measured per-operator flow. The sink (final chain element) stays in the
/// cloud — results must reach the operations center. Byte-count ties break
/// toward the *deepest* cut (maximal edge pushdown — the paper's Figure 1
/// point: keep operators on the train whenever the uplink pays nothing
/// for it). Returns the placement and, through \p out_uplink_bytes
/// (optional), its uplink cost.
///
/// This is the decision NebulaStream's incremental query placement makes
/// per operator; here it reduces to the optimal single cut of a linear
/// chain. The DAG-aware generalization (one cut per fan-out branch) lives
/// in the optimizer as `MakePlacementPass`.
Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes = nullptr);

}  // namespace nebulameos::nebula

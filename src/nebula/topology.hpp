/// \file topology.hpp
/// \brief Simulated IoT topology: coordinator, edge and cloud workers,
/// links, multi-hop routes, operator placement, and network channels.
///
/// The paper's architecture (Figure 1) runs NebulaMEOS on an Intel-Atom
/// edge device aboard the train, shipping only processed results to a
/// server. This module reproduces that architecture as a measurable
/// simulation: a topology of nodes and links, shortest-path routing
/// between any two nodes, and `NetworkChannel` — a simulated connection
/// that carries serialized tuple frames between two placed pipeline
/// segments while counting every byte. The optimizer's `PlacementPass`
/// (optimizer.hpp) annotates a plan with target nodes, `CompilePlan`
/// lowers node transitions to `NetworkChannelSink`/`NetworkChannelSource`
/// pairs over these channels, and `NodeEngine::Deployment` reports the
/// traffic each channel actually carried.
///
/// The older post-hoc pricing path (`SimulateDeployment` over a
/// chain-indexed `Placement`) is kept for linear chains and as the
/// reference the measured channel counters are tested against.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "nebula/fault.hpp"
#include "nebula/operator.hpp"

namespace nebulameos::nebula {

/// Role of a topology node.
enum class NodeKind { kCoordinator, kEdgeWorker, kCloudWorker };

/// \brief One physical (simulated) node.
struct TopologyNode {
  int id = 0;
  NodeKind kind = NodeKind::kEdgeWorker;
  std::string name;
  /// Relative compute speed (1.0 = reference edge device).
  double cpu_factor = 1.0;
};

/// \brief A directed link with bandwidth and propagation latency.
struct TopologyLink {
  int from = 0;
  int to = 0;
  double bandwidth_bytes_per_sec = 0.0;
  Duration latency = 0;
  /// Fault behaviour of this link (default: perfectly reliable). Channels
  /// routed over the link combine the profiles of every hop with the
  /// engine-level profile (fault.hpp).
  FaultProfile fault = {};
};

/// \brief A topology: nodes + links with lookup helpers.
class Topology {
 public:
  /// Adds a node; fails on duplicate id.
  Status AddNode(TopologyNode node);

  /// Adds a link; fails when an endpoint is unknown, bandwidth <= 0, or a
  /// link with the same (from, to) pair already exists (`AlreadyExists` —
  /// a silent duplicate would make `GetLink` ambiguous).
  Status AddLink(TopologyLink link);

  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  const std::vector<TopologyLink>& links() const { return links_; }

  /// Node by id.
  Result<TopologyNode> GetNode(int id) const;

  /// Direct link from \p from to \p to.
  Result<TopologyLink> GetLink(int from, int to) const;

  /// Cheapest multi-hop route from \p from to \p to (Dijkstra; hop weight
  /// is the transfer time of a nominal 1 KB frame, so latency and
  /// bandwidth both count). Empty when \p from == \p to; `NotFound` when
  /// no route exists. Deterministic: ties resolve toward fewer hops, then
  /// lower node ids.
  Result<std::vector<TopologyLink>> ShortestPath(int from, int to) const;

  /// Builds the paper's reference topology: one coordinator (cloud), one
  /// cloud worker, and \p num_trains edge workers, each connected to the
  /// cloud worker by a constrained cellular uplink.
  static Topology SncbReference(int num_trains, double uplink_bytes_per_sec,
                                Duration uplink_latency);

 private:
  std::vector<TopologyNode> nodes_;
  std::vector<TopologyLink> links_;
};

/// \brief Placement of a compiled chain onto nodes: `node_of[i]` is the node
/// executing operator `i`; index `-1` denotes the source, `size` the sink.
struct Placement {
  std::map<int, int> node_of;

  /// Node of operator \p op_index (must be present).
  int NodeOf(int op_index) const { return node_of.at(op_index); }
};

/// \brief Traffic and latency accounting of one deployed query.
///
/// Produced two ways: *priced* after the fact by `SimulateDeployment`
/// (record payload bytes only, one transfer per chain edge), or *measured*
/// from executed `NetworkChannel` traffic by `NodeEngine::Deployment`
/// (payload bytes per hop plus serialized wire bytes and frame counts).
struct DeploymentReport {
  /// Record payload bytes crossing each used link, keyed by (from, to).
  std::map<std::pair<int, int>, uint64_t> link_bytes;
  /// Serialization+propagation seconds per link.
  std::map<std::pair<int, int>, double> link_seconds;
  /// Total record payload bytes entering non-edge nodes from edge nodes.
  uint64_t uplink_bytes = 0;
  /// Sum over links of bytes/bandwidth + latency (sequential path model).
  double total_transfer_seconds = 0.0;
  /// Serialized bytes including frame headers (measured reports only;
  /// stays 0 for priced reports, which know nothing about framing).
  uint64_t wire_bytes = 0;
  /// Frames shipped across all channels (measured reports only).
  uint64_t frames = 0;

  // --- Fault accounting (measured reports only; all zero when every
  // channel ran fault-free) ---
  uint64_t frames_dropped = 0;     ///< injected in-transit losses
  uint64_t frames_duplicated = 0;  ///< injected duplicate deliveries
  uint64_t frames_reordered = 0;   ///< injected swaps with a later frame
  uint64_t frames_delayed = 0;     ///< injected multi-send delays
  uint64_t retransmits = 0;        ///< recovery re-sends that succeeded
  uint64_t frames_shed = 0;        ///< shed by policy (retain queue or gap)
  uint64_t duplicates_suppressed = 0;  ///< receiver-side dedup hits
  uint64_t frames_lost = 0;  ///< unrecoverable frames skipped by policy
  /// Worst health across the measured channels: Degraded once any fault
  /// was observed, Disconnected once any channel died.
  HealthState health = HealthState::kHealthy;
};

/// \brief One simulated network connection between two placed pipeline
/// segments, following the (possibly multi-hop) cheapest route between
/// its endpoints.
///
/// A `NetworkChannelSink` serializes each tuple buffer into a wire frame
/// and pushes it here; the paired `NetworkChannelSource` pops and
/// deserializes (operators.hpp). The channel accounts every transfer —
/// frames, record payload bytes, serialized wire bytes, and the transfer
/// seconds implied by each hop's bandwidth and latency — so a deployment
/// report can be *measured* instead of priced.
///
/// Channels are reliable by default. `ConfigureFaults` arms a seeded
/// `FaultInjector` (fault.hpp) that drops, duplicates, reorders, delays
/// or disconnects frames deterministically, plus the retransmit machinery
/// that repairs those faults: every `Send` retains a bounded copy of the
/// frame keyed by its channel sequence number until the receiver `Ack`s
/// it; a receiver that detects a gap calls `RequestRetransmit`, which
/// re-injects the retained copy and prices the retry's exponential
/// backoff (plus seeded jitter) into the channel's transfer seconds.
class NetworkChannel {
 public:
  /// Resolves the cheapest route from \p from to \p to in \p topology and
  /// pre-classifies which hops are cellular uplink (edge → non-edge).
  /// The fault profiles of the route's links combine into the channel's
  /// base profile (reliable links leave it empty). Fails when an endpoint
  /// is unknown or no route exists.
  static Result<std::shared_ptr<NetworkChannel>> Connect(
      const Topology& topology, int from, int to);

  int from_node() const { return from_; }
  int to_node() const { return to_; }
  const std::vector<TopologyLink>& route() const { return route_; }
  std::string EndpointsString() const {
    return std::to_string(from_) + "->" + std::to_string(to_);
  }

  /// Arms fault injection and recovery: the effective profile combines
  /// \p profile (engine- or env-level) with the route's link profiles,
  /// and \p retry bounds the retransmit queue and repair buffer. Call
  /// before the first `Send`; a profile with no behaviour and default
  /// retry options keep the channel on the zero-overhead reliable path.
  void ConfigureFaults(const FaultProfile& profile, const RetryOptions& retry);

  /// The effective fault profile (link profiles combined with whatever
  /// `ConfigureFaults` added; empty when unconfigured and reliable).
  const FaultProfile& fault_profile() const { return effective_profile_; }
  const RetryOptions& retry_options() const { return retry_; }

  /// Enqueues one serialized frame of \p payload_bytes record bytes
  /// carrying \p events records under channel sequence number \p seq
  /// (sender-assigned, contiguous from 0), accounting the transfer on
  /// every hop and applying the injected fault fate, if any. Sends on a
  /// disconnected channel are silently lost (counted).
  void Send(uint64_t seq, std::vector<uint8_t> frame, uint64_t payload_bytes,
            uint64_t events);

  /// Pops the next in-flight frame; false when the channel is drained
  /// (or dead).
  bool Receive(std::vector<uint8_t>* frame);

  /// Receiver acknowledgement: retained copies of every frame with
  /// sequence number <= \p up_to_seq are released.
  void Ack(uint64_t up_to_seq);

  /// Receiver-driven recovery of frame \p seq: re-injects the retained
  /// copy (pricing the attempt's backoff into the transfer seconds) so the
  /// next `Receive` round can pick it up. Fails `Unavailable` when the
  /// channel is disconnected, `DataLoss` when the frame's retained copy
  /// was shed or never retained, `ResourceExhausted` past the attempt cap.
  Status RequestRetransmit(uint64_t seq);

  /// Releases any fault-held frames (the reorder slot, delayed frames)
  /// into the in-flight queue — the sender's end-of-stream flush, so no
  /// frame stays parked behind a send that never comes. No-op when dead.
  void FlushFaults();

  /// Permanently kills the channel, dropping in-flight, held and retained
  /// frames: the mid-run disconnect the degradation tests script, and the
  /// fate a `disconnect_after_frames` profile triggers on its own.
  void Kill();

  // --- Traffic counters (readable while the query runs; each accessor
  // takes the channel lock the sender writes under) ---

  uint64_t frames() const { return Locked(frames_); }
  uint64_t events() const { return Locked(events_); }
  /// Record payload bytes shipped (comparable to `SimulateDeployment`
  /// link pricing, which also counts record bytes).
  uint64_t payload_bytes() const { return Locked(payload_bytes_); }
  /// Serialized bytes shipped, frame headers included.
  uint64_t wire_bytes() const { return Locked(wire_bytes_); }
  /// Sum over frames and hops of wire_bytes/bandwidth + latency, plus
  /// retransmission backoff.
  double transfer_seconds() const { return Locked(transfer_seconds_); }
  /// True when any hop leaves an edge worker for a non-edge node.
  bool crosses_uplink() const { return crosses_uplink_; }

  // --- Fault state (all zero / Healthy on the reliable path) ---

  bool disconnected() const { return Locked(disconnected_); }
  /// One past the highest sequence number accepted by `Send` — what the
  /// receiver must account for before declaring end-of-stream.
  uint64_t seq_end() const { return Locked(seq_end_); }
  uint64_t frames_dropped() const { return Locked(dropped_); }
  uint64_t frames_duplicated() const { return Locked(duplicated_); }
  uint64_t frames_reordered() const { return Locked(reordered_); }
  uint64_t frames_delayed() const { return Locked(delayed_); }
  uint64_t retransmits() const { return Locked(retransmits_); }
  /// Frames shed from the retain queue by policy plus gaps skipped by the
  /// receiver's shed policy.
  uint64_t frames_shed() const { return Locked(shed_); }
  uint64_t duplicates_suppressed() const { return Locked(dup_suppressed_); }
  uint64_t frames_lost() const { return Locked(lost_); }

  /// `Disconnected` when dead, `Degraded` once any fault/shed/loss was
  /// observed, else `Healthy`.
  HealthState health() const;

  /// Receiver-side bookkeeping hooks (`NetworkChannelSource`): surfaced
  /// here so deployment reports and metrics see the full per-channel
  /// fault story in one place.
  void NoteDuplicateSuppressed();
  void NoteFrameLost(uint64_t frames);

  /// Resolves this channel's live instruments: wire-byte/frame/event
  /// counters plus a per-frame transfer-latency histogram, recorded on
  /// every `Send`. Pointers must outlive the channel (the engine binds
  /// them out of the query's registry before the run starts). All four
  /// must be set together; unbound channels record nothing.
  void BindMetrics(metrics::Counter* wire_bytes, metrics::Counter* frames,
                   metrics::Counter* events,
                   metrics::Histogram* transfer_micros) {
    m_wire_bytes_ = wire_bytes;
    m_frames_ = frames;
    m_events_ = events;
    m_transfer_micros_ = transfer_micros;
  }

  /// Fault-path instruments, bound alongside `BindMetrics` when a fault
  /// profile is armed: injected drops, receiver retransmits, and frames
  /// shed or lost by policy. All three set together.
  void BindFaultMetrics(metrics::Counter* dropped, metrics::Counter* retrans,
                        metrics::Counter* shed) {
    m_dropped_ = dropped;
    m_retransmits_ = retrans;
    m_shed_ = shed;
  }

 private:
  NetworkChannel(int from, int to, std::vector<TopologyLink> route,
                 std::vector<bool> hop_is_uplink)
      : from_(from),
        to_(to),
        route_(std::move(route)),
        hop_is_uplink_(std::move(hop_is_uplink)) {
    for (const bool uplink : hop_is_uplink_) {
      crosses_uplink_ = crosses_uplink_ || uplink;
    }
  }

  friend Result<DeploymentReport> MeasureDeployment(
      const std::vector<std::shared_ptr<NetworkChannel>>& channels);

  template <typename T>
  T Locked(const T& counter) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counter;
  }

  /// A retained frame awaiting acknowledgement.
  struct Retained {
    std::vector<uint8_t> frame;
    uint64_t payload_bytes = 0;
    uint64_t events = 0;
    uint32_t attempts = 0;  ///< retransmission attempts so far
  };

  /// Seconds one frame of \p wire_bytes takes across the whole route.
  double RouteSeconds(size_t wire_bytes) const;

  /// Appends \p frame to the in-flight queue, releasing a held reorder
  /// slot behind it. Caller holds `mutex_`.
  void Deliver(std::vector<uint8_t> frame);

  /// Kills the channel. Caller holds `mutex_`.
  void KillLocked();

  int from_ = 0;
  int to_ = 0;
  std::vector<TopologyLink> route_;
  std::vector<bool> hop_is_uplink_;
  bool crosses_uplink_ = false;

  mutable std::mutex mutex_;
  std::deque<std::vector<uint8_t>> in_flight_;
  uint64_t frames_ = 0;
  uint64_t events_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t wire_bytes_ = 0;
  double transfer_seconds_ = 0.0;

  // --- Fault machinery (inert until ConfigureFaults arms the injector
  // or a link profile configures one) ---
  FaultProfile link_profile_;       ///< combined route-link profiles
  FaultProfile effective_profile_;  ///< link + configured profiles
  RetryOptions retry_;
  std::unique_ptr<FaultInjector> injector_;  ///< null = reliable fast path
  bool retain_frames_ = false;  ///< retain copies for retransmission
  std::map<uint64_t, Retained> retained_;
  uint64_t seq_end_ = 0;       ///< one past the highest seq sent
  uint64_t acked_through_ = 0;  ///< one past the highest acked seq
  bool disconnected_ = false;
  /// One frame held back so the next send overtakes it (reorder fate).
  std::vector<uint8_t> reorder_slot_;
  bool reorder_held_ = false;
  /// Frames held back for `release_after` further sends (delay fate).
  struct DelayedFrame {
    std::vector<uint8_t> frame;
    uint64_t release_after = 0;
  };
  std::deque<DelayedFrame> delayed_frames_;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
  uint64_t delayed_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t shed_ = 0;
  uint64_t dup_suppressed_ = 0;
  uint64_t lost_ = 0;

  // Metrics instruments (null until bound; set before the run starts and
  // immutable afterwards, so the sender reads them without the lock).
  metrics::Counter* m_wire_bytes_ = nullptr;
  metrics::Counter* m_frames_ = nullptr;
  metrics::Counter* m_events_ = nullptr;
  metrics::Histogram* m_transfer_micros_ = nullptr;
  metrics::Counter* m_dropped_ = nullptr;
  metrics::Counter* m_retransmits_ = nullptr;
  metrics::Counter* m_shed_ = nullptr;
};

/// \brief Aggregates the traffic a set of executed channels carried into
/// one `DeploymentReport` (per-hop payload bytes and seconds, uplink
/// bytes, wire bytes, frames). The measured counterpart of
/// `SimulateDeployment`.
Result<DeploymentReport> MeasureDeployment(
    const std::vector<std::shared_ptr<NetworkChannel>>& channels);

/// \brief Prices a placement using measured per-operator flow.
///
/// \p op_stats is the engine's chain-ordered stats (operators then sink);
/// \p source_bytes is what the source produced. Each chain edge whose two
/// endpoints are placed on different nodes ships the upstream operator's
/// output bytes across the cheapest (possibly multi-hop) route between
/// the two nodes.
///
/// \deprecated Linear chains and post-hoc pricing only. New code should
/// annotate the plan (`MakePlacementPass`, optimizer.hpp), execute it on
/// an engine with a topology, and read the *measured* report from
/// `NodeEngine::Deployment`.
Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement);

/// All-on-edge placement: every operator on \p edge_node, sink on
/// \p cloud_node (results ship up).
Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node);

/// Ship-raw placement: source on \p edge_node, everything else on
/// \p cloud_node.
Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node);

/// \brief Incremental placement optimization: chooses the pipeline cut
/// (edge prefix → cloud suffix) that minimizes uplink bytes, using the
/// measured per-operator flow. The sink (final chain element) stays in the
/// cloud — results must reach the operations center. Byte-count ties break
/// toward the *deepest* cut (maximal edge pushdown — the paper's Figure 1
/// point: keep operators on the train whenever the uplink pays nothing
/// for it). Returns the placement and, through \p out_uplink_bytes
/// (optional), its uplink cost.
///
/// This is the decision NebulaStream's incremental query placement makes
/// per operator; here it reduces to the optimal single cut of a linear
/// chain. The DAG-aware generalization (one cut per fan-out branch) lives
/// in the optimizer as `MakePlacementPass`.
Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes = nullptr);

}  // namespace nebulameos::nebula

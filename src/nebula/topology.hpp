/// \file topology.hpp
/// \brief Simulated IoT topology: coordinator, edge and cloud workers,
/// links, and operator placement.
///
/// The paper's architecture (Figure 1) runs NebulaMEOS on an Intel-Atom
/// edge device aboard the train, shipping only processed results to a
/// server. This module reproduces that architecture as a measurable
/// simulation: a topology of nodes and links, a placement of a compiled
/// query's operators onto nodes, and a deployment report that prices the
/// traffic each link carries using the engine's per-operator flow counters.
/// The `bench_fig1_edge_vs_cloud` benchmark compares edge pushdown against
/// ship-everything-to-cloud on exactly this model.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "nebula/operator.hpp"

namespace nebulameos::nebula {

/// Role of a topology node.
enum class NodeKind { kCoordinator, kEdgeWorker, kCloudWorker };

/// \brief One physical (simulated) node.
struct TopologyNode {
  int id = 0;
  NodeKind kind = NodeKind::kEdgeWorker;
  std::string name;
  /// Relative compute speed (1.0 = reference edge device).
  double cpu_factor = 1.0;
};

/// \brief A directed link with bandwidth and propagation latency.
struct TopologyLink {
  int from = 0;
  int to = 0;
  double bandwidth_bytes_per_sec = 0.0;
  Duration latency = 0;
};

/// \brief A topology: nodes + links with lookup helpers.
class Topology {
 public:
  /// Adds a node; fails on duplicate id.
  Status AddNode(TopologyNode node);

  /// Adds a link; fails when an endpoint is unknown or bandwidth <= 0.
  Status AddLink(TopologyLink link);

  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  const std::vector<TopologyLink>& links() const { return links_; }

  /// Node by id.
  Result<TopologyNode> GetNode(int id) const;

  /// Direct link from \p from to \p to.
  Result<TopologyLink> GetLink(int from, int to) const;

  /// Builds the paper's reference topology: one coordinator (cloud), one
  /// cloud worker, and \p num_trains edge workers, each connected to the
  /// cloud worker by a constrained cellular uplink.
  static Topology SncbReference(int num_trains, double uplink_bytes_per_sec,
                                Duration uplink_latency);

 private:
  std::vector<TopologyNode> nodes_;
  std::vector<TopologyLink> links_;
};

/// \brief Placement of a compiled chain onto nodes: `node_of[i]` is the node
/// executing operator `i`; index `-1` denotes the source, `size` the sink.
struct Placement {
  std::map<int, int> node_of;

  /// Node of operator \p op_index (must be present).
  int NodeOf(int op_index) const { return node_of.at(op_index); }
};

/// \brief Traffic and latency accounting of one deployed query.
struct DeploymentReport {
  /// Bytes crossing each used link, keyed by (from, to).
  std::map<std::pair<int, int>, uint64_t> link_bytes;
  /// Serialization+propagation seconds per link.
  std::map<std::pair<int, int>, double> link_seconds;
  /// Total bytes entering cloud nodes from edge nodes.
  uint64_t uplink_bytes = 0;
  /// Sum over links of bytes/bandwidth + latency (sequential path model).
  double total_transfer_seconds = 0.0;
};

/// \brief Prices a placement using measured per-operator flow.
///
/// \p op_stats is the engine's chain-ordered stats (operators then sink);
/// \p source_bytes is what the source produced. Each chain edge whose two
/// endpoints are placed on different nodes ships the upstream operator's
/// output bytes across the connecting link.
Result<DeploymentReport> SimulateDeployment(
    const Topology& topology,
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, const Placement& placement);

/// All-on-edge placement: every operator on \p edge_node, sink on
/// \p cloud_node (results ship up).
Placement EdgePushdownPlacement(size_t chain_length, int edge_node,
                                int cloud_node);

/// Ship-raw placement: source on \p edge_node, everything else on
/// \p cloud_node.
Placement CloudPlacement(size_t chain_length, int edge_node, int cloud_node);

/// \brief Incremental placement optimization: chooses the pipeline cut
/// (edge prefix → cloud suffix) that minimizes uplink bytes, using the
/// measured per-operator flow. The sink (final chain element) stays in the
/// cloud — results must reach the operations center. Returns the placement
/// and, through \p out_uplink_bytes (optional), its uplink cost.
///
/// This is the decision NebulaStream's incremental query placement makes
/// per operator; here it reduces to the optimal single cut of a linear
/// chain.
Placement OptimizeCutPlacement(
    const std::vector<std::pair<std::string, OperatorStats>>& op_stats,
    uint64_t source_bytes, int edge_node, int cloud_node,
    uint64_t* out_uplink_bytes = nullptr);

}  // namespace nebulameos::nebula

/// \file optimizer.hpp
/// \brief The logical plan optimizer: a pipeline of rewrite passes over
/// `LogicalPlan` run before physical lowering.
///
/// Mirrors NebulaStream's `nes-query-optimizer` layer: each pass is a
/// small, independently testable plan-to-plan rewrite, and the
/// `PlanRewriter` drives them to a fixpoint. All rewrites are
/// dependency-sound: they consult `Expression::ReferencedFields` and leave
/// nodes in place whenever an expression's read set cannot be proven
/// (extension expressions that don't report their reads are never moved
/// across a producer).
///
/// Built-in passes (all on by default, individually togglable through
/// `OptimizerOptions`, reachable via `EngineOptions::optimizer`):
///
/// * **constant folding** — constant expression subtrees pre-evaluate into
///   literals (`Mul(Lit(3.6), Lit(2))` → `7.2`) and always-true filters
///   disappear;
/// * **predicate pushdown** — filters move below adjacent maps that do not
///   feed them and below projections, so rows are dropped before compute
///   and narrowing work is spent on them;
/// * **filter fusion** — adjacent filters AND-combine into one operator
///   (one pipeline stage and one stats node instead of two);
/// * **map fusion** — adjacent independent maps merge into one `Map` with
///   the union of their specs (single buffer pass);
/// * **projection pushdown** — the projection's field set is pushed into
///   the map below it, deleting computed fields the query never outputs,
///   and adjacent projections collapse.
///
/// Every pass is DAG-aware: it rewrites the shared prefix and recurses
/// into each fan-out branch. Two rules act *across* the fan-out boundary:
/// predicate pushdown hoists a filter above a fan-out only when **every**
/// branch leads with a structurally identical filter (the shared prefix
/// then drops rows once instead of once per branch), and projection
/// pushdown narrows the shared prefix to the **union** of all branches'
/// leading projection demands (buffer copies per branch get cheaper while
/// each branch keeps its exact field set).

#pragma once

#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula {

/// \brief Optimizer configuration (a member of `EngineOptions`).
struct OptimizerOptions {
  bool enable = true;  ///< master switch: false = submit plans verbatim
  bool constant_folding = true;
  bool predicate_pushdown = true;
  bool filter_fusion = true;
  bool map_fusion = true;
  bool projection_pushdown = true;
  /// Fixpoint guard: maximum full pipeline iterations.
  size_t max_iterations = 8;
};

/// \brief One plan rewrite. Implementations must preserve query semantics
/// for every valid plan they are given.
class RewritePass {
 public:
  virtual ~RewritePass() = default;

  /// Display name ("predicate-pushdown", ...).
  virtual std::string name() const = 0;

  /// Applies the pass once over the whole plan; sets \p *changed to true
  /// when the plan was modified.
  virtual Status Apply(LogicalPlan* plan, bool* changed) = 0;
};

using RewritePassPtr = std::unique_ptr<RewritePass>;

/// Pre-evaluates constant expression subtrees into literals and removes
/// filters whose predicate folds to `true`.
RewritePassPtr MakeConstantFoldingPass();
/// Moves filters earlier past maps that don't feed them and past
/// projections; hoists a filter shared by every fan-out branch into the
/// shared prefix.
RewritePassPtr MakePredicatePushdownPass();
/// AND-combines adjacent filters.
RewritePassPtr MakeFilterFusionPass();
/// Merges adjacent independent maps into one.
RewritePassPtr MakeMapFusionPass();
/// Collapses adjacent projections and deletes map outputs the following
/// projection drops; narrows the prefix above a fan-out to the union of
/// the branches' leading projection demands.
RewritePassPtr MakeProjectionPushdownPass();

/// \brief The pass pipeline. Runs its passes in registration order,
/// repeating the whole pipeline until no pass reports a change (bounded by
/// `max_iterations`).
class PlanRewriter {
 public:
  PlanRewriter() = default;
  PlanRewriter(PlanRewriter&&) = default;
  PlanRewriter& operator=(PlanRewriter&&) = default;

  /// The default pipeline for \p options (only enabled passes are added;
  /// an all-false options set yields an empty, no-op rewriter).
  static PlanRewriter Default(const OptimizerOptions& options = {});

  /// Appends a pass; returns *this for chaining.
  PlanRewriter& AddPass(RewritePassPtr pass);

  /// Rewrites \p plan in place to a fixpoint.
  Status Rewrite(LogicalPlan* plan) const;

  size_t NumPasses() const { return passes_.size(); }

 private:
  std::vector<RewritePassPtr> passes_;
  size_t max_iterations_ = 8;
};

}  // namespace nebulameos::nebula

/// \file optimizer.hpp
/// \brief The logical plan optimizer: a pipeline of rewrite passes over
/// `LogicalPlan` run before physical lowering.
///
/// Mirrors NebulaStream's `nes-query-optimizer` layer: each pass is a
/// small, independently testable plan-to-plan rewrite, and the
/// `PlanRewriter` drives them to a fixpoint. All rewrites are
/// dependency-sound: they consult `Expression::ReferencedFields` and leave
/// nodes in place whenever an expression's read set cannot be proven
/// (extension expressions that don't report their reads are never moved
/// across a producer).
///
/// Built-in passes (all on by default, individually togglable through
/// `OptimizerOptions`, reachable via `EngineOptions::optimizer`):
///
/// * **constant folding** — constant expression subtrees pre-evaluate into
///   literals (`Mul(Lit(3.6), Lit(2))` → `7.2`) and always-true filters
///   disappear;
/// * **predicate pushdown** — filters move below adjacent maps that do not
///   feed them and below projections, so rows are dropped before compute
///   and narrowing work is spent on them;
/// * **filter fusion** — adjacent filters AND-combine into one operator
///   (one pipeline stage and one stats node instead of two);
/// * **map fusion** — adjacent independent maps merge into one `Map` with
///   the union of their specs (single buffer pass);
/// * **projection pushdown** — the projection's field set is pushed into
///   the map below it, deleting computed fields the query never outputs,
///   and adjacent projections collapse.
///
/// Every pass is DAG-aware: it rewrites the shared prefix and recurses
/// into each fan-out branch. Two rules act *across* the fan-out boundary:
/// predicate pushdown hoists a filter above a fan-out only when **every**
/// branch leads with a structurally identical filter (the shared prefix
/// then drops rows once instead of once per branch), and projection
/// pushdown narrows the shared prefix to the **union** of all branches'
/// leading projection demands (buffer copies per branch get cheaper while
/// each branch keeps its exact field set).

#pragma once

#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula {

/// The default for `OptimizerOptions::verify_each`: the `NM_VERIFY_EACH`
/// environment variable when set ("1" on, "0" off), else on in Debug
/// builds (`!NDEBUG`) and off in Release. CI exports `NM_VERIFY_EACH=1`.
bool VerifyEachDefault();

/// \brief Optimizer configuration (a member of `EngineOptions`).
struct OptimizerOptions {
  bool enable = true;  ///< master switch: false = submit plans verbatim
  bool constant_folding = true;
  bool predicate_pushdown = true;
  bool filter_fusion = true;
  bool map_fusion = true;
  bool projection_pushdown = true;
  /// Fixpoint guard: maximum full pipeline iterations.
  size_t max_iterations = 8;
  /// LLVM-style verify-each: run the plan verifier
  /// (analysis/plan_verifier.hpp) after every rewrite pass that changed
  /// the plan — a pass that breaks an invariant then fails at its own
  /// boundary, named — and again at Submit/SubmitShared over plans and
  /// compiled pipelines. Defaults per `VerifyEachDefault()`.
  bool verify_each = VerifyEachDefault();
};

/// \brief One plan rewrite. Implementations must preserve query semantics
/// for every valid plan they are given.
class RewritePass {
 public:
  virtual ~RewritePass() = default;

  /// Display name ("predicate-pushdown", ...).
  virtual std::string name() const = 0;

  /// Applies the pass once over the whole plan; sets \p *changed to true
  /// when the plan was modified.
  virtual Status Apply(LogicalPlan* plan, bool* changed) = 0;
};

using RewritePassPtr = std::unique_ptr<RewritePass>;

/// Pre-evaluates constant expression subtrees into literals and removes
/// filters whose predicate folds to `true`.
RewritePassPtr MakeConstantFoldingPass();
/// Moves filters earlier past maps that don't feed them and past
/// projections; hoists a filter shared by every fan-out branch into the
/// shared prefix.
RewritePassPtr MakePredicatePushdownPass();
/// AND-combines adjacent filters.
RewritePassPtr MakeFilterFusionPass();
/// Merges adjacent independent maps into one.
RewritePassPtr MakeMapFusionPass();
/// Collapses adjacent projections and deletes map outputs the following
/// projection drops; narrows the prefix above a fan-out to the union of
/// the branches' leading projection demands.
RewritePassPtr MakeProjectionPushdownPass();

/// \brief Inputs of the placement pass: the topology to place onto and
/// the measured flow of a prior run of the *same* (already-optimized)
/// plan shape.
struct PlacementPassOptions {
  /// Topology to place onto (non-owning; must outlive the pass). A route
  /// from `edge_node` to `cloud_node` must exist (multi-hop allowed).
  const Topology* topology = nullptr;
  int edge_node = 0;   ///< node running the source (sensors on the train)
  int cloud_node = 0;  ///< node running the sinks (operations center)
  /// Measured per-operator flow (`QueryStats::operator_stats`): path-keyed
  /// operator names in depth-first pipeline order, from a prior run of a
  /// structurally identical plan.
  std::vector<std::pair<std::string, OperatorStats>> measured;
  /// Bytes the source produced in that run (`QueryStats::bytes_ingested`).
  uint64_t source_bytes = 0;
};

/// \brief The per-branch placement pass — `OptimizeCutPlacement`
/// generalized from one cut of a linear chain to one cut per DAG path.
///
/// Annotates every `LogicalOperator` with a target node id: each
/// root-to-leaf path gets the edge→cloud cut that ships the fewest bytes
/// over the topology's cheapest edge→cloud route, weighted by measured
/// per-operator flow. A cut inside the shared prefix moves the fan-out
/// and every branch to the cloud (the stream crosses once); leaving the
/// prefix on the edge lets each branch cut independently — e.g. the
/// ingest prefix stays on the train while an archival aggregation branch
/// ships its (tiny) aggregates and an alerting branch ships filtered
/// alerts. Byte ties break toward the deepest cut (maximal pushdown).
/// Sinks always land on `cloud_node` — results must reach the operations
/// center. `CompilePlan` then lowers each annotated transition to a
/// network-channel pair.
///
/// Unlike the always-on rewrites, this pass needs runtime inputs (a
/// topology and measured stats), so it is not part of
/// `PlanRewriter::Default`; add it explicitly or `Apply` it directly.
RewritePassPtr MakePlacementPass(PlacementPassOptions options);

/// Annotates \p plan with the paper's full edge pushdown: source and
/// every operator on \p edge_node, sinks on \p cloud_node.
void AnnotateEdgePushdownPlacement(LogicalPlan* plan, int edge_node,
                                   int cloud_node);

/// Annotates \p plan with the ship-raw baseline: source on \p edge_node,
/// every operator and sink on \p cloud_node (the raw stream crosses the
/// uplink once, before any processing).
void AnnotateCloudPlacement(LogicalPlan* plan, int edge_node, int cloud_node);

/// \brief The pass pipeline. Runs its passes in registration order,
/// repeating the whole pipeline until no pass reports a change (bounded by
/// `max_iterations`).
class PlanRewriter {
 public:
  PlanRewriter() = default;
  PlanRewriter(PlanRewriter&&) = default;
  PlanRewriter& operator=(PlanRewriter&&) = default;

  /// The default pipeline for \p options (only enabled passes are added;
  /// an all-false options set yields an empty, no-op rewriter).
  static PlanRewriter Default(const OptimizerOptions& options = {});

  /// Appends a pass; returns *this for chaining.
  PlanRewriter& AddPass(RewritePassPtr pass);

  /// Rewrites \p plan in place to a fixpoint. With verify-each on, the
  /// plan verifier runs after every pass application that reported a
  /// change; a violation fails the rewrite with the pass's name.
  Status Rewrite(LogicalPlan* plan) const;

  size_t NumPasses() const { return passes_.size(); }

  /// Toggles verify-each for this rewriter (set from
  /// `OptimizerOptions::verify_each` by `Default`).
  PlanRewriter& SetVerifyEach(bool on) {
    verify_each_ = on;
    return *this;
  }

 private:
  std::vector<RewritePassPtr> passes_;
  size_t max_iterations_ = 8;
  bool verify_each_ = false;
};

}  // namespace nebulameos::nebula

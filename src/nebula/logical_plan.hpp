/// \file logical_plan.hpp
/// \brief The first-class logical plan IR sitting between the fluent
/// `Query` builder and physical compilation.
///
/// Mirrors NebulaStream's layering (`nes-logical-operators` →
/// `nes-query-optimizer` → physical lowering): a query is first expressed
/// as a `LogicalPlan` — a DAG of `LogicalOperator` nodes rooted at one
/// source — which can be *inspected* (`Explain`), *validated* (`Validate`),
/// *rewritten* (optimizer.hpp) and only then *lowered* to physical
/// operators (`CompilePlan`). Nothing in the engine touches the builder;
/// `Query` is sugar that emits this IR.
///
/// A plan is a chain of operators that either terminates in one `SinkNode`
/// (a linear plan) or in a `FanOutNode` whose branches are themselves
/// chains with the same structure — so one ingest pipeline can feed
/// several sinks (alerting + archival) while the shared prefix executes
/// once. Branch chains are addressed by *DAG path*: "" is the shared
/// prefix, "0"/"1"/... the fan-out's branches, "1.0" a nested branch.

#pragma once

#include <optional>
#include <set>

#include "nebula/cep.hpp"
#include "nebula/join.hpp"
#include "nebula/operators.hpp"
#include "nebula/source.hpp"

namespace nebulameos::nebula {

/// \brief Base class of all logical plan nodes.
///
/// Nodes are pure descriptions — no schemas, no bound expressions, no
/// runtime state — so optimizer passes can reorder, merge and drop them
/// freely before lowering binds anything.
class LogicalOperator {
 public:
  enum class Kind {
    kFilter,
    kMap,
    kProject,
    kKeyBy,
    kWindowAgg,
    kThresholdWindow,
    kCep,
    kLookupJoin,
    kFanOut,
    kSink,
  };

  /// Placement annotation value meaning "not placed on any node".
  static constexpr int kUnplaced = -1;

  virtual ~LogicalOperator() = default;

  virtual Kind kind() const = 0;

  /// Display name ("Filter", "WindowAgg", ...).
  virtual std::string name() const = 0;

  /// One-line rendering used by `LogicalPlan::Explain`, e.g.
  /// "Filter((speed_kmh > limit_kmh))".
  virtual std::string ToString() const = 0;

  /// Target topology node of this operator (`kUnplaced` when the plan has
  /// not been placed). Written by the optimizer's placement pass (or the
  /// `Annotate*Placement` helpers); consumed by `CompilePlan`, which
  /// lowers every node transition along a chain to a network-channel
  /// operator pair.
  int placement() const { return placement_; }
  void set_placement(int node_id) { placement_ = node_id; }

 private:
  int placement_ = kUnplaced;
};

using LogicalOperatorPtr = std::unique_ptr<LogicalOperator>;

/// \brief Emits only records satisfying `predicate`.
class FilterNode : public LogicalOperator {
 public:
  explicit FilterNode(ExprPtr predicate) : predicate_(std::move(predicate)) {}

  Kind kind() const override { return Kind::kFilter; }
  std::string name() const override { return "Filter"; }
  std::string ToString() const override;

  const ExprPtr& predicate() const { return predicate_; }
  void set_predicate(ExprPtr p) { predicate_ = std::move(p); }

 private:
  ExprPtr predicate_;
};

/// \brief Adds or replaces computed fields. All specs evaluate against the
/// node's *input* record (specs never see each other's outputs).
class MapNode : public LogicalOperator {
 public:
  explicit MapNode(std::vector<MapSpec> specs) : specs_(std::move(specs)) {}

  Kind kind() const override { return Kind::kMap; }
  std::string name() const override { return "Map"; }
  std::string ToString() const override;

  const std::vector<MapSpec>& specs() const { return specs_; }
  std::vector<MapSpec>& mutable_specs() { return specs_; }

 private:
  std::vector<MapSpec> specs_;
};

/// \brief Keeps only the named fields, in order.
class ProjectNode : public LogicalOperator {
 public:
  explicit ProjectNode(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  Kind kind() const override { return Kind::kProject; }
  std::string name() const override { return "Project"; }
  std::string ToString() const override;

  const std::vector<std::string>& fields() const { return fields_; }

 private:
  std::vector<std::string> fields_;
};

/// \brief Marks the partitioning key of the *next* node, which must be a
/// window aggregation or CEP step (enforced by `LogicalPlan::Validate`).
class KeyByNode : public LogicalOperator {
 public:
  explicit KeyByNode(std::string field) : field_(std::move(field)) {}

  Kind kind() const override { return Kind::kKeyBy; }
  std::string name() const override { return "KeyBy"; }
  std::string ToString() const override { return "KeyBy(" + field_ + ")"; }

  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// \brief Keyed time-window aggregation (tumbling or sliding).
class WindowAggNode : public LogicalOperator {
 public:
  explicit WindowAggNode(WindowAggOptions options)
      : options_(std::move(options)) {}

  Kind kind() const override { return Kind::kWindowAgg; }
  std::string name() const override { return "WindowAgg"; }
  std::string ToString() const override;

  const WindowAggOptions& options() const { return options_; }
  WindowAggOptions& mutable_options() { return options_; }

 private:
  WindowAggOptions options_;
};

/// \brief Keyed threshold-window aggregation.
class ThresholdWindowNode : public LogicalOperator {
 public:
  explicit ThresholdWindowNode(ThresholdWindowOptions options)
      : options_(std::move(options)) {}

  Kind kind() const override { return Kind::kThresholdWindow; }
  std::string name() const override { return "ThresholdWindow"; }
  std::string ToString() const override;

  const ThresholdWindowOptions& options() const { return options_; }
  ThresholdWindowOptions& mutable_options() { return options_; }

 private:
  ThresholdWindowOptions options_;
};

/// \brief CEP pattern detection.
class CepNode : public LogicalOperator {
 public:
  CepNode(Pattern pattern, std::vector<Measure> measures)
      : pattern_(std::move(pattern)), measures_(std::move(measures)) {}

  Kind kind() const override { return Kind::kCep; }
  std::string name() const override { return "CEP"; }
  std::string ToString() const override;

  const Pattern& pattern() const { return pattern_; }
  Pattern& mutable_pattern() { return pattern_; }
  const std::vector<Measure>& measures() const { return measures_; }

 private:
  Pattern pattern_;
  std::vector<Measure> measures_;
};

/// \brief Temporal lookup join against a bounded side stream.
class LookupJoinNode : public LogicalOperator {
 public:
  explicit LookupJoinNode(TemporalLookupJoinOptions options)
      : options_(std::move(options)) {}

  Kind kind() const override { return Kind::kLookupJoin; }
  std::string name() const override { return "TemporalLookupJoin"; }
  std::string ToString() const override;

  const TemporalLookupJoinOptions& options() const { return options_; }

  /// Field provenance: every output field name the *right* (lookup) side
  /// can provide. Each right payload field lands in the output either
  /// under its own name or, on collision with a left field, under
  /// `collision_prefix + name` — collision resolution needs the left
  /// schema, which the logical IR does not carry, so both candidates are
  /// reported. Any output field outside this set therefore provably comes
  /// from the probe side unchanged, which is what predicate pushdown
  /// needs: a filter reading only such fields commutes with the (inner)
  /// join. `nullopt` when the lookup source is absent (unknowable).
  std::optional<std::set<std::string>> RightProvidedFields() const {
    if (!options_.lookup) return std::nullopt;
    std::set<std::string> provided;
    for (const Field& field : options_.lookup->schema().fields()) {
      if (field.name == options_.right_key ||
          field.name == options_.right_time) {
        continue;  // represented by the left key/time columns
      }
      provided.insert(field.name);
      provided.insert(options_.collision_prefix + field.name);
    }
    return provided;
  }

 private:
  TemporalLookupJoinOptions options_;
};

/// \brief Fans the stream out to several concurrent downstream branches.
///
/// The node is terminal within its own chain; each branch is a chain of
/// nodes with the same structure as the plan's top-level ops (ending in a
/// `SinkNode` or a nested `FanOutNode`). At runtime every branch sees the
/// full output of the shared upstream prefix, which executes once.
class FanOutNode : public LogicalOperator {
 public:
  /// One downstream chain.
  using Branch = std::vector<LogicalOperatorPtr>;

  explicit FanOutNode(std::vector<Branch> branches)
      : branches_(std::move(branches)) {}

  Kind kind() const override { return Kind::kFanOut; }
  std::string name() const override { return "FanOut"; }
  std::string ToString() const override {
    return "FanOut(" + std::to_string(branches_.size()) + " branches)";
  }

  const std::vector<Branch>& branches() const { return branches_; }
  std::vector<Branch>& mutable_branches() { return branches_; }

 private:
  std::vector<Branch> branches_;
};

/// \brief Terminal node holding the sink (shared so callers can read
/// results after the run).
class SinkNode : public LogicalOperator {
 public:
  explicit SinkNode(std::shared_ptr<SinkOperator> sink)
      : sink_(std::move(sink)) {}

  Kind kind() const override { return Kind::kSink; }
  std::string name() const override { return "Sink"; }
  std::string ToString() const override;

  const std::shared_ptr<SinkOperator>& sink() const { return sink_; }

 private:
  std::shared_ptr<SinkOperator> sink_;
};

/// The DAG path of branch \p index under \p parent ("" → "0", "1" →
/// "1.0") — the single addressing scheme shared by `CompiledPipeline`
/// paths, `QueryStats::operator_stats` keys, and the optimizer's
/// placement pass.
std::string DagBranchPath(const std::string& parent, size_t index);

// --- Plan-level structural identity ------------------------------------------

/// \brief Extends expression-level `StructurallyEqual` to plan nodes: true
/// when \p a and \p b are the same operator with semantically identical
/// configuration — same kind, same placement annotation, and per-kind
/// payload equality (predicates/specs by expression `StructurallyEqual`,
/// field lists verbatim, window/CEP options field by field). Conservative
/// where semantics cannot be proven: nodes carrying opaque callables
/// (custom window aggregators) or distinct sink/lookup-source instances
/// compare unequal. The serving layer uses this to find the longest shared
/// operator prefix across independently submitted plans.
bool StructurallyEqual(const LogicalOperator& a, const LogicalOperator& b);

/// \brief Hash consistent with plan-level `StructurallyEqual`: equal nodes
/// hash equal (the converse may not hold — callers bucket by hash and
/// confirm with `StructurallyEqual`, as the expression CSE does).
size_t StructuralHash(const LogicalOperator& op);

/// \brief Deep-copies a plan node (placement annotation included).
/// Expression trees are shared, not copied — they are immutable after
/// `Bind`, and `Bind` is idempotent for a fixed schema, so clones bound
/// against structurally identical inputs resolve identically. Returns
/// nullptr for nodes that cannot be cloned faithfully (custom window
/// aggregators' opaque factories could alias state; fan-outs clone only if
/// every nested node does). Sinks clone to a node *sharing* the same sink
/// instance.
LogicalOperatorPtr CloneOperator(const LogicalOperator& op);

/// \brief A complete logical query: source → operator DAG → sink(s).
///
/// Move-only (owns its source). The ops vector is the root chain; a
/// trailing `FanOutNode` makes the plan a DAG whose branches are the
/// fan-out's chains. Rewriter passes mutate `mutable_ops` (and recurse
/// into fan-out branches).
class LogicalPlan {
 public:
  LogicalPlan() = default;
  LogicalPlan(LogicalPlan&&) = default;
  LogicalPlan& operator=(LogicalPlan&&) = default;
  LogicalPlan(const LogicalPlan&) = delete;
  LogicalPlan& operator=(const LogicalPlan&) = delete;

  // --- Construction ---

  void SetSource(SourcePtr source) { source_ = std::move(source); }
  void Append(LogicalOperatorPtr op) { ops_.push_back(std::move(op)); }

  /// Attaches \p sink as the terminal node of the root chain (replaces an
  /// existing one). Linear plans only — fan-out plans attach sinks per
  /// branch (`SetLeafSinks`, or `To` on each branch builder).
  void SetSink(std::shared_ptr<SinkOperator> sink);

  /// Attaches one sink per leaf chain in DAG-path order, replacing
  /// existing terminal sinks. Fails when the count does not match the
  /// number of leaves.
  Status SetLeafSinks(std::vector<std::shared_ptr<SinkOperator>> sinks);

  // --- Introspection ---

  Source* source() const { return source_.get(); }
  SourcePtr TakeSource() { return std::move(source_); }
  const std::vector<LogicalOperatorPtr>& ops() const { return ops_; }
  std::vector<LogicalOperatorPtr>& mutable_ops() { return ops_; }

  /// Topology node the source runs on (`LogicalOperator::kUnplaced` when
  /// the plan is not placed). Sensors sit on the edge device, so the
  /// placement pass pins this to the edge worker.
  int source_placement() const { return source_placement_; }
  void set_source_placement(int node_id) { source_placement_ = node_id; }

  /// True when the plan contains a `FanOutNode` (multi-sink DAG).
  bool HasFanOut() const;

  /// True when the plan carries any placement annotation (source or
  /// operator). Placement is tied to the exact plan shape it was
  /// computed for, so the engine submits placed plans verbatim instead
  /// of re-running the rewriter over them.
  bool IsPlaced() const;

  /// Number of leaf chains (1 for a linear plan).
  size_t NumLeaves() const;

  /// The sink when a single `SinkNode` terminates a linear plan, nullptr
  /// otherwise (no sink yet, or the plan fans out).
  std::shared_ptr<SinkOperator> sink() const;

  /// Every terminal sink in DAG-path order with its path ("" for a linear
  /// plan). Leaves without a sink are skipped.
  std::vector<std::pair<std::string, std::shared_ptr<SinkOperator>>> Sinks()
      const;

  /// Structural validation, before any schema is known:
  /// - a source is present;
  /// - every root-to-leaf path ends in exactly one sink node;
  /// - fan-out nodes are terminal in their chain and have >= 2 non-empty
  ///   branches;
  /// - every `KeyBy` is immediately consumed by a window/CEP node (a
  ///   dangling key is a hard error, not a silent drop);
  /// - window nodes carry at least one aggregate (i.e. the builder's
  ///   `Aggregate` was called).
  Status Validate() const;

  /// Textual rendering of the plan, one node per line. Linear plans render
  /// as a chain; fan-out plans render as a tree with the shared prefix
  /// annotated:
  ///
  /// ```
  /// Source: MemorySource(key:INT64, ts:TIMESTAMP, value:DOUBLE)
  ///   -> Filter((value >= 5))  [shared]
  ///   -> FanOut(2 branches)
  ///      [branch 0]
  ///      -> Project(value, key)
  ///      -> Sink(CollectSink)
  ///      [branch 1]
  ///      -> Sink(CountingSink)
  /// ```
  std::string Explain() const;

  /// Schema of the records entering the sink of a *linear* plan, inferred
  /// by lowering the chain against the source's schema (binding only —
  /// cheap, and the source is not consumed). Fails on fan-out plans; use
  /// `OutputSchemas`.
  Result<Schema> OutputSchema() const;

  /// Schema at every leaf, paired with its DAG path, in path order.
  /// Works for plans whose leaves do not have sinks attached yet.
  Result<std::vector<std::pair<std::string, Schema>>> OutputSchemas() const;

 private:
  SourcePtr source_;
  std::vector<LogicalOperatorPtr> ops_;
  int source_placement_ = LogicalOperator::kUnplaced;
};

/// \brief The physical form of one plan segment: a lowered operator chain
/// followed by either a sink (leaf) or several downstream branches
/// (fan-out). `path` addresses the segment in the DAG ("" for the shared
/// prefix, "0"/"1"/... for branches, "1.0" for nested fan-outs).
struct CompiledPipeline {
  std::vector<OperatorPtr> operators;
  std::shared_ptr<SinkOperator> sink;      ///< non-null at a sink leaf
  std::vector<CompiledPipeline> branches;  ///< non-empty at a fan-out
  Schema output_schema;                    ///< schema after `operators`
  std::string path;
  /// Network channels lowered into this segment (one per node transition
  /// along the chain, in chain order). The engine aggregates these into
  /// the measured `DeploymentReport`.
  std::vector<std::shared_ptr<NetworkChannel>> channels;
  /// Partitioned-parallel suffix: when `CompileOptions::partitions > 1`
  /// and the chain reaches a keyed stateful node whose downstream suffix
  /// qualifies, the suffix is compiled once per partition here instead of
  /// into `operators`. Each clone owns disjoint keyed state; the engine
  /// routes rows by hashing the key field (below) into a selection vector
  /// per partition. All clones share the chain's terminal sink and carry
  /// the same `path`, so per-path stats sum across clones. Mutually
  /// exclusive with `branches` / a non-null `sink` on this segment.
  std::vector<CompiledPipeline> partitions;
  size_t partition_key_index = 0;  ///< key field in `operators`' output
  DataType partition_key_type = DataType::kInt64;
};

/// \brief Physical lowering configuration.
struct CompileOptions {
  /// Lower maximal Filter→Map→Project runs (within one placement segment)
  /// whose expressions compile to batch kernels into a single fused
  /// `exec::BatchKernelOperator` pass. Nodes whose expressions refuse to
  /// compile fall back to the interpreted operators; false interprets
  /// everything (A/B benchmarking).
  bool compiled_kernels = true;
  /// Compile the suffix hanging off each qualifying keyed stateful node
  /// (window aggregation, threshold window, CEP) this many times, one
  /// clone per hash partition of the key (`CompiledPipeline::partitions`).
  /// 1 (the default) compiles everything into a single sequential chain.
  /// Suffixes containing fan-outs, joins, a second keyed stateful node,
  /// or placement transitions stay sequential — their state or channel
  /// ordering is not per-key-disjoint.
  size_t partitions = 1;
  /// Fault-tolerance configuration applied to every channel this compile
  /// lowers: `faults.profile` combines with the per-link profiles along
  /// each channel's route, `faults.retry` configures the retransmit queue
  /// and reorder-repair buffer of every channel pair (fault.hpp).
  FaultToleranceOptions faults = {};
};

/// \brief Lowers a validated plan to its physical pipeline tree (schemas
/// propagate source → sinks; expressions bind along the way). `KeyBy`
/// nodes are folded into the key field of the node they precede; sink
/// nodes become `CompiledPipeline::sink` (the engine drives them
/// separately). The plan's source is *not* consumed.
///
/// When \p topology is non-null and the plan carries placement
/// annotations, every transition between differently-placed neighbours
/// lowers to a `NetworkChannelSink`/`NetworkChannelSource` pair over a
/// `NetworkChannel` connecting the two nodes (multi-hop routes resolve
/// through the topology) — the executable form of the paper's edge/cloud
/// split. A null \p topology ignores annotations and compiles the plan
/// for single-node execution.
Result<CompiledPipeline> CompilePlan(const Schema& source_schema,
                                     const LogicalPlan& plan,
                                     const Topology* topology = nullptr,
                                     const CompileOptions& options = {});

}  // namespace nebulameos::nebula

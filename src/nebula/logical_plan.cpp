#include "nebula/logical_plan.hpp"

#include <map>
#include <optional>
#include <type_traits>
#include <utility>

#include "nebula/exec/kernels.hpp"

namespace nebulameos::nebula {

namespace {

// Durations render in the largest unit that divides them evenly.
std::string FormatDurationText(Duration d) {
  if (d >= Minutes(1) && d % Minutes(1) == 0) {
    return std::to_string(d / Minutes(1)) + "m";
  }
  if (d >= Seconds(1) && d % Seconds(1) == 0) {
    return std::to_string(d / Seconds(1)) + "s";
  }
  return std::to_string(d) + "us";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kFirst:
      return "first";
    case AggKind::kLast:
      return "last";
  }
  return "?";
}

std::string FormatAggregates(
    const std::vector<AggregateSpec>& aggs,
    const std::vector<CustomAggregatorFactory>& customs) {
  std::string out = "[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggs[i].kind);
    out += "(" + aggs[i].field + ") AS " + aggs[i].output_name;
  }
  out += "]";
  if (!customs.empty()) {
    out += " +" + std::to_string(customs.size()) + " custom";
  }
  return out;
}

std::string FormatWindowSpec(const WindowSpec& spec) {
  if (const auto* t = std::get_if<TumblingWindowSpec>(&spec)) {
    return "tumbling " + FormatDurationText(t->size);
  }
  if (const auto* s = std::get_if<SlidingWindowSpec>(&spec)) {
    return "sliding " + FormatDurationText(s->size) + " by " +
           FormatDurationText(s->slide);
  }
  return "threshold";
}

}  // namespace

std::string FilterNode::ToString() const {
  return "Filter(" + (predicate_ ? predicate_->ToString() : "<null>") + ")";
}

std::string MapNode::ToString() const {
  std::string out = "Map(";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += specs_[i].name + " := " +
           (specs_[i].expr ? specs_[i].expr->ToString() : "<null>");
  }
  return out + ")";
}

std::string ProjectNode::ToString() const {
  std::string out = "Project(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i];
  }
  return out + ")";
}

std::string WindowAggNode::ToString() const {
  std::string out = "WindowAgg(" + FormatWindowSpec(options_.window);
  if (!options_.key_field.empty()) out += ", key=" + options_.key_field;
  out += ", time=" + options_.time_field;
  out += ", aggs=" +
         FormatAggregates(options_.aggregates, options_.custom_aggregators);
  return out + ")";
}

std::string ThresholdWindowNode::ToString() const {
  std::string out = "ThresholdWindow(";
  out += options_.predicate ? options_.predicate->ToString() : "<null>";
  if (options_.min_duration > 0) {
    out += ", min=" + FormatDurationText(options_.min_duration);
  }
  if (!options_.key_field.empty()) out += ", key=" + options_.key_field;
  out += ", time=" + options_.time_field;
  out += ", aggs=" +
         FormatAggregates(options_.aggregates, options_.custom_aggregators);
  return out + ")";
}

std::string CepNode::ToString() const {
  std::string out = "CEP(";
  for (size_t i = 0; i < pattern_.steps.size(); ++i) {
    const PatternStep& step = pattern_.steps[i];
    if (i > 0) out += " ; ";
    if (step.negated) out += "!";
    out += step.name;
    if (step.one_or_more) out += "+";
  }
  if (pattern_.within > 0) {
    out += " within " + FormatDurationText(pattern_.within);
  }
  if (!pattern_.key_field.empty()) out += ", key=" + pattern_.key_field;
  out += ", " + std::to_string(measures_.size()) + " measures";
  return out + ")";
}

std::string LookupJoinNode::ToString() const {
  std::string out = "TemporalLookupJoin(";
  out += options_.left_key + " = " + options_.right_key;
  out += ", nearest " + options_.left_time + "~" + options_.right_time;
  if (options_.max_age > 0) {
    out += " within " + FormatDurationText(options_.max_age);
  }
  return out + ")";
}

std::string SinkNode::ToString() const {
  return "Sink(" + (sink_ ? sink_->name() : "<null>") + ")";
}

std::string DagBranchPath(const std::string& parent, size_t index) {
  return parent.empty() ? std::to_string(index)
                        : parent + "." + std::to_string(index);
}

// --- Plan-level structural identity ------------------------------------------

namespace {

bool AggregatesEqual(const std::vector<AggregateSpec>& a,
                     const std::vector<AggregateSpec>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].field != b[i].field ||
        a[i].output_name != b[i].output_name) {
      return false;
    }
  }
  return true;
}

bool MeasuresEqual(const std::vector<Measure>& a,
                   const std::vector<Measure>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].step != b[i].step ||
        a[i].field != b[i].field || a[i].output_name != b[i].output_name) {
      return false;
    }
  }
  return true;
}

bool WindowSpecEqual(const WindowSpec& a, const WindowSpec& b) {
  if (a.index() != b.index()) return false;
  if (const auto* ta = std::get_if<TumblingWindowSpec>(&a)) {
    return ta->size == std::get<TumblingWindowSpec>(b).size;
  }
  if (const auto* sa = std::get_if<SlidingWindowSpec>(&a)) {
    const auto& sb = std::get<SlidingWindowSpec>(b);
    return sa->size == sb.size && sa->slide == sb.slide;
  }
  const auto& tha = std::get<ThresholdWindowSpec>(a);
  const auto& thb = std::get<ThresholdWindowSpec>(b);
  return tha.min_duration == thb.min_duration &&
         StructurallyEqual(tha.predicate, thb.predicate);
}

bool PatternsEqual(const Pattern& a, const Pattern& b) {
  if (a.steps.size() != b.steps.size() || a.within != b.within ||
      a.key_field != b.key_field || a.time_field != b.time_field ||
      a.suppress_duplicate_starts != b.suppress_duplicate_starts) {
    return false;
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const PatternStep& sa = a.steps[i];
    const PatternStep& sb = b.steps[i];
    if (sa.name != sb.name || sa.negated != sb.negated ||
        sa.one_or_more != sb.one_or_more ||
        !StructurallyEqual(sa.predicate, sb.predicate)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool StructurallyEqual(const LogicalOperator& a, const LogicalOperator& b) {
  if (&a == &b) return true;
  if (a.kind() != b.kind() || a.placement() != b.placement()) return false;
  switch (a.kind()) {
    case LogicalOperator::Kind::kFilter: {
      const auto& fa = static_cast<const FilterNode&>(a);
      const auto& fb = static_cast<const FilterNode&>(b);
      return StructurallyEqual(fa.predicate(), fb.predicate());
    }
    case LogicalOperator::Kind::kMap: {
      const auto& ma = static_cast<const MapNode&>(a);
      const auto& mb = static_cast<const MapNode&>(b);
      if (ma.specs().size() != mb.specs().size()) return false;
      for (size_t i = 0; i < ma.specs().size(); ++i) {
        if (ma.specs()[i].name != mb.specs()[i].name ||
            !StructurallyEqual(ma.specs()[i].expr, mb.specs()[i].expr)) {
          return false;
        }
      }
      return true;
    }
    case LogicalOperator::Kind::kProject:
      return static_cast<const ProjectNode&>(a).fields() ==
             static_cast<const ProjectNode&>(b).fields();
    case LogicalOperator::Kind::kKeyBy:
      return static_cast<const KeyByNode&>(a).field() ==
             static_cast<const KeyByNode&>(b).field();
    case LogicalOperator::Kind::kWindowAgg: {
      const auto& wa = static_cast<const WindowAggNode&>(a).options();
      const auto& wb = static_cast<const WindowAggNode&>(b).options();
      // Custom aggregators are opaque callables — two factories cannot be
      // proven equivalent, so any custom aggregate blocks equality.
      if (!wa.custom_aggregators.empty() || !wb.custom_aggregators.empty()) {
        return false;
      }
      return wa.key_field == wb.key_field && wa.time_field == wb.time_field &&
             wa.allowed_lateness == wb.allowed_lateness &&
             WindowSpecEqual(wa.window, wb.window) &&
             AggregatesEqual(wa.aggregates, wb.aggregates);
    }
    case LogicalOperator::Kind::kThresholdWindow: {
      const auto& ta = static_cast<const ThresholdWindowNode&>(a).options();
      const auto& tb = static_cast<const ThresholdWindowNode&>(b).options();
      if (!ta.custom_aggregators.empty() || !tb.custom_aggregators.empty()) {
        return false;
      }
      return ta.min_duration == tb.min_duration &&
             ta.key_field == tb.key_field && ta.time_field == tb.time_field &&
             StructurallyEqual(ta.predicate, tb.predicate) &&
             AggregatesEqual(ta.aggregates, tb.aggregates);
    }
    case LogicalOperator::Kind::kCep: {
      const auto& ca = static_cast<const CepNode&>(a);
      const auto& cb = static_cast<const CepNode&>(b);
      return PatternsEqual(ca.pattern(), cb.pattern()) &&
             MeasuresEqual(ca.measures(), cb.measures());
    }
    case LogicalOperator::Kind::kLookupJoin: {
      const auto& ja = static_cast<const LookupJoinNode&>(a).options();
      const auto& jb = static_cast<const LookupJoinNode&>(b).options();
      // The lookup side is an arbitrary Source — only instance identity
      // proves the two joins probe the same data.
      return ja.lookup == jb.lookup && ja.left_key == jb.left_key &&
             ja.right_key == jb.right_key && ja.left_time == jb.left_time &&
             ja.right_time == jb.right_time && ja.max_age == jb.max_age &&
             ja.collision_prefix == jb.collision_prefix;
    }
    case LogicalOperator::Kind::kFanOut: {
      const auto& fa = static_cast<const FanOutNode&>(a);
      const auto& fb = static_cast<const FanOutNode&>(b);
      if (fa.branches().size() != fb.branches().size()) return false;
      for (size_t i = 0; i < fa.branches().size(); ++i) {
        const auto& ba = fa.branches()[i];
        const auto& bb = fb.branches()[i];
        if (ba.size() != bb.size()) return false;
        for (size_t j = 0; j < ba.size(); ++j) {
          if (!StructurallyEqual(*ba[j], *bb[j])) return false;
        }
      }
      return true;
    }
    case LogicalOperator::Kind::kSink:
      // Sinks are stateful endpoints owned by their submitter; two plans
      // share results only through the *same* sink instance.
      return static_cast<const SinkNode&>(a).sink() ==
             static_cast<const SinkNode&>(b).sink();
  }
  return false;
}

size_t StructuralHash(const LogicalOperator& op) {
  // ToString renders kind + payload (expressions render structurally);
  // placement is appended because Explain reports it separately. Equal
  // nodes render equal, so equal nodes hash equal; collisions are resolved
  // by callers via StructurallyEqual.
  std::string repr = op.ToString() + "@" + std::to_string(op.placement());
  if (op.kind() == LogicalOperator::Kind::kFanOut) {
    // FanOut renders only its branch count — fold in the nested chains.
    for (const auto& branch : static_cast<const FanOutNode&>(op).branches()) {
      for (const auto& node : branch) {
        repr += "|" + std::to_string(StructuralHash(*node));
      }
    }
  }
  return std::hash<std::string>{}(repr);
}

LogicalOperatorPtr CloneOperator(const LogicalOperator& op) {
  LogicalOperatorPtr clone;
  switch (op.kind()) {
    case LogicalOperator::Kind::kFilter:
      clone = std::make_unique<FilterNode>(
          static_cast<const FilterNode&>(op).predicate());
      break;
    case LogicalOperator::Kind::kMap:
      clone =
          std::make_unique<MapNode>(static_cast<const MapNode&>(op).specs());
      break;
    case LogicalOperator::Kind::kProject:
      clone = std::make_unique<ProjectNode>(
          static_cast<const ProjectNode&>(op).fields());
      break;
    case LogicalOperator::Kind::kKeyBy:
      clone = std::make_unique<KeyByNode>(
          static_cast<const KeyByNode&>(op).field());
      break;
    case LogicalOperator::Kind::kWindowAgg: {
      const auto& options = static_cast<const WindowAggNode&>(op).options();
      // A custom-aggregator factory may close over shared state; a clone
      // aliasing it could double-fold. Refuse rather than guess.
      if (!options.custom_aggregators.empty()) return nullptr;
      clone = std::make_unique<WindowAggNode>(options);
      break;
    }
    case LogicalOperator::Kind::kThresholdWindow: {
      const auto& options =
          static_cast<const ThresholdWindowNode&>(op).options();
      if (!options.custom_aggregators.empty()) return nullptr;
      clone = std::make_unique<ThresholdWindowNode>(options);
      break;
    }
    case LogicalOperator::Kind::kCep: {
      const auto& cep = static_cast<const CepNode&>(op);
      clone = std::make_unique<CepNode>(cep.pattern(), cep.measures());
      break;
    }
    case LogicalOperator::Kind::kLookupJoin:
      clone = std::make_unique<LookupJoinNode>(
          static_cast<const LookupJoinNode&>(op).options());
      break;
    case LogicalOperator::Kind::kFanOut: {
      std::vector<FanOutNode::Branch> branches;
      for (const auto& branch :
           static_cast<const FanOutNode&>(op).branches()) {
        FanOutNode::Branch cloned;
        for (const auto& node : branch) {
          LogicalOperatorPtr c = CloneOperator(*node);
          if (c == nullptr) return nullptr;
          cloned.push_back(std::move(c));
        }
        branches.push_back(std::move(cloned));
      }
      clone = std::make_unique<FanOutNode>(std::move(branches));
      break;
    }
    case LogicalOperator::Kind::kSink:
      clone = std::make_unique<SinkNode>(
          static_cast<const SinkNode&>(op).sink());
      break;
  }
  if (clone != nullptr) clone->set_placement(op.placement());
  return clone;
}

namespace {

using Chain = std::vector<LogicalOperatorPtr>;

// Local alias keeping the traversal helpers terse.
std::string BranchPath(const std::string& parent, size_t i) {
  return DagBranchPath(parent, i);
}

// Depth-first visit of every leaf chain (a chain not ending in a fan-out),
// carrying its DAG path. Returns false to stop early. Templated on the
// chain's constness so read-only traversals (NumLeaves, Sinks) stay const
// all the way down.
template <typename ChainT, typename Fn>
bool ForEachLeafChain(ChainT& chain, const std::string& path, const Fn& fn) {
  if (!chain.empty() &&
      chain.back()->kind() == LogicalOperator::Kind::kFanOut) {
    if constexpr (std::is_const_v<ChainT>) {
      const auto& fan = static_cast<const FanOutNode&>(*chain.back());
      const auto& branches = fan.branches();
      for (size_t i = 0; i < branches.size(); ++i) {
        if (!ForEachLeafChain(branches[i], BranchPath(path, i), fn)) {
          return false;
        }
      }
    } else {
      auto& fan = static_cast<FanOutNode&>(*chain.back());
      auto& branches = fan.mutable_branches();
      for (size_t i = 0; i < branches.size(); ++i) {
        if (!ForEachLeafChain(branches[i], BranchPath(path, i), fn)) {
          return false;
        }
      }
    }
    return true;
  }
  return fn(chain, path);
}

// Structural checks shared by the root chain and every branch chain.
Status ValidateChain(const Chain& ops, const std::string& path) {
  const std::string where =
      path.empty() ? std::string() : " (branch " + path + ")";
  if (ops.empty() || (ops.back()->kind() != LogicalOperator::Kind::kSink &&
                      ops.back()->kind() != LogicalOperator::Kind::kFanOut)) {
    return Status::InvalidArgument("plan has no sink" + where);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const LogicalOperator& op = *ops[i];
    switch (op.kind()) {
      case LogicalOperator::Kind::kSink: {
        if (i + 1 != ops.size()) {
          return Status::InvalidArgument(
              "sink must be the terminal node of its chain" + where);
        }
        if (static_cast<const SinkNode&>(op).sink() == nullptr) {
          return Status::InvalidArgument("plan has a null sink" + where);
        }
        break;
      }
      case LogicalOperator::Kind::kFanOut: {
        if (i + 1 != ops.size()) {
          return Status::InvalidArgument(
              "fan-out must be the terminal node of its chain" + where);
        }
        const auto& fan = static_cast<const FanOutNode&>(op);
        if (fan.branches().size() < 2) {
          return Status::InvalidArgument(
              "fan-out needs at least two branches" + where);
        }
        for (size_t b = 0; b < fan.branches().size(); ++b) {
          NM_RETURN_NOT_OK(ValidateChain(fan.branches()[b],
                                         BranchPath(path, b)));
        }
        break;
      }
      case LogicalOperator::Kind::kKeyBy: {
        const auto& key = static_cast<const KeyByNode&>(op);
        if (key.field().empty()) {
          return Status::InvalidArgument("KeyBy with an empty field" + where);
        }
        const LogicalOperator::Kind next =
            i + 1 < ops.size() ? ops[i + 1]->kind()
                               : LogicalOperator::Kind::kSink;
        if (next != LogicalOperator::Kind::kWindowAgg &&
            next != LogicalOperator::Kind::kThresholdWindow &&
            next != LogicalOperator::Kind::kCep) {
          return Status::InvalidArgument(
              "KeyBy(" + key.field() +
              ") is never consumed: it must be immediately followed by a "
              "window aggregation or CEP step" + where);
        }
        break;
      }
      case LogicalOperator::Kind::kWindowAgg: {
        const auto& node = static_cast<const WindowAggNode&>(op);
        if (node.options().aggregates.empty() &&
            node.options().custom_aggregators.empty()) {
          return Status::InvalidArgument(
              "window aggregation without aggregates (missing Aggregate?)" +
              where);
        }
        break;
      }
      case LogicalOperator::Kind::kThresholdWindow: {
        const auto& node = static_cast<const ThresholdWindowNode&>(op);
        if (node.options().aggregates.empty() &&
            node.options().custom_aggregators.empty()) {
          return Status::InvalidArgument(
              "threshold window without aggregates (missing Aggregate?)" +
              where);
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

// Renders one chain. `indent` prefixes every line; nodes of a chain that
// ends in a fan-out are annotated as the shared prefix of its branches;
// placed nodes show their target topology node.
void ExplainChain(const Chain& ops, const std::string& indent,
                  const std::string& path, std::string* out) {
  const bool fans_out =
      !ops.empty() && ops.back()->kind() == LogicalOperator::Kind::kFanOut;
  for (const LogicalOperatorPtr& op : ops) {
    *out += indent + "-> " + op->ToString();
    if (op->placement() != LogicalOperator::kUnplaced) {
      *out += "  @node" + std::to_string(op->placement());
    }
    if (fans_out && op->kind() != LogicalOperator::Kind::kFanOut) {
      *out += "  [shared]";
    }
    *out += "\n";
    if (op->kind() == LogicalOperator::Kind::kFanOut) {
      const auto& fan = static_cast<const FanOutNode&>(*op);
      for (size_t b = 0; b < fan.branches().size(); ++b) {
        const std::string branch_path = BranchPath(path, b);
        *out += indent + "   [branch " + branch_path + "]\n";
        ExplainChain(fan.branches()[b], indent + "   ", branch_path, out);
      }
    }
  }
}

// Lowers a placement transition from `from_node` to `to_node`: a
// `NetworkChannelSink`/`NetworkChannelSource` pair sharing one channel,
// appended to `pipe` so every record crossing the boundary travels as a
// serialized wire frame over the (possibly multi-hop) route. The channel
// arms the compile-level fault profile (combined with the route's link
// profiles) and the retry/repair policy.
Status LowerTransition(const Topology& topology, int from_node, int to_node,
                       const Schema& schema, const FaultToleranceOptions& ft,
                       CompiledPipeline* pipe) {
  NM_ASSIGN_OR_RETURN(std::shared_ptr<NetworkChannel> channel,
                      NetworkChannel::Connect(topology, from_node, to_node));
  channel->ConfigureFaults(ft.profile, ft.retry);
  NM_ASSIGN_OR_RETURN(OperatorPtr channel_sink,
                      NetworkChannelSink::Make(schema, channel));
  NM_ASSIGN_OR_RETURN(OperatorPtr channel_source,
                      NetworkChannelSource::Make(schema, channel));
  pipe->operators.push_back(std::move(channel_sink));
  pipe->operators.push_back(std::move(channel_source));
  pipe->channels.push_back(std::move(channel));
  return Status::OK();
}

// The key field a keyed stateful node partitions its state by: the folded
// KeyBy field when one is pending, else the node's own key option. Empty
// when the node is not a keyed stateful operator (including global
// windows). Mirrors the fold rules in `CompileChain` exactly.
std::string StatefulKeyField(const LogicalOperator& node,
                             const std::string& pending_key) {
  switch (node.kind()) {
    case LogicalOperator::Kind::kWindowAgg: {
      const auto& opts = static_cast<const WindowAggNode&>(node).options();
      return pending_key.empty() ? opts.key_field : pending_key;
    }
    case LogicalOperator::Kind::kThresholdWindow: {
      const auto& opts =
          static_cast<const ThresholdWindowNode&>(node).options();
      return pending_key.empty() ? opts.key_field : pending_key;
    }
    case LogicalOperator::Kind::kCep: {
      const auto& pattern = static_cast<const CepNode&>(node).pattern();
      return pattern.key_field.empty() ? pending_key : pattern.key_field;
    }
    default:
      return "";
  }
}

// True when the chain suffix starting at the keyed stateful node at
// `begin` may run as per-key hash partitions: nothing downstream may
// merge keys (fan-out), hold non-key-partitioned state (lookup join),
// re-key (KeyBy or a second stateful node), or cross a placement
// boundary (a network channel's frame order is per-channel, not
// per-key).
bool SuffixPartitionable(const Chain& ops, size_t begin,
                         const Topology* topology, int current_node) {
  for (size_t i = begin; i < ops.size(); ++i) {
    const LogicalOperator& node = *ops[i];
    switch (node.kind()) {
      case LogicalOperator::Kind::kFanOut:
      case LogicalOperator::Kind::kLookupJoin:
      case LogicalOperator::Kind::kKeyBy:
        return false;
      case LogicalOperator::Kind::kWindowAgg:
      case LogicalOperator::Kind::kThresholdWindow:
      case LogicalOperator::Kind::kCep:
        if (i != begin) return false;
        break;
      default:
        break;
    }
    if (topology != nullptr &&
        node.placement() != LogicalOperator::kUnplaced &&
        current_node != LogicalOperator::kUnplaced &&
        node.placement() != current_node) {
      return false;
    }
  }
  return true;
}

bool PartitionableKeyType(DataType type) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kText16:
    case DataType::kText32:
      return true;
    default:
      return false;
  }
}

// Kernel-level CSE rewrites for the fused run starting at ops[idx], keyed
// by op index so refused stages fall back to the *original* nodes.
struct FusedRunCse {
  std::map<size_t, ExprPtr> filter_predicates;
  std::map<size_t, std::vector<MapSpec>> map_specs;
  std::shared_ptr<exec::ColumnCache> cache;  ///< null = nothing shared
};

// Plans kernel-level CSE for one fused run: collects the expression roots
// that evaluate against the run's *input* buffer — the predicates of the
// leading consecutive filters plus the computed fields of the map
// immediately after them (CompiledMap kernels also read the stage's input
// buffer, so physical row indices line up across all these roots) — and
// rewrites repeated subtrees to share one cached column. Stops at any
// other node kind, a second map, or a placement transition: past the first
// materialization the rows live in a different buffer and cached physical
// indices would be meaningless.
FusedRunCse PlanFusedRunCse(const Chain& ops, size_t idx,
                            const Topology* topology, int current_node) {
  FusedRunCse out;
  std::vector<ExprPtr> roots;
  std::vector<size_t> filter_indices;
  size_t map_index = ops.size();
  for (size_t i = idx; i < ops.size(); ++i) {
    const LogicalOperator& node = *ops[i];
    if (topology != nullptr &&
        node.placement() != LogicalOperator::kUnplaced &&
        current_node != LogicalOperator::kUnplaced &&
        node.placement() != current_node) {
      break;  // fusion barrier: the run ends at the transition
    }
    if (node.kind() == LogicalOperator::Kind::kFilter) {
      filter_indices.push_back(i);
      roots.push_back(static_cast<const FilterNode&>(node).predicate());
      continue;
    }
    if (node.kind() == LogicalOperator::Kind::kMap) {
      map_index = i;
      for (const MapSpec& spec : static_cast<const MapNode&>(node).specs()) {
        roots.push_back(spec.expr);
      }
    }
    break;
  }
  if (roots.empty()) return out;
  KernelCsePlan plan = PlanKernelCse(std::move(roots));
  if (plan.num_shared == 0) return out;
  out.cache = std::move(plan.cache);
  size_t r = 0;
  for (size_t fi : filter_indices) {
    out.filter_predicates[fi] = std::move(plan.roots[r++]);
  }
  if (map_index < ops.size()) {
    std::vector<MapSpec> specs =
        static_cast<const MapNode&>(*ops[map_index]).specs();
    for (MapSpec& spec : specs) spec.expr = std::move(plan.roots[r++]);
    out.map_specs[map_index] = std::move(specs);
  }
  return out;
}

// Lowers one chain into `pipe` starting at node `begin`, recursing at a
// fan-out. `current` is the schema entering the chain at `begin`;
// `pending_key_in` seeds the folded KeyBy field (non-empty only when a
// partition clone re-enters the chain at its stateful node).
// `current_node` tracks which topology node the pipeline is on (kUnplaced
// for single-node compilation); when a placed node differs, the
// transition lowers to a channel pair first.
//
// With `copts.compiled_kernels` on, maximal runs of Filter/Map/Project
// nodes whose expressions lower to batch kernels fuse into one
// `exec::BatchKernelOperator`; a refused expression, any other node kind,
// or a placement transition ends the run and lowering continues with the
// interpreted operators.
//
// With `copts.partitions > 1`, reaching a keyed stateful node whose
// suffix qualifies (`SuffixPartitionable`) compiles that suffix once per
// partition into `pipe->partitions` (each clone re-entering this function
// with partitions = 1) and records the key's index and type for the
// engine's hash router.
Status CompileChain(const Chain& ops, size_t begin,
                    const std::string& pending_key_in,
                    const Schema& current_in, const std::string& path,
                    CompiledPipeline* pipe, const Topology* topology,
                    int current_node, const CompileOptions& copts) {
  Schema current = current_in;
  pipe->path = path;
  // A KeyBy node's field is folded into the node it precedes.
  std::string pending_key = pending_key_in;
  // The in-flight fused run (engaged while consecutive nodes absorb) and
  // its kernel-CSE rewrites (planned when the run opens).
  std::optional<exec::BatchKernelCompiler> fuser;
  FusedRunCse cse;
  const auto flush_fused = [&]() {
    if (!fuser.has_value()) return;
    if (fuser->num_stages() > 0) {
      OperatorPtr op = std::move(*fuser).Finish();
      current = op->output_schema();
      pipe->operators.push_back(std::move(op));
    }
    fuser.reset();
  };
  for (size_t idx = begin; idx < ops.size(); ++idx) {
    const LogicalOperatorPtr& node = ops[idx];
    // Partitioned-parallel trigger: a qualifying keyed stateful node ends
    // this segment's sequential chain; its whole suffix (through the
    // sink) compiles once per partition. Checked before placement
    // lowering — a transition anywhere in the suffix disqualifies it, so
    // nothing is lowered twice.
    if (copts.partitions > 1) {
      const std::string key = StatefulKeyField(*node, pending_key);
      if (!key.empty() && current.HasField(key) &&
          SuffixPartitionable(ops, idx, topology, current_node)) {
        NM_ASSIGN_OR_RETURN(const size_t key_index, current.IndexOf(key));
        const DataType key_type = current.field(key_index).type;
        if (PartitionableKeyType(key_type)) {
          flush_fused();
          CompileOptions sub = copts;
          sub.partitions = 1;
          for (size_t p = 0; p < copts.partitions; ++p) {
            CompiledPipeline part;
            // Clones keep this segment's path: their operators carry the
            // same stats keys and are summed per path by the engine.
            NM_RETURN_NOT_OK(CompileChain(ops, idx, pending_key, current,
                                          path, &part, topology,
                                          current_node, sub));
            pipe->partitions.push_back(std::move(part));
          }
          pipe->partition_key_index = key_index;
          pipe->partition_key_type = key_type;
          pipe->output_schema = current;
          return Status::OK();  // the suffix lives in the partitions
        }
      }
    }
    // Placement lowering (KeyBy is a marker folded into its consumer, so
    // it never moves the pipeline on its own). A transition is a fusion
    // barrier: kernels never span two placement segments.
    if (topology != nullptr &&
        node->kind() != LogicalOperator::Kind::kKeyBy &&
        node->placement() != LogicalOperator::kUnplaced &&
        current_node != LogicalOperator::kUnplaced &&
        node->placement() != current_node) {
      flush_fused();
      NM_RETURN_NOT_OK(LowerTransition(*topology, current_node,
                                       node->placement(), current,
                                       copts.faults, pipe));
      current_node = node->placement();
    }
    if (copts.compiled_kernels && pending_key.empty()) {
      bool absorbed = false;
      // Opening a fresh run plans kernel-level CSE across its same-buffer
      // stages; a wrapper-carrying predicate/spec that still refuses to
      // compile falls back to the original node below (wrappers only wrap
      // compilation, so refusal behaviour is unchanged).
      const auto open_run = [&]() {
        if (fuser.has_value()) return;
        cse = PlanFusedRunCse(ops, idx, topology, current_node);
        fuser.emplace(current);
        if (cse.cache != nullptr) fuser->AttachCseCache(cse.cache);
      };
      switch (node->kind()) {
        case LogicalOperator::Kind::kFilter: {
          open_run();
          const auto rewritten = cse.filter_predicates.find(idx);
          absorbed = fuser->AddFilter(
              rewritten != cse.filter_predicates.end()
                  ? rewritten->second
                  : static_cast<const FilterNode&>(*node).predicate());
          break;
        }
        case LogicalOperator::Kind::kMap: {
          open_run();
          const auto rewritten = cse.map_specs.find(idx);
          absorbed = fuser->AddMap(
              rewritten != cse.map_specs.end()
                  ? rewritten->second
                  : static_cast<const MapNode&>(*node).specs());
          break;
        }
        case LogicalOperator::Kind::kProject: {
          if (!fuser.has_value()) fuser.emplace(current);
          absorbed = fuser->AddProject(
              static_cast<const ProjectNode&>(*node).fields());
          break;
        }
        default:
          break;
      }
      if (absorbed) {
        current = fuser->current_schema();
        continue;
      }
    }
    // Not (or no longer) fusable: close the run before the interpreted
    // operator binds against the run's output schema.
    flush_fused();
    OperatorPtr op;
    switch (node->kind()) {
      case LogicalOperator::Kind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        NM_ASSIGN_OR_RETURN(op,
                            FilterOperator::Make(current, filter.predicate()));
        break;
      }
      case LogicalOperator::Kind::kMap: {
        const auto& map = static_cast<const MapNode&>(*node);
        NM_ASSIGN_OR_RETURN(op, MapOperator::Make(current, map.specs()));
        break;
      }
      case LogicalOperator::Kind::kProject: {
        const auto& project = static_cast<const ProjectNode&>(*node);
        NM_ASSIGN_OR_RETURN(op,
                            ProjectOperator::Make(current, project.fields()));
        break;
      }
      case LogicalOperator::Kind::kKeyBy: {
        const auto& key = static_cast<const KeyByNode&>(*node);
        if (!pending_key.empty()) {
          return Status::InvalidArgument(
              "KeyBy(" + pending_key + ") is never consumed");
        }
        pending_key = key.field();
        continue;  // marker node: no physical operator
      }
      case LogicalOperator::Kind::kWindowAgg: {
        const auto& win = static_cast<const WindowAggNode&>(*node);
        WindowAggOptions options = win.options();
        if (!pending_key.empty()) {
          options.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, WindowAggOperator::Make(current, std::move(options)));
        break;
      }
      case LogicalOperator::Kind::kThresholdWindow: {
        const auto& win = static_cast<const ThresholdWindowNode&>(*node);
        ThresholdWindowOptions options = win.options();
        if (!pending_key.empty()) {
          options.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, ThresholdWindowOperator::Make(current, std::move(options)));
        break;
      }
      case LogicalOperator::Kind::kCep: {
        const auto& cep = static_cast<const CepNode&>(*node);
        Pattern pattern = cep.pattern();
        if (!pending_key.empty()) {
          if (pattern.key_field.empty()) pattern.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, CepOperator::Make(current, std::move(pattern),
                                  cep.measures()));
        break;
      }
      case LogicalOperator::Kind::kLookupJoin: {
        const auto& join = static_cast<const LookupJoinNode&>(*node);
        NM_ASSIGN_OR_RETURN(
            op, TemporalLookupJoinOperator::Make(current, join.options()));
        break;
      }
      case LogicalOperator::Kind::kFanOut: {
        if (!pending_key.empty()) {
          return Status::InvalidArgument(
              "KeyBy(" + pending_key + ") is never consumed");
        }
        const auto& fan = static_cast<const FanOutNode&>(*node);
        for (size_t b = 0; b < fan.branches().size(); ++b) {
          CompiledPipeline branch;
          NM_RETURN_NOT_OK(CompileChain(fan.branches()[b], 0, "", current,
                                        BranchPath(path, b), &branch,
                                        topology, current_node, copts));
          pipe->branches.push_back(std::move(branch));
        }
        pipe->output_schema = current;
        return Status::OK();  // fan-out terminates the chain
      }
      case LogicalOperator::Kind::kSink: {
        // The engine drives the sink; lowering stops here.
        pipe->sink = static_cast<const SinkNode&>(*node).sink();
        continue;
      }
    }
    if (!pending_key.empty()) {
      return Status::InvalidArgument(
          "KeyBy(" + pending_key +
          ") must be immediately followed by a window or CEP step");
    }
    current = op->output_schema();
    pipe->operators.push_back(std::move(op));
  }
  if (!pending_key.empty()) {
    return Status::InvalidArgument(
        "KeyBy(" + pending_key + ") is never consumed");
  }
  flush_fused();
  pipe->output_schema = current;
  return Status::OK();
}

}  // namespace

void LogicalPlan::SetSink(std::shared_ptr<SinkOperator> sink) {
  if (!ops_.empty() && ops_.back()->kind() == LogicalOperator::Kind::kSink) {
    ops_.pop_back();
  }
  ops_.push_back(std::make_unique<SinkNode>(std::move(sink)));
}

Status LogicalPlan::SetLeafSinks(
    std::vector<std::shared_ptr<SinkOperator>> sinks) {
  // Validate the count before touching anything, so a mismatch leaves the
  // plan exactly as it was.
  if (sinks.size() != NumLeaves()) {
    return Status::InvalidArgument(
        "SetLeafSinks: " + std::to_string(sinks.size()) + " sinks for " +
        std::to_string(NumLeaves()) + " plan leaves");
  }
  size_t next = 0;
  ForEachLeafChain(ops_, "", [&](Chain& chain, const std::string&) {
    if (!chain.empty() &&
        chain.back()->kind() == LogicalOperator::Kind::kSink) {
      chain.pop_back();
    }
    chain.push_back(std::make_unique<SinkNode>(std::move(sinks[next++])));
    return true;
  });
  return Status::OK();
}

bool LogicalPlan::HasFanOut() const {
  return !ops_.empty() &&
         ops_.back()->kind() == LogicalOperator::Kind::kFanOut;
}

namespace {

bool AnyPlaced(const Chain& chain) {
  for (const LogicalOperatorPtr& op : chain) {
    if (op->placement() != LogicalOperator::kUnplaced) return true;
    if (op->kind() == LogicalOperator::Kind::kFanOut) {
      for (const Chain& branch :
           static_cast<const FanOutNode&>(*op).branches()) {
        if (AnyPlaced(branch)) return true;
      }
    }
  }
  return false;
}

}  // namespace

bool LogicalPlan::IsPlaced() const {
  return source_placement_ != LogicalOperator::kUnplaced || AnyPlaced(ops_);
}

size_t LogicalPlan::NumLeaves() const {
  size_t n = 0;
  ForEachLeafChain(std::as_const(ops_), "",
                   [&n](const Chain&, const std::string&) {
                     ++n;
                     return true;
                   });
  return n;
}

std::shared_ptr<SinkOperator> LogicalPlan::sink() const {
  if (ops_.empty() || ops_.back()->kind() != LogicalOperator::Kind::kSink) {
    return nullptr;
  }
  return static_cast<const SinkNode*>(ops_.back().get())->sink();
}

std::vector<std::pair<std::string, std::shared_ptr<SinkOperator>>>
LogicalPlan::Sinks() const {
  std::vector<std::pair<std::string, std::shared_ptr<SinkOperator>>> out;
  ForEachLeafChain(std::as_const(ops_), "",
                   [&out](const Chain& chain, const std::string& path) {
                     if (!chain.empty() &&
                         chain.back()->kind() ==
                             LogicalOperator::Kind::kSink) {
                       out.emplace_back(
                           path,
                           static_cast<const SinkNode&>(*chain.back()).sink());
                     }
                     return true;
                   });
  return out;
}

Status LogicalPlan::Validate() const {
  if (source_ == nullptr) {
    return Status::InvalidArgument("plan has no source");
  }
  return ValidateChain(ops_, "");
}

std::string LogicalPlan::Explain() const {
  std::string out = "Source: ";
  if (source_ != nullptr) {
    out += source_->name() + "(" + source_->schema().ToString() + ")";
  } else {
    out += "<none>";
  }
  if (source_placement_ != LogicalOperator::kUnplaced) {
    out += "  @node" + std::to_string(source_placement_);
  }
  out += "\n";
  ExplainChain(ops_, "  ", "", &out);
  return out;
}

Result<Schema> LogicalPlan::OutputSchema() const {
  if (HasFanOut()) {
    return Status::InvalidArgument(
        "plan fans out to several sinks; use OutputSchemas()");
  }
  if (source_ == nullptr) {
    return Status::InvalidArgument("plan has no source");
  }
  NM_ASSIGN_OR_RETURN(CompiledPipeline pipe,
                      CompilePlan(source_->schema(), *this));
  return pipe.output_schema;
}

Result<std::vector<std::pair<std::string, Schema>>>
LogicalPlan::OutputSchemas() const {
  if (source_ == nullptr) {
    return Status::InvalidArgument("plan has no source");
  }
  NM_ASSIGN_OR_RETURN(CompiledPipeline root,
                      CompilePlan(source_->schema(), *this));
  std::vector<std::pair<std::string, Schema>> out;
  const std::function<void(const CompiledPipeline&)> collect =
      [&](const CompiledPipeline& pipe) {
        if (pipe.branches.empty()) {
          out.emplace_back(pipe.path, pipe.output_schema);
          return;
        }
        for (const CompiledPipeline& branch : pipe.branches) collect(branch);
      };
  collect(root);
  return out;
}

Result<CompiledPipeline> CompilePlan(const Schema& source_schema,
                                     const LogicalPlan& plan,
                                     const Topology* topology,
                                     const CompileOptions& options) {
  CompiledPipeline root;
  NM_RETURN_NOT_OK(CompileChain(plan.ops(), 0, "", source_schema, "", &root,
                                topology, plan.source_placement(), options));
  return root;
}

}  // namespace nebulameos::nebula

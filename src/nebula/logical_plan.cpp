#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula {

namespace {

// Durations render in the largest unit that divides them evenly.
std::string FormatDurationText(Duration d) {
  if (d >= Minutes(1) && d % Minutes(1) == 0) {
    return std::to_string(d / Minutes(1)) + "m";
  }
  if (d >= Seconds(1) && d % Seconds(1) == 0) {
    return std::to_string(d / Seconds(1)) + "s";
  }
  return std::to_string(d) + "us";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kFirst:
      return "first";
    case AggKind::kLast:
      return "last";
  }
  return "?";
}

std::string FormatAggregates(
    const std::vector<AggregateSpec>& aggs,
    const std::vector<CustomAggregatorFactory>& customs) {
  std::string out = "[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggs[i].kind);
    out += "(" + aggs[i].field + ") AS " + aggs[i].output_name;
  }
  out += "]";
  if (!customs.empty()) {
    out += " +" + std::to_string(customs.size()) + " custom";
  }
  return out;
}

std::string FormatWindowSpec(const WindowSpec& spec) {
  if (const auto* t = std::get_if<TumblingWindowSpec>(&spec)) {
    return "tumbling " + FormatDurationText(t->size);
  }
  if (const auto* s = std::get_if<SlidingWindowSpec>(&spec)) {
    return "sliding " + FormatDurationText(s->size) + " by " +
           FormatDurationText(s->slide);
  }
  return "threshold";
}

}  // namespace

std::string FilterNode::ToString() const {
  return "Filter(" + (predicate_ ? predicate_->ToString() : "<null>") + ")";
}

std::string MapNode::ToString() const {
  std::string out = "Map(";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += specs_[i].name + " := " +
           (specs_[i].expr ? specs_[i].expr->ToString() : "<null>");
  }
  return out + ")";
}

std::string ProjectNode::ToString() const {
  std::string out = "Project(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i];
  }
  return out + ")";
}

std::string WindowAggNode::ToString() const {
  std::string out = "WindowAgg(" + FormatWindowSpec(options_.window);
  if (!options_.key_field.empty()) out += ", key=" + options_.key_field;
  out += ", time=" + options_.time_field;
  out += ", aggs=" +
         FormatAggregates(options_.aggregates, options_.custom_aggregators);
  return out + ")";
}

std::string ThresholdWindowNode::ToString() const {
  std::string out = "ThresholdWindow(";
  out += options_.predicate ? options_.predicate->ToString() : "<null>";
  if (options_.min_duration > 0) {
    out += ", min=" + FormatDurationText(options_.min_duration);
  }
  if (!options_.key_field.empty()) out += ", key=" + options_.key_field;
  out += ", time=" + options_.time_field;
  out += ", aggs=" +
         FormatAggregates(options_.aggregates, options_.custom_aggregators);
  return out + ")";
}

std::string CepNode::ToString() const {
  std::string out = "CEP(";
  for (size_t i = 0; i < pattern_.steps.size(); ++i) {
    const PatternStep& step = pattern_.steps[i];
    if (i > 0) out += " ; ";
    if (step.negated) out += "!";
    out += step.name;
    if (step.one_or_more) out += "+";
  }
  if (pattern_.within > 0) {
    out += " within " + FormatDurationText(pattern_.within);
  }
  if (!pattern_.key_field.empty()) out += ", key=" + pattern_.key_field;
  out += ", " + std::to_string(measures_.size()) + " measures";
  return out + ")";
}

std::string LookupJoinNode::ToString() const {
  std::string out = "TemporalLookupJoin(";
  out += options_.left_key + " = " + options_.right_key;
  out += ", nearest " + options_.left_time + "~" + options_.right_time;
  if (options_.max_age > 0) {
    out += " within " + FormatDurationText(options_.max_age);
  }
  return out + ")";
}

std::string SinkNode::ToString() const {
  return "Sink(" + (sink_ ? sink_->name() : "<null>") + ")";
}

void LogicalPlan::SetSink(std::shared_ptr<SinkOperator> sink) {
  if (!ops_.empty() && ops_.back()->kind() == LogicalOperator::Kind::kSink) {
    ops_.pop_back();
  }
  ops_.push_back(std::make_unique<SinkNode>(std::move(sink)));
}

std::shared_ptr<SinkOperator> LogicalPlan::sink() const {
  if (ops_.empty() || ops_.back()->kind() != LogicalOperator::Kind::kSink) {
    return nullptr;
  }
  return static_cast<const SinkNode*>(ops_.back().get())->sink();
}

Status LogicalPlan::Validate() const {
  if (source_ == nullptr) {
    return Status::InvalidArgument("plan has no source");
  }
  if (ops_.empty() || ops_.back()->kind() != LogicalOperator::Kind::kSink) {
    return Status::InvalidArgument("plan has no sink");
  }
  for (size_t i = 0; i < ops_.size(); ++i) {
    const LogicalOperator& op = *ops_[i];
    switch (op.kind()) {
      case LogicalOperator::Kind::kSink: {
        if (i + 1 != ops_.size()) {
          return Status::InvalidArgument(
              "sink must be the terminal node of the plan");
        }
        if (static_cast<const SinkNode&>(op).sink() == nullptr) {
          return Status::InvalidArgument("plan has a null sink");
        }
        break;
      }
      case LogicalOperator::Kind::kKeyBy: {
        const auto& key = static_cast<const KeyByNode&>(op);
        if (key.field().empty()) {
          return Status::InvalidArgument("KeyBy with an empty field");
        }
        const LogicalOperator::Kind next =
            i + 1 < ops_.size() ? ops_[i + 1]->kind()
                                : LogicalOperator::Kind::kSink;
        if (next != LogicalOperator::Kind::kWindowAgg &&
            next != LogicalOperator::Kind::kThresholdWindow &&
            next != LogicalOperator::Kind::kCep) {
          return Status::InvalidArgument(
              "KeyBy(" + key.field() +
              ") is never consumed: it must be immediately followed by a "
              "window aggregation or CEP step");
        }
        break;
      }
      case LogicalOperator::Kind::kWindowAgg: {
        const auto& node = static_cast<const WindowAggNode&>(op);
        if (node.options().aggregates.empty() &&
            node.options().custom_aggregators.empty()) {
          return Status::InvalidArgument(
              "window aggregation without aggregates (missing Aggregate?)");
        }
        break;
      }
      case LogicalOperator::Kind::kThresholdWindow: {
        const auto& node = static_cast<const ThresholdWindowNode&>(op);
        if (node.options().aggregates.empty() &&
            node.options().custom_aggregators.empty()) {
          return Status::InvalidArgument(
              "threshold window without aggregates (missing Aggregate?)");
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

std::string LogicalPlan::Explain() const {
  std::string out = "Source: ";
  if (source_ != nullptr) {
    out += source_->name() + "(" + source_->schema().ToString() + ")";
  } else {
    out += "<none>";
  }
  out += "\n";
  for (const LogicalOperatorPtr& op : ops_) {
    out += "  -> " + op->ToString() + "\n";
  }
  return out;
}

Result<Schema> LogicalPlan::OutputSchema() const {
  if (source_ == nullptr) {
    return Status::InvalidArgument("plan has no source");
  }
  NM_ASSIGN_OR_RETURN(auto chain, CompilePlan(source_->schema(), *this));
  return chain.empty() ? source_->schema() : chain.back()->output_schema();
}

Result<std::vector<OperatorPtr>> CompilePlan(const Schema& source_schema,
                                             const LogicalPlan& plan) {
  std::vector<OperatorPtr> chain;
  Schema current = source_schema;
  // A KeyBy node's field is folded into the node it precedes.
  std::string pending_key;
  for (const LogicalOperatorPtr& node : plan.ops()) {
    OperatorPtr op;
    switch (node->kind()) {
      case LogicalOperator::Kind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        NM_ASSIGN_OR_RETURN(op,
                            FilterOperator::Make(current, filter.predicate()));
        break;
      }
      case LogicalOperator::Kind::kMap: {
        const auto& map = static_cast<const MapNode&>(*node);
        NM_ASSIGN_OR_RETURN(op, MapOperator::Make(current, map.specs()));
        break;
      }
      case LogicalOperator::Kind::kProject: {
        const auto& project = static_cast<const ProjectNode&>(*node);
        NM_ASSIGN_OR_RETURN(op,
                            ProjectOperator::Make(current, project.fields()));
        break;
      }
      case LogicalOperator::Kind::kKeyBy: {
        const auto& key = static_cast<const KeyByNode&>(*node);
        if (!pending_key.empty()) {
          return Status::InvalidArgument(
              "KeyBy(" + pending_key + ") is never consumed");
        }
        pending_key = key.field();
        continue;  // marker node: no physical operator
      }
      case LogicalOperator::Kind::kWindowAgg: {
        const auto& win = static_cast<const WindowAggNode&>(*node);
        WindowAggOptions options = win.options();
        if (!pending_key.empty()) {
          options.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, WindowAggOperator::Make(current, std::move(options)));
        break;
      }
      case LogicalOperator::Kind::kThresholdWindow: {
        const auto& win = static_cast<const ThresholdWindowNode&>(*node);
        ThresholdWindowOptions options = win.options();
        if (!pending_key.empty()) {
          options.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, ThresholdWindowOperator::Make(current, std::move(options)));
        break;
      }
      case LogicalOperator::Kind::kCep: {
        const auto& cep = static_cast<const CepNode&>(*node);
        Pattern pattern = cep.pattern();
        if (!pending_key.empty()) {
          if (pattern.key_field.empty()) pattern.key_field = pending_key;
          pending_key.clear();
        }
        NM_ASSIGN_OR_RETURN(
            op, CepOperator::Make(current, std::move(pattern),
                                  cep.measures()));
        break;
      }
      case LogicalOperator::Kind::kLookupJoin: {
        const auto& join = static_cast<const LookupJoinNode&>(*node);
        NM_ASSIGN_OR_RETURN(
            op, TemporalLookupJoinOperator::Make(current, join.options()));
        break;
      }
      case LogicalOperator::Kind::kSink: {
        // The engine drives the sink; lowering stops here.
        continue;
      }
    }
    if (!pending_key.empty()) {
      return Status::InvalidArgument(
          "KeyBy(" + pending_key +
          ") must be immediately followed by a window or CEP step");
    }
    current = op->output_schema();
    chain.push_back(std::move(op));
  }
  if (!pending_key.empty()) {
    return Status::InvalidArgument(
        "KeyBy(" + pending_key + ") is never consumed");
  }
  return chain;
}

}  // namespace nebulameos::nebula
